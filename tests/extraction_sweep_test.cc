// Parameterized sweep over the linguistic constructions the extraction
// rules must handle: every (sentence template x relation verb) pair must
// yield exactly the expected IOC triplet. This pins the contract between
// the POS lexicon, the dependency parser, and the relation extractor.
#include <gtest/gtest.h>

#include <tuple>

#include "common/strings.h"
#include "extraction/extractor.h"

namespace raptor::extraction {
namespace {

struct Template {
  const char* name;
  // %V = inflected verb, %A = subject IOC, %B = object IOC.
  const char* pattern;
};

struct VerbForms {
  const char* lemma;
  const char* past;       // "read", "wrote", ...
  const char* gerund;     // "reading", ...
  const char* base;       // "read", "write", ...
};

const Template kTemplates[] = {
    {"svo_past", "%A %V the object %B during the intrusion."},
    {"instrument", "The attacker used %A to %X data from %B."},
    {"conj_shared_subject", "%A opened /var/tmp/seed.log and %V %B."},
    {"leading_adverb", "Then %A %V %B."},
};

const VerbForms kVerbs[] = {
    {"read", "read", "reading", "read"},
    {"write", "wrote", "writing", "write"},
    {"download", "downloaded", "downloading", "download"},
    {"execute", "executed", "executing", "execute"},
    {"scan", "scanned", "scanning", "scan"},
    {"fetch", "fetched", "fetching", "fetch"},
    {"collect", "collected", "collecting", "collect"},
    {"steal", "stole", "stealing", "steal"},
};

class ExtractionSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExtractionSweepTest, TemplateYieldsExpectedTriplet) {
  const Template& tpl = kTemplates[std::get<0>(GetParam())];
  const VerbForms& verb = kVerbs[std::get<1>(GetParam())];
  const char* kSubject = "/usr/bin/agent";
  const char* kObject = "/home/admin/target.db";

  std::string text = tpl.pattern;
  text = ReplaceAll(text, "%V", verb.past);
  text = ReplaceAll(text, "%X", verb.base);  // infinitive position
  text = ReplaceAll(text, "%A", kSubject);
  text = ReplaceAll(text, "%B", kObject);
  SCOPED_TRACE(text);

  ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ThreatBehaviorGraph& g = r.value().graph;
  bool found = false;
  for (const IocRelation& e : g.edges()) {
    if (g.node(e.src).Matches(kSubject) && e.verb == verb.lemma &&
        g.node(e.dst).Matches(kObject)) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "missing (" << kSubject << ", " << verb.lemma << ", "
                     << kObject << ") in:\n"
                     << g.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    TemplatesByVerbs, ExtractionSweepTest,
    ::testing::Combine(::testing::Range(0, 4), ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kTemplates[std::get<0>(info.param)].name) + "_" +
             kVerbs[std::get<1>(info.param)].lemma;
    });

// Prepositional-object variants: the object arrives via from/to/into.
class PrepSweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(PrepSweepTest, PrepositionalObjectExtracted) {
  std::string text = StrFormat(
      "/usr/bin/agent copied the records %s /home/admin/target.db.",
      GetParam());
  ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(text);
  ASSERT_TRUE(r.ok());
  const ThreatBehaviorGraph& g = r.value().graph;
  ASSERT_FALSE(g.edges().empty()) << text;
  const IocRelation& e = g.edges()[0];
  EXPECT_TRUE(g.node(e.src).Matches("/usr/bin/agent"));
  EXPECT_EQ(e.verb, "copy");
  EXPECT_TRUE(g.node(e.dst).Matches("/home/admin/target.db"));
}

INSTANTIATE_TEST_SUITE_P(Preps, PrepSweepTest,
                         ::testing::Values("from", "to", "into", "onto"));

// IOC-type matrix: subject/object across path, Windows path, IP and
// package-style IOCs must all pass through extraction unchanged.
class IocTypeMatrixTest
    : public ::testing::TestWithParam<std::tuple<const char*, const char*>> {
};

TEST_P(IocTypeMatrixTest, SubjectAndObjectSurvive) {
  auto [subject, object] = GetParam();
  std::string text =
      StrFormat("%s accessed %s during the breach.", subject, object);
  ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(text);
  ASSERT_TRUE(r.ok());
  const ThreatBehaviorGraph& g = r.value().graph;
  ASSERT_FALSE(g.edges().empty()) << text << "\n" << g.ToString();
  EXPECT_TRUE(g.node(g.edges()[0].src).Matches(subject));
  EXPECT_TRUE(g.node(g.edges()[0].dst).Matches(object));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, IocTypeMatrixTest,
    ::testing::Combine(
        ::testing::Values("/usr/bin/agent", "com.evil.dropper",
                          "nativemsg.exe"),
        ::testing::Values("/etc/shadow", R"(C:\Users\victim\vault.dat)",
                          "/sdcard/DCIM/x.db")));

}  // namespace
}  // namespace raptor::extraction
