#include <gtest/gtest.h>

#include "common/levenshtein.h"
#include "common/status.h"
#include "common/strings.h"

namespace raptor {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("/etc/passwd", "%passwd%"));
  EXPECT_TRUE(LikeMatch("/etc/passwd", "/etc/%"));
  EXPECT_FALSE(LikeMatch("/etc/shadow", "%passwd%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("x", ""));
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

}  // namespace
}  // namespace raptor
