#include <gtest/gtest.h>

#include "common/interner.h"
#include "common/levenshtein.h"
#include "common/status.h"
#include "common/strings.h"

namespace raptor {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(LikeMatchTest, Wildcards) {
  EXPECT_TRUE(LikeMatch("/etc/passwd", "%passwd%"));
  EXPECT_TRUE(LikeMatch("/etc/passwd", "/etc/%"));
  EXPECT_FALSE(LikeMatch("/etc/shadow", "%passwd%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("x", ""));
}

TEST(LevenshteinTest, KnownDistances) {
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("", "abc"), 3u);
  EXPECT_EQ(LevenshteinDistance("same", "same"), 0u);
}

TEST(StringInternerTest, DenseIdsAndLookup) {
  StringInterner interner;
  uint32_t a = interner.Intern("proc");
  uint32_t b = interner.Intern("file");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(interner.Intern("proc"), a);  // idempotent
  EXPECT_EQ(interner.Lookup("file"), b);
  EXPECT_EQ(interner.Lookup("ip"), kNoSymbol);
  EXPECT_EQ(interner.Name(a), "proc");
  EXPECT_EQ(interner.Name(b), "file");
  EXPECT_EQ(interner.size(), 2u);
}

TEST(StringInternerTest, NamesStableAcrossGrowth) {
  StringInterner interner;
  uint32_t first = interner.Intern("first-symbol");
  // Force rehashing/growth; Name() views must stay valid.
  for (int i = 0; i < 1000; ++i) {
    interner.Intern("sym" + std::to_string(i));
  }
  EXPECT_EQ(interner.Name(first), "first-symbol");
  EXPECT_EQ(interner.Lookup("sym999"), interner.size() - 1);
}

}  // namespace
}  // namespace raptor
