#include <gtest/gtest.h>

#include "nlp/depparse.h"
#include "nlp/ioc.h"
#include "nlp/pos.h"
#include "nlp/protect.h"
#include "nlp/segment.h"
#include "nlp/tokenizer.h"
#include "nlp/wordvec.h"

namespace raptor::nlp {
namespace {

// ---------------------------------------------------------------- IOC tests

TEST(IocTest, LinuxPaths) {
  auto m = RecognizeIocs("the attacker used /bin/tar to read /etc/passwd.");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].text, "/bin/tar");
  EXPECT_EQ(m[0].type, IocType::kFilepath);
  EXPECT_EQ(m[1].text, "/etc/passwd");  // sentence period trimmed
}

TEST(IocTest, IpWithAndWithoutCidr) {
  auto m = RecognizeIocs("connect to 192.168.29.128 and 10.0.0.0/8 today");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].text, "192.168.29.128");
  EXPECT_EQ(m[0].type, IocType::kIp);
  EXPECT_EQ(m[1].text, "10.0.0.0/8");
}

TEST(IocTest, IpAtSentenceEnd) {
  auto m = RecognizeIocs("curl connected to 192.168.29.128.");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].text, "192.168.29.128");
}

TEST(IocTest, RejectsVersionStrings) {
  auto m = RecognizeIocs("running version 1.2.3.4.5 of the daemon");
  for (const auto& x : m) EXPECT_NE(x.type, IocType::kIp) << x.text;
}

TEST(IocTest, RejectsOutOfRangeOctets) {
  auto m = RecognizeIocs("error code 999.999.999.999 appeared");
  for (const auto& x : m) EXPECT_NE(x.type, IocType::kIp) << x.text;
}

TEST(IocTest, WindowsPathAndRegistry) {
  auto m = RecognizeIocs(
      R"(dropped C:\Users\victim\evil.exe and set HKEY_LOCAL_MACHINE\Software\Run)");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].type, IocType::kWinFilepath);
  EXPECT_EQ(m[0].text, R"(C:\Users\victim\evil.exe)");
  EXPECT_EQ(m[1].type, IocType::kRegistry);
}

TEST(IocTest, UrlSwallowsDomain) {
  auto m = RecognizeIocs("fetched https://evil.com/payload.bin quickly");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].type, IocType::kUrl);
}

TEST(IocTest, DomainAndEmail) {
  auto m = RecognizeIocs("mail admin@corp.com or visit evil-site.ru now");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].type, IocType::kEmail);
  EXPECT_EQ(m[1].type, IocType::kDomain);
  EXPECT_EQ(m[1].text, "evil-site.ru");
}

TEST(IocTest, HashesAndCve) {
  auto m = RecognizeIocs(
      "md5 d41d8cd98f00b204e9800998ecf8427e relates to CVE-2014-6271");
  ASSERT_EQ(m.size(), 2u);
  EXPECT_EQ(m[0].type, IocType::kHash);
  EXPECT_EQ(m[1].type, IocType::kCve);
  EXPECT_EQ(m[1].text, "CVE-2014-6271");
}

TEST(IocTest, BareFilename) {
  auto m = RecognizeIocs("opened MsgApp-instr.apk from the store");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].type, IocType::kFilename);
  EXPECT_EQ(m[0].text, "MsgApp-instr.apk");
}

TEST(IocTest, AndroidPackageAsDomainStyleName) {
  // Android package names (com.android.defcontainer) look like reversed
  // domains; the recognizer treats them as domain-ish IOCs.
  auto m = RecognizeIocs("process com.android.defcontainer opened the file");
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m[0].text, "com.android.defcontainer");
}

// ------------------------------------------------------- segmentation tests

TEST(SegmentTest, Blocks) {
  auto blocks = SegmentBlocks("para one line a\nline b\n\npara two\n");
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[1].text, "para two");
}

TEST(SegmentTest, Sentences) {
  auto s = SegmentSentences(
      "The attacker used /bin/tar. It wrote data to /tmp/upload.tar. Then "
      "the attacker left.");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].text, "The attacker used /bin/tar.");
  EXPECT_EQ(s[1].text, "It wrote data to /tmp/upload.tar.");
}

TEST(SegmentTest, AbbreviationGuard) {
  auto s = SegmentSentences("Tools, e.g. Mimikatz, were used. Then it left.");
  ASSERT_EQ(s.size(), 2u);
}

TEST(SegmentTest, DottedIocDoesNotSplitMidToken) {
  auto s = SegmentSentences("read from /tmp/upload.tar.bz2 and wrote data.");
  ASSERT_EQ(s.size(), 1u);
}

// -------------------------------------------------------- tokenizer tests

TEST(TokenizerTest, PlainSentence) {
  auto toks = Tokenize("The attacker used something to read credentials.");
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"The", "attacker", "used",
                                             "something", "to", "read",
                                             "credentials", "."}));
}

TEST(TokenizerTest, ShredsUnprotectedPaths) {
  // The PTB-style '/' split is exactly what IOC Protection guards against.
  auto toks = Tokenize("used /bin/tar today");
  std::vector<std::string> texts;
  for (const auto& t : toks) texts.push_back(t.text);
  EXPECT_EQ(texts, (std::vector<std::string>{"used", "/", "bin", "/", "tar",
                                             "today"}));
}

TEST(TokenizerTest, KeepsDottedTokens) {
  auto toks = Tokenize("connect to 192.168.29.128.");
  ASSERT_GE(toks.size(), 3u);
  EXPECT_EQ(toks[2].text, "192.168.29.128");
  EXPECT_EQ(toks[3].text, ".");
}

TEST(TokenizerTest, OffsetsAreFaithful) {
  std::string text = "read (something) now.";
  auto toks = Tokenize(text);
  for (const auto& t : toks) {
    EXPECT_EQ(text.substr(t.begin, t.end - t.begin), t.text);
  }
}

// -------------------------------------------------------- protection tests

TEST(ProtectTest, ReplacesAndRecords) {
  ProtectedText pt = ProtectIocs("the attacker used /bin/tar to read /etc/passwd.");
  EXPECT_EQ(pt.text, "the attacker used something to read something.");
  ASSERT_EQ(pt.replacements.size(), 2u);
  EXPECT_EQ(pt.replacements[0].ioc.text, "/bin/tar");
  EXPECT_EQ(pt.text.substr(pt.replacements[0].begin,
                           pt.replacements[0].end - pt.replacements[0].begin),
            kDummyWord);
  EXPECT_NE(pt.FindAt(pt.replacements[1].begin), nullptr);
}

// --------------------------------------------------------------- POS tests

TEST(PosTest, CoreTags) {
  auto toks = Tokenize("The attacker used something to read credentials.");
  auto tags = TagTokens(toks);
  EXPECT_EQ(tags[0], Pos::kDet);
  EXPECT_EQ(tags[1], Pos::kNoun);
  EXPECT_EQ(tags[2], Pos::kVerb);
  EXPECT_EQ(tags[3], Pos::kNoun);   // the dummy word
  EXPECT_EQ(tags[4], Pos::kPart);   // infinitival to
  EXPECT_EQ(tags[5], Pos::kVerb);
  EXPECT_EQ(tags[6], Pos::kNoun);
}

TEST(PosTest, ParticipleAfterDeterminer) {
  auto toks = Tokenize("It wrote the gathered information to a file.");
  auto tags = TagTokens(toks);
  EXPECT_EQ(tags[3], Pos::kAdj);  // "gathered" modifies "information"
}

TEST(PosTest, Lemmas) {
  EXPECT_EQ(Lemma("wrote", Pos::kVerb), "write");
  EXPECT_EQ(Lemma("reading", Pos::kVerb), "read");
  EXPECT_EQ(Lemma("leveraged", Pos::kVerb), "leverage");
  EXPECT_EQ(Lemma("scanned", Pos::kVerb), "scan");
  EXPECT_EQ(Lemma("uses", Pos::kVerb), "use");
  EXPECT_EQ(Lemma("downloads", Pos::kVerb), "download");
  EXPECT_EQ(Lemma("connected", Pos::kVerb), "connect");
  EXPECT_EQ(Lemma("files", Pos::kNoun), "file");
}

// ---------------------------------------------------------- parser tests

DepTree ParseSentence(const std::string& s) {
  auto toks = Tokenize(s);
  auto tags = TagTokens(toks);
  return ParseDependency(toks, tags);
}

int FindNode(const DepTree& t, const std::string& text) {
  for (size_t i = 0; i < t.size(); ++i) {
    if (t.node(i).text == text) return static_cast<int>(i);
  }
  return -1;
}

TEST(DepParseTest, SimpleSvo) {
  DepTree t = ParseSentence("The attacker used something.");
  int used = FindNode(t, "used");
  int attacker = FindNode(t, "attacker");
  int smth = FindNode(t, "something");
  EXPECT_EQ(t.root(), used);
  EXPECT_EQ(t.node(attacker).head, used);
  EXPECT_EQ(t.node(attacker).deprel, "nsubj");
  EXPECT_EQ(t.node(smth).head, used);
  EXPECT_EQ(t.node(smth).deprel, "dobj");
}

TEST(DepParseTest, PurposeInfinitiveAndPrepObject) {
  DepTree t = ParseSentence(
      "the attacker used something to read user credentials from something");
  int used = FindNode(t, "used");
  int read = FindNode(t, "read");
  int from = FindNode(t, "from");
  ASSERT_GE(read, 0);
  EXPECT_EQ(t.node(read).head, used);
  EXPECT_EQ(t.node(read).deprel, "xcomp");
  EXPECT_EQ(t.node(from).head, read);
  // The second "something" is the pobj of "from".
  int smth2 = -1;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t.node(i).text == "something" && static_cast<int>(i) > read) {
      smth2 = static_cast<int>(i);
    }
  }
  ASSERT_GE(smth2, 0);
  EXPECT_EQ(t.node(smth2).head, from);
  EXPECT_EQ(t.node(smth2).deprel, "pobj");
}

TEST(DepParseTest, ConjoinedVerbsShareStructure) {
  DepTree t = ParseSentence(
      "something read from something and wrote to something");
  int read = FindNode(t, "read");
  int wrote = FindNode(t, "wrote");
  EXPECT_EQ(t.root(), read);
  EXPECT_EQ(t.node(wrote).head, read);
  EXPECT_EQ(t.node(wrote).deprel, "conj");
  // First something is the subject of read.
  EXPECT_EQ(t.node(0).deprel, "nsubj");
  EXPECT_EQ(t.node(0).head, read);
}

TEST(DepParseTest, GerundAfterNounIsAcl) {
  DepTree t = ParseSentence(
      "the launched process something reading from something");
  int smth1 = FindNode(t, "something");
  int reading = FindNode(t, "reading");
  ASSERT_GE(reading, 0);
  EXPECT_EQ(t.node(reading).deprel, "acl");
  EXPECT_EQ(t.node(reading).head, smth1);
}

TEST(DepParseTest, ByGerundInstrument) {
  DepTree t = ParseSentence(
      "he leaked the information back to the host by using something");
  int leaked = FindNode(t, "leaked");
  int by = FindNode(t, "by");
  int using_v = FindNode(t, "using");
  EXPECT_EQ(t.root(), leaked);
  EXPECT_EQ(t.node(by).head, leaked);
  EXPECT_EQ(t.node(using_v).head, by);
  EXPECT_EQ(t.node(using_v).deprel, "pcomp");
}

TEST(DepParseTest, PassiveVoice) {
  DepTree t = ParseSentence("the file was downloaded by the malware");
  int downloaded = FindNode(t, "downloaded");
  int file = FindNode(t, "file");
  int by = FindNode(t, "by");
  EXPECT_EQ(t.node(file).head, downloaded);
  EXPECT_EQ(t.node(file).deprel, "nsubjpass");
  EXPECT_EQ(t.node(by).deprel, "agent");
}

TEST(DepParseTest, EveryNodeReachesRoot) {
  DepTree t = ParseSentence(
      "After the lateral movement stage, the attacker attempts to steal "
      "valuable assets from the host, and transfers the files to its host.");
  for (size_t i = 0; i < t.size(); ++i) {
    auto path = t.PathToRoot(static_cast<int>(i));
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.back(), t.root());
  }
}

TEST(DepParseTest, LcaOfSubjectAndObject) {
  DepTree t = ParseSentence("something read from something");
  int a = 0;
  int b = static_cast<int>(t.size()) - 1;
  int read = FindNode(t, "read");
  EXPECT_EQ(t.Lca(a, b), read);
}

// ------------------------------------------------------------ wordvec tests

TEST(WordVecTest, SimilarStringsScoreHigher) {
  double same = WordSimilarity("/tmp/upload.tar", "/tmp/upload.tar");
  double close = WordSimilarity("/tmp/upload.tar", "upload.tar");
  double far = WordSimilarity("/tmp/upload.tar", "192.168.29.128");
  EXPECT_NEAR(same, 1.0, 1e-6);
  EXPECT_GT(close, 0.5);
  EXPECT_LT(far, 0.3);
  EXPECT_GT(close, far);
}

}  // namespace
}  // namespace raptor::nlp
