#include <gtest/gtest.h>

#include "tbql/analyzer.h"
#include "tbql/ast.h"
#include "tbql/parser.h"

namespace raptor::tbql {
namespace {

TEST(TbqlParserTest, Fig2QueryParses) {
  const char* kFig2 =
      "proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as evt1\n"
      "proc p1 write file f2[\"%/tmp/upload.tar%\"] as evt2\n"
      "proc p2[\"%/bin/bzip2%\"] read file f2 as evt3\n"
      "proc p2 write file f3[\"%/tmp/upload.tar.bz2%\"] as evt4\n"
      "proc p3[\"%/usr/bin/gpg%\"] read file f3 as evt5\n"
      "proc p3 write file f4[\"%/tmp/upload%\"] as evt6\n"
      "proc p4[\"%/usr/bin/curl%\"] read file f4 as evt7\n"
      "proc p4 connect ip i1[\"192.168.29.128\"] as evt8\n"
      "with evt1 before evt2, evt2 before evt3, evt3 before evt4, evt4 "
      "before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8\n"
      "return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1";
  auto q = ParseTbql(kFig2);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q.value().patterns.size(), 8u);
  EXPECT_EQ(q.value().temporal_rels.size(), 7u);
  EXPECT_EQ(q.value().returns.size(), 9u);
  EXPECT_TRUE(q.value().distinct);

  auto analyzed = Analyze(q.value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(analyzed.value().entities.size(), 9u);
  // Default attribute inference (syntactic sugar).
  EXPECT_EQ(analyzed.value().returns[0].attr, "exename");
  EXPECT_EQ(analyzed.value().returns[1].attr, "name");
  EXPECT_EQ(analyzed.value().returns[8].attr, "dstip");
}

TEST(TbqlParserTest, OperationExpressions) {
  auto q = ParseTbql(
      "proc p[pid = 1 && exename = \"%chrome%\"] read || write file f "
      "return p, f");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const Pattern& p = q.value().patterns[0];
  ASSERT_NE(p.op, nullptr);
  EXPECT_TRUE(p.op->Matches("read"));
  EXPECT_TRUE(p.op->Matches("write"));
  EXPECT_FALSE(p.op->Matches("execute"));
}

TEST(TbqlParserTest, NegatedOperation) {
  auto q = ParseTbql("proc p !read file f return p");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q.value().patterns[0].op->Matches("read"));
  EXPECT_TRUE(q.value().patterns[0].op->Matches("write"));
}

TEST(TbqlParserTest, PathPatternVariants) {
  struct Case {
    const char* text;
    bool fuzzy;
    int min, max;
  };
  const Case kCases[] = {
      {"proc p ~>[read] file f return p, f", true, 1, -1},
      {"proc p ~>(2~4)[read] file f return p, f", true, 2, 4},
      {"proc p ~>(2~)[read] file f return p, f", true, 2, -1},
      {"proc p ~>(~4)[read] file f return p, f", true, 1, 4},
      {"proc p ->[read] file f return p, f", false, 1, 1},
      {"proc p ~> file f return p, f", true, 1, -1},
  };
  for (const Case& c : kCases) {
    auto q = ParseTbql(c.text);
    ASSERT_TRUE(q.ok()) << c.text << ": " << q.status().ToString();
    const PathSpec& path = q.value().patterns[0].path;
    EXPECT_TRUE(path.is_path) << c.text;
    EXPECT_EQ(path.fuzzy_arrow, c.fuzzy) << c.text;
    EXPECT_EQ(path.min_len, c.min) << c.text;
    EXPECT_EQ(path.max_len, c.max) << c.text;
  }
}

TEST(TbqlParserTest, WindowsAndGlobalFilters) {
  auto q = ParseTbql(
      "from 100 to 200 proc p read file f from 120 to 180 return p");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().global_windows.size(), 1u);
  EXPECT_EQ(q.value().global_windows[0].from, 100);
  ASSERT_TRUE(q.value().patterns[0].window.has_value());
  EXPECT_EQ(q.value().patterns[0].window->to, 180);

  auto q2 = ParseTbql("last 5 min proc p read file f return p");
  ASSERT_TRUE(q2.ok()) << q2.status().ToString();
  EXPECT_EQ(q2.value().global_windows[0].kind, WindowKind::kLast);
  EXPECT_EQ(q2.value().global_windows[0].last_amount, 5LL * 60 * 1000000);
}

TEST(TbqlParserTest, TemporalGapBounds) {
  auto q = ParseTbql(
      "proc p read file f as e1 proc p write file g as e2 "
      "with e1 before[0-5 min] e2 return p");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().temporal_rels.size(), 1u);
  EXPECT_EQ(q.value().temporal_rels[0].min_gap, 0);
  EXPECT_EQ(q.value().temporal_rels[0].max_gap, 5LL * 60 * 1000000);
}

TEST(TbqlParserTest, AttributeRelationship) {
  auto q = ParseTbql(
      "proc p1 read file f as e1 proc p2 write file g as e2 "
      "with p1.pid = p2.pid return p1");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q.value().attr_rels.size(), 1u);
  EXPECT_EQ(q.value().attr_rels[0].left_qualifier, "p1");
  EXPECT_EQ(q.value().attr_rels[0].right_attr, "pid");
}

TEST(TbqlParserTest, InListFilter) {
  auto q = ParseTbql(
      "proc p[exename in (\"/bin/sh\", \"/bin/bash\")] read file "
      "f[name not in (\"/dev/null\")] return p, f");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  const EntityRef& s = q.value().patterns[0].subject;
  EXPECT_EQ(s.filter->kind, AttrExprKind::kInList);
  EXPECT_EQ(s.filter->values.size(), 2u);
  EXPECT_TRUE(q.value().patterns[0].object.filter->negated);
}

TEST(TbqlParserTest, ParseErrors) {
  EXPECT_FALSE(ParseTbql("").ok());
  EXPECT_FALSE(ParseTbql("return p").ok());
  EXPECT_FALSE(ParseTbql("proc p read file f").ok());  // missing return
  EXPECT_FALSE(ParseTbql("proc p frobnicate file f return p").ok());
  EXPECT_FALSE(ParseTbql("widget w read file f return w").ok());
  EXPECT_FALSE(ParseTbql("proc p read file f return p extra").ok());
  EXPECT_FALSE(ParseTbql("proc p[\"unterminated] read file f return p").ok());
}

TEST(TbqlAnalyzerTest, SubjectMustBeProcess) {
  auto q = ParseTbql("file f read file g return f");
  ASSERT_TRUE(q.ok());
  auto analyzed = Analyze(q.value());
  EXPECT_FALSE(analyzed.ok());
  EXPECT_EQ(analyzed.status().code(), StatusCode::kTypeError);
}

TEST(TbqlAnalyzerTest, EntityIdReuseTypeConflict) {
  auto q = ParseTbql("proc x read file f proc p write file x return p");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(q.value()).ok());
}

TEST(TbqlAnalyzerTest, EntityIdReuseMergesFilters) {
  auto q = ParseTbql(
      "proc p[\"%tar%\"] read file f as e1 proc p[pid = 5] write file g "
      "as e2 return p");
  ASSERT_TRUE(q.ok());
  auto analyzed = Analyze(q.value());
  ASSERT_TRUE(analyzed.ok()) << analyzed.status().ToString();
  EXPECT_EQ(analyzed.value().entities.at("p").filters.size(), 2u);
}

TEST(TbqlAnalyzerTest, UnknownIdsRejected) {
  auto q1 = ParseTbql("proc p read file f as e1 with e1 before e9 return p");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(Analyze(q1.value()).ok());

  auto q2 = ParseTbql("proc p read file f return q");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(Analyze(q2.value()).ok());
}

TEST(TbqlAnalyzerTest, InvalidAttributeForType) {
  auto q = ParseTbql("proc p[dstip = \"1.2.3.4\"] read file f return p");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(q.value()).ok());
}

TEST(TbqlAnalyzerTest, DuplicatePatternIdRejected) {
  auto q = ParseTbql(
      "proc p read file f as e1 proc p write file g as e1 return p");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(q.value()).ok());
}

TEST(TbqlAnalyzerTest, TemporalRelOnMultiHopPathRejected) {
  auto q = ParseTbql(
      "proc p ~>(1~3)[read] file f as e1 proc p write file g as e2 "
      "with e1 before e2 return p");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(Analyze(q.value()).ok());
}

TEST(TbqlAnalyzerTest, TemporalRelOnLength1PathAllowed) {
  auto q = ParseTbql(
      "proc p ->[read] file f as e1 proc p ->[write] file g as e2 "
      "with e1 before e2 return p");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(Analyze(q.value()).ok());
}

// Property: ToString round-trips through the parser for a family of
// queries covering the grammar.
class TbqlRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(TbqlRoundTripTest, PrintParsePrintIsStable) {
  auto q1 = ParseTbql(GetParam());
  ASSERT_TRUE(q1.ok()) << GetParam() << ": " << q1.status().ToString();
  std::string printed1 = q1.value().ToString();
  auto q2 = ParseTbql(printed1);
  ASSERT_TRUE(q2.ok()) << printed1 << ": " << q2.status().ToString();
  EXPECT_EQ(printed1, q2.value().ToString());
  EXPECT_TRUE(Analyze(q2.value()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, TbqlRoundTripTest,
    ::testing::Values(
        "proc p read file f return p",
        "proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as evt1 "
        "return distinct p1, f1",
        "proc p read || write file f[name != \"/dev/null\"] return p.pid, f",
        "proc p !read file f return p",
        "proc p ~>(2~4)[read] file f return p, f",
        "proc p ->[execute] file f as e1 return e1.start_time",
        "proc p connect ip i[dstport = 443] return p, i.dstip, i.dstport",
        "proc p read file f as e1 proc p write file g as e2 with e1 "
        "before[0-5 min] e2, p.pid = p.pid return p",
        "from 0 to 1000000 proc p read file f return p",
        "last 2 hour proc p read file f at 500 return p",
        "proc p[exename in (\"/bin/sh\", \"/bin/bash\") && pid > 100] read "
        "file f return p"));

}  // namespace
}  // namespace raptor::tbql
