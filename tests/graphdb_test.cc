#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/graphdb/cypher_executor.h"
#include "storage/graphdb/cypher_parser.h"
#include "tests/fixtures/synthetic_graph.h"

namespace raptor::graphdb {
namespace {

class GraphDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyGraph& g = db_.graph();
    // Mirror of the Fig. 2 data-leak chain:
    // tar -read-> passwd, tar -write-> upload.tar, bzip2 -read-> upload.tar,
    // bzip2 -write-> upload.tar.bz2, curl -connect-> 192.168.29.128
    tar_ = g.AddNode("proc", {{"exename", Value("/bin/tar")},
                              {"pid", Value(int64_t{100})}});
    passwd_ = g.AddNode("file", {{"name", Value("/etc/passwd")}});
    upload_ = g.AddNode("file", {{"name", Value("/tmp/upload.tar")}});
    bzip2_ = g.AddNode("proc", {{"exename", Value("/bin/bzip2")},
                                {"pid", Value(int64_t{101})}});
    bz2_ = g.AddNode("file", {{"name", Value("/tmp/upload.tar.bz2")}});
    curl_ = g.AddNode("proc", {{"exename", Value("/usr/bin/curl")},
                               {"pid", Value(int64_t{102})}});
    c2_ = g.AddNode("ip", {{"dstip", Value("192.168.29.128")}});

    g.AddEdge(tar_, passwd_, "read", {{"start_time", Value(int64_t{10})},
                                      {"end_time", Value(int64_t{11})}});
    g.AddEdge(tar_, upload_, "write", {{"start_time", Value(int64_t{20})},
                                       {"end_time", Value(int64_t{21})}});
    g.AddEdge(bzip2_, upload_, "read", {{"start_time", Value(int64_t{30})},
                                        {"end_time", Value(int64_t{31})}});
    g.AddEdge(bzip2_, bz2_, "write", {{"start_time", Value(int64_t{40})},
                                      {"end_time", Value(int64_t{41})}});
    g.AddEdge(curl_, c2_, "connect", {{"start_time", Value(int64_t{50})},
                                      {"end_time", Value(int64_t{51})}});
    g.CreateNodeIndex("proc", "exename");
    g.CreateNodeIndex("file", "name");
    g.CreateNodeIndex("ip", "dstip");
  }

  GraphDatabase db_;
  NodeId tar_ = 0, passwd_ = 0, upload_ = 0, bzip2_ = 0, bz2_ = 0, curl_ = 0,
         c2_ = 0;
};

TEST_F(GraphDbTest, SingleEdgeMatch) {
  auto rs = db_.Query(
      "MATCH (p:proc)-[e:read]->(f:file) "
      "WHERE p.exename CONTAINS 'tar' RETURN p.exename, f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/tar");
  EXPECT_EQ(rs.value().rows[0][1].AsText(), "/etc/passwd");
}

TEST_F(GraphDbTest, InlinePropSeedsViaIndex) {
  MatchStats stats;
  auto rs = db_.Query(
      "MATCH (p:proc {exename: '/bin/bzip2'})-[e:write]->(f:file) "
      "RETURN f.name",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/tmp/upload.tar.bz2");
  EXPECT_EQ(stats.seed_candidates, 1u);  // index probe, not a label scan
}

TEST_F(GraphDbTest, SharedVariableAcrossParts) {
  auto rs = db_.Query(
      "MATCH (p1:proc)-[e1:read]->(f1:file {name: '/etc/passwd'}), "
      "(p1)-[e2:write]->(f2:file) RETURN p1.exename, f2.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/tar");
  EXPECT_EQ(rs.value().rows[0][1].AsText(), "/tmp/upload.tar");
}

TEST_F(GraphDbTest, VariableLengthPathFollowsEdgeDirection) {
  // Edges are oriented subject->object (TBQL path semantics: the final hop
  // is "an event where f is the object"). tar->upload.tar<-bzip2->bz2 mixes
  // directions, so no forward path connects tar to the .bz2 file.
  auto rs = db_.Query(
      "MATCH (p:proc {exename: '/bin/tar'})-[*1..4]->(f:file "
      "{name: '/tmp/upload.tar.bz2'}) RETURN DISTINCT f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(GraphDbTest, VariableLengthPathThroughIntermediateProcess) {
  // bash -start-> tar -read-> passwd is a forward 2-hop path: the shape the
  // paper describes when OSCTI text omits intermediate processes.
  PropertyGraph& g = db_.graph();
  NodeId bash = g.AddNode("proc", {{"exename", Value("/bin/bash")},
                                   {"pid", Value(int64_t{99})}});
  g.AddEdge(bash, tar_, "start", {{"start_time", Value(int64_t{5})}});
  auto rs = db_.Query(
      "MATCH (p:proc {exename: '/bin/bash'})-[*2..2]->(f:file "
      "{name: '/etc/passwd'}) RETURN DISTINCT f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/etc/passwd");
}

TEST_F(GraphDbTest, VariableLengthRespectsMinimum) {
  // Min length 2 excludes the direct tar->passwd edge.
  auto rs = db_.Query(
      "MATCH (p:proc {exename: '/bin/tar'})-[*2..3]->(f:file "
      "{name: '/etc/passwd'}) RETURN f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(GraphDbTest, TemporalWhereAcrossEdges) {
  auto rs = db_.Query(
      "MATCH (p1:proc)-[e1:read]->(f1:file), (p1)-[e2:write]->(f2:file) "
      "WHERE e1.end_time <= e2.start_time RETURN p1.exename, f1.name, f2.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);  // tar and bzip2 chains
}

TEST_F(GraphDbTest, DistinctAndLimit) {
  auto rs = db_.Query(
      "MATCH (p:proc)-[e]->(o) RETURN DISTINCT p.exename LIMIT 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(GraphDbTest, LimitZeroReturnsNothing) {
  for (bool push : {true, false}) {
    db_.options().push_limit = push;
    MatchStats stats;
    auto rs = db_.Query("MATCH (p:proc)-[e]->(o) RETURN p.exename LIMIT 0",
                        &stats);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(rs.value().rows.empty());
    // The pushed-down LIMIT 0 never starts matching at all.
    if (push) {
      EXPECT_EQ(stats.seed_candidates, 0u);
    }
  }
  db_.options().push_limit = true;
}

TEST_F(GraphDbTest, LimitLargerThanResultSet) {
  auto rs = db_.Query("MATCH (p:proc)-[e:read]->(f:file) "
                      "RETURN p.exename LIMIT 100");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);  // tar and bzip2 reads only
}

TEST_F(GraphDbTest, DistinctLimitCountsPostDedupRows) {
  // tar has 2 out-edges, so non-distinct rows would reach the limit before
  // two distinct exenames exist. The limit must count deduped rows — in
  // the streaming configuration and in the legacy combination where the
  // pushdown has to disable itself (final dedup + push_limit).
  const char* q =
      "MATCH (p:proc)-[e]->(o) RETURN DISTINCT p.exename LIMIT 2";
  for (bool streaming : {true, false}) {
    db_.options().streaming_distinct = streaming;
    auto rs = db_.Query(q);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs.value().rows.size(), 2u) << "streaming=" << streaming;
    EXPECT_NE(rs.value().rows[0][0].AsText(), rs.value().rows[1][0].AsText());
  }
  db_.options().streaming_distinct = true;
}

TEST_F(GraphDbTest, LimitWithMultiPatternJoin) {
  // Both proc chains (tar, bzip2) satisfy the two-part join; LIMIT 1 must
  // return exactly one of them, fully bound.
  auto full = db_.Query(
      "MATCH (p1:proc)-[e1:read]->(f1:file), (p1)-[e2:write]->(f2:file) "
      "RETURN p1.exename, f2.name");
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.value().rows.size(), 2u);
  auto limited = db_.Query(
      "MATCH (p1:proc)-[e1:read]->(f1:file), (p1)-[e2:write]->(f2:file) "
      "RETURN p1.exename, f2.name LIMIT 1");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), 1u);
  bool found = false;
  for (const auto& row : full.value().rows) {
    if (row == limited.value().rows[0]) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(GraphDbTest, PushedLimitStopsSeedIteration) {
  const char* q = "MATCH (p:proc)-[e]->(o) RETURN p.exename LIMIT 1";
  MatchStats pushed, legacy;
  auto fast = db_.Query(q, &pushed);
  db_.options().push_limit = false;
  auto slow = db_.Query(q, &legacy);
  db_.options().push_limit = true;
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().rows.size(), 1u);
  EXPECT_EQ(slow.value().rows.size(), 1u);
  // Streaming stops after the first complete match; the legacy path visits
  // every proc seed before truncating.
  EXPECT_LT(pushed.seed_candidates, legacy.seed_candidates);
  EXPECT_EQ(pushed.seed_candidates, 1u);
}

TEST_F(GraphDbTest, SelectiveSeedsPickSmallestIndexProbe) {
  // Several procs share an exename while pid stays unique; with both props
  // indexed, the pattern lists exename first, so the legacy choice probes
  // the big bucket while the selective one probes the single-pid bucket.
  PropertyGraph& g = db_.graph();
  for (int i = 0; i < 8; ++i) {
    g.AddNode("proc", {{"exename", Value("/bin/dup")},
                       {"pid", Value(int64_t{500 + i})}});
  }
  g.CreateNodeIndex("proc", "pid");
  EXPECT_EQ(g.ProbeCountNodes("proc", "exename", Value("/bin/dup")), 8u);
  EXPECT_EQ(g.ProbeCountNodes("proc", "pid", Value(int64_t{503})), 1u);
  auto stats = g.GetNodeIndexStats("proc", "exename");
  EXPECT_EQ(stats.entries, 11u);       // 3 fixture procs + 8 dups
  EXPECT_EQ(stats.distinct_keys, 4u);  // tar, bzip2, curl, dup
  EXPECT_EQ(g.GetNodeIndexStats("proc", "nope").entries, 0u);

  const char* q =
      "MATCH (p:proc {exename: '/bin/dup', pid: 503}) RETURN p.pid";
  MatchStats selective, legacy;
  auto fast = db_.Query(q, &selective);
  db_.options().selective_seeds = false;
  auto slow = db_.Query(q, &legacy);
  db_.options().selective_seeds = true;
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().rows, slow.value().rows);
  ASSERT_EQ(fast.value().rows.size(), 1u);
  EXPECT_EQ(selective.seed_candidates, 1u);  // pid probe
  EXPECT_EQ(legacy.seed_candidates, 8u);     // exename probe
}

TEST_F(GraphDbTest, StartsWithEndsWith) {
  auto rs = db_.Query(
      "MATCH (f:file) WHERE f.name STARTS WITH '/tmp' AND "
      "f.name ENDS WITH '.bz2' RETURN f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/tmp/upload.tar.bz2");
}

TEST_F(GraphDbTest, ParseErrors) {
  EXPECT_FALSE(db_.Query("MATCH (p:proc RETURN p.exename").ok());
  EXPECT_FALSE(db_.Query("MATCH (p:proc) WHERE RETURN p.x").ok());
  EXPECT_FALSE(db_.Query("(p:proc)-[]->(f) RETURN f.name").ok());
}

TEST_F(GraphDbTest, UnboundVariableInReturnFails) {
  auto rs = db_.Query("MATCH (p:proc) RETURN q.exename");
  EXPECT_FALSE(rs.ok());
}

TEST_F(GraphDbTest, RelationshipUniqueness) {
  // A 2-hop cycle over the same edge must not match (edge uniqueness).
  PropertyGraph& g = db_.graph();
  NodeId a = g.AddNode("proc", {{"exename", Value("/bin/loop")}});
  NodeId b = g.AddNode("file", {{"name", Value("/tmp/loop")}});
  g.AddEdge(a, b, "read", {});
  auto rs = db_.Query(
      "MATCH (p:proc {exename: '/bin/loop'})-[*2..2]->(f) RETURN f.name");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(GraphDbTest, TypedAdjacencyMatchesFullScanResults) {
  // The grouped-by-type expansion must return exactly what the legacy full
  // edge-list scan returns, while traversing fewer edges.
  const char* q =
      "MATCH (p:proc)-[e:write]->(f:file) RETURN p.exename, f.name";
  MatchStats fast_stats, slow_stats;
  auto fast = db_.Query(q, &fast_stats);
  db_.options().typed_adjacency = false;
  auto slow = db_.Query(q, &slow_stats);
  db_.options().typed_adjacency = true;
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().rows, slow.value().rows);
  // tar has 1 write among 2 out-edges; the typed path skips the read.
  EXPECT_LT(fast_stats.edges_traversed, slow_stats.edges_traversed);
}

TEST_F(GraphDbTest, TypedExpansionOfAbsentTypeMatchesNothing) {
  auto rs = db_.Query("MATCH (p:proc)-[e:no_such_op]->(o) RETURN p.exename");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_TRUE(rs.value().rows.empty());
}

TEST_F(GraphDbTest, InternedLabelsAndTypes) {
  const PropertyGraph& g = db_.graph();
  uint32_t proc = g.LookupLabel("proc");
  uint32_t file = g.LookupLabel("file");
  ASSERT_NE(proc, kNoSymbol);
  ASSERT_NE(file, kNoSymbol);
  EXPECT_NE(proc, file);
  EXPECT_EQ(g.LookupLabel("socket"), kNoSymbol);
  EXPECT_EQ(g.node(tar_).label_id, proc);
  uint32_t read = g.LookupEdgeType("read");
  ASSERT_NE(read, kNoSymbol);
  // Typed adjacency returns exactly the read-edges of tar.
  ASSERT_EQ(g.OutEdges(tar_, read).size(), 1u);
  EXPECT_EQ(g.edge(g.OutEdges(tar_, read)[0]).dst, passwd_);
  EXPECT_TRUE(g.OutEdges(tar_, kNoSymbol).empty());
}

TEST_F(GraphDbTest, InListUsesHashedProbe) {
  const char* q =
      "MATCH (f:file) WHERE f.name IN ['/etc/passwd', '/tmp/upload.tar'] "
      "RETURN f.name";
  auto hashed = db_.Query(q);
  db_.options().hashed_in_lists = false;
  auto scanned = db_.Query(q);
  db_.options().hashed_in_lists = true;
  ASSERT_TRUE(hashed.ok()) << hashed.status().ToString();
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(hashed.value().rows.size(), 2u);
  EXPECT_EQ(hashed.value().rows, scanned.value().rows);
}

TEST_F(GraphDbTest, FindPropHeterogeneousLookup) {
  // FindProp takes a string_view and must not require a std::string key.
  const Node& n = db_.graph().node(tar_);
  std::string_view key = "exename";
  const Value* v = n.FindProp(key);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->AsText(), "/bin/tar");
  EXPECT_EQ(n.FindProp("no_such_prop"), nullptr);
}

TEST(ShardedGraphTest, AggregatedNodeIndexStatsStayExact) {
  // Selective seeding ranks access paths by per-value cardinality, so the
  // aggregates must stay exact when an index is split across shards: a
  // value occurring in several shards counts once in distinct_keys, and
  // entries/ProbeCountNodes sum every shard's bucket.
  PropertyGraph g(4);
  ASSERT_EQ(g.shard_count(), 4u);
  // 9 procs sharing one exename land in several shards; 3 unique ones.
  for (int i = 0; i < 9; ++i) {
    g.AddNode("proc", {{"exename", Value("/bin/dup")}});
  }
  for (int i = 0; i < 3; ++i) {
    g.AddNode("proc", {{"exename", Value("/bin/u" + std::to_string(i))}});
  }
  g.AddNode("proc", {});  // no indexed property: not an index entry
  g.CreateNodeIndex("proc", "exename");

  EXPECT_EQ(g.ProbeCountNodes("proc", "exename", Value("/bin/dup")), 9u);
  EXPECT_EQ(g.ProbeCountNodes("proc", "exename", Value("/bin/u1")), 1u);
  auto stats = g.GetNodeIndexStats("proc", "exename");
  EXPECT_EQ(stats.entries, 12u);
  EXPECT_EQ(stats.distinct_keys, 4u);  // dup + u0..u2
  EXPECT_EQ(g.GetNodeIndexStats("proc", "nope").entries, 0u);
  EXPECT_EQ(g.GetNodeIndexStats("proc", "nope").distinct_keys, 0u);

  // Per-shard buckets partition the candidate set: disjoint, complete, and
  // each id owned by the shard it came from.
  size_t found = 0;
  for (size_t s = 0; s < g.shard_count(); ++s) {
    for (NodeId id : g.ProbeNodes("proc", "exename", Value("/bin/dup"), s)) {
      EXPECT_EQ(g.ShardOf(id), s);
      EXPECT_EQ(g.node(id).FindProp("exename")->AsText(), "/bin/dup");
      ++found;
    }
  }
  EXPECT_EQ(found, 9u);
  // Label buckets partition the same way.
  size_t labeled = 0;
  for (size_t s = 0; s < g.shard_count(); ++s) {
    labeled += g.NodesWithLabel("proc", s).size();
  }
  EXPECT_EQ(labeled, 13u);
}

TEST(ShardedGraphTest, SingleShardPreservesLegacyApi) {
  PropertyGraph g(1);
  NodeId a = g.AddNode("proc", {{"exename", Value("/bin/x")}});
  NodeId b = g.AddNode("file", {{"name", Value("/tmp/y")}});
  g.AddEdge(a, b, "write", {});
  g.CreateNodeIndex("proc", "exename");
  EXPECT_EQ(g.shard_count(), 1u);
  EXPECT_EQ(g.NodesWithLabel("proc").size(), 1u);
  EXPECT_EQ(g.ProbeNodes("proc", "exename", Value("/bin/x")).size(), 1u);
  EXPECT_EQ(g.OutEdges(a).size(), 1u);
}

TEST(ShardedGraphTest, ParallelMatchAgreesWithSerial) {
  // A few hundred nodes with planted attack subgraphs: every parallel
  // configuration must return the serial result set (order-normalized),
  // and pushed limits must behave structurally.
  GraphDatabase db(4);
  Rng rng(7);
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 400;
  spec.edges = 1200;
  spec.edge_types = 4;
  fixtures::SyntheticGraph sg =
      fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  fixtures::AttackPlants plants =
      fixtures::PlantAttackSubgraphs(db.graph(), spec);
  db.graph().CreateNodeIndex("proc", "exename");
  db.graph().CreateNodeIndex("file", "name");

  auto rows_sorted = [](const GraphResultSet& rs) {
    std::vector<std::string> out;
    for (const auto& row : rs.rows) {
      std::string r;
      for (const Value& v : row) r += v.ToString() + "\x1f";
      out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const char* queries[] = {
      "MATCH (p:proc)-[e:op1]->(f:file) RETURN p.exename, f.name",
      "MATCH (p:proc)-[r:exfil_read]->(d:file), (p)-[w:exfil_write]->(a:file)"
      " RETURN d.name, a.name",
      "MATCH (p:proc)-[e:op2]->(f:file) RETURN DISTINCT p.exename",
  };
  for (const char* q : queries) {
    db.options() = MatchOptions{};
    db.options().parallel_shards = 1;
    auto serial = db.Query(q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();

    db.options() = MatchOptions{};
    db.options().parallel_shards = 4;
    db.options().parallel_min_seeds = 0;
    MatchStats stats;
    auto parallel = db.Query(q, &stats);
    ASSERT_TRUE(parallel.ok()) << q << ": " << parallel.status().ToString();
    EXPECT_EQ(rows_sorted(parallel.value()), rows_sorted(serial.value())) << q;
    // Parallel runs are deterministic for a fixed graph + shard count.
    auto again = db.Query(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().rows, parallel.value().rows) << q;
  }

  // Cooperative LIMIT budget: the workers collectively emit exactly the
  // limit, and every returned row comes from the full result.
  db.options() = MatchOptions{};
  db.options().parallel_shards = 1;
  auto full = db.Query("MATCH (p:proc)-[e]->(f:file) RETURN p.exename");
  ASSERT_TRUE(full.ok());
  ASSERT_GT(full.value().rows.size(), 50u);
  std::vector<std::string> full_rows = rows_sorted(full.value());
  db.options() = MatchOptions{};
  db.options().parallel_shards = 4;
  db.options().parallel_min_seeds = 0;
  auto limited =
      db.Query("MATCH (p:proc)-[e]->(f:file) RETURN p.exename LIMIT 50");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), 50u);
  std::vector<std::string> got = rows_sorted(limited.value());
  EXPECT_TRUE(std::includes(full_rows.begin(), full_rows.end(), got.begin(),
                            got.end()));
  (void)sg;
  (void)plants;
}

TEST_F(GraphDbTest, QueryRoundTrip) {
  const char* text =
      "MATCH (p:proc {exename: '/bin/tar'})-[e:read]->(f:file) "
      "WHERE f.name CONTAINS 'passwd' RETURN DISTINCT p.exename, f.name";
  auto q = ParseCypher(text);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  auto printed = q.value().ToString();
  auto rs1 = db_.Query(text);
  auto rs2 = db_.Query(printed);
  ASSERT_TRUE(rs1.ok());
  ASSERT_TRUE(rs2.ok()) << printed << " -> " << rs2.status().ToString();
  EXPECT_EQ(rs1.value().rows, rs2.value().rows);
}

TEST(BlockResultTest, ParallelNonDistinctAdoptsWorkerBlocksZeroCopy) {
  GraphDatabase db(4);
  Rng rng(11);
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 400;
  spec.edges = 1200;
  spec.edge_types = 4;
  fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  db.graph().CreateNodeIndex("proc", "exename");

  db.options().parallel_min_seeds = 0;
  const char* q = "MATCH (p:proc)-[e:op1]->(f:file) RETURN p.exename, f.name";
  auto blocks = db.QueryBlocks(q);
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  ASSERT_GT(blocks.value().rows.row_count(), 0u);
  // Non-DISTINCT parallel merge: every row arrives in an adopted worker
  // block — no per-row moves (the ROADMAP zero-copy merge item).
  EXPECT_EQ(blocks.value().rows.pushed_rows(), 0u);
  EXPECT_EQ(blocks.value().rows.adopted_rows(),
            blocks.value().rows.row_count());
  EXPECT_LE(blocks.value().rows.block_count(), db.graph().shard_count());

  // The flattening wrapper sees the same rows in the same order.
  auto flat = db.Query(q);
  ASSERT_TRUE(flat.ok());
  size_t i = 0;
  auto cursor = blocks.value().cursor();
  while (const std::vector<Value>* row = cursor.Next()) {
    ASSERT_LT(i, flat.value().rows.size());
    EXPECT_EQ(*row, flat.value().rows[i]);
    ++i;
  }
  EXPECT_EQ(i, flat.value().rows.size());

  // Streaming DISTINCT re-dedups across shards partition by partition
  // (workers hash-partition their emissions), so the merge adopts whole
  // compacted partition blocks — no per-row pushes, same as non-DISTINCT.
  auto distinct = db.QueryBlocks(
      "MATCH (p:proc)-[e:op2]->(f:file) RETURN DISTINCT p.exename");
  ASSERT_TRUE(distinct.ok());
  ASSERT_GT(distinct.value().rows.row_count(), 0u);
  EXPECT_EQ(distinct.value().rows.pushed_rows(), 0u);
  EXPECT_EQ(distinct.value().rows.adopted_rows(),
            distinct.value().rows.row_count());
}

TEST(BlockResultTest, PresetCancelFlagCancelsQuery) {
  GraphDatabase db(4);
  Rng rng(12);
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 200;
  spec.edges = 400;
  fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  std::atomic<bool> cancel{true};
  MatchOptions options = db.options();
  options.cancel = &cancel;
  auto rs = db.QueryBlocks(
      "MATCH (p:proc)-[e]->(f:file) RETURN p.exename", options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
}

TEST(BlockResultTest, DeadlineBoundsSingleGiantScan) {
  // ROADMAP deadline-overshoot item: a deadline that expires mid-scan must
  // stop INSIDE the storage executor (one poll stride), not after the
  // whole 100k-node scan finishes. The fixture is the bench's 100k-node
  // population with enough edges that a full match takes well beyond the
  // deadline.
  GraphDatabase db(4);
  Rng rng(14);
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 100'000;
  spec.edges = 150'000;
  fixtures::BuildSyntheticGraph(db.graph(), spec, rng);

  MatchOptions options = db.options();
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  MatchStats stats;
  auto start = std::chrono::steady_clock::now();
  auto rs = db.QueryBlocks("MATCH (p:proc)-[e]->(f:file) RETURN p.exename",
                           options, &stats);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTimeout);
  // Overshoot is bounded by the poll stride, not the scan length: far less
  // than a full pass over 50k proc seeds (generous wall-clock margin for
  // loaded CI runners).
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2'000);
  EXPECT_LT(stats.seed_candidates, 50'000u)
      << "scan should stop at a deadline poll, not drain every seed";

  // A comfortable deadline does not fire.
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  auto ok = db.QueryBlocks(
      "MATCH (p:proc)-[e]->(f:file) RETURN p.exename LIMIT 5", options);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.row_count(), 5u);
}

TEST(BlockResultTest, PreSplitOwnedSeedsMatchSkipScan) {
  // A multi-value IN probe materializes an owned seed union; the parallel
  // driver pre-splits it per shard at plan time. Results must equal the
  // serial run exactly (same rows, same shard-merge order).
  GraphDatabase db(4);
  Rng rng(13);
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 600;
  spec.edges = 1800;
  spec.edge_types = 3;
  fixtures::SyntheticGraph sg =
      fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  db.graph().CreateNodeIndex("file", "name");
  std::string q =
      "MATCH (p:proc)-[e:op1]->(f:file) WHERE f.name IN [" +
      fixtures::RandomFileNameInList(spec, sg, rng, 96) +
      "] RETURN p.exename, f.name";

  db.options() = MatchOptions{};
  db.options().parallel_shards = 1;
  auto serial = db.Query(q);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  db.options() = MatchOptions{};
  db.options().parallel_shards = 4;
  db.options().parallel_min_seeds = 0;
  auto parallel = db.Query(q);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

  auto normalize = [](const GraphResultSet& rs) {
    std::vector<std::string> out;
    for (const auto& row : rs.rows) {
      std::string r;
      for (const Value& v : row) r += v.ToString() + "\x1f";
      out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(normalize(parallel.value()), normalize(serial.value()));
}

}  // namespace
}  // namespace raptor::graphdb
