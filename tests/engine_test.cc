#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "audit/parser.h"
#include "engine/compiler.h"
#include "engine/executor.h"
#include "storage/store.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::engine {
namespace {

using audit::EventOp;

/// A hand-built store with a small known event chain plus decoys:
///   bash -start-> tar; tar -read-> /etc/passwd; tar -write-> /tmp/out.tar;
///   scp -send-> 9.9.9.9; decoy process reads an unrelated file.
class EngineTest : public ::testing::Test {
 protected:
  static audit::SyscallRecord Rec(audit::Timestamp ts, const char* syscall,
                                  const char* exe, long long pid) {
    audit::SyscallRecord r;
    r.ts = ts;
    r.duration = 10;
    r.syscall = syscall;
    r.exe = exe;
    r.pid = pid;
    return r;
  }

  void SetUp() override {
    std::vector<audit::SyscallRecord> recs;
    {
      auto r = Rec(1'000'000, "execve", "/bin/bash", 10);
      r.target_exe = "/bin/tar";
      r.target_pid = 11;
      recs.push_back(r);
    }
    {
      auto r = Rec(2'000'000, "read", "/bin/tar", 11);
      r.path = "/etc/passwd";
      r.ret = 1000;
      recs.push_back(r);
    }
    {
      auto r = Rec(4'000'000, "write", "/bin/tar", 11);
      r.path = "/tmp/out.tar";
      r.ret = 2000;
      recs.push_back(r);
    }
    {
      auto r = Rec(6'000'000, "sendto", "/usr/bin/scp", 12);
      r.src_ip = "10.0.0.5";
      r.src_port = 40000;
      r.dst_ip = "9.9.9.9";
      r.dst_port = 22;
      r.protocol = "tcp";
      r.ret = 4096;
      recs.push_back(r);
    }
    {
      auto r = Rec(3'000'000, "read", "/usr/bin/vim", 13);
      r.path = "/home/user/notes.txt";
      r.ret = 64;
      recs.push_back(r);
    }
    audit::ParsedLog log;
    audit::AuditLogParser parser;
    ASSERT_TRUE(parser.Parse(recs, &log).ok());
    ASSERT_TRUE(store_.Load(log).ok());
  }

  ExecReport Run(const char* query, ExecOptions opts = {}) {
    TbqlExecutor executor(&store_);
    auto report = executor.ExecuteText(query, opts);
    EXPECT_TRUE(report.ok()) << query << " -> " << report.status().ToString();
    return report.ok() ? std::move(report).value() : ExecReport{};
  }

  storage::AuditStore store_;
};

TEST_F(EngineTest, SingleEventPattern) {
  auto report = Run(
      "proc p[\"%tar%\"] read file f[\"%passwd%\"] return p, f");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][0], "/bin/tar");
  EXPECT_EQ(report.results.rows[0][1], "/etc/passwd");
}

TEST_F(EngineTest, TemporalChainHonored) {
  auto ok = Run(
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc p write file g[\"%out.tar%\"] as e2 "
      "with e1 before e2 return p, g");
  EXPECT_EQ(ok.results.rows.size(), 1u);
  // Reversed order must not match.
  auto rev = Run(
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc p write file g[\"%out.tar%\"] as e2 "
      "with e2 before e1 return p, g");
  EXPECT_TRUE(rev.results.rows.empty());
}

TEST_F(EngineTest, TemporalGapBounds) {
  // Gap between read(end 2.00001s) and write(start 4s) is ~2 seconds.
  auto inside = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e1 before[0-5 sec] e2 return p");
  EXPECT_EQ(inside.results.rows.size(), 1u);
  auto outside = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e1 before[0-1 sec] e2 return p");
  EXPECT_TRUE(outside.results.rows.empty());
}

TEST_F(EngineTest, WithinTemporalOperator) {
  // read starts at 2s, write at 4s: distance 2s, symmetric in order.
  auto inside = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e2 within[0-3 sec] e1 return p");
  EXPECT_EQ(inside.results.rows.size(), 1u);
  auto outside = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e1 within[0-1 sec] e2 return p");
  EXPECT_TRUE(outside.results.rows.empty());
}

TEST_F(EngineTest, AfterOperatorIsBeforeReversed) {
  auto fwd = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e2 after e1 return p");
  EXPECT_EQ(fwd.results.rows.size(), 1u);
  auto rev = Run(
      "proc p read file f[\"%passwd%\"] as e1 proc p write file g as e2 "
      "with e1 after e2 return p");
  EXPECT_TRUE(rev.results.rows.empty());
}

TEST_F(EngineTest, EntityIdReuseJoinsAcrossPatterns) {
  // p must be the same process in both patterns: tar reads passwd AND
  // writes out.tar. A query binding the decoy process must not join.
  auto report = Run(
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc p write file g as e2 return distinct p");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][0], "/bin/tar");
}

TEST_F(EngineTest, ProcessStartPattern) {
  auto report = Run("proc p start proc q[\"%tar%\"] return p, q");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][0], "/bin/bash");
}

TEST_F(EngineTest, NetworkPatternWithPortFilter) {
  auto report = Run(
      "proc p send ip i[dstport = 22] return p, i.dstip, i.dstport");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][1], "9.9.9.9");
}

TEST_F(EngineTest, GlobalWindowRestrictsMatches) {
  auto all = Run("proc p read || write file f return p, f");
  auto windowed = Run(
      "from 0 to 2500000 proc p read || write file f return p, f");
  EXPECT_GT(all.results.rows.size(), windowed.results.rows.size());
  ASSERT_EQ(windowed.results.rows.size(), 1u);
  EXPECT_EQ(windowed.results.rows[0][1], "/etc/passwd");
}

TEST_F(EngineTest, LastWindowUsesNewestEvent) {
  // Newest event ends at ~6s; "last 3 sec" covers [3s, 6s], which holds
  // the out.tar write but not the passwd read.
  auto ok = Run("last 3 sec proc p write file f return p, f");
  ASSERT_EQ(ok.results.rows.size(), 1u);
  EXPECT_EQ(ok.results.rows[0][1], "/tmp/out.tar");
  auto excluded = Run("last 3 sec proc p read file f[\"%passwd%\"] "
                      "return p, f");
  EXPECT_TRUE(excluded.results.rows.empty());
}

TEST_F(EngineTest, EventAttributeReturn) {
  auto report = Run(
      "proc p read file f[\"%passwd%\"] as e1 return e1, e1.amount");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][1], "1000");
}

TEST_F(EngineTest, Length1PathEquivalentToEventPattern) {
  auto event = Run("proc p read file f[\"%passwd%\"] return p, f");
  auto path = Run("proc p ->[read] file f[\"%passwd%\"] return p, f");
  EXPECT_EQ(event.results.rows, path.results.rows);
}

TEST_F(EngineTest, MultiHopPathThroughIntermediate) {
  // bash -> tar -> /etc/passwd is a 2-hop forward chain.
  auto report = Run(
      "proc p[\"%bash%\"] ~>(2~2) file f[\"%passwd%\"] return p, f");
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][0], "/bin/bash");
}

TEST_F(EngineTest, ZeroMatchPatternDoesNotEmptyResult) {
  auto report = Run(
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc x[\"%nonexistent%\"] write file y[\"%nothing%\"] as e2 "
      "return p, f");
  EXPECT_EQ(report.unmatched_patterns.size(), 1u);
  ASSERT_EQ(report.results.rows.size(), 1u);
  EXPECT_EQ(report.results.rows[0][0], "/bin/tar");
}

TEST_F(EngineTest, AllOptionsCombinationsAgree) {
  const char* query =
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc p write file g[\"%out%\"] as e2 "
      "with e1 before e2 return distinct p, f, g";
  auto baseline = Run(query);
  for (bool sched : {false, true}) {
    for (bool prop : {false, true}) {
      for (bool par : {false, true}) {
        ExecOptions opts;
        opts.use_scheduler = sched;
        opts.propagate_constraints = prop;
        opts.parallel_patterns = par;
        auto report = Run(query, opts);
        EXPECT_EQ(report.results.rows, baseline.results.rows)
            << "sched=" << sched << " prop=" << prop << " par=" << par;
      }
    }
  }
}

TEST_F(EngineTest, SpeculativePatternsMatchSerialSchedule) {
  // Patterns 0 and 1 share entity p, so the DAG serializes them; the
  // speculative schedule runs both unconstrained in parallel and replays
  // the domains post-hoc. Results, match counts, and unmatched-pattern
  // lists must be byte-identical to the serial schedule — only the
  // executed query texts may differ (no IN-constraint conjuncts).
  const char* query =
      "proc p read file f[\"%passwd%\"] as e1 "
      "proc p write file g[\"%out%\"] as e2 "
      "with e1 before e2 return distinct p, f, g";
  ExecOptions serial;
  serial.parallel_patterns = false;
  auto baseline = Run(query, serial);
  ExecOptions spec;
  spec.speculative_patterns = true;
  auto report = Run(query, spec);
  EXPECT_EQ(report.results.rows, baseline.results.rows);
  EXPECT_EQ(report.pattern_match_counts, baseline.pattern_match_counts);
  EXPECT_EQ(report.unmatched_patterns, baseline.unmatched_patterns);
  EXPECT_EQ(report.matched_event_ids, baseline.matched_event_ids);

  // A zero-match pattern propagates no domain; the dependent pattern runs
  // unfiltered in both schedules and the reports must still agree.
  const char* pruned =
      "proc p[\"%nonexistent%\"] read file f as e1 "
      "proc p write file g as e2 return p";
  auto pruned_serial = Run(pruned, serial);
  auto pruned_spec = Run(pruned, spec);
  EXPECT_EQ(pruned_spec.results.rows, pruned_serial.results.rows);
  EXPECT_EQ(pruned_spec.pattern_match_counts,
            pruned_serial.pattern_match_counts);
  EXPECT_EQ(pruned_spec.unmatched_patterns, pruned_serial.unmatched_patterns);
}

TEST_F(EngineTest, PatternDependenciesChainSharedEntities) {
  // p links patterns 0 and 1; pattern 2 (distinct process q) is
  // independent of both and may execute concurrently.
  auto q = tbql::ParseTbql(
      "proc p read file f as e1 "
      "proc p write file g as e2 "
      "proc q send ip i as e3 return p");
  ASSERT_TRUE(q.ok());
  auto aq = tbql::Analyze(q.value());
  ASSERT_TRUE(aq.ok());
  std::vector<size_t> order = {0, 1, 2};
  auto deps = PatternDependencies(aq.value(), order);
  ASSERT_EQ(deps.size(), 3u);
  EXPECT_TRUE(deps[0].empty());
  EXPECT_EQ(deps[1], (std::vector<size_t>{0}));
  EXPECT_TRUE(deps[2].empty());
  // The executed report carries the same DAG.
  auto report = Run(
      "proc p read file f as e1 proc p write file g as e2 "
      "proc q send ip i as e3 return p");
  ASSERT_EQ(report.pattern_deps.size(), 3u);
  EXPECT_EQ(report.pattern_deps[1], (std::vector<size_t>{0}));
  EXPECT_TRUE(report.pattern_deps[2].empty());
}

TEST_F(EngineTest, PresetCancelFlagYieldsCancelled) {
  std::atomic<bool> cancel{true};
  ExecOptions opts;
  opts.cancel = &cancel;
  TbqlExecutor executor(&store_);
  auto report =
      executor.ExecuteText("proc p read file f return p, f", opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kCancelled);
}

TEST_F(EngineTest, ExpiredDeadlineYieldsTimeout) {
  ExecOptions opts;
  opts.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);
  TbqlExecutor executor(&store_);
  auto report =
      executor.ExecuteText("proc p read file f return p, f", opts);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kTimeout);
}

TEST_F(EngineTest, PruningScoreOrdersByConstraints) {
  auto q = tbql::ParseTbql(
      "proc p read file f as e1 "
      "proc p2[\"%tar%\"] write file f2[\"%out%\"] as e2 return p");
  ASSERT_TRUE(q.ok());
  auto aq = tbql::Analyze(q.value());
  ASSERT_TRUE(aq.ok());
  EXPECT_LT(PruningScore(aq.value(), 0), PruningScore(aq.value(), 1));
}

TEST_F(EngineTest, CompilerEmitsSqlForEventPattern) {
  auto q = tbql::ParseTbql(
      "proc p[\"%tar%\"] read file f[\"%passwd%\"] as e1 return p");
  auto aq = tbql::Analyze(q.value());
  auto dq = CompilePattern(aq.value(), 0, {});
  ASSERT_TRUE(dq.ok());
  EXPECT_EQ(dq.value().backend, Backend::kRelational);
  EXPECT_NE(dq.value().text.find("LIKE '%tar%'"), std::string::npos);
  EXPECT_NE(dq.value().text.find("e.op = 'read'"), std::string::npos);
  // The emitted SQL must execute on the relational backend.
  EXPECT_TRUE(store_.relational().Query(dq.value().text).ok());
}

TEST_F(EngineTest, CompilerEmitsCypherForPathPattern) {
  auto q = tbql::ParseTbql(
      "proc p[\"%bash%\"] ~>(1~3)[read] file f return p, f");
  auto aq = tbql::Analyze(q.value());
  auto dq = CompilePattern(aq.value(), 0, {});
  ASSERT_TRUE(dq.ok());
  EXPECT_EQ(dq.value().backend, Backend::kGraph);
  EXPECT_NE(dq.value().text.find("MATCH"), std::string::npos);
  EXPECT_NE(dq.value().text.find("*0..2"), std::string::npos);
  EXPECT_TRUE(store_.graph().Query(dq.value().text).ok());
}

TEST_F(EngineTest, ConstraintInjection) {
  auto q = tbql::ParseTbql("proc p read file f as e1 return p");
  auto aq = tbql::Analyze(q.value());
  EntityConstraints constraints;
  constraints["p"] = {3, 5, 8};
  auto dq = CompilePattern(aq.value(), 0, constraints);
  ASSERT_TRUE(dq.ok());
  // The subject alias in per-pattern SQL is "s".
  EXPECT_NE(dq.value().text.find("s.id IN (3, 5, 8)"), std::string::npos)
      << dq.value().text;
  EXPECT_NE(dq.value().text.find("e.subject IN (3, 5, 8)"), std::string::npos);
}

TEST_F(EngineTest, GiantQueriesAgreeWithScheduledExecution) {
  const char* query =
      "proc p[\"%tar%\"] read file f[\"%passwd%\"] as e1 "
      "proc p write file g[\"%out%\"] as e2 "
      "with e1 before e2 return distinct p, f, g";
  auto parsed = tbql::ParseTbql(query);
  auto aq = tbql::Analyze(parsed.value());
  auto scheduled = Run(query);

  auto sql = CompileGiantSql(aq.value());
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  auto sql_rs = store_.relational().Query(sql.value());
  ASSERT_TRUE(sql_rs.ok()) << sql.value() << " -> "
                           << sql_rs.status().ToString();
  ASSERT_EQ(sql_rs.value().rows.size(), scheduled.results.rows.size());
  EXPECT_EQ(sql_rs.value().rows[0][0].AsText(), "/bin/tar");

  auto cypher = CompileGiantCypher(aq.value());
  ASSERT_TRUE(cypher.ok()) << cypher.status().ToString();
  auto cy_rs = store_.graph().Query(cypher.value());
  ASSERT_TRUE(cy_rs.ok()) << cypher.value() << " -> "
                          << cy_rs.status().ToString();
  ASSERT_EQ(cy_rs.value().rows.size(), scheduled.results.rows.size());
  EXPECT_EQ(cy_rs.value().rows[0][0].AsText(), "/bin/tar");
}

TEST_F(EngineTest, GiantSqlRejectsMultiHopPaths) {
  auto q = tbql::ParseTbql("proc p ~>(1~3) file f return p, f");
  auto aq = tbql::Analyze(q.value());
  EXPECT_FALSE(CompileGiantSql(aq.value()).ok());
  EXPECT_TRUE(CompileGiantCypher(aq.value()).ok());
}

TEST_F(EngineTest, ToLength1PathQueryPreservesSemantics) {
  auto q = tbql::ParseTbql(
      "proc p read file f[\"%passwd%\"] as e1 return distinct p, f");
  tbql::TbqlQuery path_q = ToLength1PathQuery(q.value());
  EXPECT_TRUE(path_q.patterns[0].path.is_path);
  TbqlExecutor executor(&store_);
  auto a = executor.Execute(q.value());
  auto b = executor.Execute(path_q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().results.rows, b.value().results.rows);
}

}  // namespace
}  // namespace raptor::engine
