// Hunt library: the ATT&CK technique catalog, CTI-synthesized standing
// hunts, and the multi-query optimizer. The MQO differential is the core:
// a fleet of structurally-overlapping standing hunts run against two
// identically-streamed stores — one service with dedupe + shared
// subresults, one without — and every hunt's per-epoch delta must be
// byte-identical across the two, crossed with parallel_shards {1, 4}.
// Runs under the TSan CI job (RAPTOR_POOL_THREADS=4).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "huntlib/catalog.h"
#include "huntlib/feed.h"
#include "huntlib/mqo.h"
#include "service/hunt_service.h"
#include "storage/graphdb/cypher_parser.h"
#include "storage/store.h"
#include "stream/event_stream.h"
#include "tbql/parser.h"

namespace raptor {
namespace {

using service::HuntRequest;
using service::HuntService;
using service::HuntServiceOptions;
using service::IngestReport;
using service::QueryDialect;
using service::StandingOptions;
using service::StandingSink;
using service::StandingUpdate;

// ---- catalog ---------------------------------------------------------------

TEST(HuntCatalogTest, EveryTemplateParsesUnderItsDialect) {
  const std::vector<huntlib::Technique>& all = huntlib::AllTechniques();
  ASSERT_GE(all.size(), 12u);
  for (const huntlib::Technique& t : all) {
    SCOPED_TRACE(t.id);
    // Unfilled slots substitute empty — every technique must still yield
    // a runnable query with no IOCs at all.
    std::string text = huntlib::Instantiate(t);
    EXPECT_EQ(text.find('{'), std::string::npos)
        << "unsubstituted placeholder in: " << text;
    if (t.dialect == QueryDialect::kTbql) {
      auto q = tbql::ParseTbql(text);
      EXPECT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
    } else if (t.dialect == QueryDialect::kCypher) {
      auto q = graphdb::ParseCypher(text);
      EXPECT_TRUE(q.ok()) << q.status().ToString() << "\n" << text;
    }
    EXPECT_FALSE(t.name.empty());
    EXPECT_FALSE(t.references.empty());
  }
  // Ordered by technique id, no duplicates.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].id, all[i].id);
  }
}

TEST(HuntCatalogTest, LookupAndTacticIndex) {
  const huntlib::Technique* t = huntlib::FindTechnique("T1041");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->tactic, huntlib::Tactic::kExfiltration);
  EXPECT_EQ(huntlib::FindTechnique("T9999"), nullptr);
  auto collection = huntlib::TechniquesForTactic(huntlib::Tactic::kCollection);
  ASSERT_FALSE(collection.empty());
  for (const huntlib::Technique* c : collection) {
    EXPECT_EQ(c->tactic, huntlib::Tactic::kCollection);
  }
}

TEST(HuntCatalogTest, InstantiateFillsSlots) {
  const huntlib::Technique* t = huntlib::FindTechnique("T1005");
  ASSERT_NE(t, nullptr);
  std::string filled = huntlib::Instantiate(*t, {{"file", "payroll"}});
  EXPECT_NE(filled.find("payroll"), std::string::npos);
  // Unknown keys are ignored, not injected.
  std::string ignored = huntlib::Instantiate(*t, {{"nope", "XYZ"}});
  EXPECT_EQ(ignored.find("XYZ"), std::string::npos);
}

// ---- canonical keys --------------------------------------------------------

TEST(CanonicalKeyTest, RenamedTbqlPatternIdsShareAKey) {
  // Pattern ids differ but neither appears in the projection: the two
  // hunts deliver byte-identical rows and headers, so they must dedupe.
  std::string a = huntlib::CanonicalTbqlKey(
      "proc p read file f as e1 proc p send ip i as e2 "
      "with e1 before e2 return p, f");
  std::string b = huntlib::CanonicalTbqlKey(
      "proc p read file f as x1 proc p send ip i as x2 "
      "with x1 before x2 return p, f");
  EXPECT_EQ(a, b);
}

TEST(CanonicalKeyTest, CypherEdgeVariableRenameSharesAKey) {
  std::string a = huntlib::CanonicalCypherKey(
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name");
  std::string b = huntlib::CanonicalCypherKey(
      "MATCH (p:proc)-[edge:read]->(f:file) RETURN p.exename, f.name");
  EXPECT_EQ(a, b);
}

TEST(CanonicalKeyTest, ProjectionDifferencesSplitKeys) {
  // Same structure, different output columns: renaming the node variable
  // changes the delivered headers, so the keys must differ.
  std::string a = huntlib::CanonicalCypherKey(
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name");
  std::string b = huntlib::CanonicalCypherKey(
      "MATCH (q:proc)-[e:read]->(f:file) RETURN q.exename, f.name");
  EXPECT_NE(a, b);
  EXPECT_NE(huntlib::CanonicalTbqlKey("proc p read file f return p, f"),
            huntlib::CanonicalTbqlKey("proc p read file f return f, p"));
}

TEST(CanonicalKeyTest, UnparseableFallsBackToRawText) {
  std::string a = huntlib::CanonicalTbqlKey("not a query at all");
  EXPECT_EQ(a, huntlib::CanonicalTbqlKey("not a query at all"));
  EXPECT_NE(a, huntlib::CanonicalTbqlKey("also not a query"));
  // Dialect prefixes keep a TBQL hunt from colliding with a SQL hunt of
  // identical text.
  EXPECT_NE(huntlib::CanonicalTbqlKey("select 1"),
            huntlib::CanonicalSqlKey("select 1"));
}

// ---- synthesizer bridge ----------------------------------------------------

TEST(HuntLibraryTest, FromTechniqueProducesRunnableSpec) {
  huntlib::HuntLibrary library;
  auto spec = library.FromTechnique("T1021", {}, "tenant-a");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().technique_id, "T1021");
  EXPECT_EQ(spec.value().request.tenant, "tenant-a");
  EXPECT_FALSE(library.FromTechnique("T0000").ok());
}

TEST(HuntLibraryTest, FromIocFeedStampsSlottedTechniques) {
  huntlib::HuntLibrary library;
  std::vector<huntlib::HuntSpec> specs = library.FromIocFeed(
      "Indicators: the dropper /tmp/stage2.bin beacons to 198.51.100.23 "
      "over 443.");
  ASSERT_FALSE(specs.empty());
  bool some_param_landed = false;
  for (const huntlib::HuntSpec& spec : specs) {
    SCOPED_TRACE(spec.name);
    EXPECT_FALSE(spec.technique_id.empty());
    if (spec.request.dialect == QueryDialect::kTbql) {
      auto q = tbql::ParseTbql(spec.request.text);
      EXPECT_TRUE(q.ok()) << q.status().ToString();
    } else if (spec.request.dialect == QueryDialect::kCypher) {
      EXPECT_TRUE(graphdb::ParseCypher(spec.request.text).ok());
    }
    if (spec.request.text.find("stage2.bin") != std::string::npos ||
        spec.request.text.find("198.51.100.23") != std::string::npos) {
      some_param_landed = true;
    }
  }
  EXPECT_TRUE(some_param_landed)
      << "no recognized IOC substituted into any template";
}

// ---- shared fixtures -------------------------------------------------------

std::string RowKey(const std::vector<sql::Value>& row) {
  std::string key;
  for (const sql::Value& v : row) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

/// The simulated fleet workload: benign noise plus one exfil-shaped
/// attack (reads two secret documents, then ships them out) landing
/// mid-stream.
stream::SimulatorSourceOptions FleetStream() {
  stream::SimulatorSourceOptions opts;
  opts.profile.num_users = 4;
  opts.profile.num_processes = 30;
  opts.profile.mean_records_per_process = 12;
  opts.profile.duration = 30LL * 60 * 1000 * 1000;
  opts.profile.seed = 11;
  opts.batch_window_us = 5LL * 60 * 1000 * 1000;
  stream::SimulatorSourceOptions::TimedAttack attack;
  attack.at = 12LL * 60 * 1000 * 1000;
  audit::AttackStep read0;
  read0.exe = "/attack/exfil";
  read0.pid = 666;
  read0.op = audit::EventOp::kRead;
  read0.object_path = "/secret/doc0";
  read0.syscall_count = 4;
  read0.bytes = 1 << 16;
  read0.at = 0;
  audit::AttackStep read1 = read0;
  read1.object_path = "/secret/doc1";
  read1.at = 500'000;
  audit::AttackStep send;
  send.exe = "/attack/exfil";
  send.pid = 666;
  send.op = audit::EventOp::kConnect;
  send.dst_ip = "203.0.113.7";
  send.dst_port = 443;
  send.at = 1'000'000;
  attack.steps = {read0, read1, send};
  opts.attacks.push_back(std::move(attack));
  return opts;
}

Status ApplyBatch(storage::AuditStore* store, HuntService* service,
                  audit::AuditLogParser* parser, audit::ParsedLog* accum,
                  const std::vector<audit::SyscallRecord>& records) {
  RAPTOR_RETURN_NOT_OK(parser->Parse(records, accum));
  auto epoch = service->Ingest([&](IngestReport* report) {
    storage::AppendStats stats;
    RAPTOR_RETURN_NOT_OK(store->Append(*accum, &stats));
    report->touched_entities = std::move(stats.touched_entities);
    accum->events.clear();
    return Status::OK();
  });
  return epoch.ok() ? Status::OK() : epoch.status();
}

// ---- end-to-end: CTI text -> standing hunt -> alert ------------------------

TEST(HuntLibraryTest, CtiReportToStandingHuntAlertsOnPlantedAttack) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  HuntService service(&store);

  // The CTI fixture describes the planted attack the simulated stream
  // carries, tagged with its ATT&CK technique id.
  huntlib::HuntLibrary library;
  auto spec = library.SynthesizeFromCti(
      "APT-K exfiltration campaign (ATT&CK T1041): the implant "
      "/attack/exfil read the secret document /secret/doc0. Then "
      "/attack/exfil connected to 203.0.113.7.",
      "apt-k-report", "tenant-soc");
  ASSERT_TRUE(spec.ok()) << spec.status().ToString();
  EXPECT_EQ(spec.value().technique_id, "T1041");
  EXPECT_EQ(spec.value().request.dialect, QueryDialect::kTbql);
  ASSERT_TRUE(tbql::ParseTbql(spec.value().request.text).ok())
      << spec.value().request.text;

  std::mutex mu;
  size_t alerts = 0;
  std::vector<std::string> rows;
  std::vector<Status> errors;
  StandingSink sink;
  sink.on_alert = [&](const StandingUpdate& update) {
    std::lock_guard<std::mutex> lock(mu);
    ++alerts;
    auto cursor = update.cursor();
    while (const std::vector<sql::Value>* row = cursor.Next()) {
      rows.push_back(RowKey(*row));
    }
  };
  sink.on_error = [&](const Status& status) {
    std::lock_guard<std::mutex> lock(mu);
    errors.push_back(status);
  };
  service::StandingHandle handle =
      library.Attach(&service, std::move(spec).value(), std::move(sink));
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(library.attachments().size(), 1u);

  stream::SimulatorSource source(FleetStream());
  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  for (;;) {
    auto batch = source.Poll();
    ASSERT_TRUE(batch.ok());
    if (!batch.value().records.empty()) {
      ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                             batch.value().records)
                      .ok());
      ASSERT_TRUE(handle.WaitEpoch(service.epoch(), 60'000'000));
    }
    if (batch.value().end_of_stream) break;
  }

  std::lock_guard<std::mutex> lock(mu);
  EXPECT_TRUE(errors.empty()) << errors.front().ToString();
  EXPECT_GT(alerts, 0u) << "synthesized hunt never fired on the attack";
  bool saw_secret = false;
  for (const std::string& row : rows) {
    if (row.find("/secret/doc0") != std::string::npos) saw_secret = true;
  }
  EXPECT_TRUE(saw_secret) << "alert rows missed the planted exfil read";
  library.DetachAll();
  EXPECT_EQ(service.standing_count(), 0u);
}

// ---- the MQO differential --------------------------------------------------

/// Per-hunt recorder: one entry per delivered update, rows rendered and
/// sorted within the update (shard merge order is the only divergence the
/// executors permit; every row's bytes must still match exactly).
struct UpdateRecorder {
  std::mutex mu;
  std::vector<std::string> entries;
  std::vector<Status> errors;

  StandingSink MakeSink() {
    StandingSink sink;
    sink.on_update = [this](const StandingUpdate& update) {
      std::vector<std::string> rows;
      auto cursor = update.delta.blocks();
      for (const auto& block : cursor) {
        for (const std::vector<sql::Value>& row : block) {
          rows.push_back(RowKey(row));
        }
      }
      std::sort(rows.begin(), rows.end());
      std::string entry = "epoch=" + std::to_string(update.epoch);
      for (const std::string& col : update.columns) {
        entry += '|';
        entry += col;
      }
      for (const std::string& row : rows) {
        entry += '\n';
        entry += row;
      }
      std::lock_guard<std::mutex> lock(mu);
      entries.push_back(std::move(entry));
    };
    sink.on_error = [this](const Status& status) {
      std::lock_guard<std::mutex> lock(mu);
      errors.push_back(status);
    };
    return sink;
  }
};

/// One side of the differential: a store and a service with MQO either on
/// or off, carrying the same standing-hunt fleet.
struct FleetSide {
  std::unique_ptr<storage::AuditStore> store;
  std::unique_ptr<HuntService> service;
  std::vector<std::unique_ptr<UpdateRecorder>> recorders;
  std::vector<service::StandingHandle> handles;
  audit::AuditLogParser parser;
  audit::ParsedLog accum;
};

void RunMqoDifferential(int parallel_shards) {
  SCOPED_TRACE("parallel_shards=" + std::to_string(parallel_shards));
  // The fleet: the same TBQL hunt from three tenants (structural dedupe
  // across the fleet), the same Cypher hunt from two tenants, and a
  // projection variant whose single pattern compiles to the same data
  // query (shared-subresult reuse without whole-hunt dedupe).
  struct Hunt {
    const char* text;
    QueryDialect dialect;
    const char* tenant;
  };
  const std::vector<Hunt> fleet = {
      {"proc p read file f return p, f", QueryDialect::kTbql, "t0"},
      {"proc p read file f return p, f", QueryDialect::kTbql, "t1"},
      {"proc p read file f return p, f", QueryDialect::kTbql, "t2"},
      {"proc p read file f return p", QueryDialect::kTbql, "t0"},
      {"MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name",
       QueryDialect::kCypher, "t0"},
      {"MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name",
       QueryDialect::kCypher, "t1"},
  };

  auto build_side = [&](bool mqo) {
    auto side = std::make_unique<FleetSide>();
    side->store = std::make_unique<storage::AuditStore>();
    EXPECT_TRUE(side->store->Load(audit::ParsedLog{}).ok());
    side->store->graph().options().parallel_shards = parallel_shards;
    side->store->relational().options().parallel_shards = parallel_shards;
    HuntServiceOptions opts;
    opts.mqo_dedup = mqo;
    opts.mqo_shared_subresults = mqo;
    side->service = std::make_unique<HuntService>(side->store.get(), opts);
    for (const Hunt& hunt : fleet) {
      HuntRequest request;
      request.text = hunt.text;
      request.dialect = hunt.dialect;
      request.tenant = hunt.tenant;
      side->recorders.push_back(std::make_unique<UpdateRecorder>());
      // Full refreshes only: the per-epoch dedupe cache serves full
      // refreshes, and both sides must take the identical path.
      StandingOptions standing;
      standing.allow_incremental = false;
      side->handles.push_back(side->service->SubmitStanding(
          std::move(request), side->recorders.back()->MakeSink(), standing));
      EXPECT_TRUE(side->handles.back().valid());
    }
    return side;
  };
  std::unique_ptr<FleetSide> on = build_side(true);
  std::unique_ptr<FleetSide> off = build_side(false);

  // Stream the identical timeline into both sides, draining every hunt to
  // the new epoch between batches so each epoch produces one delta.
  stream::SimulatorSource source(FleetStream());
  size_t batches = 0;
  for (;;) {
    auto batch = source.Poll();
    ASSERT_TRUE(batch.ok());
    if (!batch.value().records.empty()) {
      ++batches;
      for (FleetSide* side : {on.get(), off.get()}) {
        ASSERT_TRUE(ApplyBatch(side->store.get(), side->service.get(),
                               &side->parser, &side->accum,
                               batch.value().records)
                        .ok());
        for (service::StandingHandle& h : side->handles) {
          ASSERT_TRUE(h.WaitEpoch(side->service->epoch(), 60'000'000));
        }
      }
    }
    if (batch.value().end_of_stream) break;
  }
  ASSERT_GT(batches, 2u);

  // Every hunt's delta stream must be byte-identical across the sides.
  // The empty pre-stream update at epoch 0 is dropped: whether the
  // submission-time refresh lands before the first ingest (and so targets
  // epoch 0 at all) is a startup race on both sides.
  auto streamed_entries = [](UpdateRecorder* rec) {
    std::vector<std::string> out;
    for (const std::string& entry : rec->entries) {
      if (entry.rfind("epoch=0|", 0) != 0) out.push_back(entry);
    }
    return out;
  };
  for (size_t i = 0; i < fleet.size(); ++i) {
    SCOPED_TRACE("hunt " + std::to_string(i) + ": " + fleet[i].text);
    std::lock_guard<std::mutex> lock_on(on->recorders[i]->mu);
    std::lock_guard<std::mutex> lock_off(off->recorders[i]->mu);
    EXPECT_TRUE(on->recorders[i]->errors.empty());
    EXPECT_TRUE(off->recorders[i]->errors.empty());
    EXPECT_EQ(streamed_entries(on->recorders[i].get()),
              streamed_entries(off->recorders[i].get()));
    EXPECT_FALSE(on->recorders[i]->entries.empty());
  }

  // The optimizer genuinely fired: structural dedupe collapsed the
  // identical hunts and the projection variant reused a cached subresult.
  EXPECT_GT(on->service->stats().standing_dedup_hits, 0u);
  EXPECT_GT(on->service->stats().subresult_hits, 0u);
  EXPECT_EQ(off->service->stats().standing_dedup_hits, 0u);
  EXPECT_EQ(off->service->stats().subresult_hits, 0u);
}

TEST(MqoFleetTest, DifferentialSerial) { RunMqoDifferential(1); }

TEST(MqoFleetTest, DifferentialSharded) { RunMqoDifferential(4); }

// AttachCatalog stamps the full playbook onto a tenant; every handle
// refreshes to the current epoch and detaches in one call.
TEST(MqoFleetTest, AttachCatalogRunsTheWholePlaybook) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  HuntService service(&store);
  huntlib::HuntLibrary library;
  size_t attached = library.AttachCatalog(&service, "tenant-a");
  EXPECT_EQ(attached, huntlib::AllTechniques().size());
  EXPECT_EQ(service.standing_count(), attached);

  stream::SimulatorSource source(FleetStream());
  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  auto batch = source.Poll();
  ASSERT_TRUE(batch.ok());
  ASSERT_TRUE(
      ApplyBatch(&store, &service, &parser, &accum, batch.value().records)
          .ok());
  for (const huntlib::HuntLibrary::Attachment& a : library.attachments()) {
    service::StandingHandle h = a.handle;
    ASSERT_TRUE(h.WaitEpoch(service.epoch(), 60'000'000)) << a.spec.name;
  }
  library.DetachAll();
  // Cancelled subscriptions prune at the next epoch bump.
  ASSERT_TRUE(
      ApplyBatch(&store, &service, &parser, &accum, batch.value().records)
          .ok());
  EXPECT_EQ(service.standing_count(), 0u);
}

}  // namespace
}  // namespace raptor
