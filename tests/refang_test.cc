#include <gtest/gtest.h>

#include "cases/cases.h"
#include "extraction/extractor.h"
#include "nlp/refang.h"
#include "synthesis/synthesizer.h"
#include "threatraptor.h"

namespace raptor {
namespace {

TEST(RefangTest, BracketDotsAndSchemes) {
  EXPECT_EQ(nlp::RefangText("192[.]168[.]29[.]128"), "192.168.29.128");
  EXPECT_EQ(nlp::RefangText("evil(.)com and bad{.}ru"), "evil.com and bad.ru");
  EXPECT_EQ(nlp::RefangText("hxxp://evil.com/x"), "http://evil.com/x");
  EXPECT_EQ(nlp::RefangText("hXXps://evil.com"), "https://evil.com");
  EXPECT_EQ(nlp::RefangText("fxp://drop.site"), "ftp://drop.site");
  EXPECT_EQ(nlp::RefangText("user[at]host.com"), "user@host.com");
  EXPECT_EQ(nlp::RefangText("hxxp[://]c2[.]net"), "http://c2.net");
}

TEST(RefangTest, IdempotentAndSafeOnPlainText) {
  const char* plain =
      "the attacker used /bin/tar to read /etc/passwd (see appendix).";
  EXPECT_EQ(nlp::RefangText(plain), plain);
  std::string once = nlp::RefangText("192[.]168[.]1[.]1");
  EXPECT_EQ(nlp::RefangText(once), once);
  // Ordinary brackets stay: "[at] the office" is ambiguous but rare; the
  // transform only rewrites complete [at] tokens.
  EXPECT_EQ(nlp::RefangText("list[0] and (x)"), "list[0] and (x)");
}

TEST(RefangTest, DefangedReportExtractsLikePlainOne) {
  const char* defanged =
      "The malware /tmp/vf downloaded the payload from "
      "94[.]242[.]222[.]68 and wrote it to /tmp/p.bin. /tmp/p.bin connected "
      "to 94[.]242[.]222[.]68.";
  extraction::ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(defanged);
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().graph.FindNode("94.242.222.68"), 0);
  bool has_connect = false;
  for (const auto& e : r.value().graph.edges()) {
    if (e.verb == "connect") has_connect = true;
  }
  EXPECT_TRUE(has_connect);
}

TEST(SynthesisPlanTest, VerbOverrideResolvesRunAmbiguity) {
  // tc_trace_1 default plan: the "run" self-loop becomes an execute-file
  // pattern and misses the 37 process-start events (recall 39/76). An
  // analyst overriding run->start recovers them (paper Sec IV-B2 suggests
  // exactly this human-in-the-loop revision).
  const cases::AttackCase* c = cases::FindCase("tc_trace_1");
  ASSERT_NE(c, nullptr);
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  auto extraction = tr.ExtractBehaviorGraph(c->oscti_text);
  ASSERT_TRUE(extraction.ok());
  auto gt = cases::GroundTruthEventIds(*c, *tr.store());

  synthesis::SynthesisOptions defaults;
  auto default_syn =
      synthesis::QuerySynthesizer(defaults).Synthesize(
          extraction.value().graph);
  ASSERT_TRUE(default_syn.ok());
  auto default_hunt = tr.Hunt(default_syn.value().query);
  ASSERT_TRUE(default_hunt.ok());
  auto default_score =
      cases::ScoreEvents(default_hunt.value().matched_event_ids, gt);
  EXPECT_EQ(default_score.tp, 39u);

  synthesis::SynthesisOptions revised;
  revised.verb_overrides["run"] = "start";
  auto revised_syn =
      synthesis::QuerySynthesizer(revised).Synthesize(
          extraction.value().graph);
  ASSERT_TRUE(revised_syn.ok());
  auto revised_hunt = tr.Hunt(revised_syn.value().query);
  ASSERT_TRUE(revised_hunt.ok());
  auto revised_score =
      cases::ScoreEvents(revised_hunt.value().matched_event_ids, gt);
  // 74 of 76: the override recovers 35 of the 37 missed start events. The
  // remaining two are conjunctively-correct exclusions - the first respawn
  // generation never connects to the C2 and the last never starts another
  // instance, so constraint intersection on the shared p2 entity excludes
  // them (the query demands the same instance does both).
  EXPECT_EQ(revised_score.tp, 74u);
  EXPECT_EQ(revised_score.fp, 0u);
  EXPECT_GT(revised_score.tp, default_score.tp);
}

}  // namespace
}  // namespace raptor
