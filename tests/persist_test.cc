#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "persist/checkpointer.h"
#include "persist/codec.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "storage/store.h"

namespace raptor::persist {
namespace {

namespace fs = std::filesystem;

audit::ParsedLog MakeLog(int processes, uint64_t seed) {
  audit::BenignProfile profile;
  profile.num_processes = processes;
  profile.seed = seed;
  audit::BenignWorkloadSimulator sim;
  audit::ParsedLog log;
  audit::AuditLogParser parser;
  EXPECT_TRUE(parser.Parse(sim.Generate(profile), &log).ok());
  return log;
}

/// Fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

// ---- codec ----------------------------------------------------------------

TEST(CodecTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU8(&buf, 7);
  PutU32(&buf, 0xdeadbeef);
  PutU64(&buf, 1ull << 60);
  PutI64(&buf, -42);
  PutDouble(&buf, 2.5);
  PutString(&buf, "hello\0world");
  ByteReader in(buf);
  uint8_t u8 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  double d = 0;
  std::string s;
  EXPECT_TRUE(in.ReadU8(&u8));
  EXPECT_TRUE(in.ReadU32(&u32));
  EXPECT_TRUE(in.ReadU64(&u64));
  EXPECT_TRUE(in.ReadI64(&i64));
  EXPECT_TRUE(in.ReadDouble(&d));
  EXPECT_TRUE(in.ReadString(&s));
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 0xdeadbeef);
  EXPECT_EQ(u64, 1ull << 60);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(d, 2.5);
  EXPECT_EQ(s, "hello");  // PutString took a C-literal view up to the NUL
  EXPECT_EQ(in.remaining(), 0u);
  EXPECT_FALSE(in.failed());
  EXPECT_FALSE(in.ReadU8(&u8));  // exhausted latches failure
  EXPECT_TRUE(in.failed());
}

TEST(CodecTest, ValueRoundTrip) {
  const sql::Value values[] = {sql::Value::Null(), sql::Value(int64_t{-5}),
                               sql::Value(1.25), sql::Value("text cell")};
  std::string buf;
  for (const sql::Value& v : values) EncodeValue(v, &buf);
  ByteReader in(buf);
  for (const sql::Value& v : values) {
    sql::Value decoded;
    ASSERT_TRUE(DecodeValue(&in, &decoded));
    EXPECT_EQ(decoded, v);
  }
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(CodecTest, ParsedLogRoundTrip) {
  audit::ParsedLog log = MakeLog(25, 91);
  std::string buf;
  EncodeParsedLog(log, &buf);
  auto restored = DecodeParsedLog(buf);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().entities.size(), log.entities.size());
  for (size_t i = 1; i <= log.entities.size(); ++i) {
    const audit::SystemEntity& a = log.entities.Get(i);
    const audit::SystemEntity& b = restored.value().entities.Get(i);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.UniqueKey(), b.UniqueKey());
    EXPECT_EQ(a.user, b.user);
  }
  ASSERT_EQ(restored.value().events.size(), log.events.size());
  for (size_t i = 0; i < log.events.size(); ++i) {
    const audit::SystemEvent& a = log.events[i];
    const audit::SystemEvent& b = restored.value().events[i];
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.start_time, b.start_time);
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.amount, b.amount);
  }
}

TEST(CodecTest, ParsedLogRejectsCorruption) {
  audit::ParsedLog log = MakeLog(5, 12);
  std::string buf;
  EncodeParsedLog(log, &buf);
  EXPECT_FALSE(DecodeParsedLog(buf.substr(0, buf.size() / 2)).ok());
  EXPECT_FALSE(DecodeParsedLog(buf + "x").ok());  // trailing bytes
  EXPECT_FALSE(DecodeParsedLog("").ok());
}

// ---- WAL ------------------------------------------------------------------

std::vector<WalRecord> SampleRecords() {
  std::vector<WalRecord> records;
  WalRecord a;
  a.type = WalRecordType::kSyscallBatch;
  a.stream = "/var/log/audit.jsonl";
  a.stream_offset = 4096;
  a.payload = "{\"op\":\"read\"}\n";
  records.push_back(a);
  WalRecord b;
  b.type = WalRecordType::kParsedBatch;
  b.payload = std::string("\x00\x01\x02 binary \xff", 12);
  records.push_back(b);
  WalRecord c;
  c.type = WalRecordType::kFlush;
  records.push_back(c);
  return records;
}

TEST(WalTest, AppendAndReadBack) {
  const std::string dir = FreshDir("wal_roundtrip");
  ASSERT_TRUE(fs::create_directories(dir));
  DurabilityOptions options;
  options.data_dir = dir;
  {
    WalWriter writer(dir, options);
    ASSERT_TRUE(writer.StartSegment(1).ok());
    for (const WalRecord& r : SampleRecords()) {
      ASSERT_TRUE(writer.Append(r).ok());
    }
    EXPECT_EQ(writer.records_appended(), 3u);
  }
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool truncated = false;
  ASSERT_TRUE(ReadWalSegment(dir + "/" + WalSegmentName(1), 1, &records,
                             &valid_bytes, &truncated)
                  .ok());
  EXPECT_FALSE(truncated);
  std::vector<WalRecord> expect = SampleRecords();
  ASSERT_EQ(records.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(records[i].type, expect[i].type);
    EXPECT_EQ(records[i].stream, expect[i].stream);
    EXPECT_EQ(records[i].stream_offset, expect[i].stream_offset);
    EXPECT_EQ(records[i].payload, expect[i].payload);
  }
  EXPECT_EQ(valid_bytes, fs::file_size(dir + "/" + WalSegmentName(1)));
}

TEST(WalTest, TornTailIsToleratedAndTruncated) {
  const std::string dir = FreshDir("wal_torn");
  ASSERT_TRUE(fs::create_directories(dir));
  DurabilityOptions options;
  options.data_dir = dir;
  const std::string seg = dir + "/" + WalSegmentName(1);
  {
    WalWriter writer(dir, options);
    ASSERT_TRUE(writer.StartSegment(1).ok());
    for (const WalRecord& r : SampleRecords()) {
      ASSERT_TRUE(writer.Append(r).ok());
    }
  }
  const uint64_t intact_size = fs::file_size(seg);
  {
    // Crash mid-append: half a frame of garbage at the tail.
    std::ofstream out(seg, std::ios::binary | std::ios::app);
    out << "\x20\x00\x00\x00garbage";
  }
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;
  bool truncated = false;
  ASSERT_TRUE(
      ReadWalSegment(seg, 1, &records, &valid_bytes, &truncated).ok());
  EXPECT_TRUE(truncated);
  EXPECT_EQ(records.size(), 3u);  // intact prefix fully readable
  EXPECT_EQ(valid_bytes, intact_size);

  // The writer truncates the torn tail and appends cleanly after it.
  {
    WalWriter writer(dir, options);
    ASSERT_TRUE(writer.OpenExisting(1, valid_bytes).ok());
    WalRecord extra;
    extra.type = WalRecordType::kFlush;
    ASSERT_TRUE(writer.Append(extra).ok());
  }
  records.clear();
  ASSERT_TRUE(ReadWalSegment(seg, 1, &records, nullptr, &truncated).ok());
  EXPECT_FALSE(truncated);
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.back().type, WalRecordType::kFlush);
}

TEST(WalTest, RotatesWhenOverSizeCap) {
  const std::string dir = FreshDir("wal_rotate");
  ASSERT_TRUE(fs::create_directories(dir));
  DurabilityOptions options;
  options.data_dir = dir;
  options.segment_max_bytes = 64;  // every large record forces rotation
  WalWriter writer(dir, options);
  ASSERT_TRUE(writer.StartSegment(1).ok());
  WalRecord r;
  r.payload = std::string(100, 'x');
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(writer.Append(r).ok());
  EXPECT_GT(writer.active_seq(), 1u);
  EXPECT_GT(writer.segments_created(), 1u);
  // Sequence numbers stay contiguous on disk.
  for (uint64_t seq = 1; seq <= writer.active_seq(); ++seq) {
    EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentName(seq))) << seq;
  }
}

TEST(WalTest, ReadRejectsWrongSequence) {
  const std::string dir = FreshDir("wal_wrong_seq");
  ASSERT_TRUE(fs::create_directories(dir));
  DurabilityOptions options;
  options.data_dir = dir;
  {
    WalWriter writer(dir, options);
    ASSERT_TRUE(writer.StartSegment(3).ok());
  }
  std::vector<WalRecord> records;
  EXPECT_FALSE(ReadWalSegment(dir + "/" + WalSegmentName(3), 4, &records,
                              nullptr, nullptr)
                   .ok());
}

// ---- snapshot -------------------------------------------------------------

SystemSnapshot MakeSnapshot() {
  storage::AuditStore store;
  EXPECT_TRUE(store.Load(MakeLog(20, 7)).ok());
  SystemSnapshot snap;
  snap.epoch = 9;
  snap.store = store.ExportSnapshotState();
  snap.epoch_marks = {{7, 100}, {9, store.last_event_id()}};
  StandingSeen seen;
  seen.key = "0\x1f\x1fproc p read file f return p";
  seen.total_rows = 3;
  seen.rows = {{sql::Value("curl"), sql::Value(int64_t{1})},
               {sql::Value("tar"), sql::Value(int64_t{2})}};
  snap.standing.push_back(seen);
  snap.stream_offsets = {{"/var/log/a.jsonl", 123}, {"/tmp/b.jsonl", 456}};
  return snap;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  const std::string dir = FreshDir("snap_roundtrip");
  SystemSnapshot snap = MakeSnapshot();
  DurabilityOptions options;
  options.snapshot_shards = 3;
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteSnapshot(dir, snap, options, &bytes).ok());
  EXPECT_GT(bytes, 0u);

  auto restored = ReadSnapshot(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const SystemSnapshot& got = restored.value();
  EXPECT_EQ(got.epoch, snap.epoch);
  EXPECT_EQ(got.epoch_marks, snap.epoch_marks);
  EXPECT_EQ(got.stream_offsets, snap.stream_offsets);
  ASSERT_EQ(got.standing.size(), 1u);
  EXPECT_EQ(got.standing[0].key, snap.standing[0].key);
  EXPECT_EQ(got.standing[0].total_rows, snap.standing[0].total_rows);
  EXPECT_EQ(got.standing[0].rows, snap.standing[0].rows);
  EXPECT_EQ(got.store.next_event_id, snap.store.next_event_id);
  EXPECT_EQ(got.store.evicted_through, snap.store.evicted_through);
  ASSERT_EQ(got.store.entities.size(), snap.store.entities.size());
  ASSERT_EQ(got.store.events.size(), snap.store.events.size());
  for (size_t i = 0; i < snap.store.events.size(); ++i) {
    EXPECT_EQ(got.store.events[i].id, snap.store.events[i].id);
    EXPECT_EQ(got.store.events[i].subject, snap.store.events[i].subject);
  }

  // The restored state rebuilds into an equivalent store.
  storage::AuditStore rebuilt;
  ASSERT_TRUE(rebuilt.RestoreFrom(restored.value().store).ok());
  storage::AuditStore original;
  ASSERT_TRUE(original.Load(MakeLog(20, 7)).ok());
  EXPECT_EQ(rebuilt.entity_count(), original.entity_count());
  EXPECT_EQ(rebuilt.event_count(), original.event_count());
  EXPECT_EQ(rebuilt.reduction_stats().output_events,
            original.reduction_stats().output_events);
}

TEST(SnapshotTest, DetectsShardCorruption) {
  const std::string dir = FreshDir("snap_corrupt");
  DurabilityOptions options;
  options.snapshot_shards = 2;
  ASSERT_TRUE(WriteSnapshot(dir, MakeSnapshot(), options, nullptr).ok());
  // Flip one byte in the middle of the first event shard.
  const std::string shard = dir + "/events-000.bin";
  ASSERT_TRUE(fs::exists(shard));
  const auto mid = static_cast<std::streamoff>(fs::file_size(shard) / 2);
  std::fstream f(shard, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(mid);
  const char flipped = static_cast<char>(f.get() ^ 0xff);
  f.seekp(mid);
  f.put(flipped);
  f.close();
  EXPECT_FALSE(ReadSnapshot(dir).ok());
}

TEST(SnapshotTest, MissingShardIsAnError) {
  const std::string dir = FreshDir("snap_missing_shard");
  DurabilityOptions options;
  options.snapshot_shards = 2;
  ASSERT_TRUE(WriteSnapshot(dir, MakeSnapshot(), options, nullptr).ok());
  ASSERT_TRUE(fs::remove(dir + "/events-001.bin"));
  EXPECT_FALSE(ReadSnapshot(dir).ok());
}

// ---- checkpointer ---------------------------------------------------------

TEST(CheckpointerTest, FreshDirectoryStartsEmpty) {
  const std::string dir = FreshDir("cp_fresh");
  DurabilityOptions options;
  options.data_dir = dir;
  auto cp = Checkpointer::Open(options);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  EXPECT_FALSE(cp.value()->has_snapshot());
  EXPECT_TRUE(fs::exists(dir + "/CURRENT"));
  EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentName(1)));
  // Nothing to replay.
  int replayed = 0;
  ASSERT_TRUE(cp.value()
                  ->ReplayTail([&](const WalRecord&) {
                    ++replayed;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(replayed, 0);
}

TEST(CheckpointerTest, CheckpointThenReopenRestoresAndPrunes) {
  const std::string dir = FreshDir("cp_reopen");
  DurabilityOptions options;
  options.data_dir = dir;
  {
    auto cp = Checkpointer::Open(options);
    ASSERT_TRUE(cp.ok());
    WalRecord r;
    r.payload = "pre-checkpoint";
    ASSERT_TRUE(cp.value()->wal()->Append(r).ok());
    ASSERT_TRUE(cp.value()->WriteCheckpoint(MakeSnapshot()).ok());
    // Checkpoint rotated onto segment 2 and pruned segment 1.
    EXPECT_FALSE(fs::exists(dir + "/" + WalSegmentName(1)));
    EXPECT_TRUE(fs::exists(dir + "/" + WalSegmentName(2)));
    WalRecord after;
    after.payload = "post-checkpoint";
    ASSERT_TRUE(cp.value()->wal()->Append(after).ok());
  }
  auto cp = Checkpointer::Open(options);
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  ASSERT_TRUE(cp.value()->has_snapshot());
  EXPECT_EQ(cp.value()->stats().restored_epoch, 9u);
  SystemSnapshot snap = cp.value()->TakeRestoredSnapshot();
  EXPECT_EQ(snap.epoch, 9u);
  // Only the post-checkpoint record is in the tail.
  std::vector<std::string> payloads;
  ASSERT_TRUE(cp.value()
                  ->ReplayTail([&](const WalRecord& r) {
                    payloads.push_back(r.payload);
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(payloads.size(), 1u);
  EXPECT_EQ(payloads[0], "post-checkpoint");
}

TEST(CheckpointerTest, SecondCheckpointSupersedesFirst) {
  const std::string dir = FreshDir("cp_supersede");
  DurabilityOptions options;
  options.data_dir = dir;
  auto cp = Checkpointer::Open(options);
  ASSERT_TRUE(cp.ok());
  ASSERT_TRUE(cp.value()->WriteCheckpoint(MakeSnapshot()).ok());
  SystemSnapshot second = MakeSnapshot();
  second.epoch = 21;
  ASSERT_TRUE(cp.value()->WriteCheckpoint(second).ok());
  EXPECT_EQ(cp.value()->stats().checkpoints, 2u);
  // Exactly one snapshot directory survives, and a reopen restores the
  // newer one.
  size_t snap_dirs = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().rfind("snap-", 0) == 0) {
      ++snap_dirs;
    }
  }
  EXPECT_EQ(snap_dirs, 1u);
  cp.value().reset();
  auto reopened = Checkpointer::Open(options);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE(reopened.value()->has_snapshot());
  EXPECT_EQ(reopened.value()->TakeRestoredSnapshot().epoch, 21u);
}

// ---- store eviction (retention's storage half) ----------------------------

TEST(StoreEvictTest, EvictionKeepsIdsAndReductionRatio) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(MakeLog(30, 55)).ok());
  const size_t before_count = store.event_count();
  const audit::EventId last = store.last_event_id();
  const storage::ReductionStats before_stats = store.reduction_stats();
  ASSERT_GT(before_count, 10u);

  const audit::EventId watermark = last / 3;
  auto evicted = store.EvictEventsThrough(watermark);
  ASSERT_TRUE(evicted.ok()) << evicted.status().ToString();
  EXPECT_EQ(evicted.value(), static_cast<size_t>(watermark));
  EXPECT_EQ(store.event_count(), before_count - evicted.value());
  EXPECT_EQ(store.evicted_through(), watermark);
  EXPECT_EQ(store.last_event_id(), last);  // ids are never renumbered

  // Survivors keep their ids and stay addressable.
  for (audit::EventId id = watermark + 1; id <= last; ++id) {
    EXPECT_EQ(store.EventById(id).id, id);
  }
  // The reduction ratio still reflects the whole stream, not just the
  // surviving window.
  EXPECT_EQ(store.reduction_stats().input_events, before_stats.input_events);
  EXPECT_EQ(store.reduction_stats().output_events,
            before_stats.output_events);

  // Eviction below the current watermark is a no-op; beyond the id space
  // is an error.
  auto again = store.EvictEventsThrough(watermark - 1);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), 0u);
  EXPECT_FALSE(store.EvictEventsThrough(last + 1).ok());
}

}  // namespace
}  // namespace raptor::persist
