// Property-based sweeps over cross-cutting invariants: string matching
// against reference implementations, edit-distance metric laws, SQL
// execution against an in-memory oracle, engine option-equivalence on
// randomized queries, and IOC recognizer well-formedness on fuzzed text.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <unordered_map>

#include "common/levenshtein.h"
#include "common/rng.h"
#include "common/small_vector.h"
#include "common/strings.h"
#include "nlp/ioc.h"
#include "nlp/protect.h"
#include "storage/relational/database.h"

namespace raptor {
namespace {

// ------------------------------------------------------------ LIKE matching

/// Reference LIKE matcher (exponential recursion, obviously correct).
bool LikeRef(std::string_view text, std::string_view pattern) {
  if (pattern.empty()) return text.empty();
  if (pattern[0] == '%') {
    for (size_t i = 0; i <= text.size(); ++i) {
      if (LikeRef(text.substr(i), pattern.substr(1))) return true;
    }
    return false;
  }
  if (text.empty()) return false;
  if (pattern[0] == '_' || pattern[0] == text[0]) {
    return LikeRef(text.substr(1), pattern.substr(1));
  }
  return false;
}

class LikeMatchPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LikeMatchPropertyTest, AgreesWithReference) {
  Rng rng(GetParam());
  static const char kChars[] = "ab/%_.";
  for (int trial = 0; trial < 400; ++trial) {
    std::string text, pattern;
    size_t tlen = rng.Uniform(8);
    size_t plen = rng.Uniform(6);
    for (size_t i = 0; i < tlen; ++i) text += kChars[rng.Uniform(4)];
    for (size_t i = 0; i < plen; ++i) pattern += kChars[rng.Uniform(6)];
    EXPECT_EQ(LikeMatch(text, pattern), LikeRef(text, pattern))
        << "text='" << text << "' pattern='" << pattern << "'";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LikeMatchPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

// -------------------------------------------------------------- Levenshtein

class LevenshteinPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LevenshteinPropertyTest, MetricLaws) {
  Rng rng(GetParam());
  auto random_word = [&rng]() {
    std::string w;
    size_t len = rng.Uniform(12);
    for (size_t i = 0; i < len; ++i) {
      w += static_cast<char>('a' + rng.Uniform(4));
    }
    return w;
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::string a = random_word(), b = random_word(), c = random_word();
    size_t ab = LevenshteinDistance(a, b);
    size_t ba = LevenshteinDistance(b, a);
    EXPECT_EQ(ab, ba);                                // symmetry
    EXPECT_EQ(LevenshteinDistance(a, a), 0u);         // identity
    size_t ac = LevenshteinDistance(a, c);
    size_t cb = LevenshteinDistance(c, b);
    EXPECT_LE(ab, ac + cb);                           // triangle inequality
    // Length-difference lower bound, max-length upper bound.
    size_t diff = a.size() > b.size() ? a.size() - b.size() : b.size() - a.size();
    EXPECT_GE(ab, diff);
    EXPECT_LE(ab, std::max(a.size(), b.size()));
    // The bounded variant agrees when within bounds.
    size_t bounded = LevenshteinDistanceBounded(a, b, 64);
    EXPECT_EQ(bounded, ab);
    // ...and saturates when the cap is tight.
    if (ab > 1) {
      EXPECT_GT(LevenshteinDistanceBounded(a, b, 1), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LevenshteinPropertyTest,
                         ::testing::Values(5u, 6u, 7u));

// ------------------------------------------------------- SQL vs. oracle

/// Random single-table queries must agree with a brute-force row filter.
class SqlOraclePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlOraclePropertyTest, FiltersAgreeWithBruteForce) {
  Rng rng(GetParam());
  sql::Database db;
  sql::Schema schema({{"id", sql::ColumnType::kInt64},
                      {"name", sql::ColumnType::kText},
                      {"score", sql::ColumnType::kInt64}});
  ASSERT_TRUE(db.CreateTable("t", schema).ok());
  struct RowData {
    int64_t id;
    std::string name;
    int64_t score;
  };
  std::vector<RowData> rows;
  static const char* kNames[] = {"/bin/tar", "/bin/cat", "/tmp/x.sh",
                                 "/etc/passwd", "/usr/bin/curl"};
  for (int i = 0; i < 60; ++i) {
    RowData r{static_cast<int64_t>(i), kNames[rng.Uniform(5)],
              static_cast<int64_t>(rng.Uniform(100))};
    rows.push_back(r);
    ASSERT_TRUE(db.Insert("t", {sql::Value(r.id), sql::Value(r.name),
                                sql::Value(r.score)})
                    .ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "name").ok());

  for (int trial = 0; trial < 60; ++trial) {
    int64_t threshold = static_cast<int64_t>(rng.Uniform(100));
    std::string name = kNames[rng.Uniform(5)];
    std::string sql_text = StrFormat(
        "SELECT id FROM t WHERE (name = '%s' AND score >= %lld) OR score < "
        "%lld",
        name.c_str(), static_cast<long long>(threshold),
        static_cast<long long>(threshold / 4));
    auto rs = db.Query(sql_text);
    ASSERT_TRUE(rs.ok()) << sql_text;
    std::set<int64_t> got;
    for (const auto& row : rs.value().rows) got.insert(row[0].AsInt());
    std::set<int64_t> expected;
    for (const RowData& r : rows) {
      if ((r.name == name && r.score >= threshold) ||
          r.score < threshold / 4) {
        expected.insert(r.id);
      }
    }
    EXPECT_EQ(got, expected) << sql_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlOraclePropertyTest,
                         ::testing::Values(101u, 202u, 303u));

// ------------------------------------------- Value hashing vs. Compare()

/// ValueHash/ValueEq back every hash index, IN-list set, and DISTINCT
/// seen-set, so they must stay consistent with Value::Compare across every
/// type pairing — including int/double coercion and numeric-looking text.
class ValueHashPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ValueHashPropertyTest, HashAndEqConsistentWithCompare) {
  Rng rng(GetParam());
  auto random_value = [&rng]() {
    switch (rng.Uniform(6)) {
      case 0: return sql::Value();
      case 1: return sql::Value(static_cast<int64_t>(rng.Uniform(5)));
      // Integral double: must collide with the equal int (1 == 1.0).
      case 2: return sql::Value(static_cast<double>(rng.Uniform(5)));
      case 3: return sql::Value(static_cast<double>(rng.Uniform(5)) + 0.5);
      // Numeric-looking text must NOT equal the number ("1" != 1).
      case 4: return sql::Value(std::to_string(rng.Uniform(5)));
      default: return sql::Value("/bin/p" + std::to_string(rng.Uniform(3)));
    }
  };
  sql::ValueHash hash;
  sql::ValueEq eq;
  std::vector<sql::Value> values;
  for (int i = 0; i < 80; ++i) values.push_back(random_value());
  for (const sql::Value& a : values) {
    for (const sql::Value& b : values) {
      bool equal = a.Compare(b) == 0;
      EXPECT_EQ(eq(a, b), equal)
          << a.ToString() << " vs " << b.ToString();
      if (equal) {
        EXPECT_EQ(hash(a), hash(b)) << a.ToString() << " vs " << b.ToString();
      }
    }
  }
  // Row-level hash/eq: equal rows hash equal, unequal rows compare unequal.
  sql::ValueRowHash row_hash;
  sql::ValueRowEq row_eq;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<sql::Value> row_a, row_b;
    size_t len = rng.Uniform(4);
    for (size_t i = 0; i < len; ++i) {
      row_a.push_back(random_value());
      row_b.push_back(random_value());
    }
    bool equal = true;
    for (size_t i = 0; i < len; ++i) {
      if (row_a[i].Compare(row_b[i]) != 0) equal = false;
    }
    EXPECT_EQ(row_eq(row_a, row_b), equal);
    if (equal) {
      EXPECT_EQ(row_hash(row_a), row_hash(row_b));
    }
    EXPECT_TRUE(row_eq(row_a, row_a));
    EXPECT_EQ(row_hash(row_a), row_hash(row_a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueHashPropertyTest,
                         ::testing::Values(71u, 72u, 73u));

// ------------------------------------- SmallVector / binding-frame slots

/// SmallVector backs the matcher's binding frames; random op sequences
/// must agree with a std::vector reference across the inline/heap spill
/// boundary.
class SmallVectorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallVectorPropertyTest, AgreesWithVectorReference) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    SmallVector<uint64_t, 4> sv;
    std::vector<uint64_t> ref;
    for (int op = 0; op < 60; ++op) {
      switch (rng.Uniform(4)) {
        case 0: {
          uint64_t v = rng.Uniform(100);
          sv.push_back(v);
          ref.push_back(v);
          break;
        }
        case 1:
          if (!ref.empty()) {
            sv.pop_back();
            ref.pop_back();
          }
          break;
        case 2: {
          size_t n = rng.Uniform(10);
          uint64_t v = rng.Uniform(100);
          sv.assign(n, v);
          ref.assign(n, v);
          break;
        }
        default:
          if (rng.Uniform(8) == 0) {
            sv.clear();
            ref.clear();
          }
          break;
      }
      ASSERT_EQ(sv.size(), ref.size());
      ASSERT_EQ(sv.empty(), ref.empty());
      for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(sv[i], ref[i]);
      if (!ref.empty()) {
        ASSERT_EQ(sv.back(), ref.back());
      }
      for (uint64_t probe = 0; probe < 5; ++probe) {
        ASSERT_EQ(Contains(sv, probe),
                  std::find(ref.begin(), ref.end(), probe) != ref.end());
      }
    }
    // Copies must be independent of the original.
    SmallVector<uint64_t, 4> copy = sv;
    sv.push_back(7);
    ASSERT_EQ(copy.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) ASSERT_EQ(copy[i], ref[i]);
  }
}

/// Binding-frame round trip: a flat slot frame (the matcher's FrameBinding
/// layout — SmallVector indexed by interned slot, sentinel = unbound) must
/// behave exactly like the legacy map-based binding under random
/// bind/unbind/read sequences, including slot counts past the inline
/// capacity.
TEST_P(SmallVectorPropertyTest, SlotFrameMatchesMapBinding) {
  constexpr uint64_t kUnbound = static_cast<uint64_t>(-1);
  Rng rng(GetParam() * 131 + 7);
  for (int trial = 0; trial < 50; ++trial) {
    uint32_t slot_count = 1 + static_cast<uint32_t>(rng.Uniform(20));
    SmallVector<uint64_t, 8> frame(slot_count, kUnbound);
    std::unordered_map<uint32_t, uint64_t> map;
    for (int op = 0; op < 200; ++op) {
      uint32_t slot = static_cast<uint32_t>(rng.Uniform(slot_count));
      switch (rng.Uniform(3)) {
        case 0:  // bind (write)
          frame[slot] = op;
          map[slot] = op;
          break;
        case 1:  // unbind
          frame[slot] = kUnbound;
          map.erase(slot);
          break;
        default:  // read
          break;
      }
      auto it = map.find(slot);
      if (it == map.end()) {
        ASSERT_EQ(frame[slot], kUnbound);
      } else {
        ASSERT_EQ(frame[slot], it->second);
      }
    }
    // Full-frame sweep: bound slots agree everywhere, not just at the
    // last-touched slot.
    for (uint32_t s = 0; s < slot_count; ++s) {
      auto it = map.find(s);
      ASSERT_EQ(frame[s] != kUnbound, it != map.end());
      if (it != map.end()) {
        ASSERT_EQ(frame[s], it->second);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmallVectorPropertyTest,
                         ::testing::Values(81u, 82u, 83u));

// --------------------------------------------------- IOC recognizer fuzzing

class IocFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IocFuzzTest, MatchesAreWellFormedOnArbitraryText) {
  Rng rng(GetParam());
  static const char kChars[] =
      "abcdefghijklmnopqrstuvwxyz0123456789 ./\\:-_@%()\"'\n";
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    size_t len = rng.Uniform(400);
    for (size_t i = 0; i < len; ++i) {
      text += kChars[rng.Uniform(sizeof(kChars) - 1)];
    }
    std::vector<nlp::IocMatch> matches = nlp::RecognizeIocs(text);
    size_t last_end = 0;
    for (const nlp::IocMatch& m : matches) {
      // Spans are in-bounds, non-empty, non-overlapping and ordered.
      ASSERT_LE(m.begin, m.end);
      ASSERT_LE(m.end, text.size());
      ASSERT_GE(m.begin, last_end);
      last_end = m.end;
      // The recorded text is exactly the span content.
      EXPECT_EQ(m.text, text.substr(m.begin, m.end - m.begin));
      EXPECT_FALSE(m.text.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IocFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// The protection transform must be loss-free: replacing each recorded
// replacement back into the protected text reproduces the original.
class ProtectionRoundTripTest : public ::testing::TestWithParam<const char*> {
};

TEST_P(ProtectionRoundTripTest, RestoreReproducesOriginal) {
  std::string original = GetParam();
  nlp::ProtectedText pt = nlp::ProtectIocs(original);
  std::string restored;
  size_t cursor = 0;
  for (const nlp::Replacement& rep : pt.replacements) {
    restored += pt.text.substr(cursor, rep.begin - cursor);
    restored += rep.ioc.text;
    cursor = rep.end;
  }
  restored += pt.text.substr(cursor);
  EXPECT_EQ(restored, original);
}

INSTANTIATE_TEST_SUITE_P(
    Texts, ProtectionRoundTripTest,
    ::testing::Values(
        "no iocs at all here",
        "the attacker used /bin/tar to read /etc/passwd.",
        "curl connected to 192.168.29.128.",
        R"(dropped C:\Users\v\evil.exe then set HKLM\Run and left)",
        "mail admin@corp.com or visit https://evil.com/x?y=1 now",
        "hash d41d8cd98f00b204e9800998ecf8427e via CVE-2014-6271",
        "/tmp/a.sh /tmp/b.sh /tmp/c.sh back to back",
        ""));

}  // namespace
}  // namespace raptor
