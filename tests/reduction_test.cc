#include <gtest/gtest.h>

#include "audit/types.h"
#include "common/rng.h"
#include "storage/reduction/reduction.h"
#include "storage/store.h"

namespace raptor::storage {
namespace {

using audit::EventOp;
using audit::SystemEvent;

SystemEvent Ev(audit::EntityId subj, audit::EntityId obj, EventOp op,
               audit::Timestamp start, audit::Timestamp end,
               long long amount = 100) {
  SystemEvent e;
  e.subject = subj;
  e.object = obj;
  e.op = op;
  e.object_type = audit::EntityType::kFile;
  e.start_time = start;
  e.end_time = end;
  e.amount = amount;
  return e;
}

TEST(ReductionTest, MergesWithinThreshold) {
  // Paper criteria: same subject, object, op; 0 <= gap <= threshold.
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10, 100),
      Ev(1, 2, EventOp::kRead, 500'000, 500'010, 200),
  };
  ReductionStats stats;
  auto out = ReduceEvents(events, {}, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].start_time, 0);
  EXPECT_EQ(out[0].end_time, 500'010);
  EXPECT_EQ(out[0].amount, 300);  // summed
  EXPECT_EQ(stats.input_events, 2u);
  EXPECT_EQ(stats.output_events, 1u);
}

TEST(ReductionTest, GapBeyondThresholdNotMerged) {
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10),
      Ev(1, 2, EventOp::kRead, 1'500'000, 1'500'010),
  };
  auto out = ReduceEvents(events, {}, nullptr);
  EXPECT_EQ(out.size(), 2u);
}

TEST(ReductionTest, DifferentOpNotMerged) {
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10),
      Ev(1, 2, EventOp::kWrite, 100, 110),
  };
  EXPECT_EQ(ReduceEvents(events, {}, nullptr).size(), 2u);
}

TEST(ReductionTest, DifferentEntityPairNotMerged) {
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10),
      Ev(1, 3, EventOp::kRead, 100, 110),
      Ev(4, 2, EventOp::kRead, 200, 210),
  };
  EXPECT_EQ(ReduceEvents(events, {}, nullptr).size(), 3u);
}

TEST(ReductionTest, OverlappingEventsNotMerged) {
  // gap < 0 (second starts before first ends) violates the criteria.
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 1000),
      Ev(1, 2, EventOp::kRead, 500, 1500),
  };
  EXPECT_EQ(ReduceEvents(events, {}, nullptr).size(), 2u);
}

TEST(ReductionTest, ChainOfBurstsCollapsesToOne) {
  std::vector<SystemEvent> events;
  for (int i = 0; i < 50; ++i) {
    events.push_back(Ev(1, 2, EventOp::kWrite, i * 1000, i * 1000 + 10, 10));
  }
  auto out = ReduceEvents(events, {}, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].amount, 500);
}

TEST(ReductionTest, ZeroThresholdOnlyMergesBackToBack) {
  ReductionOptions opts;
  opts.merge_threshold_us = 0;
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10),
      Ev(1, 2, EventOp::kRead, 10, 20),  // gap exactly 0
      Ev(1, 2, EventOp::kRead, 25, 30),  // gap 5
  };
  EXPECT_EQ(ReduceEvents(events, opts, nullptr).size(), 2u);
}

TEST(ReductionTest, IdsReassignedDense) {
  std::vector<SystemEvent> events = {
      Ev(1, 2, EventOp::kRead, 0, 10),
      Ev(3, 4, EventOp::kRead, 5, 15),
      Ev(1, 2, EventOp::kRead, 100, 110),
  };
  auto out = ReduceEvents(events, {}, nullptr);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].id, i + 1);
  }
}

// Property sweep: reduction must preserve per-group total byte counts and
// never increase event count, across randomized workloads and thresholds.
class ReductionPropertyTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, audit::Timestamp>> {
};

TEST_P(ReductionPropertyTest, PreservesBytesAndMonotonicity) {
  auto [seed, threshold] = GetParam();
  Rng rng(seed);
  std::vector<SystemEvent> events;
  audit::Timestamp t = 0;
  for (int i = 0; i < 500; ++i) {
    t += rng.Uniform(2'000'000);
    audit::Timestamp end = t + rng.Uniform(1000);
    events.push_back(Ev(1 + rng.Uniform(4), 10 + rng.Uniform(4),
                        rng.Chance(0.5) ? EventOp::kRead : EventOp::kWrite, t,
                        end, static_cast<long long>(rng.Uniform(1000))));
  }
  long long bytes_before = 0;
  for (const auto& e : events) bytes_before += e.amount;

  ReductionOptions opts;
  opts.merge_threshold_us = threshold;
  ReductionStats stats;
  auto out = ReduceEvents(events, opts, &stats);

  long long bytes_after = 0;
  for (const auto& e : out) {
    bytes_after += e.amount;
    EXPECT_LE(e.start_time, e.end_time);
  }
  EXPECT_EQ(bytes_before, bytes_after);
  EXPECT_LE(out.size(), events.size());
  EXPECT_EQ(stats.output_events, out.size());
  // Sorted by start time with dense ids.
  for (size_t i = 1; i < out.size(); ++i) {
    EXPECT_LE(out[i - 1].start_time, out[i].start_time);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ReductionPropertyTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u),
                       ::testing::Values(0, 1'000, 1'000'000, 60'000'000)));

// ---- cross-batch carry-over window (AuditStore) ----------------------------

audit::ParsedLog TwoEntityLog() {
  audit::ParsedLog log;
  log.entities.InternProcess("/bin/burst", 1);  // id 1
  log.entities.InternFile("/data/target");      // id 2
  return log;
}

TEST(CarryOverTest, MergesDuplicatesSpanningBatchBoundary) {
  StoreOptions opts;
  opts.carry_over_window = true;
  AuditStore store(opts);
  audit::ParsedLog log = TwoEntityLog();
  // Batch 1 ends mid-burst; batch 2 continues it within the merge window.
  log.events = {Ev(1, 2, EventOp::kRead, 0, 10, 100)};
  ASSERT_TRUE(store.Load(log).ok());
  EXPECT_EQ(store.event_count(), 0u) << "tail withheld inside the window";
  EXPECT_EQ(store.carried_event_count(), 1u);

  log.events = {Ev(1, 2, EventOp::kRead, 500'000, 500'010, 200)};
  ASSERT_TRUE(store.Append(log).ok());
  ASSERT_TRUE(store.Flush().ok());
  ASSERT_EQ(store.event_count(), 1u) << "boundary duplicates must merge";
  EXPECT_EQ(store.events()[0].start_time, 0);
  EXPECT_EQ(store.events()[0].end_time, 500'010);
  EXPECT_EQ(store.events()[0].amount, 300);
  EXPECT_EQ(store.carried_event_count(), 0u);
  EXPECT_EQ(store.reduction_stats().input_events, 2u);
  EXPECT_EQ(store.reduction_stats().output_events, 1u);

  // The same split WITHOUT the window leaves two events (the pre-existing
  // per-batch behavior this option fixes).
  AuditStore plain;
  log.events = {Ev(1, 2, EventOp::kRead, 0, 10, 100)};
  ASSERT_TRUE(plain.Load(log).ok());
  log.events = {Ev(1, 2, EventOp::kRead, 500'000, 500'010, 200)};
  ASSERT_TRUE(plain.Append(log).ok());
  EXPECT_EQ(plain.event_count(), 2u);
}

TEST(CarryOverTest, EventsOutsideTheWindowStoreImmediately) {
  StoreOptions opts;
  opts.carry_over_window = true;
  AuditStore store(opts);
  audit::ParsedLog log = TwoEntityLog();
  // Two bursts 10 s apart: the old one can no longer merge with anything
  // a later batch brings, so only the newest stays withheld.
  log.events = {Ev(1, 2, EventOp::kRead, 0, 10, 100),
                Ev(1, 2, EventOp::kRead, 10'000'000, 10'000'010, 200)};
  ASSERT_TRUE(store.Load(log).ok());
  EXPECT_EQ(store.event_count(), 1u);
  EXPECT_EQ(store.carried_event_count(), 1u);
}

TEST(CarryOverTest, WindowOverflowFlushesOldest) {
  StoreOptions opts;
  opts.carry_over_window = true;
  opts.max_carry_events = 2;
  AuditStore store(opts);
  audit::ParsedLog log;
  log.entities.InternProcess("/bin/burst", 1);  // id 1, subject of all
  for (int i = 0; i < 4; ++i) {
    log.entities.InternFile("/data/t" + std::to_string(i));  // ids 2..5
  }
  // Four irreducible events, all inside one window: the bound keeps only
  // the newest two withheld.
  log.events = {Ev(1, 2, EventOp::kRead, 100, 110),
                Ev(1, 3, EventOp::kRead, 200, 210),
                Ev(1, 4, EventOp::kRead, 300, 310),
                Ev(1, 5, EventOp::kRead, 400, 410)};
  ASSERT_TRUE(store.Load(log).ok());
  EXPECT_EQ(store.carried_event_count(), 2u);
  EXPECT_EQ(store.event_count(), 2u);
  ASSERT_TRUE(store.Flush().ok());
  EXPECT_EQ(store.event_count(), 4u);
}

}  // namespace
}  // namespace raptor::storage
