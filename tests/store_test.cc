// AuditStore invariants: faithful replication of the parsed log into BOTH
// backends (the paper replicates data across PostgreSQL and Neo4j), index
// coverage, and reduction wiring.
#include <gtest/gtest.h>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "storage/store.h"

namespace raptor::storage {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    audit::BenignProfile profile;
    profile.num_processes = 40;
    profile.seed = 2024;
    audit::BenignWorkloadSimulator sim;
    audit::AuditLogParser parser;
    ASSERT_TRUE(parser.Parse(sim.Generate(profile), &log_).ok());
    ASSERT_TRUE(store_.Load(log_).ok());
  }

  audit::ParsedLog log_;
  AuditStore store_;
};

TEST_F(StoreTest, BackendsHoldSameCardinalities) {
  // Relational row counts match graph node/edge counts (replication).
  auto entities = store_.relational().Query("SELECT id FROM entities");
  auto events = store_.relational().Query("SELECT id FROM events");
  ASSERT_TRUE(entities.ok());
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(entities.value().rows.size(), store_.graph().graph().node_count());
  EXPECT_EQ(events.value().rows.size(), store_.graph().graph().edge_count());
  EXPECT_EQ(entities.value().rows.size(), store_.entity_count());
  EXPECT_EQ(events.value().rows.size(), store_.event_count());
}

TEST_F(StoreTest, EveryEventRowHasMatchingGraphEdge) {
  const graphdb::PropertyGraph& g = store_.graph().graph();
  for (const audit::SystemEvent& ev : store_.events()) {
    graphdb::NodeId src = store_.NodeForEntity(ev.subject);
    graphdb::NodeId dst = store_.NodeForEntity(ev.object);
    ASSERT_NE(src, graphdb::kInvalidNode);
    ASSERT_NE(dst, graphdb::kInvalidNode);
    bool found = false;
    for (graphdb::EdgeId eid : g.OutEdges(src)) {
      const graphdb::Edge& e = g.edge(eid);
      const graphdb::Value* id = e.FindProp("id");
      if (e.dst == dst && id != nullptr &&
          id->AsInt() == static_cast<int64_t>(ev.id)) {
        EXPECT_EQ(e.type, audit::EventOpName(ev.op));
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "event " << ev.id << " missing from graph";
  }
}

TEST_F(StoreTest, CrossBackendQueryAgreement) {
  // The same semantic question answered in SQL and Cypher must agree.
  auto sql = store_.relational().Query(
      "SELECT DISTINCT s.exename FROM events e "
      "JOIN entities s ON e.subject = s.id WHERE e.op = 'rename'");
  auto cypher = store_.graph().Query(
      "MATCH (s:proc)-[e:rename]->(o) RETURN DISTINCT s.exename");
  ASSERT_TRUE(sql.ok());
  ASSERT_TRUE(cypher.ok());
  std::set<std::string> sql_names, cy_names;
  for (const auto& row : sql.value().rows) sql_names.insert(row[0].AsText());
  for (const auto& row : cypher.value().rows) {
    cy_names.insert(row[0].AsText());
  }
  EXPECT_EQ(sql_names, cy_names);
}

TEST_F(StoreTest, KeyAttributeIndexesExist) {
  const sql::Table* entities = store_.relational().FindTable("entities");
  ASSERT_NE(entities, nullptr);
  for (const char* col : {"id", "name", "exename", "dstip"}) {
    EXPECT_TRUE(entities->HasIndex(entities->schema().FindColumn(col)))
        << col;
  }
  const graphdb::PropertyGraph& g = store_.graph().graph();
  EXPECT_TRUE(g.HasNodeIndex("file", "name"));
  EXPECT_TRUE(g.HasNodeIndex("proc", "exename"));
  EXPECT_TRUE(g.HasNodeIndex("ip", "dstip"));
}

TEST_F(StoreTest, ReductionShrinksEventCount) {
  EXPECT_LT(store_.event_count(), log_.events.size());
  EXPECT_EQ(store_.reduction_stats().input_events, log_.events.size());

  StoreOptions no_reduction;
  no_reduction.enable_reduction = false;
  AuditStore raw(no_reduction);
  ASSERT_TRUE(raw.Load(log_).ok());
  EXPECT_EQ(raw.event_count(), log_.events.size());
}

TEST_F(StoreTest, DoubleLoadRejected) {
  EXPECT_FALSE(store_.Load(log_).ok());
}

TEST_F(StoreTest, GroupColumnIsEscapedName) {
  // "group" is stored as column "grp"; both must be queryable.
  auto rs = store_.relational().Query(
      "SELECT grp FROM entities WHERE type = 'proc' LIMIT 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_FALSE(rs.value().rows.empty());
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "staff");
}

}  // namespace
}  // namespace raptor::storage
