#include <gtest/gtest.h>

#include "extraction/extractor.h"
#include "synthesis/synthesizer.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::synthesis {
namespace {

using extraction::IocEntity;
using extraction::ThreatBehaviorGraph;
using nlp::IocType;

ThreatBehaviorGraph MakeGraph(
    std::initializer_list<std::pair<const char*, IocType>> nodes,
    std::initializer_list<std::tuple<int, const char*, int>> edges) {
  ThreatBehaviorGraph g;
  for (const auto& [text, type] : nodes) {
    IocEntity e;
    e.text = text;
    e.type = type;
    g.AddNode(std::move(e));
  }
  for (const auto& [src, verb, dst] : edges) {
    g.AddEdge(src, dst, verb);
  }
  return g;
}

TEST(SynthesizerTest, Fig2QueryTextIsExact) {
  const char* kFig2Text =
      "As a first step, the attacker used /bin/tar to read user credentials "
      "from /etc/passwd. It wrote the gathered information to a file "
      "/tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to "
      "compress the tar file. /bin/bzip2 read from /tmp/upload.tar and "
      "wrote to /tmp/upload.tar.bz2. After compression, the attacker used "
      "Gnu Privacy Guard tool to encrypt the zipped file, which corresponds "
      "to the launched process /usr/bin/gpg reading from "
      "/tmp/upload.tar.bz2. /usr/bin/gpg then wrote the sensitive "
      "information to /tmp/upload. Finally, the attacker leveraged the curl "
      "utility /usr/bin/curl to read the data from /tmp/upload. He leaked "
      "the gathered sensitive information back to the attacker C2 host by "
      "using /usr/bin/curl to connect to 192.168.29.128.";
  auto extraction = extraction::ThreatBehaviorExtractor().Extract(kFig2Text);
  ASSERT_TRUE(extraction.ok());
  auto syn = QuerySynthesizer().Synthesize(extraction.value().graph);
  ASSERT_TRUE(syn.ok()) << syn.status().ToString();
  EXPECT_EQ(syn.value().tbql_text,
            "proc p1[\"%/bin/tar%\"] read file f1[\"%/etc/passwd%\"] as evt1\n"
            "proc p1 write file f2[\"%/tmp/upload.tar%\"] as evt2\n"
            "proc p2[\"%/bin/bzip2%\"] read file f2 as evt3\n"
            "proc p2 write file f3[\"%/tmp/upload.tar.bz2%\"] as evt4\n"
            "proc p3[\"%/usr/bin/gpg%\"] read file f3 as evt5\n"
            "proc p3 write file f4[\"%/tmp/upload%\"] as evt6\n"
            "proc p4[\"%/usr/bin/curl%\"] read file f4 as evt7\n"
            "proc p4 connect ip i1[\"192.168.29.128\"] as evt8\n"
            "with evt1 before evt2, evt2 before evt3, evt3 before evt4, "
            "evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 "
            "before evt8\n"
            "return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1");
  // The synthesized query must be parseable and analyzable.
  auto parsed = tbql::ParseTbql(syn.value().tbql_text);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(tbql::Analyze(parsed.value()).ok());
}

// Relation-mapping rules (Sec III-E Step 1), parameterized.
struct MappingCase {
  const char* verb;
  IocType src;
  IocType dst;
  const char* expected;  // nullptr = screened out
};

class RelationMappingTest : public ::testing::TestWithParam<MappingCase> {};

TEST_P(RelationMappingTest, MapsAsSpecified) {
  const MappingCase& c = GetParam();
  auto op = MapIocRelation(c.verb, c.src, c.dst);
  if (c.expected == nullptr) {
    EXPECT_FALSE(op.has_value()) << c.verb;
  } else {
    ASSERT_TRUE(op.has_value()) << c.verb;
    EXPECT_EQ(*op, c.expected) << c.verb;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Rules, RelationMappingTest,
    ::testing::Values(
        // The paper's example: download direction depends on the endpoint.
        MappingCase{"download", IocType::kFilepath, IocType::kFilepath,
                    "write"},
        MappingCase{"download", IocType::kFilepath, IocType::kIp, "read"},
        MappingCase{"read", IocType::kFilepath, IocType::kFilepath, "read"},
        MappingCase{"open", IocType::kFilepath, IocType::kFilepath, "read"},
        MappingCase{"compress", IocType::kFilepath, IocType::kFilepath,
                    "write"},
        MappingCase{"exfiltrate", IocType::kFilepath, IocType::kIp, "send"},
        MappingCase{"beacon", IocType::kFilepath, IocType::kIp, "connect"},
        MappingCase{"connect", IocType::kFilepath, IocType::kFilepath,
                    nullptr},
        MappingCase{"run", IocType::kFilepath, IocType::kFilepath, "execute"},
        MappingCase{"start", IocType::kDomain, IocType::kDomain, "start"},
        MappingCase{"read", IocType::kFilepath, IocType::kDomain, nullptr},
        MappingCase{"rename", IocType::kFilepath, IocType::kFilepath,
                    "rename"},
        MappingCase{"use", IocType::kFilepath, IocType::kFilepath, nullptr},
        MappingCase{"receive", IocType::kFilepath, IocType::kIp, "recv"}));

TEST(SynthesizerTest, ScreensUnsupportedIocTypes) {
  ThreatBehaviorGraph g = MakeGraph(
      {{"/bin/sh", IocType::kFilepath},
       {"http://evil.com/x", IocType::kUrl},
       {"/tmp/drop", IocType::kFilepath}},
      {{0, "visit", 1}, {0, "write", 2}});
  auto syn = QuerySynthesizer().Synthesize(g);
  ASSERT_TRUE(syn.ok()) << syn.status().ToString();
  EXPECT_EQ(syn.value().query.patterns.size(), 1u);  // URL edge screened
  EXPECT_EQ(syn.value().screened_nodes.size(), 1u);
  EXPECT_EQ(syn.value().screened_edges.size(), 1u);
}

TEST(SynthesizerTest, FailsWhenNothingAuditable) {
  ThreatBehaviorGraph g = MakeGraph(
      {{"CVE-2014-6271", IocType::kCve},
       {"d41d8cd98f00b204e9800998ecf8427e", IocType::kHash}},
      {{0, "read", 1}});
  EXPECT_FALSE(QuerySynthesizer().Synthesize(g).ok());
}

TEST(SynthesizerTest, PathPatternPlan) {
  ThreatBehaviorGraph g = MakeGraph(
      {{"/bin/sh", IocType::kFilepath}, {"/tmp/x", IocType::kFilepath}},
      {{0, "write", 1}});
  SynthesisOptions opts;
  opts.use_path_patterns = true;
  opts.path_max_len = 3;
  auto syn = QuerySynthesizer(opts).Synthesize(g);
  ASSERT_TRUE(syn.ok());
  const tbql::Pattern& p = syn.value().query.patterns[0];
  EXPECT_TRUE(p.path.is_path);
  EXPECT_EQ(p.path.max_len, 3);
  // Path plans have no temporal relationships (Step 3 omitted).
  EXPECT_TRUE(syn.value().query.temporal_rels.empty());
}

TEST(SynthesizerTest, WindowPlanAddsGlobalWindow) {
  ThreatBehaviorGraph g = MakeGraph(
      {{"/bin/sh", IocType::kFilepath}, {"/tmp/x", IocType::kFilepath}},
      {{0, "write", 1}});
  SynthesisOptions opts;
  tbql::TimeWindow w;
  w.kind = tbql::WindowKind::kLast;
  w.last_amount = 3600LL * 1000000;
  opts.window = w;
  auto syn = QuerySynthesizer(opts).Synthesize(g);
  ASSERT_TRUE(syn.ok());
  EXPECT_EQ(syn.value().query.global_windows.size(), 1u);
}

TEST(SynthesizerTest, SubjectAndObjectRolesGetDistinctEntities) {
  // A file that is written and later acts as a process: two entities.
  ThreatBehaviorGraph g = MakeGraph(
      {{"/bin/sh", IocType::kFilepath},
       {"/tmp/drop", IocType::kFilepath},
       {"9.9.9.9", IocType::kIp}},
      {{0, "write", 1}, {1, "connect", 2}});
  auto syn = QuerySynthesizer().Synthesize(g);
  ASSERT_TRUE(syn.ok());
  const auto& q = syn.value().query;
  ASSERT_EQ(q.patterns.size(), 2u);
  // /tmp/drop appears as a file object (f1) and as a proc subject (p2),
  // both carrying the IOC filter.
  EXPECT_EQ(q.patterns[0].object.type, tbql::EntityType::kFile);
  EXPECT_EQ(q.patterns[1].subject.type, tbql::EntityType::kProcess);
  EXPECT_NE(q.patterns[0].object.id, q.patterns[1].subject.id);
  ASSERT_NE(q.patterns[1].subject.filter, nullptr);
  EXPECT_EQ(q.patterns[1].subject.filter->value, "%/tmp/drop%");
}

}  // namespace
}  // namespace raptor::synthesis
