#include <gtest/gtest.h>

#include "audit/jsonl.h"
#include "audit/simulator.h"

namespace raptor::audit {
namespace {

TEST(JsonlTest, RoundTripsSimulatorOutput) {
  BenignProfile profile;
  profile.num_processes = 25;
  profile.seed = 321;
  BenignWorkloadSimulator sim;
  std::vector<SyscallRecord> original = sim.Generate(profile);

  std::string jsonl = RecordsToJsonl(original);
  auto parsed = ParseJsonlRecords(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    const SyscallRecord& a = original[i];
    const SyscallRecord& b = parsed.value()[i];
    EXPECT_EQ(a.ts, b.ts);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.syscall, b.syscall);
    EXPECT_EQ(a.pid, b.pid);
    EXPECT_EQ(a.exe, b.exe);
    EXPECT_EQ(a.path, b.path);
    EXPECT_EQ(a.new_path, b.new_path);
    EXPECT_EQ(a.target_exe, b.target_exe);
    EXPECT_EQ(a.target_pid, b.target_pid);
    EXPECT_EQ(a.src_ip, b.src_ip);
    EXPECT_EQ(a.dst_ip, b.dst_ip);
    EXPECT_EQ(a.dst_port, b.dst_port);
    EXPECT_EQ(a.ret, b.ret);
  }
}

TEST(JsonlTest, EscapesSpecialCharacters) {
  SyscallRecord r;
  r.ts = 1;
  r.pid = 2;
  r.syscall = "write";
  r.exe = "/bin/sh";
  r.path = "/tmp/we\"ird\\name\n";
  std::string jsonl = RecordsToJsonl({r});
  auto parsed = ParseJsonlRecords(jsonl);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].path, r.path);
}

TEST(JsonlTest, SkipsBlankAndCommentLines) {
  auto parsed = ParseJsonlRecords(
      "# captured 2026-06-10\n"
      "\n"
      "{\"ts\":5,\"syscall\":\"read\",\"pid\":1,\"exe\":\"/bin/x\","
      "\"path\":\"/tmp/f\"}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().size(), 1u);
  EXPECT_EQ(parsed.value()[0].ts, 5);
}

TEST(JsonlTest, IgnoresUnknownKeys) {
  auto parsed = ParseJsonlRecords(
      "{\"ts\":1,\"pid\":2,\"syscall\":\"read\",\"exe\":\"/bin/x\","
      "\"path\":\"/f\",\"hostname\":\"web01\",\"seq\":99}\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value()[0].exe, "/bin/x");
}

TEST(JsonlTest, MalformedLinesReportLineNumber) {
  auto parsed = ParseJsonlRecords(
      "{\"ts\":1,\"pid\":2}\n"
      "{not json}\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("line 2"), std::string::npos);
}

TEST(JsonlTest, EmptyObjectAndEmptyInput) {
  auto empty = ParseJsonlRecords("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
  auto obj = ParseJsonlRecords("{}\n");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj.value().size(), 1u);
}

}  // namespace
}  // namespace raptor::audit
