// Observability core: TraceSpan tree construction (including concurrent
// child creation), EXPLAIN ANALYZE rendering, the shared LogHistogram's
// percentile interpolation at its edge cases (empty, single-bucket,
// overflow-bucket), MetricsRegistry rendering in both formats, and the
// slow-hunt JSONL log. Runs under the TSan CI job.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/slow_log.h"
#include "obs/trace.h"

namespace raptor::obs {
namespace {

// ---------------------------------------------------------------------------
// LogHistogram percentile interpolation (the shared histogram semantics
// every subsystem inherits — locked here).

TEST(LogHistogramTest, EmptyHistogramSummarizesToZero) {
  LogHistogram h;
  LogHistogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p90, 0.0);
  EXPECT_EQ(s.p99, 0.0);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.max, 0.0);
  EXPECT_EQ(h.Quantile(0.0), 0.0);
  EXPECT_EQ(h.Quantile(1.0), 0.0);
}

TEST(LogHistogramTest, SingleValueCollapsesAllQuantiles) {
  // 64 lands exactly on its bucket floor and is the observed max, so the
  // bucket span caps to zero width: every quantile is the value itself.
  LogHistogram h;
  h.Record(64);
  LogHistogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.p50, 64.0);
  EXPECT_EQ(s.p90, 64.0);
  EXPECT_EQ(s.p99, 64.0);
  EXPECT_EQ(s.mean, 64.0);
  EXPECT_EQ(s.max, 64.0);
}

TEST(LogHistogramTest, SingleBucketInterpolatesWithinBucket) {
  // All samples in bucket [64, 128); the bucket's effective ceiling is
  // the observed max (100), so interpolated quantiles stay within
  // [floor, max] and are monotone in q.
  LogHistogram h;
  h.Record(70);
  h.Record(80);
  h.Record(100);
  LogHistogram::Summary s = h.Summarize();
  EXPECT_EQ(s.count, 3u);
  EXPECT_GE(s.p50, 64.0);
  EXPECT_LE(s.p99, 100.0);
  EXPECT_LE(s.p50, s.p90);
  EXPECT_LE(s.p90, s.p99);
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(s.max, 100.0);
  // Fractional rank: p50 of 3 samples sits at rank 1 of [0, 2], i.e. one
  // third into the bucket's population, not pinned to the floor.
  EXPECT_GT(h.Quantile(0.5), 64.0);
}

TEST(LogHistogramTest, OverflowBucketAbsorbsHugeValues) {
  // Values >= 2^39 all land in the last bucket; quantiles stay finite and
  // bounded by the bucket ceiling, max records the true maximum.
  const double kHuge = 1e12;  // > 2^39 ~= 5.5e11
  LogHistogram h;
  h.Record(kHuge);
  h.Record(2 * kHuge);
  h.Record(3 * kHuge);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.buckets[LogHistogram::kBuckets - 1], 3u);
  LogHistogram::Summary s = h.Summarize();
  EXPECT_EQ(s.max, 3 * kHuge);
  EXPECT_GE(s.p50, static_cast<double>(uint64_t{1} << 39));
  EXPECT_LE(s.p99, s.max);
  EXPECT_EQ(h.Quantile(1.0), h.Quantile(1.0));  // not NaN
}

TEST(LogHistogramTest, TwoSamplesSpanTheirBuckets) {
  // Ranks scale as q * (count - 1): with {1, 1000}, every q < 1 keeps
  // rank < 1 and interpolates inside the first sample's [0,2) bucket;
  // only q = 1 crosses into the large sample's [512,1024) bucket.
  LogHistogram h;
  h.Record(1);
  h.Record(1000);
  EXPECT_LT(h.Quantile(0.99), 2.0);
  EXPECT_GE(h.Quantile(1.0), 512.0);
  EXPECT_LE(h.Quantile(1.0), 1000.0);
  EXPECT_LT(h.Quantile(0.0), 2.0);
}

// ---------------------------------------------------------------------------
// TraceSpan tree.

TEST(TraceSpanTest, TreeCountersNotesAndFinish) {
  auto root = TraceSpan::Root("hunt");
  root->Note("dialect", "tbql");
  TraceSpan* child = root->AddChild("execute");
  child->Add("rows", 3);
  child->Add("rows", 4);
  child->Set("shards", 2);
  child->Finish();
  root->Finish();
  root->Finish();  // idempotent

  EXPECT_TRUE(root->finished());
  EXPECT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->name(), "execute");
  EXPECT_EQ(child->counter("rows"), 7);
  EXPECT_EQ(child->counter("shards"), 2);
  EXPECT_EQ(child->counter("missing", -1), -1);
  auto notes = root->notes();
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_EQ(notes[0].first, "dialect");
  EXPECT_EQ(notes[0].second, "tbql");
  EXPECT_GE(root->duration_micros(), 0);
}

TEST(TraceSpanTest, SetWindowOverridesMeasuredDuration) {
  auto root = TraceSpan::Root("queue_wait");
  auto start = TraceSpan::Clock::now();
  root->SetWindow(start, start + std::chrono::milliseconds(10));
  EXPECT_TRUE(root->finished());
  EXPECT_EQ(root->duration_micros(), 10'000);
  EXPECT_NEAR(root->seconds(), 0.010, 1e-9);
}

TEST(TraceSpanTest, ConcurrentChildCreationIsSafe) {
  auto root = TraceSpan::Root("hunt");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&root, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan* child =
            root->AddChild("w" + std::to_string(t) + "_" + std::to_string(i));
        child->Add("n", 1);
        root->Add("total", 1);
        child->Finish();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  root->Finish();
  EXPECT_EQ(root->children().size(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(root->counter("total"), kThreads * kPerThread);
}

TEST(TraceSpanTest, NullTolerantHelpersNoOp) {
  EXPECT_EQ(Child(nullptr, "x"), nullptr);
  Add(nullptr, "c", 1);
  Set(nullptr, "c", 1);
  Note(nullptr, "k", "v");
  Finish(nullptr);
  ScopedSpan scoped(nullptr, "y");
  EXPECT_EQ(scoped.get(), nullptr);

  auto root = TraceSpan::Root("r");
  {
    ScopedSpan live(root.get(), "child");
    ASSERT_NE(live.get(), nullptr);
    live.get()->Add("hit", 1);
  }
  ASSERT_EQ(root->children().size(), 1u);
  EXPECT_TRUE(root->children()[0]->finished());
}

TEST(TraceSpanTest, AdoptGraftsSubtree) {
  auto root = TraceSpan::Root("hunt");
  auto sub = TraceSpan::Root("execute");
  sub->AddChild("pattern[0]");
  sub->Finish();
  root->Adopt(sub);
  root->Finish();
  ASSERT_EQ(root->children().size(), 1u);
  EXPECT_EQ(root->children()[0]->name(), "execute");
  EXPECT_EQ(root->children()[0]->children().size(), 1u);
}

// ---------------------------------------------------------------------------
// Profile rendering.

/// Brace balance ignoring string literals — a cheap structural JSON check
/// (the CI smoke does a full parse with python).
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') {
      if (--depth < 0) return false;
    }
  }
  return depth == 0 && !in_string;
}

std::shared_ptr<TraceSpan> BuildSampleTree() {
  auto root = TraceSpan::Root("hunt");
  root->Note("dialect", "tbql");
  TraceSpan* exec = root->AddChild("execute");
  TraceSpan* p0 = exec->AddChild("pattern[0]");
  p0->Set("match_count", 42);
  p0->Note("backend", "relational");
  p0->Finish();
  exec->Finish();
  root->Finish();
  return root;
}

TEST(ProfileRenderTest, TextTreeShowsNamesCountersAndPercent) {
  auto root = BuildSampleTree();
  std::string text = RenderProfileText(*root);
  EXPECT_NE(text.find("hunt"), std::string::npos);
  EXPECT_NE(text.find("execute"), std::string::npos);
  EXPECT_NE(text.find("pattern[0]"), std::string::npos);
  EXPECT_NE(text.find("match_count=42"), std::string::npos);
  EXPECT_NE(text.find("dialect=tbql"), std::string::npos);
  EXPECT_NE(text.find("100.0%"), std::string::npos);
}

TEST(ProfileRenderTest, JsonIsStructurallySound) {
  auto root = BuildSampleTree();
  std::string json = RenderProfileJson(*root);
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"name\":\"hunt\""), std::string::npos);
  EXPECT_NE(json.find("\"children\":["), std::string::npos);
  EXPECT_NE(json.find("\"match_count\":42"), std::string::npos);
  EXPECT_NE(json.find("\"duration_us\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// MetricsRegistry.

TEST(MetricsRegistryTest, PrometheusRendersTypedFamiliesAndLabels) {
  MetricsRegistry registry;
  registry.Counter("raptor_hunts_total", "Hunts", 5);
  registry.Gauge("raptor_queue_depth", "Queued", 2);
  registry.Counter("raptor_tenant_total", "By tenant", 3,
                   {{"tenant", "alpha"}});
  registry.Counter("raptor_tenant_total", "By tenant", 1,
                   {{"tenant", "be\"ta"}});
  std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE raptor_hunts_total counter"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE raptor_queue_depth gauge"), std::string::npos);
  EXPECT_NE(prom.find("raptor_hunts_total 5\n"), std::string::npos);
  EXPECT_NE(prom.find("raptor_tenant_total{tenant=\"alpha\"} 3"),
            std::string::npos);
  // Label values escape embedded quotes.
  EXPECT_NE(prom.find("raptor_tenant_total{tenant=\"be\\\"ta\"} 1"),
            std::string::npos);
  // Both tenant series live under one family header.
  EXPECT_EQ(registry.family_count(), 3u);
}

TEST(MetricsRegistryTest, PrometheusHistogramIsCumulative) {
  LogHistogram h;
  h.Record(1);  // bucket 0: [0, 2)
  h.Record(3);  // bucket 1: [2, 4)
  MetricsRegistry registry;
  registry.Histogram("raptor_latency", "Latency", h);
  std::string prom = registry.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE raptor_latency histogram"), std::string::npos);
  EXPECT_NE(prom.find("raptor_latency_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("raptor_latency_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("raptor_latency_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("raptor_latency_sum 4"), std::string::npos);
  EXPECT_NE(prom.find("raptor_latency_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRendersAllFamilies) {
  LogHistogram h;
  h.Record(10);
  MetricsRegistry registry;
  registry.Counter("a_total", "A", 1);
  registry.Histogram("b_micros", "B", h, {{"tenant", "t"}});
  std::string json = registry.ToJson();
  EXPECT_TRUE(JsonBalanced(json));
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_EQ(registry.Render(MetricsFormat::kJson), json);
  EXPECT_EQ(registry.Render(MetricsFormat::kPrometheus),
            registry.ToPrometheus());
}

// ---------------------------------------------------------------------------
// Slow-hunt log.

TEST(SlowHuntLogTest, LogsOnlyPastThresholdWithProfile) {
  std::string path = testing::TempDir() + "/slow_hunts_test.jsonl";
  std::remove(path.c_str());
  {
    SlowHuntLog log(path, /*threshold_micros=*/1000);
    EXPECT_EQ(log.threshold_micros(), 1000);
    auto trace = BuildSampleTree();
    log.MaybeLog("alpha", "tbql", "proc p return p", "ok", 500,
                 trace.get());  // below threshold
    EXPECT_EQ(log.logged(), 0u);
    log.MaybeLog("alpha", "tbql", "proc p return p", "ok", 2000,
                 trace.get());
    log.MaybeLog("", "cypher", "MATCH (p) RETURN p", "timeout", 5000,
                 nullptr);  // null trace: profile omitted, still logged
    EXPECT_EQ(log.logged(), 2u);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(JsonBalanced(lines[0]));
  EXPECT_TRUE(JsonBalanced(lines[1]));
  EXPECT_NE(lines[0].find("\"tenant\":\"alpha\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"profile\":"), std::string::npos);
  EXPECT_NE(lines[1].find("\"status\":\"timeout\""), std::string::npos);
  EXPECT_EQ(lines[1].find("\"profile\":"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SlowHuntLogTest, UnopenablePathDisablesNotCrashes) {
  SlowHuntLog log("/nonexistent-dir-xyz/slow.jsonl", 0);
  log.MaybeLog("t", "tbql", "q", "ok", 100, nullptr);
  EXPECT_EQ(log.logged(), 0u);
}

}  // namespace
}  // namespace raptor::obs
