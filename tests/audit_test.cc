#include <gtest/gtest.h>

#include <algorithm>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "audit/syscall.h"
#include "audit/types.h"
#include "storage/store.h"

namespace raptor::audit {
namespace {

TEST(EntityStoreTest, InternsFilesByPath) {
  EntityStore store;
  EntityId a = store.InternFile("/etc/passwd");
  EntityId b = store.InternFile("/etc/passwd");
  EntityId c = store.InternFile("/etc/shadow");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.Get(a).name, "/etc/passwd");
}

TEST(EntityStoreTest, ProcessIdentityIsExeAndPid) {
  EntityStore store;
  EntityId a = store.InternProcess("/bin/bash", 100);
  EntityId b = store.InternProcess("/bin/bash", 101);
  EntityId c = store.InternProcess("/bin/bash", 100);
  EXPECT_NE(a, b);  // same exe, different pid
  EXPECT_EQ(a, c);
}

TEST(EntityStoreTest, NetworkIdentityIsFiveTuple) {
  EntityStore store;
  EntityId a = store.InternNetwork("10.0.0.5", 4000, "1.2.3.4", 443, "tcp");
  EntityId b = store.InternNetwork("10.0.0.5", 4001, "1.2.3.4", 443, "tcp");
  EntityId c = store.InternNetwork("10.0.0.5", 4000, "1.2.3.4", 443, "tcp");
  EXPECT_NE(a, b);  // different source port = different connection
  EXPECT_EQ(a, c);
}

TEST(EntityAttributeTest, GenericAccessor) {
  EntityStore store;
  EntityId p = store.InternProcess("/bin/tar", 42, "tar -cf x", "root", "root");
  const SystemEntity& e = store.Get(p);
  EXPECT_EQ(e.Attribute("exename"), "/bin/tar");
  EXPECT_EQ(e.Attribute("pid"), "42");
  EXPECT_EQ(e.Attribute("cmd"), "tar -cf x");
  EXPECT_EQ(e.Attribute("user"), "root");
  EXPECT_EQ(e.Attribute("nosuch"), "");
  EXPECT_EQ(SystemEntity::DefaultAttribute(EntityType::kProcess), "exename");
  EXPECT_EQ(SystemEntity::DefaultAttribute(EntityType::kFile), "name");
  EXPECT_EQ(SystemEntity::DefaultAttribute(EntityType::kNetwork), "dstip");
}

TEST(OpNamesTest, RoundTrip) {
  for (int i = 0; i < kNumEventOps; ++i) {
    EventOp op = static_cast<EventOp>(i);
    auto parsed = EventOpFromName(EventOpName(op));
    ASSERT_TRUE(parsed.has_value()) << EventOpName(op);
    EXPECT_EQ(*parsed, op);
  }
  EXPECT_FALSE(EventOpFromName("frobnicate").has_value());
}

TEST(ParserTest, FileReadBecomesFileEvent) {
  SyscallRecord rec;
  rec.ts = 1000;
  rec.duration = 10;
  rec.syscall = "read";
  rec.pid = 7;
  rec.exe = "/bin/cat";
  rec.path = "/etc/hosts";
  rec.ret = 512;
  ParsedLog log;
  AuditLogParser parser;
  ASSERT_TRUE(parser.Parse({rec}, &log).ok());
  ASSERT_EQ(log.events.size(), 1u);
  const SystemEvent& ev = log.events[0];
  EXPECT_EQ(ev.op, EventOp::kRead);
  EXPECT_EQ(ev.object_type, EntityType::kFile);
  EXPECT_EQ(ev.amount, 512);
  EXPECT_EQ(ev.start_time, 1000);
  EXPECT_EQ(ev.end_time, 1010);
  EXPECT_EQ(log.entities.Get(ev.subject).exename, "/bin/cat");
  EXPECT_EQ(log.entities.Get(ev.object).name, "/etc/hosts");
}

TEST(ParserTest, SocketReadBecomesNetworkEvent) {
  SyscallRecord rec;
  rec.syscall = "read";
  rec.pid = 7;
  rec.exe = "/usr/bin/curl";
  rec.src_ip = "10.0.0.5";
  rec.src_port = 4000;
  rec.dst_ip = "192.168.29.128";
  rec.dst_port = 443;
  rec.protocol = "tcp";
  rec.ret = 100;
  ParsedLog log;
  AuditLogParser parser;
  ASSERT_TRUE(parser.Parse({rec}, &log).ok());
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].op, EventOp::kRead);
  EXPECT_EQ(log.events[0].object_type, EntityType::kNetwork);
  EXPECT_EQ(log.entities.Get(log.events[0].object).dstip, "192.168.29.128");
}

TEST(ParserTest, ExecveWithTargetIsProcessStart) {
  SyscallRecord rec;
  rec.syscall = "execve";
  rec.pid = 7;
  rec.exe = "/bin/bash";
  rec.target_exe = "/bin/tar";
  rec.target_pid = 8;
  ParsedLog log;
  AuditLogParser parser;
  ASSERT_TRUE(parser.Parse({rec}, &log).ok());
  ASSERT_EQ(log.events.size(), 1u);
  EXPECT_EQ(log.events[0].op, EventOp::kStart);
  EXPECT_EQ(log.events[0].object_type, EntityType::kProcess);
}

TEST(ParserTest, UnmonitoredSyscallSkipped) {
  SyscallRecord rec;
  rec.syscall = "gettimeofday";
  rec.pid = 7;
  rec.exe = "/bin/sh";
  ParsedLog log;
  AuditLogParser parser;
  ASSERT_TRUE(parser.Parse({rec}, &log).ok());
  EXPECT_TRUE(log.events.empty());
  EXPECT_EQ(parser.stats().records_skipped, 1u);
}

TEST(ParserTest, MalformedRecordRejected) {
  SyscallRecord rec;
  rec.syscall = "read";  // no exe/pid
  ParsedLog log;
  AuditLogParser parser;
  EXPECT_FALSE(parser.Parse({rec}, &log).ok());
}

TEST(ParserTest, EventsSortedByStartTime) {
  std::vector<SyscallRecord> recs;
  for (int i = 5; i >= 1; --i) {
    SyscallRecord rec;
    rec.ts = i * 1000;
    rec.syscall = "write";
    rec.pid = 7;
    rec.exe = "/bin/sh";
    rec.path = "/tmp/x";
    recs.push_back(rec);
  }
  ParsedLog log;
  AuditLogParser parser;
  ASSERT_TRUE(parser.Parse(recs, &log).ok());
  ASSERT_EQ(log.events.size(), 5u);
  EXPECT_TRUE(std::is_sorted(log.events.begin(), log.events.end(),
                             [](const SystemEvent& a, const SystemEvent& b) {
                               return a.start_time < b.start_time;
                             }));
  // Dense 1-based ids.
  for (size_t i = 0; i < log.events.size(); ++i) {
    EXPECT_EQ(log.events[i].id, i + 1);
  }
}

TEST(SimulatorTest, DeterministicInSeed) {
  BenignProfile profile;
  profile.num_processes = 20;
  profile.seed = 99;
  BenignWorkloadSimulator sim;
  auto a = sim.Generate(profile);
  auto b = sim.Generate(profile);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].syscall, b[i].syscall);
    EXPECT_EQ(a[i].exe, b[i].exe);
  }
  profile.seed = 100;
  auto c = sim.Generate(profile);
  bool differs = a.size() != c.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].ts != c[i].ts || a[i].exe != c[i].exe;
  }
  EXPECT_TRUE(differs);
}

TEST(SimulatorTest, BenignRecordsAllMonitored) {
  BenignProfile profile;
  profile.num_processes = 30;
  BenignWorkloadSimulator sim;
  for (const SyscallRecord& rec : sim.Generate(profile)) {
    EXPECT_TRUE(IsMonitoredSyscall(rec.syscall)) << rec.syscall;
    EXPECT_FALSE(rec.exe.empty());
    EXPECT_GT(rec.pid, 0);
  }
}

TEST(SimulatorTest, AttackScriptProducesOneEventPerStepAfterReduction) {
  AttackStep step;
  step.exe = "/bin/evil";
  step.pid = 666;
  step.op = EventOp::kWrite;
  step.object_path = "/tmp/loot";
  step.syscall_count = 7;
  step.bytes = 70000;
  auto recs = CompileAttackScript({step}, 0, 1);
  EXPECT_EQ(recs.size(), 7u);
  long long total = 0;
  for (const auto& r : recs) total += r.ret;
  EXPECT_GE(total, 70000 - 7);  // bytes split across syscalls
}

TEST(SimulatorTest, CarryOverWindowRestoresSingleLoadReductionRatio) {
  // A bursty attack stream (each step expands to many syscalls) split
  // mid-burst across ingest batches. Per-batch reduction leaves boundary
  // duplicates unmerged; the carry-over window must restore the ratio a
  // single load achieves.
  std::vector<AttackStep> steps;
  for (int i = 0; i < 6; ++i) {
    AttackStep step;
    step.exe = "/bin/burst";
    step.pid = 100;
    step.op = EventOp::kWrite;
    step.object_path = "/tmp/chunk" + std::to_string(i % 2);  // 2 targets
    step.syscall_count = 9;
    step.bytes = 9000;
    step.at = i * 300'000;  // bursts overlap inside the 1 s merge window
    steps.push_back(step);
  }
  auto records = CompileAttackScript(steps, 0, 42);
  ASSERT_EQ(records.size(), 54u);

  auto load_batched = [&](size_t batch_size, bool carry) {
    storage::StoreOptions opts;
    opts.carry_over_window = carry;
    storage::AuditStore store(opts);
    AuditLogParser parser;
    ParsedLog accum;
    for (size_t i = 0; i < records.size(); i += batch_size) {
      std::vector<SyscallRecord> batch(
          records.begin() + i,
          records.begin() + std::min(i + batch_size, records.size()));
      EXPECT_TRUE(parser.Parse(batch, &accum).ok());
      EXPECT_TRUE((i == 0 ? store.Load(accum) : store.Append(accum)).ok());
      accum.events.clear();
    }
    EXPECT_TRUE(store.Flush().ok());
    return store.reduction_stats();
  };

  // Ground truth: everything in one batch.
  storage::ReductionStats single = load_batched(records.size(), false);
  ASSERT_EQ(single.input_events, records.size());
  ASSERT_LT(single.output_events, records.size() / 3)
      << "fixture must actually be reducible";

  // Batches of 7 cut every burst; the window restores the single-load
  // ratio exactly, while per-batch reduction degrades it.
  storage::ReductionStats windowed = load_batched(7, true);
  EXPECT_EQ(windowed.input_events, single.input_events);
  EXPECT_EQ(windowed.output_events, single.output_events)
      << "carry-over window must restore the single-load reduction ratio";
  storage::ReductionStats per_batch = load_batched(7, false);
  EXPECT_GT(per_batch.output_events, single.output_events)
      << "without the window, boundary duplicates stay unmerged";
}

TEST(SimulatorTest, MergeStreamsSortsByTimestamp) {
  std::vector<SyscallRecord> a(3), b(2);
  a[0].ts = 5;
  a[1].ts = 1;
  a[2].ts = 9;
  b[0].ts = 3;
  b[1].ts = 7;
  auto merged = MergeStreams({a, b});
  ASSERT_EQ(merged.size(), 5u);
  EXPECT_TRUE(std::is_sorted(merged.begin(), merged.end(),
                             [](const SyscallRecord& x, const SyscallRecord& y) {
                               return x.ts < y.ts;
                             }));
}

}  // namespace
}  // namespace raptor::audit
