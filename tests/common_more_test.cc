#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "nlp/wordvec.h"
#include "storage/relational/value.h"

namespace raptor {
namespace {

TEST(StringsTest, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y"}, ", "), "x, y");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringsTest, TrimAndCase) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(ToLower("AbC/9"), "abc/9");
  EXPECT_EQ(ToUpper("AbC/9"), "ABC/9");
  EXPECT_TRUE(ContainsIgnoreCase("ThreatRaptor", "raptor"));
  EXPECT_FALSE(ContainsIgnoreCase("ThreatRaptor", "falcon"));
}

TEST(StringsTest, ReplaceAllAndParse) {
  EXPECT_EQ(ReplaceAll("a%%b", "%", "%%"), "a%%%%b");
  EXPECT_EQ(ReplaceAll("xyx", "x", "yy"), "yyyyy");  // non-overlapping scan
  long long v = 0;
  EXPECT_TRUE(ParseInt64("  -42 ", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("12x", &v));
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_EQ(StrFormat("%s=%d", "k", 7), "k=7");
}

TEST(RngTest, DeterministicAndRanged) {
  Rng a(9), b(9), c(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  EXPECT_NE(Rng(9).Next(), c.Next());
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_EQ(Rng(3).Identifier(8).size(), 8u);
}

TEST(TablePrinterTest, AlignsAndPadsRows) {
  TablePrinter t({"a", "long header"});
  t.AddRow({"xxxx"});  // short row padded
  t.AddRow({"y", "z"});
  std::string s = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(Split(s, '\n').size(), 5u);  // incl. trailing empty
  EXPECT_NE(s.find("| a    | long header |"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
  EXPECT_EQ(FormatPercent(0.9674), "96.74%");
  EXPECT_EQ(FormatSeconds(1.234), "1.23");
}

TEST(ValueTest, CoercionsAndComparisons) {
  using sql::Value;
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).AsDouble(), 5.0);
  EXPECT_EQ(Value(2.5).AsInt(), 2);
  EXPECT_EQ(Value("x").AsText(), "x");
  EXPECT_LT(Value().Compare(Value(int64_t{0})), 0);      // NULL first
  EXPECT_LT(Value(int64_t{1}).Compare(Value("a")), 0);   // numbers < text
  EXPECT_EQ(Value(int64_t{2}).Compare(Value(2.0)), 0);   // cross-numeric
  EXPECT_GT(Value("b").Compare(Value("a")), 0);
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value().ToString(), "NULL");
}

TEST(WordVecTest, NormalizedAndDeterministic) {
  nlp::WordVec v = nlp::EmbedWord("/bin/tar");
  double norm = 0;
  for (float x : v) norm += static_cast<double>(x) * x;
  EXPECT_NEAR(norm, 1.0, 1e-5);
  EXPECT_EQ(nlp::EmbedWord("/bin/tar"), nlp::EmbedWord("/bin/tar"));
  // Cosine is symmetric and bounded.
  double ab = nlp::WordSimilarity("alpha", "beta");
  EXPECT_NEAR(ab, nlp::WordSimilarity("beta", "alpha"), 1e-9);
  EXPECT_LE(ab, 1.0 + 1e-9);
  EXPECT_GE(ab, -1.0 - 1e-9);
  // Empty strings embed to the zero vector.
  nlp::WordVec zero = nlp::EmbedWord("");
  double z = 0;
  for (float x : zero) z += std::abs(x);
  EXPECT_LT(z, 1.0);  // "^$" bigram only; tiny mass
}

}  // namespace
}  // namespace raptor
