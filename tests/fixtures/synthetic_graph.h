// Shared synthetic provenance-graph fixture: the 100k-node / 500k-edge
// workload generator previously duplicated by bench_query_execution.cc and
// bench_fuzzy_search.cc, now reusable by benches, stress tests, and the
// differential test harness.
//
// Generation is fully determined by (spec, rng seed): the caller owns the
// Rng so follow-up draws (IN-list sampling, query randomization) continue
// the same deterministic stream. The two naming modes reproduce the
// original benches byte-for-byte:
//  * two-population mode (default): process nodes first, then file nodes,
//    each named prefix + within-population index
//    ("/bin/p0".."/bin/pN", "/data/f0".."/data/fM");
//  * global_name_index mode: one interleaved population where every node is
//    named prefix + global node index ("/n0".."/nK"), procs first.
// Edge endpoints either connect proc -> file (edges_proc_to_file) or join
// two uniformly random nodes.
//
// PlantAttackSubgraphs() additionally lays attack-shaped subgraphs with
// known entity ids over any base graph — a lateral-movement chain and an
// exfiltration fan-in — so tests can assert that hunting queries recover
// exactly the planted structures.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/graphdb/graph.h"

namespace raptor::fixtures {

struct SyntheticGraphSpec {
  long long nodes = 100'000;
  long long edges = 500'000;
  int edge_types = 16;         // edge types are "op0".."op<n-1>"
  long long proc_count = -1;   // -1 => nodes / 2
  const char* proc_label = "proc";
  const char* file_label = "file";
  const char* proc_prop = "exename";
  const char* file_prop = "name";
  const char* proc_prefix = "/bin/p";
  const char* file_prefix = "/data/f";
  /// Name every node file_prefix + global node index (file_prop keys the
  /// property for both labels) instead of per-population prefixes.
  bool global_name_index = false;
  /// Edges run proc -> file; false draws both endpoints uniformly.
  bool edges_proc_to_file = true;
  /// Shard-skew knob: this fraction of edges draws its SOURCE from the
  /// "hot" node subset (source ids ≡ 0 mod skew_modulus) instead of
  /// uniformly. Because the store shards entities round-robin on the low
  /// id bits, setting skew_modulus to the store's shard count collapses
  /// the hot subset — and the expansion work its out-edges represent —
  /// onto a single shard, the straggler workload morsel stealing exists
  /// for. 0 (default) disables the extra rng draws entirely, so
  /// historical specs reproduce byte-for-byte. Note a plain Zipf over
  /// node ids would NOT skew shards: round-robin sharding spreads any
  /// id-rank distribution evenly.
  double skew_hot_fraction = 0.0;
  /// Hot subset stride; set to the store's shard count (power of two).
  int skew_modulus = 4;
};

struct SyntheticGraph {
  std::vector<graphdb::NodeId> procs;
  std::vector<graphdb::NodeId> files;
};

/// Populate `g` with the spec's node/edge workload, drawing from `rng`.
inline SyntheticGraph BuildSyntheticGraph(graphdb::PropertyGraph& g,
                                          const SyntheticGraphSpec& spec,
                                          Rng& rng) {
  SyntheticGraph out;
  const long long n_procs =
      spec.proc_count >= 0 ? spec.proc_count : spec.nodes / 2;
  const long long n_files = spec.nodes - n_procs;
  out.procs.reserve(n_procs);
  out.files.reserve(n_files);
  if (spec.global_name_index) {
    for (long long i = 0; i < spec.nodes; ++i) {
      graphdb::NodeId id = g.AddNode(
          i < n_procs ? spec.proc_label : spec.file_label,
          {{spec.file_prop,
            graphdb::Value(spec.file_prefix + std::to_string(i))}});
      (i < n_procs ? out.procs : out.files).push_back(id);
    }
  } else {
    for (long long i = 0; i < n_procs; ++i) {
      out.procs.push_back(g.AddNode(
          spec.proc_label,
          {{spec.proc_prop,
            graphdb::Value(spec.proc_prefix + std::to_string(i))}}));
    }
    for (long long i = 0; i < n_files; ++i) {
      out.files.push_back(g.AddNode(
          spec.file_label,
          {{spec.file_prop,
            graphdb::Value(spec.file_prefix + std::to_string(i))}}));
    }
  }
  // Hot-source pool for the skew knob: sources whose id ≡ 0 mod
  // skew_modulus, restricted to the proc population when edges run
  // proc -> file.
  std::vector<graphdb::NodeId> hot_srcs;
  if (spec.skew_hot_fraction > 0) {
    const uint64_t mod =
        spec.skew_modulus > 0 ? static_cast<uint64_t>(spec.skew_modulus) : 1;
    for (graphdb::NodeId id : out.procs) {
      if (id % mod == 0) hot_srcs.push_back(id);
    }
    if (!spec.edges_proc_to_file) {
      for (graphdb::NodeId id : out.files) {
        if (id % mod == 0) hot_srcs.push_back(id);
      }
    }
  }
  // Draw order per edge is pinned to (type, src, dst) — sequenced
  // explicitly, unlike inline AddEdge arguments — so identical specs +
  // seeds reproduce the exact same graph on any compiler. The skew coin
  // (and the hot-pool draw it gates) only enters the stream when
  // skew_hot_fraction > 0.
  for (long long i = 0; i < spec.edges; ++i) {
    std::string type = "op" + std::to_string(rng.Uniform(spec.edge_types));
    graphdb::NodeId src, dst;
    bool hot = spec.skew_hot_fraction > 0 && !hot_srcs.empty() &&
               rng.Chance(spec.skew_hot_fraction);
    if (spec.edges_proc_to_file) {
      src = hot ? hot_srcs[rng.Uniform(hot_srcs.size())]
                : out.procs[rng.Uniform(out.procs.size())];
      dst = out.files[rng.Uniform(out.files.size())];
    } else {
      // Uniform over all nodes; ids are dense and in creation order, so
      // drawing the index doubles as drawing the node id.
      src = hot ? hot_srcs[rng.Uniform(hot_srcs.size())]
                : rng.Uniform(static_cast<uint64_t>(spec.nodes));
      dst = rng.Uniform(static_cast<uint64_t>(spec.nodes));
    }
    g.AddEdge(src, dst, std::move(type), {});
  }
  return out;
}

/// Planted attack-shaped subgraphs with known entity ids, so stress and
/// differential tests can assert on the exact matches a hunting query must
/// return instead of bare row counts. Plants reuse the base spec's labels
/// and property keys (so the same indexes cover them) but use distinctive
/// name prefixes and edge types that the random background population
/// never produces.
struct AttackPlantSpec {
  /// Lateral movement: a chain of processes p0 -> p1 -> ... -> p<hops>,
  /// each hop an edge of type `lateral_edge` with increasing start_time
  /// (the shape of an attacker pivoting host to host).
  int lateral_hops = 4;
  const char* lateral_prefix = "/attack/lm";
  const char* lateral_edge = "lm_hop";
  /// Exfiltration fan-in: one staging process reads `exfil_docs` sensitive
  /// files and writes a single archive (many sources converging on one
  /// sink before exfil).
  int exfil_docs = 6;
  const char* exfil_proc_name = "/attack/exfil";
  const char* exfil_doc_prefix = "/secret/doc";
  const char* exfil_archive_name = "/attack/upload.tgz";
  const char* exfil_read_edge = "exfil_read";
  const char* exfil_write_edge = "exfil_write";
};

struct AttackPlants {
  std::vector<graphdb::NodeId> lateral_procs;  // chain order, hops+1 nodes
  graphdb::NodeId exfil_proc = graphdb::kInvalidNode;
  std::vector<graphdb::NodeId> exfil_docs;
  graphdb::NodeId exfil_archive = graphdb::kInvalidNode;
};

/// The property key naming a node of `label` under the spec's scheme
/// (global_name_index mode keys every label on file_prop).
inline const char* NamePropFor(const SyntheticGraphSpec& spec,
                               bool is_proc) {
  if (spec.global_name_index || !is_proc) return spec.file_prop;
  return spec.proc_prop;
}

/// Plant the lateral-movement chain and the exfil fan-in into `g`.
/// Deterministic: node ids continue the graph's dense id space in the
/// order laid out here, and the returned ids identify every plant.
inline AttackPlants PlantAttackSubgraphs(graphdb::PropertyGraph& g,
                                         const SyntheticGraphSpec& spec,
                                         const AttackPlantSpec& plant = {}) {
  AttackPlants out;
  const char* proc_prop = NamePropFor(spec, /*is_proc=*/true);
  const char* file_prop = NamePropFor(spec, /*is_proc=*/false);
  // Lateral movement chain.
  for (int i = 0; i <= plant.lateral_hops; ++i) {
    out.lateral_procs.push_back(g.AddNode(
        spec.proc_label,
        {{proc_prop,
          graphdb::Value(plant.lateral_prefix + std::to_string(i))}}));
  }
  for (int i = 0; i < plant.lateral_hops; ++i) {
    g.AddEdge(out.lateral_procs[i], out.lateral_procs[i + 1],
              plant.lateral_edge,
              {{"start_time", graphdb::Value(static_cast<int64_t>(i * 10))},
               {"end_time",
                graphdb::Value(static_cast<int64_t>(i * 10 + 1))}});
  }
  // Exfil fan-in.
  out.exfil_proc = g.AddNode(
      spec.proc_label, {{proc_prop, graphdb::Value(plant.exfil_proc_name)}});
  for (int i = 0; i < plant.exfil_docs; ++i) {
    out.exfil_docs.push_back(g.AddNode(
        spec.file_label,
        {{file_prop,
          graphdb::Value(plant.exfil_doc_prefix + std::to_string(i))}}));
    g.AddEdge(out.exfil_proc, out.exfil_docs.back(), plant.exfil_read_edge,
              {{"start_time", graphdb::Value(static_cast<int64_t>(100 + i))},
               {"end_time",
                graphdb::Value(static_cast<int64_t>(101 + i))}});
  }
  out.exfil_archive = g.AddNode(
      spec.file_label,
      {{file_prop, graphdb::Value(plant.exfil_archive_name)}});
  g.AddEdge(out.exfil_proc, out.exfil_archive, plant.exfil_write_edge,
            {{"start_time", graphdb::Value(static_cast<int64_t>(200))},
             {"end_time", graphdb::Value(static_cast<int64_t>(201))}});
  return out;
}

/// The name of a uniformly random file node under the spec's naming scheme.
inline std::string RandomFileName(const SyntheticGraphSpec& spec,
                                  const SyntheticGraph& sg, Rng& rng) {
  size_t idx = rng.Uniform(sg.files.size());
  if (spec.global_name_index) {
    return spec.file_prefix + std::to_string(sg.procs.size() + idx);
  }
  return spec.file_prefix + std::to_string(idx);
}

/// A Cypher IN-list body of `count` random (possibly repeated) file names:
/// "'/data/f1', '/data/f2', ...".
inline std::string RandomFileNameInList(const SyntheticGraphSpec& spec,
                                        const SyntheticGraph& sg, Rng& rng,
                                        int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ", ";
    out += "'" + RandomFileName(spec, sg, rng) + "'";
  }
  return out;
}

}  // namespace raptor::fixtures
