// Shared synthetic provenance-graph fixture: the 100k-node / 500k-edge
// workload generator previously duplicated by bench_query_execution.cc and
// bench_fuzzy_search.cc, now reusable by benches, stress tests, and the
// differential test harness.
//
// Generation is fully determined by (spec, rng seed): the caller owns the
// Rng so follow-up draws (IN-list sampling, query randomization) continue
// the same deterministic stream. The two naming modes reproduce the
// original benches byte-for-byte:
//  * two-population mode (default): process nodes first, then file nodes,
//    each named prefix + within-population index
//    ("/bin/p0".."/bin/pN", "/data/f0".."/data/fM");
//  * global_name_index mode: one interleaved population where every node is
//    named prefix + global node index ("/n0".."/nK"), procs first.
// Edge endpoints either connect proc -> file (edges_proc_to_file) or join
// two uniformly random nodes.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/graphdb/graph.h"

namespace raptor::fixtures {

struct SyntheticGraphSpec {
  long long nodes = 100'000;
  long long edges = 500'000;
  int edge_types = 16;         // edge types are "op0".."op<n-1>"
  long long proc_count = -1;   // -1 => nodes / 2
  const char* proc_label = "proc";
  const char* file_label = "file";
  const char* proc_prop = "exename";
  const char* file_prop = "name";
  const char* proc_prefix = "/bin/p";
  const char* file_prefix = "/data/f";
  /// Name every node file_prefix + global node index (file_prop keys the
  /// property for both labels) instead of per-population prefixes.
  bool global_name_index = false;
  /// Edges run proc -> file; false draws both endpoints uniformly.
  bool edges_proc_to_file = true;
};

struct SyntheticGraph {
  std::vector<graphdb::NodeId> procs;
  std::vector<graphdb::NodeId> files;
};

/// Populate `g` with the spec's node/edge workload, drawing from `rng`.
inline SyntheticGraph BuildSyntheticGraph(graphdb::PropertyGraph& g,
                                          const SyntheticGraphSpec& spec,
                                          Rng& rng) {
  SyntheticGraph out;
  const long long n_procs =
      spec.proc_count >= 0 ? spec.proc_count : spec.nodes / 2;
  const long long n_files = spec.nodes - n_procs;
  out.procs.reserve(n_procs);
  out.files.reserve(n_files);
  if (spec.global_name_index) {
    for (long long i = 0; i < spec.nodes; ++i) {
      graphdb::NodeId id = g.AddNode(
          i < n_procs ? spec.proc_label : spec.file_label,
          {{spec.file_prop,
            graphdb::Value(spec.file_prefix + std::to_string(i))}});
      (i < n_procs ? out.procs : out.files).push_back(id);
    }
  } else {
    for (long long i = 0; i < n_procs; ++i) {
      out.procs.push_back(g.AddNode(
          spec.proc_label,
          {{spec.proc_prop,
            graphdb::Value(spec.proc_prefix + std::to_string(i))}}));
    }
    for (long long i = 0; i < n_files; ++i) {
      out.files.push_back(g.AddNode(
          spec.file_label,
          {{spec.file_prop,
            graphdb::Value(spec.file_prefix + std::to_string(i))}}));
    }
  }
  // Draw order per edge is pinned to (type, src, dst) — sequenced
  // explicitly, unlike inline AddEdge arguments — so identical specs +
  // seeds reproduce the exact same graph on any compiler.
  for (long long i = 0; i < spec.edges; ++i) {
    std::string type = "op" + std::to_string(rng.Uniform(spec.edge_types));
    graphdb::NodeId src, dst;
    if (spec.edges_proc_to_file) {
      src = out.procs[rng.Uniform(out.procs.size())];
      dst = out.files[rng.Uniform(out.files.size())];
    } else {
      // Uniform over all nodes; ids are dense and in creation order, so
      // drawing the index doubles as drawing the node id.
      src = rng.Uniform(static_cast<uint64_t>(spec.nodes));
      dst = rng.Uniform(static_cast<uint64_t>(spec.nodes));
    }
    g.AddEdge(src, dst, std::move(type), {});
  }
  return out;
}

/// The name of a uniformly random file node under the spec's naming scheme.
inline std::string RandomFileName(const SyntheticGraphSpec& spec,
                                  const SyntheticGraph& sg, Rng& rng) {
  size_t idx = rng.Uniform(sg.files.size());
  if (spec.global_name_index) {
    return spec.file_prefix + std::to_string(sg.procs.size() + idx);
  }
  return spec.file_prefix + std::to_string(idx);
}

/// A Cypher IN-list body of `count` random (possibly repeated) file names:
/// "'/data/f1', '/data/f2', ...".
inline std::string RandomFileNameInList(const SyntheticGraphSpec& spec,
                                        const SyntheticGraph& sg, Rng& rng,
                                        int count) {
  std::string out;
  for (int i = 0; i < count; ++i) {
    if (i > 0) out += ", ";
    out += "'" + RandomFileName(spec, sg, rng) + "'";
  }
  return out;
}

}  // namespace raptor::fixtures
