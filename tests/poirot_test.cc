#include <gtest/gtest.h>

#include "audit/parser.h"
#include "engine/poirot.h"
#include "storage/store.h"

namespace raptor::engine {
namespace {

/// Store with a renamed-IOC attack: the "real" chain uses brnout.exe and
/// 10.9.9.9 while queries will ask for burnout.exe and 10.9.9.8, plus a
/// decoy chain that should score lower.
class PoirotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<audit::SyscallRecord> recs;
    auto file_rec = [&](audit::Timestamp ts, const char* syscall,
                        const char* exe, long long pid, const char* path) {
      audit::SyscallRecord r;
      r.ts = ts;
      r.duration = 5;
      r.syscall = syscall;
      r.exe = exe;
      r.pid = pid;
      r.path = path;
      r.ret = 100;
      recs.push_back(r);
    };
    auto net_rec = [&](audit::Timestamp ts, const char* exe, long long pid,
                       const char* ip) {
      audit::SyscallRecord r;
      r.ts = ts;
      r.duration = 5;
      r.syscall = "connect";
      r.exe = exe;
      r.pid = pid;
      r.src_ip = "10.0.0.5";
      r.src_port = 40000;
      r.dst_ip = ip;
      r.dst_port = 443;
      r.protocol = "tcp";
      recs.push_back(r);
    };
    // Real (renamed) chain: nmsg writes the dropper, starts it, and the
    // dropper process connects out (nmsg -> dropper proc -> C2 is the
    // 2-hop flow the influence test exercises).
    file_rec(1'000'000, "write", "/usr/bin/nmsg", 20, "/tmp/brnout.exe");
    {
      audit::SyscallRecord r;
      r.ts = 2'500'000;
      r.duration = 5;
      r.syscall = "execve";
      r.exe = "/usr/bin/nmsg";
      r.pid = 20;
      r.target_exe = "/tmp/brnout.exe";
      r.target_pid = 21;
      recs.push_back(r);
    }
    net_rec(3'000'000, "/tmp/brnout.exe", 21, "10.9.9.9");
    // Decoy chain with dissimilar names.
    file_rec(2'000'000, "write", "/usr/bin/vim", 30, "/home/u/notes.txt");
    net_rec(4'000'000, "/usr/bin/chrome", 31, "142.250.0.1");

    audit::ParsedLog log;
    audit::AuditLogParser parser;
    ASSERT_TRUE(parser.Parse(recs, &log).ok());
    ASSERT_TRUE(store_.Load(log).ok());
  }

  storage::AuditStore store_;
};

TEST_F(PoirotTest, RecoversRenamedIocs) {
  FuzzyMatcher matcher(&store_);
  FuzzyOptions opts;
  opts.node_similarity = 0.6;
  opts.score_threshold = 0.5;
  auto report = matcher.SearchText(
      "proc p[\"%/usr/bin/nmsg%\"] write file f[\"%/tmp/burnout.exe%\"] as "
      "e1\n"
      "proc q[\"%/tmp/burnout.exe%\"] connect ip i[\"10.9.9.8\"] as e2\n"
      "return p, f, q, i",
      opts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report.value().alignments.empty());
  const FuzzyAlignment& best = report.value().alignments[0];
  // The misspelled dropper and the moved C2 align to the real entities.
  long long f_entity = best.nodes.at("f");
  EXPECT_EQ(store_.entities()[f_entity - 1].name, "/tmp/brnout.exe");
  long long i_entity = best.nodes.at("i");
  EXPECT_EQ(store_.entities()[i_entity - 1].dstip, "10.9.9.9");
  EXPECT_GT(best.score, 0.9);  // both edges exist at distance 1
}

TEST_F(PoirotTest, ExactSearchWouldFindNothing) {
  // Sanity: the same query in exact mode retrieves no events.
  TbqlExecutor executor(&store_);
  auto exact = executor.ExecuteText(
      "proc p[\"%/usr/bin/nmsg%\"] write file f[\"%/tmp/burnout.exe%\"] as "
      "e1 return p, f");
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact.value().matched_event_ids.empty());
}

TEST_F(PoirotTest, ExhaustiveFindsAtLeastAsManyAsFirstMatch) {
  FuzzyOptions exhaustive;
  exhaustive.exhaustive = true;
  exhaustive.score_threshold = 0.4;
  FuzzyOptions first;
  first.exhaustive = false;
  first.score_threshold = 0.4;
  FuzzyMatcher matcher(&store_);
  const char* query =
      "proc p[\"%nmsg%\"] write file f[\"%brnout%\"] as e1 return p, f";
  auto all = matcher.SearchText(query, exhaustive);
  auto one = matcher.SearchText(query, first);
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(one.ok());
  EXPECT_LE(one.value().alignments.size(), 1u);
  EXPECT_GE(all.value().alignments.size(), one.value().alignments.size());
  EXPECT_GE(all.value().candidate_alignments_considered,
            one.value().candidate_alignments_considered);
}

TEST_F(PoirotTest, InfluenceDecaysWithDistance) {
  // write(nmsg->brnout) is distance 1 from nmsg; the connect from brnout to
  // the C2 is distance 2 from nmsg. A query asking nmsg->C2 directly can
  // only align through the 2-hop flow and must score 1/C.
  FuzzyMatcher matcher(&store_);
  FuzzyOptions opts;
  opts.score_threshold = 0.3;
  opts.influence_base = 2.0;
  auto report = matcher.SearchText(
      "proc p[\"%/usr/bin/nmsg%\"] connect ip i[\"10.9.9.9\"] as e1 "
      "return p, i",
      opts);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report.value().alignments.empty());
  EXPECT_NEAR(report.value().alignments[0].score, 0.5, 1e-9);
}

TEST_F(PoirotTest, ThresholdRejectsPoorAlignments) {
  FuzzyMatcher matcher(&store_);
  FuzzyOptions opts;
  opts.score_threshold = 0.99;
  auto report = matcher.SearchText(
      "proc p[\"%/usr/bin/nmsg%\"] connect ip i[\"10.9.9.9\"] as e1 "
      "return p, i",
      opts);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().alignments.empty());
}

TEST_F(PoirotTest, TimingsArePopulated) {
  FuzzyMatcher matcher(&store_);
  auto report = matcher.SearchText(
      "proc p[\"%nmsg%\"] write file f[\"%brnout%\"] as e1 return p, f");
  ASSERT_TRUE(report.ok());
  EXPECT_GE(report.value().timings.total(), 0.0);
  EXPECT_GE(report.value().timings.searching_seconds, 0.0);
}

}  // namespace
}  // namespace raptor::engine
