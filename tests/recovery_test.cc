// Crash-recovery differentials for the durable facade: a run that
// checkpoints mid-stream, loses its live store, and recovers from
// snapshot + WAL tail must be indistinguishable — byte-equal one-shot
// results, standing-hunt deltas that neither skip nor (for checkpointed
// rows) repeat — from a run that was never interrupted. Plus the
// retention policy and the stream-offset resume contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "audit/jsonl.h"
#include "audit/simulator.h"
#include "stream/event_stream.h"
#include "threatraptor.h"

namespace raptor {
namespace {

namespace fs = std::filesystem;

constexpr char kSecretQuery[] =
    "proc p read file f[\"%/tmp/secret%\"] return p, f";
constexpr char kExfilQuery[] =
    "proc p read file f[\"%/tmp/secret%\"] as e1 "
    "proc p write file g[\"%/var/spool/%\"] as e2 "
    "with e1 before e2 return p, f, g";

std::string FreshDir(const std::string& name) {
  std::string dir = testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

/// Batch i: a unique attacker process reads a unique secret file (one new
/// row for kSecretQuery per batch) plus a write event for kExfilQuery.
audit::ParsedLog MakeBatch(int i) {
  audit::ParsedLog log;
  audit::EntityId p = log.entities.InternProcess(
      "/usr/bin/attacker" + std::to_string(i), 1000 + i);
  audit::EntityId f =
      log.entities.InternFile("/tmp/secret" + std::to_string(i));
  audit::EntityId out =
      log.entities.InternFile("/var/spool/out" + std::to_string(i));
  audit::SystemEvent read;
  read.id = 1;
  read.subject = p;
  read.object = f;
  read.object_type = audit::EntityType::kFile;
  read.op = audit::EventOp::kRead;
  read.start_time = 1000 * i;
  read.end_time = 1000 * i + 10;
  read.amount = 64;
  log.events.push_back(read);
  audit::SystemEvent write;
  write.id = 2;
  write.subject = p;
  write.object = out;
  write.object_type = audit::EntityType::kFile;
  write.op = audit::EventOp::kWrite;
  write.start_time = 1000 * i + 20;
  write.end_time = 1000 * i + 30;
  write.amount = 200 + i;
  log.events.push_back(write);
  return log;
}

/// Thread-safe collector for standing-hunt deltas, one string per row.
struct RowCollector {
  std::mutex mu;
  std::vector<std::string> rows;

  service::StandingSink Sink() {
    service::StandingSink sink;
    sink.on_alert = [this](const service::StandingUpdate& update) {
      std::lock_guard<std::mutex> lock(mu);
      auto cursor = update.cursor();
      while (const std::vector<sql::Value>* row = cursor.Next()) {
        std::string line;
        for (const sql::Value& v : *row) {
          if (!line.empty()) line += " | ";
          line += v.ToString();
        }
        rows.push_back(line);
      }
    };
    sink.on_error = [](const Status& status) {
      ADD_FAILURE() << "standing refresh failed: " << status.ToString();
    };
    return sink;
  }

  std::multiset<std::string> Sorted() {
    std::lock_guard<std::mutex> lock(mu);
    return {rows.begin(), rows.end()};
  }
};

service::HuntRequest StandingRequest() {
  service::HuntRequest request;
  request.text = kSecretQuery;
  return request;
}

TEST(RecoveryTest, CrashRecoveryDifferential) {
  constexpr int kBatches = 6;
  // --- Reference: one uninterrupted in-memory run. ---
  ThreatRaptor ref;
  ASSERT_TRUE(ref.IngestParsedLog(MakeBatch(0)).ok());
  RowCollector ref_rows;
  service::StandingHandle ref_handle =
      ref.hunt_service()->SubmitStanding(StandingRequest(), ref_rows.Sink());
  for (int i = 1; i < kBatches; ++i) {
    ASSERT_TRUE(ref.IngestParsedLog(MakeBatch(i)).ok());
  }
  ASSERT_TRUE(ref_handle.WaitEpoch(ref.hunt_service()->epoch()));
  auto ref_secret = ref.Hunt(kSecretQuery);
  auto ref_exfil = ref.Hunt(kExfilQuery);
  ASSERT_TRUE(ref_secret.ok());
  ASSERT_TRUE(ref_exfil.ok());
  ASSERT_EQ(ref_rows.Sorted().size(), static_cast<size_t>(kBatches));

  // --- Durable run: checkpoint after batch 2, crash after batch 4. ---
  const std::string dir = FreshDir("recovery_differential");
  persist::DurabilityOptions durability;
  durability.data_dir = dir;
  durability.snapshot_shards = 3;
  RowCollector pre_crash;
  std::multiset<std::string> delivered_pre_crash;
  {
    auto opened = ThreatRaptor::Open(durability);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    ThreatRaptor& tr = *opened.value();
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(0)).ok());
    service::StandingHandle handle = tr.hunt_service()->SubmitStanding(
        StandingRequest(), pre_crash.Sink());
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(1)).ok());
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(2)).ok());
    ASSERT_TRUE(handle.WaitEpoch(tr.hunt_service()->epoch()));
    ASSERT_TRUE(tr.Checkpoint().ok());  // persists seen-set through batch 2
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(3)).ok());
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(4)).ok());
    ASSERT_TRUE(handle.WaitEpoch(tr.hunt_service()->epoch()));
    delivered_pre_crash = pre_crash.Sorted();
    ASSERT_EQ(delivered_pre_crash.size(), 5u);
    // Crash: the facade dies with no Close() — batches 3 and 4 exist only
    // in the WAL tail.
  }

  // --- Recover: snapshot + WAL replay, resubmit the standing hunt. ---
  auto reopened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ThreatRaptor& tr = *reopened.value();
  persist::DurabilityStats stats = tr.durability_stats();
  EXPECT_TRUE(stats.restored);
  EXPECT_GT(stats.replayed_records, 0u);

  RowCollector post_restart;
  service::StandingHandle handle = tr.hunt_service()->SubmitStanding(
      StandingRequest(), post_restart.Sink());
  ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(5)).ok());
  ASSERT_TRUE(handle.WaitEpoch(tr.hunt_service()->epoch()));

  // One-shot results are byte-equal to the uninterrupted run.
  auto secret = tr.Hunt(kSecretQuery);
  auto exfil = tr.Hunt(kExfilQuery);
  ASSERT_TRUE(secret.ok()) << secret.status().ToString();
  ASSERT_TRUE(exfil.ok()) << exfil.status().ToString();
  EXPECT_EQ(secret.value().results.ToString(),
            ref_secret.value().results.ToString());
  EXPECT_EQ(exfil.value().results.ToString(),
            ref_exfil.value().results.ToString());
  EXPECT_EQ(tr.store()->entity_count(), ref.store()->entity_count());
  EXPECT_EQ(tr.store()->event_count(), ref.store()->event_count());

  // Standing-hunt delivery semantics across the crash: at-least-once for
  // rows acknowledged only after the checkpoint, exactly-once for
  // everything the checkpointed seen-set covers. Concretely:
  //  * every row the uninterrupted run delivered was delivered here too
  //    (nothing lost);
  //  * rows 0-2 (inside the checkpoint) arrive exactly once — the
  //    restored seen-set suppressed their re-delivery;
  //  * rows 3-4 (delivered pre-crash but after the checkpoint) arrive at
  //    most twice — the crash forgot their delivery, so the WAL-replayed
  //    store re-delivers them.
  std::multiset<std::string> all = delivered_pre_crash;
  std::multiset<std::string> post = post_restart.Sorted();
  for (const std::string& row : post) all.insert(row);
  for (const std::string& row : ref_rows.Sorted()) {
    EXPECT_GE(all.count(row), 1u) << row;
    EXPECT_LE(all.count(row), 2u) << row;
  }
  EXPECT_EQ(all.size(), ref_rows.Sorted().size() + 2);  // rows 3, 4 twice
  for (const std::string& row : post) {
    // Rows from batches 0-2 were in the checkpoint's seen-set; their
    // reappearance would mean the restored seen-set did not arm the
    // resubmitted hunt.
    for (int i = 0; i <= 2; ++i) {
      EXPECT_EQ(row.find("secret" + std::to_string(i)), std::string::npos)
          << row;
    }
  }
  // The restored accumulated total continued counting: 3 checkpointed
  // rows + the post-restart baseline (rows 3, 4) + batch 5's row.
  EXPECT_EQ(handle.total_rows(), ref_handle.total_rows());
}

TEST(RecoveryTest, ReplayAloneRebuildsWithoutSnapshot) {
  const std::string dir = FreshDir("recovery_wal_only");
  persist::DurabilityOptions durability;
  durability.data_dir = dir;
  {
    auto opened = ThreatRaptor::Open(durability);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(opened.value()->IngestParsedLog(MakeBatch(i)).ok());
    }
    // Crash with no checkpoint ever taken: everything lives in the WAL.
  }
  auto reopened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened.value()->durability_stats().restored);
  EXPECT_EQ(reopened.value()->durability_stats().replayed_records, 3u);
  auto report = reopened.value()->Hunt(kSecretQuery);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().results.rows.size(), 3u);
}

TEST(RecoveryTest, AutoCheckpointEveryNEpochs) {
  const std::string dir = FreshDir("recovery_autockpt");
  persist::DurabilityOptions durability;
  durability.data_dir = dir;
  durability.snapshot_interval_epochs = 2;
  auto opened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(opened.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(opened.value()->IngestParsedLog(MakeBatch(i)).ok());
  }
  // Epochs 2 and 4 crossed the interval.
  EXPECT_EQ(opened.value()->durability_stats().checkpoints, 2u);
  ASSERT_TRUE(opened.value()->Close().ok());
  EXPECT_FALSE(opened.value()->durable());
  // Closed facade refuses further mutations but still answers queries.
  EXPECT_FALSE(opened.value()->IngestParsedLog(MakeBatch(9)).ok());
  EXPECT_TRUE(opened.value()->Hunt(kSecretQuery).ok());
}

TEST(RetentionTest, EvictedEpochsNoLongerMatch) {
  const std::string dir = FreshDir("retention_evict");
  persist::DurabilityOptions durability;
  durability.data_dir = dir;
  durability.retention_horizon_epochs = 2;
  auto opened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(opened.ok());
  ThreatRaptor& tr = *opened.value();
  constexpr int kBatches = 6;
  for (int i = 0; i < kBatches; ++i) {
    ASSERT_TRUE(tr.IngestParsedLog(MakeBatch(i)).ok());
  }
  const storage::ReductionStats before = tr.store()->reduction_stats();
  const size_t before_events = tr.store()->event_count();

  // The checkpoint applies retention: epochs older than (current - 2)
  // age out, i.e. batches 0-3 go, batches 4 and 5 survive.
  ASSERT_TRUE(tr.Checkpoint().ok());
  persist::DurabilityStats stats = tr.durability_stats();
  EXPECT_EQ(stats.epochs_evicted, 4u);
  EXPECT_EQ(stats.events_evicted, 8u);
  EXPECT_EQ(tr.store()->event_count(), before_events - 8);

  // Evicted epochs no longer match; surviving ones still do.
  auto report = tr.Hunt(kSecretQuery);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().results.rows.size(), 2u);
  const std::string rendered = report.value().results.ToString();
  EXPECT_EQ(rendered.find("secret0"), std::string::npos);
  EXPECT_NE(rendered.find("secret4"), std::string::npos);
  EXPECT_NE(rendered.find("secret5"), std::string::npos);

  // Reduction ratios over the surviving window are unchanged: eviction
  // touches neither the input nor the output counters.
  EXPECT_EQ(tr.store()->reduction_stats().input_events,
            before.input_events);
  EXPECT_EQ(tr.store()->reduction_stats().output_events,
            before.output_events);

  // The eviction is durable: a restart restores only the survivors.
  ASSERT_TRUE(tr.Close().ok());
  auto reopened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  auto after = reopened.value()->Hunt(kSecretQuery);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().results.ToString(), rendered);
  EXPECT_EQ(reopened.value()->store()->evicted_through(), 8u);
}

TEST(StreamResumeTest, TailResumesAtRestoredOffset) {
  const std::string dir = FreshDir("stream_resume");
  const std::string path = testing::TempDir() + "/resume_tail.jsonl";
  fs::remove(path);

  audit::BenignProfile profile;
  profile.num_processes = 10;
  profile.seed = 33;
  audit::BenignWorkloadSimulator sim;
  std::vector<audit::SyscallRecord> records = sim.Generate(profile);
  ASSERT_GT(records.size(), 10u);
  const size_t half = records.size() / 2;
  std::vector<audit::SyscallRecord> first(records.begin(),
                                          records.begin() + half);
  std::vector<audit::SyscallRecord> second(records.begin() + half,
                                           records.end());

  persist::DurabilityOptions durability;
  durability.data_dir = dir;

  // Session 1: tail the first half, persisting the consumed offset with
  // every batch.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << audit::RecordsToJsonl(first);
  }
  uint64_t committed = 0;
  {
    auto opened = ThreatRaptor::Open(durability);
    ASSERT_TRUE(opened.ok());
    stream::JsonlTailSource source(path);
    source.FinishFile();
    for (;;) {
      auto batch = source.Poll();
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch.value().records.empty()) {
        ASSERT_TRUE(opened.value()
                        ->IngestSyscalls(batch.value().records, path,
                                         source.committed_offset())
                        .ok());
      }
      if (batch.value().end_of_stream) break;
    }
    committed = source.committed_offset();
    ASSERT_GT(committed, 0u);
    ASSERT_TRUE(opened.value()->Close().ok());
  }

  // The log grows while we are down.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << audit::RecordsToJsonl(second);
  }

  // Session 2: the restored offset skips everything already ingested.
  auto reopened = ThreatRaptor::Open(durability);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ThreatRaptor& tr = *reopened.value();
  auto restored = tr.restored_stream_offset(path);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(*restored, committed);
  EXPECT_FALSE(tr.restored_stream_offset("/no/such/stream").has_value());

  stream::JsonlTailOptions topts;
  topts.start_offset = static_cast<size_t>(*restored);
  stream::JsonlTailSource source(path, topts);
  source.FinishFile();
  size_t resumed_records = 0;
  for (;;) {
    auto batch = source.Poll();
    ASSERT_TRUE(batch.ok());
    if (!batch.value().records.empty()) {
      resumed_records += batch.value().records.size();
      ASSERT_TRUE(tr.IngestSyscalls(batch.value().records, path,
                                    source.committed_offset())
                      .ok());
    }
    if (batch.value().end_of_stream) break;
  }
  EXPECT_EQ(resumed_records, second.size());  // nothing skipped or repeated

  // The resumed store matches an uninterrupted ingest of the same splits.
  ThreatRaptor ref;
  ASSERT_TRUE(ref.IngestSyscalls(first).ok());
  ASSERT_TRUE(ref.IngestSyscalls(second).ok());
  EXPECT_EQ(tr.store()->entity_count(), ref.store()->entity_count());
  EXPECT_EQ(tr.store()->event_count(), ref.store()->event_count());
  fs::remove(path);
}

}  // namespace
}  // namespace raptor
