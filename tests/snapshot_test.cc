// The v1 text snapshot format is retired: persistence now goes through
// persist::Checkpointer (see persist_test.cc / recovery_test.cc). What
// remains here is the one-release compatibility shim that imports v1 data
// — plus the ExplainPlanText coverage that always lived in this file.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "engine/explain.h"
#include "persist/legacy_v1.h"
#include "threatraptor.h"

namespace raptor {
namespace {

// A v1 snapshot as the previous release's SaveSnapshot wrote it: header,
// "E <n>" + tab-separated entity lines (type, name, exename, pid, cmd,
// srcip, srcport, dstip, dstport, protocol, user, group), then "V <n>" +
// event lines (subject, object, op, start, end, amount, failure).
constexpr char kV1Blob[] =
    "raptor-snapshot v1\n"
    "E 3\n"
    "1\t\tcurl\t42\tcurl http://x\t\t0\t\t0\t\talice\tusers\n"
    "0\t/tmp/out.bin\t\t0\t\t\t0\t\t0\t\talice\tusers\n"
    "2\t\t\t0\t\t10.0.0.5\t5000\t93.184.216.34\t80\ttcp\t\t\n"
    "V 2\n"
    "1\t3\t6\t100\t101\t512\t0\n"
    "1\t2\t1\t102\t103\t2048\t0\n";

TEST(V1ShimTest, ParsesV1Text) {
  auto log = persist::ParseV1Snapshot(kV1Blob);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  ASSERT_EQ(log.value().entities.size(), 3u);
  const audit::SystemEntity& proc = log.value().entities.Get(1);
  EXPECT_EQ(proc.type, audit::EntityType::kProcess);
  EXPECT_EQ(proc.exename, "curl");
  EXPECT_EQ(proc.pid, 42);
  EXPECT_EQ(proc.user, "alice");
  const audit::SystemEntity& net = log.value().entities.Get(3);
  EXPECT_EQ(net.type, audit::EntityType::kNetwork);
  EXPECT_EQ(net.dstip, "93.184.216.34");
  EXPECT_EQ(net.dstport, 80);
  ASSERT_EQ(log.value().events.size(), 2u);
  EXPECT_EQ(log.value().events[0].subject, 1u);
  EXPECT_EQ(log.value().events[0].object, 3u);
  EXPECT_EQ(log.value().events[0].object_type, audit::EntityType::kNetwork);
  EXPECT_EQ(log.value().events[1].op, audit::EventOp::kWrite);
  EXPECT_EQ(log.value().events[1].amount, 2048);
}

TEST(V1ShimTest, EscapedStringsSurvive) {
  const std::string blob =
      "raptor-snapshot v1\n"
      "E 2\n"
      "1\t\t/bin/we\\tird\\\\exe\t1\ta\\nb\t\t0\t\t0\t\t\t\n"
      "0\t/tmp/tab\\there\t\t0\t\t\t0\t\t0\t\t\t\n"
      "V 1\n"
      "1\t2\t1\t0\t0\t0\t0\n";
  auto log = persist::ParseV1Snapshot(blob);
  ASSERT_TRUE(log.ok()) << log.status().ToString();
  EXPECT_EQ(log.value().entities.Get(1).exename, "/bin/we\tird\\exe");
  EXPECT_EQ(log.value().entities.Get(1).cmd, "a\nb");
  EXPECT_EQ(log.value().entities.Get(2).name, "/tmp/tab\there");
}

TEST(V1ShimTest, RejectsGarbage) {
  EXPECT_FALSE(persist::ParseV1Snapshot("").ok());
  EXPECT_FALSE(persist::ParseV1Snapshot("not a snapshot").ok());
  EXPECT_FALSE(persist::ParseV1Snapshot("raptor-snapshot v1\nE 5\n").ok());
  EXPECT_FALSE(
      persist::ParseV1Snapshot(
          "raptor-snapshot v1\nE 0\nV 1\n1\t9\t0\t0\t0\t0\t0\n")
          .ok());  // event references unknown entity
}

TEST(V1ShimTest, ImportsIntoFacade) {
  const std::string path =
      testing::TempDir() + "/v1_shim_import_test.snap";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << kV1Blob;
  }
  ThreatRaptor tr;
  ASSERT_TRUE(tr.ImportV1Snapshot(path).ok());
  EXPECT_EQ(tr.store()->entity_count(), 3u);
  EXPECT_EQ(tr.store()->event_count(), 2u);
  auto report = tr.Hunt("proc p[\"%curl%\"] write file f return p, f");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().results.rows.size(), 1u);
  std::remove(path.c_str());
}

TEST(ExplainTest, RendersScheduledPlan) {
  auto explained = engine::ExplainPlanText(
      "proc p read file f as e1 "
      "proc p2[\"%tar%\"] write file f2[\"%out%\"] as e2 "
      "with e1 before e2 return p");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const std::string& s = explained.value();
  // The more-constrained pattern #2 is scheduled first.
  EXPECT_NE(s.find("1. pattern #2"), std::string::npos) << s;
  EXPECT_NE(s.find("2. pattern #1"), std::string::npos) << s;
  EXPECT_NE(s.find("relational backend"), std::string::npos);
  EXPECT_NE(s.find("1 temporal"), std::string::npos);
}

TEST(ExplainTest, PathPatternUsesGraphBackend) {
  auto explained = engine::ExplainPlanText(
      "proc p ~>(1~3)[read] file f[\"%x%\"] return p, f");
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained.value().find("graph backend"), std::string::npos);
  EXPECT_NE(explained.value().find("MATCH"), std::string::npos);
}

TEST(ExplainTest, PropagatesParseErrors) {
  EXPECT_FALSE(engine::ExplainPlanText("not a query").ok());
}

}  // namespace
}  // namespace raptor
