#include <gtest/gtest.h>

#include "audit/parser.h"
#include "audit/simulator.h"
#include "engine/explain.h"
#include "storage/snapshot.h"
#include "storage/store.h"

namespace raptor::storage {
namespace {

audit::ParsedLog MakeLog(int processes, uint64_t seed) {
  audit::BenignProfile profile;
  profile.num_processes = processes;
  profile.seed = seed;
  audit::BenignWorkloadSimulator sim;
  audit::ParsedLog log;
  audit::AuditLogParser parser;
  EXPECT_TRUE(parser.Parse(sim.Generate(profile), &log).ok());
  return log;
}

TEST(SnapshotTest, RoundTripPreservesEverything) {
  audit::ParsedLog log = MakeLog(30, 77);
  std::string blob = SnapshotToString(log);
  auto restored = SnapshotFromString(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored.value().entities.size(), log.entities.size());
  for (size_t i = 1; i <= log.entities.size(); ++i) {
    const audit::SystemEntity& a = log.entities.Get(i);
    const audit::SystemEntity& b = restored.value().entities.Get(i);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.UniqueKey(), b.UniqueKey());
    EXPECT_EQ(a.user, b.user);
  }
  ASSERT_EQ(restored.value().events.size(), log.events.size());
  for (size_t i = 0; i < log.events.size(); ++i) {
    const audit::SystemEvent& a = log.events[i];
    const audit::SystemEvent& b = restored.value().events[i];
    EXPECT_EQ(a.subject, b.subject);
    EXPECT_EQ(a.object, b.object);
    EXPECT_EQ(a.op, b.op);
    EXPECT_EQ(a.start_time, b.start_time);
    EXPECT_EQ(a.end_time, b.end_time);
    EXPECT_EQ(a.amount, b.amount);
  }
}

TEST(SnapshotTest, RestoredLogLoadsIntoStore) {
  audit::ParsedLog log = MakeLog(20, 88);
  auto restored = SnapshotFromString(SnapshotToString(log));
  ASSERT_TRUE(restored.ok());
  AuditStore a, b;
  ASSERT_TRUE(a.Load(log).ok());
  ASSERT_TRUE(b.Load(restored.value()).ok());
  EXPECT_EQ(a.entity_count(), b.entity_count());
  EXPECT_EQ(a.event_count(), b.event_count());
}

TEST(SnapshotTest, EscapedStringsSurvive) {
  audit::ParsedLog log;
  audit::EntityStore& es = log.entities;
  audit::EntityId p = es.InternProcess("/bin/we\tird\\exe", 1, "a\nb");
  audit::EntityId f = es.InternFile("/tmp/tab\there");
  audit::SystemEvent ev;
  ev.id = 1;
  ev.subject = p;
  ev.object = f;
  ev.op = audit::EventOp::kWrite;
  ev.object_type = audit::EntityType::kFile;
  log.events.push_back(ev);
  auto restored = SnapshotFromString(SnapshotToString(log));
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().entities.Get(p).exename, "/bin/we\tird\\exe");
  EXPECT_EQ(restored.value().entities.Get(p).cmd, "a\nb");
  EXPECT_EQ(restored.value().entities.Get(f).name, "/tmp/tab\there");
}

TEST(SnapshotTest, RejectsGarbage) {
  EXPECT_FALSE(SnapshotFromString("").ok());
  EXPECT_FALSE(SnapshotFromString("not a snapshot").ok());
  EXPECT_FALSE(SnapshotFromString("raptor-snapshot v1\nE 5\n").ok());
  EXPECT_FALSE(
      SnapshotFromString("raptor-snapshot v1\nE 0\nV 1\n1\t9\t0\t0\t0\t0\t0\n")
          .ok());  // event references unknown entity
}

TEST(ExplainTest, RendersScheduledPlan) {
  auto explained = engine::ExplainPlanText(
      "proc p read file f as e1 "
      "proc p2[\"%tar%\"] write file f2[\"%out%\"] as e2 "
      "with e1 before e2 return p");
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  const std::string& s = explained.value();
  // The more-constrained pattern #2 is scheduled first.
  EXPECT_NE(s.find("1. pattern #2"), std::string::npos) << s;
  EXPECT_NE(s.find("2. pattern #1"), std::string::npos) << s;
  EXPECT_NE(s.find("relational backend"), std::string::npos);
  EXPECT_NE(s.find("1 temporal"), std::string::npos);
}

TEST(ExplainTest, PathPatternUsesGraphBackend) {
  auto explained = engine::ExplainPlanText(
      "proc p ~>(1~3)[read] file f[\"%x%\"] return p, f");
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained.value().find("graph backend"), std::string::npos);
  EXPECT_NE(explained.value().find("MATCH"), std::string::npos);
}

TEST(ExplainTest, PropagatesParseErrors) {
  EXPECT_FALSE(engine::ExplainPlanText("not a query").ok());
}

}  // namespace
}  // namespace raptor::storage
