// Continuous hunting: stream sources, epoch-coordinated ingest, and
// standing hunts. The differential core: a standing hunt's accumulated
// deltas over N streamed batches must be row-identical (as distinct-row
// sets — standing deltas have set semantics) to a one-shot hunt over the
// fully-ingested store, crossed with parallel_shards {1, 4} and with the
// incremental (dirty-seeded) and full re-scan refresh paths. Runs under
// the TSan CI job (ingest worker + concurrent standing refreshes).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "audit/jsonl.h"
#include "audit/parser.h"
#include "audit/simulator.h"
#include "service/hunt_service.h"
#include "storage/store.h"
#include "stream/event_stream.h"
#include "stream/ingestor.h"
#include "threatraptor.h"

namespace raptor {
namespace {

using service::HuntRequest;
using service::HuntService;
using service::IngestReport;
using service::QueryDialect;
using service::StandingOptions;
using service::StandingSink;
using service::StandingUpdate;

// ---- sources ---------------------------------------------------------------

TEST(JsonlTailSourceTest, FollowsGrowingFileWithPartialLines) {
  std::string path = ::testing::TempDir() + "/tail_test.jsonl";
  std::remove(path.c_str());

  stream::JsonlTailSource source(path);
  // Not created yet: no data, no error, no end.
  auto b0 = source.Poll();
  ASSERT_TRUE(b0.ok()) << b0.status().ToString();
  EXPECT_TRUE(b0.value().records.empty());
  EXPECT_FALSE(b0.value().end_of_stream);

  audit::SyscallRecord r1;
  r1.ts = 100;
  r1.syscall = "read";
  r1.pid = 1;
  r1.exe = "/bin/a";
  r1.path = "/data/x";
  r1.ret = 10;
  audit::SyscallRecord r2 = r1;
  r2.ts = 200;
  r2.path = "/data/y";
  std::string two_lines = audit::RecordsToJsonl({r1, r2});
  // Write line 1 plus HALF of line 2 (a writer mid-line).
  size_t first_nl = two_lines.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  size_t half = first_nl + 1 + (two_lines.size() - first_nl - 1) / 2;
  {
    std::ofstream out(path, std::ios::binary);
    out << two_lines.substr(0, half);
  }
  auto b1 = source.Poll();
  ASSERT_TRUE(b1.ok()) << b1.status().ToString();
  ASSERT_EQ(b1.value().records.size(), 1u);  // only the complete line
  EXPECT_EQ(b1.value().records[0].path, "/data/x");

  // Finish line 2 and add line 3.
  audit::SyscallRecord r3 = r1;
  r3.ts = 300;
  r3.path = "/data/z";
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << two_lines.substr(half) << audit::RecordsToJsonl({r3});
  }
  auto b2 = source.Poll();
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();
  ASSERT_EQ(b2.value().records.size(), 2u);
  EXPECT_EQ(b2.value().records[0].path, "/data/y");
  EXPECT_EQ(b2.value().records[1].path, "/data/z");

  source.FinishFile();
  auto b3 = source.Poll();
  ASSERT_TRUE(b3.ok());
  EXPECT_TRUE(b3.value().records.empty());
  EXPECT_TRUE(b3.value().end_of_stream);
  std::remove(path.c_str());
}

TEST(JsonlTailSourceTest, RecoversFromTruncation) {
  std::string path = ::testing::TempDir() + "/tail_trunc.jsonl";
  audit::SyscallRecord r;
  r.ts = 100;
  r.syscall = "read";
  r.pid = 1;
  r.exe = "/bin/a";
  r.path = "/data/old";
  r.ret = 1;
  {
    std::ofstream out(path, std::ios::binary);
    out << audit::RecordsToJsonl({r, r});
  }
  stream::JsonlTailSource source(path);
  auto b1 = source.Poll();
  ASSERT_TRUE(b1.ok());
  EXPECT_EQ(b1.value().records.size(), 2u);

  // Rotation-in-place: the file shrinks, then new content arrives. The
  // tail must restart from the top instead of seeking past EOF forever.
  r.path = "/data/new";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << audit::RecordsToJsonl({r});
  }
  auto b2 = source.Poll();
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();
  ASSERT_EQ(b2.value().records.size(), 1u);
  EXPECT_EQ(b2.value().records[0].path, "/data/new");
  std::remove(path.c_str());
}

audit::AttackStep FileReadStep(const char* exe, long long pid,
                               const char* path, int syscalls,
                               audit::Timestamp at) {
  audit::AttackStep step;
  step.exe = exe;
  step.pid = pid;
  step.op = audit::EventOp::kRead;
  step.object_path = path;
  step.syscall_count = syscalls;
  step.bytes = 1 << 16;
  step.at = at;
  return step;
}

stream::SimulatorSourceOptions SmallSimulatedStream() {
  stream::SimulatorSourceOptions opts;
  opts.profile.num_users = 4;
  opts.profile.num_processes = 30;
  opts.profile.mean_records_per_process = 12;
  opts.profile.duration = 30LL * 60 * 1000 * 1000;  // 30 simulated minutes
  opts.profile.seed = 7;
  opts.batch_window_us = 5LL * 60 * 1000 * 1000;  // 5-minute batches
  // An exfil-shaped attack landing mid-stream: a staging process reads two
  // secret documents in bursts and ships them out.
  stream::SimulatorSourceOptions::TimedAttack attack;
  attack.at = 12LL * 60 * 1000 * 1000;
  attack.steps = {
      FileReadStep("/attack/exfil", 666, "/secret/doc0", 4, 0),
      FileReadStep("/attack/exfil", 666, "/secret/doc1", 4, 500'000)};
  audit::AttackStep connect;
  connect.exe = "/attack/exfil";
  connect.pid = 666;
  connect.op = audit::EventOp::kConnect;
  connect.dst_ip = "203.0.113.7";
  connect.dst_port = 443;
  connect.at = 1'000'000;
  attack.steps.push_back(connect);
  opts.attacks.push_back(std::move(attack));
  return opts;
}

TEST(SimulatorSourceTest, BatchesPartitionTheTimeline) {
  stream::SimulatorSource source(SmallSimulatedStream());
  size_t total = source.total_records();
  ASSERT_GT(total, 0u);
  size_t streamed = 0;
  size_t batches = 0;
  audit::Timestamp last_ts = -1;
  for (;;) {
    auto batch = source.Poll();
    ASSERT_TRUE(batch.ok());
    if (!batch.value().records.empty()) {
      ++batches;
      // Windows replay in timeline order.
      EXPECT_GE(batch.value().records.front().ts, last_ts);
      last_ts = batch.value().records.back().ts;
      streamed += batch.value().records.size();
    }
    if (batch.value().end_of_stream) break;
  }
  EXPECT_EQ(streamed, total);
  EXPECT_GT(batches, 2u) << "expected a multi-batch stream";
  // Drained source stays ended.
  auto again = source.Poll();
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again.value().end_of_stream);
}

// ---- ingest worker ---------------------------------------------------------

TEST(StreamIngestorTest, AppliesEveryBatchThenFinishes) {
  stream::SimulatorSource source(SmallSimulatedStream());
  size_t total = source.total_records();
  std::mutex mu;
  size_t applied = 0;
  bool finished = false;
  stream::IngestorOptions opts;
  opts.finish = [&] {
    std::lock_guard<std::mutex> lock(mu);
    finished = true;
    return Status::OK();
  };
  stream::StreamIngestor ingestor(
      &source,
      [&](const std::vector<audit::SyscallRecord>& records) {
        std::lock_guard<std::mutex> lock(mu);
        applied += records.size();
        return Status::OK();
      },
      opts);
  ingestor.Start();
  ASSERT_TRUE(ingestor.WaitEnd(30'000'000));
  stream::IngestorStats stats = ingestor.stats();
  EXPECT_TRUE(stats.error.ok()) << stats.error.ToString();
  EXPECT_TRUE(stats.ended);
  EXPECT_EQ(stats.records, total);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(applied, total);
  EXPECT_TRUE(finished);
}

TEST(StreamIngestorTest, ApplyErrorIsTerminal) {
  stream::SimulatorSource source(SmallSimulatedStream());
  stream::StreamIngestor ingestor(
      &source, [&](const std::vector<audit::SyscallRecord>&) {
        return Status::Internal("backend down");
      });
  ingestor.Start();
  ASSERT_TRUE(ingestor.WaitEnd(30'000'000));
  EXPECT_EQ(ingestor.stats().error.code(), StatusCode::kInternal);
  EXPECT_FALSE(ingestor.stats().ended);
}

// ---- epoch-coordinated ingest ----------------------------------------------

/// A store big enough that hunts take real time (reduction off so every
/// event survives; same shape as service_test's wide store).
std::unique_ptr<ThreatRaptor> BuildWideStore(int procs, int files_per_proc) {
  ThreatRaptorOptions options;
  options.store.enable_reduction = false;
  auto tr = std::make_unique<ThreatRaptor>(options);
  audit::ParsedLog log;
  audit::Timestamp ts = 1'000'000;
  for (int i = 0; i < procs; ++i) {
    audit::EntityId p =
        log.entities.InternProcess("/bin/svc" + std::to_string(i), 100 + i);
    for (int j = 0; j < files_per_proc; ++j) {
      audit::EntityId f = log.entities.InternFile(
          "/data/d" + std::to_string(i) + "_" + std::to_string(j));
      audit::SystemEvent ev;
      ev.id = log.events.size() + 1;
      ev.subject = p;
      ev.object = f;
      ev.object_type = audit::EntityType::kFile;
      ev.op = audit::EventOp::kRead;
      ev.start_time = ts;
      ev.end_time = ts + 10;
      ts += 100;
      log.events.push_back(ev);
    }
  }
  EXPECT_TRUE(tr->IngestParsedLog(log).ok());
  return tr;
}

audit::ParsedLog OneEventBatch(const std::string& exe, long long pid,
                               const std::string& path) {
  audit::ParsedLog log;
  audit::EntityId p = log.entities.InternProcess(exe, pid);
  audit::EntityId f = log.entities.InternFile(path);
  audit::SystemEvent ev;
  ev.id = 1;
  ev.subject = p;
  ev.object = f;
  ev.object_type = audit::EntityType::kFile;
  ev.op = audit::EventOp::kRead;
  ev.start_time = 1;
  ev.end_time = 2;
  log.events.push_back(ev);
  return log;
}

TEST(EpochIngestTest, IngestProceedsWhileHuntsAreInFlight) {
  auto tr = BuildWideStore(100, 100);
  HuntService* service = tr->hunt_service();
  ASSERT_NE(service, nullptr);
  uint64_t epoch_before = service->epoch();

  HuntRequest slow;
  slow.text = "proc p read file f return p, f";
  service::HuntTicket ticket = service->Submit(std::move(slow));
  ticket.WaitStarted();
  // The streaming-path contract: mutation while a hunt runs is NOT
  // refused — the epoch gate drains the hunt, applies, and returns OK.
  EXPECT_TRUE(tr->IngestParsedLog(OneEventBatch("/bin/late", 9999,
                                                "/data/late"))
                  .ok());
  // The gate drained the hunt before mutating: its execution is complete
  // (the ticket finishes a beat later — the worker leaves the running set
  // before marking done — so Wait, don't poll).
  EXPECT_TRUE(ticket.Wait().ok());
  EXPECT_EQ(service->epoch(), epoch_before + 1);
  EXPECT_GE(service->stats().ingests, 1u);

  // The appended event is queryable after the gate releases.
  HuntRequest check;
  check.text = "proc p[\"%late%\"] read file f return p, f";
  auto r = service->Run(std::move(check));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().report.results.rows.size(), 1u);
}

TEST(EpochIngestTest, HuntsSubmittedDuringIngestWaitAndSucceed) {
  auto tr = BuildWideStore(40, 40);
  HuntService* service = tr->hunt_service();
  ASSERT_NE(service, nullptr);
  // A mutation that dwells long enough for hunts to pile up behind the
  // gate, submitted from a second thread.
  std::atomic<bool> in_mutation{false};
  std::thread writer([&] {
    auto epoch = service->Ingest([&](IngestReport*) {
      in_mutation.store(true);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return Status::OK();
    });
    EXPECT_TRUE(epoch.ok());
  });
  while (!in_mutation.load()) std::this_thread::yield();
  HuntRequest req;
  req.text = "proc p[\"%svc1%\"] read file f return p, f";
  auto r = service->Run(std::move(req));  // admitted only after the gate
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  writer.join();
}

// ---- standing hunts --------------------------------------------------------

std::string RowKey(const std::vector<sql::Value>& row) {
  std::string key;
  for (const sql::Value& v : row) {
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

/// Thread-safe delta accumulator for a standing hunt's sink.
struct DeltaCollector {
  std::mutex mu;
  std::multiset<std::string> rows;  // multiset: double delivery must fail
  size_t updates = 0;
  size_t alerts = 0;
  size_t incremental = 0;
  std::vector<Status> errors;

  StandingSink MakeSink() {
    StandingSink sink;
    sink.on_update = [this](const StandingUpdate& update) {
      std::lock_guard<std::mutex> lock(mu);
      ++updates;
      if (update.incremental) ++incremental;
      auto cursor = update.delta.blocks();
      for (const auto& block : cursor) {
        for (const std::vector<sql::Value>& row : block) {
          rows.insert(RowKey(row));
        }
      }
    };
    sink.on_alert = [this](const StandingUpdate&) {
      std::lock_guard<std::mutex> lock(mu);
      ++alerts;
    };
    sink.on_error = [this](const Status& status) {
      std::lock_guard<std::mutex> lock(mu);
      errors.push_back(status);
    };
    return sink;
  }
};

/// Ingest one raw-record batch into (store, service) through the shared
/// parser/accumulator, the way ThreatRaptor::SyncStore does.
Status ApplyBatch(storage::AuditStore* store, HuntService* service,
                  audit::AuditLogParser* parser, audit::ParsedLog* accum,
                  const std::vector<audit::SyscallRecord>& records) {
  RAPTOR_RETURN_NOT_OK(parser->Parse(records, accum));
  auto epoch = service->Ingest([&](IngestReport* report) {
    storage::AppendStats stats;
    RAPTOR_RETURN_NOT_OK(store->Append(*accum, &stats));
    report->touched_entities = std::move(stats.touched_entities);
    accum->events.clear();
    return Status::OK();
  });
  return epoch.ok() ? Status::OK() : epoch.status();
}

/// The differential: stream the simulated timeline batch by batch with
/// standing hunts attached; their accumulated deltas must equal the
/// distinct rows of a one-shot hunt on the final store.
void RunStandingDifferential(int parallel_shards) {
  SCOPED_TRACE("parallel_shards=" + std::to_string(parallel_shards));
  storage::StoreOptions sopts;
  sopts.carry_over_window = true;
  storage::AuditStore store(sopts);
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());  // schemas up front
  store.graph().options().parallel_shards = parallel_shards;
  store.relational().options().parallel_shards = parallel_shards;

  HuntService service(&store);
  struct Case {
    const char* name;
    HuntRequest request;
    StandingOptions options;
  };
  std::vector<Case> cases;
  {
    HuntRequest cypher;
    cypher.dialect = QueryDialect::kCypher;
    cypher.text =
        "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name";
    StandingOptions incremental;
    incremental.max_dirty_fraction = 1.0;  // always take the dirty path
    cases.push_back({"cypher-incremental", cypher, incremental});
    StandingOptions full;
    full.allow_incremental = false;
    cases.push_back({"cypher-full", cypher, full});
    // Multi-part pattern: the dirty-seeded refresh must seed EVERY part
    // from the expanded dirty region (a new read lands in part 1, a new
    // write in part 2 — missing either loses rows).
    HuntRequest multipart;
    multipart.dialect = QueryDialect::kCypher;
    multipart.text =
        "MATCH (p:proc)-[e1:read]->(f:file), (p)-[e2:write]->(g:file) "
        "RETURN p.exename, f.name, g.name";
    cases.push_back({"cypher-multipart-incremental", multipart, incremental});
    HuntRequest tbql;
    tbql.dialect = QueryDialect::kTbql;
    tbql.text = "proc p read file f return p, f";
    cases.push_back({"tbql-full", tbql, full});
    // TBQL dirty seeding: once a full refresh has matched every pattern,
    // later refreshes constrain each pattern to the dirty entities.
    cases.push_back({"tbql-incremental", tbql, incremental});
  }
  std::vector<DeltaCollector> collectors(cases.size());
  std::vector<service::StandingHandle> handles;
  for (size_t i = 0; i < cases.size(); ++i) {
    handles.push_back(service.SubmitStanding(
        cases[i].request, collectors[i].MakeSink(), cases[i].options));
    ASSERT_TRUE(handles[i].valid());
  }

  // Stream the timeline. Draining every subscription to the new epoch
  // between batches forces one refresh per epoch (otherwise back-to-back
  // ingests coalesce into fewer refreshes — valid, but this test wants
  // the incremental path exercised on every delta).
  stream::SimulatorSource source(SmallSimulatedStream());
  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  size_t batches = 0;
  for (;;) {
    auto batch = source.Poll();
    ASSERT_TRUE(batch.ok());
    if (!batch.value().records.empty()) {
      ++batches;
      ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                             batch.value().records)
                      .ok());
      for (service::StandingHandle& h : handles) {
        ASSERT_TRUE(h.WaitEpoch(service.epoch(), 60'000'000));
      }
    }
    if (batch.value().end_of_stream) break;
  }
  ASSERT_GT(batches, 2u);
  // End of stream: store the carry-over window's tail, then drain every
  // subscription to the final epoch.
  {
    auto epoch = service.Ingest([&](IngestReport* report) {
      storage::AppendStats stats;
      RAPTOR_RETURN_NOT_OK(store.Flush(&stats));
      report->touched_entities = std::move(stats.touched_entities);
      return Status::OK();
    });
    ASSERT_TRUE(epoch.ok());
  }
  uint64_t final_epoch = service.epoch();
  for (size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i].WaitEpoch(final_epoch, 60'000'000))
        << cases[i].name;
  }

  // One-shot ground truth per case, on the same final store.
  for (size_t i = 0; i < cases.size(); ++i) {
    SCOPED_TRACE(cases[i].name);
    auto one_shot = service.Run(cases[i].request);
    ASSERT_TRUE(one_shot.ok()) << one_shot.status().ToString();
    std::set<std::string> expected;
    if (cases[i].request.dialect == QueryDialect::kTbql) {
      for (const std::vector<std::string>& row :
           one_shot.value().report.results.rows) {
        std::vector<sql::Value> vrow;
        for (const std::string& cell : row) vrow.emplace_back(cell);
        expected.insert(RowKey(vrow));
      }
    } else {
      auto cursor = one_shot.value().cursor();
      while (const std::vector<sql::Value>* row = cursor.Next()) {
        expected.insert(RowKey(*row));
      }
    }
    std::lock_guard<std::mutex> lock(collectors[i].mu);
    EXPECT_TRUE(collectors[i].errors.empty())
        << collectors[i].errors.front().ToString();
    // No row may be delivered twice...
    EXPECT_EQ(collectors[i].rows.size(),
              std::set<std::string>(collectors[i].rows.begin(),
                                    collectors[i].rows.end())
                  .size());
    // ... and the union of deltas is exactly the one-shot distinct rows.
    EXPECT_EQ(std::set<std::string>(collectors[i].rows.begin(),
                                    collectors[i].rows.end()),
              expected);
    EXPECT_GT(collectors[i].updates, 2u);
    EXPECT_GT(collectors[i].alerts, 0u);
  }
  // The dirty-seeded path genuinely ran for the incremental subscription.
  EXPECT_GT(service.stats().standing_incremental, 0u);
  EXPECT_GT(service.stats().standing_refreshes,
            service.stats().standing_incremental);
}

TEST(StandingHuntTest, DeltasMatchOneShotSerial) { RunStandingDifferential(1); }

TEST(StandingHuntTest, DeltasMatchOneShotSharded) {
  RunStandingDifferential(4);
}

TEST(StandingHuntTest, AlertsFireOnlyOnNewMatchingActivity) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  HuntService service(&store);

  HuntRequest req;
  req.dialect = QueryDialect::kCypher;
  req.text =
      "MATCH (p:proc)-[e:read]->(f:file) WHERE p.exename CONTAINS 'exfil' "
      "RETURN p.exename, f.name";
  DeltaCollector collector;
  service::StandingHandle handle =
      service.SubmitStanding(req, collector.MakeSink());

  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  audit::BenignWorkloadSimulator benign;
  audit::BenignProfile profile;
  profile.num_users = 2;
  profile.num_processes = 10;
  profile.mean_records_per_process = 8;
  ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                         benign.Generate(profile))
                  .ok());
  ASSERT_TRUE(handle.WaitEpoch(service.epoch(), 30'000'000));
  {
    std::lock_guard<std::mutex> lock(collector.mu);
    EXPECT_EQ(collector.alerts, 0u) << "benign batch must not alert";
  }

  std::vector<audit::AttackStep> steps = {
      FileReadStep("/attack/exfil", 42, "/secret/payroll", 3, 0)};
  ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                         audit::CompileAttackScript(steps, 50'000'000, 3))
                  .ok());
  ASSERT_TRUE(handle.WaitEpoch(service.epoch(), 30'000'000));
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_EQ(collector.alerts, 1u);
  ASSERT_EQ(collector.rows.size(), 1u);
  EXPECT_NE(collector.rows.begin()->find("/secret/payroll"),
            std::string::npos);
}

TEST(StandingHuntTest, CancelStopsFutureRefreshes) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  HuntService service(&store);
  HuntRequest req;
  req.dialect = QueryDialect::kCypher;
  req.text = "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name";
  DeltaCollector collector;
  service::StandingHandle handle =
      service.SubmitStanding(req, collector.MakeSink());
  EXPECT_EQ(service.standing_count(), 1u);
  ASSERT_TRUE(handle.WaitEpoch(service.epoch(), 30'000'000));
  handle.Cancel();

  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  std::vector<audit::AttackStep> steps = {
      FileReadStep("/x/reader", 7, "/data/f", 1, 0)};
  ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                         audit::CompileAttackScript(steps, 1'000, 3))
                  .ok());
  EXPECT_EQ(service.standing_count(), 0u);  // pruned at the epoch bump
  // WaitEpoch on a cancelled subscription returns instead of hanging.
  EXPECT_FALSE(handle.WaitEpoch(service.epoch(), 1'000'000));
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_EQ(collector.rows.size(), 0u);
}

TEST(StandingHuntTest, FailingRefreshReportsErrorAndReleasesWaiters) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  HuntService service(&store);
  HuntRequest bad;
  bad.dialect = QueryDialect::kCypher;
  bad.text = "MATCH (p:proc RETURN";  // parse error on every refresh
  DeltaCollector collector;
  service::StandingHandle handle =
      service.SubmitStanding(bad, collector.MakeSink());

  audit::AuditLogParser parser;
  audit::ParsedLog accum;
  std::vector<audit::AttackStep> steps = {
      FileReadStep("/x/reader", 7, "/data/f", 1, 0)};
  ASSERT_TRUE(ApplyBatch(&store, &service, &parser, &accum,
                         audit::CompileAttackScript(steps, 1'000, 3))
                  .ok());
  // A failed attempt must still advance the processed epoch — otherwise
  // waiters hang forever once no further epochs arrive.
  EXPECT_TRUE(handle.WaitEpoch(service.epoch(), 30'000'000));
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_GE(collector.errors.size(), 1u);
  EXPECT_EQ(collector.errors.front().code(), StatusCode::kParseError);
  EXPECT_EQ(collector.rows.size(), 0u);
}

TEST(StandingHuntTest, ServiceDestructionReleasesWaiters) {
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(audit::ParsedLog{}).ok());
  service::StandingHandle handle;
  {
    HuntService service(&store);
    HuntRequest req;
    req.dialect = QueryDialect::kCypher;
    req.text = "MATCH (p:proc) RETURN p.exename";
    handle = service.SubmitStanding(req, StandingSink{});
    ASSERT_TRUE(handle.valid());
  }
  // The epoch can never arrive; destruction must have released us.
  EXPECT_FALSE(handle.WaitEpoch(1'000'000, 5'000'000));
}

// Ingest worker + concurrent standing hunts + concurrent one-shot hunts:
// the TSan workload. Correctness asserts are light; the value is the
// interleaving under RAPTOR_POOL_THREADS=4.
TEST(StandingHuntTest, ConcurrentIngestStandingAndOneShotHunts) {
  ThreatRaptorOptions options;
  options.store.carry_over_window = true;
  ThreatRaptor tr(options);
  ASSERT_TRUE(tr.IngestSyscalls({}).ok());  // bootstrap store + service
  HuntService* service = tr.hunt_service();
  ASSERT_NE(service, nullptr);

  HuntRequest standing;
  standing.dialect = QueryDialect::kCypher;
  standing.text = "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name";
  DeltaCollector c1, c2;
  StandingOptions incremental;
  incremental.max_dirty_fraction = 1.0;
  auto h1 = service->SubmitStanding(standing, c1.MakeSink(), incremental);
  StandingOptions full;
  full.allow_incremental = false;
  auto h2 = service->SubmitStanding(standing, c2.MakeSink(), full);

  stream::SimulatorSource source(SmallSimulatedStream());
  stream::IngestorOptions iopts;
  iopts.finish = [&] { return tr.FlushIngest(); };
  stream::StreamIngestor ingestor(
      &source,
      [&](const std::vector<audit::SyscallRecord>& records) {
        return tr.IngestSyscalls(records);
      },
      iopts);
  ingestor.Start();

  // One-shot hunts race the whole stream.
  size_t hunts_ok = 0;
  for (int i = 0; i < 8; ++i) {
    HuntRequest req;
    req.text = "proc p read file f return p, f";
    auto r = service->Run(std::move(req));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ++hunts_ok;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(ingestor.WaitEnd(60'000'000));
  ASSERT_TRUE(ingestor.stats().error.ok())
      << ingestor.stats().error.ToString();
  uint64_t final_epoch = service->epoch();
  ASSERT_TRUE(h1.WaitEpoch(final_epoch, 60'000'000));
  ASSERT_TRUE(h2.WaitEpoch(final_epoch, 60'000'000));
  EXPECT_EQ(hunts_ok, 8u);

  // Both refresh strategies converged on the same accumulated rows.
  std::lock_guard<std::mutex> l1(c1.mu);
  std::lock_guard<std::mutex> l2(c2.mu);
  EXPECT_TRUE(c1.errors.empty());
  EXPECT_TRUE(c2.errors.empty());
  EXPECT_EQ(std::set<std::string>(c1.rows.begin(), c1.rows.end()),
            std::set<std::string>(c2.rows.begin(), c2.rows.end()));
}

}  // namespace
}  // namespace raptor
