#include <gtest/gtest.h>

#include <set>

#include "audit/parser.h"
#include "cases/cases.h"
#include "nlp/ioc.h"

namespace raptor::cases {
namespace {

TEST(CasesTest, EighteenCasesInTableOrder) {
  const auto& all = AllCases();
  ASSERT_EQ(all.size(), 18u);
  EXPECT_EQ(all.front().id, "tc_clearscope_1");
  EXPECT_EQ(all.back().id, "vpnfilter");
  std::set<std::string> ids;
  for (const AttackCase& c : all) {
    EXPECT_TRUE(ids.insert(c.id).second) << "duplicate id " << c.id;
  }
}

TEST(CasesTest, FindCase) {
  EXPECT_NE(FindCase("data_leak"), nullptr);
  EXPECT_EQ(FindCase("nope"), nullptr);
}

TEST(ScoreStringsTest, CountsMatchesOnce) {
  PrScore s = ScoreStrings({"a", "b", "b", "x"}, {"a", "b", "c"});
  EXPECT_EQ(s.tp, 2u);  // a, first b
  EXPECT_EQ(s.fp, 2u);  // second b, x
  EXPECT_EQ(s.fn, 1u);  // c
  EXPECT_DOUBLE_EQ(s.precision(), 0.5);
  EXPECT_NEAR(s.recall(), 2.0 / 3.0, 1e-12);
}

TEST(ScoreRelationsTest, ExactTripleMatch) {
  std::vector<GtRelation> extracted = {{"a", "read", "b"}, {"a", "write", "b"}};
  std::vector<GtRelation> gt = {{"a", "read", "b"}, {"c", "read", "d"}};
  PrScore s = ScoreRelations(extracted, gt);
  EXPECT_EQ(s.tp, 1u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.fn, 1u);
}

TEST(ScoreEventsTest, AgainstGroundTruthSet) {
  PrScore s = ScoreEvents({1, 2, 9}, {1, 2, 3, 4});
  EXPECT_EQ(s.tp, 2u);
  EXPECT_EQ(s.fp, 1u);
  EXPECT_EQ(s.fn, 2u);
}

TEST(PrScoreTest, EdgeCases) {
  PrScore empty;
  EXPECT_EQ(empty.precision(), 0.0);
  EXPECT_EQ(empty.recall(), 0.0);
  EXPECT_EQ(empty.f1(), 0.0);
}

// Per-case structural invariants, parameterized over all 18 cases.
class CaseInvariantTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CaseInvariantTest, WellFormed) {
  const AttackCase& c = AllCases()[GetParam()];
  SCOPED_TRACE(c.id);
  EXPECT_FALSE(c.name.empty());
  EXPECT_FALSE(c.oscti_text.empty());
  EXPECT_FALSE(c.gt_iocs.empty());
  EXPECT_FALSE(c.attack_steps.empty());

  // Every ground-truth IOC string must literally occur in the OSCTI text
  // and be recognized by the IOC recognizer.
  std::vector<nlp::IocMatch> matches = nlp::RecognizeIocs(c.oscti_text);
  for (const std::string& ioc : c.gt_iocs) {
    EXPECT_NE(c.oscti_text.find(ioc), std::string::npos) << ioc;
    bool recognized = false;
    for (const nlp::IocMatch& m : matches) {
      if (m.text == ioc) recognized = true;
    }
    EXPECT_TRUE(recognized) << ioc;
  }
  // Relation endpoints must be ground-truth IOCs.
  for (const GtRelation& r : c.gt_relations) {
    auto in_iocs = [&](const std::string& s) {
      for (const std::string& ioc : c.gt_iocs) {
        if (ioc == s) return true;
      }
      return false;
    };
    EXPECT_TRUE(in_iocs(r.src)) << r.src;
    EXPECT_TRUE(in_iocs(r.dst)) << r.dst;
  }
}

TEST_P(CaseInvariantTest, LogBuildsAndGroundTruthEventsExist) {
  const AttackCase& c = AllCases()[GetParam()];
  SCOPED_TRACE(c.id);
  std::vector<audit::SyscallRecord> log = BuildCaseLog(c);
  EXPECT_GT(log.size(), 1000u);  // benign noise dominates

  audit::ParsedLog parsed;
  audit::AuditLogParser parser;
  ASSERT_TRUE(parser.Parse(log, &parsed).ok());
  storage::AuditStore store;
  ASSERT_TRUE(store.Load(parsed).ok());

  std::set<long long> gt = GroundTruthEventIds(c, store);
  EXPECT_FALSE(gt.empty());
  // Malicious events are a needle in the haystack.
  EXPECT_LT(gt.size(), store.event_count() / 2);
  // Ground-truth ids reference stored events.
  for (long long id : gt) {
    ASSERT_GE(id, 1);
    ASSERT_LE(id, static_cast<long long>(store.event_count()));
  }
}

TEST_P(CaseInvariantTest, DeterministicLogs) {
  const AttackCase& c = AllCases()[GetParam()];
  auto a = BuildCaseLog(c);
  auto b = BuildCaseLog(c);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); i += 97) {
    EXPECT_EQ(a[i].ts, b[i].ts);
    EXPECT_EQ(a[i].exe, b[i].exe);
    EXPECT_EQ(a[i].syscall, b[i].syscall);
  }
}

INSTANTIATE_TEST_SUITE_P(All18, CaseInvariantTest,
                         ::testing::Range<size_t>(0, 18));

}  // namespace
}  // namespace raptor::cases
