// Differential testing of the streaming query pipelines: every MatchOptions
// / SelectOptions toggle combination — including columnar vs legacy-row
// scans, and crossed with the three execution schedules (serial, static
// per-shard fan-out, morsel work-stealing with tiny morsels; the fan-out
// thresholds are zeroed so even these tiny fixtures exercise the parallel
// drivers) — must agree with the reference configuration on a catalog of
// Cypher and SQL queries over randomized small graphs/tables built from
// the shared synthetic-graph fixture.
//
// Queries without LIMIT must return identical (order-normalized) result
// multisets. Queries with LIMIT may legitimately return different subsets
// across configurations (toggles change seed and expansion order, and
// parallel workers race for the row budget), so they are checked
// structurally instead: the row count must be min(limit,
// full_result_count) and every returned row must come from the full
// (un-limited) reference result; DISTINCT additionally requires the
// returned rows to be unique.
//
// The graphs also carry planted attack subgraphs (a lateral-movement chain
// and an exfil fan-in, tests/fixtures/synthetic_graph.h) whose exact
// expected rows are asserted against the reference results — catching a
// matcher that returns plausible counts but wrong entities.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "storage/graphdb/cypher_executor.h"
#include "storage/relational/database.h"
#include "tests/fixtures/synthetic_graph.h"

namespace raptor {
namespace {

/// Row rendering shared by both backends, preserving emission order (for
/// ordered-query comparisons).
std::vector<std::string> RenderRowsOrdered(
    const std::vector<std::vector<sql::Value>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const sql::Value& v : row) cells.push_back(v.ToString());
    out.push_back(Join(cells, "\x1f"));
  }
  return out;
}

/// Order-normalized rendering for multiset comparisons.
std::vector<std::string> RenderRows(
    const std::vector<std::vector<sql::Value>>& rows) {
  std::vector<std::string> out = RenderRowsOrdered(rows);
  std::sort(out.begin(), out.end());
  return out;
}

/// Multiset containment: every row of `subset` occurs in `full` at least as
/// many times. Both inputs are sorted.
bool IsMultiSubset(const std::vector<std::string>& subset,
                   const std::vector<std::string>& full) {
  std::map<std::string, int> counts;
  for (const std::string& r : full) ++counts[r];
  for (const std::string& r : subset) {
    if (--counts[r] < 0) return false;
  }
  return true;
}

bool AllUnique(const std::vector<std::string>& sorted_rows) {
  return std::adjacent_find(sorted_rows.begin(), sorted_rows.end()) ==
         sorted_rows.end();
}

struct CatalogQuery {
  const char* text;      // base query, no LIMIT clause
  bool distinct;         // query declares DISTINCT
  bool ordered = false;  // results are deterministically ordered (SQL only)
};

// 16 crosses the parallel_min_limit default (8): the shared atomic row
// budget actually gates emission there, unlike 1000 which rarely binds.
const long long kLimits[] = {-1, 0, 3, 16, 1000};  // -1 = no LIMIT clause

std::string WithLimit(const CatalogQuery& q, long long limit) {
  if (limit < 0) return q.text;
  return std::string(q.text) + " LIMIT " + std::to_string(limit);
}

/// Expected rows of a plant-targeted query, rendered like RenderRows.
std::vector<std::string> ExpectedRows(
    std::vector<std::vector<std::string>> rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(Join(row, "\x1f"));
  std::sort(out.begin(), out.end());
  return out;
}

// --------------------------------------------------------------- Cypher

class CypherDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CypherDifferentialTest, AllToggleCombosAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed);

  fixtures::SyntheticGraphSpec spec;
  spec.nodes = 16 + 8 * static_cast<long long>(seed % 3);
  spec.edges = spec.nodes * 3;
  spec.edge_types = 4;
  graphdb::GraphDatabase db;
  fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  fixtures::AttackPlantSpec plant_spec;
  fixtures::AttackPlants plants =
      fixtures::PlantAttackSubgraphs(db.graph(), spec, plant_spec);
  ASSERT_EQ(plants.lateral_procs.size(), 5u);
  ASSERT_EQ(plants.exfil_docs.size(), 6u);
  // Randomize index availability so both probe and scan seeding run.
  if (seed % 2 == 0) db.graph().CreateNodeIndex("proc", "exename");
  if (seed % 3 != 1) db.graph().CreateNodeIndex("file", "name");

  const CatalogQuery catalog[] = {
      {"MATCH (p:proc)-[e:op1]->(f:file) RETURN p.exename, f.name", false},
      {"MATCH (p:proc {exename: '/bin/p1'})-[e]->(f:file) RETURN f.name",
       false},
      {"MATCH (f:file) WHERE f.name IN ['/data/f0', '/data/f3', '/data/f7', "
       "'/data/none'] RETURN f.name",
       false},
      {"MATCH (p:proc)-[e:op2]->(f:file) RETURN DISTINCT p.exename", true},
      {"MATCH (p:proc)-[e]->(f:file) WHERE f.name CONTAINS '1' "
       "RETURN p.exename, f.name",
       false},
      {"MATCH (p:proc)-[*1..3]->(f:file) RETURN DISTINCT f.name", true},
      {"MATCH (p:proc)-[e1:op0]->(f:file), (p)-[e2:op1]->(g:file) "
       "RETURN p.exename, g.name",
       false},
      {"MATCH (p:proc) WHERE p.exename IN ['/bin/p0', '/bin/p2', '/bin/p4'] "
       "RETURN DISTINCT p.exename",
       true},
      // Plant-targeted queries: expected rows asserted exactly below.
      {"MATCH (a:proc)-[e:lm_hop]->(b:proc) RETURN a.exename, b.exename",
       false},
      {"MATCH (a:proc {exename: '/attack/lm0'})-[e:lm_hop*1..4]->(b:proc) "
       "RETURN b.exename",
       false},
      {"MATCH (p:proc)-[r:exfil_read]->(d:file), "
       "(p)-[w:exfil_write]->(a:file) RETURN p.exename, d.name, a.name",
       false},
  };

  // Known-plant expectations: the reference result of each plant-targeted
  // query is fully determined by the planted subgraphs, independent of the
  // random background graph.
  std::vector<std::vector<std::string>> lm_edges, lm_reach, exfil_rows;
  for (int i = 0; i < plant_spec.lateral_hops; ++i) {
    lm_edges.push_back({"/attack/lm" + std::to_string(i),
                        "/attack/lm" + std::to_string(i + 1)});
  }
  for (int i = 1; i <= plant_spec.lateral_hops; ++i) {
    lm_reach.push_back({"/attack/lm" + std::to_string(i)});
  }
  for (int i = 0; i < plant_spec.exfil_docs; ++i) {
    exfil_rows.push_back({"/attack/exfil", "/secret/doc" + std::to_string(i),
                          "/attack/upload.tgz"});
  }
  std::map<std::string, std::vector<std::string>> planted = {
      {catalog[8].text, ExpectedRows(lm_edges)},
      {catalog[9].text, ExpectedRows(lm_reach)},
      {catalog[10].text, ExpectedRows(exfil_rows)},
  };

  for (const CatalogQuery& q : catalog) {
    // Reference: default (all-optimized) configuration, no LIMIT, serial.
    db.options() = graphdb::MatchOptions{};
    db.options().parallel_shards = 1;
    auto full_rs = db.Query(q.text);
    ASSERT_TRUE(full_rs.ok()) << q.text << ": " << full_rs.status().ToString();
    std::vector<std::string> full = RenderRows(full_rs.value().rows);
    auto plant_it = planted.find(q.text);
    if (plant_it != planted.end()) {
      EXPECT_EQ(full, plant_it->second) << q.text;
    }

    for (long long limit : kLimits) {
      std::string text = WithLimit(q, limit);
      for (int combo = 0; combo < 128; ++combo) {
        // Schedule dimension: 0 = serial, 1 = static per-shard fan-out,
        // 2 = morsel work-stealing (tiny morsels so even these graphs
        // split into several stealable chunks).
        for (int sched = 0; sched < 3; ++sched) {
          graphdb::MatchOptions opts;
          opts.typed_adjacency = combo & 1;
          opts.hashed_in_lists = combo & 2;
          opts.push_limit = combo & 4;
          opts.streaming_distinct = combo & 8;
          opts.binding_frames = combo & 16;
          opts.selective_seeds = combo & 32;
          opts.columnar_scan = combo & 64;
          opts.parallel_shards = sched == 0 ? 1 : 4;
          opts.morsel_scheduling = sched == 2;
          opts.morsel_size = 3;
          opts.parallel_min_seeds = 0;  // fan out even on these tiny graphs
          db.options() = opts;

          auto rs = db.Query(text);
          ASSERT_TRUE(rs.ok()) << text << ": " << rs.status().ToString();
          std::vector<std::string> got = RenderRows(rs.value().rows);
          if (limit < 0) {
            EXPECT_EQ(got, full)
                << text << " combo=" << combo << " sched=" << sched;
            continue;
          }
          size_t expect_n =
              std::min<size_t>(static_cast<size_t>(limit), full.size());
          EXPECT_EQ(got.size(), expect_n)
              << text << " combo=" << combo << " sched=" << sched;
          EXPECT_TRUE(IsMultiSubset(got, full))
              << text << " combo=" << combo << " sched=" << sched;
          if (q.distinct) {
            EXPECT_TRUE(AllUnique(got))
                << text << " combo=" << combo << " sched=" << sched;
          }
        }
      }
    }
  }
  db.options() = graphdb::MatchOptions{};
}

INSTANTIATE_TEST_SUITE_P(Seeds, CypherDifferentialTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

// ------------------------------------------------------------------ SQL

class SqlDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SqlDifferentialTest, AllToggleCombosAgree) {
  uint64_t seed = GetParam();
  Rng rng(seed * 977 + 13);

  sql::Database db;
  ASSERT_TRUE(db.CreateTable("t", sql::Schema({{"id", sql::ColumnType::kInt64},
                                               {"name", sql::ColumnType::kText},
                                               {"score",
                                                sql::ColumnType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable("u", sql::Schema({{"id", sql::ColumnType::kInt64},
                                               {"tid", sql::ColumnType::kInt64},
                                               {"tag", sql::ColumnType::kText}}))
                  .ok());
  static const char* kNames[] = {"/bin/tar", "/bin/cat", "/tmp/x.sh",
                                 "/etc/passwd"};
  static const char* kTags[] = {"x", "y", "z"};
  const int t_rows = 30 + static_cast<int>(seed % 3) * 10;
  for (int i = 0; i < t_rows; ++i) {
    ASSERT_TRUE(db.Insert("t", {sql::Value(static_cast<int64_t>(i)),
                                sql::Value(kNames[rng.Uniform(4)]),
                                sql::Value(static_cast<int64_t>(
                                    rng.Uniform(100)))})
                    .ok());
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(db.Insert("u", {sql::Value(static_cast<int64_t>(i)),
                                sql::Value(static_cast<int64_t>(
                                    rng.Uniform(t_rows))),
                                sql::Value(kTags[rng.Uniform(3)])})
                    .ok());
  }
  if (seed % 2 == 0) {
    ASSERT_TRUE(db.CreateIndex("t", "name").ok());
  }
  if (seed % 3 != 1) {
    ASSERT_TRUE(db.CreateIndex("u", "tid").ok());
  }

  const CatalogQuery catalog[] = {
      {"SELECT id FROM t WHERE score > 40", false},
      {"SELECT DISTINCT name FROM t", true},
      {"SELECT id FROM t WHERE name IN ('/bin/tar', '/tmp/x.sh', '/none')",
       false},
      {"SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid", false},
      {"SELECT t.id, u.tag FROM t, u WHERE t.id = u.tid AND u.tag = 'x' "
       "AND t.score > 20",
       false},
      {"SELECT DISTINCT u.tag FROM t, u WHERE t.id = u.tid", true},
      {"SELECT id FROM t ORDER BY id DESC", false, /*ordered=*/true},
      {"SELECT name, score FROM t WHERE score > 10 AND name LIKE '/bin/%'",
       false},
  };

  for (const CatalogQuery& q : catalog) {
    // Reference: default configuration, no LIMIT, serial.
    db.options() = sql::SelectOptions{};
    db.options().parallel_shards = 1;
    auto full_rs = db.Query(q.text);
    ASSERT_TRUE(full_rs.ok()) << q.text << ": " << full_rs.status().ToString();
    // Ordered queries compare positionally (no sort normalization).
    std::vector<std::string> full_ordered =
        RenderRowsOrdered(full_rs.value().rows);
    std::vector<std::string> full = full_ordered;
    std::sort(full.begin(), full.end());

    for (long long limit : kLimits) {
      std::string text = WithLimit(q, limit);
      for (int combo = 0; combo < 8; ++combo) {
        // Schedule dimension: 0 = serial, 1 = static per-shard fan-out,
        // 2 = morsel work-stealing (tiny morsels so even these tables
        // split into several stealable chunks).
        for (int sched = 0; sched < 3; ++sched) {
          sql::SelectOptions opts;
          opts.push_limit = combo & 1;
          opts.streaming_distinct = combo & 2;
          opts.columnar_scan = combo & 4;
          opts.parallel_shards = sched == 0 ? 1 : 4;
          opts.morsel_scheduling = sched == 2;
          opts.morsel_size = 3;
          opts.parallel_min_rows = 0;  // fan out even on these tiny tables
          db.options() = opts;

          auto rs = db.Query(text);
          ASSERT_TRUE(rs.ok()) << text << ": " << rs.status().ToString();
          if (q.ordered) {
            // Deterministic order: the LIMIT prefix must match exactly.
            std::vector<std::string> got = RenderRowsOrdered(rs.value().rows);
            std::vector<std::string> expect = full_ordered;
            if (limit >= 0 && expect.size() > static_cast<size_t>(limit)) {
              expect.resize(static_cast<size_t>(limit));
            }
            EXPECT_EQ(got, expect)
                << text << " combo=" << combo << " sched=" << sched;
            continue;
          }
          std::vector<std::string> got = RenderRows(rs.value().rows);
          if (limit < 0) {
            EXPECT_EQ(got, full)
                << text << " combo=" << combo << " sched=" << sched;
            continue;
          }
          size_t expect_n =
              std::min<size_t>(static_cast<size_t>(limit), full.size());
          EXPECT_EQ(got.size(), expect_n)
              << text << " combo=" << combo << " sched=" << sched;
          EXPECT_TRUE(IsMultiSubset(got, full))
              << text << " combo=" << combo << " sched=" << sched;
          if (q.distinct) {
            EXPECT_TRUE(AllUnique(got))
                << text << " combo=" << combo << " sched=" << sched;
          }
        }
      }
    }
  }
  db.options() = sql::SelectOptions{};
}

INSTANTIATE_TEST_SUITE_P(Seeds, SqlDifferentialTest,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace raptor
