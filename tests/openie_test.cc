#include <gtest/gtest.h>

#include "openie/openie.h"

namespace raptor::openie {
namespace {

const char* kText =
    "The attacker used /bin/tar to read user credentials from /etc/passwd. "
    "It wrote the gathered information to a file /tmp/upload.tar.";

TEST(ClauseOpenIeTest, ExtractsGenericTriples) {
  OpenIeResult r = ClauseOpenIe().Extract(kText);
  EXPECT_FALSE(r.triples.empty());
  // Generic OIE extracts open-domain arguments like "the attacker", not
  // IOC-shaped strings (unprotected paths get shredded by tokenization).
  bool has_generic = false;
  for (const std::string& arg : r.arguments) {
    if (arg.find("attacker") != std::string::npos) has_generic = true;
  }
  EXPECT_TRUE(has_generic);
}

TEST(ClauseOpenIeTest, ProtectionRestoresIocsIntoArguments) {
  OpenIeOptions opts;
  opts.ioc_protection = true;
  OpenIeResult r = ClauseOpenIe(opts).Extract(kText);
  bool has_ioc = false;
  for (const std::string& arg : r.arguments) {
    if (arg.find("/etc/passwd") != std::string::npos) has_ioc = true;
  }
  EXPECT_TRUE(has_ioc);
}

TEST(PatternOpenIeTest, EnumeratesMoreCandidatesThanClause) {
  OpenIeResult clause = ClauseOpenIe().Extract(kText);
  OpenIeResult pattern = PatternOpenIe().Extract(kText);
  EXPECT_GE(pattern.triples.size(), clause.triples.size());
}

TEST(OpenIeTest, TriplesAreDeduplicated) {
  OpenIeResult r = PatternOpenIe().Extract(kText);
  std::set<std::string> keys;
  for (const OpenTriple& t : r.triples) {
    std::string key = t.arg1 + "|" + t.relation + "|" + t.arg2;
    EXPECT_TRUE(keys.insert(key).second) << "duplicate triple: " << key;
  }
}

TEST(OpenIeTest, EmptyInput) {
  EXPECT_TRUE(ClauseOpenIe().Extract("").triples.empty());
  EXPECT_TRUE(PatternOpenIe().Extract("").triples.empty());
}

}  // namespace
}  // namespace raptor::openie
