// End-to-end integration tests over the public ThreatRaptor facade,
// asserting the headline evaluation results on representative cases
// (the full 18-case sweep lives in the bench harnesses).
#include <gtest/gtest.h>

#include "cases/cases.h"
#include "threatraptor.h"

namespace raptor {
namespace {

struct ExpectedOutcome {
  const char* case_id;
  size_t found;  // TP (precision is always 1425/1425 = 100% in Table VI)
  size_t ground_truth;
};

class EndToEndTest : public ::testing::TestWithParam<ExpectedOutcome> {};

TEST_P(EndToEndTest, MatchesTableVi) {
  const ExpectedOutcome& expected = GetParam();
  const cases::AttackCase* c = cases::FindCase(expected.case_id);
  ASSERT_NE(c, nullptr);
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto gt = cases::GroundTruthEventIds(*c, *tr.store());
  cases::PrScore score =
      cases::ScoreEvents(outcome.value().report.matched_event_ids, gt);
  EXPECT_EQ(score.fp, 0u) << "precision must be 100%";
  EXPECT_EQ(score.tp, expected.found);
  EXPECT_EQ(gt.size(), expected.ground_truth);
}

INSTANTIATE_TEST_SUITE_P(
    TableVi, EndToEndTest,
    ::testing::Values(
        ExpectedOutcome{"tc_clearscope_1", 6, 6},
        ExpectedOutcome{"tc_fivedirections_3", 0, 3},  // IOC deviation
        ExpectedOutcome{"tc_theia_2", 115, 115},
        ExpectedOutcome{"tc_trace_1", 39, 76},  // run-relation ambiguity
        ExpectedOutcome{"tc_trace_3", 0, 2},    // IOC deviation
        ExpectedOutcome{"password_crack", 10, 12},
        ExpectedOutcome{"data_leak", 6, 8},
        ExpectedOutcome{"vpnfilter", 178, 178}));

TEST(FacadeTest, RequiresIngestionBeforeHunting) {
  ThreatRaptor tr;
  EXPECT_FALSE(tr.Hunt("proc p read file f return p").ok());
  EXPECT_FALSE(tr.HuntWithOsctiText("some text").ok());
}

TEST(FacadeTest, IncrementalIngestionAppends) {
  // Long-running service sessions ingest in batches: a second batch must
  // append (interning entities already seen) instead of hard-erroring.
  const cases::AttackCase* c = cases::FindCase("tc_clearscope_3");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  size_t entities_1 = tr.store()->entity_count();
  size_t events_1 = tr.store()->event_count();
  ASSERT_GT(events_1, 0u);

  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  // Identical records re-intern to the same entities; the events append.
  EXPECT_EQ(tr.store()->entity_count(), entities_1);
  EXPECT_EQ(tr.store()->event_count(), 2 * events_1);
  // Event ids must stay dense 1-based positions after the append.
  for (size_t i = 0; i < tr.store()->event_count(); ++i) {
    EXPECT_EQ(tr.store()->events()[i].id, i + 1);
  }
  // Queries keep working over the merged store.
  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
}

TEST(FacadeTest, IngestParsedLogRemapsBatchLocalIds) {
  // Two independently parsed logs have overlapping batch-local entity ids;
  // IngestParsedLog must remap the second batch into the shared id space.
  const cases::AttackCase* a = cases::FindCase("tc_clearscope_3");
  const cases::AttackCase* b = cases::FindCase("data_leak");
  audit::ParsedLog log_a, log_b;
  audit::AuditLogParser parser_a, parser_b;
  ASSERT_TRUE(parser_a.Parse(cases::BuildCaseLog(*a), &log_a).ok());
  ASSERT_TRUE(parser_b.Parse(cases::BuildCaseLog(*b), &log_b).ok());

  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestParsedLog(log_a).ok());
  size_t entities_a = tr.store()->entity_count();
  ASSERT_TRUE(tr.IngestParsedLog(log_b).ok());
  EXPECT_GT(tr.store()->entity_count(), entities_a);
  // Every event's endpoints resolve inside the merged entity table.
  for (const audit::SystemEvent& ev : tr.store()->events()) {
    ASSERT_GE(ev.subject, 1u);
    ASSERT_LE(ev.subject, tr.store()->entity_count());
    ASSERT_GE(ev.object, 1u);
    ASSERT_LE(ev.object, tr.store()->entity_count());
  }
}

TEST(FacadeTest, MalformedParsedLogBatchRejectedAtomically) {
  const cases::AttackCase* c = cases::FindCase("tc_clearscope_3");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  size_t entities_before = tr.store()->entity_count();
  size_t events_before = tr.store()->event_count();

  audit::ParsedLog bad;
  audit::EntityId p = bad.entities.InternProcess("/bin/ghost", 1);
  audit::SystemEvent ev;
  ev.id = 1;
  ev.subject = p;
  ev.object = p + 999;  // no such entity in the batch
  ev.op = audit::EventOp::kRead;
  bad.events.push_back(ev);
  EXPECT_FALSE(tr.IngestParsedLog(bad).ok());
  // Nothing from the rejected batch may leak into the store — not even
  // its entities — and later ingestion must still work.
  EXPECT_EQ(tr.store()->entity_count(), entities_before);
  EXPECT_EQ(tr.store()->event_count(), events_before);
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  EXPECT_EQ(tr.store()->entity_count(), entities_before);
  EXPECT_EQ(tr.store()->event_count(), 2 * events_before);
}

TEST(FacadeTest, ExtractionWorksWithoutIngestion) {
  ThreatRaptor tr;
  auto r = tr.ExtractBehaviorGraph(
      "The malware /tmp/x.sh connected to 1.2.3.4.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().graph.edges().size(), 1u);
}

TEST(FacadeTest, FuzzyModeRecoversDeviatedCase) {
  // tc_fivedirections_3: exact finds 0; fuzzy aligns the renamed dropper.
  const cases::AttackCase* c = cases::FindCase("tc_fivedirections_3");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().report.matched_event_ids.empty());

  engine::FuzzyOptions opts;
  opts.node_similarity = 0.6;
  opts.score_threshold = 0.5;
  auto fuzzy = tr.HuntFuzzy(outcome.value().synthesis.tbql_text, opts);
  ASSERT_TRUE(fuzzy.ok()) << fuzzy.status().ToString();
  ASSERT_FALSE(fuzzy.value().alignments.empty());
  // The best alignment names the renamed dropper.
  bool found_renamed = false;
  for (const auto& [var, entity_id] : fuzzy.value().alignments[0].nodes) {
    const audit::SystemEntity& e = tr.store()->entities()[entity_id - 1];
    if (e.name.find("brnout.exe") != std::string::npos ||
        e.exename.find("brnout.exe") != std::string::npos) {
      found_renamed = true;
    }
  }
  EXPECT_TRUE(found_renamed);
}

TEST(FacadeTest, DataReductionApplied) {
  const cases::AttackCase* c = cases::FindCase("data_leak");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  const storage::ReductionStats& stats = tr.store()->reduction_stats();
  EXPECT_GT(stats.input_events, stats.output_events);
  EXPECT_LT(stats.reduction_ratio(), 0.9);
}

}  // namespace
}  // namespace raptor
