// End-to-end integration tests over the public ThreatRaptor facade,
// asserting the headline evaluation results on representative cases
// (the full 18-case sweep lives in the bench harnesses).
#include <gtest/gtest.h>

#include "cases/cases.h"
#include "threatraptor.h"

namespace raptor {
namespace {

struct ExpectedOutcome {
  const char* case_id;
  size_t found;  // TP (precision is always 1425/1425 = 100% in Table VI)
  size_t ground_truth;
};

class EndToEndTest : public ::testing::TestWithParam<ExpectedOutcome> {};

TEST_P(EndToEndTest, MatchesTableVi) {
  const ExpectedOutcome& expected = GetParam();
  const cases::AttackCase* c = cases::FindCase(expected.case_id);
  ASSERT_NE(c, nullptr);
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  auto gt = cases::GroundTruthEventIds(*c, *tr.store());
  cases::PrScore score =
      cases::ScoreEvents(outcome.value().report.matched_event_ids, gt);
  EXPECT_EQ(score.fp, 0u) << "precision must be 100%";
  EXPECT_EQ(score.tp, expected.found);
  EXPECT_EQ(gt.size(), expected.ground_truth);
}

INSTANTIATE_TEST_SUITE_P(
    TableVi, EndToEndTest,
    ::testing::Values(
        ExpectedOutcome{"tc_clearscope_1", 6, 6},
        ExpectedOutcome{"tc_fivedirections_3", 0, 3},  // IOC deviation
        ExpectedOutcome{"tc_theia_2", 115, 115},
        ExpectedOutcome{"tc_trace_1", 39, 76},  // run-relation ambiguity
        ExpectedOutcome{"tc_trace_3", 0, 2},    // IOC deviation
        ExpectedOutcome{"password_crack", 10, 12},
        ExpectedOutcome{"data_leak", 6, 8},
        ExpectedOutcome{"vpnfilter", 178, 178}));

TEST(FacadeTest, RequiresIngestionBeforeHunting) {
  ThreatRaptor tr;
  EXPECT_FALSE(tr.Hunt("proc p read file f return p").ok());
  EXPECT_FALSE(tr.HuntWithOsctiText("some text").ok());
}

TEST(FacadeTest, DoubleIngestionRejected) {
  const cases::AttackCase* c = cases::FindCase("tc_clearscope_3");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  EXPECT_FALSE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
}

TEST(FacadeTest, ExtractionWorksWithoutIngestion) {
  ThreatRaptor tr;
  auto r = tr.ExtractBehaviorGraph(
      "The malware /tmp/x.sh connected to 1.2.3.4.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().graph.edges().size(), 1u);
}

TEST(FacadeTest, FuzzyModeRecoversDeviatedCase) {
  // tc_fivedirections_3: exact finds 0; fuzzy aligns the renamed dropper.
  const cases::AttackCase* c = cases::FindCase("tc_fivedirections_3");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome.value().report.matched_event_ids.empty());

  engine::FuzzyOptions opts;
  opts.node_similarity = 0.6;
  opts.score_threshold = 0.5;
  auto fuzzy = tr.HuntFuzzy(outcome.value().synthesis.tbql_text, opts);
  ASSERT_TRUE(fuzzy.ok()) << fuzzy.status().ToString();
  ASSERT_FALSE(fuzzy.value().alignments.empty());
  // The best alignment names the renamed dropper.
  bool found_renamed = false;
  for (const auto& [var, entity_id] : fuzzy.value().alignments[0].nodes) {
    const audit::SystemEntity& e = tr.store()->entities()[entity_id - 1];
    if (e.name.find("brnout.exe") != std::string::npos ||
        e.exename.find("brnout.exe") != std::string::npos) {
      found_renamed = true;
    }
  }
  EXPECT_TRUE(found_renamed);
}

TEST(FacadeTest, DataReductionApplied) {
  const cases::AttackCase* c = cases::FindCase("data_leak");
  ThreatRaptor tr;
  ASSERT_TRUE(tr.IngestSyscalls(cases::BuildCaseLog(*c)).ok());
  const storage::ReductionStats& stats = tr.store()->reduction_stats();
  EXPECT_GT(stats.input_events, stats.output_events);
  EXPECT_LT(stats.reduction_ratio(), 0.9);
}

}  // namespace
}  // namespace raptor
