#include <gtest/gtest.h>

#include <limits>

#include "storage/relational/database.h"

namespace raptor::sql {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema entities({{"id", ColumnType::kInt64},
                     {"type", ColumnType::kText},
                     {"name", ColumnType::kText},
                     {"pid", ColumnType::kInt64}});
    ASSERT_TRUE(db_.CreateTable("entities", entities).ok());
    Schema events({{"id", ColumnType::kInt64},
                   {"subject", ColumnType::kInt64},
                   {"object", ColumnType::kInt64},
                   {"op", ColumnType::kText},
                   {"start_time", ColumnType::kInt64},
                   {"end_time", ColumnType::kInt64}});
    ASSERT_TRUE(db_.CreateTable("events", events).ok());

    Insert("entities", {Value(int64_t{1}), Value("proc"), Value("/bin/tar"),
                        Value(int64_t{100})});
    Insert("entities", {Value(int64_t{2}), Value("file"), Value("/etc/passwd"),
                        Value(int64_t{0})});
    Insert("entities", {Value(int64_t{3}), Value("file"),
                        Value("/tmp/upload.tar"), Value(int64_t{0})});
    Insert("entities", {Value(int64_t{4}), Value("proc"), Value("/bin/bzip2"),
                        Value(int64_t{101})});

    Insert("events", {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{2}),
                      Value("read"), Value(int64_t{10}), Value(int64_t{11})});
    Insert("events", {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{3}),
                      Value("write"), Value(int64_t{20}), Value(int64_t{21})});
    Insert("events", {Value(int64_t{3}), Value(int64_t{4}), Value(int64_t{3}),
                      Value("read"), Value(int64_t{30}), Value(int64_t{31})});
    ASSERT_TRUE(db_.CreateIndex("entities", "name").ok());
    ASSERT_TRUE(db_.CreateIndex("events", "subject").ok());
  }

  void Insert(const std::string& table, Row row) {
    ASSERT_TRUE(db_.Insert(table, std::move(row)).ok());
  }

  Database db_;
};

TEST_F(RelationalTest, SimpleSelect) {
  auto rs = db_.Query("SELECT name FROM entities WHERE type = 'proc'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, LikeFilter) {
  auto rs = db_.Query("SELECT id FROM entities WHERE name LIKE '%passwd%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 2);
}

TEST_F(RelationalTest, JoinWithOn) {
  auto rs = db_.Query(
      "SELECT s.name, o.name FROM events e "
      "JOIN entities s ON e.subject = s.id "
      "JOIN entities o ON e.object = o.id "
      "WHERE e.op = 'read' AND s.name LIKE '%tar%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/tar");
  EXPECT_EQ(rs.value().rows[0][1].AsText(), "/etc/passwd");
}

TEST_F(RelationalTest, ImplicitJoinWithTemporalConstraint) {
  // Two event aliases with a non-equi temporal predicate, the shape of the
  // paper's giant SQL baseline.
  auto rs = db_.Query(
      "SELECT e1.id, e2.id FROM events e1, events e2, entities f "
      "WHERE e1.object = f.id AND e2.object = f.id "
      "AND f.name = '/tmp/upload.tar' AND e1.end_time <= e2.start_time");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 1 + 1);  // event 2 before event 3
  EXPECT_EQ(rs.value().rows[0][1].AsInt(), 3);
}

TEST_F(RelationalTest, InList) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE name IN ('/bin/tar', '/bin/bzip2') "
      "ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.value().rows[1][0].AsInt(), 4);
}

TEST_F(RelationalTest, DistinctAndLimit) {
  auto rs = db_.Query("SELECT DISTINCT op FROM events ORDER BY op LIMIT 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "read");
}

TEST_F(RelationalTest, NotLike) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE type = 'file' AND name NOT LIKE '%tar%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 2);
}

TEST_F(RelationalTest, OrAndParens) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE (type = 'proc' AND pid = 100) "
      "OR name = '/etc/passwd' ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, ParseErrors) {
  EXPECT_FALSE(db_.Query("SELECT FROM entities").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM nosuch").ok());
  EXPECT_FALSE(db_.Query("SELECT nosuchcol FROM entities").ok());
  EXPECT_FALSE(db_.Query("SELECT 'unterminated FROM entities").ok());
}

TEST_F(RelationalTest, SelectStar) {
  auto rs = db_.Query("SELECT * FROM entities WHERE id = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0].size(), 4u);
}

TEST_F(RelationalTest, IndexProbeUsedForEquality) {
  ExecStats stats;
  auto rs = db_.Query("SELECT id FROM entities WHERE name = '/bin/tar'",
                      &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
  // The probe should touch only the matching row, not all four.
  EXPECT_EQ(stats.base_rows_scanned, 1u);
  EXPECT_EQ(stats.index_probe_rows, 1u);
}

TEST_F(RelationalTest, IndexProbeUsedForInList) {
  ExecStats stats;
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE name IN ('/bin/tar', '/bin/bzip2', "
      "'/no/such')",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
  // Only the two matching rows are touched — the IN probes the name index.
  EXPECT_EQ(stats.base_rows_scanned, 2u);
  EXPECT_EQ(stats.index_probe_rows, 2u);
}

TEST_F(RelationalTest, ValueHashConsistentWithCompare) {
  ValueHash hash;
  ValueEq eq;
  // int/double coercion: equal by Compare implies equal hashes.
  EXPECT_TRUE(eq(Value(int64_t{1}), Value(1.0)));
  EXPECT_EQ(hash(Value(int64_t{1})), hash(Value(1.0)));
  EXPECT_EQ(hash(Value::Null()), hash(Value::Null()));
  // Numeric and text never compare equal, even when rendered alike.
  EXPECT_FALSE(eq(Value(int64_t{1}), Value("1")));
  // NaN equals itself, sorts below every number, and hashes consistently
  // regardless of payload bits (equality must stay an equivalence relation
  // for the Value-keyed indexes).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(eq(Value(nan), Value(-nan)));
  EXPECT_EQ(hash(Value(nan)), hash(Value(-nan)));
  EXPECT_FALSE(eq(Value(nan), Value(1.0)));
  EXPECT_LT(Value(nan).Compare(Value(-1e300)), 0);
}

TEST_F(RelationalTest, IndexProbeDistinguishesIntFromText) {
  // The old string-keyed index conflated Value(1) and Value("1"); the
  // Value-keyed index must not return int-keyed rows for a text probe.
  const Table* t = db_.FindTable("events");
  ASSERT_NE(t, nullptr);
  int col = t->schema().FindColumn("subject");
  ASSERT_TRUE(t->HasIndex(col));
  EXPECT_EQ(t->Probe(col, Value(int64_t{1})).size(), 2u);
  EXPECT_TRUE(t->Probe(col, Value("1")).empty());
}

TEST_F(RelationalTest, LimitZeroReturnsNothing) {
  for (bool push : {true, false}) {
    db_.options().push_limit = push;
    ExecStats stats;
    auto rs = db_.Query("SELECT name FROM entities LIMIT 0", &stats);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(rs.value().rows.empty());
    // The pushed-down LIMIT 0 never starts the base scan at all.
    if (push) {
      EXPECT_EQ(stats.base_rows_scanned, 0u);
    }
  }
  db_.options().push_limit = true;
}

TEST_F(RelationalTest, LimitLargerThanResultSet) {
  auto rs = db_.Query("SELECT name FROM entities WHERE type = 'proc' LIMIT 50");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, DistinctLimitCountsPostDedupRows) {
  // Event subjects arrive as 1, 1, 4: a limit counted before dedup would
  // stop at the duplicate and emit a single distinct row. Both dedup
  // configurations must produce two — including legacy dedup + push_limit,
  // where the pushdown has to disable itself.
  for (bool streaming : {true, false}) {
    db_.options().streaming_distinct = streaming;
    auto rs = db_.Query("SELECT DISTINCT subject FROM events LIMIT 2");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs.value().rows.size(), 2u) << "streaming=" << streaming;
    EXPECT_NE(rs.value().rows[0][0].AsInt(), rs.value().rows[1][0].AsInt());
  }
  db_.options().streaming_distinct = true;
}

TEST_F(RelationalTest, LimitWithJoin) {
  const char* base =
      "SELECT s.name, o.name FROM events e "
      "JOIN entities s ON e.subject = s.id "
      "JOIN entities o ON e.object = o.id";
  auto full = db_.Query(base);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.value().rows.size(), 3u);
  auto limited = db_.Query(std::string(base) + " LIMIT 2");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), 2u);
  for (const auto& row : limited.value().rows) {
    bool found = false;
    for (const auto& frow : full.value().rows) {
      if (row == frow) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(RelationalTest, PushedLimitStopsBaseScan) {
  const char* q = "SELECT name FROM entities LIMIT 1";
  ExecStats pushed, legacy;
  auto fast = db_.Query(q, &pushed);
  db_.options().push_limit = false;
  auto slow = db_.Query(q, &legacy);
  db_.options().push_limit = true;
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().rows.size(), 1u);
  EXPECT_EQ(slow.value().rows.size(), 1u);
  // Streaming stops after the first emitted row; the legacy path scans all
  // four entity rows before truncating.
  EXPECT_EQ(pushed.base_rows_scanned, 1u);
  EXPECT_EQ(legacy.base_rows_scanned, 4u);
  EXPECT_EQ(pushed.rows_emitted, 1u);
}

TEST_F(RelationalTest, OrderByDisablesPushdownButStaysCorrect) {
  auto rs = db_.Query("SELECT name FROM entities ORDER BY name LIMIT 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/bzip2");
  EXPECT_EQ(rs.value().rows[1][0].AsText(), "/bin/tar");
}

TEST_F(RelationalTest, StatementRoundTrip) {
  const char* sql =
      "SELECT DISTINCT s.name FROM events e JOIN entities s ON e.subject = "
      "s.id WHERE e.op = 'read' ORDER BY s.name LIMIT 5";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Re-parse the printed form; it must execute identically.
  auto printed = stmt.value().ToString();
  auto rs1 = db_.Query(sql);
  auto rs2 = db_.Query(printed);
  ASSERT_TRUE(rs1.ok());
  ASSERT_TRUE(rs2.ok()) << printed << " -> " << rs2.status().ToString();
  EXPECT_EQ(rs1.value().rows.size(), rs2.value().rows.size());
}

}  // namespace
}  // namespace raptor::sql
