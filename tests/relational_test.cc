#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <string>
#include <vector>

#include "storage/relational/database.h"

namespace raptor::sql {
namespace {

class RelationalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Schema entities({{"id", ColumnType::kInt64},
                     {"type", ColumnType::kText},
                     {"name", ColumnType::kText},
                     {"pid", ColumnType::kInt64}});
    ASSERT_TRUE(db_.CreateTable("entities", entities).ok());
    Schema events({{"id", ColumnType::kInt64},
                   {"subject", ColumnType::kInt64},
                   {"object", ColumnType::kInt64},
                   {"op", ColumnType::kText},
                   {"start_time", ColumnType::kInt64},
                   {"end_time", ColumnType::kInt64}});
    ASSERT_TRUE(db_.CreateTable("events", events).ok());

    Insert("entities", {Value(int64_t{1}), Value("proc"), Value("/bin/tar"),
                        Value(int64_t{100})});
    Insert("entities", {Value(int64_t{2}), Value("file"), Value("/etc/passwd"),
                        Value(int64_t{0})});
    Insert("entities", {Value(int64_t{3}), Value("file"),
                        Value("/tmp/upload.tar"), Value(int64_t{0})});
    Insert("entities", {Value(int64_t{4}), Value("proc"), Value("/bin/bzip2"),
                        Value(int64_t{101})});

    Insert("events", {Value(int64_t{1}), Value(int64_t{1}), Value(int64_t{2}),
                      Value("read"), Value(int64_t{10}), Value(int64_t{11})});
    Insert("events", {Value(int64_t{2}), Value(int64_t{1}), Value(int64_t{3}),
                      Value("write"), Value(int64_t{20}), Value(int64_t{21})});
    Insert("events", {Value(int64_t{3}), Value(int64_t{4}), Value(int64_t{3}),
                      Value("read"), Value(int64_t{30}), Value(int64_t{31})});
    ASSERT_TRUE(db_.CreateIndex("entities", "name").ok());
    ASSERT_TRUE(db_.CreateIndex("events", "subject").ok());
  }

  void Insert(const std::string& table, Row row) {
    ASSERT_TRUE(db_.Insert(table, std::move(row)).ok());
  }

  Database db_;
};

TEST_F(RelationalTest, SimpleSelect) {
  auto rs = db_.Query("SELECT name FROM entities WHERE type = 'proc'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, LikeFilter) {
  auto rs = db_.Query("SELECT id FROM entities WHERE name LIKE '%passwd%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 2);
}

TEST_F(RelationalTest, JoinWithOn) {
  auto rs = db_.Query(
      "SELECT s.name, o.name FROM events e "
      "JOIN entities s ON e.subject = s.id "
      "JOIN entities o ON e.object = o.id "
      "WHERE e.op = 'read' AND s.name LIKE '%tar%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/tar");
  EXPECT_EQ(rs.value().rows[0][1].AsText(), "/etc/passwd");
}

TEST_F(RelationalTest, ImplicitJoinWithTemporalConstraint) {
  // Two event aliases with a non-equi temporal predicate, the shape of the
  // paper's giant SQL baseline.
  auto rs = db_.Query(
      "SELECT e1.id, e2.id FROM events e1, events e2, entities f "
      "WHERE e1.object = f.id AND e2.object = f.id "
      "AND f.name = '/tmp/upload.tar' AND e1.end_time <= e2.start_time");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 1 + 1);  // event 2 before event 3
  EXPECT_EQ(rs.value().rows[0][1].AsInt(), 3);
}

TEST_F(RelationalTest, InList) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE name IN ('/bin/tar', '/bin/bzip2') "
      "ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 1);
  EXPECT_EQ(rs.value().rows[1][0].AsInt(), 4);
}

TEST_F(RelationalTest, DistinctAndLimit) {
  auto rs = db_.Query("SELECT DISTINCT op FROM events ORDER BY op LIMIT 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "read");
}

TEST_F(RelationalTest, NotLike) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE type = 'file' AND name NOT LIKE '%tar%'");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0].AsInt(), 2);
}

TEST_F(RelationalTest, OrAndParens) {
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE (type = 'proc' AND pid = 100) "
      "OR name = '/etc/passwd' ORDER BY id");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, ParseErrors) {
  EXPECT_FALSE(db_.Query("SELECT FROM entities").ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM nosuch").ok());
  EXPECT_FALSE(db_.Query("SELECT nosuchcol FROM entities").ok());
  EXPECT_FALSE(db_.Query("SELECT 'unterminated FROM entities").ok());
}

TEST_F(RelationalTest, SelectStar) {
  auto rs = db_.Query("SELECT * FROM entities WHERE id = 1");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0].size(), 4u);
}

TEST_F(RelationalTest, IndexProbeUsedForEquality) {
  ExecStats stats;
  auto rs = db_.Query("SELECT id FROM entities WHERE name = '/bin/tar'",
                      &stats);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows.size(), 1u);
  // The probe should touch only the matching row, not all four.
  EXPECT_EQ(stats.base_rows_scanned, 1u);
  EXPECT_EQ(stats.index_probe_rows, 1u);
}

TEST_F(RelationalTest, IndexProbeUsedForInList) {
  ExecStats stats;
  auto rs = db_.Query(
      "SELECT id FROM entities WHERE name IN ('/bin/tar', '/bin/bzip2', "
      "'/no/such')",
      &stats);
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
  // Only the two matching rows are touched — the IN probes the name index.
  EXPECT_EQ(stats.base_rows_scanned, 2u);
  EXPECT_EQ(stats.index_probe_rows, 2u);
}

TEST_F(RelationalTest, ValueHashConsistentWithCompare) {
  ValueHash hash;
  ValueEq eq;
  // int/double coercion: equal by Compare implies equal hashes.
  EXPECT_TRUE(eq(Value(int64_t{1}), Value(1.0)));
  EXPECT_EQ(hash(Value(int64_t{1})), hash(Value(1.0)));
  EXPECT_EQ(hash(Value::Null()), hash(Value::Null()));
  // Numeric and text never compare equal, even when rendered alike.
  EXPECT_FALSE(eq(Value(int64_t{1}), Value("1")));
  // NaN equals itself, sorts below every number, and hashes consistently
  // regardless of payload bits (equality must stay an equivalence relation
  // for the Value-keyed indexes).
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_TRUE(eq(Value(nan), Value(-nan)));
  EXPECT_EQ(hash(Value(nan)), hash(Value(-nan)));
  EXPECT_FALSE(eq(Value(nan), Value(1.0)));
  EXPECT_LT(Value(nan).Compare(Value(-1e300)), 0);
}

TEST_F(RelationalTest, IndexProbeDistinguishesIntFromText) {
  // The old string-keyed index conflated Value(1) and Value("1"); the
  // Value-keyed index must not return int-keyed rows for a text probe.
  // Probing goes through the per-shard buckets (the facade's tables are
  // sharded), whose aggregate count must stay exact.
  const Table* t = db_.FindTable("events");
  ASSERT_NE(t, nullptr);
  int col = t->schema().FindColumn("subject");
  ASSERT_TRUE(t->HasIndex(col));
  EXPECT_EQ(t->ProbeCount(col, Value(int64_t{1})), 2u);
  EXPECT_EQ(t->ProbeCount(col, Value("1")), 0u);
  // Shard buckets hold each matching row exactly once, in its own shard.
  size_t found = 0;
  for (size_t s = 0; s < t->shard_count(); ++s) {
    for (RowId rid : t->Probe(col, Value(int64_t{1}), s)) {
      EXPECT_EQ(t->ShardOf(rid), s);
      EXPECT_EQ(t->row(rid)[col].AsInt(), 1);
      ++found;
    }
  }
  EXPECT_EQ(found, 2u);
}

TEST(ParallelSelectTest, AgreesWithSerialAndHonorsLimitBudget) {
  // A few hundred rows across sharded storage: parallel scans and probe
  // pipelines must return the serial result set (order-normalized), and a
  // pushed LIMIT must emit exactly min(limit, full) rows drawn from the
  // full result.
  Database db(4);
  ASSERT_TRUE(db.CreateTable("t", Schema({{"id", ColumnType::kInt64},
                                          {"name", ColumnType::kText},
                                          {"score", ColumnType::kInt64}}))
                  .ok());
  ASSERT_TRUE(db.CreateTable("u", Schema({{"tid", ColumnType::kInt64},
                                          {"tag", ColumnType::kText}}))
                  .ok());
  static const char* kNames[] = {"/bin/tar", "/bin/cat", "/tmp/x.sh"};
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value(static_cast<int64_t>(i)),
                                Value(kNames[i % 3]),
                                Value(static_cast<int64_t>(i * 7 % 100))})
                    .ok());
  }
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(db.Insert("u", {Value(static_cast<int64_t>(i * 3 % 400)),
                                Value(i % 2 ? "x" : "y")})
                    .ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "id").ok());

  auto rows_sorted = [](const ResultSet& rs) {
    std::vector<std::string> out;
    for (const Row& row : rs.rows) {
      std::string r;
      for (const Value& v : row) r += v.ToString() + "\x1f";
      out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end());
    return out;
  };

  const char* queries[] = {
      "SELECT id FROM t WHERE score > 40",
      "SELECT t.name, u.tag FROM t, u WHERE t.id = u.tid AND t.score > 10",
      "SELECT DISTINCT name FROM t WHERE score > 5",
  };
  for (const char* q : queries) {
    db.options() = SelectOptions{};
    db.options().parallel_shards = 1;
    auto serial = db.Query(q);
    ASSERT_TRUE(serial.ok()) << q << ": " << serial.status().ToString();

    db.options() = SelectOptions{};
    db.options().parallel_shards = 4;
    db.options().parallel_min_rows = 0;
    auto parallel = db.Query(q);
    ASSERT_TRUE(parallel.ok()) << q << ": " << parallel.status().ToString();
    EXPECT_EQ(rows_sorted(parallel.value()), rows_sorted(serial.value())) << q;
    // Parallel runs are deterministic for fixed storage + shard count.
    auto again = db.Query(q);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(again.value().rows, parallel.value().rows) << q;
  }

  // Cooperative LIMIT budget across workers.
  db.options() = SelectOptions{};
  db.options().parallel_shards = 1;
  auto full = db.Query("SELECT id FROM t WHERE score > 40");
  ASSERT_TRUE(full.ok());
  std::vector<std::string> full_rows = rows_sorted(full.value());
  ASSERT_GT(full_rows.size(), 60u);
  db.options() = SelectOptions{};
  db.options().parallel_shards = 4;
  db.options().parallel_min_rows = 0;
  auto limited = db.Query("SELECT id FROM t WHERE score > 40 LIMIT 60");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), 60u);
  std::vector<std::string> got = rows_sorted(limited.value());
  EXPECT_TRUE(std::includes(full_rows.begin(), full_rows.end(), got.begin(),
                            got.end()));
  // DISTINCT + LIMIT under parallel dedup-and-merge stays exact.
  auto dl = db.Query("SELECT DISTINCT name FROM t LIMIT 2");
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_EQ(dl.value().rows.size(), 2u);
}

TEST_F(RelationalTest, ShardedRowStorageKeepsGlobalIdsDense) {
  // Row ids are global and dense in insert order even though storage is
  // partitioned; row(id) must address through the owning shard.
  const Table* t = db_.FindTable("entities");
  ASSERT_NE(t, nullptr);
  EXPECT_GT(t->shard_count(), 1u);
  ASSERT_EQ(t->row_count(), 4u);
  int id_col = t->schema().FindColumn("id");
  for (RowId rid = 0; rid < t->row_count(); ++rid) {
    EXPECT_EQ(t->row(rid)[id_col].AsInt(), static_cast<int64_t>(rid) + 1);
  }
}

TEST_F(RelationalTest, SingleShardTablePreservesLegacyApi) {
  // The N=1 case keeps the pre-sharding whole-table accessors.
  Table t("flat", Schema({{"k", ColumnType::kInt64}}), /*shard_count=*/1);
  ASSERT_TRUE(t.Insert({Value(int64_t{7})}).ok());
  ASSERT_TRUE(t.Insert({Value(int64_t{7})}).ok());
  ASSERT_TRUE(t.CreateIndex("k").ok());
  EXPECT_EQ(t.shard_count(), 1u);
  EXPECT_EQ(t.rows().size(), 2u);
  EXPECT_EQ(t.Probe(0, Value(int64_t{7})).size(), 2u);
  EXPECT_EQ(t.ProbeCount(0, Value(int64_t{7})), 2u);
}

TEST_F(RelationalTest, LimitZeroReturnsNothing) {
  for (bool push : {true, false}) {
    db_.options().push_limit = push;
    ExecStats stats;
    auto rs = db_.Query("SELECT name FROM entities LIMIT 0", &stats);
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    EXPECT_TRUE(rs.value().rows.empty());
    // The pushed-down LIMIT 0 never starts the base scan at all.
    if (push) {
      EXPECT_EQ(stats.base_rows_scanned, 0u);
    }
  }
  db_.options().push_limit = true;
}

TEST_F(RelationalTest, LimitLargerThanResultSet) {
  auto rs = db_.Query("SELECT name FROM entities WHERE type = 'proc' LIMIT 50");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  EXPECT_EQ(rs.value().rows.size(), 2u);
}

TEST_F(RelationalTest, DistinctLimitCountsPostDedupRows) {
  // Event subjects arrive as 1, 1, 4: a limit counted before dedup would
  // stop at the duplicate and emit a single distinct row. Both dedup
  // configurations must produce two — including legacy dedup + push_limit,
  // where the pushdown has to disable itself.
  for (bool streaming : {true, false}) {
    db_.options().streaming_distinct = streaming;
    auto rs = db_.Query("SELECT DISTINCT subject FROM events LIMIT 2");
    ASSERT_TRUE(rs.ok()) << rs.status().ToString();
    ASSERT_EQ(rs.value().rows.size(), 2u) << "streaming=" << streaming;
    EXPECT_NE(rs.value().rows[0][0].AsInt(), rs.value().rows[1][0].AsInt());
  }
  db_.options().streaming_distinct = true;
}

TEST_F(RelationalTest, LimitWithJoin) {
  const char* base =
      "SELECT s.name, o.name FROM events e "
      "JOIN entities s ON e.subject = s.id "
      "JOIN entities o ON e.object = o.id";
  auto full = db_.Query(base);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full.value().rows.size(), 3u);
  auto limited = db_.Query(std::string(base) + " LIMIT 2");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited.value().rows.size(), 2u);
  for (const auto& row : limited.value().rows) {
    bool found = false;
    for (const auto& frow : full.value().rows) {
      if (row == frow) found = true;
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(RelationalTest, PushedLimitStopsBaseScan) {
  const char* q = "SELECT name FROM entities LIMIT 1";
  ExecStats pushed, legacy;
  auto fast = db_.Query(q, &pushed);
  db_.options().push_limit = false;
  auto slow = db_.Query(q, &legacy);
  db_.options().push_limit = true;
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast.value().rows.size(), 1u);
  EXPECT_EQ(slow.value().rows.size(), 1u);
  // Streaming stops after the first emitted row; the legacy path scans all
  // four entity rows before truncating.
  EXPECT_EQ(pushed.base_rows_scanned, 1u);
  EXPECT_EQ(legacy.base_rows_scanned, 4u);
  EXPECT_EQ(pushed.rows_emitted, 1u);
}

TEST_F(RelationalTest, OrderByDisablesPushdownButStaysCorrect) {
  auto rs = db_.Query("SELECT name FROM entities ORDER BY name LIMIT 2");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().rows.size(), 2u);
  EXPECT_EQ(rs.value().rows[0][0].AsText(), "/bin/bzip2");
  EXPECT_EQ(rs.value().rows[1][0].AsText(), "/bin/tar");
}

TEST_F(RelationalTest, StatementRoundTrip) {
  const char* sql =
      "SELECT DISTINCT s.name FROM events e JOIN entities s ON e.subject = "
      "s.id WHERE e.op = 'read' ORDER BY s.name LIMIT 5";
  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  // Re-parse the printed form; it must execute identically.
  auto printed = stmt.value().ToString();
  auto rs1 = db_.Query(sql);
  auto rs2 = db_.Query(printed);
  ASSERT_TRUE(rs1.ok());
  ASSERT_TRUE(rs2.ok()) << printed << " -> " << rs2.status().ToString();
  EXPECT_EQ(rs1.value().rows.size(), rs2.value().rows.size());
}

TEST(BlockResultTest, ParallelNonDistinctAdoptsWorkerBlocksZeroCopy) {
  Database db(4);
  ASSERT_TRUE(db.CreateTable("t", Schema({{"id", ColumnType::kInt64},
                                          {"name", ColumnType::kText},
                                          {"score", ColumnType::kInt64}}))
                  .ok());
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value(static_cast<int64_t>(i)),
                                Value("/data/f" + std::to_string(i)),
                                Value(static_cast<int64_t>(i * 13 % 100))})
                    .ok());
  }
  db.options().parallel_min_rows = 0;

  const char* q = "SELECT id, name FROM t WHERE score > 30";
  auto blocks = db.QueryBlocks(q);
  ASSERT_TRUE(blocks.ok()) << blocks.status().ToString();
  ASSERT_GT(blocks.value().rows.row_count(), 0u);
  // Non-DISTINCT parallel merge: adopted worker blocks only, no per-row
  // moves (the ROADMAP zero-copy merge item).
  EXPECT_EQ(blocks.value().rows.pushed_rows(), 0u);
  EXPECT_EQ(blocks.value().rows.adopted_rows(),
            blocks.value().rows.row_count());
  EXPECT_LE(blocks.value().rows.block_count(), size_t{4});

  // The flattening wrapper sees identical rows in identical order.
  auto flat = db.Query(q);
  ASSERT_TRUE(flat.ok());
  size_t i = 0;
  auto cursor = blocks.value().cursor();
  while (const Row* row = cursor.Next()) {
    ASSERT_LT(i, flat.value().rows.size());
    EXPECT_EQ(*row, flat.value().rows[i]);
    ++i;
  }
  EXPECT_EQ(i, flat.value().rows.size());

  // Streaming DISTINCT re-dedups at the merge partition by partition
  // (workers hash-partition their emissions), then adopts each compacted
  // partition block wholesale — no per-row pushes either.
  auto distinct = db.QueryBlocks("SELECT DISTINCT score FROM t");
  ASSERT_TRUE(distinct.ok());
  ASSERT_GT(distinct.value().rows.row_count(), 0u);
  EXPECT_EQ(distinct.value().rows.pushed_rows(), 0u);
  EXPECT_EQ(distinct.value().rows.adopted_rows(),
            distinct.value().rows.row_count());
}

TEST(BlockResultTest, PresetCancelFlagCancelsQuery) {
  Database db(4);
  ASSERT_TRUE(
      db.CreateTable("t", Schema({{"id", ColumnType::kInt64}})).ok());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value(static_cast<int64_t>(i))}).ok());
  }
  std::atomic<bool> cancel{true};
  SelectOptions options = db.options();
  options.cancel = &cancel;
  auto rs = db.QueryBlocks("SELECT id FROM t", options);
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kCancelled);
}

TEST(BlockResultTest, DeadlineBoundsSingleGiantScan) {
  // ROADMAP deadline-overshoot item, relational side: the deadline is
  // polled inside the base-scan loop, so a single giant scan stops within
  // one poll stride of expiry instead of finishing first. 100k rows with
  // a cross-join tail make the full query take well past the deadline.
  Database db(4);
  ASSERT_TRUE(db.CreateTable("big", Schema({{"id", ColumnType::kInt64},
                                            {"name", ColumnType::kText}}))
                  .ok());
  ASSERT_TRUE(
      db.CreateTable("dim", Schema({{"k", ColumnType::kInt64}})).ok());
  for (int i = 0; i < 100'000; ++i) {
    ASSERT_TRUE(db.Insert("big", {Value(static_cast<int64_t>(i)),
                                  Value("/data/f" + std::to_string(i))})
                    .ok());
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert("dim", {Value(static_cast<int64_t>(i))}).ok());
  }

  SelectOptions options = db.options();
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  ExecStats stats;
  auto start = std::chrono::steady_clock::now();
  auto rs = db.QueryBlocks(
      "SELECT b.id, d.k FROM big b, dim d WHERE b.name LIKE '%/data/%'",
      options, &stats);
  auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rs.ok());
  EXPECT_EQ(rs.status().code(), StatusCode::kTimeout);
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2'000);

  // A comfortable deadline does not fire.
  options.deadline =
      std::chrono::steady_clock::now() + std::chrono::minutes(5);
  auto ok = db.QueryBlocks("SELECT id FROM big WHERE id < 10", options);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok.value().rows.row_count(), 10u);
}

TEST(BlockResultTest, PreSplitSeedListsMatchSkipScan) {
  // Indexed IN probes materialize a shared seed list; under a pushed LIMIT
  // the parallel driver pre-splits it per shard at plan time. The budgeted
  // result must stay within the full result, and exact without LIMIT.
  Database db(4);
  ASSERT_TRUE(db.CreateTable("t", Schema({{"id", ColumnType::kInt64},
                                          {"grp", ColumnType::kInt64}}))
                  .ok());
  for (int i = 0; i < 800; ++i) {
    ASSERT_TRUE(db.Insert("t", {Value(static_cast<int64_t>(i)),
                                Value(static_cast<int64_t>(i % 10))})
                    .ok());
  }
  ASSERT_TRUE(db.CreateIndex("t", "grp").ok());
  const char* q = "SELECT id FROM t WHERE grp IN (1, 4, 7)";

  db.options() = SelectOptions{};
  db.options().parallel_shards = 1;
  auto serial = db.Query(q);
  ASSERT_TRUE(serial.ok());

  db.options() = SelectOptions{};
  db.options().parallel_shards = 4;
  db.options().parallel_min_rows = 0;
  auto parallel = db.Query(q);
  ASSERT_TRUE(parallel.ok());
  auto normalize = [](const ResultSet& rs) {
    std::vector<int64_t> ids;
    for (const Row& r : rs.rows) ids.push_back(r[0].AsInt());
    std::sort(ids.begin(), ids.end());
    return ids;
  };
  EXPECT_EQ(normalize(parallel.value()), normalize(serial.value()));

  auto limited = db.Query("SELECT id FROM t WHERE grp IN (1, 4, 7) LIMIT 40");
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited.value().rows.size(), 40u);
  std::vector<int64_t> full_ids = normalize(serial.value());
  for (const Row& r : limited.value().rows) {
    EXPECT_TRUE(std::binary_search(full_ids.begin(), full_ids.end(),
                                   r[0].AsInt()));
  }
}

}  // namespace
}  // namespace raptor::sql
