#include <gtest/gtest.h>

#include "extraction/extractor.h"
#include "extraction/merge.h"
#include "extraction/relation.h"

namespace raptor::extraction {
namespace {

const char* kFig2Text =
    "As a first step, the attacker used /bin/tar to read user credentials "
    "from /etc/passwd. It wrote the gathered information to a file "
    "/tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to "
    "compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote "
    "to /tmp/upload.tar.bz2. After compression, the attacker used Gnu "
    "Privacy Guard tool to encrypt the zipped file, which corresponds to "
    "the launched process /usr/bin/gpg reading from /tmp/upload.tar.bz2. "
    "/usr/bin/gpg then wrote the sensitive information to /tmp/upload. "
    "Finally, the attacker leveraged the curl utility /usr/bin/curl to "
    "read the data from /tmp/upload. He leaked the gathered sensitive "
    "information back to the attacker C2 host by using /usr/bin/curl to "
    "connect to 192.168.29.128.";

bool HasEdge(const ThreatBehaviorGraph& g, const char* src, const char* verb,
             const char* dst) {
  for (const IocRelation& e : g.edges()) {
    if (g.node(e.src).Matches(src) && e.verb == verb &&
        g.node(e.dst).Matches(dst)) {
      return true;
    }
  }
  return false;
}

TEST(ExtractorTest, Fig2GraphIsExact) {
  ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(kFig2Text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ThreatBehaviorGraph& g = r.value().graph;
  EXPECT_EQ(g.nodes().size(), 9u);
  ASSERT_EQ(g.edges().size(), 8u);
  // The eight Fig. 2 edges, in sequence order.
  const struct {
    const char* src;
    const char* verb;
    const char* dst;
  } kExpected[] = {
      {"/bin/tar", "read", "/etc/passwd"},
      {"/bin/tar", "write", "/tmp/upload.tar"},
      {"/bin/bzip2", "read", "/tmp/upload.tar"},
      {"/bin/bzip2", "write", "/tmp/upload.tar.bz2"},
      {"/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"},
      {"/usr/bin/gpg", "write", "/tmp/upload"},
      {"/usr/bin/curl", "read", "/tmp/upload"},
      {"/usr/bin/curl", "connect", "192.168.29.128"},
  };
  for (size_t i = 0; i < 8; ++i) {
    const IocRelation& e = g.edges()[i];
    EXPECT_EQ(e.seq, static_cast<int>(i) + 1);
    EXPECT_TRUE(g.node(e.src).Matches(kExpected[i].src)) << i;
    EXPECT_EQ(e.verb, kExpected[i].verb) << i;
    EXPECT_TRUE(g.node(e.dst).Matches(kExpected[i].dst)) << i;
  }
}

TEST(ExtractorTest, CorefResolvesItToTool) {
  // "It wrote ... to /tmp/upload.tar" must resolve It -> /bin/tar.
  ThreatBehaviorExtractor extractor;
  auto r = extractor.Extract(kFig2Text);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(HasEdge(r.value().graph, "/bin/tar", "write",
                      "/tmp/upload.tar"));
}

TEST(ExtractorTest, AblationCollapsesRecall) {
  ExtractionOptions opts;
  opts.ioc_protection = false;
  ThreatBehaviorExtractor noprot(opts);
  auto ablated = noprot.Extract(kFig2Text);
  ASSERT_TRUE(ablated.ok());
  ThreatBehaviorExtractor full;
  auto complete = full.Extract(kFig2Text);
  ASSERT_TRUE(complete.ok());
  // Without IOC protection the tokenizer shreds the path IOCs; only the IP
  // (and possibly dotted file names) survive.
  EXPECT_LT(ablated.value().iocs.size(), complete.value().iocs.size());
  EXPECT_LT(ablated.value().triplets.size(),
            complete.value().triplets.size());
  bool found_full_path = false;
  for (const IocEntity& e : ablated.value().iocs) {
    if (e.Matches("/etc/passwd")) found_full_path = true;
  }
  EXPECT_FALSE(found_full_path);
}

TEST(ExtractorTest, SelfLoopRunRelation) {
  auto r = ThreatBehaviorExtractor().Extract(
      "The implant /home/admin/cache repeatedly ran /home/admin/cache to "
      "respawn itself.");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(HasEdge(r.value().graph, "/home/admin/cache", "run",
                      "/home/admin/cache"));
}

TEST(ExtractorTest, BlocksExtractedIndependently) {
  auto r = ThreatBehaviorExtractor().Extract(
      "The malware /tmp/a.sh read /etc/passwd.\n\n"
      "Later, /tmp/a.sh connected to 1.2.3.4.");
  ASSERT_TRUE(r.ok());
  // The same IOC across blocks links into one node (Step 8 merge).
  EXPECT_EQ(r.value().graph.FindNode("/tmp/a.sh"),
            r.value().graph.edges()[1].src);
  EXPECT_TRUE(HasEdge(r.value().graph, "/tmp/a.sh", "read", "/etc/passwd"));
  EXPECT_TRUE(HasEdge(r.value().graph, "/tmp/a.sh", "connect", "1.2.3.4"));
}

TEST(ExtractorTest, TreeSimplificationPreservesOutput) {
  ExtractionOptions with, without;
  with.simplify_trees = true;
  without.simplify_trees = false;
  auto a = ThreatBehaviorExtractor(with).Extract(kFig2Text);
  auto b = ThreatBehaviorExtractor(without).Extract(kFig2Text);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value().graph.ToString(), b.value().graph.ToString());
}

TEST(ExtractorTest, EmptyAndIrrelevantText) {
  auto empty = ThreatBehaviorExtractor().Extract("");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().iocs.empty());
  auto prose = ThreatBehaviorExtractor().Extract(
      "The weather was lovely. Nothing suspicious happened today.");
  ASSERT_TRUE(prose.ok());
  EXPECT_TRUE(prose.value().graph.edges().empty());
}

TEST(MergeTest, SuffixContainmentAbsorbsBareFilename) {
  AnnotatedTree tree;
  // Two annotations: full path and bare file name.
  tree.ann.resize(2);
  nlp::IocMatch full;
  full.type = nlp::IocType::kWinFilepath;
  full.text = R"(C:\Users\victim\msupdate.exe)";
  nlp::IocMatch bare;
  bare.type = nlp::IocType::kFilename;
  bare.text = "msupdate.exe";
  tree.ann[0].ioc = full;
  tree.ann[1].ioc = bare;
  MergeResult merged = ScanMergeIocs({tree});
  ASSERT_EQ(merged.entities.size(), 1u);
  EXPECT_EQ(merged.entities[0].text, full.text);
  EXPECT_TRUE(merged.entities[0].Matches("msupdate.exe"));
}

TEST(MergeTest, IpsNeverFuzzyMerge) {
  AnnotatedTree tree;
  tree.ann.resize(2);
  nlp::IocMatch a, b;
  a.type = b.type = nlp::IocType::kIp;
  a.text = "192.168.29.128";
  b.text = "192.168.29.129";  // one character apart
  tree.ann[0].ioc = a;
  tree.ann[1].ioc = b;
  EXPECT_EQ(ScanMergeIocs({tree}).entities.size(), 2u);
}

TEST(MergeTest, SimilarSiblingPathsStayDistinct) {
  AnnotatedTree tree;
  tree.ann.resize(2);
  nlp::IocMatch a, b;
  a.type = b.type = nlp::IocType::kFilepath;
  a.text = "/tmp/vpnf";
  b.text = "/tmp/vpnf2";  // a different artifact, not a variant
  tree.ann[0].ioc = a;
  tree.ann[1].ioc = b;
  EXPECT_EQ(ScanMergeIocs({tree}).entities.size(), 2u);
}

TEST(BehaviorGraphTest, EdgeDedupAndSequence) {
  ThreatBehaviorGraph g;
  IocEntity a, b;
  a.text = "/bin/x";
  b.text = "/tmp/y";
  int ia = g.AddNode(a);
  int ib = g.AddNode(b);
  g.AddEdge(ia, ib, "read");
  g.AddEdge(ia, ib, "read");  // duplicate ignored
  g.AddEdge(ia, ib, "write");
  ASSERT_EQ(g.edges().size(), 2u);
  EXPECT_EQ(g.edges()[0].seq, 1);
  EXPECT_EQ(g.edges()[1].seq, 2);
  EXPECT_NE(g.ToDot().find("read (1)"), std::string::npos);
}

}  // namespace
}  // namespace raptor::extraction
