// Structural well-formedness sweep for the dependency parser: every
// sentence of every benchmark OSCTI report (protected form, i.e. what the
// pipeline actually parses) and a fuzzed corpus must yield a single-rooted,
// acyclic tree with faithful token offsets. A malformed tree would corrupt
// relation extraction silently, so these invariants are load-bearing.
#include <gtest/gtest.h>

#include "cases/cases.h"
#include "common/rng.h"
#include "nlp/depparse.h"
#include "nlp/pos.h"
#include "nlp/protect.h"
#include "nlp/segment.h"
#include "nlp/tokenizer.h"

namespace raptor::nlp {
namespace {

void CheckTreeInvariants(const DepTree& tree, const std::string& context) {
  SCOPED_TRACE(context);
  if (tree.size() == 0) return;
  // Exactly one root.
  int roots = 0;
  for (size_t i = 0; i < tree.size(); ++i) {
    if (tree.node(i).head < 0) ++roots;
    // Head indices in range, no self-loops.
    ASSERT_LT(tree.node(i).head, static_cast<int>(tree.size()));
    ASSERT_NE(tree.node(i).head, static_cast<int>(i));
    ASSERT_FALSE(tree.node(i).deprel.empty());
  }
  EXPECT_EQ(roots, 1);
  EXPECT_GE(tree.root(), 0);
  // Acyclic: every node reaches the root.
  for (size_t i = 0; i < tree.size(); ++i) {
    auto path = tree.PathToRoot(static_cast<int>(i));
    ASSERT_LE(path.size(), tree.size());
    EXPECT_EQ(path.back(), tree.root());
  }
  // LCA is defined for all pairs (spot-check corners).
  if (tree.size() >= 2) {
    EXPECT_GE(tree.Lca(0, static_cast<int>(tree.size()) - 1), 0);
  }
}

DepTree ParseOne(const std::string& sentence) {
  std::vector<Token> tokens = Tokenize(sentence);
  std::vector<Pos> tags = TagTokens(tokens);
  EXPECT_EQ(tokens.size(), tags.size());
  return ParseDependency(tokens, tags);
}

class CaseTextParseTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CaseTextParseTest, EverySentenceParsesWellFormed) {
  const cases::AttackCase& c = cases::AllCases()[GetParam()];
  for (const Span& block : SegmentBlocks(c.oscti_text)) {
    ProtectedText pt = ProtectIocs(block.text);
    for (const Span& sentence : SegmentSentences(pt.text)) {
      DepTree tree = ParseOne(sentence.text);
      CheckTreeInvariants(tree, c.id + ": " + sentence.text);
      // Token offsets reconstruct the sentence content.
      for (size_t i = 0; i < tree.size(); ++i) {
        const DepNode& n = tree.node(static_cast<int>(i));
        EXPECT_EQ(sentence.text.substr(n.begin, n.end - n.begin), n.text);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(All18, CaseTextParseTest,
                         ::testing::Range<size_t>(0, 18));

class FuzzedParseTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzedParseTest, ArbitraryTokenSoupStaysWellFormed) {
  Rng rng(GetParam());
  static const char* kWords[] = {
      "the",     "attacker", "used",    "something", "read",    "to",
      "from",    "and",      "wrote",   "file",      "it",      ",",
      ".",       "then",     "which",   "by",        "using",   "was",
      "malware", "connected", "reading", "downloaded", "ran",   "(",
      ")",       "finally",  "host",    "data",      "!",       "?",
  };
  for (int trial = 0; trial < 150; ++trial) {
    std::string sentence;
    size_t len = 1 + rng.Uniform(24);
    for (size_t i = 0; i < len; ++i) {
      if (i) sentence += " ";
      sentence += kWords[rng.Uniform(sizeof(kWords) / sizeof(kWords[0]))];
    }
    DepTree tree = ParseOne(sentence);
    CheckTreeInvariants(tree, sentence);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzedParseTest,
                         ::testing::Values(71u, 72u, 73u, 74u));

TEST(ParseEdgeCasesTest, DegenerateInputs) {
  CheckTreeInvariants(ParseOne(""), "empty");
  CheckTreeInvariants(ParseOne("."), "lone punct");
  CheckTreeInvariants(ParseOne("read"), "lone verb");
  CheckTreeInvariants(ParseOne("the the the"), "determiner run");
  CheckTreeInvariants(ParseOne("and or but"), "conjunction soup");
  CheckTreeInvariants(ParseOne("to to to read"), "particle pileup");
}

}  // namespace
}  // namespace raptor::nlp
