// HuntService behavior: concurrent execution equals serial execution
// byte-for-byte, cancellation (queued and mid-query), deadlines, admission
// control, tenant fairness, the zero-copy row-block plumbing, and the
// epoch gate that lets the facade ingest while hunts are in flight
// (standing hunts and the stream sources live in stream_test.cc). Runs
// under the TSan CI job.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "cases/cases.h"
#include "obs/profile.h"
#include "service/hunt_service.h"
#include "storage/row_block.h"
#include "threatraptor.h"

namespace raptor {
namespace {

using service::HuntRequest;
using service::HuntResponse;
using service::HuntService;
using service::HuntServiceOptions;
using service::HuntTicket;
using service::QueryDialect;

HuntRequest Req(std::string text,
                QueryDialect dialect = QueryDialect::kTbql,
                std::string tenant = "", long long timeout_micros = -1) {
  HuntRequest r;
  r.text = std::move(text);
  r.dialect = dialect;
  r.tenant = std::move(tenant);
  r.timeout_micros = timeout_micros;
  return r;
}

/// A store big enough that hunts take real time: `procs` processes each
/// reading `files_per_proc` distinct files (reduction disabled so every
/// event survives). proc i is "/bin/svc<i>", file (i,j) is "/data/d<i>_<j>".
std::unique_ptr<ThreatRaptor> BuildWideStore(int procs, int files_per_proc) {
  ThreatRaptorOptions options;
  options.store.enable_reduction = false;
  auto tr = std::make_unique<ThreatRaptor>(options);
  audit::ParsedLog log;
  audit::Timestamp ts = 1'000'000;
  for (int i = 0; i < procs; ++i) {
    audit::EntityId p =
        log.entities.InternProcess("/bin/svc" + std::to_string(i), 100 + i);
    for (int j = 0; j < files_per_proc; ++j) {
      audit::EntityId f = log.entities.InternFile(
          "/data/d" + std::to_string(i) + "_" + std::to_string(j));
      audit::SystemEvent ev;
      ev.id = log.events.size() + 1;
      ev.subject = p;
      ev.object = f;
      ev.object_type = audit::EntityType::kFile;
      ev.op = audit::EventOp::kRead;
      ev.start_time = ts;
      ev.end_time = ts + 10;
      ts += 100;
      log.events.push_back(ev);
    }
  }
  EXPECT_TRUE(tr->IngestParsedLog(log).ok());
  return tr;
}

TEST(RowBlocksTest, AdoptPushTruncateFlatten) {
  storage::RowBlocks<std::vector<int>> blocks;
  blocks.Adopt({{1}, {2}, {3}});
  blocks.Push({4});
  blocks.Push({5});
  blocks.Adopt({{6}, {7}});
  EXPECT_EQ(blocks.row_count(), 7u);
  EXPECT_EQ(blocks.adopted_rows(), 5u);
  EXPECT_EQ(blocks.pushed_rows(), 2u);
  EXPECT_EQ(blocks.block_count(), 3u);

  storage::RowCursor<std::vector<int>> cursor(&blocks);
  std::vector<int> seen;
  while (const std::vector<int>* row = cursor.Next()) seen.push_back((*row)[0]);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4, 5, 6, 7}));

  blocks.Truncate(4);  // keeps {1,2,3} and {4}, drops the rest
  EXPECT_EQ(blocks.row_count(), 4u);
  EXPECT_EQ(blocks.block_count(), 2u);
  EXPECT_EQ(blocks.adopted_rows() + blocks.pushed_rows(), 4u);
  std::vector<std::vector<int>> flat = blocks.Flatten();
  EXPECT_EQ(flat, (std::vector<std::vector<int>>{{1}, {2}, {3}, {4}}));
  EXPECT_EQ(blocks.row_count(), 0u);

  storage::RowBlocks<std::vector<int>> exact;
  exact.Adopt({{9}, {8}});
  exact.Truncate(2);  // no-op boundary
  EXPECT_EQ(exact.row_count(), 2u);
  exact.Truncate(0);
  EXPECT_EQ(exact.block_count(), 0u);
}

TEST(HuntServiceTest, InvalidTicketIsFinishedNotFatal) {
  HuntTicket ticket;  // never came from Submit
  EXPECT_FALSE(ticket.valid());
  EXPECT_TRUE(ticket.done());
  EXPECT_EQ(ticket.Wait().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(ticket.WaitFor(1'000));
  ticket.WaitStarted();  // no-op
  ticket.Cancel();       // no-op
  EXPECT_EQ(ticket.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ticket.id(), 0u);
}

TEST(HuntServiceTest, TbqlMatchesDirectExecution) {
  auto tr = BuildWideStore(20, 20);
  const char* query = "proc p[\"%svc1%\"] read file f return p, f";
  auto direct = tr->Hunt(tbql::ParseTbql(query).value());
  ASSERT_TRUE(direct.ok());

  HuntService service(tr->store());
  auto response = service.Run(Req(query));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().report.results.rows,
            direct.value().results.rows);
  EXPECT_EQ(response.value().report.matched_event_ids,
            direct.value().matched_event_ids);
  EXPECT_EQ(response.value().columns, direct.value().results.columns);
}

TEST(HuntServiceTest, ConcurrentHuntsMatchSerialByteForByte) {
  auto tr = BuildWideStore(24, 24);
  struct Case {
    QueryDialect dialect;
    std::string text;
  };
  std::vector<Case> cases = {
      {QueryDialect::kTbql, "proc p read file f return p, f"},
      {QueryDialect::kTbql,
       "proc p[\"%svc3%\"] read file f as e1 "
       "proc p read file g[\"%_7%\"] as e2 with e1 before e2 "
       "return distinct p, g"},
      {QueryDialect::kCypher,
       "MATCH (p:proc)-[e:read]->(f:file) WHERE f.name CONTAINS '_5' "
       "RETURN p.exename, f.name"},
      {QueryDialect::kSql,
       "SELECT e.id, s.exename FROM events e, entities s "
       "WHERE e.subject = s.id AND e.op = 'read' AND s.exename LIKE "
       "'%svc1%'"},
  };

  // Serial ground truth through the same service API, one at a time.
  HuntServiceOptions serial_opts;
  serial_opts.max_concurrent = 1;
  std::vector<HuntResponse> serial;
  {
    HuntService service(tr->store(), serial_opts);
    for (const Case& c : cases) {
      auto r = service.Run(Req(c.text, c.dialect));
      ASSERT_TRUE(r.ok()) << c.text << " -> " << r.status().ToString();
      serial.push_back(std::move(r).value());
    }
  }

  // Several rounds of fully concurrent submission (duplicate each case so
  // >= 2 hunts genuinely overlap per round even on a small pool).
  HuntServiceOptions par_opts;
  par_opts.max_concurrent = 4;
  HuntService service(tr->store(), par_opts);
  for (int round = 0; round < 3; ++round) {
    std::vector<HuntTicket> tickets;
    for (int dup = 0; dup < 2; ++dup) {
      for (const Case& c : cases) {
        tickets.push_back(
            service.Submit(Req(c.text, c.dialect)));
      }
    }
    for (size_t i = 0; i < tickets.size(); ++i) {
      const HuntResponse& expected = serial[i % cases.size()];
      ASSERT_TRUE(tickets[i].Wait().ok())
          << tickets[i].status().ToString();
      const HuntResponse& got = tickets[i].response();
      EXPECT_EQ(got.columns, expected.columns);
      if (cases[i % cases.size()].dialect == QueryDialect::kTbql) {
        EXPECT_EQ(got.report.results.rows, expected.report.results.rows);
        EXPECT_EQ(got.report.matched_event_ids,
                  expected.report.matched_event_ids);
      } else {
        // Compare streamed rows cell by cell through the cursors.
        auto lhs = got.cursor();
        auto rhs = expected.cursor();
        const std::vector<sql::Value>* a = nullptr;
        const std::vector<sql::Value>* b = nullptr;
        size_t rows = 0;
        while ((a = lhs.Next()) != nullptr) {
          b = rhs.Next();
          ASSERT_NE(b, nullptr);
          ASSERT_EQ(a->size(), b->size());
          for (size_t cell = 0; cell < a->size(); ++cell) {
            EXPECT_EQ((*a)[cell].Compare((*b)[cell]), 0);
          }
          ++rows;
        }
        EXPECT_EQ(rhs.Next(), nullptr);
        EXPECT_EQ(rows, expected.rows.row_count());
      }
    }
  }
  EXPECT_EQ(service.stats().failed, 0u);
}

/// Shared slow store (~90k events) for the timing-sensitive tests; built
/// once so TSan runs stay tractable.
ThreatRaptor& SlowStore() {
  static std::unique_ptr<ThreatRaptor> tr = BuildWideStore(300, 300);
  return *tr;
}

TEST(HuntServiceTest, CancelQueuedHuntNeverExecutes) {
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  HuntService service(tr.store(), opts);
  // The blocker occupies the only worker; the victim waits in the queue.
  HuntTicket blocker =
      service.Submit(Req("proc p read file f return p, f"));
  blocker.WaitStarted();
  HuntTicket victim = service.Submit(Req("proc p read file f return f"));
  victim.Cancel();
  EXPECT_EQ(victim.Wait().code(), StatusCode::kCancelled);
  blocker.Cancel();  // no need to sit out the blocker's full scan
  (void)blocker.Wait();
  EXPECT_GE(service.stats().cancelled, 1u);
}

TEST(HuntServiceTest, CancelRunningHuntStopsMidQuery) {
  // ~90k result rows: the base scan alone takes long enough that a cancel
  // issued right after admission lands mid-scan (the SQL executor polls
  // the flag at every first-table row visit).
  HuntService service(SlowStore().store());
  HuntTicket ticket =
      service.Submit(Req("proc p read file f return p, f"));
  ticket.WaitStarted();
  // Let the scan get going so the cancel exercises the mid-query polls
  // rather than the pre-execution check.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ticket.Cancel();
  EXPECT_EQ(ticket.Wait().code(), StatusCode::kCancelled);
}

TEST(HuntServiceTest, DeadlineExpiryQueuedAndRunning) {
  HuntService service(SlowStore().store());
  // Already-expired deadline: times out before execution starts.
  auto expired = service.Submit(
      Req("proc p read file f return p, f", QueryDialect::kTbql, "", 0));
  EXPECT_EQ(expired.Wait().code(), StatusCode::kTimeout);
  // Short deadline on a long hunt: expires mid-execution.
  auto slow = service.Submit(Req(
      "proc p read file f return p, f", QueryDialect::kTbql, "", 5'000));
  EXPECT_EQ(slow.Wait().code(), StatusCode::kTimeout);
  // A comfortable deadline does not fire.
  auto ok = service.Submit(Req(
      "proc p[\"%svc1_%\"] read file f return p", QueryDialect::kTbql, "",
      60'000'000));
  EXPECT_TRUE(ok.Wait().ok()) << ok.status().ToString();
  EXPECT_GE(service.stats().timed_out, 2u);
}

TEST(HuntServiceTest, AdmissionQueueOverflowRejects) {
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  HuntService service(tr.store(), opts);
  HuntTicket running =
      service.Submit(Req("proc p read file f return p, f"));
  running.WaitStarted();  // drain the queue so only the next submit queues
  HuntTicket queued = service.Submit(Req("proc p read file f return p"));
  HuntTicket rejected = service.Submit(Req("proc p read file f return f"));
  EXPECT_EQ(rejected.Wait().code(), StatusCode::kUnavailable);
  running.Cancel();
  queued.Cancel();
  (void)running.Wait();
  (void)queued.Wait();
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(HuntServiceTest, TenantRoundRobinPreventsStarvation) {
  auto tr = BuildWideStore(60, 60);
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  HuntService service(tr->store(), opts);
  const char* q = "proc p read file f return p, f";
  // Tenant A floods the queue, tenant B arrives last; round-robin admits
  // B's hunt right after A's head-of-line one, so B finishes while A's
  // tail is still pending.
  HuntTicket a1 = service.Submit(Req(q, QueryDialect::kTbql, "tenant-a"));
  HuntTicket a2 = service.Submit(Req(q, QueryDialect::kTbql, "tenant-a"));
  HuntTicket a3 = service.Submit(Req(q, QueryDialect::kTbql, "tenant-a"));
  HuntTicket b1 = service.Submit(Req(q, QueryDialect::kTbql, "tenant-b"));
  ASSERT_TRUE(b1.Wait().ok());
  EXPECT_FALSE(a3.done());  // the flood's tail is still behind B
  ASSERT_TRUE(a1.Wait().ok());
  ASSERT_TRUE(a2.Wait().ok());
  ASSERT_TRUE(a3.Wait().ok());
  EXPECT_EQ(service.stats().tenants, 2u);
}

TEST(HuntServiceTest, CypherAndSqlBlocksAdoptedZeroCopy) {
  // 100 proc seeds / 3000 base rows clear the parallel fan-out thresholds
  // (parallel_min_seeds = 64, parallel_min_rows = 256), so both queries
  // take the shard-parallel path and merge adopted worker blocks.
  auto tr = BuildWideStore(100, 30);
  HuntService service(tr->store());
  // Both backends shard 4 ways by default; a whole-store non-DISTINCT
  // query clears the parallel thresholds, so every row must arrive in an
  // adopted worker block — no per-row merge moves.
  auto cy = service.Run(Req(
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name",
      QueryDialect::kCypher));
  ASSERT_TRUE(cy.ok()) << cy.status().ToString();
  EXPECT_GT(cy.value().rows.row_count(), 0u);
  EXPECT_EQ(cy.value().rows.pushed_rows(), 0u)
      << "non-DISTINCT parallel merge must adopt whole worker blocks";
  auto sq = service.Run(Req(
      "SELECT e.id, e.subject FROM events e WHERE e.op = 'read'",
      QueryDialect::kSql));
  ASSERT_TRUE(sq.ok()) << sq.status().ToString();
  EXPECT_GT(sq.value().rows.row_count(), 0u);
  EXPECT_EQ(sq.value().rows.pushed_rows(), 0u);
}

TEST(HuntServiceTest, DagSchedulingMatchesSequentialPatternOrder) {
  auto tr = BuildWideStore(24, 24);
  const char* queries[] = {
      // Chain through a shared process entity.
      "proc p read file f[\"%_3%\"] as e1 proc p read file g[\"%_8%\"] as e2 "
      "with e1 before e2 return distinct p, f, g",
      // Two fully independent pattern pairs plus a dependent third.
      "proc a read file x[\"%d2_%\"] as e1 proc b read file y[\"%d5_%\"] as "
      "e2 proc a read file z[\"%_9%\"] as e3 return distinct a, b, z",
  };
  for (const char* q : queries) {
    engine::TbqlExecutor executor(tr->store());
    engine::ExecOptions sequential;
    sequential.parallel_patterns = false;
    auto base = executor.ExecuteText(q, sequential);
    ASSERT_TRUE(base.ok()) << base.status().ToString();

    engine::ExecOptions dag;
    dag.parallel_patterns = true;
    auto par = executor.ExecuteText(q, dag);
    ASSERT_TRUE(par.ok()) << par.status().ToString();

    EXPECT_EQ(par.value().results.rows, base.value().results.rows) << q;
    EXPECT_EQ(par.value().executed_queries, base.value().executed_queries)
        << q;
    EXPECT_EQ(par.value().pattern_match_counts,
              base.value().pattern_match_counts)
        << q;
    EXPECT_EQ(par.value().matched_event_ids, base.value().matched_event_ids)
        << q;
  }
}

TEST(HuntServiceTest, FacadeIngestsWhileHuntsInFlight) {
  auto tr = BuildWideStore(100, 100);
  HuntService* service = tr->hunt_service();
  ASSERT_NE(service, nullptr);
  uint64_t epoch_before = service->epoch();
  HuntTicket slow =
      service->Submit(Req("proc p read file f return p, f"));
  audit::ParsedLog more;
  audit::EntityId p = more.entities.InternProcess("/bin/late", 9999);
  audit::EntityId f = more.entities.InternFile("/data/late");
  audit::SystemEvent ev;
  ev.id = 1;
  ev.subject = p;
  ev.object = f;
  ev.op = audit::EventOp::kRead;
  ev.object_type = audit::EntityType::kFile;
  ev.start_time = 1;
  ev.end_time = 2;
  more.events.push_back(ev);
  // The hunt holds a worker slot (its scan runs ~100ms): the epoch gate
  // waits it out and applies the mutation instead of refusing it.
  slow.WaitStarted();
  EXPECT_TRUE(tr->IngestParsedLog(more).ok());
  // The gate drained the hunt before mutating: its execution is complete
  // (the ticket finishes a beat later — the worker leaves the running set
  // before marking done — so Wait, don't poll).
  EXPECT_TRUE(slow.Wait().ok());
  EXPECT_EQ(service->epoch(), epoch_before + 1);
  auto after = tr->Hunt("proc p[\"%late%\"] read file f return p, f");
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().results.rows.size(), 1u);
}

TEST(HuntServiceTest, DestructorCancelsOutstandingHunts) {
  ThreatRaptor& tr = SlowStore();
  HuntTicket running, queued;
  {
    HuntServiceOptions opts;
    opts.max_concurrent = 1;
    HuntService service(tr.store(), opts);
    running = service.Submit(Req("proc p read file f return p, f"));
    running.WaitStarted();
    queued = service.Submit(Req("proc p read file f return f"));
  }
  // Destruction finished both tickets one way or another.
  ASSERT_TRUE(running.done());
  ASSERT_TRUE(queued.done());
  EXPECT_EQ(queued.status().code(), StatusCode::kCancelled);
}

// --- admission fairness & starvation regression tests ---

TEST(HuntServiceTest, TenantFloodDoesNotRejectOtherTenants) {
  // Regression: the global max_queue used to be the only admission bound,
  // so one tenant filling it got every other tenant rejected. Per-tenant
  // caps now reject the flooder at its own cap while others still admit.
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 8;
  opts.max_queue_per_tenant = 2;
  HuntService service(tr.store(), opts);
  const char* scan = "proc p read file f return p, f";
  HuntTicket blocker = service.Submit(Req(scan));
  blocker.WaitStarted();  // occupy the only worker; everything else queues
  std::vector<HuntTicket> flood;
  for (int i = 0; i < 4; ++i) {
    flood.push_back(service.Submit(Req(scan, QueryDialect::kTbql,
                                       "tenant-a")));
  }
  size_t flood_rejected = 0;
  for (const HuntTicket& t : flood) {
    if (t.done() && t.status().code() == StatusCode::kUnavailable) {
      ++flood_rejected;
    }
  }
  EXPECT_EQ(flood_rejected, 2u);  // 2 queued at the cap, 2 rejected
  // Tenant B is NOT starved out by A's flood: the global queue has room
  // and B's own queue is empty.
  HuntTicket b = service.Submit(Req(
      "proc p[\"%svc1_%\"] read file f return p", QueryDialect::kTbql,
      "tenant-b"));
  EXPECT_FALSE(b.done()) << b.status().ToString();
  for (HuntTicket& t : flood) t.Cancel();
  blocker.Cancel();
  (void)blocker.Wait();
  EXPECT_TRUE(b.Wait().ok()) << b.status().ToString();
  for (HuntTicket& t : flood) (void)t.Wait();
  EXPECT_EQ(service.stats().rejected, 2u);
}

TEST(HuntServiceTest, SetTenantPolicyEffectiveAtNextAdmission) {
  // Runtime reconfig: tightening a tenant's queue cap applies to its next
  // Submit (queued hunts are never evicted), and the live entry reflects
  // the new weight/cap in the metrics surface immediately.
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 16;
  opts.max_queue_per_tenant = 4;
  HuntService service(tr.store(), opts);
  const char* scan = "proc p read file f return p, f";
  HuntTicket blocker = service.Submit(Req(scan));
  blocker.WaitStarted();  // occupy the only worker; everything else queues
  std::vector<HuntTicket> queued;
  queued.push_back(service.Submit(Req(scan, QueryDialect::kTbql,
                                      "tenant-a")));
  queued.push_back(service.Submit(Req(scan, QueryDialect::kTbql,
                                      "tenant-a")));
  for (const HuntTicket& t : queued) ASSERT_FALSE(t.done());
  service::TenantPolicy tight;
  tight.weight = 5;
  tight.max_queued = 2;  // below the service default, at the live backlog
  service.SetTenantPolicy("tenant-a", tight);
  HuntTicket rejected =
      service.Submit(Req(scan, QueryDialect::kTbql, "tenant-a"));
  EXPECT_TRUE(rejected.done());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);
  for (const HuntTicket& t : queued) EXPECT_FALSE(t.done());  // not evicted
  bool seen = false;
  for (const auto& tm : service.metrics().tenants) {
    if (tm.tenant != "tenant-a") continue;
    seen = true;
    EXPECT_EQ(tm.weight, 5);
    EXPECT_EQ(tm.max_queued, 2u);
  }
  EXPECT_TRUE(seen);
  // Loosening back: max_queued = 0 resolves to the service-wide default
  // again, so the tenant admits past the tightened cap.
  service.SetTenantPolicy("tenant-a", service::TenantPolicy{});
  HuntTicket readmitted =
      service.Submit(Req(scan, QueryDialect::kTbql, "tenant-a"));
  EXPECT_FALSE(readmitted.done());
  for (HuntTicket& t : queued) t.Cancel();
  readmitted.Cancel();
  blocker.Cancel();
  (void)blocker.Wait();
  for (HuntTicket& t : queued) (void)t.Wait();
  (void)readmitted.Wait();
}

TEST(HuntServiceTest, FacadeSetsTenantPolicyBeforeFirstSubmit) {
  // The facade path instantiates the lazy service, so a policy set before
  // the tenant's first hunt is already in place at creation time; with no
  // store loaded the call reports failure instead.
  ThreatRaptor empty;
  EXPECT_FALSE(empty.SetTenantPolicy("tenant-a", service::TenantPolicy{}));
  auto tr = BuildWideStore(10, 10);
  service::TenantPolicy policy;
  policy.weight = 3;
  policy.max_queued = 7;
  ASSERT_TRUE(tr->SetTenantPolicy("tenant-a", policy));
  HuntRequest req = Req("proc p[\"%svc1%\"] read file f return p, f",
                        QueryDialect::kTbql, "tenant-a");
  ASSERT_TRUE(tr->hunt_service()->Run(req).ok());
  HuntService::Metrics m = tr->service_metrics();
  ASSERT_EQ(m.tenants.size(), 1u);
  EXPECT_EQ(m.tenants[0].tenant, "tenant-a");
  EXPECT_EQ(m.tenants[0].weight, 3);
  EXPECT_EQ(m.tenants[0].max_queued, 7u);
}

TEST(HuntServiceTest, CancelQueuedReleasesSlotImmediately) {
  // Regression: cancelling a queued hunt used to leave it parked in the
  // queue (Wait() blocked until a worker dequeued it past the running
  // blocker, and its slot kept counting against max_queue). Cancel now
  // reaps it out of the queue on the caller's thread.
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  HuntService service(tr.store(), opts);
  HuntTicket blocker = service.Submit(Req("proc p read file f return p, f"));
  blocker.WaitStarted();
  HuntTicket victim = service.Submit(Req("proc p read file f return f"));
  victim.Cancel();
  // Done without any worker involvement — the blocker still holds the
  // only worker and will for a while yet.
  EXPECT_EQ(victim.Wait().code(), StatusCode::kCancelled);
  // Its queue slot is free again: the next submit admits instead of
  // bouncing off max_queue = 1.
  HuntTicket next =
      service.Submit(Req("proc p[\"%svc1_%\"] read file f return p"));
  EXPECT_FALSE(next.done()) << next.status().ToString();
  blocker.Cancel();
  (void)blocker.Wait();
  EXPECT_TRUE(next.Wait().ok()) << next.status().ToString();
}

TEST(HuntServiceTest, QueuedDeadlineExpiryReleasesSlot) {
  // Regression: a queued hunt whose deadline passed used to stay queued
  // (and its Wait() blocked) until a worker got around to dequeuing it.
  // Wait() now reaps the expired hunt itself.
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 1;
  opts.max_queue = 1;
  HuntService service(tr.store(), opts);
  HuntTicket blocker = service.Submit(Req("proc p read file f return p, f"));
  blocker.WaitStarted();
  HuntTicket victim = service.Submit(Req(
      "proc p read file f return f", QueryDialect::kTbql, "", 20'000));
  EXPECT_EQ(victim.Wait().code(), StatusCode::kTimeout);
  HuntTicket next =
      service.Submit(Req("proc p[\"%svc1_%\"] read file f return p"));
  EXPECT_FALSE(next.done()) << next.status().ToString();
  blocker.Cancel();
  (void)blocker.Wait();
  EXPECT_TRUE(next.Wait().ok()) << next.status().ToString();
  EXPECT_GE(service.stats().timed_out, 1u);
}

TEST(HuntServiceTest, SubmitAfterShutdownIsCancelled) {
  // Regression: a post-shutdown Submit used to report Unavailable("hunt
  // admission queue full") and count as an admission rejection.
  auto tr = BuildWideStore(5, 5);
  HuntService service(tr->store());
  ASSERT_TRUE(service.Run(Req("proc p read file f return p")).ok());
  service.Shutdown();
  HuntTicket late = service.Submit(Req("proc p read file f return p"));
  EXPECT_TRUE(late.done());
  EXPECT_EQ(late.Wait().code(), StatusCode::kCancelled);
  EXPECT_NE(late.status().ToString().find("shut down"), std::string::npos)
      << late.status().ToString();
  HuntService::Stats stats = service.stats();
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.rejected, 0u);  // not conflated with queue-full
}

TEST(HuntServiceTest, TenantMapPrunedDistinctCounted) {
  // Regression: the per-tenant queue map never dropped entries, so a churn
  // of one-off tenant names grew it without bound. Idle entries beyond
  // max_idle_tenants are pruned; the distinct-tenant stat survives.
  auto tr = BuildWideStore(5, 5);
  HuntServiceOptions opts;
  opts.max_idle_tenants = 4;
  HuntService service(tr->store(), opts);
  for (int i = 0; i < 12; ++i) {
    auto r = service.Run(Req("proc p read file f return p",
                             QueryDialect::kTbql,
                             "tenant-" + std::to_string(i)));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(service.stats().tenants, 12u);
  HuntService::Metrics m = service.metrics();
  EXPECT_EQ(m.distinct_tenants, 12u);
  EXPECT_LE(m.tracked_tenants, opts.max_idle_tenants);
}

TEST(HuntServiceTest, CostBudgetSerializesFullScans) {
  // Two whole-store scans against a budget of one full-scan unit: the
  // second hunt must wait for the first even though a worker is free.
  ThreatRaptor& tr = SlowStore();
  HuntServiceOptions opts;
  opts.max_concurrent = 2;
  opts.admission_cost_budget = 1.0;
  HuntService service(tr.store(), opts);
  const char* scan = "proc p read file f return p, f";
  HuntTicket first = service.Submit(Req(scan));
  first.WaitStarted();
  HuntTicket second = service.Submit(Req(scan));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  HuntService::Metrics m = service.metrics();
  EXPECT_EQ(m.running, 1u);      // the free worker could not admit it...
  EXPECT_EQ(m.queue_depth, 1u);  // ...so the second scan is still queued
  EXPECT_GT(m.running_cost, 0.5);
  first.Cancel();
  (void)first.Wait();
  second.WaitStarted();  // budget released -> admitted
  second.Cancel();
  (void)second.Wait();
}

TEST(HuntServiceTest, MetricsReportLatencyAndTenants) {
  auto tr = BuildWideStore(20, 20);
  HuntService service(tr->store());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        service.Run(Req("proc p[\"%svc1%\"] read file f return p, f")).ok());
  }
  HuntService::Metrics m = service.metrics();
  EXPECT_EQ(m.queue_depth, 0u);
  EXPECT_EQ(m.running, 0u);
  EXPECT_GE(m.workers, 1u);
  EXPECT_GT(m.uptime_seconds, 0.0);
  EXPECT_EQ(m.hunt_latency.count, 8u);
  EXPECT_EQ(m.queue_wait.count, 8u);
  EXPECT_GT(m.hunt_latency.p50_micros, 0.0);
  EXPECT_LE(m.hunt_latency.p50_micros, m.hunt_latency.p99_micros);
  EXPECT_LE(m.hunt_latency.p99_micros, m.hunt_latency.max_micros + 1e-9);
  ASSERT_EQ(m.tenants.size(), 1u);  // the default tenant
  EXPECT_EQ(m.tenants[0].submitted, 8u);
  EXPECT_EQ(m.tenants[0].completed, 8u);
  EXPECT_GT(m.tenants[0].qps, 0.0);
}

TEST(HuntServiceTest, FacadeExportsServiceMetrics) {
  ThreatRaptor empty;  // no store: an all-zero snapshot, no lazy service
  EXPECT_EQ(empty.service_metrics().hunt_latency.count, 0u);
  auto tr = BuildWideStore(10, 10);
  ASSERT_TRUE(tr->Hunt("proc p[\"%svc2%\"] read file f return p, f").ok());
  HuntService::Metrics m = tr->service_metrics();
  EXPECT_GE(m.hunt_latency.count, 1u);
  EXPECT_GE(m.epoch, 1u);          // BuildWideStore's ingest
  EXPECT_GE(m.gate_acquires, 1u);  // ... went through the write gate
}

TEST(HuntServiceTest, PlanTimeCostEstimates) {
  auto tr = BuildWideStore(50, 20);  // 1000 events, svc0..svc49
  const storage::AuditStore* store = tr->store();
  // Relational: an indexed point filter probes far fewer rows than a
  // whole-table scan.
  double scan = store->relational().EstimateCost("SELECT e.id FROM events e");
  double point = store->relational().EstimateCost(
      "SELECT s.id FROM entities s WHERE s.exename = '/bin/svc1'");
  EXPECT_GT(scan, 0.0);
  EXPECT_GT(point, 0.0);
  EXPECT_LT(point, scan);
  // Cypher: pattern radius scales the seed estimate.
  double hop0 = store->graph().EstimateCost("MATCH (p:proc) RETURN p.exename");
  double hop1 = store->graph().EstimateCost(
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename");
  EXPECT_GT(hop0, 0.0);
  EXPECT_GT(hop1, hop0);
  // TBQL sums its compiled patterns' backend estimates; unparseable text
  // prices at zero (it fails fast at run time instead).
  engine::TbqlExecutor executor(store);
  EXPECT_GT(executor.EstimateCost("proc p read file f return p, f"), 0.0);
  EXPECT_EQ(executor.EstimateCost("this is not a query"), 0.0);
  EXPECT_EQ(store->relational().EstimateCost("SELECT FROM"), 0.0);
}

TEST(HuntServiceTest, MixedLoadDifferentialMatchesSerial) {
  // Ingest + standing hunt + one-shot hunts all at once: the ingested
  // noise (write events by /bin/noise*) matches nothing the one-shot
  // hunts query, so their concurrent results must stay byte-identical to
  // the quiet serial ground truth. Runs under the TSan CI job.
  auto tr = BuildWideStore(30, 30);
  HuntService* service = tr->hunt_service();
  ASSERT_NE(service, nullptr);
  const char* tbql = "proc p[\"%svc1%\"] read file f return p, f";
  const char* sql =
      "SELECT s.exename FROM entities s WHERE s.exename LIKE '%svc2%'";
  auto serial_tbql = service->Run(Req(tbql));
  ASSERT_TRUE(serial_tbql.ok());
  auto serial_sql = service->Run(Req(sql, QueryDialect::kSql));
  ASSERT_TRUE(serial_sql.ok());
  const size_t serial_sql_rows = serial_sql.value().rows.row_count();

  // Standing hunt watching exactly the noise the writer injects.
  std::atomic<size_t> alerts{0};
  service::StandingSink sink;
  sink.on_alert = [&](const service::StandingUpdate&) { ++alerts; };
  service::StandingHandle standing = service->SubmitStanding(
      Req("MATCH (p:proc)-[e:write]->(f:file) RETURN p.exename, f.name",
          QueryDialect::kCypher),
      sink);
  ASSERT_TRUE(standing.valid());

  constexpr int kBatches = 6;
  std::atomic<int> ingest_failures{0};
  std::thread writer([&] {
    for (int b = 0; b < kBatches; ++b) {
      audit::ParsedLog log;
      audit::EntityId p = log.entities.InternProcess(
          "/bin/noise" + std::to_string(b), 5000 + b);
      audit::EntityId f =
          log.entities.InternFile("/noise/n" + std::to_string(b));
      audit::SystemEvent ev;
      ev.id = 1;
      ev.subject = p;
      ev.object = f;
      ev.object_type = audit::EntityType::kFile;
      ev.op = audit::EventOp::kWrite;
      ev.start_time = 10'000'000 + b;
      ev.end_time = 10'000'001 + b;
      log.events.push_back(ev);
      if (!tr->IngestParsedLog(log).ok()) ++ingest_failures;
    }
  });
  std::vector<std::thread> hunters;
  std::atomic<int> mismatches{0};
  for (int h = 0; h < 3; ++h) {
    hunters.emplace_back([&, h] {
      for (int iter = 0; iter < 4; ++iter) {
        if (h % 2 == 0) {
          auto r = service->Run(Req(tbql));
          if (!r.ok() ||
              r.value().report.results.rows !=
                  serial_tbql.value().report.results.rows ||
              r.value().report.matched_event_ids !=
                  serial_tbql.value().report.matched_event_ids) {
            ++mismatches;
          }
        } else {
          auto r = service->Run(Req(sql, QueryDialect::kSql));
          if (!r.ok() || r.value().rows.row_count() != serial_sql_rows) {
            ++mismatches;
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : hunters) t.join();
  EXPECT_EQ(ingest_failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  ASSERT_TRUE(standing.WaitEpoch(service->epoch()));
  EXPECT_EQ(standing.total_rows(), static_cast<size_t>(kBatches));
  // One refresh may cover several epochs, so alerts <= batches.
  EXPECT_GE(alerts.load(), 1u);
  EXPECT_LE(alerts.load(), static_cast<size_t>(kBatches));
  standing.Cancel();
  HuntService::Stats stats = service->stats();
  EXPECT_GE(stats.ingests, static_cast<size_t>(kBatches));
  EXPECT_EQ(service->metrics().epoch_lag, 0u);
  EXPECT_GE(service->metrics().gate_acquires, static_cast<size_t>(kBatches));
}

TEST(HuntServiceTest, FacadeHuntRoutesThroughService) {
  auto tr = BuildWideStore(10, 10);
  auto report = tr->Hunt("proc p[\"%svc2%\"] read file f return p, f");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().results.rows.size(), 10u);
  ASSERT_NE(tr->hunt_service(), nullptr);
  EXPECT_GE(tr->hunt_service()->stats().completed, 1u);
}

// ---------------------------------------------------------------------------
// Observability: EXPLAIN ANALYZE span trees, the slow-hunt log, and the
// exportable telemetry registry.

/// Depth-first collect of every span whose name starts with `prefix`.
void CollectSpans(const obs::TraceSpan& span, const std::string& prefix,
                  std::vector<const obs::TraceSpan*>* out) {
  if (span.name().rfind(prefix, 0) == 0) out->push_back(&span);
  for (const auto& child : span.children()) {
    CollectSpans(*child, prefix, out);
  }
}

TEST(HuntServiceObsTest, ProfilingIsByteIdenticalToUnprofiled) {
  auto tr = BuildWideStore(30, 20);
  HuntService service(tr->store());
  struct Case {
    const char* text;
    QueryDialect dialect;
  } cases[] = {
      {"proc p[\"%svc1%\"] read file f return p, f", QueryDialect::kTbql},
      {"MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name",
       QueryDialect::kCypher},
      {"SELECT e.id, e.subject FROM events e WHERE e.op = 'read'",
       QueryDialect::kSql},
  };
  for (const Case& c : cases) {
    auto plain = service.Run(Req(c.text, c.dialect));
    ASSERT_TRUE(plain.ok()) << plain.status().ToString();
    EXPECT_EQ(plain.value().profile, nullptr)
        << "profile must be absent unless requested";

    HuntRequest profiled = Req(c.text, c.dialect);
    profiled.profile = true;
    auto traced = service.Run(std::move(profiled));
    ASSERT_TRUE(traced.ok()) << traced.status().ToString();
    ASSERT_NE(traced.value().profile, nullptr);

    // Results are byte-identical with profiling on.
    EXPECT_EQ(traced.value().columns, plain.value().columns);
    if (c.dialect == QueryDialect::kTbql) {
      EXPECT_EQ(traced.value().report.results.rows,
                plain.value().report.results.rows);
      EXPECT_EQ(traced.value().report.matched_event_ids,
                plain.value().report.matched_event_ids);
    } else {
      auto lhs = traced.value().cursor();
      auto rhs = plain.value().cursor();
      const std::vector<sql::Value>* a = nullptr;
      while ((a = lhs.Next()) != nullptr) {
        const std::vector<sql::Value>* b = rhs.Next();
        ASSERT_NE(b, nullptr);
        ASSERT_EQ(a->size(), b->size());
        for (size_t cell = 0; cell < a->size(); ++cell) {
          EXPECT_EQ((*a)[cell].Compare((*b)[cell]), 0);
        }
      }
      EXPECT_EQ(rhs.Next(), nullptr);
    }

    // Tree shape: a finished "hunt" root carrying the dialect note, with
    // queue_wait and execute children.
    const obs::TraceSpan& root = *traced.value().profile;
    EXPECT_EQ(root.name(), "hunt");
    EXPECT_TRUE(root.finished());
    std::vector<const obs::TraceSpan*> waits, execs;
    CollectSpans(root, "queue_wait", &waits);
    CollectSpans(root, "execute", &execs);
    EXPECT_EQ(waits.size(), 1u);
    ASSERT_EQ(execs.size(), 1u);
    bool dialect_noted = false;
    for (const auto& [k, v] : root.notes()) {
      if (k == "dialect") dialect_noted = true;
    }
    EXPECT_TRUE(dialect_noted);
  }
}

TEST(HuntServiceObsTest, TbqlProfileCarriesPatternAndPhaseSpans) {
  auto tr = BuildWideStore(30, 20);
  HuntService service(tr->store());
  HuntRequest request = Req(
      "proc p[\"%svc1%\"] read file f[\"%_1\"] return p, f");
  request.profile = true;
  auto response = service.Run(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_NE(response.value().profile, nullptr);
  const obs::TraceSpan& root = *response.value().profile;

  std::vector<const obs::TraceSpan*> patterns, joins, projects;
  CollectSpans(root, "pattern[", &patterns);
  CollectSpans(root, "join", &joins);
  CollectSpans(root, "project", &projects);
  ASSERT_GE(patterns.size(), 1u);
  EXPECT_EQ(joins.size(), 1u);
  EXPECT_EQ(projects.size(), 1u);
  for (const obs::TraceSpan* p : patterns) {
    EXPECT_TRUE(p->finished());
    EXPECT_GE(p->counter("match_count", -1), 0)
        << p->name() << " must fold its match count";
  }

  // The per-pattern execution time is contained in the hunt: the pattern
  // spans' summed duration cannot exceed the root's wall clock by more
  // than bookkeeping noise (patterns may run concurrently, so the sum has
  // no lower bound, but each individual span fits inside the root).
  for (const obs::TraceSpan* p : patterns) {
    EXPECT_LE(p->duration_micros(), root.duration_micros() + 1000);
  }
}

TEST(HuntServiceObsTest, StorageScanSpansCarryWorkCounters) {
  // Big enough to clear the parallel fan-out thresholds so the storage
  // executors emit per-shard (or per-morsel-worker) scan spans.
  auto tr = BuildWideStore(100, 30);
  HuntService service(tr->store());
  HuntRequest request = Req(
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name",
      QueryDialect::kCypher);
  request.profile = true;
  auto response = service.Run(std::move(request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_NE(response.value().profile, nullptr);

  std::vector<const obs::TraceSpan*> scans;
  CollectSpans(*response.value().profile, "shard[", &scans);
  CollectSpans(*response.value().profile, "morsel_worker[", &scans);
  ASSERT_GE(scans.size(), 1u) << "parallel scan must emit per-worker spans";
  int64_t rows = 0, seeds = 0;
  for (const obs::TraceSpan* s : scans) {
    EXPECT_TRUE(s->finished());
    rows += s->counter("rows_emitted");
    seeds += s->counter("seeds_visited");
  }
  EXPECT_EQ(static_cast<size_t>(rows), response.value().rows.row_count());
  EXPECT_GT(seeds, 0);
}

TEST(HuntServiceObsTest, ConcurrentProfiledHuntsStayCoherent) {
  auto tr = BuildWideStore(40, 20);
  HuntServiceOptions opts;
  opts.max_concurrent = 4;
  HuntService service(tr->store(), opts);
  std::vector<HuntTicket> tickets;
  for (int i = 0; i < 8; ++i) {
    HuntRequest request = Req(
        i % 2 == 0
            ? "proc p read file f return p, f"
            : "SELECT e.id FROM events e WHERE e.op = 'read'",
        i % 2 == 0 ? QueryDialect::kTbql : QueryDialect::kSql);
    request.profile = true;
    tickets.push_back(service.Submit(std::move(request)));
  }
  for (HuntTicket& t : tickets) {
    ASSERT_TRUE(t.Wait().ok()) << t.status().ToString();
    ASSERT_NE(t.response().profile, nullptr);
    EXPECT_EQ(t.response().profile->name(), "hunt");
    EXPECT_TRUE(t.response().profile->finished());
    // Render both formats concurrently-built trees to exercise the
    // snapshot paths under TSan.
    EXPECT_FALSE(obs::RenderProfileText(*t.response().profile).empty());
    EXPECT_FALSE(obs::RenderProfileJson(*t.response().profile).empty());
  }
}

TEST(HuntServiceObsTest, SlowLogForcesTracingAndAppendsJsonl) {
  std::string path = testing::TempDir() + "/service_slow_hunts.jsonl";
  std::remove(path.c_str());
  auto tr = BuildWideStore(20, 10);
  HuntService service(tr->store());
  service.ConfigureSlowLog(path, /*threshold_micros=*/0);
  // profile not requested: the slow log still captures the span tree.
  auto response =
      service.Run(Req("proc p[\"%svc1%\"] read file f return p, f"));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response.value().profile, nullptr);
  EXPECT_GE(service.slow_hunts_logged(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  ASSERT_TRUE(std::getline(in, line).good());
  EXPECT_NE(line.find("\"dialect\":\"tbql\""), std::string::npos);
  EXPECT_NE(line.find("\"profile\":"), std::string::npos);
  EXPECT_NE(line.find("\"name\":\"hunt\""), std::string::npos);

  // Detach: later hunts are not logged.
  service.ConfigureSlowLog("", -1);
  size_t logged = service.slow_hunts_logged();
  EXPECT_EQ(logged, 0u);  // detached log reports zero
  ASSERT_TRUE(
      service.Run(Req("proc p[\"%svc2%\"] read file f return p")).ok());
  EXPECT_EQ(service.slow_hunts_logged(), 0u);
  std::remove(path.c_str());
}

TEST(HuntServiceObsTest, CollectMetricsExportsTheCatalog) {
  auto tr = BuildWideStore(20, 10);
  ASSERT_TRUE(tr->Hunt("proc p[\"%svc1%\"] read file f return p, f").ok());
  obs::MetricsRegistry registry;
  tr->hunt_service()->CollectMetrics(&registry);
  std::string prom = registry.ToPrometheus();
  for (const char* name :
       {"raptor_hunts_submitted_total", "raptor_hunts_completed_total",
        "raptor_admission_queue_depth", "raptor_admission_running",
        "raptor_ingests_total", "raptor_gate_acquires_total", "raptor_epoch",
        "raptor_standing_hunts", "raptor_mqo_dedup_hits_total",
        "raptor_mqo_subresult_hits_total", "raptor_hunt_latency_micros",
        "raptor_queue_wait_micros", "raptor_tenant_submitted_total",
        "raptor_uptime_seconds"}) {
    EXPECT_NE(prom.find(name), std::string::npos) << "missing " << name;
  }
  // The completed hunt landed in the latency histogram.
  EXPECT_NE(prom.find("raptor_hunt_latency_micros_count 1"),
            std::string::npos);
}

TEST(HuntServiceObsTest, FacadeExportMetricsCoversServiceAndDurability) {
  auto tr = BuildWideStore(10, 10);
  ASSERT_TRUE(tr->Hunt("proc p[\"%svc1%\"] read file f return p").ok());
  std::string prom = tr->ExportMetrics();
  EXPECT_NE(prom.find("raptor_hunts_submitted_total"), std::string::npos);
  EXPECT_NE(prom.find("raptor_wal_bytes_total"), std::string::npos);
  EXPECT_NE(prom.find("raptor_checkpoints_total"), std::string::npos);
  EXPECT_NE(prom.find("raptor_durable 0"), std::string::npos);
  std::string json = tr->ExportMetrics(obs::MetricsFormat::kJson);
  EXPECT_NE(json.find("\"name\":\"raptor_hunts_submitted_total\""),
            std::string::npos);
}

}  // namespace
}  // namespace raptor
