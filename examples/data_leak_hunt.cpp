// Fig. 2 of the paper, end to end: the data-leakage-after-Shellshock OSCTI
// report is processed into a threat behavior graph, the graph is
// synthesized into the TBQL query shown in the figure, and the query is
// executed against audit logs containing the attack plus benign noise.
#include <cstdio>

#include "cases/cases.h"
#include "threatraptor.h"

using namespace raptor;

int main() {
  // The full attack narration from Fig. 2 (including the GnuPG step).
  const char* kFig2Text =
      "After the lateral movement stage, the attacker attempts to steal "
      "valuable assets from the host. This stage mainly involves the "
      "behaviors of local and remote file system scanning activities, "
      "copying and compressing of important files, and transferring the "
      "files to its C2 host. As a first step, the attacker used /bin/tar "
      "to read user credentials from /etc/passwd. It wrote the gathered "
      "information to a file /tmp/upload.tar. Then, the attacker leveraged "
      "/bin/bzip2 utility to compress the tar file. /bin/bzip2 read from "
      "/tmp/upload.tar and wrote to /tmp/upload.tar.bz2. After "
      "compression, the attacker used Gnu Privacy Guard tool to encrypt "
      "the zipped file, which corresponds to the launched process "
      "/usr/bin/gpg reading from /tmp/upload.tar.bz2. /usr/bin/gpg then "
      "wrote the sensitive information to /tmp/upload. Finally, the "
      "attacker leveraged the curl utility /usr/bin/curl to read the data "
      "from /tmp/upload. He leaked the gathered sensitive information "
      "back to the attacker C2 host by using /usr/bin/curl to connect to "
      "192.168.29.128.";

  // Plant the full 8-step attack into benign background noise.
  using audit::EventOp;
  std::vector<audit::AttackStep> steps;
  auto file = [&](const char* exe, long long pid, EventOp op,
                  const char* path, double at) {
    audit::AttackStep s;
    s.exe = exe;
    s.pid = pid;
    s.op = op;
    s.object_path = path;
    s.at = static_cast<audit::Timestamp>(at * 1e6);
    steps.push_back(s);
  };
  file("/bin/tar", 501, EventOp::kRead, "/etc/passwd", 1);
  file("/bin/tar", 501, EventOp::kWrite, "/tmp/upload.tar", 3);
  file("/bin/bzip2", 502, EventOp::kRead, "/tmp/upload.tar", 5);
  file("/bin/bzip2", 502, EventOp::kWrite, "/tmp/upload.tar.bz2", 7);
  file("/usr/bin/gpg", 503, EventOp::kRead, "/tmp/upload.tar.bz2", 9);
  file("/usr/bin/gpg", 503, EventOp::kWrite, "/tmp/upload", 11);
  file("/usr/bin/curl", 504, EventOp::kRead, "/tmp/upload", 13);
  {
    audit::AttackStep s;
    s.exe = "/usr/bin/curl";
    s.pid = 504;
    s.op = EventOp::kConnect;
    s.dst_ip = "192.168.29.128";
    s.dst_port = 443;
    s.at = static_cast<audit::Timestamp>(15e6);
    steps.push_back(s);
  }

  audit::BenignProfile profile;
  profile.num_processes = 400;
  profile.seed = 42;
  audit::BenignWorkloadSimulator benign;
  ThreatRaptor tr;
  Status st = tr.IngestSyscalls(audit::MergeStreams(
      {benign.Generate(profile), audit::CompileAttackScript(steps, 0, 42)}));
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("audit store: %zu entities, %zu events (%.1f%% of raw events "
              "kept after data reduction)\n\n",
              tr.store()->entity_count(), tr.store()->event_count(),
              100.0 * tr.store()->reduction_stats().reduction_ratio());

  auto outcome = tr.HuntWithOsctiText(kFig2Text);
  if (!outcome.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  const HuntOutcome& hunt = outcome.value();
  std::printf("== threat behavior graph (Fig. 2 middle) ==\n%s\n",
              hunt.extraction.graph.ToString().c_str());
  std::printf("== graphviz rendering ==\n%s\n",
              hunt.extraction.graph.ToDot().c_str());
  std::printf("== synthesized TBQL query (Fig. 2 right) ==\n%s\n\n",
              hunt.synthesis.tbql_text.c_str());
  std::printf("== compiled data queries, in scheduled order ==\n");
  for (const std::string& q : hunt.report.executed_queries) {
    std::printf("  %s\n", q.c_str());
  }
  std::printf("\n== matched system auditing records ==\n%s",
              hunt.report.results.ToString().c_str());
  std::printf("\nmatched %zu malicious events among %zu stored events\n",
              hunt.report.matched_event_ids.size(),
              tr.store()->event_count());
  return 0;
}
