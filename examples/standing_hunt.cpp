// Continuous hunting: a live audit stream, epoch-coordinated ingest, and
// a standing TBQL hunt that alerts as the attack unfolds.
//
//  1. Build a simulated live feed: 30 minutes of benign background
//     activity with a data-exfiltration attack landing mid-stream,
//     replayed in 5-minute batches (stream::SimulatorSource).
//  2. Register a standing hunt for the exfil pattern BEFORE any data
//     arrives — the sink prints an alert the first epoch the pattern
//     matches.
//  3. Attach a StreamIngestor: every batch parses, reduces (with the
//     cross-batch carry-over window), and appends under the HuntService
//     epoch gate — hunting keeps working the whole time.
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/example_standing_hunt
#include <cstdio>

#include "stream/event_stream.h"
#include "stream/ingestor.h"
#include "threatraptor.h"

using namespace raptor;

int main() {
  // --- 1. the live feed -----------------------------------------------------
  stream::SimulatorSourceOptions feed;
  feed.profile.num_users = 6;
  feed.profile.num_processes = 60;
  feed.profile.mean_records_per_process = 25;
  feed.profile.duration = 30LL * 60 * 1000 * 1000;
  feed.batch_window_us = 5LL * 60 * 1000 * 1000;
  stream::SimulatorSourceOptions::TimedAttack attack;
  attack.at = 17LL * 60 * 1000 * 1000;  // strikes in the fourth batch
  auto file_step = [](audit::EventOp op, const char* path, int syscalls,
                      audit::Timestamp at) {
    audit::AttackStep step;
    step.exe = "/attack/stage";
    step.pid = 6666;
    step.op = op;
    step.object_path = path;
    step.syscall_count = syscalls;
    step.bytes = 1 << 20;
    step.at = at;
    return step;
  };
  attack.steps = {
      file_step(audit::EventOp::kRead, "/secret/payroll.db", 6, 0),
      file_step(audit::EventOp::kWrite, "/tmp/.cache.tgz", 4, 2'000'000)};
  audit::AttackStep connect;
  connect.exe = "/attack/stage";
  connect.pid = 6666;
  connect.op = audit::EventOp::kConnect;
  connect.dst_ip = "198.51.100.23";
  connect.dst_port = 443;
  connect.at = 4'000'000;
  attack.steps.push_back(connect);
  feed.attacks.push_back(attack);
  stream::SimulatorSource source(feed);
  std::printf("simulated feed: %zu records over 30 minutes, 5-minute "
              "batches\n",
              source.total_records());

  // --- 2. the standing hunt -------------------------------------------------
  ThreatRaptorOptions options;
  options.store.carry_over_window = true;  // merge bursts across batches
  ThreatRaptor tr(options);
  if (!tr.IngestSyscalls({}).ok()) return 1;  // bootstrap store + service
  service::HuntService* service = tr.hunt_service();

  service::HuntRequest hunt;
  hunt.text = "proc p[\"%attack%\"] read file f return p, f";
  service::StandingSink sink;
  sink.on_alert = [](const service::StandingUpdate& update) {
    std::printf(">>> ALERT at epoch %llu: %zu new matching rows%s\n",
                static_cast<unsigned long long>(update.epoch),
                update.delta.row_count(),
                update.incremental ? " (incremental refresh)" : "");
    auto cursor = update.cursor();
    while (const std::vector<sql::Value>* row = cursor.Next()) {
      std::printf("      %s -> %s\n", (*row)[0].ToString().c_str(),
                  (*row)[1].ToString().c_str());
    }
  };
  service::StandingHandle handle =
      service->SubmitStanding(hunt, sink);
  std::printf("standing hunt registered: %s\n", hunt.text.c_str());

  // --- 3. stream it in ------------------------------------------------------
  stream::IngestorOptions iopts;
  iopts.finish = [&] { return tr.FlushIngest(); };
  stream::StreamIngestor ingestor(
      &source,
      [&](const std::vector<audit::SyscallRecord>& records) {
        std::printf("batch: %zu records -> epoch %llu\n", records.size(),
                    static_cast<unsigned long long>(service->epoch() + 1));
        return tr.IngestSyscalls(records);
      },
      iopts);
  ingestor.Start();
  ingestor.WaitEnd();
  if (!ingestor.stats().error.ok()) {
    std::fprintf(stderr, "stream failed: %s\n",
                 ingestor.stats().error.ToString().c_str());
    return 1;
  }
  handle.WaitEpoch(service->epoch());

  service::HuntService::Stats stats = service->stats();
  std::printf("\nstream ended: %zu batches, %llu epochs, %zu standing "
              "refreshes (%zu incremental, %zu alerts)\n",
              ingestor.stats().batches,
              static_cast<unsigned long long>(service->epoch()),
              stats.standing_refreshes, stats.standing_incremental,
              stats.standing_alerts);
  std::printf("store: %zu entities, %zu events after reduction (ratio "
              "%.3f)\n",
              tr.store()->entity_count(), tr.store()->event_count(),
              tr.store()->reduction_stats().reduction_ratio());
  return handle.total_rows() > 0 ? 0 : 1;
}
