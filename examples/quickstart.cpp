// Quickstart: the smallest end-to-end ThreatRaptor program.
//
//  1. Collect audit records (here: a tiny synthetic log).
//  2. Ingest them (parsing, data reduction, dual-backend storage).
//  3. Hand ThreatRaptor an OSCTI snippet; it extracts the threat behavior
//     graph, synthesizes a TBQL query and hunts.
//  4. Alternatively, hunt proactively with a hand-written TBQL query.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/quickstart
#include <cstdio>

#include "threatraptor.h"

using namespace raptor;

int main() {
  // --- 1. a tiny audit log: one benign editor + a two-step attack --------
  std::vector<audit::AttackStep> attack;
  {
    audit::AttackStep s1;
    s1.exe = "/usr/bin/wget";
    s1.pid = 4242;
    s1.op = audit::EventOp::kWrite;
    s1.object_path = "/tmp/payload.sh";
    s1.at = 0;
    attack.push_back(s1);
    audit::AttackStep s2 = s1;
    s2.op = audit::EventOp::kConnect;
    s2.object_path.clear();
    s2.dst_ip = "203.0.113.66";
    s2.dst_port = 443;
    s2.at = 2'000'000;
    attack.push_back(s2);
  }
  audit::BenignProfile profile;
  profile.num_processes = 50;
  profile.seed = 7;
  audit::BenignWorkloadSimulator benign;
  std::vector<audit::SyscallRecord> log = audit::MergeStreams(
      {benign.Generate(profile), audit::CompileAttackScript(attack, 0, 7)});

  // --- 2. ingest ----------------------------------------------------------
  ThreatRaptor tr;
  Status st = tr.IngestSyscalls(log);
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("ingested %zu entities / %zu events\n",
              tr.store()->entity_count(), tr.store()->event_count());

  // --- 3. OSCTI-driven hunt ----------------------------------------------
  const char* report =
      "The attacker used /usr/bin/wget to write the dropper to "
      "/tmp/payload.sh. It connected to 203.0.113.66 afterwards.";
  auto outcome = tr.HuntWithOsctiText(report);
  if (!outcome.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("\nthreat behavior graph:\n%s",
              outcome.value().extraction.graph.ToString().c_str());
  std::printf("\nsynthesized TBQL query:\n%s\n\n",
              outcome.value().synthesis.tbql_text.c_str());
  std::printf("matched records:\n%s",
              outcome.value().report.results.ToString().c_str());

  // --- 4. proactive hunt with hand-written TBQL ---------------------------
  auto manual = tr.Hunt(
      "proc p[\"%wget%\"] connect ip i return distinct p, i.dstip, i.dstport");
  if (manual.ok()) {
    std::printf("\nproactive query results:\n%s",
                manual.value().results.ToString().c_str());
  }
  return 0;
}
