// Concurrent hunting through the HuntService: several analysts (tenants)
// investigating one audit store at once.
//
//  1. Ingest a benchmark case in two batches (incremental ingestion).
//  2. Open a HuntService over the store and submit a mix of TBQL, Cypher
//     and SQL queries from two tenants — they execute concurrently, up to
//     the admission width.
//  3. Stream one result through the chunked RowCursor (no flat
//     materialized copy), cancel a hunt, and race another against a
//     deadline.
//
// Build & run:  cmake -B build && cmake --build build
//               ./build/example_concurrent_hunts
#include <cstdio>

#include "cases/cases.h"
#include "threatraptor.h"

using namespace raptor;

int main() {
  // --- 1. ingest a case in two batches ------------------------------------
  const cases::AttackCase* c = cases::FindCase("data_leak");
  std::vector<audit::SyscallRecord> log = cases::BuildCaseLog(*c);
  ThreatRaptor tr;
  size_t half = log.size() / 2;
  std::vector<audit::SyscallRecord> first(log.begin(), log.begin() + half);
  std::vector<audit::SyscallRecord> second(log.begin() + half, log.end());
  if (!tr.IngestSyscalls(first).ok() || !tr.IngestSyscalls(second).ok()) {
    std::fprintf(stderr, "ingest failed\n");
    return 1;
  }
  std::printf("ingested %zu entities / %zu events (two batches)\n",
              tr.store()->entity_count(), tr.store()->event_count());

  // --- 2. submit a mixed workload from two tenants -------------------------
  service::HuntService* service = tr.hunt_service();
  service::HuntRequest tbql;
  tbql.text = "proc p read file f[\"%passwd%\"] return p, f";
  tbql.tenant = "alice";
  service::HuntRequest cypher;
  cypher.text = "MATCH (p:proc)-[e:send]->(i:ip) RETURN p.exename, i.dstip";
  cypher.dialect = service::QueryDialect::kCypher;
  cypher.tenant = "bob";
  service::HuntRequest sql;
  sql.text = "SELECT e.op, e.amount FROM events e WHERE e.amount > 4000";
  sql.dialect = service::QueryDialect::kSql;
  sql.tenant = "bob";

  service::HuntTicket t1 = service->Submit(tbql);
  service::HuntTicket t2 = service->Submit(cypher);
  service::HuntTicket t3 = service->Submit(sql);

  if (!t1.Wait().ok() || !t2.Wait().ok() || !t3.Wait().ok()) {
    std::fprintf(stderr, "a hunt failed\n");
    return 1;
  }
  std::printf("\nTBQL hunt (alice):\n%s",
              t1.response().report.results.ToString(5).c_str());

  // --- 3. stream the Cypher result through the chunked cursor --------------
  const service::HuntResponse& net = t2.response();
  std::printf("\nCypher hunt (bob): %zu rows in %zu blocks "
              "(%zu adopted zero-copy)\n",
              net.rows.row_count(), net.rows.block_count(),
              net.rows.adopted_rows());
  auto cursor = net.cursor();
  int shown = 0;
  while (const std::vector<sql::Value>* row = cursor.Next()) {
    if (++shown > 5) break;
    std::printf("  %s -> %s\n", (*row)[0].ToString().c_str(),
                (*row)[1].ToString().c_str());
  }

  // --- 4. cancellation and deadlines ---------------------------------------
  service::HuntRequest slow;
  slow.text = "proc p read || write file f return p, f";
  service::HuntTicket cancelled = service->Submit(slow);
  cancelled.Cancel();
  std::printf("\ncancelled hunt -> %s\n",
              cancelled.Wait().ToString().c_str());

  slow.timeout_micros = 1;  // expires immediately
  service::HuntTicket expired = service->Submit(slow);
  std::printf("1us-deadline hunt -> %s\n", expired.Wait().ToString().c_str());

  service::HuntService::Stats stats = service->stats();
  std::printf("\nservice stats: %zu submitted, %zu completed, %zu cancelled, "
              "%zu timed out, %zu tenants\n",
              stats.submitted, stats.completed, stats.cancelled,
              stats.timed_out, stats.tenants);
  return 0;
}
