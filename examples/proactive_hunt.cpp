// Proactive threat hunting without OSCTI (Sec II): when no report is
// available, the analyst writes TBQL directly. This example loads the
// password_crack case and walks through progressively richer queries:
// attribute filters, temporal chains with gap bounds, global time windows,
// variable-length event path patterns, and attribute relationships.
#include <cstdio>

#include "cases/cases.h"
#include "threatraptor.h"

using namespace raptor;

namespace {

void Run(const ThreatRaptor& tr, const char* title, const char* query) {
  std::printf("== %s ==\n%s\n", title, query);
  auto report = tr.Hunt(query);
  if (!report.ok()) {
    std::printf("error: %s\n\n", report.status().ToString().c_str());
    return;
  }
  std::printf("%s  (%zu rows, %.1f ms)\n\n",
              report.value().results.ToString(8).c_str(),
              report.value().results.rows.size(),
              report.value().seconds * 1e3);
}

}  // namespace

int main() {
  const cases::AttackCase* c = cases::FindCase("password_crack");
  ThreatRaptor tr;
  Status st = tr.IngestSyscalls(cases::BuildCaseLog(*c));
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu entities / %zu events\n\n",
              tr.store()->entity_count(), tr.store()->event_count());

  // Who touched the shadow file?
  Run(tr, "basic event pattern",
      "proc p read file f[\"%/etc/shadow%\"] return distinct p, f");

  // Password-cracker kill chain: download, then crack, within an hour.
  Run(tr, "temporal chain with gap bounds",
      "proc p1 write file f1[\"%john%\"] as evt1\n"
      "proc p2 read file f2[\"%/etc/shadow%\"] as evt2\n"
      "with evt1 before[0-60 min] evt2\n"
      "return distinct p1, f1, p2, f2");

  // Complex operation expressions and attribute filters.
  Run(tr, "operation disjunction + attribute filter",
      "proc p[exename = \"%httpd%\"] read || write file f "
      "return distinct p, f");

  // Restrict to the newest portion of the log.
  Run(tr, "global time window (last 30 minutes of the log)",
      "last 30 min proc p connect ip i return distinct p, i");

  // Variable-length event path: any chain of up to 4 events from the
  // compromised service to a john-related file (the direct write is hop 1;
  // longer chains would cover intermediate processes omitted in reports).
  Run(tr, "variable-length event path pattern",
      "proc p[\"%httpd%\"] ~>(1~4) file f[\"%john%\"] "
      "return distinct p, f");

  // Attribute relationship across patterns: same process pid.
  Run(tr, "attribute relationship",
      "proc p1 read ip i1[\"184.105.182.21\"] as evt1\n"
      "proc p2 write file f2[\"%john.zip%\"] as evt2\n"
      "with p1.pid = p2.pid\n"
      "return distinct p1, p1.pid, f2");
  return 0;
}
