// Fuzzy search mode (Sec III-F): when the OSCTI report deviates from the
// ground truth — here tc_fivedirections_3, where the report names
// burnout.exe / 139.44.203.116 but the deployed sample was renamed
// brnout.exe and the C2 moved to .117 — the exact search mode finds
// nothing, and the Poirot-based inexact graph pattern matching recovers
// the attack through node-level (Levenshtein) and graph-level alignment.
#include <cstdio>

#include "cases/cases.h"
#include "threatraptor.h"

using namespace raptor;

int main() {
  const cases::AttackCase* c = cases::FindCase("tc_fivedirections_3");
  ThreatRaptor tr;
  Status st = tr.IngestSyscalls(cases::BuildCaseLog(*c));
  if (!st.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("OSCTI report:\n%s\n\n", c->oscti_text.c_str());

  auto outcome = tr.HuntWithOsctiText(c->oscti_text);
  if (!outcome.ok()) {
    std::fprintf(stderr, "hunt failed: %s\n",
                 outcome.status().ToString().c_str());
    return 1;
  }
  std::printf("== exact search mode ==\nquery:\n%s\n\nmatched events: %zu "
              "(the deployed IOCs deviate from the report)\n\n",
              outcome.value().synthesis.tbql_text.c_str(),
              outcome.value().report.matched_event_ids.size());

  engine::FuzzyOptions opts;
  opts.node_similarity = 0.6;
  opts.score_threshold = 0.5;
  auto fuzzy = tr.HuntFuzzy(outcome.value().synthesis.tbql_text, opts);
  if (!fuzzy.ok()) {
    std::fprintf(stderr, "fuzzy search failed: %s\n",
                 fuzzy.status().ToString().c_str());
    return 1;
  }
  const engine::FuzzyReport& report = fuzzy.value();
  std::printf("== fuzzy search mode (Poirot-based alignment) ==\n");
  std::printf("considered %zu candidate alignments, accepted %zu\n",
              report.candidate_alignments_considered,
              report.alignments.size());
  std::printf("timings: load %.3fs, preprocess %.3fs, search %.3fs\n\n",
              report.timings.loading_seconds,
              report.timings.preprocessing_seconds,
              report.timings.searching_seconds);
  for (size_t i = 0; i < report.alignments.size() && i < 3; ++i) {
    const engine::FuzzyAlignment& a = report.alignments[i];
    std::printf("alignment #%zu (score %.2f):\n", i + 1, a.score);
    for (const auto& [var, entity_id] : a.nodes) {
      const audit::SystemEntity& e = tr.store()->entities()[entity_id - 1];
      std::printf("  %s -> %s\n", var.c_str(),
                  e.Attribute(audit::SystemEntity::DefaultAttribute(e.type))
                      .c_str());
    }
  }
  std::printf("\naligned records:\n%s", report.results.ToString().c_str());
  std::printf(
      "\nThe renamed dropper (brnout.exe) and the moved C2 (.117) are "
      "recovered despite the report naming burnout.exe / .116.\n");
  return 0;
}
