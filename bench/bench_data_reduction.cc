// Sec III-B ablation (design-choice callout in DESIGN.md): data reduction
// ratio as a function of the merge threshold. The paper experimented with
// several thresholds and chose 1 second.
#include <cstdio>

#include "audit/parser.h"
#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "storage/reduction/reduction.h"

using namespace raptor;

int main() {
  // Measure across the union of all case logs.
  audit::ParsedLog log;
  audit::AuditLogParser parser;
  for (const cases::AttackCase& c : cases::AllCases()) {
    Status st = parser.Parse(cases::BuildCaseLog(c), &log);
    if (!st.ok()) {
      std::fprintf(stderr, "parse failure: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  bench::BenchReport report("data_reduction");
  report.Param("input_events", static_cast<long long>(log.events.size()));
  std::printf(
      "Data reduction (Sec III-B): merged event count vs merge threshold "
      "(%zu input events)\n\n",
      log.events.size());
  TablePrinter table({"Threshold", "Output events", "Reduction ratio",
                      "Space saved"});
  const struct {
    const char* label;
    audit::Timestamp us;
  } kThresholds[] = {
      {"0 (off)", 0},          {"10 ms", 10'000},
      {"100 ms", 100'000},     {"1 sec (paper)", 1'000'000},
      {"10 sec", 10'000'000},  {"60 sec", 60'000'000},
  };
  for (const auto& t : kThresholds) {
    storage::ReductionOptions opts;
    opts.merge_threshold_us = t.us;
    storage::ReductionStats stats;
    auto reduced = storage::ReduceEvents(log.events, opts, &stats);
    table.AddRow({t.label, std::to_string(reduced.size()),
                  StrFormat("%.3f", stats.reduction_ratio()),
                  FormatPercent(1.0 - stats.reduction_ratio())});
    std::string label = "threshold_us_" + std::to_string(t.us);
    report.Metric(label, "output_events", static_cast<double>(reduced.size()));
    report.Metric(label, "reduction_ratio", stats.reduction_ratio());
  }
  table.Print();
  report.Write();
  std::printf(
      "\nLarger thresholds merge more aggressively but risk merging "
      "semantically distinct accesses; 1 second preserves per-step events "
      "in all 18 attack scripts while removing syscall-level bursts.\n");
  return 0;
}
