// Tables I-III: the audit model inventory — monitored system calls by
// event category, representative entity attributes, and representative
// event attributes — printed from the implementation so documentation and
// code cannot drift apart.
#include <cstdio>

#include "audit/syscall.h"
#include "audit/types.h"
#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace raptor;

int main() {
  bench::BenchReport report("audit_model");
  std::printf("Table I: representative system calls processed\n\n");
  const audit::SyscallInventory& inv = audit::MonitoredSyscalls();
  TablePrinter t1({"Event Category", "Relevant System Calls"});
  t1.AddRow({"ProcessToFile", Join(inv.process_to_file, ", ")});
  t1.AddRow({"ProcessToProcess", Join(inv.process_to_process, ", ")});
  t1.AddRow({"ProcessToNetwork", Join(inv.process_to_network, ", ")});
  t1.Print();

  std::printf("\nTable II: representative attributes of system entities\n\n");
  TablePrinter t2({"Entity", "Attributes"});
  t2.AddRow({"File", "name (absolute path), path, user, group"});
  t2.AddRow({"Process", "pid, exename, cmd, user, group"});
  t2.AddRow({"Network Connection",
             "srcip, srcport, dstip, dstport, protocol"});
  t2.Print();

  std::printf("\nTable III: representative attributes of system events\n\n");
  TablePrinter t3({"Attribute Group", "Attributes"});
  std::vector<std::string> ops;
  for (int i = 0; i < audit::kNumEventOps; ++i) {
    ops.push_back(audit::EventOpName(static_cast<audit::EventOp>(i)));
  }
  t3.AddRow({"Operation", Join(ops, ", ")});
  t3.AddRow({"Time", "start_time, end_time (microseconds)"});
  t3.AddRow({"Misc.", "subject id, object id, amount, failure_code"});
  t3.Print();

  report.Metric("syscalls", "process_to_file",
                static_cast<double>(inv.process_to_file.size()));
  report.Metric("syscalls", "process_to_process",
                static_cast<double>(inv.process_to_process.size()));
  report.Metric("syscalls", "process_to_network",
                static_cast<double>(inv.process_to_network.size()));
  report.Metric("events", "op_count", static_cast<double>(ops.size()));
  report.Write();
  return 0;
}
