// Table VII (RQ3): per-case execution time of the pipeline stages — threat
// behavior extraction (text -> E.&R.), behavior graph construction
// (E.&R. -> graph), TBQL query synthesis (graph -> TBQL) — plus the
// extraction time of the ablation and the Open IE baselines.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "openie/openie.h"

using namespace raptor;

int main() {
  std::printf(
      "Table VII: execution time (seconds) of the pipeline stages\n\n");
  TablePrinter table({"Case", "Text->E.&R.", "E.&R.->Graph", "Graph->TBQL",
                      "-IOCProt", "StanfordOIE", "OpenIE5"});
  bench::BenchReport report("pipeline_time");
  double totals[6] = {0, 0, 0, 0, 0, 0};
  int n = 0;
  for (const cases::AttackCase& c : cases::AllCases()) {
    extraction::ThreatBehaviorExtractor extractor;
    auto r = extractor.Extract(c.oscti_text);
    synthesis::QuerySynthesizer synthesizer;
    auto syn = synthesizer.Synthesize(r.value().graph);
    double graph_to_tbql = syn.ok() ? syn.value().seconds : 0;

    extraction::ExtractionOptions noprot_opts;
    noprot_opts.ioc_protection = false;
    extraction::ThreatBehaviorExtractor noprot(noprot_opts);
    Stopwatch sw;
    (void)noprot.Extract(c.oscti_text);
    double noprot_time = sw.ElapsedSeconds();

    sw.Restart();
    (void)openie::ClauseOpenIe().Extract(c.oscti_text);
    double stanford = sw.ElapsedSeconds();
    sw.Restart();
    (void)openie::PatternOpenIe().Extract(c.oscti_text);
    double openie5 = sw.ElapsedSeconds();

    double vals[6] = {r.value().timings.text_to_er_seconds,
                      r.value().timings.er_to_graph_seconds, graph_to_tbql,
                      noprot_time, stanford, openie5};
    for (int i = 0; i < 6; ++i) totals[i] += vals[i];
    ++n;
    report.Metric(c.id, "text_to_er_seconds", vals[0]);
    report.Metric(c.id, "er_to_graph_seconds", vals[1]);
    report.Metric(c.id, "graph_to_tbql_seconds", vals[2]);
    table.AddRow({c.id, StrFormat("%.4f", vals[0]), StrFormat("%.4f", vals[1]),
                  StrFormat("%.4f", vals[2]), StrFormat("%.4f", vals[3]),
                  StrFormat("%.4f", vals[4]), StrFormat("%.4f", vals[5])});
  }
  table.AddRow({"Total", StrFormat("%.4f", totals[0]),
                StrFormat("%.4f", totals[1]), StrFormat("%.4f", totals[2]),
                StrFormat("%.4f", totals[3]), StrFormat("%.4f", totals[4]),
                StrFormat("%.4f", totals[5])});
  table.AddRow({"Average", StrFormat("%.4f", totals[0] / n),
                StrFormat("%.4f", totals[1] / n),
                StrFormat("%.4f", totals[2] / n),
                StrFormat("%.4f", totals[3] / n),
                StrFormat("%.4f", totals[4] / n),
                StrFormat("%.4f", totals[5] / n)});
  table.Print();
  std::printf(
      "\nAll three ThreatRaptor stages together average %.4f s per report "
      "(paper: 0.52 s on a JVM/Python stack).\n",
      (totals[0] + totals[1] + totals[2]) / n);
  report.Metric("average", "pipeline_seconds",
                (totals[0] + totals[1] + totals[2]) / n);
  report.Write();
  return 0;
}
