// Shared helpers for the benchmark harnesses. Each bench binary regenerates
// one of the paper's tables (see DESIGN.md experiment index).
#pragma once

#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cases/cases.h"
#include "common/strings.h"
#include "threatraptor.h"

namespace raptor::bench {

/// Noise multiplier for query-execution benches: the paper's logs hold 55M
/// events; the default profiles are test-sized, so execution benches scale
/// the benign background up (override with BENCH_SCALE=<n>).
inline int NoiseScale(int def = 10) {
  const char* env = std::getenv("BENCH_SCALE");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return def;
}

/// Measurement rounds (paper: 20; override with BENCH_ROUNDS=<n>).
inline int Rounds(int def = 20) {
  const char* env = std::getenv("BENCH_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return def;
}

/// Build a ThreatRaptor instance loaded with a case's log, with the benign
/// noise scaled by `scale`.
inline std::unique_ptr<ThreatRaptor> LoadCase(const cases::AttackCase& c,
                                              int scale = 1) {
  cases::AttackCase scaled = c;
  scaled.benign.num_processes *= scale;
  auto tr = std::make_unique<ThreatRaptor>();
  Status st = tr->IngestSyscalls(cases::BuildCaseLog(scaled));
  if (!st.ok()) {
    std::fprintf(stderr, "failed to load case %s: %s\n", c.id.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  return tr;
}

inline std::string MeanStd(const std::vector<double>& xs) {
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.empty() ? 1 : xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.empty() ? 1 : xs.size();
  return StrFormat("%.4f ± %.4f", mean, std::sqrt(var));
}

}  // namespace raptor::bench
