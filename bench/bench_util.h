// Shared helpers for the benchmark harnesses. Each bench binary regenerates
// one of the paper's tables (see DESIGN.md experiment index) and emits a
// machine-readable BENCH_<name>.json via BenchReport, so CI can track the
// perf trajectory across commits.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "cases/cases.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "threatraptor.h"

namespace raptor::bench {

/// Noise multiplier for query-execution benches: the paper's logs hold 55M
/// events; the default profiles are test-sized, so execution benches scale
/// the benign background up (override with BENCH_SCALE=<n>).
inline int NoiseScale(int def = 10) {
  const char* env = std::getenv("BENCH_SCALE");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return def;
}

/// Measurement rounds (paper: 20; override with BENCH_ROUNDS=<n>).
inline int Rounds(int def = 20) {
  const char* env = std::getenv("BENCH_ROUNDS");
  if (env != nullptr) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return def;
}

/// Positive long long from the environment, or `def`.
inline long long EnvLong(const char* name, long long def) {
  const char* env = std::getenv(name);
  if (env != nullptr) {
    long long v = std::atoll(env);
    if (v > 0) return v;
  }
  return def;
}

/// Build a ThreatRaptor instance loaded with a case's log, with the benign
/// noise scaled by `scale`.
inline std::unique_ptr<ThreatRaptor> LoadCase(const cases::AttackCase& c,
                                              int scale = 1) {
  cases::AttackCase scaled = c;
  scaled.benign.num_processes *= scale;
  auto tr = std::make_unique<ThreatRaptor>();
  Status st = tr->IngestSyscalls(cases::BuildCaseLog(scaled));
  if (!st.ok()) {
    std::fprintf(stderr, "failed to load case %s: %s\n", c.id.c_str(),
                 st.ToString().c_str());
    std::exit(1);
  }
  return tr;
}

inline std::string MeanStd(const std::vector<double>& xs) {
  double mean = 0;
  for (double x : xs) mean += x;
  mean /= xs.empty() ? 1 : xs.size();
  double var = 0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= xs.empty() ? 1 : xs.size();
  return StrFormat("%.4f ± %.4f", mean, std::sqrt(var));
}

inline double Mean(const std::vector<double>& xs) {
  double m = 0;
  for (double x : xs) m += x;
  return xs.empty() ? 0 : m / xs.size();
}

/// Machine-readable benchmark output: collects workload parameters and
/// per-label metrics, then writes BENCH_<name>.json into the working
/// directory (override with BENCH_JSON_DIR). CI uploads these as artifacts.
class BenchReport {
 public:
  /// Bump when the JSON layout changes incompatibly.
  static constexpr int kSchemaVersion = 2;

  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Param(const std::string& key, const std::string& value) {
    params_.push_back("\"" + JsonEscape(key) + "\": \"" + JsonEscape(value) +
                      "\"");
  }
  void Param(const std::string& key, long long value) {
    params_.push_back("\"" + JsonEscape(key) +
                      "\": " + std::to_string(value));
  }
  void Param(const std::string& key, int value) {
    Param(key, static_cast<long long>(value));
  }

  /// One measurement: e.g. Metric("data_leak", "tbql_seconds", 0.0123).
  void Metric(const std::string& label, const std::string& metric,
              double value) {
    metrics_.push_back(StrFormat(
        "{\"label\": \"%s\", \"metric\": \"%s\", \"value\": %.9g}",
        JsonEscape(label).c_str(), JsonEscape(metric).c_str(), value));
  }

  /// Writes BENCH_<name>.json; returns false (with a note on stderr) on
  /// I/O failure so benches can keep their table output regardless.
  bool Write() const {
    std::string dir = ".";
    if (const char* env = std::getenv("BENCH_JSON_DIR")) dir = env;
    std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\n  \"bench\": \"" + JsonEscape(name_) + "\",\n";
    // Run provenance, separate from workload params: bench_compare.py
    // refuses to diff runs whose schema/build/pool configuration differ
    // (a Debug-vs-Release or 1-vs-8-thread comparison is meaningless).
    out += "  \"meta\": {\"schema_version\": " +
           std::to_string(kSchemaVersion) + ", \"build_type\": \"";
#ifdef NDEBUG
    out += "Release";
#else
    out += "Debug";
#endif
    out += "\", \"pool_threads\": " +
           std::to_string(ThreadPool::Shared().size()) + "},\n";
    out += "  \"params\": {";
    for (size_t i = 0; i < params_.size(); ++i) {
      out += (i > 0 ? ", " : "") + params_[i];
    }
    out += "},\n  \"metrics\": [\n";
    for (size_t i = 0; i < metrics_.size(); ++i) {
      out += "    " + metrics_[i] + (i + 1 < metrics_.size() ? ",\n" : "\n");
    }
    out += "  ]\n}\n";
    std::fwrite(out.data(), 1, out.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  static std::string JsonEscape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            out += StrFormat("\\u%04x", c);
          } else {
            out.push_back(c);
          }
      }
    }
    return out;
  }

  std::string name_;
  std::vector<std::string> params_;
  std::vector<std::string> metrics_;
};

}  // namespace raptor::bench
