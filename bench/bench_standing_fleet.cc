// Fleet-scale standing hunts: the full technique catalog stamped onto many
// tenants (100+ standing hunts), refreshed per ingest epoch, with the
// multi-query optimizer on versus off. Tenants share the catalog's query
// texts, so structural dedupe collapses each technique's refresh into one
// execution fanned out to every tenant, and the shared-subresult cache
// reuses data queries across techniques that overlap on a pattern. The
// headline metric is epochs/sec over the drain loop (ingest a batch, wait
// for every hunt to deliver that epoch); dedupe and shared-hit counters
// report how much work the optimizer removed. Emits
// BENCH_standing_fleet.json with mqo/naive keys tracked by the CI schema
// diff.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "huntlib/feed.h"
#include "service/hunt_service.h"
#include "storage/store.h"

using namespace raptor;

namespace {

/// One epoch's worth of fresh activity: `procs` new processes each reading
/// one fleet-shared file and writing one private file, plus a connect —
/// touches every technique's entity types without matching most filters.
audit::ParsedLog EpochBatch(int epoch, int procs) {
  audit::ParsedLog log;
  audit::Timestamp ts = 1'000'000LL * (epoch + 1);
  for (int i = 0; i < procs; ++i) {
    std::string tag = std::to_string(epoch) + "_" + std::to_string(i);
    audit::EntityId p =
        log.entities.InternProcess("/fleet/worker" + tag, 10'000 + i);
    audit::EntityId shared = log.entities.InternFile(
        "/fleet/data/shard" + std::to_string(i % 4) + ".db");
    audit::EntityId priv = log.entities.InternFile("/fleet/out/o" + tag);
    audit::EntityId net = log.entities.InternNetwork(
        "10.0.0.1", 40'000, "192.0.2." + std::to_string(i % 8), 443, "tcp");
    auto add = [&](audit::EntityId object, audit::EntityType type,
                   audit::EventOp op) {
      audit::SystemEvent ev;
      ev.id = log.events.size() + 1;
      ev.subject = p;
      ev.object = object;
      ev.object_type = type;
      ev.op = op;
      ev.start_time = ts;
      ev.end_time = ts + 10;
      ts += 100;
      log.events.push_back(ev);
    };
    add(shared, audit::EntityType::kFile, audit::EventOp::kRead);
    add(priv, audit::EntityType::kFile, audit::EventOp::kWrite);
    add(net, audit::EntityType::kNetwork, audit::EventOp::kConnect);
  }
  return log;
}

struct FleetResult {
  size_t hunts = 0;
  size_t epochs = 0;
  double wall_seconds = 0;
  service::HuntService::Stats stats;
};

FleetResult RunFleet(bool mqo, int tenants, int epochs, int procs_per_epoch) {
  storage::AuditStore store;
  if (!store.Load(audit::ParsedLog{}).ok()) std::exit(1);
  service::HuntServiceOptions opts;
  opts.mqo_dedup = mqo;
  opts.mqo_shared_subresults = mqo;
  service::HuntService service(&store, opts);

  // Full refreshes every epoch on both sides: the comparison isolates the
  // optimizer, not the incremental path.
  huntlib::HuntLibraryOptions lopts;
  lopts.standing.allow_incremental = false;
  huntlib::HuntLibrary library(lopts);
  FleetResult out;
  for (int t = 0; t < tenants; ++t) {
    out.hunts +=
        library.AttachCatalog(&service, "tenant-" + std::to_string(t));
  }

  auto ingest = [&](int epoch) {
    audit::ParsedLog batch = EpochBatch(epoch, procs_per_epoch);
    auto applied = service.Ingest([&](service::IngestReport* report) {
      storage::AppendStats stats;
      RAPTOR_RETURN_NOT_OK(store.Append(batch, &stats));
      report->touched_entities = std::move(stats.touched_entities);
      return Status::OK();
    });
    if (!applied.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   applied.status().ToString().c_str());
      std::exit(1);
    }
    for (const huntlib::HuntLibrary::Attachment& a : library.attachments()) {
      service::StandingHandle h = a.handle;
      if (!h.WaitEpoch(service.epoch(), 300'000'000)) {
        std::fprintf(stderr, "drain timed out: %s\n", a.spec.name.c_str());
        std::exit(1);
      }
    }
  };

  ingest(0);  // warmup: schemas hot, every hunt past its initial refresh
  auto start = std::chrono::steady_clock::now();
  for (int e = 1; e <= epochs; ++e) ingest(e);
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  out.epochs = static_cast<size_t>(epochs);
  out.stats = service.stats();
  library.DetachAll();
  return out;
}

void Report(bench::BenchReport& report, TablePrinter& table,
            const std::string& label, const FleetResult& r) {
  double eps = r.wall_seconds > 0 ? r.epochs / r.wall_seconds : 0;
  table.AddRow({label, std::to_string(r.hunts), std::to_string(r.epochs),
                StrFormat("%.3f", r.wall_seconds), StrFormat("%.2f", eps),
                std::to_string(r.stats.standing_refreshes),
                std::to_string(r.stats.standing_dedup_hits),
                std::to_string(r.stats.subresult_hits)});
  report.Metric(label, "epochs_per_sec", eps);
  report.Metric(label, "wall_seconds", r.wall_seconds);
  report.Metric(label, "hunts", static_cast<double>(r.hunts));
  report.Metric(label, "refreshes",
                static_cast<double>(r.stats.standing_refreshes));
  report.Metric(label, "dedup_hits",
                static_cast<double>(r.stats.standing_dedup_hits));
  report.Metric(label, "subresult_hits",
                static_cast<double>(r.stats.subresult_hits));
}

}  // namespace

int main() {
  int tenants = static_cast<int>(bench::EnvLong("BENCH_FLEET_TENANTS", 12));
  int epochs = static_cast<int>(bench::EnvLong("BENCH_FLEET_EPOCHS", 8));
  int procs = static_cast<int>(
      bench::EnvLong("BENCH_FLEET_PROCS_PER_EPOCH", 40));

  bench::BenchReport report("standing_fleet");
  report.Param("tenants", tenants);
  report.Param("techniques",
               static_cast<long long>(huntlib::AllTechniques().size()));
  report.Param("epochs", epochs);
  report.Param("procs_per_epoch", procs);

  TablePrinter table({"config", "hunts", "epochs", "wall_s", "epochs_per_s",
                      "refreshes", "dedup_hits", "subresult_hits"});
  FleetResult mqo = RunFleet(true, tenants, epochs, procs);
  FleetResult naive = RunFleet(false, tenants, epochs, procs);
  Report(report, table, "mqo", mqo);
  Report(report, table, "naive", naive);
  double speedup = naive.wall_seconds > 0 && mqo.wall_seconds > 0
                       ? naive.wall_seconds / mqo.wall_seconds
                       : 0;
  report.Metric("mqo", "speedup_vs_naive", speedup);
  table.Print();
  std::printf("mqo speedup vs naive: %.2fx\n", speedup);
  report.Write();
  return 0;
}
