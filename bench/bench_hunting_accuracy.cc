// Table VI (RQ2): per-case precision and recall of ThreatRaptor in finding
// the ground-truth malicious system events, end to end (OSCTI text ->
// extraction -> synthesis -> exact-mode execution).
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace raptor;

int main() {
  std::printf(
      "Table VI: precision and recall of ThreatRaptor in finding malicious "
      "system events\n\n");
  TablePrinter table({"Case", "Precision TP/(TP+FP)", "Recall TP/(TP+FN)"});
  bench::BenchReport report("hunting_accuracy");
  size_t tp = 0, fp = 0, fn = 0;
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c);
    auto outcome = tr->HuntWithOsctiText(c.oscti_text);
    if (!outcome.ok()) {
      table.AddRow({c.id, "error: " + outcome.status().ToString(), ""});
      continue;
    }
    auto gt = cases::GroundTruthEventIds(c, *tr->store());
    cases::PrScore score =
        cases::ScoreEvents(outcome.value().report.matched_event_ids, gt);
    tp += score.tp;
    fp += score.fp;
    fn += score.fn;
    report.Metric(c.id, "precision", score.precision());
    report.Metric(c.id, "recall", score.recall());
    table.AddRow({c.id,
                  StrFormat("%zu/%zu", score.tp, score.tp + score.fp),
                  StrFormat("%zu/%zu", score.tp, score.tp + score.fn)});
  }
  cases::PrScore total{tp, fp, fn};
  table.AddRow({"Total",
                StrFormat("%zu/%zu = %s", tp, tp + fp,
                          FormatPercent(total.precision()).c_str()),
                StrFormat("%zu/%zu = %s", tp, tp + fn,
                          FormatPercent(total.recall()).c_str())});
  table.Print();
  std::printf("\nF1 = %s\n", FormatPercent(total.f1()).c_str());
  report.Metric("total", "precision", total.precision());
  report.Metric("total", "recall", total.recall());
  report.Metric("total", "f1", total.f1());
  report.Write();
  return 0;
}
