// Table V (RQ1): precision / recall / F1 of IOC entity and IOC relation
// extraction, aggregated over all 18 cases, for ThreatRaptor, the
// no-IOC-Protection ablation, and the two Open IE baselines with and
// without IOC Protection.
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "nlp/pos.h"
#include "openie/openie.h"

using namespace raptor;

namespace {

struct Row {
  std::string name;
  cases::PrScore entity;
  cases::PrScore relation;
};

void ScoreOpenIe(const openie::OpenIeResult& res, const cases::AttackCase& c,
                 Row* row) {
  row->entity += cases::ScoreStrings(res.arguments, c.gt_iocs);
  std::vector<cases::GtRelation> rels;
  rels.reserve(res.triples.size());
  for (const openie::OpenTriple& t : res.triples) {
    rels.push_back({t.arg1, nlp::Lemma(t.relation, nlp::Pos::kVerb), t.arg2});
  }
  row->relation += cases::ScoreRelations(rels, c.gt_relations);
}

}  // namespace

int main() {
  Row rows[6];
  rows[0].name = "ThreatRaptor";
  rows[1].name = "ThreatRaptor - IOC Protection";
  rows[2].name = "Stanford Open IE (clause)";
  rows[3].name = "Stanford Open IE + IOC Protection";
  rows[4].name = "Open IE 5 (pattern)";
  rows[5].name = "Open IE 5 + IOC Protection";

  for (const cases::AttackCase& c : cases::AllCases()) {
    {
      extraction::ThreatBehaviorExtractor extractor;
      auto r = extractor.Extract(c.oscti_text);
      cases::PrScore e, rel;
      cases::ScoreExtraction(r.value(), c, &e, &rel);
      rows[0].entity += e;
      rows[0].relation += rel;
    }
    {
      extraction::ExtractionOptions opts;
      opts.ioc_protection = false;
      extraction::ThreatBehaviorExtractor extractor(opts);
      auto r = extractor.Extract(c.oscti_text);
      cases::PrScore e, rel;
      cases::ScoreExtraction(r.value(), c, &e, &rel);
      rows[1].entity += e;
      rows[1].relation += rel;
    }
    for (int prot = 0; prot < 2; ++prot) {
      openie::OpenIeOptions opts;
      opts.ioc_protection = prot != 0;
      ScoreOpenIe(openie::ClauseOpenIe(opts).Extract(c.oscti_text), c,
                  &rows[2 + prot]);
      ScoreOpenIe(openie::PatternOpenIe(opts).Extract(c.oscti_text), c,
                  &rows[4 + prot]);
    }
  }

  std::printf(
      "Table V: IOC entity & relation extraction accuracy "
      "(aggregated over all 18 cases)\n\n");
  TablePrinter table({"Approach", "Entity P", "Entity R", "Entity F1",
                      "Relation P", "Relation R", "Relation F1"});
  bench::BenchReport report("extraction_accuracy");
  for (const Row& r : rows) {
    table.AddRow({r.name, FormatPercent(r.entity.precision()),
                  FormatPercent(r.entity.recall()),
                  FormatPercent(r.entity.f1()),
                  FormatPercent(r.relation.precision()),
                  FormatPercent(r.relation.recall()),
                  FormatPercent(r.relation.f1())});
    report.Metric(r.name, "entity_f1", r.entity.f1());
    report.Metric(r.name, "relation_f1", r.relation.f1());
  }
  table.Print();
  report.Write();
  return 0;
}
