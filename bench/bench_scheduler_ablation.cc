// Scheduler ablation (design-choice callout in DESIGN.md): TBQL execution
// time with (a) full scheduling + constraint propagation, (b) textual
// pattern order + propagation, (c) scheduling without propagation, and
// (d) neither — isolating where the Sec III-F execution plan wins.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace raptor;

int main() {
  int scale = bench::NoiseScale();
  int rounds = bench::Rounds(5);
  std::printf(
      "Scheduler ablation: TBQL execution time (seconds, best of %d, noise "
      "scale %dx)\n\n",
      rounds, scale);
  TablePrinter table({"Case", "sched+prop", "order+prop", "sched only",
                      "naive"});
  bench::BenchReport report("scheduler_ablation");
  report.Param("scale", scale);
  report.Param("rounds", rounds);
  const char* kConfigNames[] = {"sched_prop", "order_prop", "sched_only",
                                "naive"};
  const struct {
    bool sched;
    bool prop;
  } kConfigs[] = {{true, true}, {false, true}, {true, false}, {false, false}};

  double totals[4] = {0, 0, 0, 0};
  for (const char* id : {"data_leak", "password_crack", "vpnfilter",
                         "tc_theia_2", "tc_trace_1"}) {
    const cases::AttackCase* c = cases::FindCase(id);
    auto tr = bench::LoadCase(*c, scale);
    auto ext = tr->ExtractBehaviorGraph(c->oscti_text);
    synthesis::QuerySynthesizer synthesizer;
    auto syn = synthesizer.Synthesize(ext.value().graph);
    engine::TbqlExecutor executor(tr->store());

    std::vector<std::string> row{c->id};
    for (int cfg = 0; cfg < 4; ++cfg) {
      engine::ExecOptions opts;
      opts.use_scheduler = kConfigs[cfg].sched;
      opts.propagate_constraints = kConfigs[cfg].prop;
      double best = 1e18;
      Stopwatch sw;
      for (int i = 0; i < rounds; ++i) {
        sw.Restart();
        (void)executor.Execute(syn.value().query, opts);
        best = std::min(best, sw.ElapsedSeconds());
      }
      totals[cfg] += best;
      row.push_back(StrFormat("%.4f", best));
      report.Metric(c->id, std::string(kConfigNames[cfg]) + "_seconds", best);
    }
    table.AddRow(std::move(row));
  }
  table.AddRow({"Total", StrFormat("%.4f", totals[0]),
                StrFormat("%.4f", totals[1]), StrFormat("%.4f", totals[2]),
                StrFormat("%.4f", totals[3])});
  table.Print();
  for (int cfg = 0; cfg < 4; ++cfg) {
    report.Metric("total", std::string(kConfigNames[cfg]) + "_seconds",
                  totals[cfg]);
  }
  report.Write();
  std::printf(
      "\nConstraint propagation is the dominant win (it turns later data "
      "queries into index probes); pruning-score scheduling decides which "
      "pattern pays the initial scan.\n");
  return 0;
}
