// Table IX (RQ4): execution time of ThreatRaptor's fuzzy search mode
// (exhaustive Poirot-style alignment) versus Poirot (first acceptable
// alignment), split into loading / preprocessing / searching time.
#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"

using namespace raptor;

int main() {
  int scale = bench::NoiseScale(4);
  std::printf(
      "Table IX: fuzzy search mode vs Poirot, execution time in seconds "
      "(noise scale %dx)\n\n",
      scale);
  TablePrinter table({"Case", "Fuzzy load", "Fuzzy preproc", "Fuzzy search",
                      "Fuzzy total", "Poirot load", "Poirot preproc",
                      "Poirot search", "Poirot total", "Alignments"});
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c, scale);
    auto ext = tr->ExtractBehaviorGraph(c.oscti_text);
    auto syn = tr->SynthesizeQuery(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error"});
      continue;
    }
    const tbql::TbqlQuery& query = syn.value().query;

    engine::FuzzyOptions fuzzy_opts;
    fuzzy_opts.exhaustive = true;  // ThreatRaptor-Fuzzy
    auto fuzzy = tr->HuntFuzzy(syn.value().tbql_text, fuzzy_opts);

    engine::FuzzyOptions poirot_opts;
    poirot_opts.exhaustive = false;  // Poirot: first acceptable alignment
    engine::FuzzyMatcher matcher(tr->store());
    auto poirot = matcher.Search(query, poirot_opts);

    if (!fuzzy.ok() || !poirot.ok()) {
      table.AddRow({c.id, "error"});
      continue;
    }
    const auto& ft = fuzzy.value().timings;
    const auto& pt = poirot.value().timings;
    std::string fuzzy_search =
        fuzzy.value().timed_out ? ">" + FormatSeconds(ft.searching_seconds)
                                : FormatSeconds(ft.searching_seconds);
    table.AddRow({c.id, FormatSeconds(ft.loading_seconds),
                  FormatSeconds(ft.preprocessing_seconds),
                  fuzzy_search,
                  FormatSeconds(ft.total()),
                  FormatSeconds(pt.loading_seconds),
                  FormatSeconds(pt.preprocessing_seconds),
                  FormatSeconds(pt.searching_seconds),
                  FormatSeconds(pt.total()),
                  StrFormat("%zu/%zu", fuzzy.value().alignments.size(),
                            poirot.value().alignments.size())});
  }
  table.Print();
  std::printf(
      "\nThreatRaptor-Fuzzy additionally performs an exhaustive alignment "
      "search, so it generally runs at least as long as Poirot; both are "
      "far slower than the exact search mode (Table VIII).\n");
  return 0;
}
