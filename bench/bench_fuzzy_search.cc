// Table IX (RQ4): execution time of ThreatRaptor's fuzzy search mode
// (exhaustive Poirot-style alignment) versus Poirot (first acceptable
// alignment), split into loading / preprocessing / searching time.
//
// A second section measures the graph-backend primitive fuzzy alignment
// leans on — variable-length path expansion — on a synthetic large
// provenance graph (BENCH_LARGE_NODES / BENCH_LARGE_EDGES, default
// 100k/500k), comparing the per-type adjacency groups against the legacy
// full-edge-list scan.
#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "tests/fixtures/synthetic_graph.h"

using namespace raptor;

namespace {

/// Variable-length typed expansion on a synthetic large graph: the DFS the
/// matcher runs for `-[*1..3]->` patterns, where the per-type groups prune
/// every hop of the expansion rather than just the final edge filter.
void RunLargeGraphVarlenWorkload(bench::BenchReport* report) {
  fixtures::SyntheticGraphSpec spec;
  // >= 2 so both node populations are non-empty (Rng::Uniform needs n > 0).
  spec.nodes = std::max(2LL, bench::EnvLong("BENCH_LARGE_NODES", 100'000));
  spec.edges = bench::EnvLong("BENCH_LARGE_EDGES", 500'000);
  // A small population of seed processes over a large entity pool, so the
  // measurement is dominated by the DFS expansion work, not seed scanning.
  // Clamped so tiny BENCH_LARGE_NODES overrides still leave file nodes.
  spec.proc_count = std::min(1000LL, spec.nodes / 2);
  spec.global_name_index = true;  // one "/n<i>" namespace over all nodes
  spec.file_prop = "name";
  spec.file_prefix = "/n";
  spec.edges_proc_to_file = false;  // uniform src/dst over all nodes

  std::printf(
      "\nLarge-graph variable-length expansion: %lld nodes, %lld edges, %d "
      "edge types\n",
      spec.nodes, spec.edges, spec.edge_types);

  graphdb::GraphDatabase db;
  Rng rng(7);
  fixtures::SyntheticGraph sg =
      fixtures::BuildSyntheticGraph(db.graph(), spec, rng);

  // Typed variable-length expansion (the per-type groups prune every hop
  // of the DFS; an untyped `*1..3` would scan the full adjacency anyway)
  // combined with a propagated-id-sized IN filter on the endpoint, which
  // the matcher evaluates for every admissible node the DFS reaches.
  const int n_in_list = 2048;
  std::string query = "MATCH (p:proc)-[:op3*1..3]->(f:file) WHERE f.name IN [" +
                      fixtures::RandomFileNameInList(spec, sg, rng, n_in_list) +
                      "] RETURN DISTINCT f.name";

  int rounds = bench::Rounds(5);
  auto measure = [&](bool typed) {
    db.options().typed_adjacency = typed;
    db.options().hashed_in_lists = typed;
    std::vector<double> times;
    size_t rows = 0, edges_traversed = 0;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      rows = rs.value().rows.size();
      edges_traversed = stats.edges_traversed;
    }
    std::printf(
        "  typed_adjacency=%d hashed_in_lists=%d: %s s (%zu rows, %zu edges "
        "traversed)\n",
        typed, typed, bench::MeanStd(times).c_str(), rows, edges_traversed);
    return bench::Mean(times);
  };

  double fast = measure(/*typed=*/true);
  double legacy = measure(/*typed=*/false);
  db.options().typed_adjacency = true;
  db.options().hashed_in_lists = true;
  double speedup = fast > 0 ? legacy / fast : 0;
  std::printf("  speedup (legacy / typed+hashed): %.1fx\n", speedup);

  report->Param("large_nodes", spec.nodes);
  report->Param("large_edges", spec.edges);
  report->Param("large_in_list", n_in_list);
  report->Metric("varlen_expansion", "typed_seconds", fast);
  report->Metric("varlen_expansion", "legacy_seconds", legacy);
  report->Metric("varlen_expansion", "speedup", speedup);
}

}  // namespace

int main() {
  int scale = bench::NoiseScale(4);
  bench::BenchReport report("fuzzy_search");
  report.Param("scale", scale);
  std::printf(
      "Table IX: fuzzy search mode vs Poirot, execution time in seconds "
      "(noise scale %dx)\n\n",
      scale);
  TablePrinter table({"Case", "Fuzzy load", "Fuzzy preproc", "Fuzzy search",
                      "Fuzzy total", "Poirot load", "Poirot preproc",
                      "Poirot search", "Poirot total", "Alignments"});
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c, scale);
    auto ext = tr->ExtractBehaviorGraph(c.oscti_text);
    auto syn = tr->SynthesizeQuery(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error"});
      continue;
    }
    const tbql::TbqlQuery& query = syn.value().query;

    engine::FuzzyOptions fuzzy_opts;
    fuzzy_opts.exhaustive = true;  // ThreatRaptor-Fuzzy
    auto fuzzy = tr->HuntFuzzy(syn.value().tbql_text, fuzzy_opts);

    engine::FuzzyOptions poirot_opts;
    poirot_opts.exhaustive = false;  // Poirot: first acceptable alignment
    engine::FuzzyMatcher matcher(tr->store());
    auto poirot = matcher.Search(query, poirot_opts);

    if (!fuzzy.ok() || !poirot.ok()) {
      table.AddRow({c.id, "error"});
      continue;
    }
    const auto& ft = fuzzy.value().timings;
    const auto& pt = poirot.value().timings;
    std::string fuzzy_search = FormatSeconds(ft.searching_seconds);
    if (fuzzy.value().timed_out) fuzzy_search.insert(0, ">");
    report.Metric(c.id, "fuzzy_total_seconds", ft.total());
    report.Metric(c.id, "poirot_total_seconds", pt.total());
    table.AddRow({c.id, FormatSeconds(ft.loading_seconds),
                  FormatSeconds(ft.preprocessing_seconds),
                  fuzzy_search,
                  FormatSeconds(ft.total()),
                  FormatSeconds(pt.loading_seconds),
                  FormatSeconds(pt.preprocessing_seconds),
                  FormatSeconds(pt.searching_seconds),
                  FormatSeconds(pt.total()),
                  StrFormat("%zu/%zu", fuzzy.value().alignments.size(),
                            poirot.value().alignments.size())});
  }
  table.Print();
  std::printf(
      "\nThreatRaptor-Fuzzy additionally performs an exhaustive alignment "
      "search, so it generally runs at least as long as Poirot; both are "
      "far slower than the exact search mode (Table VIII).\n");

  RunLargeGraphVarlenWorkload(&report);
  report.Write();
  return 0;
}
