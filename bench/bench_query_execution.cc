// Table VIII (RQ4): execution time of the four semantically equivalent
// query types per case —
//   (a) TBQL (event patterns, scheduled, relational backend)
//   (b) one giant SQL query (all joins/constraints woven together)
//   (c) TBQL in length-1 event path syntax (scheduled, graph backend)
//   (d) one giant Cypher query
// Each query runs BENCH_ROUNDS rounds (default 20) on a log scaled by
// BENCH_SCALE (default 10x the test profile).
//
// A second section measures the indexed/interned graph hot path on the
// shared synthetic large provenance graph fixture (BENCH_LARGE_NODES nodes
// / BENCH_LARGE_EDGES edges, default 100k/500k): typed expansion through
// the per-type adjacency groups plus hashed IN-list probing, versus the
// legacy full-edge-scan + linear IN-scan code path (MatchOptions toggles).
// A third section measures LIMIT/DISTINCT pushdown on the same graph:
// streaming early-exit versus the legacy materialize-then-truncate path.
// A fourth section measures shard-parallel execution on both backends:
// whole-graph Cypher matching and SQL scans/joins fanned out over the
// storage shards versus the forced-serial path, plus the LIMIT 1 guard
// (small pushed limits must bypass the fan-out and stay on the serial
// fast path). It also covers the columnar scan representation (frozen
// dictionary-encoded columns vs the legacy PropertyMap row path, on both
// backends), the morsel work-stealing scheduler versus the static
// one-worker-per-shard fan-out — including a deliberately skewed graph
// where one shard holds ~half the expansion work — and the zero-copy
// merge counters of DISTINCT queries (partition adoption; any per-row
// push fails the bench).
// A fifth section measures inter-query concurrency: N identical TBQL
// hunts submitted through service::HuntService at 1/2/4 in-flight
// (throughput in hunts/sec), plus the zero-copy merge counters of a
// shard-parallel Cypher block query (adopted vs pushed rows; a non-zero
// pushed count on the non-DISTINCT workload fails the bench).
// A sixth section measures continuous hunting: a simulated live stream
// ingested batch by batch through the epoch gate with standing hunts
// attached (batches/sec, records/sec), and the per-refresh cost of the
// dirty-seeded incremental path versus a full re-scan.
// A seventh section measures durability: the same pre-collected batch
// sequence ingested in-memory versus through the write-ahead log
// (overhead ratio), plus checkpoint and crash-restore throughput in
// MB/s and entities/s against a temporary data directory.
// An eighth section measures tracing overhead: the same TBQL hunt run
// through the HuntService with profiling off versus on. The off path must
// stay within noise of the untraced baseline (a single branch per hunt);
// the on path builds the full span tree and is guarded against runaway
// overhead (BENCH_TRACE_MAX_OVERHEAD_X, default 5x).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "obs/trace.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "service/hunt_service.h"
#include "stream/event_stream.h"
#include "stream/ingestor.h"
#include "tests/fixtures/synthetic_graph.h"

using namespace raptor;

namespace {

/// LIMIT/DISTINCT pushdown on the fixture graph: the streaming pipeline
/// stops seed iteration once LIMIT rows exist, while the legacy path
/// materializes every binding and truncates at the end.
void RunLimitPushdownWorkload(graphdb::GraphDatabase& db,
                              bench::BenchReport* report) {
  struct Workload {
    const char* key;
    std::string query;
  };
  const Workload workloads[] = {
      {"limit1",
       "MATCH (p:proc)-[e:op7]->(f:file) RETURN p.exename, f.name LIMIT 1"},
      {"limit10",
       "MATCH (p:proc)-[e:op7]->(f:file) RETURN p.exename, f.name LIMIT 10"},
      {"distinct_limit10",
       "MATCH (p:proc)-[e:op3]->(f:file) RETURN DISTINCT p.exename LIMIT 10"},
  };
  std::printf("\nLIMIT/DISTINCT pushdown (streaming vs legacy):\n");

  int rounds = bench::Rounds(5);
  auto measure = [&](const std::string& query, bool streaming,
                     size_t* seeds_out) {
    db.options().push_limit = streaming;
    db.options().streaming_distinct = streaming;
    db.options().binding_frames = streaming;
    // Serial on both sides: this workload isolates the streaming pushdown
    // (RunParallelMatchWorkload measures the shard fan-out).
    db.options().parallel_shards = 1;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      *seeds_out = stats.seed_candidates;
    }
    return bench::Mean(times);
  };

  for (const Workload& w : workloads) {
    size_t streaming_seeds = 0, legacy_seeds = 0;
    double streaming = measure(w.query, /*streaming=*/true, &streaming_seeds);
    double legacy = measure(w.query, /*streaming=*/false, &legacy_seeds);
    double speedup = streaming > 0 ? legacy / streaming : 0;
    std::printf(
        "  %s: streaming %.6f s (%zu seeds visited), legacy %.6f s "
        "(%zu seeds visited), speedup %.1fx\n",
        w.key, streaming, streaming_seeds, legacy, legacy_seeds, speedup);
    report->Metric("limit_pushdown",
                   std::string(w.key) + "_streaming_seconds", streaming);
    report->Metric("limit_pushdown", std::string(w.key) + "_legacy_seconds",
                   legacy);
    report->Metric("limit_pushdown", std::string(w.key) + "_speedup", speedup);
    report->Metric("limit_pushdown",
                   std::string(w.key) + "_streaming_seeds",
                   static_cast<double>(streaming_seeds));
    report->Metric("limit_pushdown", std::string(w.key) + "_legacy_seeds",
                   static_cast<double>(legacy_seeds));
  }
  db.options() = graphdb::MatchOptions{};
}

/// Shard-parallel matching vs the serial path on the same fixture graph
/// (the facade shards storage 4 ways by default): one whole-graph match
/// that fans seed iteration out over the worker pool, and a LIMIT 1 probe
/// that must stay on the serial early-exit fast path (parallel_min_limit),
/// whose ratio to the forced-serial run should therefore stay ~1.
void RunParallelMatchWorkload(graphdb::GraphDatabase& db,
                              bench::BenchReport* report) {
  std::printf("\nShard-parallel Cypher (serial vs %zu shards, pool %zu):\n",
              db.graph().shard_count(), ThreadPool::Shared().size());

  int rounds = bench::Rounds(5);
  auto measure = [&](const std::string& query, int shards, size_t* rows_out) {
    db.options() = graphdb::MatchOptions{};
    db.options().parallel_shards = shards;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      timer.Restart();
      auto rs = db.Query(query);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      *rows_out = rs.value().rows.size();
    }
    return bench::Mean(times);
  };

  const std::string full_query =
      "MATCH (p:proc)-[e:op7]->(f:file) WHERE f.name CONTAINS '9' "
      "RETURN p.exename, f.name";
  size_t rows_serial = 0, rows_sharded = 0;
  double serial = measure(full_query, /*shards=*/1, &rows_serial);
  double sharded = measure(full_query, /*shards=*/4, &rows_sharded);
  double speedup = sharded > 0 ? serial / sharded : 0;
  std::printf(
      "  parallel_match: serial %.6f s, sharded %.6f s (%zu rows), "
      "speedup %.2fx\n",
      serial, sharded, rows_sharded, speedup);
  if (rows_serial != rows_sharded) {
    std::fprintf(stderr, "row count mismatch: %zu vs %zu\n", rows_serial,
                 rows_sharded);
    std::exit(1);
  }
  report->Metric("parallel", "match_serial_seconds", serial);
  report->Metric("parallel", "match_sharded_seconds", sharded);
  report->Metric("parallel", "match_speedup", speedup);

  const std::string limit1_query =
      "MATCH (p:proc)-[e:op7]->(f:file) RETURN p.exename, f.name LIMIT 1";
  size_t rows = 0;
  double l1_serial = measure(limit1_query, /*shards=*/1, &rows);
  double l1_default = measure(limit1_query, /*shards=*/4, &rows);
  double ratio = l1_serial > 0 ? l1_default / l1_serial : 0;
  std::printf(
      "  parallel_match_limit1: serial %.6f s, default %.6f s, "
      "ratio %.2fx (must stay near 1: small limits bypass the fan-out)\n",
      l1_serial, l1_default, ratio);
  report->Metric("parallel", "match_limit1_serial_seconds", l1_serial);
  report->Metric("parallel", "match_limit1_default_seconds", l1_default);
  report->Metric("parallel", "match_limit1_ratio", ratio);

  // Zero-copy merge counters: the sharded non-DISTINCT run must adopt
  // every worker block wholesale — any individually pushed row means the
  // merge regressed to per-row moves.
  db.options() = graphdb::MatchOptions{};
  db.options().parallel_shards = 4;
  auto blocks = db.QueryBlocks(full_query);
  if (!blocks.ok()) {
    std::fprintf(stderr, "block query failed: %s\n",
                 blocks.status().ToString().c_str());
    std::exit(1);
  }
  size_t adopted = blocks.value().rows.adopted_rows();
  size_t pushed = blocks.value().rows.pushed_rows();
  std::printf(
      "  zero_copy_merge: %zu rows adopted in %zu blocks, %zu pushed\n",
      adopted, blocks.value().rows.block_count(), pushed);
  if (pushed != 0) {
    std::fprintf(stderr,
                 "zero-copy merge regression: %zu rows moved row-by-row\n",
                 pushed);
    std::exit(1);
  }
  report->Metric("zero_copy", "match_adopted_rows",
                 static_cast<double>(adopted));
  report->Metric("zero_copy", "match_pushed_rows",
                 static_cast<double>(pushed));
  report->Metric("zero_copy", "match_blocks",
                 static_cast<double>(blocks.value().rows.block_count()));

  // DISTINCT merges must stay zero-copy too: hash-partitioned seen-sets
  // let the merge adopt whole per-partition vectors instead of re-checking
  // and pushing rows one by one (the pre-partitioned behavior).
  db.options() = graphdb::MatchOptions{};
  db.options().parallel_shards = 4;
  auto dblocks = db.QueryBlocks(
      "MATCH (p:proc)-[e:op3]->(f:file) RETURN DISTINCT p.exename");
  if (!dblocks.ok()) {
    std::fprintf(stderr, "distinct block query failed: %s\n",
                 dblocks.status().ToString().c_str());
    std::exit(1);
  }
  size_t d_adopted = dblocks.value().rows.adopted_rows();
  size_t d_pushed = dblocks.value().rows.pushed_rows();
  std::printf("  zero_copy_distinct: %zu rows adopted in %zu blocks, %zu "
              "pushed\n",
              d_adopted, dblocks.value().rows.block_count(), d_pushed);
  if (d_pushed != 0 || d_adopted == 0) {
    std::fprintf(stderr,
                 "distinct zero-copy merge regression: %zu adopted, %zu "
                 "pushed row-by-row\n",
                 d_adopted, d_pushed);
    std::exit(1);
  }
  report->Metric("zero_copy", "distinct_adopted_rows",
                 static_cast<double>(d_adopted));
  report->Metric("zero_copy", "distinct_pushed_rows",
                 static_cast<double>(d_pushed));
  db.options() = graphdb::MatchOptions{};
}

/// Morsel work-stealing vs the static one-worker-per-shard fan-out on a
/// deliberately skewed graph: half the edge draws pin their source to the
/// hot subset (ids ≡ 0 mod shard count, i.e. one storage shard), so the
/// static schedule's wall clock is the straggler shard while the other
/// workers idle; the morsel scheduler splits that shard's seed list into
/// stealable chunks. On the 1-core dev container both report ~1x — the
/// speedup (and a non-zero stolen count) shows on CI's multicore runners.
void RunSkewedMorselWorkload(bench::BenchReport* report) {
  fixtures::SyntheticGraphSpec spec;
  spec.nodes = std::max(2LL, bench::EnvLong("BENCH_LARGE_NODES", 100'000));
  spec.edges = bench::EnvLong("BENCH_LARGE_EDGES", 500'000);
  graphdb::GraphDatabase db;
  spec.skew_hot_fraction = 0.5;
  spec.skew_modulus = static_cast<int>(db.graph().shard_count());
  Rng rng(4242);
  fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  std::printf(
      "\nSkewed-shard morsel stealing: %lld nodes, %lld edges, %.0f%% of "
      "edge sources pinned to 1 of %zu shards (pool %zu):\n",
      spec.nodes, spec.edges, spec.skew_hot_fraction * 100,
      db.graph().shard_count(), ThreadPool::Shared().size());

  const std::string query =
      "MATCH (p:proc)-[e:op7]->(f:file) WHERE f.name CONTAINS '9' "
      "RETURN p.exename, f.name";
  int rounds = bench::Rounds(5);
  auto measure = [&](int shards, bool morsel, graphdb::GraphResultSet* out,
                     graphdb::MatchStats* stats_out) {
    db.options() = graphdb::MatchOptions{};
    db.options().parallel_shards = shards;
    db.options().morsel_scheduling = morsel;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      *out = std::move(rs.value());
      *stats_out = stats;
    }
    return bench::Mean(times);
  };

  graphdb::GraphResultSet rs_serial, rs_static, rs_morsel;
  graphdb::MatchStats st_serial, st_static, st_morsel;
  double serial = measure(1, false, &rs_serial, &st_serial);
  double per_shard = measure(4, false, &rs_static, &st_static);
  double morsel = measure(4, true, &rs_morsel, &st_morsel);
  if (rs_static.rows != rs_serial.rows || rs_morsel.rows != rs_serial.rows) {
    std::fprintf(stderr, "skewed workload: schedules disagree on rows\n");
    std::exit(1);
  }
  double vs_static = morsel > 0 ? per_shard / morsel : 0;
  double vs_serial = morsel > 0 ? serial / morsel : 0;
  std::printf(
      "  skewed_match: serial %.6f s, per-shard %.6f s, morsel %.6f s "
      "(%zu rows; %zu morsels, %zu stolen)\n"
      "  morsel speedup: %.2fx vs per-shard, %.2fx vs serial\n",
      serial, per_shard, morsel, rs_morsel.rows.size(),
      st_morsel.morsels_executed, st_morsel.morsels_stolen, vs_static,
      vs_serial);
  report->Param("skew_hot_percent",
                static_cast<long long>(spec.skew_hot_fraction * 100));
  report->Metric("skewed", "match_serial_seconds", serial);
  report->Metric("skewed", "match_per_shard_seconds", per_shard);
  report->Metric("skewed", "match_morsel_seconds", morsel);
  report->Metric("skewed", "morsel_vs_per_shard_speedup", vs_static);
  report->Metric("skewed", "morsel_vs_serial_speedup", vs_serial);
  report->Metric("skewed", "morsels_executed",
                 static_cast<double>(st_morsel.morsels_executed));
  report->Metric("skewed", "morsels_stolen",
                 static_cast<double>(st_morsel.morsels_stolen));
}

/// Inter-query concurrency: identical TBQL hunts pushed through the
/// HuntService at increasing admission widths. On multicore hardware
/// throughput should scale with the width until the shared pool
/// saturates; the 1-core dev container reports ~1x (see CI artifacts).
void RunConcurrentHuntWorkload(bench::BenchReport* report) {
  const cases::AttackCase* c = cases::FindCase("data_leak");
  if (c == nullptr) {
    std::fprintf(stderr, "data_leak case missing\n");
    std::exit(1);
  }
  auto tr = bench::LoadCase(*c, bench::NoiseScale());
  const std::string query = "proc p read || write file f return p, f";
  const int hunts =
      static_cast<int>(bench::EnvLong("BENCH_CONCURRENT_HUNTS", 12));
  std::printf("\nConcurrent hunts (%d x \"%s\", store %zu events):\n", hunts,
              query.c_str(), tr->store()->event_count());
  double qps_by_width[3] = {0, 0, 0};
  const size_t widths[3] = {1, 2, 4};
  for (int w = 0; w < 3; ++w) {
    service::HuntServiceOptions opts;
    opts.max_concurrent = widths[w];
    service::HuntService service(tr->store(), opts);
    Stopwatch timer;
    std::vector<service::HuntTicket> tickets;
    tickets.reserve(hunts);
    for (int i = 0; i < hunts; ++i) {
      service::HuntRequest request;
      request.text = query;
      tickets.push_back(service.Submit(std::move(request)));
    }
    size_t rows = 0;
    for (service::HuntTicket& t : tickets) {
      if (!t.Wait().ok()) {
        std::fprintf(stderr, "hunt failed: %s\n",
                     t.status().ToString().c_str());
        std::exit(1);
      }
      rows = t.response().report.results.rows.size();
    }
    double seconds = timer.ElapsedSeconds();
    qps_by_width[w] = seconds > 0 ? hunts / seconds : 0;
    std::printf(
        "  in_flight=%zu: %.3f s total, %.1f hunts/s (%zu rows each)\n",
        widths[w], seconds, qps_by_width[w], rows);
    report->Metric("concurrent",
                   "qps_inflight" + std::to_string(widths[w]),
                   qps_by_width[w]);
  }
  report->Metric("concurrent", "speedup_4v1",
                 qps_by_width[0] > 0 ? qps_by_width[2] / qps_by_width[0] : 0);
}

/// Continuous hunting: a simulated live stream ingested batch by batch
/// through the epoch gate with standing hunts attached. Reports ingest
/// throughput (with refreshes riding along) and the per-refresh cost of
/// the dirty-seeded incremental path vs a forced full re-scan of the
/// same query — the standing-hunt delta win.
void RunStreamingWorkload(bench::BenchReport* report) {
  stream::SimulatorSourceOptions feed;
  long long scale = bench::EnvLong("BENCH_SCALE", 10);
  feed.profile.num_users = 8;
  feed.profile.num_processes = static_cast<int>(40 * scale);
  feed.profile.mean_records_per_process = 30;
  feed.profile.duration = 60LL * 60 * 1000 * 1000;
  feed.batch_window_us = 2LL * 60 * 1000 * 1000;  // 2-minute batches
  stream::SimulatorSource source(feed);

  ThreatRaptorOptions options;
  options.store.carry_over_window = true;
  ThreatRaptor tr(options);
  if (!tr.IngestSyscalls({}).ok()) {
    std::fprintf(stderr, "stream bootstrap failed\n");
    std::exit(1);
  }
  service::HuntService* service = tr.hunt_service();

  // Two standing hunts over the same query: one allowed the dirty-seeded
  // incremental path, one forced to re-scan fully every epoch.
  struct RefreshCost {
    std::mutex mu;
    double seconds = 0;
    size_t refreshes = 0;
    size_t incremental = 0;
    size_t rows = 0;
  };
  RefreshCost inc_cost, full_cost;
  auto make_sink = [](RefreshCost* cost) {
    service::StandingSink sink;
    sink.on_update = [cost](const service::StandingUpdate& update) {
      std::lock_guard<std::mutex> lock(cost->mu);
      cost->seconds += update.seconds;
      ++cost->refreshes;
      if (update.incremental) ++cost->incremental;
      cost->rows = update.total_rows;
    };
    return sink;
  };
  service::HuntRequest standing;
  standing.dialect = service::QueryDialect::kCypher;
  standing.text =
      "MATCH (p:proc)-[e:read]->(f:file) RETURN p.exename, f.name";
  service::StandingOptions inc_opts;
  inc_opts.max_dirty_fraction = 1.0;
  auto inc_handle =
      service->SubmitStanding(standing, make_sink(&inc_cost), inc_opts);
  service::StandingOptions full_opts;
  full_opts.allow_incremental = false;
  auto full_handle =
      service->SubmitStanding(standing, make_sink(&full_cost), full_opts);

  // Stream everything; refresh between batches so both subscriptions pay
  // one refresh per epoch (coalescing would hide the per-refresh cost).
  Stopwatch timer;
  size_t batches = 0;
  size_t records = 0;
  for (;;) {
    auto batch = source.Poll();
    if (!batch.ok()) {
      std::fprintf(stderr, "poll failed: %s\n",
                   batch.status().ToString().c_str());
      std::exit(1);
    }
    if (!batch.value().records.empty()) {
      ++batches;
      records += batch.value().records.size();
      if (!tr.IngestSyscalls(batch.value().records).ok()) {
        std::fprintf(stderr, "stream ingest failed\n");
        std::exit(1);
      }
      inc_handle.WaitEpoch(service->epoch());
      full_handle.WaitEpoch(service->epoch());
    }
    if (batch.value().end_of_stream) break;
  }
  if (!tr.FlushIngest().ok()) std::exit(1);
  inc_handle.WaitEpoch(service->epoch());
  full_handle.WaitEpoch(service->epoch());
  double seconds = timer.ElapsedSeconds();

  std::lock_guard<std::mutex> li(inc_cost.mu);
  std::lock_guard<std::mutex> lf(full_cost.mu);
  if (inc_cost.rows != full_cost.rows || inc_cost.incremental == 0) {
    std::fprintf(stderr,
                 "standing differential broke: inc %zu rows (%zu "
                 "incremental refreshes) vs full %zu rows\n",
                 inc_cost.rows, inc_cost.incremental, full_cost.rows);
    std::exit(1);
  }
  double inc_per = inc_cost.seconds / inc_cost.refreshes;
  double full_per = full_cost.seconds / full_cost.refreshes;
  std::printf(
      "\nStreaming ingest (2 standing hunts attached, carry-over window):\n"
      "  %zu batches / %zu records in %.3f s -> %.1f batches/s, %.0f "
      "records/s\n"
      "  store: %zu events after reduction; %llu epochs\n"
      "  refresh cost: incremental %.3f ms vs full re-scan %.3f ms "
      "(%.1fx; %zu/%zu refreshes dirty-seeded)\n",
      batches, records, seconds, batches / seconds, records / seconds,
      tr.store()->event_count(),
      static_cast<unsigned long long>(service->epoch()), inc_per * 1e3,
      full_per * 1e3, inc_per > 0 ? full_per / inc_per : 0,
      inc_cost.incremental, inc_cost.refreshes);
  report->Metric("streaming", "ingest_batches_per_sec", batches / seconds);
  report->Metric("streaming", "ingest_records_per_sec", records / seconds);
  report->Metric("streaming", "standing_refreshes",
                 static_cast<double>(inc_cost.refreshes));
  report->Metric("streaming", "incremental_refreshes",
                 static_cast<double>(inc_cost.incremental));
  report->Metric("streaming", "incremental_refresh_seconds", inc_per);
  report->Metric("streaming", "full_refresh_seconds", full_per);
  report->Metric("streaming", "incremental_vs_full_speedup",
                 inc_per > 0 ? full_per / inc_per : 0);
}

/// Durability: the same pre-collected batch sequence ingested with the
/// write-ahead log on versus purely in-memory (overhead ratio), then a
/// full checkpoint and a crash-restore (Open after dropping the facade
/// without Close), each reported as MB/s over the snapshot bytes and
/// entities/s over the recovered entity+event population.
void RunDurabilityWorkload(bench::BenchReport* report) {
  long long scale = bench::EnvLong("BENCH_SCALE", 10);
  stream::SimulatorSourceOptions feed;
  feed.profile.num_users = 8;
  feed.profile.num_processes = static_cast<int>(40 * scale);
  feed.profile.mean_records_per_process = 30;
  feed.profile.duration = 60LL * 60 * 1000 * 1000;
  feed.batch_window_us = 2LL * 60 * 1000 * 1000;  // 2-minute batches
  stream::SimulatorSource source(feed);
  std::vector<std::vector<audit::SyscallRecord>> batches;
  size_t records = 0;
  for (;;) {
    auto batch = source.Poll();
    if (!batch.ok()) {
      std::fprintf(stderr, "poll failed: %s\n",
                   batch.status().ToString().c_str());
      std::exit(1);
    }
    if (!batch.value().records.empty()) {
      records += batch.value().records.size();
      batches.push_back(std::move(batch.value().records));
    }
    if (batch.value().end_of_stream) break;
  }

  // Baseline: identical batches into a plain in-memory facade.
  Stopwatch memory_timer;
  ThreatRaptor memory_tr;
  for (const auto& batch : batches) {
    if (!memory_tr.IngestSyscalls(batch).ok()) std::exit(1);
  }
  if (!memory_tr.FlushIngest().ok()) std::exit(1);
  double memory_seconds = memory_timer.ElapsedSeconds();

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "raptor_bench_durable";
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  persist::DurabilityOptions durability;
  durability.data_dir = dir.string();

  // Same batches with every mutation framed into the WAL first.
  Stopwatch wal_timer;
  auto durable = ThreatRaptor::Open(durability);
  if (!durable.ok()) {
    std::fprintf(stderr, "durable open failed: %s\n",
                 durable.status().ToString().c_str());
    std::exit(1);
  }
  ThreatRaptor* tr = durable.value().get();
  for (const auto& batch : batches) {
    if (!tr->IngestSyscalls(batch).ok()) std::exit(1);
  }
  if (!tr->FlushIngest().ok()) std::exit(1);
  double wal_seconds = wal_timer.ElapsedSeconds();

  // Explicit checkpoint: sharded snapshot + WAL rotation + prune.
  Stopwatch checkpoint_timer;
  if (!tr->Checkpoint().ok()) std::exit(1);
  double checkpoint_seconds = checkpoint_timer.ElapsedSeconds();
  persist::DurabilityStats stats = tr->durability_stats();
  size_t entities = tr->store()->entity_count();
  size_t events = tr->store()->event_count();
  double population = static_cast<double>(entities + events);
  double snapshot_mb = stats.snapshot_bytes / (1024.0 * 1024.0);

  // Crash: drop the facade without Close, then recover from disk.
  durable.value().reset();
  Stopwatch restore_timer;
  auto reopened = ThreatRaptor::Open(durability);
  if (!reopened.ok()) {
    std::fprintf(stderr, "restore failed: %s\n",
                 reopened.status().ToString().c_str());
    std::exit(1);
  }
  double restore_seconds = restore_timer.ElapsedSeconds();
  if (!reopened.value()->durability_stats().restored ||
      reopened.value()->store()->event_count() != events ||
      reopened.value()->store()->entity_count() != entities) {
    std::fprintf(stderr, "restore differential broke: %zu/%zu events, "
                 "%zu/%zu entities\n",
                 reopened.value()->store()->event_count(), events,
                 reopened.value()->store()->entity_count(), entities);
    std::exit(1);
  }
  reopened.value().reset();
  std::filesystem::remove_all(dir, ec);

  double overhead = memory_seconds > 0 ? wal_seconds / memory_seconds : 0;
  std::printf(
      "\nDurability (%zu batches / %zu records; snapshot %.2f MB, "
      "%zu entities + %zu events):\n"
      "  ingest: in-memory %.3f s, with WAL %.3f s (%.2fx overhead)\n"
      "  checkpoint: %.3f s -> %.1f MB/s, %.0f entities/s\n"
      "  restore:    %.3f s -> %.1f MB/s, %.0f entities/s\n",
      batches.size(), records, snapshot_mb, entities, events,
      memory_seconds, wal_seconds, overhead, checkpoint_seconds,
      checkpoint_seconds > 0 ? snapshot_mb / checkpoint_seconds : 0,
      checkpoint_seconds > 0 ? population / checkpoint_seconds : 0,
      restore_seconds,
      restore_seconds > 0 ? snapshot_mb / restore_seconds : 0,
      restore_seconds > 0 ? population / restore_seconds : 0);
  report->Metric("durability", "ingest_memory_seconds", memory_seconds);
  report->Metric("durability", "ingest_wal_seconds", wal_seconds);
  report->Metric("durability", "wal_overhead_ratio", overhead);
  report->Metric("durability", "checkpoint_seconds", checkpoint_seconds);
  report->Metric("durability", "checkpoint_mb_per_sec",
                 checkpoint_seconds > 0 ? snapshot_mb / checkpoint_seconds
                                        : 0);
  report->Metric("durability", "checkpoint_entities_per_sec",
                 checkpoint_seconds > 0 ? population / checkpoint_seconds
                                        : 0);
  report->Metric("durability", "restore_seconds", restore_seconds);
  report->Metric("durability", "restore_mb_per_sec",
                 restore_seconds > 0 ? snapshot_mb / restore_seconds : 0);
  report->Metric("durability", "restore_entities_per_sec",
                 restore_seconds > 0 ? population / restore_seconds : 0);
}

/// Tracing overhead: the same TBQL hunt through the HuntService with
/// profiling off versus on. Off is the production default — one null
/// check per instrumentation point — so its time should be statistically
/// indistinguishable from the pre-tracing baseline (tracked across
/// commits by bench_compare.py on this JSON). On pays for the span tree;
/// the guard only catches runaway regressions, not scheduler noise.
void RunTracingOverheadWorkload(bench::BenchReport* report) {
  const cases::AttackCase* c = cases::FindCase("data_leak");
  if (c == nullptr) {
    std::fprintf(stderr, "data_leak case missing\n");
    std::exit(1);
  }
  auto tr = bench::LoadCase(*c, bench::NoiseScale());
  const std::string query = "proc p read || write file f return p, f";
  int rounds = bench::Rounds(10);
  service::HuntService service(tr->store());

  size_t span_count = 0;
  auto measure = [&](bool profile, size_t* rows_out) {
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      service::HuntRequest request;
      request.text = query;
      request.profile = profile;
      timer.Restart();
      service::HuntTicket ticket = service.Submit(std::move(request));
      if (!ticket.Wait().ok()) {
        std::fprintf(stderr, "hunt failed: %s\n",
                     ticket.status().ToString().c_str());
        std::exit(1);
      }
      times.push_back(timer.ElapsedSeconds());
      *rows_out = ticket.response().report.results.rows.size();
      const obs::TraceSpan* root = ticket.response().profile.get();
      if (profile != (root != nullptr)) {
        std::fprintf(stderr,
                     "profile presence disagrees with the request flag\n");
        std::exit(1);
      }
      if (root != nullptr) {
        span_count = 0;
        auto count = [&](auto&& self, const obs::TraceSpan& s) -> void {
          ++span_count;
          for (const auto& child : s.children()) self(self, *child);
        };
        count(count, *root);
      }
    }
    return bench::Mean(times);
  };

  size_t rows_off = 0, rows_on = 0;
  double off = measure(/*profile=*/false, &rows_off);
  double on = measure(/*profile=*/true, &rows_on);
  if (rows_off != rows_on) {
    std::fprintf(stderr, "tracing changed results: %zu vs %zu rows\n",
                 rows_off, rows_on);
    std::exit(1);
  }
  double overhead = off > 0 ? on / off : 0;
  std::printf(
      "\nTracing overhead (%d-round mean, %zu rows, %zu spans per "
      "profile):\n"
      "  profile off %.6f s, profile on %.6f s -> %.2fx overhead\n",
      rounds, rows_on, span_count, off, on, overhead);
  long long max_overhead = bench::EnvLong("BENCH_TRACE_MAX_OVERHEAD_X", 5);
  if (overhead > static_cast<double>(max_overhead)) {
    std::fprintf(stderr,
                 "tracing overhead regression: %.2fx exceeds the %lldx "
                 "guard\n",
                 overhead, max_overhead);
    std::exit(1);
  }
  report->Metric("tracing", "profile_off_seconds", off);
  report->Metric("tracing", "profile_on_seconds", on);
  report->Metric("tracing", "overhead_ratio", overhead);
  report->Metric("tracing", "profile_spans",
                 static_cast<double>(span_count));
}

/// Shard-parallel SELECT vs the serial path: a filtered full scan and a
/// hash join whose probe side rides the partitioned base scan.
void RunParallelSelectWorkload(long long rows_n,
                               bench::BenchReport* report) {
  sql::Database db;  // kDefaultShardCount-way sharded storage
  if (!db.CreateTable("big", sql::Schema({{"id", sql::ColumnType::kInt64},
                                          {"name", sql::ColumnType::kText},
                                          {"score", sql::ColumnType::kInt64}}))
           .ok() ||
      !db.CreateTable("dim", sql::Schema({{"id", sql::ColumnType::kInt64},
                                          {"tag", sql::ColumnType::kText}}))
           .ok()) {
    std::fprintf(stderr, "table creation failed\n");
    std::exit(1);
  }
  Rng rng(271828);
  for (long long i = 0; i < rows_n; ++i) {
    (void)db.Insert("big", {sql::Value(static_cast<int64_t>(i)),
                            sql::Value("/data/f" + std::to_string(i)),
                            sql::Value(static_cast<int64_t>(rng.Uniform(100)))});
  }
  for (int i = 0; i < 100; ++i) {
    (void)db.Insert("dim", {sql::Value(static_cast<int64_t>(i)),
                            sql::Value("tag" + std::to_string(i))});
  }
  std::printf("\nShard-parallel SQL on %lld rows (serial vs sharded):\n",
              rows_n);

  int rounds = bench::Rounds(5);
  sql::ExecStats last_stats;
  auto measure_opts = [&](const char* query, int shards, bool columnar,
                          bool morsel) {
    db.options() = sql::SelectOptions{};
    db.options().parallel_shards = shards;
    db.options().columnar_scan = columnar;
    db.options().morsel_scheduling = morsel;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      sql::ExecStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      last_stats = stats;
    }
    return bench::Mean(times);
  };
  auto measure = [&](const char* query, int shards) {
    return measure_opts(query, shards, /*columnar=*/true, /*morsel=*/true);
  };

  const char* scan_query =
      "SELECT id FROM big WHERE score > 50 AND name LIKE '%7%'";
  double scan_serial = measure(scan_query, 1);
  double scan_sharded = measure(scan_query, 4);
  double scan_speedup = scan_sharded > 0 ? scan_serial / scan_sharded : 0;
  std::printf("  parallel_select: serial %.6f s, sharded %.6f s, %.2fx\n",
              scan_serial, scan_sharded, scan_speedup);
  report->Metric("parallel", "select_serial_seconds", scan_serial);
  report->Metric("parallel", "select_sharded_seconds", scan_sharded);
  report->Metric("parallel", "select_speedup", scan_speedup);

  const char* join_query =
      "SELECT t.id, u.tag FROM big t, dim u WHERE t.score = u.id "
      "AND t.score > 60";
  double join_serial = measure(join_query, 1);
  double join_sharded = measure(join_query, 4);
  double join_speedup = join_sharded > 0 ? join_serial / join_sharded : 0;
  std::printf("  parallel_join: serial %.6f s, sharded %.6f s, %.2fx\n",
              join_serial, join_sharded, join_speedup);
  report->Metric("parallel", "join_serial_seconds", join_serial);
  report->Metric("parallel", "join_sharded_seconds", join_sharded);
  report->Metric("parallel", "join_speedup", join_speedup);

  // Columnar filter compilation vs the legacy PropertyMap row path,
  // serial so only the scan representation differs: `score > 50` compiles
  // to an int-vector compare on the frozen columns (the LIKE conjunct
  // still evaluates row-wise either way).
  double col_on = measure_opts(scan_query, 1, /*columnar=*/true,
                               /*morsel=*/true);
  size_t columnar_rows = last_stats.columnar_filter_rows;
  double col_off = measure_opts(scan_query, 1, /*columnar=*/false,
                                /*morsel=*/true);
  double col_speedup = col_on > 0 ? col_off / col_on : 0;
  std::printf(
      "  columnar_select: columnar %.6f s (%zu predicate rows served from "
      "columns), row path %.6f s, speedup %.2fx\n",
      col_on, columnar_rows, col_off, col_speedup);
  if (columnar_rows == 0) {
    std::fprintf(stderr, "columnar filter compilation did not engage\n");
    std::exit(1);
  }
  report->Metric("columnar", "select_columnar_seconds", col_on);
  report->Metric("columnar", "select_row_path_seconds", col_off);
  report->Metric("columnar", "select_speedup", col_speedup);
  report->Metric("columnar", "select_filter_rows",
                 static_cast<double>(columnar_rows));

  // Morsel scheduler vs the static per-shard fan-out on the sharded scan
  // (uniform data, so this measures scheduler overhead; the skewed-graph
  // workload measures the stealing win).
  double sel_morsel = measure_opts(scan_query, 4, /*columnar=*/true,
                                   /*morsel=*/true);
  size_t sel_morsels = last_stats.morsels_executed;
  size_t sel_stolen = last_stats.morsels_stolen;
  double sel_static = measure_opts(scan_query, 4, /*columnar=*/true,
                                   /*morsel=*/false);
  double sel_ratio = sel_morsel > 0 ? sel_static / sel_morsel : 0;
  std::printf(
      "  morsel_select: morsel %.6f s (%zu morsels, %zu stolen), per-shard "
      "%.6f s, ratio %.2fx\n",
      sel_morsel, sel_morsels, sel_stolen, sel_static, sel_ratio);
  report->Metric("morsel", "select_morsel_seconds", sel_morsel);
  report->Metric("morsel", "select_per_shard_seconds", sel_static);
  report->Metric("morsel", "select_ratio", sel_ratio);
  report->Metric("morsel", "select_morsels_executed",
                 static_cast<double>(sel_morsels));
  report->Metric("morsel", "select_morsels_stolen",
                 static_cast<double>(sel_stolen));
}

/// Typed expansion + IN-filter probing on a synthetic large graph.
void RunLargeGraphWorkload(bench::BenchReport* report) {
  fixtures::SyntheticGraphSpec spec;
  // >= 2 so both node populations are non-empty (Rng::Uniform needs n > 0).
  spec.nodes = std::max(2LL, bench::EnvLong("BENCH_LARGE_NODES", 100'000));
  spec.edges = bench::EnvLong("BENCH_LARGE_EDGES", 500'000);
  // Propagated entity-id IN domains reach thousands of ids on large logs;
  // the legacy path scans the whole list per candidate row.
  const int n_in_list = 2048;

  std::printf(
      "\nLarge-graph hot path: %lld nodes, %lld edges, %d edge types, "
      "IN-list of %d file names\n",
      spec.nodes, spec.edges, spec.edge_types, n_in_list);

  graphdb::GraphDatabase db;
  Rng rng(42);
  Stopwatch sw;
  fixtures::SyntheticGraph sg =
      fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  double build_seconds = sw.ElapsedSeconds();

  // Query: typed expansion to files whose name is in a large IN list.
  std::string query = "MATCH (p:proc)-[e:op7]->(f:file) WHERE f.name IN [" +
                      fixtures::RandomFileNameInList(spec, sg, rng, n_in_list) +
                      "] RETURN p.exename, f.name";

  int rounds = bench::Rounds(5);
  auto measure = [&](bool typed, bool hashed) {
    db.options().typed_adjacency = typed;
    db.options().hashed_in_lists = hashed;
    // Serial on both sides: this workload isolates the indexed/interned
    // hot path (RunParallelMatchWorkload measures the shard fan-out).
    db.options().parallel_shards = 1;
    std::vector<double> times;
    size_t rows = 0, edges_traversed = 0;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      rows = rs.value().rows.size();
      edges_traversed = stats.edges_traversed;
    }
    std::printf(
        "  typed_adjacency=%d hashed_in_lists=%d: %s s (%zu rows, %zu edges "
        "traversed)\n",
        typed, hashed, bench::MeanStd(times).c_str(), rows, edges_traversed);
    return bench::Mean(times);
  };

  double fast = measure(/*typed=*/true, /*hashed=*/true);
  double legacy = measure(/*typed=*/false, /*hashed=*/false);
  db.options().typed_adjacency = true;
  db.options().hashed_in_lists = true;
  double speedup = fast > 0 ? legacy / fast : 0;
  std::printf(
      "  build: %.3f s; speedup (legacy / indexed+interned): %.1fx\n",
      build_seconds, speedup);

  // Columnar predicate evaluation vs the legacy PropertyMap row path:
  // an inline equality constraint on the expansion target compiles to a
  // dictionary-id compare against the frozen column (one uint32 per
  // candidate) instead of a per-node map probe plus string compare. Same
  // query, serial, typed+hashed on both sides.
  std::string eq_query = "MATCH (p:proc)-[e:op7]->(f:file {name: '" +
                         fixtures::RandomFileName(spec, sg, rng) +
                         "'}) RETURN p.exename";
  db.options() = graphdb::MatchOptions{};
  auto measure_columnar = [&](bool columnar) {
    db.options().columnar_scan = columnar;
    db.options().parallel_shards = 1;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      timer.Restart();
      auto rs = db.Query(eq_query);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
    }
    return bench::Mean(times);
  };
  double columnar_on = measure_columnar(true);
  double columnar_off = measure_columnar(false);
  db.options() = graphdb::MatchOptions{};
  double columnar_speedup = columnar_on > 0 ? columnar_off / columnar_on : 0;
  std::printf("  columnar_match: columnar %.6f s, row path %.6f s, "
              "speedup %.2fx\n",
              columnar_on, columnar_off, columnar_speedup);

  report->Param("large_nodes", spec.nodes);
  report->Param("large_edges", spec.edges);
  report->Param("large_edge_types", spec.edge_types);
  report->Param("large_in_list", n_in_list);
  report->Metric("large_graph", "build_seconds", build_seconds);
  report->Metric("large_graph", "indexed_seconds", fast);
  report->Metric("large_graph", "legacy_seconds", legacy);
  report->Metric("large_graph", "speedup", speedup);
  report->Metric("columnar", "match_columnar_seconds", columnar_on);
  report->Metric("columnar", "match_row_path_seconds", columnar_off);
  report->Metric("columnar", "match_speedup", columnar_speedup);

  RunLimitPushdownWorkload(db, report);
  RunParallelMatchWorkload(db, report);
  RunSkewedMorselWorkload(report);
  RunParallelSelectWorkload(spec.nodes, report);
}

}  // namespace

int main() {
  int scale = bench::NoiseScale();
  int rounds = bench::Rounds();
  bench::BenchReport report("query_execution");
  report.Param("scale", scale);
  report.Param("rounds", rounds);
  std::printf(
      "Table VIII: query execution time (seconds, %d-round mean ± std, "
      "noise scale %dx)\n\n",
      rounds, scale);
  TablePrinter table({"Case", "TBQL", "SQL", "TBQL (length-1 path)",
                      "Cypher"});
  double totals[4] = {0, 0, 0, 0};
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c, scale);
    auto ext = tr->ExtractBehaviorGraph(c.oscti_text);
    auto syn = tr->SynthesizeQuery(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error", "", "", ""});
      continue;
    }
    tbql::TbqlQuery query = std::move(syn).value().query;
    auto analyzed = tbql::Analyze(query);
    auto giant_sql = engine::CompileGiantSql(analyzed.value());
    auto giant_cypher = engine::CompileGiantCypher(analyzed.value());
    tbql::TbqlQuery path_query = engine::ToLength1PathQuery(query);

    auto measure = [&](auto fn) {
      std::vector<double> times;
      times.reserve(rounds);
      Stopwatch sw;
      for (int i = 0; i < rounds; ++i) {
        sw.Restart();
        fn();
        times.push_back(sw.ElapsedSeconds());
      }
      return times;
    };

    std::vector<double> t_tbql =
        measure([&] { (void)tr->Hunt(query); });
    std::vector<double> t_sql = measure(
        [&] { (void)tr->store()->relational().Query(giant_sql.value()); });
    std::vector<double> t_path =
        measure([&] { (void)tr->Hunt(path_query); });
    std::vector<double> t_cypher = measure(
        [&] { (void)tr->store()->graph().Query(giant_cypher.value()); });

    totals[0] += bench::Mean(t_tbql);
    totals[1] += bench::Mean(t_sql);
    totals[2] += bench::Mean(t_path);
    totals[3] += bench::Mean(t_cypher);
    report.Metric(c.id, "tbql_seconds", bench::Mean(t_tbql));
    report.Metric(c.id, "giant_sql_seconds", bench::Mean(t_sql));
    report.Metric(c.id, "tbql_path_seconds", bench::Mean(t_path));
    report.Metric(c.id, "giant_cypher_seconds", bench::Mean(t_cypher));
    table.AddRow({c.id, bench::MeanStd(t_tbql), bench::MeanStd(t_sql),
                  bench::MeanStd(t_path), bench::MeanStd(t_cypher)});
  }
  table.AddRow({"Total", StrFormat("%.4f", totals[0]),
                StrFormat("%.4f", totals[1]), StrFormat("%.4f", totals[2]),
                StrFormat("%.4f", totals[3])});
  table.Print();
  std::printf(
      "\nRelational backend: scheduled TBQL vs giant SQL speedup = %.1fx\n"
      "Graph backend: scheduled TBQL(path) vs giant Cypher speedup = %.1fx\n",
      totals[1] / totals[0], totals[3] / totals[2]);
  report.Metric("total", "tbql_seconds", totals[0]);
  report.Metric("total", "giant_sql_seconds", totals[1]);
  report.Metric("total", "tbql_path_seconds", totals[2]);
  report.Metric("total", "giant_cypher_seconds", totals[3]);

  RunLargeGraphWorkload(&report);
  RunConcurrentHuntWorkload(&report);
  RunStreamingWorkload(&report);
  RunDurabilityWorkload(&report);
  RunTracingOverheadWorkload(&report);
  report.Write();
  return 0;
}
