// Table VIII (RQ4): execution time of the four semantically equivalent
// query types per case —
//   (a) TBQL (event patterns, scheduled, relational backend)
//   (b) one giant SQL query (all joins/constraints woven together)
//   (c) TBQL in length-1 event path syntax (scheduled, graph backend)
//   (d) one giant Cypher query
// Each query runs BENCH_ROUNDS rounds (default 20) on a log scaled by
// BENCH_SCALE (default 10x the test profile).
//
// A second section measures the indexed/interned graph hot path on the
// shared synthetic large provenance graph fixture (BENCH_LARGE_NODES nodes
// / BENCH_LARGE_EDGES edges, default 100k/500k): typed expansion through
// the per-type adjacency groups plus hashed IN-list probing, versus the
// legacy full-edge-scan + linear IN-scan code path (MatchOptions toggles).
// A third section measures LIMIT/DISTINCT pushdown on the same graph:
// streaming early-exit versus the legacy materialize-then-truncate path.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "tests/fixtures/synthetic_graph.h"

using namespace raptor;

namespace {

/// LIMIT/DISTINCT pushdown on the fixture graph: the streaming pipeline
/// stops seed iteration once LIMIT rows exist, while the legacy path
/// materializes every binding and truncates at the end.
void RunLimitPushdownWorkload(graphdb::GraphDatabase& db,
                              bench::BenchReport* report) {
  struct Workload {
    const char* key;
    std::string query;
  };
  const Workload workloads[] = {
      {"limit1",
       "MATCH (p:proc)-[e:op7]->(f:file) RETURN p.exename, f.name LIMIT 1"},
      {"limit10",
       "MATCH (p:proc)-[e:op7]->(f:file) RETURN p.exename, f.name LIMIT 10"},
      {"distinct_limit10",
       "MATCH (p:proc)-[e:op3]->(f:file) RETURN DISTINCT p.exename LIMIT 10"},
  };
  std::printf("\nLIMIT/DISTINCT pushdown (streaming vs legacy):\n");

  int rounds = bench::Rounds(5);
  auto measure = [&](const std::string& query, bool streaming,
                     size_t* seeds_out) {
    db.options().push_limit = streaming;
    db.options().streaming_distinct = streaming;
    db.options().binding_frames = streaming;
    std::vector<double> times;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      *seeds_out = stats.seed_candidates;
    }
    return bench::Mean(times);
  };

  for (const Workload& w : workloads) {
    size_t streaming_seeds = 0, legacy_seeds = 0;
    double streaming = measure(w.query, /*streaming=*/true, &streaming_seeds);
    double legacy = measure(w.query, /*streaming=*/false, &legacy_seeds);
    double speedup = streaming > 0 ? legacy / streaming : 0;
    std::printf(
        "  %s: streaming %.6f s (%zu seeds visited), legacy %.6f s "
        "(%zu seeds visited), speedup %.1fx\n",
        w.key, streaming, streaming_seeds, legacy, legacy_seeds, speedup);
    report->Metric("limit_pushdown",
                   std::string(w.key) + "_streaming_seconds", streaming);
    report->Metric("limit_pushdown", std::string(w.key) + "_legacy_seconds",
                   legacy);
    report->Metric("limit_pushdown", std::string(w.key) + "_speedup", speedup);
    report->Metric("limit_pushdown",
                   std::string(w.key) + "_streaming_seeds",
                   static_cast<double>(streaming_seeds));
    report->Metric("limit_pushdown", std::string(w.key) + "_legacy_seeds",
                   static_cast<double>(legacy_seeds));
  }
  db.options() = graphdb::MatchOptions{};
}

/// Typed expansion + IN-filter probing on a synthetic large graph.
void RunLargeGraphWorkload(bench::BenchReport* report) {
  fixtures::SyntheticGraphSpec spec;
  // >= 2 so both node populations are non-empty (Rng::Uniform needs n > 0).
  spec.nodes = std::max(2LL, bench::EnvLong("BENCH_LARGE_NODES", 100'000));
  spec.edges = bench::EnvLong("BENCH_LARGE_EDGES", 500'000);
  // Propagated entity-id IN domains reach thousands of ids on large logs;
  // the legacy path scans the whole list per candidate row.
  const int n_in_list = 2048;

  std::printf(
      "\nLarge-graph hot path: %lld nodes, %lld edges, %d edge types, "
      "IN-list of %d file names\n",
      spec.nodes, spec.edges, spec.edge_types, n_in_list);

  graphdb::GraphDatabase db;
  Rng rng(42);
  Stopwatch sw;
  fixtures::SyntheticGraph sg =
      fixtures::BuildSyntheticGraph(db.graph(), spec, rng);
  double build_seconds = sw.ElapsedSeconds();

  // Query: typed expansion to files whose name is in a large IN list.
  std::string query = "MATCH (p:proc)-[e:op7]->(f:file) WHERE f.name IN [" +
                      fixtures::RandomFileNameInList(spec, sg, rng, n_in_list) +
                      "] RETURN p.exename, f.name";

  int rounds = bench::Rounds(5);
  auto measure = [&](bool typed, bool hashed) {
    db.options().typed_adjacency = typed;
    db.options().hashed_in_lists = hashed;
    std::vector<double> times;
    size_t rows = 0, edges_traversed = 0;
    Stopwatch timer;
    for (int i = 0; i < rounds; ++i) {
      graphdb::MatchStats stats;
      timer.Restart();
      auto rs = db.Query(query, &stats);
      times.push_back(timer.ElapsedSeconds());
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
      rows = rs.value().rows.size();
      edges_traversed = stats.edges_traversed;
    }
    std::printf(
        "  typed_adjacency=%d hashed_in_lists=%d: %s s (%zu rows, %zu edges "
        "traversed)\n",
        typed, hashed, bench::MeanStd(times).c_str(), rows, edges_traversed);
    return bench::Mean(times);
  };

  double fast = measure(/*typed=*/true, /*hashed=*/true);
  double legacy = measure(/*typed=*/false, /*hashed=*/false);
  db.options().typed_adjacency = true;
  db.options().hashed_in_lists = true;
  double speedup = fast > 0 ? legacy / fast : 0;
  std::printf(
      "  build: %.3f s; speedup (legacy / indexed+interned): %.1fx\n",
      build_seconds, speedup);

  report->Param("large_nodes", spec.nodes);
  report->Param("large_edges", spec.edges);
  report->Param("large_edge_types", spec.edge_types);
  report->Param("large_in_list", n_in_list);
  report->Metric("large_graph", "build_seconds", build_seconds);
  report->Metric("large_graph", "indexed_seconds", fast);
  report->Metric("large_graph", "legacy_seconds", legacy);
  report->Metric("large_graph", "speedup", speedup);

  RunLimitPushdownWorkload(db, report);
}

}  // namespace

int main() {
  int scale = bench::NoiseScale();
  int rounds = bench::Rounds();
  bench::BenchReport report("query_execution");
  report.Param("scale", scale);
  report.Param("rounds", rounds);
  std::printf(
      "Table VIII: query execution time (seconds, %d-round mean ± std, "
      "noise scale %dx)\n\n",
      rounds, scale);
  TablePrinter table({"Case", "TBQL", "SQL", "TBQL (length-1 path)",
                      "Cypher"});
  double totals[4] = {0, 0, 0, 0};
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c, scale);
    auto ext = tr->ExtractBehaviorGraph(c.oscti_text);
    auto syn = tr->SynthesizeQuery(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error", "", "", ""});
      continue;
    }
    tbql::TbqlQuery query = std::move(syn).value().query;
    auto analyzed = tbql::Analyze(query);
    auto giant_sql = engine::CompileGiantSql(analyzed.value());
    auto giant_cypher = engine::CompileGiantCypher(analyzed.value());
    tbql::TbqlQuery path_query = engine::ToLength1PathQuery(query);

    auto measure = [&](auto fn) {
      std::vector<double> times;
      times.reserve(rounds);
      Stopwatch sw;
      for (int i = 0; i < rounds; ++i) {
        sw.Restart();
        fn();
        times.push_back(sw.ElapsedSeconds());
      }
      return times;
    };

    std::vector<double> t_tbql =
        measure([&] { (void)tr->Hunt(query); });
    std::vector<double> t_sql = measure(
        [&] { (void)tr->store()->relational().Query(giant_sql.value()); });
    std::vector<double> t_path =
        measure([&] { (void)tr->Hunt(path_query); });
    std::vector<double> t_cypher = measure(
        [&] { (void)tr->store()->graph().Query(giant_cypher.value()); });

    totals[0] += bench::Mean(t_tbql);
    totals[1] += bench::Mean(t_sql);
    totals[2] += bench::Mean(t_path);
    totals[3] += bench::Mean(t_cypher);
    report.Metric(c.id, "tbql_seconds", bench::Mean(t_tbql));
    report.Metric(c.id, "giant_sql_seconds", bench::Mean(t_sql));
    report.Metric(c.id, "tbql_path_seconds", bench::Mean(t_path));
    report.Metric(c.id, "giant_cypher_seconds", bench::Mean(t_cypher));
    table.AddRow({c.id, bench::MeanStd(t_tbql), bench::MeanStd(t_sql),
                  bench::MeanStd(t_path), bench::MeanStd(t_cypher)});
  }
  table.AddRow({"Total", StrFormat("%.4f", totals[0]),
                StrFormat("%.4f", totals[1]), StrFormat("%.4f", totals[2]),
                StrFormat("%.4f", totals[3])});
  table.Print();
  std::printf(
      "\nRelational backend: scheduled TBQL vs giant SQL speedup = %.1fx\n"
      "Graph backend: scheduled TBQL(path) vs giant Cypher speedup = %.1fx\n",
      totals[1] / totals[0], totals[3] / totals[2]);
  report.Metric("total", "tbql_seconds", totals[0]);
  report.Metric("total", "giant_sql_seconds", totals[1]);
  report.Metric("total", "tbql_path_seconds", totals[2]);
  report.Metric("total", "giant_cypher_seconds", totals[3]);

  RunLargeGraphWorkload(&report);
  report.Write();
  return 0;
}
