// Table VIII (RQ4): execution time of the four semantically equivalent
// query types per case —
//   (a) TBQL (event patterns, scheduled, relational backend)
//   (b) one giant SQL query (all joins/constraints woven together)
//   (c) TBQL in length-1 event path syntax (scheduled, graph backend)
//   (d) one giant Cypher query
// Each query runs BENCH_ROUNDS rounds (default 20) on a log scaled by
// BENCH_SCALE (default 10x the test profile).
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace raptor;

int main() {
  int scale = bench::NoiseScale();
  int rounds = bench::Rounds();
  std::printf(
      "Table VIII: query execution time (seconds, %d-round mean ± std, "
      "noise scale %dx)\n\n",
      rounds, scale);
  TablePrinter table({"Case", "TBQL", "SQL", "TBQL (length-1 path)",
                      "Cypher"});
  double totals[4] = {0, 0, 0, 0};
  for (const cases::AttackCase& c : cases::AllCases()) {
    auto tr = bench::LoadCase(c, scale);
    auto ext = tr->ExtractBehaviorGraph(c.oscti_text);
    auto syn = tr->SynthesizeQuery(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error", "", "", ""});
      continue;
    }
    tbql::TbqlQuery query = std::move(syn).value().query;
    auto analyzed = tbql::Analyze(query);
    auto giant_sql = engine::CompileGiantSql(analyzed.value());
    auto giant_cypher = engine::CompileGiantCypher(analyzed.value());
    tbql::TbqlQuery path_query = engine::ToLength1PathQuery(query);

    auto measure = [&](auto fn) {
      std::vector<double> times;
      times.reserve(rounds);
      Stopwatch sw;
      for (int i = 0; i < rounds; ++i) {
        sw.Restart();
        fn();
        times.push_back(sw.ElapsedSeconds());
      }
      return times;
    };
    auto mean_of = [](const std::vector<double>& xs) {
      double m = 0;
      for (double x : xs) m += x;
      return m / xs.size();
    };

    std::vector<double> t_tbql =
        measure([&] { (void)tr->Hunt(query); });
    std::vector<double> t_sql = measure(
        [&] { (void)tr->store()->relational().Query(giant_sql.value()); });
    std::vector<double> t_path =
        measure([&] { (void)tr->Hunt(path_query); });
    std::vector<double> t_cypher = measure(
        [&] { (void)tr->store()->graph().Query(giant_cypher.value()); });

    totals[0] += mean_of(t_tbql);
    totals[1] += mean_of(t_sql);
    totals[2] += mean_of(t_path);
    totals[3] += mean_of(t_cypher);
    table.AddRow({c.id, bench::MeanStd(t_tbql), bench::MeanStd(t_sql),
                  bench::MeanStd(t_path), bench::MeanStd(t_cypher)});
  }
  table.AddRow({"Total", StrFormat("%.4f", totals[0]),
                StrFormat("%.4f", totals[1]), StrFormat("%.4f", totals[2]),
                StrFormat("%.4f", totals[3])});
  table.Print();
  std::printf(
      "\nRelational backend: scheduled TBQL vs giant SQL speedup = %.1fx\n"
      "Graph backend: scheduled TBQL(path) vs giant Cypher speedup = %.1fx\n",
      totals[1] / totals[0], totals[3] / totals[2]);
  return 0;
}
