// Table X (RQ5): conciseness of the four query types — number of
// characters (excluding whitespace) and words — for the synthesized TBQL
// query, the giant SQL query, the TBQL length-1 path form, and the giant
// Cypher query of every case.
#include <cctype>
#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"

using namespace raptor;

namespace {

size_t CountChars(const std::string& s) {
  size_t n = 0;
  for (char c : s) {
    if (!std::isspace(static_cast<unsigned char>(c))) ++n;
  }
  return n;
}

size_t CountWords(const std::string& s) {
  return SplitWhitespace(s).size();
}

}  // namespace

int main() {
  bench::BenchReport report("conciseness");
  std::printf(
      "Table X: conciseness of queries in TBQL, SQL, TBQL (length-1 path) "
      "and Cypher\n\n");
  TablePrinter table({"Case", "#Patterns", "TBQL chars", "TBQL words",
                      "SQL chars", "SQL words", "TBQLp chars", "TBQLp words",
                      "Cypher chars", "Cypher words"});
  size_t totals[9] = {0};
  for (const cases::AttackCase& c : cases::AllCases()) {
    extraction::ThreatBehaviorExtractor extractor;
    auto ext = extractor.Extract(c.oscti_text);
    synthesis::QuerySynthesizer synthesizer;
    auto syn = synthesizer.Synthesize(ext.value().graph);
    if (!syn.ok()) {
      table.AddRow({c.id, "synthesis error"});
      continue;
    }
    auto analyzed = tbql::Analyze(syn.value().query);
    std::string tbql_text = syn.value().tbql_text;
    std::string sql = engine::CompileGiantSql(analyzed.value()).value();
    std::string tbqlp = engine::ToLength1PathQuery(syn.value().query).ToString();
    std::string cypher = engine::CompileGiantCypher(analyzed.value()).value();

    size_t vals[9] = {syn.value().query.patterns.size(),
                      CountChars(tbql_text), CountWords(tbql_text),
                      CountChars(sql),       CountWords(sql),
                      CountChars(tbqlp),     CountWords(tbqlp),
                      CountChars(cypher),    CountWords(cypher)};
    for (int i = 0; i < 9; ++i) totals[i] += vals[i];
    report.Metric(c.id, "tbql_chars", static_cast<double>(vals[1]));
    report.Metric(c.id, "sql_chars", static_cast<double>(vals[3]));
    report.Metric(c.id, "tbqlp_chars", static_cast<double>(vals[5]));
    report.Metric(c.id, "cypher_chars", static_cast<double>(vals[7]));
    table.AddRow({c.id, std::to_string(vals[0]), std::to_string(vals[1]),
                  std::to_string(vals[2]), std::to_string(vals[3]),
                  std::to_string(vals[4]), std::to_string(vals[5]),
                  std::to_string(vals[6]), std::to_string(vals[7]),
                  std::to_string(vals[8])});
  }
  table.AddRow({"Total", std::to_string(totals[0]), std::to_string(totals[1]),
                std::to_string(totals[2]), std::to_string(totals[3]),
                std::to_string(totals[4]), std::to_string(totals[5]),
                std::to_string(totals[6]), std::to_string(totals[7]),
                std::to_string(totals[8])});
  table.Print();
  std::printf(
      "\nTBQL vs SQL: %.1fx fewer characters, %.1fx fewer words\n"
      "TBQL vs Cypher: %.1fx fewer characters, %.1fx fewer words\n",
      static_cast<double>(totals[3]) / totals[1],
      static_cast<double>(totals[4]) / totals[2],
      static_cast<double>(totals[7]) / totals[1],
      static_cast<double>(totals[8]) / totals[2]);
  report.Metric("total", "tbql_chars", static_cast<double>(totals[1]));
  report.Metric("total", "sql_chars", static_cast<double>(totals[3]));
  report.Metric("total", "tbqlp_chars", static_cast<double>(totals[5]));
  report.Metric("total", "cypher_chars", static_cast<double>(totals[7]));
  report.Write();
  return 0;
}
