// Hunt latency under mixed load: one-shot hunts racing a firehose writer
// through the epoch gate, with the writer preference bounded
// (max_consecutive_ingests = 4, the default) versus unbounded (0, the
// legacy starvation-prone preference kept for this comparison). The
// bounded gate guarantees one queued hunt through per K-ingest window, so
// its one-shot p99 stays finite and small relative to the unbounded run,
// where hunts only slip in between the writer's gate acquisitions.
//
// Latency quantiles come from the service's own SLO metrics surface
// (HuntService::metrics(), the same histograms `hunt --stats` prints), so
// the bench doubles as an end-to-end check of that plumbing; a
// client-side p99 measured around Submit/Wait is reported alongside for
// cross-validation. Emits BENCH_latency_under_load.json with
// bounded/unbounded p50/p99 keys tracked by the CI schema diff.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "service/hunt_service.h"

using namespace raptor;

namespace {

/// Base store: `procs` processes each reading `files` distinct files
/// (reduction off so results are stable across the noise ingests).
std::unique_ptr<ThreatRaptor> BuildStore(int procs, int files,
                                         size_t max_consecutive_ingests) {
  ThreatRaptorOptions options;
  options.store.enable_reduction = false;
  options.service.max_concurrent = 2;
  options.service.max_consecutive_ingests = max_consecutive_ingests;
  auto tr = std::make_unique<ThreatRaptor>(options);
  audit::ParsedLog log;
  audit::Timestamp ts = 1'000'000;
  for (int i = 0; i < procs; ++i) {
    audit::EntityId p =
        log.entities.InternProcess("/bin/svc" + std::to_string(i), 100 + i);
    for (int j = 0; j < files; ++j) {
      audit::EntityId f = log.entities.InternFile(
          "/data/d" + std::to_string(i) + "_" + std::to_string(j));
      audit::SystemEvent ev;
      ev.id = log.events.size() + 1;
      ev.subject = p;
      ev.object = f;
      ev.object_type = audit::EntityType::kFile;
      ev.op = audit::EventOp::kRead;
      ev.start_time = ts;
      ev.end_time = ts + 10;
      ts += 100;
      log.events.push_back(ev);
    }
  }
  if (Status st = tr->IngestParsedLog(log); !st.ok()) {
    std::fprintf(stderr, "base ingest failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return tr;
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  size_t rank = static_cast<size_t>(q * (xs.size() - 1) + 0.5);
  return xs[std::min(rank, xs.size() - 1)];
}

struct RunResult {
  service::HuntService::Metrics metrics;
  std::vector<double> client_latency_ms;  // Submit -> Wait, per hunt
  size_t hunts_failed = 0;
  size_t ingest_batches = 0;
  double wall_seconds = 0;
};

/// `hunts` one-shot hunts (2 hunter threads) against a continuous writer
/// that keeps the gate hot until the last hunt completes.
RunResult RunMixedLoad(int procs, int files, int hunts,
                       size_t max_consecutive_ingests) {
  auto tr = BuildStore(procs, files, max_consecutive_ingests);
  service::HuntService* service = tr->hunt_service();
  RunResult out;
  std::atomic<bool> stop_writer{false};
  std::atomic<size_t> batches{0};
  auto start = std::chrono::steady_clock::now();
  std::thread writer([&] {
    // Tiny batches back-to-back: the writer re-enters the gate as fast as
    // the epoch machinery lets it, the worst case for reader latency.
    for (int b = 0; !stop_writer.load(std::memory_order_relaxed); ++b) {
      audit::ParsedLog log;
      audit::EntityId p = log.entities.InternProcess(
          "/bin/noise" + std::to_string(b), 50'000 + b);
      audit::EntityId f =
          log.entities.InternFile("/noise/n" + std::to_string(b));
      audit::SystemEvent ev;
      ev.id = 1;
      ev.subject = p;
      ev.object = f;
      ev.object_type = audit::EntityType::kFile;
      ev.op = audit::EventOp::kWrite;
      ev.start_time = 10'000'000 + b;
      ev.end_time = 10'000'001 + b;
      log.events.push_back(ev);
      if (!tr->IngestParsedLog(log).ok()) break;
      ++batches;
    }
  });
  std::mutex lat_mu;
  std::atomic<size_t> failed{0};
  std::atomic<int> next_hunt{0};
  std::vector<std::thread> hunters;
  for (int h = 0; h < 2; ++h) {
    hunters.emplace_back([&] {
      while (next_hunt.fetch_add(1) < hunts) {
        service::HuntRequest req;
        req.text = "proc p[\"%svc1%\"] read file f return p, f";
        auto t0 = std::chrono::steady_clock::now();
        service::HuntTicket ticket = service->Submit(std::move(req));
        if (!ticket.Wait().ok()) {
          ++failed;
          continue;
        }
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        std::lock_guard<std::mutex> lock(lat_mu);
        out.client_latency_ms.push_back(ms);
      }
    });
  }
  for (std::thread& t : hunters) t.join();
  stop_writer.store(true, std::memory_order_relaxed);
  writer.join();
  out.wall_seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  out.metrics = service->metrics();
  out.hunts_failed = failed.load();
  out.ingest_batches = batches.load();
  return out;
}

void Report(bench::BenchReport& report, TablePrinter& table,
            const std::string& label, const RunResult& r) {
  const service::HuntService::LatencySummary& h = r.metrics.hunt_latency;
  double client_p50 = Quantile(r.client_latency_ms, 0.50);
  double client_p99 = Quantile(r.client_latency_ms, 0.99);
  table.AddRow({label, std::to_string(r.client_latency_ms.size()),
                StrFormat("%.2f", h.p50_micros / 1e3),
                StrFormat("%.2f", h.p99_micros / 1e3),
                StrFormat("%.2f", client_p99),
                std::to_string(r.ingest_batches),
                StrFormat("%.3f", r.metrics.gate_wait_seconds_max)});
  report.Metric(label, "p50_ms", h.p50_micros / 1e3);
  report.Metric(label, "p99_ms", h.p99_micros / 1e3);
  report.Metric(label, "mean_ms", h.mean_micros / 1e3);
  report.Metric(label, "client_p50_ms", client_p50);
  report.Metric(label, "client_p99_ms", client_p99);
  report.Metric(label, "queue_wait_p99_ms", r.metrics.queue_wait.p99_micros / 1e3);
  report.Metric(label, "hunts_completed",
                static_cast<double>(r.client_latency_ms.size()));
  report.Metric(label, "hunts_failed", static_cast<double>(r.hunts_failed));
  report.Metric(label, "ingest_batches", static_cast<double>(r.ingest_batches));
  report.Metric(label, "ingest_rate_per_s",
                r.wall_seconds > 0 ? r.ingest_batches / r.wall_seconds : 0);
  report.Metric(label, "gate_wait_max_s", r.metrics.gate_wait_seconds_max);
  report.Metric(label, "wall_seconds", r.wall_seconds);
}

}  // namespace

int main() {
  int scale = bench::NoiseScale(4);
  int procs = 20 * scale;
  int files = 20;
  int hunts = bench::Rounds(20) * 2;

  bench::BenchReport report("latency_under_load");
  report.Param("procs", procs);
  report.Param("files_per_proc", files);
  report.Param("hunts", hunts);
  report.Param("bounded_k", 4);

  TablePrinter table(
      {"gate", "hunts", "p50_ms", "p99_ms", "client_p99_ms", "ingests",
       "gate_wait_max_s"});
  // Bounded writer preference (the default K = 4): one hunt is guaranteed
  // through per 4-ingest window.
  Report(report, table, "bounded", RunMixedLoad(procs, files, hunts, 4));
  // Unbounded legacy preference: the writer always outranks queued hunts
  // while it holds or waits on the gate.
  Report(report, table, "unbounded", RunMixedLoad(procs, files, hunts, 0));
  table.Print();
  report.Write();
  return 0;
}
