#include "engine/poirot.h"

#include <algorithm>
#include <deque>
#include <functional>
#include <unordered_set>

#include "common/levenshtein.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "tbql/parser.h"

namespace raptor::engine {

namespace {

using tbql::AnalyzedQuery;
using tbql::AttrExpr;
using tbql::AttrExprKind;

/// Extract the primary IOC string constraint from an entity's filters
/// (first bare value or default-attribute comparison), % wildcards removed.
std::string IocStringOf(const tbql::EntityInfo& info) {
  for (const AttrExpr* f : info.filters) {
    const AttrExpr* probe = f;
    while (probe != nullptr) {
      if (probe->kind == AttrExprKind::kBareValue ||
          probe->kind == AttrExprKind::kCompare) {
        return ReplaceAll(probe->value, "%", "");
      }
      if (probe->kind == AttrExprKind::kAnd ||
          probe->kind == AttrExprKind::kNot) {
        probe = probe->lhs.get();
        continue;
      }
      break;
    }
  }
  return "";
}

struct QueryEdge {
  int src = 0;  // indexes into query node list
  int dst = 0;
};

}  // namespace

Result<FuzzyReport> FuzzyMatcher::SearchText(std::string_view text,
                                             const FuzzyOptions& options) const {
  auto query = tbql::ParseTbql(text);
  if (!query.ok()) return query.status();
  return Search(query.value(), options);
}

Result<FuzzyReport> FuzzyMatcher::Search(const tbql::TbqlQuery& query,
                                         const FuzzyOptions& options) const {
  FuzzyReport report;
  auto analyzed = tbql::Analyze(query);
  if (!analyzed.ok()) return analyzed.status();
  const AnalyzedQuery& aq = analyzed.value();

  // ---- Loading: entities and events out of the database --------------------
  Stopwatch timer;
  std::vector<audit::SystemEntity> entities = store_->entities();
  std::vector<audit::SystemEvent> events = store_->events();
  report.timings.loading_seconds = timer.ElapsedSeconds();

  // ---- Preprocessing: provenance graph adjacency ----------------------------
  timer.Restart();
  size_t n_entities = entities.size();
  std::vector<std::vector<uint32_t>> out_adj(n_entities + 1);
  for (const audit::SystemEvent& ev : events) {
    out_adj[ev.subject].push_back(static_cast<uint32_t>(ev.object));
  }
  report.timings.preprocessing_seconds = timer.ElapsedSeconds();

  // ---- Searching ------------------------------------------------------------
  timer.Restart();

  // Query graph: nodes = TBQL entities, edges = patterns.
  std::vector<const tbql::EntityInfo*> qnodes;
  std::map<std::string, int> qnode_index;
  for (const auto& [id, info] : aq.entities) {
    qnode_index.emplace(id, static_cast<int>(qnodes.size()));
    qnodes.push_back(&info);
  }
  std::vector<QueryEdge> qedges;
  for (const tbql::Pattern& p : query.patterns) {
    QueryEdge e;
    e.src = qnode_index.at(p.subject.id);
    e.dst = qnode_index.at(p.object.id);
    qedges.push_back(e);
  }

  // Node-level alignment candidates via Levenshtein similarity.
  std::vector<std::vector<long long>> candidates(qnodes.size());
  for (size_t qi = 0; qi < qnodes.size(); ++qi) {
    std::string ioc = IocStringOf(*qnodes[qi]);
    std::vector<std::pair<double, long long>> scored;
    for (const audit::SystemEntity& e : entities) {
      if (e.type != qnodes[qi]->type) continue;
      std::string attr =
          e.Attribute(audit::SystemEntity::DefaultAttribute(e.type));
      if (attr.empty()) continue;
      double sim;
      if (ioc.empty()) {
        sim = options.node_similarity;  // unconstrained node: admit weakly
      } else if (attr.find(ioc) != std::string::npos ||
                 ioc.find(attr) != std::string::npos) {
        sim = 1.0;
      } else {
        sim = LevenshteinSimilarity(ioc, attr);
      }
      if (sim >= options.node_similarity) {
        scored.emplace_back(sim, static_cast<long long>(e.id));
      }
    }
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (scored.size() > options.max_candidates) {
      scored.resize(options.max_candidates);
    }
    candidates[qi].reserve(scored.size());
    for (const auto& [sim, id] : scored) candidates[qi].push_back(id);
  }

  // Flow score between two aligned entities: BFS over the provenance graph
  // bounded by max_flow_hops; influence decays 1/C^(d-1).
  auto flow_score = [&](long long from, long long to) -> double {
    if (from == to) return 0.0;
    std::deque<std::pair<long long, int>> frontier;
    std::unordered_set<long long> visited;
    frontier.emplace_back(from, 0);
    visited.insert(from);
    while (!frontier.empty()) {
      auto [cur, depth] = frontier.front();
      frontier.pop_front();
      if (depth >= options.max_flow_hops) continue;
      for (uint32_t next : out_adj[cur]) {
        if (next == static_cast<uint32_t>(to)) {
          int d = depth + 1;
          double score = 1.0;
          for (int k = 1; k < d; ++k) score /= options.influence_base;
          return score;
        }
        if (visited.insert(next).second) {
          frontier.emplace_back(next, depth + 1);
        }
      }
    }
    return 0.0;
  };

  // Order query nodes by ascending candidate count (fail fast).
  std::vector<int> order(qnodes.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return candidates[a].size() < candidates[b].size();
  });

  std::vector<long long> assignment(qnodes.size(), -1);
  std::unordered_set<long long> used;
  double edge_total = static_cast<double>(qedges.size());
  bool done = false;
  Stopwatch search_timer;

  std::function<void(size_t)> dfs = [&](size_t pos) {
    if (done) return;
    if (options.search_budget_seconds > 0 &&
        (report.candidate_alignments_considered & 0xff) == 0 &&
        search_timer.ElapsedSeconds() > options.search_budget_seconds) {
      report.timed_out = true;
      done = true;
      return;
    }
    if (pos == order.size()) {
      ++report.candidate_alignments_considered;
      double sum = 0;
      for (const QueryEdge& e : qedges) {
        sum += flow_score(assignment[e.src], assignment[e.dst]);
      }
      double score = edge_total == 0 ? 0.0 : sum / edge_total;
      if (score >= options.score_threshold) {
        FuzzyAlignment align;
        align.score = score;
        for (const auto& [id, qi] : qnode_index) {
          align.nodes.emplace(id, assignment[qi]);
        }
        report.alignments.push_back(std::move(align));
        if (!options.exhaustive) done = true;
      }
      return;
    }
    int qi = order[pos];
    for (long long cand : candidates[qi]) {
      if (used.count(cand)) continue;
      assignment[qi] = cand;
      used.insert(cand);
      dfs(pos + 1);
      used.erase(cand);
      assignment[qi] = -1;
      if (done) return;
    }
  };
  dfs(0);

  std::sort(report.alignments.begin(), report.alignments.end(),
            [](const FuzzyAlignment& a, const FuzzyAlignment& b) {
              return a.score > b.score;
            });

  // Project the return clause from every acceptable alignment.
  for (const tbql::ResolvedReturn& r : aq.returns) {
    report.results.columns.push_back(r.attr.empty() ? r.id
                                                    : r.id + "." + r.attr);
  }
  std::unordered_set<std::string> seen;
  for (const FuzzyAlignment& align : report.alignments) {
    std::vector<std::string> row;
    row.reserve(aq.returns.size());
    for (const tbql::ResolvedReturn& r : aq.returns) {
      if (r.is_event) {
        row.push_back("");
        continue;
      }
      auto it = align.nodes.find(r.id);
      row.push_back(it == align.nodes.end() || it->second <= 0
                        ? ""
                        : entities[it->second - 1].Attribute(r.attr));
    }
    std::string key = Join(row, "\x1f");
    if (seen.insert(key).second) {
      report.results.rows.push_back(std::move(row));
    }
  }
  report.timings.searching_seconds = timer.ElapsedSeconds();
  return report;
}

}  // namespace raptor::engine
