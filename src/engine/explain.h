// EXPLAIN for TBQL queries: renders the execution plan the scheduler would
// choose — per-pattern pruning scores, the scheduled order, the backend and
// compiled data query text per pattern — without touching any data. Used
// by the CLI and handy when iterating on hand-written hunting queries.
#pragma once

#include <string>
#include <string_view>

#include "common/status.h"
#include "tbql/ast.h"

namespace raptor::engine {

/// Explain a parsed query.
Result<std::string> ExplainPlan(const tbql::TbqlQuery& query);

/// Parse and explain TBQL text.
Result<std::string> ExplainPlanText(std::string_view text);

}  // namespace raptor::engine
