// Fuzzy search mode (Sec III-F) based on Poirot's inexact graph pattern
// matching (CCS'19), reimplemented from scratch:
//
//  * Node-level alignment: IOC strings in the TBQL query align to stored
//    system entities by Levenshtein similarity, so typos / small IOC
//    changes still retrieve the right entities.
//  * Graph-level alignment: a candidate assignment of query nodes to
//    provenance-graph nodes is scored by summing per-edge flow scores; a
//    flow from aligned(u) to aligned(v) at distance d hops contributes
//    1 / C^(d-1) ("attacker influence" decays with each hop through
//    another process). The alignment score is the normalized sum.
//  * Poirot stops at the FIRST alignment whose score passes the threshold;
//    ThreatRaptor-Fuzzy performs an EXHAUSTIVE search over all acceptable
//    alignments (the paper's extension), which costs more time (Table IX).
//
// Execution is staged and timed like Table IX: loading (entities/events
// out of the store), preprocessing (provenance graph construction),
// searching (alignment enumeration).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/executor.h"
#include "storage/store.h"
#include "tbql/analyzer.h"

namespace raptor::engine {

struct FuzzyOptions {
  /// Minimum Levenshtein similarity for node-level alignment.
  double node_similarity = 0.6;
  /// Minimum alignment score to accept.
  double score_threshold = 0.6;
  /// Maximum flow distance explored between aligned node pairs.
  int max_flow_hops = 4;
  /// Influence decay base C: flow at distance d scores 1/C^(d-1).
  double influence_base = 2.0;
  /// true = ThreatRaptor-Fuzzy (exhaustive); false = Poirot (first match).
  bool exhaustive = true;
  /// Cap on node-alignment candidates per query node.
  size_t max_candidates = 256;
  /// Wall-clock budget for the searching stage; 0 = unbounded. The paper's
  /// Table IX reports ">3600" for searches exceeding one hour — exhaustive
  /// alignment on dense graphs genuinely explodes.
  double search_budget_seconds = 60.0;
};

struct FuzzyTimings {
  double loading_seconds = 0;
  double preprocessing_seconds = 0;
  double searching_seconds = 0;

  double total() const {
    return loading_seconds + preprocessing_seconds + searching_seconds;
  }
};

struct FuzzyAlignment {
  /// TBQL entity id -> aligned audit entity id.
  std::map<std::string, long long> nodes;
  double score = 0;
};

struct FuzzyReport {
  std::vector<FuzzyAlignment> alignments;  // score-descending
  FuzzyTimings timings;
  TbqlResultSet results;  // return clause projected from all alignments
  size_t candidate_alignments_considered = 0;
  /// True when the search budget expired before the space was exhausted
  /// (already-found alignments are still reported).
  bool timed_out = false;
};

class FuzzyMatcher {
 public:
  explicit FuzzyMatcher(const storage::AuditStore* store) : store_(store) {}

  Result<FuzzyReport> Search(const tbql::TbqlQuery& query,
                             const FuzzyOptions& options = {}) const;

  Result<FuzzyReport> SearchText(std::string_view text,
                                 const FuzzyOptions& options = {}) const;

 private:
  const storage::AuditStore* store_;
};

}  // namespace raptor::engine
