#include "engine/executor.h"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"
#include "common/interner.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/trace.h"

namespace raptor::engine {

namespace {

using tbql::AnalyzedQuery;
using tbql::AttrExpr;
using tbql::AttrExprKind;
using tbql::Pattern;
using tbql::TemporalRel;

/// One concrete match of a TBQL pattern: the bound subject/object entity
/// ids, plus event identity and times when the pattern is a (length-1)
/// event pattern.
struct PatternMatch {
  long long subject_id = 0;
  long long object_id = 0;
  long long event_id = 0;  // 0 when the pattern is a multi-hop path
  long long start_time = 0;
  long long end_time = 0;
  bool has_event = false;
};

size_t CountAtoms(const AttrExpr& e) {
  switch (e.kind) {
    case AttrExprKind::kBareValue:
    case AttrExprKind::kCompare:
    case AttrExprKind::kInList:
      return 1;
    case AttrExprKind::kAnd:
    case AttrExprKind::kOr:
      return CountAtoms(*e.lhs) + CountAtoms(*e.rhs);
    case AttrExprKind::kNot:
      return CountAtoms(*e.lhs);
  }
  return 0;
}

/// Sentinel for an entity slot not yet bound by any joined pattern.
constexpr long long kUnboundEntity = std::numeric_limits<long long>::min();

/// A partial/full assignment under construction during the join phase.
/// TBQL entity ids are interned into dense slots up front, so extending an
/// assignment copies two flat vectors instead of two string-keyed maps.
struct Assignment {
  std::vector<long long> entities;          // entity slot -> audit entity
  std::vector<const PatternMatch*> events;  // pattern index -> match
};

/// Hash over projected result rows for DISTINCT, replacing the old
/// delimiter-joined string key (one concatenation per row).
struct StringRowHash {
  size_t operator()(const std::vector<std::string>& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    for (const std::string& s : row) {
      h = HashCombine(h, std::hash<std::string>{}(s));
    }
    return h;
  }
};

}  // namespace

std::string TbqlResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t n = std::min(max_rows, rows.size());
  for (size_t i = 0; i < n; ++i) out += Join(rows[i], " | ") + "\n";
  if (rows.size() > n) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

double PruningScore(const AnalyzedQuery& aq, size_t idx) {
  const Pattern& p = aq.query->patterns[idx];
  size_t constraints = 0;
  for (const std::string& id : {p.subject.id, p.object.id}) {
    for (const AttrExpr* f : aq.entities.at(id).filters) {
      constraints += CountAtoms(*f);
    }
  }
  if (p.op) {
    std::vector<std::string> ops;
    p.op->CollectOps(&ops);
    constraints += ops.empty() ? 0 : 1;
  }
  if (p.event_filter) constraints += CountAtoms(*p.event_filter);
  if (p.window.has_value()) ++constraints;
  // Smaller maximum path length => higher score (Sec III-F). An event
  // pattern behaves like a length-1 path.
  int max_len = 1;
  if (p.path.is_path) max_len = p.path.max_len < 0 ? 16 : p.path.max_len;
  return static_cast<double>(constraints) + 1.0 / static_cast<double>(max_len);
}

Result<ExecReport> TbqlExecutor::ExecuteText(std::string_view text,
                                             const ExecOptions& options) const {
  auto query = tbql::ParseTbql(text);
  if (!query.ok()) return query.status();
  return Execute(query.value(), options);
}

double TbqlExecutor::EstimateCost(std::string_view text) const {
  auto query = tbql::ParseTbql(text);
  if (!query.ok()) return 0.0;
  auto analyzed = tbql::Analyze(query.value());
  if (!analyzed.ok()) return 0.0;
  const AnalyzedQuery& aq = analyzed.value();
  double total = 0.0;
  for (size_t idx = 0; idx < aq.query->patterns.size(); ++idx) {
    // Empty constraints and now=0: the estimate prices the un-propagated
    // pattern, matching the worst case the scheduler starts from.
    auto dq = CompilePattern(aq, idx, {}, 0);
    if (!dq.ok()) continue;
    if (dq.value().backend == Backend::kRelational) {
      total += store_->relational().EstimateCost(dq.value().text);
    } else {
      total += store_->graph().EstimateCost(dq.value().text);
    }
  }
  return total;
}

std::vector<std::vector<size_t>> PatternDependencies(
    const AnalyzedQuery& aq, const std::vector<size_t>& order) {
  const tbql::TbqlQuery& query = *aq.query;
  auto joinable = [&aq](const std::string& id) {
    return aq.entities.at(id).type != tbql::EntityType::kNetwork;
  };
  std::vector<std::vector<size_t>> deps(query.patterns.size());
  for (size_t oi = 0; oi < order.size(); ++oi) {
    const Pattern& pi = query.patterns[order[oi]];
    for (size_t oj = 0; oj < oi; ++oj) {
      const Pattern& pj = query.patterns[order[oj]];
      bool shared = false;
      for (const std::string& id : {pi.subject.id, pi.object.id}) {
        if (!joinable(id)) continue;
        if (id == pj.subject.id || id == pj.object.id) {
          shared = true;
          break;
        }
      }
      if (shared) deps[order[oi]].push_back(order[oj]);
    }
  }
  return deps;
}

Result<ExecReport> TbqlExecutor::Execute(const tbql::TbqlQuery& query,
                                         const ExecOptions& options) const {
  Stopwatch timer;
  ExecReport report;
  auto analyzed = tbql::Analyze(query);
  if (!analyzed.ok()) return analyzed.status();
  const AnalyzedQuery& aq = analyzed.value();
  size_t n_patterns = query.patterns.size();
  report.pattern_match_counts.assign(n_patterns, 0);

  // "last N" windows resolve against the newest event in the store.
  audit::Timestamp now = 0;
  for (const audit::SystemEvent& ev : store_->events()) {
    now = std::max(now, ev.end_time);
  }

  // ---- Scheduling ----------------------------------------------------------
  std::vector<size_t> order(n_patterns);
  for (size_t i = 0; i < n_patterns; ++i) order[i] = i;
  if (options.use_scheduler) {
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return PruningScore(aq, a) > PruningScore(aq, b);
    });
  }
  // Dirty-restricted passes force the restricted pattern to execute first,
  // so its (small) match set drives constraint propagation into every
  // dependent pattern instead of the other way around. Applied before the
  // DAG is derived — dependencies follow execution order.
  if (options.force_first_pattern >= 0 &&
      static_cast<size_t>(options.force_first_pattern) < n_patterns) {
    auto it = std::find(order.begin(), order.end(),
                        static_cast<size_t>(options.force_first_pattern));
    if (it != order.end()) std::rotate(order.begin(), it, it + 1);
  }

  // Network-connection entities are flow-scoped (one 5-tuple per
  // connection): a reused ip entity ID means "the same destination", which
  // the replicated dstip filter already enforces, NOT "the same flow".
  // They are therefore excluded from id propagation and join equality.
  auto joinable = [&aq](const std::string& id) {
    return aq.entities.at(id).type != tbql::EntityType::kNetwork;
  };

  // ---- Per-pattern execution with constraint propagation -------------------
  // The constraint-propagation DAG chains every pattern pair sharing a
  // joinable entity id in scheduler order; patterns with no edge are
  // independent and may execute concurrently. Each pattern reads the
  // shared domains when it starts (its DAG predecessors have all finished,
  // so it sees exactly the serial schedule's domains) and intersects its
  // own matched ids back in when it completes; the mutex only guards those
  // two boundary touches, never a data query.
  EntityConstraints constraints;
  if (options.initial_constraints != nullptr) {
    constraints = *options.initial_constraints;
  }
  std::mutex constraints_mu;
  std::vector<std::vector<PatternMatch>> matches(n_patterns);
  std::vector<std::string> query_texts(n_patterns);
  if (options.propagate_constraints) {
    report.pattern_deps = PatternDependencies(aq, order);
  } else {
    report.pattern_deps.assign(n_patterns, {});
  }

  auto check_interrupt = [&options]() -> Status {
    if (options.cancel != nullptr &&
        options.cancel->load(std::memory_order_relaxed)) {
      return Status::Cancelled("hunt cancelled");
    }
    if (options.deadline.has_value() &&
        std::chrono::steady_clock::now() > *options.deadline) {
      return Status::Timeout("hunt deadline exceeded");
    }
    return Status::OK();
  };

  // Intersect pattern `idx`'s matched subject/object ids into the shared
  // constraint domains (the "adding filters" step of the scheduling
  // algorithm); the mutex guards only this boundary touch.
  auto propagate_ids = [&](size_t idx) {
    const std::vector<PatternMatch>& out = matches[idx];
    if (out.empty()) return;
    const Pattern& p = query.patterns[idx];
    for (const auto& [id, pick] :
         {std::pair{p.subject.id, &PatternMatch::subject_id},
          std::pair{p.object.id, &PatternMatch::object_id}}) {
      if (!joinable(id)) continue;
      EntitySet ids;
      ids.reserve(out.size());
      for (const PatternMatch& m : out) ids.insert(m.*pick);
      std::lock_guard<std::mutex> lock(constraints_mu);
      auto it = constraints.find(id);
      if (it == constraints.end()) {
        constraints.emplace(id, std::move(ids));
      } else {
        // Intersect with the previous domain: probe the larger set with
        // the smaller one (the old path merged two sorted vectors).
        const EntitySet& small =
            ids.size() < it->second.size() ? ids : it->second;
        const EntitySet& large =
            ids.size() < it->second.size() ? it->second : ids;
        EntitySet merged;
        merged.reserve(small.size());
        for (long long v : small) {
          if (large.count(v)) merged.insert(v);
        }
        it->second = std::move(merged);
      }
    }
  };

  // Compile and execute pattern `idx`. Constrained mode (the DAG
  // schedules) reads the propagated domains before compiling and
  // intersects its matched ids back afterwards; unconstrained mode
  // (speculative execution) does neither — the serial domain replay
  // below re-applies both post-hoc.
  auto run_pattern = [&](size_t idx, bool constrained) -> Status {
    RAPTOR_RETURN_NOT_OK(check_interrupt());
    auto pattern_start = obs::TraceSpan::Clock::now();
    obs::TraceSpan* pspan =
        obs::Child(options.trace, "pattern[" + std::to_string(idx) + "]");
    EntityConstraints relevant;
    if (options.propagate_constraints && constrained) {
      const Pattern& p = query.patterns[idx];
      std::lock_guard<std::mutex> lock(constraints_mu);
      for (const std::string& id : {p.subject.id, p.object.id}) {
        if (!joinable(id)) continue;
        auto it = constraints.find(id);
        if (it != constraints.end()) relevant.emplace(*it);
      }
    }
    if (pspan != nullptr) {
      pspan->Set("constraint_domains", static_cast<int64_t>(relevant.size()));
      int64_t domain_ids = 0;
      for (const auto& [id, ids] : relevant) {
        domain_ids += static_cast<int64_t>(ids.size());
      }
      pspan->Set("constraint_domain_ids", domain_ids);
      pspan->Note("constrained", constrained ? "true" : "false");
    }
    auto dq = CompilePattern(aq, idx, relevant, now);
    if (!dq.ok()) return dq.status();
    query_texts[idx] = dq.value().text;

    std::vector<PatternMatch>& out = matches[idx];
    if (dq.value().backend == Backend::kRelational) {
      obs::Note(pspan, "backend", "relational");
      sql::SelectOptions sopts = store_->relational().options();
      sopts.cancel = options.cancel;
      sopts.deadline = options.deadline;
      sopts.result_cache = options.sql_result_cache;
      sopts.trace = pspan;
      auto rs = store_->relational().QueryBlocks(dq.value().text, sopts);
      if (!rs.ok()) return rs.status();
      out.reserve(rs.value().rows.row_count());
      auto cursor = rs.value().cursor();
      while (const sql::Row* row = cursor.Next()) {
        PatternMatch m;
        m.event_id = (*row)[0].AsInt();
        m.subject_id = (*row)[1].AsInt();
        m.object_id = (*row)[2].AsInt();
        m.start_time = (*row)[3].AsInt();
        m.end_time = (*row)[4].AsInt();
        m.has_event = true;
        out.push_back(m);
      }
    } else {
      obs::Note(pspan, "backend", "graph");
      graphdb::MatchOptions gopts = store_->graph().options();
      gopts.cancel = options.cancel;
      gopts.deadline = options.deadline;
      gopts.result_cache = options.graph_result_cache;
      gopts.trace = pspan;
      auto rs = store_->graph().QueryBlocks(dq.value().text, gopts);
      if (!rs.ok()) return rs.status();
      bool has_event = dq.value().has_event_columns;
      out.reserve(rs.value().rows.row_count());
      auto cursor = rs.value().cursor();
      while (const std::vector<graphdb::Value>* row = cursor.Next()) {
        PatternMatch m;
        m.subject_id = (*row)[0].AsInt();
        m.object_id = (*row)[1].AsInt();
        if (has_event && row->size() >= 5) {
          m.event_id = (*row)[2].AsInt();
          m.start_time = (*row)[3].AsInt();
          m.end_time = (*row)[4].AsInt();
          m.has_event = true;
        }
        out.push_back(m);
      }
    }
    report.pattern_match_counts[idx] = out.size();

    if (options.propagate_constraints && constrained) {
      auto prop_start = obs::TraceSpan::Clock::now();
      propagate_ids(idx);
      if (pspan != nullptr) {
        pspan->Set("propagate_us",
                   std::chrono::duration_cast<std::chrono::microseconds>(
                       obs::TraceSpan::Clock::now() - prop_start)
                       .count());
      }
    }
    if (pspan != nullptr) {
      pspan->Set("match_count", static_cast<int64_t>(out.size()));
      pspan->SetWindow(pattern_start, obs::TraceSpan::Clock::now());
    }
    return Status::OK();
  };

  bool parallel_patterns = options.parallel_patterns && n_patterns > 1 &&
                           options.max_pattern_workers > 1;
  bool speculative = options.speculative_patterns && parallel_patterns &&
                     options.propagate_constraints;
  if (!parallel_patterns) {
    for (size_t idx : order) RAPTOR_RETURN_NOT_OK(run_pattern(idx, true));
  } else if (speculative) {
    // Speculative schedule: every pattern runs unconstrained in parallel
    // (DAG edges ignored), then a serial replay in scheduler order filters
    // each pattern's speculative matches by the domains accumulated so far
    // and intersects the filtered ids back. A propagated constraint only
    // appends restrictive `id IN (domain)` conjuncts to a data query, so
    // the replay reproduces the serial schedule's domains, match lists,
    // and match counts exactly — only the executed query texts differ.
    std::vector<Status> results(n_patterns, Status::OK());
    size_t workers = std::min<size_t>(
        static_cast<size_t>(options.max_pattern_workers), n_patterns);
    ThreadPool::Shared().ParallelFor(n_patterns, workers, [&](size_t i) {
      results[i] = run_pattern(order[i], /*constrained=*/false);
    });
    for (const Status& st : results) RAPTOR_RETURN_NOT_OK(st);
    for (size_t idx : order) {
      const Pattern& p = query.patterns[idx];
      auto sit = joinable(p.subject.id) ? constraints.find(p.subject.id)
                                        : constraints.end();
      auto oit = joinable(p.object.id) ? constraints.find(p.object.id)
                                       : constraints.end();
      if (sit != constraints.end() || oit != constraints.end()) {
        std::vector<PatternMatch> kept;
        kept.reserve(matches[idx].size());
        for (const PatternMatch& m : matches[idx]) {
          if (sit != constraints.end() &&
              sit->second.count(m.subject_id) == 0) {
            continue;
          }
          if (oit != constraints.end() &&
              oit->second.count(m.object_id) == 0) {
            continue;
          }
          kept.push_back(m);
        }
        matches[idx] = std::move(kept);
        report.pattern_match_counts[idx] = matches[idx].size();
      }
      propagate_ids(idx);
    }
  } else {
    // Dataflow ready-queue over the DAG on the shared pool: workers claim
    // ready patterns, and each completion unlocks its dependents. The
    // caller participates (ThreadPool::ParallelFor), so the schedule makes
    // progress even when every pool helper is busy elsewhere; a worker
    // only blocks while some other worker is executing a pattern, so the
    // wait always terminates.
    std::vector<size_t> indegree(n_patterns, 0);
    std::vector<std::vector<size_t>> dependents(n_patterns);
    for (size_t i = 0; i < n_patterns; ++i) {
      indegree[i] = report.pattern_deps[i].size();
      for (size_t d : report.pattern_deps[i]) dependents[d].push_back(i);
    }
    std::mutex mu;
    std::condition_variable cv;
    std::deque<size_t> ready;
    for (size_t idx : order) {
      if (indegree[idx] == 0) ready.push_back(idx);
    }
    size_t remaining = n_patterns;
    bool failed = false;
    Status first_error;
    size_t workers = std::min<size_t>(
        static_cast<size_t>(options.max_pattern_workers), n_patterns);
    ThreadPool::Shared().ParallelFor(workers, workers, [&](size_t) {
      for (;;) {
        size_t idx;
        {
          std::unique_lock<std::mutex> lock(mu);
          cv.wait(lock, [&] {
            return failed || remaining == 0 || !ready.empty();
          });
          if (failed || remaining == 0) return;
          idx = ready.front();
          ready.pop_front();
        }
        Status st = run_pattern(idx, /*constrained=*/true);
        {
          std::lock_guard<std::mutex> lock(mu);
          if (!st.ok()) {
            if (!failed) {
              failed = true;
              first_error = st;
            }
          } else if (!failed) {
            for (size_t dep : dependents[idx]) {
              if (--indegree[dep] == 0) ready.push_back(dep);
            }
          }
          --remaining;
        }
        cv.notify_all();
      }
    });
    if (failed) return first_error;
  }
  for (size_t idx : order) {
    report.executed_queries.push_back(std::move(query_texts[idx]));
  }

  // Re-filter earlier pattern matches with the final entity domains (later
  // patterns may have narrowed entities that earlier executions bound).
  // Patterns are independent here — each task reads the shared (now
  // frozen) constraint domains and rewrites only its own match list — so
  // the pass fans out over the shared worker pool once there is enough
  // work to amortize dispatch (typical hunts filter a few dozen matches,
  // which stay on the inline path).
  if (options.propagate_constraints) {
    obs::ScopedSpan refilter_span(options.trace, "refilter");
    size_t total_matches = 0;
    for (const auto& m : matches) total_matches += m.size();
    obs::Set(refilter_span.get(), "input_matches",
             static_cast<int64_t>(total_matches));
    constexpr size_t kParallelRefilterMinMatches = 4096;
    auto refilter = [&](size_t i) {
      const Pattern& p = query.patterns[i];
      auto sit = joinable(p.subject.id) ? constraints.find(p.subject.id)
                                        : constraints.end();
      auto oit = joinable(p.object.id) ? constraints.find(p.object.id)
                                       : constraints.end();
      auto allowed = [](const EntityConstraints::const_iterator& it,
                        long long v) { return it->second.count(v) > 0; };
      std::vector<PatternMatch> kept;
      kept.reserve(matches[i].size());
      for (const PatternMatch& m : matches[i]) {
        if (sit != constraints.end() && !allowed(sit, m.subject_id)) {
          continue;
        }
        if (oit != constraints.end() && !allowed(oit, m.object_id)) {
          continue;
        }
        kept.push_back(m);
      }
      matches[i] = std::move(kept);
    };
    if (n_patterns > 1 && total_matches >= kParallelRefilterMinMatches) {
      ThreadPool::Shared().ParallelFor(n_patterns, refilter);
    } else {
      for (size_t i = 0; i < n_patterns; ++i) refilter(i);
    }
  }

  // ---- Join phase ----------------------------------------------------------
  // Join patterns in ascending match-count order; hash-join on the entity
  // ids already bound by the partial assignments. Entity ids are interned
  // into dense slots so binding checks are flat vector reads.
  obs::TraceSpan* join_span = obs::Child(options.trace, "join");
  StringInterner entity_slots;
  for (const Pattern& p : query.patterns) {
    entity_slots.Intern(p.subject.id);
    entity_slots.Intern(p.object.id);
  }

  std::vector<size_t> join_order;
  for (size_t i = 0; i < n_patterns; ++i) {
    if (matches[i].empty()) {
      report.unmatched_patterns.push_back(i);
    } else {
      join_order.push_back(i);
    }
  }
  std::sort(join_order.begin(), join_order.end(), [&](size_t a, size_t b) {
    return matches[a].size() < matches[b].size();
  });
  // Dirty-restricted passes must not reinterpret "pattern found nothing
  // under the restricted domain" as "pattern is excessive, exclude it from
  // the join" — that would fabricate rows the unrestricted query never
  // produces. Such passes demand every pattern contributes or the pass
  // result is empty.
  if (options.require_all_patterns && !report.unmatched_patterns.empty()) {
    join_order.clear();
  }

  std::vector<Assignment> assignments;
  // Seed with the empty assignment only when at least one pattern matched;
  // otherwise the result set is empty (not one all-empty row).
  if (!join_order.empty()) {
    Assignment seed;
    seed.entities.assign(entity_slots.size(), kUnboundEntity);
    seed.events.assign(n_patterns, nullptr);
    assignments.push_back(std::move(seed));
  }
  for (size_t idx : join_order) {
    RAPTOR_RETURN_NOT_OK(check_interrupt());
    const Pattern& p = query.patterns[idx];
    std::vector<Assignment> next;
    uint32_t s_slot = entity_slots.Lookup(p.subject.id);
    uint32_t o_slot = entity_slots.Lookup(p.object.id);
    bool subj_joinable = joinable(p.subject.id);
    bool obj_joinable = joinable(p.object.id);
    for (const Assignment& a : assignments) {
      long long bound_s = subj_joinable ? a.entities[s_slot] : kUnboundEntity;
      long long bound_o = obj_joinable ? a.entities[o_slot] : kUnboundEntity;
      for (const PatternMatch& m : matches[idx]) {
        if (bound_s != kUnboundEntity && bound_s != m.subject_id) continue;
        if (bound_o != kUnboundEntity && bound_o != m.object_id) continue;
        // Entity-ID reuse within one pattern ("proc p start proc p") means
        // subject and object are the same entity.
        if (p.subject.id == p.object.id && m.subject_id != m.object_id) {
          continue;
        }
        Assignment na = a;
        na.entities[s_slot] = m.subject_id;
        na.entities[o_slot] = m.object_id;
        na.events[idx] = &m;
        next.push_back(std::move(na));
      }
    }
    assignments = std::move(next);
    if (assignments.empty()) break;
  }
  obs::Set(join_span, "assignments", static_cast<int64_t>(assignments.size()));
  obs::Finish(join_span);

  // ---- Temporal & attribute relationships ----------------------------------
  RAPTOR_RETURN_NOT_OK(check_interrupt());
  obs::TraceSpan* project_span = obs::Child(options.trace, "project");
  auto event_of = [&](const Assignment& a,
                      const std::string& id) -> const PatternMatch* {
    auto pit = aq.pattern_by_id.find(id);
    if (pit == aq.pattern_by_id.end()) return nullptr;
    return a.events[pit->second];
  };
  auto entity_of = [&](const Assignment& a, const std::string& id) {
    uint32_t slot = entity_slots.Lookup(id);
    return slot == kNoSymbol ? kUnboundEntity : a.entities[slot];
  };
  std::vector<Assignment> satisfying;
  for (Assignment& a : assignments) {
    bool ok = true;
    for (const TemporalRel& rel : query.temporal_rels) {
      const PatternMatch* l = event_of(a, rel.left);
      const PatternMatch* r = event_of(a, rel.right);
      if (l == nullptr || r == nullptr) continue;  // unmatched pattern
      if (!l->has_event || !r->has_event) {
        ok = false;
        break;
      }
      const PatternMatch* first = l;
      const PatternMatch* second = r;
      if (rel.op == tbql::TemporalOp::kAfter) std::swap(first, second);
      if (rel.op == tbql::TemporalOp::kWithin) {
        long long gap = std::llabs(r->start_time - l->start_time);
        long long lo = rel.min_gap < 0 ? 0 : rel.min_gap;
        long long hi = rel.max_gap < 0 ? 0 : rel.max_gap;
        if (gap < lo || gap > hi) {
          ok = false;
          break;
        }
        continue;
      }
      long long gap = second->start_time - first->end_time;
      if (rel.min_gap >= 0 || rel.max_gap >= 0) {
        if (gap < (rel.min_gap < 0 ? 0 : rel.min_gap) ||
            (rel.max_gap >= 0 && gap > rel.max_gap)) {
          ok = false;
          break;
        }
      } else if (first->end_time > second->start_time) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    for (const tbql::AttrRel& rel : query.attr_rels) {
      auto attr_value = [&](const std::string& qual,
                            const std::string& attr) -> std::string {
        long long ent = entity_of(a, qual);
        if (ent != kUnboundEntity) {
          return store_->entities()[ent - 1].Attribute(attr);
        }
        const PatternMatch* m = event_of(a, qual);
        if (m != nullptr) {
          if (attr == "id") return std::to_string(m->event_id);
          if (attr == "start_time") return std::to_string(m->start_time);
          if (attr == "end_time") return std::to_string(m->end_time);
          const audit::SystemEvent& ev = store_->EventById(m->event_id);
          if (attr == "amount") return std::to_string(ev.amount);
          if (attr == "failure_code") return std::to_string(ev.failure_code);
          if (attr == "op") return audit::EventOpName(ev.op);
        }
        return "";
      };
      std::string lv = attr_value(rel.left_qualifier, rel.left_attr);
      std::string rv = attr_value(rel.right_qualifier, rel.right_attr);
      long long ln = 0, rn = 0;
      int cmp;
      if (ParseInt64(lv, &ln) && ParseInt64(rv, &rn)) {
        cmp = ln < rn ? -1 : (ln > rn ? 1 : 0);
      } else {
        cmp = lv.compare(rv);
        cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
      }
      bool pass = false;
      switch (rel.op) {
        case tbql::CompareOp::kEq: pass = cmp == 0; break;
        case tbql::CompareOp::kNe: pass = cmp != 0; break;
        case tbql::CompareOp::kLt: pass = cmp < 0; break;
        case tbql::CompareOp::kLe: pass = cmp <= 0; break;
        case tbql::CompareOp::kGt: pass = cmp > 0; break;
        case tbql::CompareOp::kGe: pass = cmp >= 0; break;
      }
      if (!pass) {
        ok = false;
        break;
      }
    }
    if (ok) satisfying.push_back(std::move(a));
  }

  // Events found by the event patterns (for evaluation): union of the
  // per-pattern matches that survived constraint propagation.
  std::set<long long> matched_events;
  for (size_t i = 0; i < n_patterns; ++i) {
    for (const PatternMatch& m : matches[i]) {
      if (m.has_event) matched_events.insert(m.event_id);
    }
  }

  // ---- Projection -----------------------------------------------------------
  for (const tbql::ResolvedReturn& r : aq.returns) {
    report.results.columns.push_back(r.attr.empty() ? r.id
                                                    : r.id + "." + r.attr);
  }
  std::unordered_set<std::vector<std::string>, StringRowHash> seen;
  for (const Assignment& a : satisfying) {
    std::vector<std::string> row;
    row.reserve(aq.returns.size());
    for (const tbql::ResolvedReturn& r : aq.returns) {
      if (r.is_event) {
        const PatternMatch* m = event_of(a, r.id);
        if (m == nullptr) {
          row.push_back("");
          continue;
        }
        if (r.attr == "id") {
          row.push_back(std::to_string(m->event_id));
        } else if (r.attr == "start_time") {
          row.push_back(std::to_string(m->start_time));
        } else if (r.attr == "end_time") {
          row.push_back(std::to_string(m->end_time));
        } else {
          const audit::SystemEvent& ev = store_->EventById(m->event_id);
          if (r.attr == "amount") {
            row.push_back(std::to_string(ev.amount));
          } else if (r.attr == "failure_code") {
            row.push_back(std::to_string(ev.failure_code));
          } else {
            row.push_back(audit::EventOpName(ev.op));
          }
        }
      } else {
        long long ent = entity_of(a, r.id);
        row.push_back(ent == kUnboundEntity
                          ? ""
                          : store_->entities()[ent - 1].Attribute(r.attr));
      }
    }
    if (query.distinct && !seen.insert(row).second) continue;
    report.results.rows.push_back(std::move(row));
  }
  report.matched_event_ids.assign(matched_events.begin(),
                                  matched_events.end());
  obs::Set(project_span, "rows_emitted",
           static_cast<int64_t>(report.results.rows.size()));
  obs::Finish(project_span);
  report.seconds = timer.ElapsedSeconds();
  return report;
}

tbql::TbqlQuery ToLength1PathQuery(const tbql::TbqlQuery& query) {
  // TBQL queries round-trip through their printed form; clone that way and
  // rewrite each basic event pattern to a "->" length-1 path.
  auto clone = tbql::ParseTbql(query.ToString());
  tbql::TbqlQuery out = std::move(clone).value();
  for (tbql::Pattern& p : out.patterns) {
    if (!p.path.is_path) {
      p.path.is_path = true;
      p.path.fuzzy_arrow = false;
      p.path.min_len = 1;
      p.path.max_len = 1;
    }
  }
  return out;
}

}  // namespace raptor::engine
