// TBQL query execution engine (Sec III-F): exact search mode.
//
// Each TBQL pattern compiles into a small data query (compiler.h). The
// scheduler orders their execution by estimated pruning power — the count
// of declared constraints, with shorter maximum path lengths scoring higher
// — and propagates the concrete entity ids matched by executed patterns
// into dependent patterns (patterns sharing an entity id) as IN-filters.
// Matched per-pattern events are then joined on shared entities, temporal
// and attribute relationships are applied, and the return clause projects
// entity/event attributes.
//
// Compared to the naive plan (one giant SQL/Cypher query), this avoids
// weaving many joins and non-equi temporal constraints together, which is
// what Table VIII measures.
//
// Pattern execution is DAG-scheduled: patterns that share a joinable
// entity id are chained in scheduler order (constraint propagation needs
// the predecessor's matched ids), while independent patterns carry no edge
// and execute concurrently on the shared worker pool through a dataflow
// ready queue. Because dependencies serialize exactly the pattern pairs
// that interact through the constraint domains, the concurrent schedule
// produces byte-identical reports to the serial one. Speculative mode
// (ExecOptions::speculative_patterns) drops even those edges: dependent
// patterns run unconstrained in parallel and a serial replay re-validates
// the domains post-hoc, preserving result identity at the cost of
// potentially wasted scan work. Cooperative cancellation and deadlines
// (HuntService tickets) are polled at pattern boundaries and inside the
// storage executors' scan loops.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/compiler.h"
#include "storage/store.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::obs {
class TraceSpan;
}  // namespace raptor::obs

namespace raptor::engine {

struct ExecOptions {
  /// Schedule patterns by pruning score (false: textual order).
  bool use_scheduler = true;
  /// Propagate matched entity ids into dependent data queries.
  bool propagate_constraints = true;
  /// Execute independent patterns (no constraint-propagation edge between
  /// them) concurrently on the shared worker pool. false: strictly
  /// sequential in scheduler order (the differential baseline).
  bool parallel_patterns = true;
  /// Speculative pattern execution: ignore the constraint-propagation DAG
  /// and run every pattern unconstrained in parallel — including pairs
  /// that share an entity id — then replay the scheduler order serially,
  /// filtering each pattern's speculative matches by the accumulated
  /// domains and intersecting the filtered ids back. Because a propagated
  /// constraint only appends restrictive `id IN (domain)` conjuncts to a
  /// pattern's data query, the replay reproduces the serial schedule's
  /// domains and match lists exactly: results are byte-identical, only
  /// ExecReport::executed_queries shows the unconstrained texts. Wins
  /// wall-clock when the DAG's critical path dominates; wastes work when
  /// propagation would have pruned a dependent pattern's scan. Requires
  /// parallel_patterns and propagate_constraints (no-op otherwise).
  bool speculative_patterns = false;
  /// Concurrency cap for the pattern dataflow (the effective width is also
  /// bounded by the pattern count and the pool size).
  int max_pattern_workers = 4;
  /// Cooperative cancellation: polled at pattern boundaries, join levels,
  /// and inside the storage executors' scan loops. When set mid-query the
  /// hunt returns Status::Cancelled. Must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline; exceeded at any pattern/join boundary the hunt
  /// returns Status::Timeout.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Incremental standing refreshes: entity-id domains seeded into the
  /// shared constraint map before any pattern executes, exactly as if a
  /// predecessor pattern had matched those ids. Restricting a shared
  /// entity variable to the epoch's dirty ids is how the service runs a
  /// dirty-only TBQL pass. Must outlive the call.
  const EntityConstraints* initial_constraints = nullptr;
  /// Require every pattern to match: when any pattern matches nothing,
  /// return an empty result instead of excluding it from the join (the
  /// paper's excessive-pattern tolerance). Dirty-restricted passes need
  /// this — under a restricted domain an empty pattern means "no new
  /// contribution", not "pattern is excessive".
  bool require_all_patterns = false;
  /// When >= 0, move this pattern index to the front of the execution
  /// order so its (restricted) matches drive constraint propagation into
  /// every dependent pattern. -1 = scheduler order.
  int force_first_pattern = -1;
  /// Multi-query optimization: shared-subresult caches handed through to
  /// the storage executors (SelectOptions/MatchOptions::result_cache), so
  /// identical compiled data queries — shared seed probes, duplicated
  /// templates — execute once per epoch. Must outlive the call.
  storage::QueryResultCache<sql::BlockResultSet>* sql_result_cache = nullptr;
  storage::QueryResultCache<graphdb::GraphBlockResult>* graph_result_cache =
      nullptr;
  /// EXPLAIN ANALYZE hook: when non-null, the executor hangs one timed
  /// child span per scheduled pattern under it (match counts, propagated
  /// constraint-domain sizes, the storage executor's shard/worker spans)
  /// plus refilter/join/project phase spans. Null (the default) costs one
  /// pointer test per pattern. Must outlive the call.
  obs::TraceSpan* trace = nullptr;
};

struct TbqlResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;

  std::string ToString(size_t max_rows = 20) const;
};

struct ExecReport {
  TbqlResultSet results;
  /// Data query texts in the order they were executed.
  std::vector<std::string> executed_queries;
  /// Per-pattern match counts, indexed by pattern position.
  std::vector<size_t> pattern_match_counts;
  /// Patterns that matched nothing (excluded from the join; the paper's
  /// synthesized queries may contain excessive patterns that retrieve no
  /// events, which must not empty the whole result).
  std::vector<size_t> unmatched_patterns;
  double seconds = 0;
  /// All events matched by event patterns (deduplicated, for evaluation).
  std::vector<long long> matched_event_ids;
  /// Constraint-propagation DAG the scheduler ran: pattern_deps[i] lists
  /// the pattern indices that had to execute before pattern i (empty lists
  /// throughout when constraint propagation is off — every pattern is
  /// independent then).
  std::vector<std::vector<size_t>> pattern_deps;
};

/// Pruning score of pattern `idx` (exposed for tests and the ablation
/// bench): declared constraint count, plus a bonus shrinking with the
/// maximum path length.
double PruningScore(const tbql::AnalyzedQuery& aq, size_t idx);

/// Constraint-propagation DAG under execution order `order` (pattern
/// indices, most selective first): deps[i] lists every pattern ordered
/// before i that shares a joinable (non-network) entity id with i. Those
/// are exactly the pairs whose execution order affects the propagated
/// entity domains; patterns with no edge may run concurrently.
std::vector<std::vector<size_t>> PatternDependencies(
    const tbql::AnalyzedQuery& aq, const std::vector<size_t>& order);

class TbqlExecutor {
 public:
  explicit TbqlExecutor(const storage::AuditStore* store) : store_(store) {}

  /// Execute an analyzed-parse of `text`.
  Result<ExecReport> ExecuteText(std::string_view text,
                                 const ExecOptions& options = {}) const;

  /// Execute a parsed query.
  Result<ExecReport> Execute(const tbql::TbqlQuery& query,
                             const ExecOptions& options = {}) const;

  /// Plan-time cost estimate for `text` in "rows/nodes visited" units: each
  /// pattern compiles to its data query (no constraint propagation — the
  /// pre-propagation cost is the admission-relevant upper bound) and the
  /// backend estimators (sql::EstimateSelectCost / graphdb::
  /// EstimateCypherCost) price it from index statistics alone. Unparseable
  /// or uncompilable text estimates 0.0 — it will fail fast at run time.
  double EstimateCost(std::string_view text) const;

 private:
  const storage::AuditStore* store_;
};

/// Rewrite every basic event pattern of `query` into the equivalent
/// length-1 event path pattern ("->"), producing the Table VIII query
/// type (c) that executes on the graph backend.
tbql::TbqlQuery ToLength1PathQuery(const tbql::TbqlQuery& query);

}  // namespace raptor::engine
