// TBQL-to-data-query compiler (Sec III-F).
//
// Each TBQL pattern compiles into a semantically equivalent *data query*:
// event patterns become small SQL SELECTs over the relational backend
// (mature indexing + fast joins); variable-length event path patterns
// become Cypher MATCHes over the graph backend. The scheduler can inject
// `id IN (...)` constraints gathered from previously executed patterns.
//
// The module also provides the two baseline compilers used by Tables VIII
// and X: a single "giant" SQL query and a single "giant" Cypher query that
// each encode the whole TBQL query at once.
#pragma once

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "tbql/analyzer.h"

namespace raptor::engine {

enum class Backend { kRelational, kGraph };

struct DataQuery {
  Backend backend = Backend::kRelational;
  std::string text;        // actual SQL / Cypher text
  size_t pattern_index = 0;
  bool has_event_columns = false;  // event id/start/end present in results
};

/// Allowed audit entity ids for one TBQL entity: a hash set, so domain
/// intersection and membership re-checks are O(1) probes instead of sorted
/// list merges.
using EntitySet = std::unordered_set<long long>;

/// Concrete entity-id bindings propagated from already-executed patterns:
/// TBQL entity id -> allowed audit entity ids. (The compiler renders the
/// sets into IN (...) lists in sorted order so query text is deterministic.)
using EntityConstraints = std::map<std::string, EntitySet>;

/// Compile pattern `idx` into a data query. Event patterns and length-1
/// paths with `->` compile to SQL or Cypher respectively; multi-hop paths
/// always compile to Cypher.
Result<DataQuery> CompilePattern(const tbql::AnalyzedQuery& aq, size_t idx,
                                 const EntityConstraints& constraints,
                                 audit::Timestamp now = 0);

/// Baseline: the whole query as one giant SQL statement (event patterns
/// only; path patterns are unsupported in SQL, per the paper).
Result<std::string> CompileGiantSql(const tbql::AnalyzedQuery& aq,
                                    audit::Timestamp now = 0);

/// Baseline: the whole query as one giant Cypher statement.
Result<std::string> CompileGiantCypher(const tbql::AnalyzedQuery& aq,
                                       audit::Timestamp now = 0);

}  // namespace raptor::engine
