#include "engine/explain.h"

#include <algorithm>
#include <numeric>

#include "common/strings.h"
#include "engine/compiler.h"
#include "engine/executor.h"
#include "tbql/analyzer.h"
#include "tbql/parser.h"

namespace raptor::engine {

Result<std::string> ExplainPlan(const tbql::TbqlQuery& query) {
  auto analyzed = tbql::Analyze(query);
  if (!analyzed.ok()) return analyzed.status();
  const tbql::AnalyzedQuery& aq = analyzed.value();

  size_t n = query.patterns.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return PruningScore(aq, a) > PruningScore(aq, b);
  });

  std::string out = StrFormat("plan: %zu pattern(s), %zu entit%s\n", n,
                              aq.entities.size(),
                              aq.entities.size() == 1 ? "y" : "ies");
  for (size_t rank = 0; rank < order.size(); ++rank) {
    size_t idx = order[rank];
    const tbql::Pattern& p = query.patterns[idx];
    auto dq = CompilePattern(aq, idx, {});
    if (!dq.ok()) return dq.status();
    out += StrFormat(
        "%zu. pattern #%zu (score %.2f, %s backend)\n      %s\n      => %s\n",
        rank + 1, idx + 1, PruningScore(aq, idx),
        dq.value().backend == Backend::kRelational ? "relational" : "graph",
        p.ToString().c_str(), dq.value().text.c_str());
  }
  if (!query.temporal_rels.empty() || !query.attr_rels.empty()) {
    out += StrFormat(
        "post-join filters: %zu temporal, %zu attribute relationship(s)\n",
        query.temporal_rels.size(), query.attr_rels.size());
  }
  out +=
      "execution: highest-score pattern first; matched entity ids propagate "
      "into dependent patterns as IN-filters (index probes).\n";
  return out;
}

Result<std::string> ExplainPlanText(std::string_view text) {
  auto query = tbql::ParseTbql(text);
  if (!query.ok()) return query.status();
  return ExplainPlan(query.value());
}

}  // namespace raptor::engine
