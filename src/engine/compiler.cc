#include "engine/compiler.h"

#include <algorithm>

#include "common/strings.h"

namespace raptor::engine {

namespace {

using tbql::AnalyzedQuery;
using tbql::AttrExpr;
using tbql::AttrExprKind;
using tbql::CompareOp;
using tbql::EntityType;
using tbql::OpExpr;
using tbql::OpExprKind;
using tbql::Pattern;
using tbql::TemporalRel;
using tbql::TimeWindow;

/// The relational schema names the "group" attribute "grp" (reserved-ish).
std::string SqlColumn(std::string_view attr) {
  return attr == "group" ? "grp" : std::string(attr);
}

std::string SqlQuote(const std::string& v) {
  return "'" + ReplaceAll(v, "'", "''") + "'";
}

std::string CypherQuote(const std::string& v) {
  return "'" + ReplaceAll(v, "'", "\\'") + "'";
}

std::string DefaultAttr(EntityType type) {
  return std::string(audit::SystemEntity::DefaultAttribute(type));
}

// ------------------------------------------------------------- SQL filters

Result<std::string> AttrExprToSql(const AttrExpr& e, const std::string& alias,
                                  EntityType type);

Result<std::string> CompareToSql(const std::string& alias,
                                 const std::string& attr, CompareOp op,
                                 const std::string& value, bool is_number) {
  std::string col = alias + "." + SqlColumn(attr);
  if (!is_number && value.find('%') != std::string::npos) {
    if (op == CompareOp::kEq) return col + " LIKE " + SqlQuote(value);
    if (op == CompareOp::kNe) return col + " NOT LIKE " + SqlQuote(value);
    return Status::Unsupported("wildcards require = or != comparison");
  }
  std::string rhs = is_number ? value : SqlQuote(value);
  return col + " " + tbql::CompareOpName(op) + " " + rhs;
}

Result<std::string> AttrExprToSql(const AttrExpr& e, const std::string& alias,
                                  EntityType type) {
  switch (e.kind) {
    case AttrExprKind::kBareValue: {
      auto s = CompareToSql(alias, DefaultAttr(type),
                            e.negated ? CompareOp::kNe : CompareOp::kEq,
                            e.value, e.value_is_number);
      return s;
    }
    case AttrExprKind::kCompare:
      return CompareToSql(alias, e.attr, e.op, e.value, e.value_is_number);
    case AttrExprKind::kInList: {
      std::vector<std::string> vals;
      vals.reserve(e.values.size());
      for (const std::string& v : e.values) vals.push_back(SqlQuote(v));
      return alias + "." + SqlColumn(e.attr) +
             (e.negated ? " NOT IN (" : " IN (") + Join(vals, ", ") + ")";
    }
    case AttrExprKind::kAnd: {
      auto l = AttrExprToSql(*e.lhs, alias, type);
      if (!l.ok()) return l.status();
      auto r = AttrExprToSql(*e.rhs, alias, type);
      if (!r.ok()) return r.status();
      return "(" + l.value() + " AND " + r.value() + ")";
    }
    case AttrExprKind::kOr: {
      auto l = AttrExprToSql(*e.lhs, alias, type);
      if (!l.ok()) return l.status();
      auto r = AttrExprToSql(*e.rhs, alias, type);
      if (!r.ok()) return r.status();
      return "(" + l.value() + " OR " + r.value() + ")";
    }
    case AttrExprKind::kNot: {
      auto l = AttrExprToSql(*e.lhs, alias, type);
      if (!l.ok()) return l.status();
      return "NOT (" + l.value() + ")";
    }
  }
  return Status::Internal("unreachable attr expr kind");
}

std::string OpExprToSql(const OpExpr& e, const std::string& event_alias) {
  switch (e.kind) {
    case OpExprKind::kOp:
      return event_alias + ".op = " + SqlQuote(e.op);
    case OpExprKind::kNot:
      return "NOT (" + OpExprToSql(*e.lhs, event_alias) + ")";
    case OpExprKind::kAnd:
      return "(" + OpExprToSql(*e.lhs, event_alias) + " AND " +
             OpExprToSql(*e.rhs, event_alias) + ")";
    case OpExprKind::kOr:
      return "(" + OpExprToSql(*e.lhs, event_alias) + " OR " +
             OpExprToSql(*e.rhs, event_alias) + ")";
  }
  return "1 = 0";
}

std::string WindowToSql(const TimeWindow& w, const std::string& event_alias,
                        audit::Timestamp now) {
  switch (w.kind) {
    case tbql::WindowKind::kRange:
      return StrFormat("%s.start_time >= %lld AND %s.end_time <= %lld",
                       event_alias.c_str(), static_cast<long long>(w.from),
                       event_alias.c_str(), static_cast<long long>(w.to));
    case tbql::WindowKind::kAt:
      return StrFormat("%s.start_time <= %lld AND %s.end_time >= %lld",
                       event_alias.c_str(), static_cast<long long>(w.from),
                       event_alias.c_str(), static_cast<long long>(w.from));
    case tbql::WindowKind::kBefore:
      return StrFormat("%s.end_time <= %lld", event_alias.c_str(),
                       static_cast<long long>(w.from));
    case tbql::WindowKind::kAfter:
      return StrFormat("%s.start_time >= %lld", event_alias.c_str(),
                       static_cast<long long>(w.from));
    case tbql::WindowKind::kLast:
      // "last N <unit>" resolves against the data's maximum timestamp,
      // supplied by the executor.
      return StrFormat("%s.start_time >= %lld", event_alias.c_str(),
                       static_cast<long long>(now - w.last_amount));
  }
  return "1 = 1";
}

/// Render a propagated id set in ascending order, so the emitted query
/// text is deterministic regardless of hash-set iteration order.
std::vector<long long> SortedIds(const EntitySet& ids) {
  std::vector<long long> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

std::string IdListSql(const EntitySet& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (long long id : SortedIds(ids)) parts.push_back(std::to_string(id));
  return Join(parts, ", ");
}

// ---------------------------------------------------------- Cypher filters

Result<std::string> CompareToCypher(const std::string& var,
                                    const std::string& attr, CompareOp op,
                                    const std::string& value, bool is_number) {
  std::string prop = var + "." + attr;
  if (!is_number && value.find('%') != std::string::npos) {
    if (op != CompareOp::kEq && op != CompareOp::kNe) {
      return Status::Unsupported("wildcards require = or != comparison");
    }
    bool leading = StartsWith(value, "%");
    bool trailing = EndsWith(value, "%");
    std::string core = value;
    if (leading) core.erase(0, 1);
    if (trailing && !core.empty()) core.pop_back();
    if (core.find('%') != std::string::npos) {
      return Status::Unsupported("interior wildcards unsupported in Cypher");
    }
    std::string cond;
    if (leading && trailing) {
      cond = prop + " CONTAINS " + CypherQuote(core);
    } else if (trailing) {
      cond = prop + " STARTS WITH " + CypherQuote(core);
    } else if (leading) {
      cond = prop + " ENDS WITH " + CypherQuote(core);
    } else {
      cond = prop + " = " + CypherQuote(core);
    }
    if (op == CompareOp::kNe) cond = "NOT (" + cond + ")";
    return cond;
  }
  std::string rhs = is_number ? value : CypherQuote(value);
  const char* opname = op == CompareOp::kNe ? "<>" : tbql::CompareOpName(op);
  return prop + " " + opname + " " + rhs;
}

Result<std::string> AttrExprToCypher(const AttrExpr& e, const std::string& var,
                                     EntityType type) {
  switch (e.kind) {
    case AttrExprKind::kBareValue:
      return CompareToCypher(var, DefaultAttr(type),
                             e.negated ? CompareOp::kNe : CompareOp::kEq,
                             e.value, e.value_is_number);
    case AttrExprKind::kCompare:
      return CompareToCypher(var, e.attr, e.op, e.value, e.value_is_number);
    case AttrExprKind::kInList: {
      std::vector<std::string> vals;
      vals.reserve(e.values.size());
      for (const std::string& v : e.values) vals.push_back(CypherQuote(v));
      std::string cond =
          var + "." + e.attr + " IN [" + Join(vals, ", ") + "]";
      if (e.negated) cond = "NOT (" + cond + ")";
      return cond;
    }
    case AttrExprKind::kAnd: {
      auto l = AttrExprToCypher(*e.lhs, var, type);
      if (!l.ok()) return l.status();
      auto r = AttrExprToCypher(*e.rhs, var, type);
      if (!r.ok()) return r.status();
      return "(" + l.value() + " AND " + r.value() + ")";
    }
    case AttrExprKind::kOr: {
      auto l = AttrExprToCypher(*e.lhs, var, type);
      if (!l.ok()) return l.status();
      auto r = AttrExprToCypher(*e.rhs, var, type);
      if (!r.ok()) return r.status();
      return "(" + l.value() + " OR " + r.value() + ")";
    }
    case AttrExprKind::kNot: {
      auto l = AttrExprToCypher(*e.lhs, var, type);
      if (!l.ok()) return l.status();
      return "NOT (" + l.value() + ")";
    }
  }
  return Status::Internal("unreachable attr expr kind");
}

std::string OpExprToCypher(const OpExpr& e, const std::string& edge_var) {
  switch (e.kind) {
    case OpExprKind::kOp:
      return edge_var + ".op = " + CypherQuote(e.op);
    case OpExprKind::kNot:
      return "NOT (" + OpExprToCypher(*e.lhs, edge_var) + ")";
    case OpExprKind::kAnd:
      return "(" + OpExprToCypher(*e.lhs, edge_var) + " AND " +
             OpExprToCypher(*e.rhs, edge_var) + ")";
    case OpExprKind::kOr:
      return "(" + OpExprToCypher(*e.lhs, edge_var) + " OR " +
             OpExprToCypher(*e.rhs, edge_var) + ")";
  }
  return "1 = 0";
}

std::string IdListCypher(const EntitySet& ids) {
  std::vector<std::string> parts;
  parts.reserve(ids.size());
  for (long long id : SortedIds(ids)) parts.push_back(std::to_string(id));
  return "[" + Join(parts, ", ") + "]";
}

/// The single positive op name if the op expression is exactly one op.
const std::string* SingleOp(const OpExpr* op) {
  if (op != nullptr && op->kind == OpExprKind::kOp) return &op->op;
  return nullptr;
}

/// Collect the subject/object/event conditions shared by both compilers.
struct PatternPieces {
  std::vector<std::string> subject_conds;
  std::vector<std::string> object_conds;
  std::vector<std::string> event_conds;
};

Result<PatternPieces> BuildSqlPieces(const AnalyzedQuery& aq,
                                     const Pattern& p,
                                     const std::string& subj_alias,
                                     const std::string& obj_alias,
                                     const std::string& evt_alias,
                                     const EntityConstraints& constraints,
                                     audit::Timestamp now) {
  PatternPieces pieces;
  pieces.subject_conds.push_back(subj_alias + ".type = 'proc'");
  pieces.object_conds.push_back(
      obj_alias + ".type = '" +
      std::string(audit::EntityTypeName(p.object.type)) + "'");
  // Entity filters merge across all occurrences of the entity id.
  for (const auto& [ref, alias, type] :
       {std::tuple{&p.subject, &subj_alias, p.subject.type},
        std::tuple{&p.object, &obj_alias, p.object.type}}) {
    const tbql::EntityInfo& info = aq.entities.at(ref->id);
    for (const AttrExpr* f : info.filters) {
      auto cond = AttrExprToSql(*f, *alias, type);
      if (!cond.ok()) return cond.status();
      if (ref == &p.subject) {
        pieces.subject_conds.push_back(std::move(cond).value());
      } else {
        pieces.object_conds.push_back(std::move(cond).value());
      }
    }
    auto cit = constraints.find(ref->id);
    if (cit != constraints.end()) {
      if (cit->second.empty()) {
        // An empty propagated domain can never match.
        pieces.event_conds.push_back("1 = 0");
        continue;
      }
      std::string ids = IdListSql(cit->second);
      // Constrain both the entity alias and the event-side foreign key;
      // the latter turns the events access into an index probe (this is
      // the "adding filters" step of the scheduling algorithm).
      if (ref == &p.subject) {
        pieces.subject_conds.push_back(*alias + ".id IN (" + ids + ")");
        pieces.event_conds.push_back(evt_alias + ".subject IN (" + ids + ")");
      } else {
        pieces.object_conds.push_back(*alias + ".id IN (" + ids + ")");
        pieces.event_conds.push_back(evt_alias + ".object IN (" + ids + ")");
      }
    }
  }
  if (p.op) pieces.event_conds.push_back(OpExprToSql(*p.op, evt_alias));
  if (p.event_filter) {
    auto cond = AttrExprToSql(*p.event_filter, evt_alias, p.object.type);
    if (!cond.ok()) return cond.status();
    pieces.event_conds.push_back(std::move(cond).value());
  }
  if (p.window.has_value()) {
    pieces.event_conds.push_back(WindowToSql(*p.window, evt_alias, now));
  }
  for (const TimeWindow& w : aq.query->global_windows) {
    pieces.event_conds.push_back(WindowToSql(w, evt_alias, now));
  }
  for (const auto& f : aq.query->global_attr_filters) {
    auto cond = AttrExprToSql(*f, evt_alias, p.object.type);
    if (!cond.ok()) return cond.status();
    pieces.event_conds.push_back(std::move(cond).value());
  }
  return pieces;
}

}  // namespace

Result<DataQuery> CompilePattern(const AnalyzedQuery& aq, size_t idx,
                                 const EntityConstraints& constraints,
                                 audit::Timestamp now) {
  const Pattern& p = aq.query->patterns[idx];
  DataQuery out;
  out.pattern_index = idx;

  bool length1 = !p.path.is_path ||
                 (p.path.min_len == 1 && p.path.max_len == 1);
  if (!p.path.is_path) {
    // Event pattern -> SQL on the relational backend.
    out.backend = Backend::kRelational;
    out.has_event_columns = true;
    auto pieces = BuildSqlPieces(aq, p, "s", "o", "e", constraints, now);
    if (!pieces.ok()) return pieces.status();
    std::vector<std::string> conds;
    for (auto& c : pieces.value().subject_conds) conds.push_back(std::move(c));
    for (auto& c : pieces.value().object_conds) conds.push_back(std::move(c));
    for (auto& c : pieces.value().event_conds) conds.push_back(std::move(c));
    out.text =
        "SELECT e.id, e.subject, e.object, e.start_time, e.end_time "
        "FROM events e JOIN entities s ON e.subject = s.id "
        "JOIN entities o ON e.object = o.id WHERE " +
        Join(conds, " AND ");
    return out;
  }

  // Path pattern -> Cypher on the graph backend.
  out.backend = Backend::kGraph;
  out.has_event_columns = length1;

  std::string subj_label = "proc";
  std::string obj_label = audit::EntityTypeName(p.object.type);
  std::vector<std::string> where;
  for (const auto& [id, var, type] :
       {std::tuple{p.subject.id, std::string("s"), p.subject.type},
        std::tuple{p.object.id, std::string("o"), p.object.type}}) {
    const tbql::EntityInfo& info = aq.entities.at(id);
    for (const AttrExpr* f : info.filters) {
      auto cond = AttrExprToCypher(*f, var, type);
      if (!cond.ok()) return cond.status();
      where.push_back(std::move(cond).value());
    }
    auto cit = constraints.find(id);
    if (cit != constraints.end()) {
      where.push_back(cit->second.empty()
                          ? "1 = 0"
                          : var + ".id IN " + IdListCypher(cit->second));
    }
  }

  std::string match;
  const std::string* single_op = SingleOp(p.op.get());
  if (length1) {
    std::string rel = single_op != nullptr ? (":" + *single_op) : "";
    match = "(s:" + subj_label + ")-[e" + rel + "]->(o:" + obj_label + ")";
    if (single_op == nullptr && p.op) {
      where.push_back(OpExprToCypher(*p.op, "e"));
    }
  } else {
    // Multi-hop: the op constraint applies to the final hop, so the path
    // decomposes as (s)-[*min-1..max-1]->()-[e:op]->(o). When the op is
    // omitted the whole span is a single variable-length relationship.
    int min_len = std::max(1, p.path.min_len);
    int max_len = p.path.max_len;
    if (p.op) {
      std::string span = "*" + std::to_string(std::max(0, min_len - 1)) + "..";
      if (max_len >= 0) span += std::to_string(max_len - 1);
      std::string rel = single_op != nullptr ? (":" + *single_op) : "";
      match = "(s:" + subj_label + ")-[" + span + "]->()-[e" + rel + "]->(o:" +
              obj_label + ")";
      if (single_op == nullptr) where.push_back(OpExprToCypher(*p.op, "e"));
    } else {
      std::string span = "*" + std::to_string(min_len) + "..";
      if (max_len >= 0) span += std::to_string(max_len);
      match = "(s:" + subj_label + ")-[" + span + "]->(o:" + obj_label + ")";
    }
  }
  // Windows constrain the final hop only (paths have no single extent).
  if (out.has_event_columns) {
    if (p.window.has_value()) {
      where.push_back(WindowToSql(*p.window, "e", now));
    }
    for (const TimeWindow& w : aq.query->global_windows) {
      where.push_back(WindowToSql(w, "e", now));
    }
  }

  // Multi-hop paths return pure entity pairs (path existence); many paths
  // can connect the same pair, so DISTINCT dedups at the matcher — where
  // the streaming seen-set short-circuits — instead of blowing up the join
  // phase with one row per path.
  std::string ret = out.has_event_columns
                        ? "RETURN s.id AS sid, o.id AS oid, e.id AS eid, "
                          "e.start_time AS est, e.end_time AS eet"
                        : "RETURN DISTINCT s.id AS sid, o.id AS oid";
  out.text = "MATCH " + match;
  if (!where.empty()) out.text += " WHERE " + Join(where, " AND ");
  out.text += " " + ret;
  return out;
}

Result<std::string> CompileGiantSql(const AnalyzedQuery& aq,
                                    audit::Timestamp now) {
  const tbql::TbqlQuery& q = *aq.query;
  std::vector<std::string> from;
  std::vector<std::string> conds;
  // One events alias per pattern, one entities alias per distinct entity.
  // Aliases are interleaved in pattern order (each event alias followed by
  // its entities on first reference), which is the join order a relational
  // planner can satisfy with equi-joins.
  std::vector<std::string> listed_entities;
  auto list_entity = [&](const std::string& id) -> Status {
    if (std::find(listed_entities.begin(), listed_entities.end(), id) !=
        listed_entities.end()) {
      return Status::OK();
    }
    listed_entities.push_back(id);
    const tbql::EntityInfo& info = aq.entities.at(id);
    from.push_back("entities " + id);
    conds.push_back(id + ".type = '" +
                    std::string(audit::EntityTypeName(info.type)) + "'");
    for (const AttrExpr* f : info.filters) {
      auto cond = AttrExprToSql(*f, id, info.type);
      if (!cond.ok()) return cond.status();
      conds.push_back(std::move(cond).value());
    }
    return Status::OK();
  };
  for (size_t i = 0; i < q.patterns.size(); ++i) {
    const Pattern& p = q.patterns[i];
    if (p.path.is_path && !(p.path.min_len == 1 && p.path.max_len == 1)) {
      return Status::Unsupported(
          "variable-length path patterns cannot be expressed in SQL");
    }
    std::string evt =
        p.id.empty() ? "e" + std::to_string(i + 1) : p.id;
    from.push_back("events " + evt);
    conds.push_back(evt + ".subject = " + p.subject.id + ".id");
    conds.push_back(evt + ".object = " + p.object.id + ".id");
    RAPTOR_RETURN_NOT_OK(list_entity(p.subject.id));
    RAPTOR_RETURN_NOT_OK(list_entity(p.object.id));
    if (p.op) conds.push_back(OpExprToSql(*p.op, evt));
    if (p.event_filter) {
      auto cond = AttrExprToSql(*p.event_filter, evt, p.object.type);
      if (!cond.ok()) return cond.status();
      conds.push_back(std::move(cond).value());
    }
    if (p.window.has_value()) {
      conds.push_back(WindowToSql(*p.window, evt, now));
    }
    for (const TimeWindow& w : q.global_windows) {
      conds.push_back(WindowToSql(w, evt, now));
    }
  }
  auto evt_alias = [&](const std::string& id) -> std::string {
    size_t idx = aq.pattern_by_id.at(id);
    return q.patterns[idx].id.empty() ? "e" + std::to_string(idx + 1)
                                      : q.patterns[idx].id;
  };
  for (const TemporalRel& rel : q.temporal_rels) {
    std::string l = evt_alias(rel.left);
    std::string r = evt_alias(rel.right);
    if (rel.op == tbql::TemporalOp::kAfter) std::swap(l, r);
    if (rel.op == tbql::TemporalOp::kWithin) {
      long long hi = rel.max_gap < 0 ? 0 : rel.max_gap;
      conds.push_back(StrFormat(
          "((%s.start_time >= %s.start_time AND %s.start_time <= "
          "%s.start_time + %lld) OR (%s.start_time >= %s.start_time AND "
          "%s.start_time <= %s.start_time + %lld))",
          r.c_str(), l.c_str(), r.c_str(), l.c_str(), hi, l.c_str(), r.c_str(),
          l.c_str(), r.c_str(), hi));
      continue;
    }
    if (rel.min_gap >= 0 || rel.max_gap >= 0) {
      if (rel.min_gap >= 0) {
        conds.push_back(StrFormat("%s.start_time >= %s.end_time + %lld",
                                  r.c_str(), l.c_str(),
                                  static_cast<long long>(rel.min_gap)));
      }
      if (rel.max_gap >= 0) {
        conds.push_back(StrFormat("%s.start_time <= %s.end_time + %lld",
                                  r.c_str(), l.c_str(),
                                  static_cast<long long>(rel.max_gap)));
      }
    } else {
      conds.push_back(l + ".end_time <= " + r + ".start_time");
    }
  }
  for (const tbql::AttrRel& rel : q.attr_rels) {
    conds.push_back(rel.left_qualifier + "." + SqlColumn(rel.left_attr) + " " +
                    tbql::CompareOpName(rel.op) + " " + rel.right_qualifier +
                    "." + SqlColumn(rel.right_attr));
  }
  std::string sql = "SELECT ";
  if (q.distinct) sql += "DISTINCT ";
  std::vector<std::string> items;
  for (const tbql::ResolvedReturn& r : aq.returns) {
    items.push_back(r.id + "." + SqlColumn(r.attr));
  }
  sql += Join(items, ", ") + " FROM " + Join(from, ", ") + " WHERE " +
         Join(conds, " AND ");
  return sql;
}

Result<std::string> CompileGiantCypher(const AnalyzedQuery& aq,
                                       audit::Timestamp now) {
  const tbql::TbqlQuery& q = *aq.query;
  std::vector<std::string> parts;
  std::vector<std::string> where;
  std::vector<std::string> entity_done;

  auto entity_pattern = [&](const std::string& id,
                            EntityType type) -> std::string {
    bool first = std::find(entity_done.begin(), entity_done.end(), id) ==
                 entity_done.end();
    if (!first) return "(" + id + ")";
    entity_done.push_back(id);
    const tbql::EntityInfo& info = aq.entities.at(id);
    for (const AttrExpr* f : info.filters) {
      auto cond = AttrExprToCypher(*f, id, type);
      if (cond.ok()) where.push_back(std::move(cond).value());
    }
    return "(" + id + ":" + std::string(audit::EntityTypeName(type)) + ")";
  };

  for (size_t i = 0; i < q.patterns.size(); ++i) {
    const Pattern& p = q.patterns[i];
    std::string evt = p.id.empty() ? "e" + std::to_string(i + 1) : p.id;
    std::string part = entity_pattern(p.subject.id, p.subject.type);
    const std::string* single_op = SingleOp(p.op.get());
    bool length1 = !p.path.is_path ||
                   (p.path.min_len == 1 && p.path.max_len == 1);
    if (length1) {
      part += "-[" + evt + (single_op != nullptr ? ":" + *single_op : "") +
              "]->";
      if (single_op == nullptr && p.op) {
        where.push_back(OpExprToCypher(*p.op, evt));
      }
    } else {
      int min_len = std::max(1, p.path.min_len);
      std::string span = "*" + std::to_string(std::max(0, min_len - 1)) + "..";
      if (p.path.max_len >= 0) span += std::to_string(p.path.max_len - 1);
      if (p.op) {
        part += "-[" + span + "]->()-[" + evt +
                (single_op != nullptr ? ":" + *single_op : "") + "]->";
        if (single_op == nullptr) where.push_back(OpExprToCypher(*p.op, evt));
      } else {
        std::string full_span = "*" + std::to_string(min_len) + "..";
        if (p.path.max_len >= 0) full_span += std::to_string(p.path.max_len);
        part += "-[" + full_span + "]->";
      }
    }
    part += entity_pattern(p.object.id, p.object.type);
    parts.push_back(std::move(part));

    if (p.window.has_value()) {
      where.push_back(WindowToSql(*p.window, evt, now));
    }
    for (const TimeWindow& w : q.global_windows) {
      where.push_back(WindowToSql(w, evt, now));
    }
  }
  for (const TemporalRel& rel : q.temporal_rels) {
    std::string l = rel.left, r = rel.right;
    if (rel.op == tbql::TemporalOp::kAfter) std::swap(l, r);
    if (rel.op == tbql::TemporalOp::kWithin) {
      long long hi = rel.max_gap < 0 ? 0 : rel.max_gap;
      where.push_back(StrFormat(
          "((%s.start_time >= %s.start_time AND %s.start_time <= "
          "%s.start_time + %lld) OR (%s.start_time >= %s.start_time AND "
          "%s.start_time <= %s.start_time + %lld))",
          r.c_str(), l.c_str(), r.c_str(), l.c_str(), hi, l.c_str(), r.c_str(),
          l.c_str(), r.c_str(), hi));
      continue;
    }
    if (rel.min_gap >= 0 || rel.max_gap >= 0) {
      if (rel.min_gap >= 0) {
        where.push_back(StrFormat("%s.start_time >= %s.end_time + %lld",
                                  r.c_str(), l.c_str(),
                                  static_cast<long long>(rel.min_gap)));
      }
      if (rel.max_gap >= 0) {
        where.push_back(StrFormat("%s.start_time <= %s.end_time + %lld",
                                  r.c_str(), l.c_str(),
                                  static_cast<long long>(rel.max_gap)));
      }
    } else {
      where.push_back(l + ".end_time <= " + r + ".start_time");
    }
  }
  for (const tbql::AttrRel& rel : q.attr_rels) {
    const char* opname =
        rel.op == tbql::CompareOp::kNe ? "<>" : tbql::CompareOpName(rel.op);
    where.push_back(rel.left_qualifier + "." + rel.left_attr + " " + opname +
                    " " + rel.right_qualifier + "." + rel.right_attr);
  }

  std::string cypher = "MATCH " + Join(parts, ", ");
  if (!where.empty()) cypher += " WHERE " + Join(where, " AND ");
  cypher += " RETURN ";
  if (q.distinct) cypher += "DISTINCT ";
  std::vector<std::string> items;
  for (const tbql::ResolvedReturn& r : aq.returns) {
    if (r.is_event) {
      items.push_back(r.id + "." + r.attr);
    } else {
      items.push_back(r.id + "." + r.attr);
    }
  }
  cypher += Join(items, ", ");
  return cypher;
}

}  // namespace raptor::engine
