// Shared policy pieces of the shard-parallel query drivers (the Cypher
// matcher and the SQL pipeline): LIMIT row-budget selection and the
// shard-order merge. Both engines fan one worker per storage shard onto
// the common thread pool and stream into thread-local result sets; the
// subtle parts — how a pushed-down LIMIT is enforced across workers and
// how DISTINCT survives the merge — live here once so the two executors
// cannot drift apart.
//
// Budget policy: without DISTINCT every emitted row counts globally, so
// workers claim emission slots from one atomic counter (exactly `limit`
// claims succeed, and idle workers poll the counter to abandon their
// scans early). With streaming DISTINCT a global count cannot know about
// cross-shard duplicates, so each worker dedups locally up to the limit
// and the merge dedups again. That guarantees the merged unique-row count
// is never BELOW min(limit, full distinct count) — every worker either
// filled the limit by itself or exhausted its shard — but it can exceed
// the limit (disjoint shards can each contribute up to `limit` rows): the
// executors' trailing LIMIT resize is load-bearing for pushed-down
// DISTINCT limits, not a legacy safety net.
#pragma once

#include <atomic>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/relational/value.h"
#include "storage/row_block.h"

namespace raptor::storage {

/// LIMIT enforcement for a fleet of shard workers. Wire `shared_claimed()`
/// / `shared_cap` and `local_cap` into each worker's row sink.
struct ShardRowBudget {
  std::atomic<size_t> claimed{0};
  size_t shared_cap = 0;
  size_t local_cap = static_cast<size_t>(-1);
  bool shared = false;

  ShardRowBudget(bool push_limit, bool streaming_distinct, long long limit) {
    if (!push_limit) return;
    if (streaming_distinct) {
      local_cap = static_cast<size_t>(limit);
    } else {
      shared = true;
      shared_cap = static_cast<size_t>(limit);
    }
  }

  std::atomic<size_t>* shared_claimed() { return shared ? &claimed : nullptr; }
};

/// Merge per-shard worker results in shard order (deterministic for a
/// fixed storage layout): fail on the first worker error, let `on_run`
/// fold each worker's stats, and hand the rows to `out`. Without
/// streaming DISTINCT every worker's row vector is adopted wholesale as
/// one block — the zero-copy merge, no per-row moves. With streaming
/// DISTINCT the merge must drop cross-shard duplicates that the workers'
/// local seen-sets could not observe, so surviving rows are pushed one by
/// one (observable through RowBlocks::pushed_rows). `Run` must expose a
/// `Status error` and a result set with value rows at `rs.rows`.
template <class Run, class OnRun>
Status MergeShardRuns(std::vector<Run>& runs, bool streaming_distinct,
                      RowBlocks<std::vector<sql::Value>>* out,
                      OnRun&& on_run) {
  std::unordered_set<std::vector<sql::Value>, sql::ValueRowHash,
                     sql::ValueRowEq>
      seen;
  for (Run& run : runs) {
    RAPTOR_RETURN_NOT_OK(run.error);
    on_run(run);
    if (!streaming_distinct) {
      out->Adopt(std::move(run.rs.rows));
      continue;
    }
    for (auto& row : run.rs.rows) {
      if (!seen.insert(row).second) continue;
      out->Push(std::move(row));
    }
  }
  return Status::OK();
}

}  // namespace raptor::storage
