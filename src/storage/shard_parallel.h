// Shared policy pieces of the shard-parallel query drivers (the Cypher
// matcher and the SQL pipeline): LIMIT row-budget selection and the
// deterministic worker-order merge. Both engines fan workers (one per
// storage shard, or one per work-stealing morsel) onto the common thread
// pool and stream into thread-local result sets; the subtle parts — how a
// pushed-down LIMIT is enforced across workers and how DISTINCT survives
// the merge — live here once so the two executors cannot drift apart.
//
// Budget policy: without DISTINCT every emitted row counts globally, so
// workers claim emission slots from one atomic counter (exactly `limit`
// claims succeed, and idle workers poll the counter to abandon their
// scans early). With streaming DISTINCT a global count cannot know about
// cross-shard duplicates, so each worker dedups locally up to the limit
// and the merge dedups again. That guarantees the merged unique-row count
// is never BELOW min(limit, full distinct count) — every worker either
// filled the limit by itself or exhausted its shard — but it can exceed
// the limit (disjoint shards can each contribute up to `limit` rows): the
// executors' trailing LIMIT resize is load-bearing for pushed-down
// DISTINCT limits, not a legacy safety net.
//
// DISTINCT merge: workers hash-partition their emissions by row hash into
// kDistinctPartitions buckets (WorkerRows::parts). Duplicate rows always
// land in the same partition, so the merge dedups one partition at a time
// (per-partition seen-set, worker order within a partition), compacts each
// worker's surviving rows in place, and adopts the compacted vectors as
// whole blocks — the same zero-copy merge non-DISTINCT always had
// (RowBlocks::pushed_rows() stays 0). Output order is partition-major,
// worker-minor: a different row order than the pre-partitioned merge
// produced, but deterministic for a fixed storage layout, and row *sets*
// are unchanged (the differential harness compares DISTINCT results
// order-normalized).
#pragma once

#include <atomic>
#include <cstddef>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/status.h"
#include "storage/relational/value.h"
#include "storage/row_block.h"

namespace raptor::storage {

/// Number of hash partitions the streaming-DISTINCT sinks spread rows
/// over. Power of two (partition index is hash & (kDistinctPartitions-1)).
constexpr size_t kDistinctPartitions = 8;

/// Partition index of a result row (sinks and the merge must agree).
inline size_t DistinctPartitionOf(const std::vector<sql::Value>& row) {
  return sql::ValueRowHash{}(row) & (kDistinctPartitions - 1);
}

/// Per-worker result container for the parallel drivers. Non-DISTINCT
/// emissions stream into `rows`; streaming-DISTINCT emissions are
/// hash-partitioned into `parts` (sized lazily by the sink).
struct WorkerRows {
  std::vector<std::vector<sql::Value>> rows;
  std::vector<std::vector<std::vector<sql::Value>>> parts;

  void EnableDistinctPartitions() { parts.resize(kDistinctPartitions); }
};

/// LIMIT enforcement for a fleet of shard workers. Wire `shared_claimed()`
/// / `shared_cap` and `local_cap` into each worker's row sink.
struct ShardRowBudget {
  std::atomic<size_t> claimed{0};
  size_t shared_cap = 0;
  size_t local_cap = static_cast<size_t>(-1);
  bool shared = false;

  ShardRowBudget(bool push_limit, bool streaming_distinct, long long limit) {
    if (!push_limit) return;
    if (streaming_distinct) {
      local_cap = static_cast<size_t>(limit);
    } else {
      shared = true;
      shared_cap = static_cast<size_t>(limit);
    }
  }

  std::atomic<size_t>* shared_claimed() { return shared ? &claimed : nullptr; }
};

/// Merge per-worker results in worker order (deterministic for a fixed
/// storage layout and morsel carve): fail on the first worker error, let
/// `on_run` fold each worker's stats, and hand the rows to `out`. Without
/// streaming DISTINCT every worker's row vector is adopted wholesale as
/// one block. With streaming DISTINCT the merge dedups partition by
/// partition (see the header comment) and adopts each worker's compacted
/// partition vector — also block-wise. `Run` must expose a `Status error`
/// and a WorkerRows at `rs`.
template <class Run, class OnRun>
Status MergeShardRuns(std::vector<Run>& runs, bool streaming_distinct,
                      RowBlocks<std::vector<sql::Value>>* out,
                      OnRun&& on_run) {
  for (Run& run : runs) {
    RAPTOR_RETURN_NOT_OK(run.error);
    on_run(run);
  }
  if (!streaming_distinct) {
    for (Run& run : runs) out->Adopt(std::move(run.rs.rows));
    return Status::OK();
  }
  std::unordered_set<std::vector<sql::Value>, sql::ValueRowHash,
                     sql::ValueRowEq>
      seen;
  for (size_t p = 0; p < kDistinctPartitions; ++p) {
    seen.clear();
    for (Run& run : runs) {
      if (run.rs.parts.size() <= p) continue;
      auto& part = run.rs.parts[p];
      size_t kept = 0;
      for (size_t i = 0; i < part.size(); ++i) {
        if (!seen.insert(part[i]).second) continue;
        if (kept != i) part[kept] = std::move(part[i]);
        ++kept;
      }
      part.resize(kept);
      out->Adopt(std::move(part));
    }
  }
  return Status::OK();
}

}  // namespace raptor::storage
