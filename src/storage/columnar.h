// Frozen columnar (SoA) property storage shared by the graph and
// relational backends.
//
// Ingest keeps its row-oriented representation (graphdb::PropertyMap,
// sql::Row); each append additionally freezes the cells into per-bucket
// column vectors — per (shard × label) for graph nodes, per (shard × edge
// type) for graph edges, per (shard × schema column) for tables — so the
// executors' predicate loops can run tight scans over column slices
// instead of per-row map probes. String cells are dictionary-encoded
// against one dictionary per property/column (global across shards and
// buckets), so an equality literal is interned once per query and
// compared as a uint32 everywhere.
//
// Typing is resolved per column from the data: the first frozen value
// picks the kind (int64 or string); any later conflict — or any value the
// columnar cells cannot represent exactly under sql::Value::Compare
// semantics (doubles, explicit NULLs) — demotes the column to kMixed,
// which tells the executors to fall back to the retained row path for
// that predicate. Absent cells (a row without the property) are explicit:
// a present-bitmap for int columns, kNullDictId for string columns, and
// positions past len() for trailing rows that never froze a cell.
//
// Thread-safety matches the owning stores: freezing happens on the
// single-writer mutation path; all readers are const and race-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "storage/relational/value.h"

namespace raptor::storage {

/// Absent-cell sentinel in dictionary-encoded string columns.
constexpr uint32_t kNullDictId = static_cast<uint32_t>(-1);

/// One frozen property column over a bucket of rows. Positions are the
/// row's dense offset within its bucket (label_pos / type_pos / local row
/// offset) and must be appended in increasing order; skipped positions
/// are absent cells.
class Column {
 public:
  enum class Kind : uint8_t { kUnset, kInt64, kString, kMixed };

  Kind kind() const { return kind_; }
  bool usable() const {
    return kind_ == Kind::kInt64 || kind_ == Kind::kString;
  }

  /// Cells frozen so far; positions >= len() are absent.
  size_t len() const {
    return kind_ == Kind::kString ? dict_ids_.size() : ints_.size();
  }

  /// Freeze the cell at `pos` (the row's bucket offset). `dict` is the
  /// column's global string dictionary.
  void Append(size_t pos, const sql::Value& v, StringInterner* dict) {
    if (kind_ == Kind::kMixed) return;
    if (v.is_int()) {
      if (!Resolve(Kind::kInt64)) return;
      ints_.resize(pos, 0);
      present_.resize(pos, 0);
      ints_.push_back(v.AsInt());
      present_.push_back(1);
    } else if (v.is_text()) {
      if (!Resolve(Kind::kString)) return;
      dict_ids_.resize(pos, kNullDictId);
      dict_ids_.push_back(dict->Intern(v.AsText()));
    } else {
      Demote();
    }
  }

  /// kInt64 cell read; false when absent.
  bool IntAt(size_t pos, int64_t* out) const {
    if (pos >= ints_.size() || !present_[pos]) return false;
    *out = ints_[pos];
    return true;
  }

  /// kString cell read; kNullDictId when absent.
  uint32_t DictAt(size_t pos) const {
    return pos >= dict_ids_.size() ? kNullDictId : dict_ids_[pos];
  }

  const std::vector<int64_t>& ints() const { return ints_; }
  const std::vector<uint8_t>& present() const { return present_; }
  const std::vector<uint32_t>& dict_ids() const { return dict_ids_; }

 private:
  bool Resolve(Kind k) {
    if (kind_ == Kind::kUnset) kind_ = k;
    if (kind_ != k) {
      Demote();
      return false;
    }
    return true;
  }

  void Demote() {
    kind_ = Kind::kMixed;
    ints_ = {};
    present_ = {};
    dict_ids_ = {};
  }

  Kind kind_ = Kind::kUnset;
  std::vector<int64_t> ints_;     // kInt64 cells (0 where absent)
  std::vector<uint8_t> present_;  // kInt64: 1 = cell present
  std::vector<uint32_t> dict_ids_;  // kString cells (kNullDictId = absent)
};

/// Column set of one bucket (shard × label / edge type), keyed by the
/// owning store's interned property-name id.
class ColumnGroup {
 public:
  Column* ColumnFor(uint32_t prop_id) { return &cols_[prop_id]; }

  /// nullptr when no row of this bucket ever froze the property.
  const Column* Find(uint32_t prop_id) const {
    auto it = cols_.find(prop_id);
    return it == cols_.end() ? nullptr : &it->second;
  }

 private:
  std::unordered_map<uint32_t, Column> cols_;
};

}  // namespace raptor::storage
