// Power-of-two entity-id-hashed shard layout, shared by both storage
// engines (PropertyGraph and Table) so the id arithmetic cannot drift:
// global ids stay dense in creation order, the owning shard is the low
// bits (id & mask), and the position inside the shard is the high bits
// (id >> shift). Round-robin assignment keeps shards balanced for any
// dense id sequence.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace raptor::storage {

struct ShardLayout {
  uint64_t mask = 0;
  unsigned shift = 0;

  /// `shard_count` is rounded up to a power of two; 0 and 1 both yield
  /// the single-shard identity layout.
  explicit ShardLayout(size_t shard_count = 1) {
    size_t n = std::bit_ceil(shard_count == 0 ? size_t{1} : shard_count);
    mask = n - 1;
    shift = static_cast<unsigned>(std::countr_zero(n));
  }

  size_t count() const { return static_cast<size_t>(mask) + 1; }
  size_t ShardOf(uint64_t id) const { return id & mask; }
  size_t LocalOf(uint64_t id) const { return id >> shift; }
  uint64_t GlobalOf(size_t shard, size_t local) const {
    return (static_cast<uint64_t>(local) << shift) | shard;
  }
};

}  // namespace raptor::storage
