// Data reduction (Sec III-B): merges excessive system events between the
// same entity pair before storage. The OS finishes one logical read/write by
// distributing data across many syscalls; merging them shrinks storage and
// speeds search while preserving the information needed for threat hunting.
//
// Merge criteria (verbatim from the paper): events e1(u1,v1), e2(u2,v2) with
// e1 before e2 merge iff u1 = u2 && v1 = v2 && e1.op = e2.op &&
// 0 <= e2.start_time - e1.end_time <= threshold. The merged event keeps
// e1.start_time, takes e2.end_time and sums the data amounts.
#pragma once

#include <vector>

#include "audit/types.h"

namespace raptor::storage {

struct ReductionOptions {
  /// Merge window. The paper experimented with several thresholds and chose
  /// 1 second as the best trade-off (no false events generated).
  audit::Timestamp merge_threshold_us = 1'000'000;
};

struct ReductionStats {
  size_t input_events = 0;
  size_t output_events = 0;

  double reduction_ratio() const {
    return input_events == 0
               ? 1.0
               : static_cast<double>(output_events) /
                     static_cast<double>(input_events);
  }
};

/// Merge excessive events. Input must be sorted by start_time (as produced
/// by AuditLogParser); output preserves that order and reassigns dense ids.
std::vector<audit::SystemEvent> ReduceEvents(
    const std::vector<audit::SystemEvent>& events,
    const ReductionOptions& options, ReductionStats* stats = nullptr);

}  // namespace raptor::storage
