#include "storage/reduction/reduction.h"

#include <algorithm>
#include <unordered_map>

namespace raptor::storage {

namespace {

uint64_t GroupKey(const audit::SystemEvent& e) {
  // subject (24 bits) | object (24 bits) | op (8 bits) is plenty for the
  // entity counts this engine targets; fall back to exactness via chaining
  // in the map (collisions only cost a wasted comparison, never a wrong
  // merge, because Mergeable() rechecks the fields).
  return (static_cast<uint64_t>(e.subject) << 32) ^
         (static_cast<uint64_t>(e.object) << 8) ^ static_cast<uint64_t>(e.op);
}

bool Mergeable(const audit::SystemEvent& prev, const audit::SystemEvent& next,
               audit::Timestamp threshold) {
  if (prev.subject != next.subject || prev.object != next.object ||
      prev.op != next.op) {
    return false;
  }
  audit::Timestamp gap = next.start_time - prev.end_time;
  return gap >= 0 && gap <= threshold;
}

}  // namespace

std::vector<audit::SystemEvent> ReduceEvents(
    const std::vector<audit::SystemEvent>& events,
    const ReductionOptions& options, ReductionStats* stats) {
  std::vector<audit::SystemEvent> out;
  out.reserve(events.size());
  // Last merged event index per (subject, object, op) group.
  std::unordered_map<uint64_t, size_t> open;

  for (const audit::SystemEvent& e : events) {
    uint64_t key = GroupKey(e);
    auto it = open.find(key);
    if (it != open.end() &&
        Mergeable(out[it->second], e, options.merge_threshold_us)) {
      audit::SystemEvent& merged = out[it->second];
      merged.end_time = e.end_time;
      merged.amount += e.amount;
      continue;
    }
    open[key] = out.size();
    out.push_back(e);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const audit::SystemEvent& a, const audit::SystemEvent& b) {
                     return a.start_time < b.start_time;
                   });
  for (size_t i = 0; i < out.size(); ++i) out[i].id = i + 1;
  if (stats != nullptr) {
    stats->input_events = events.size();
    stats->output_events = out.size();
  }
  return out;
}

}  // namespace raptor::storage
