// AuditStore: the paper's storage component. Parsed system entities and
// events are replicated into BOTH database backends — the relational engine
// (for event-pattern SQL queries) and the graph engine (for variable-length
// event-path Cypher queries) — with indexes on the key attributes the paper
// lists (file name, process executable name, destination IP).
#pragma once

#include <unordered_map>
#include <vector>

#include "audit/types.h"
#include "common/status.h"
#include "storage/graphdb/cypher_executor.h"
#include "storage/reduction/reduction.h"
#include "storage/relational/database.h"

namespace raptor::storage {

struct StoreOptions {
  bool enable_reduction = true;
  ReductionOptions reduction;
  /// Cross-batch reduction carry-over: Append withholds the tail of each
  /// batch that is still inside the merge window (events whose end_time is
  /// within merge_threshold_us of the batch's newest end_time), folds it
  /// into the next batch before reduction, and only then stores it — so
  /// duplicate events spanning a batch boundary merge exactly as they
  /// would in a single load. Withheld events become visible when a later
  /// batch outruns the window or on Flush(). Off (default): every batch
  /// reduces independently and is visible immediately.
  bool carry_over_window = false;
  /// Upper bound on withheld events; overflow stores the oldest ones
  /// immediately (they lose only their chance at a cross-batch merge).
  size_t max_carry_events = 4096;
};

/// Per-Append observability: what one batch did to the store. Standing
/// hunts use `touched_entities` (endpoints of stored events plus new
/// entities) as the epoch's dirty set.
struct AppendStats {
  size_t appended_entities = 0;
  size_t appended_events = 0;  // stored (visible) this call
  size_t carried_events = 0;   // withheld in the carry-over window
  std::vector<audit::EntityId> touched_entities;
};

/// The store's complete logical state, detached from both backends: what a
/// persist::Checkpointer snapshot carries and what RestoreFrom() rebuilds
/// the backends from. Everything here is append-ordered (entities by id,
/// events by id), which is what makes a rebuild reproduce node/edge ids —
/// and therefore query results — byte-identically.
struct StoreSnapshotState {
  std::vector<audit::SystemEntity> entities;
  /// Visible (stored) events, id-ordered. Under retention these are the
  /// surviving suffix: ids `evicted_through + 1 .. next_event_id - 1`.
  std::vector<audit::SystemEvent> events;
  /// Carry-over window: reduced events withheld at a batch boundary.
  std::vector<audit::SystemEvent> carry;
  uint64_t next_event_id = 1;
  audit::EventId evicted_through = 0;  // ids <= this were aged out
  uint64_t raw_entities_consumed = 0;
  /// Reduction input counter (output is derivable from the id space).
  uint64_t reduction_input_events = 0;
};

class AuditStore {
 public:
  explicit AuditStore(StoreOptions options = {}) : options_(options) {}

  /// Load a parsed log: applies data reduction (if enabled), creates the
  /// relational tables `entities` and `events` plus the property graph,
  /// and builds indexes. Call once per store (Append handles follow-up
  /// batches).
  Status Load(const audit::ParsedLog& log);

  /// Incremental ingestion of one batch. `log.entities` must EXTEND every
  /// batch previously passed to Load/Append (entity interning is shared
  /// across batches, so earlier entities reappear as a prefix and are
  /// skipped by count); `log.events` are taken as entirely NEW events —
  /// the caller drains consumed events between batches and never resubmits
  /// them. Without the carry-over window each batch is reduced
  /// independently (cross-batch duplicate events are not merged); with it,
  /// the previous batch's withheld tail is folded in first so boundary
  /// duplicates merge. Appends go to both backends; event ids continue
  /// densely. Mutation is single-threaded: never call while queries are
  /// running.
  Status Append(const audit::ParsedLog& log, AppendStats* stats = nullptr);

  /// Store the carry-over window's withheld events (no-op when the window
  /// is off or empty). Call at end of stream — standing hunts and one-shot
  /// queries only see flushed events. Mutation, like Append.
  Status Flush(AppendStats* stats = nullptr);

  /// Events withheld by the carry-over window (invisible to queries until
  /// a later batch or Flush() stores them).
  size_t carried_event_count() const { return carry_.size(); }

  const sql::Database& relational() const { return relational_; }
  sql::Database& relational() { return relational_; }

  const graphdb::GraphDatabase& graph() const { return graph_; }
  graphdb::GraphDatabase& graph() { return graph_; }

  /// Entity metadata kept for the fuzzy matcher and result rendering.
  const std::vector<audit::SystemEntity>& entities() const {
    return entities_;
  }
  /// Events after reduction, sorted by start_time. Under retention this
  /// holds the surviving suffix of the id space; use EventById() to map an
  /// event id to its record.
  const std::vector<audit::SystemEvent>& events() const { return events_; }

  /// The event with id `id`. Event ids are stable across retention:
  /// eviction removes an id-prefix, so surviving ids stay a dense range
  /// and the lookup is O(1). Precondition: `id` is the id of a stored,
  /// non-evicted event.
  const audit::SystemEvent& EventById(audit::EventId id) const {
    return events_[id - 1 - evicted_through_];
  }

  /// Newest event id handed out (0 before any event is stored). Ids are
  /// never reused, including after retention.
  audit::EventId last_event_id() const {
    return static_cast<audit::EventId>(next_event_id_ - 1);
  }

  /// Events removed by retention; ids 1..evicted_through are gone.
  audit::EventId evicted_through() const { return evicted_through_; }

  /// Graph node id for an entity id (kInvalidNode if absent).
  graphdb::NodeId NodeForEntity(audit::EntityId id) const;

  const ReductionStats& reduction_stats() const { return reduction_stats_; }

  size_t entity_count() const { return entities_.size(); }
  size_t event_count() const { return events_.size(); }

  /// Detach a copy of the store's logical state for a snapshot. Mutation-
  /// free; call under the same exclusion as queries (the write gate).
  StoreSnapshotState ExportSnapshotState() const;

  /// Reset this store to `state`, rebuilding both backends (tables,
  /// indexes, graph, entity→node map) by re-inserting entities and events
  /// in id order — the same order the original inserts used, so node and
  /// edge ids come out identical. Precondition: the store is fresh (no
  /// Load/Append yet).
  Status RestoreFrom(StoreSnapshotState state);

  /// Retention: drop every stored event with id <= `watermark` and rebuild
  /// the backends in place from the survivors. Event ids are NOT
  /// renumbered (EventById stays valid for survivors); the reduction
  /// ratio's output side keeps counting evicted events, so ratios over the
  /// surviving window are unchanged. The carry-over window and the entity
  /// table are untouched. Returns the number of events evicted.
  Result<size_t> EvictEventsThrough(audit::EventId watermark);

 private:
  Status InitSchemas();
  Status AppendEntity(const audit::SystemEntity& e, AppendStats* stats);
  Status AppendEvent(const audit::SystemEvent& ev, AppendStats* stats);
  Status StoreEvents(std::vector<audit::SystemEvent> events,
                     AppendStats* stats);
  /// Insert one entity / event into both backends (relational row + graph
  /// node/edge). Shared by first-time appends and RestoreFrom/eviction
  /// rebuilds; does not touch entities_/events_ bookkeeping.
  Status InsertEntityRows(const audit::SystemEntity& e);
  Status InsertEventRows(const audit::SystemEvent& ev);
  /// Tear down and re-create both backends from entities_/events_ (same
  /// insertion order → same node/edge ids), preserving configured query
  /// options.
  Status RebuildBackends();

  StoreOptions options_;
  sql::Database relational_;
  graphdb::GraphDatabase graph_;
  std::vector<audit::SystemEntity> entities_;
  std::vector<audit::SystemEvent> events_;
  std::unordered_map<audit::EntityId, graphdb::NodeId> entity_to_node_;
  // Carry-over window: reduced events still inside the merge window at the
  // last batch's end, withheld from storage so the next batch can merge
  // into them. Bounded by options_.max_carry_events.
  std::vector<audit::SystemEvent> carry_;
  ReductionStats reduction_stats_;
  /// Next event id to assign. Monotonic forever — under retention it
  /// outruns events_.size(), so it is a counter, not a derived size.
  uint64_t next_event_id_ = 1;
  /// Retention watermark: events with id <= this were evicted. events_[0]
  /// (when present) has id evicted_through_ + 1.
  audit::EventId evicted_through_ = 0;
  bool loaded_ = false;        // Load() was called (it remains call-once)
  bool schema_ready_ = false;  // tables + indexes exist
  // Entity prefix of the shared interning store already consumed by
  // Append; the next Append ingests only the entities that follow. (Events
  // carry no such counter: each batch passes only its new events.)
  size_t raw_entities_consumed_ = 0;
};

}  // namespace raptor::storage
