// AuditStore: the paper's storage component. Parsed system entities and
// events are replicated into BOTH database backends — the relational engine
// (for event-pattern SQL queries) and the graph engine (for variable-length
// event-path Cypher queries) — with indexes on the key attributes the paper
// lists (file name, process executable name, destination IP).
#pragma once

#include <unordered_map>
#include <vector>

#include "audit/types.h"
#include "common/status.h"
#include "storage/graphdb/cypher_executor.h"
#include "storage/reduction/reduction.h"
#include "storage/relational/database.h"

namespace raptor::storage {

struct StoreOptions {
  bool enable_reduction = true;
  ReductionOptions reduction;
};

class AuditStore {
 public:
  explicit AuditStore(StoreOptions options = {}) : options_(options) {}

  /// Load a parsed log: applies data reduction (if enabled), creates the
  /// relational tables `entities` and `events` plus the property graph,
  /// and builds indexes. Call once per store (Append handles follow-up
  /// batches).
  Status Load(const audit::ParsedLog& log);

  /// Incremental ingestion of one batch. `log.entities` must EXTEND every
  /// batch previously passed to Load/Append (entity interning is shared
  /// across batches, so earlier entities reappear as a prefix and are
  /// skipped by count); `log.events` are taken as entirely NEW events —
  /// the caller drains consumed events between batches and never resubmits
  /// them. Each batch is reduced independently (cross-batch duplicate
  /// events are not merged) and appended to both backends; event ids
  /// continue densely. Mutation is single-threaded: never call while
  /// queries are running.
  Status Append(const audit::ParsedLog& log);

  const sql::Database& relational() const { return relational_; }
  sql::Database& relational() { return relational_; }

  const graphdb::GraphDatabase& graph() const { return graph_; }
  graphdb::GraphDatabase& graph() { return graph_; }

  /// Entity metadata kept for the fuzzy matcher and result rendering.
  const std::vector<audit::SystemEntity>& entities() const {
    return entities_;
  }
  /// Events after reduction, sorted by start_time.
  const std::vector<audit::SystemEvent>& events() const { return events_; }

  /// Graph node id for an entity id (kInvalidNode if absent).
  graphdb::NodeId NodeForEntity(audit::EntityId id) const;

  const ReductionStats& reduction_stats() const { return reduction_stats_; }

  size_t entity_count() const { return entities_.size(); }
  size_t event_count() const { return events_.size(); }

 private:
  Status InitSchemas();
  Status AppendEntity(const audit::SystemEntity& e);
  Status AppendEvent(const audit::SystemEvent& ev);

  StoreOptions options_;
  sql::Database relational_;
  graphdb::GraphDatabase graph_;
  std::vector<audit::SystemEntity> entities_;
  std::vector<audit::SystemEvent> events_;
  std::unordered_map<audit::EntityId, graphdb::NodeId> entity_to_node_;
  ReductionStats reduction_stats_;
  bool loaded_ = false;        // Load() was called (it remains call-once)
  bool schema_ready_ = false;  // tables + indexes exist
  // Entity prefix of the shared interning store already consumed by
  // Append; the next Append ingests only the entities that follow. (Events
  // carry no such counter: each batch passes only its new events.)
  size_t raw_entities_consumed_ = 0;
};

}  // namespace raptor::storage
