// In-memory property graph, the storage unit of the embedded graph engine
// that substitutes Neo4j. Nodes carry a label and a property map; edges
// carry a type and a property map. Equality indexes over (label, property)
// pairs support fast seeding of pattern matches.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/relational/value.h"

namespace raptor::graphdb {

using NodeId = uint64_t;
using EdgeId = uint64_t;
using Value = sql::Value;
using PropertyMap = std::map<std::string, Value>;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct Node {
  NodeId id = 0;
  std::string label;
  PropertyMap props;

  const Value* FindProp(std::string_view name) const {
    auto it = props.find(std::string(name));
    return it == props.end() ? nullptr : &it->second;
  }
};

struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  std::string type;
  PropertyMap props;

  const Value* FindProp(std::string_view name) const {
    auto it = props.find(std::string(name));
    return it == props.end() ? nullptr : &it->second;
  }
};

class PropertyGraph {
 public:
  NodeId AddNode(std::string label, PropertyMap props);

  /// Precondition: src and dst are valid node ids.
  EdgeId AddEdge(NodeId src, NodeId dst, std::string type, PropertyMap props);

  const Node& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  const std::vector<EdgeId>& OutEdges(NodeId id) const;
  const std::vector<EdgeId>& InEdges(NodeId id) const;

  /// All nodes with the given label.
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;

  /// Build an equality index on (label, prop). No-op if already present.
  void CreateNodeIndex(std::string_view label, std::string_view prop);

  bool HasNodeIndex(std::string_view label, std::string_view prop) const;

  /// Nodes with node.label == label && node.props[prop] == value.
  /// Precondition: HasNodeIndex(label, prop).
  const std::vector<NodeId>& ProbeNodes(std::string_view label,
                                        std::string_view prop,
                                        const Value& value) const;

  size_t node_count() const { return nodes_.size(); }
  size_t edge_count() const { return edges_.size(); }

 private:
  std::vector<Node> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::unordered_map<std::string, std::vector<NodeId>> by_label_;
  // "label\x1fprop" -> value-string -> node ids
  std::unordered_map<std::string,
                     std::unordered_map<std::string, std::vector<NodeId>>>
      node_indexes_;
};

}  // namespace raptor::graphdb
