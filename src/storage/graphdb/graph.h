// In-memory property graph, the storage unit of the embedded graph engine
// that substitutes Neo4j. Nodes carry a label and a property map; edges
// carry a type and a property map.
//
// Hot-path design:
//  * node labels, edge types, and indexed property names are interned into
//    dense uint32 ids, so pattern matching compares integers, not strings;
//  * per-node adjacency is additionally grouped by edge-type id, so a typed
//    expansion touches only edges of the requested type instead of the full
//    out/in-edge list;
//  * equality indexes over (label, property) pairs are keyed by Value with
//    a Compare()-consistent hash, so probes never stringify;
//  * property maps use a transparent comparator, so FindProp(string_view)
//    never allocates a key.
//
// Sharding: node, edge, adjacency, label-bucket and index storage is
// partitioned into a power-of-two number of shards, hashed on entity id
// (shard = id & mask; ids stay dense and global, so creation order and the
// public id space are unchanged). Each shard owns its nodes' adjacency
// lists, its slice of every (label, prop) hash index, and its label
// buckets, which lets the query executor fan seed iteration out one worker
// per shard. The pre-sharding accessors that return a single bucket
// reference (NodesWithLabel / ProbeNodes without a shard argument) remain
// valid as the single-shard (shard_count() == 1) case; shard-agnostic
// aggregates (ProbeCountNodes, GetNodeIndexStats) sum over shards and stay
// exact for any shard count.
//
// Thread-safety contract: construction and mutation (AddNode / AddEdge /
// CreateNodeIndex) are single-threaded; all const member functions are
// race-free when called concurrently from any number of threads.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "storage/columnar.h"
#include "storage/relational/value.h"
#include "storage/shard_layout.h"

namespace raptor::graphdb {

using NodeId = uint64_t;
using EdgeId = uint64_t;
using Value = sql::Value;
// std::less<> enables heterogeneous (string_view) lookup without allocating.
using PropertyMap = std::map<std::string, Value, std::less<>>;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

struct Node {
  NodeId id = 0;
  uint32_t label_id = 0;
  /// Dense offset within the node's (shard × label) bucket — the cell
  /// position in every frozen column of that bucket.
  uint32_t label_pos = 0;
  std::string label;
  PropertyMap props;

  const Value* FindProp(std::string_view name) const {
    auto it = props.find(name);
    return it == props.end() ? nullptr : &it->second;
  }
};

struct Edge {
  EdgeId id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  uint32_t type_id = 0;
  /// Dense offset within the edge's (shard × type) bucket — the cell
  /// position in every frozen column of that bucket.
  uint32_t type_pos = 0;
  std::string type;
  PropertyMap props;

  const Value* FindProp(std::string_view name) const {
    auto it = props.find(name);
    return it == props.end() ? nullptr : &it->second;
  }
};

class PropertyGraph {
 public:
  /// `shard_count` is rounded up to a power of two; 1 (the default)
  /// reproduces the unsharded layout exactly.
  explicit PropertyGraph(size_t shard_count = 1);

  NodeId AddNode(std::string label, PropertyMap props);

  /// Precondition: src and dst are valid node ids.
  EdgeId AddEdge(NodeId src, NodeId dst, std::string type, PropertyMap props);

  const Node& node(NodeId id) const {
    return shards_[layout_.ShardOf(id)].nodes[layout_.LocalOf(id)];
  }
  const Edge& edge(EdgeId id) const {
    return shards_[layout_.ShardOf(id)].edges[layout_.LocalOf(id)];
  }

  size_t shard_count() const { return shards_.size(); }

  /// Shard owning node (or edge) `id`.
  size_t ShardOf(uint64_t id) const { return layout_.ShardOf(id); }

  const std::vector<EdgeId>& OutEdges(NodeId id) const;
  const std::vector<EdgeId>& InEdges(NodeId id) const;

  /// Edges of `id` whose interned type equals `type_id` only. Passing
  /// kNoSymbol (a type absent from the graph) yields the empty list.
  const std::vector<EdgeId>& OutEdges(NodeId id, uint32_t type_id) const;
  const std::vector<EdgeId>& InEdges(NodeId id, uint32_t type_id) const;

  /// Interned id of a label / edge type, or kNoSymbol if it never occurs.
  uint32_t LookupLabel(std::string_view label) const {
    return labels_.Lookup(label);
  }
  uint32_t LookupEdgeType(std::string_view type) const {
    return edge_types_.Lookup(type);
  }

  /// All nodes with the given label. Precondition: shard_count() == 1
  /// (the sharded layout exposes per-shard buckets below).
  const std::vector<NodeId>& NodesWithLabel(std::string_view label) const;

  /// The nodes of `shard` with the given label, in creation order.
  /// Precondition: shard < shard_count().
  const std::vector<NodeId>& NodesWithLabel(std::string_view label,
                                            size_t shard) const;

  /// Build an equality index on (label, prop) in every shard. No-op if
  /// already present.
  void CreateNodeIndex(std::string_view label, std::string_view prop);

  bool HasNodeIndex(std::string_view label, std::string_view prop) const;

  /// Nodes with node.label == label && node.props[prop] == value.
  /// Precondition: HasNodeIndex(label, prop) && shard_count() == 1.
  const std::vector<NodeId>& ProbeNodes(std::string_view label,
                                        std::string_view prop,
                                        const Value& value) const;

  /// The index bucket of `shard` only; a value's full candidate set is the
  /// disjoint union of its buckets across all shards.
  /// Precondition: HasNodeIndex(label, prop) && shard < shard_count().
  const std::vector<NodeId>& ProbeNodes(std::string_view label,
                                        std::string_view prop,
                                        const Value& value,
                                        size_t shard) const;

  /// Size of the candidate set for (label, prop) == value, summed over all
  /// shards without materializing it. The matcher ranks competing index
  /// probes by this exact per-value cardinality (the same access-path
  /// choice the SQL planner makes from its candidate-set sizes).
  size_t ProbeCountNodes(std::string_view label, std::string_view prop,
                         const Value& value) const;

  /// Aggregate cardinality statistics of one (label, prop) equality index.
  struct NodeIndexStats {
    size_t distinct_keys = 0;  // distinct property values indexed
    size_t entries = 0;        // total node entries across all keys
  };

  /// Stats for the (label, prop) index, aggregated over every shard: a
  /// value split across shards counts once in distinct_keys, and entries
  /// sum across shards. All-zero when no such index exists. Introspection /
  /// diagnostics surface (O(distinct_keys * shards) walk): the matcher
  /// ranks access paths by the exact ProbeCountNodes of the probed values.
  NodeIndexStats GetNodeIndexStats(std::string_view label,
                                   std::string_view prop) const;

  size_t node_count() const { return node_count_; }
  size_t edge_count() const { return edge_count_; }
  size_t label_count() const { return labels_.size(); }
  size_t edge_type_count() const { return edge_types_.size(); }

  // --- Frozen columnar property storage (storage/columnar.h) ---------------
  // Every AddNode/AddEdge freezes the property map into per-(shard × label)
  // / per-(shard × edge type) columns alongside the retained row form, so
  // predicate loops can scan column slices. String cells dictionary-encode
  // against one dictionary per property name, global across shards and
  // buckets: a query literal is looked up once and compared as a uint32
  // everywhere.

  /// Interned id of a property name, or kNoSymbol if no entity carries it.
  uint32_t LookupPropName(std::string_view name) const {
    return prop_names_.Lookup(name);
  }

  /// Dictionary id of `text` in property `prop_id`'s global dictionary, or
  /// storage::kNullDictId when that exact string was never frozen for the
  /// property. (kNullDictId doubles as the absent-cell sentinel, so eq
  /// fast paths must treat a kNullDictId literal as "matches nothing".)
  uint32_t LookupPropDict(uint32_t prop_id, std::string_view text) const;

  /// The string behind a dictionary id. Precondition: `dict_id` came from
  /// a cell of a frozen column of `prop_id`.
  std::string_view PropDictName(uint32_t prop_id, uint32_t dict_id) const;

  /// Frozen column of (shard, label, prop) — nullptr when no node of that
  /// bucket carries the property. Cell positions are Node::label_pos.
  const storage::Column* NodeColumn(size_t shard, uint32_t label_id,
                                    uint32_t prop_id) const;

  /// Frozen column of (shard, edge type, prop); positions Edge::type_pos.
  const storage::Column* EdgeColumn(size_t shard, uint32_t type_id,
                                    uint32_t prop_id) const;

 private:
  /// Per-node adjacency grouped by edge-type id. Nodes see few distinct
  /// edge types, so a flat (type, edges) vector beats a per-node hash map
  /// in both memory and probe cost.
  struct TypedAdjacency {
    std::vector<std::pair<uint32_t, std::vector<EdgeId>>> groups;

    std::vector<EdgeId>& For(uint32_t type_id);
    const std::vector<EdgeId>* Find(uint32_t type_id) const;
  };

  using ValueIndex =
      std::unordered_map<Value, std::vector<NodeId>, sql::ValueHash,
                         sql::ValueEq>;

  /// One entity-id-hashed partition: the node/edge records whose id hashes
  /// here, the adjacency of this shard's nodes (indexed by the layout's
  /// local index), this shard's label buckets, and this shard's slice of
  /// every equality index (global node ids).
  struct Shard {
    std::vector<Node> nodes;
    std::vector<Edge> edges;
    std::vector<std::vector<EdgeId>> out_edges;
    std::vector<std::vector<EdgeId>> in_edges;
    std::vector<TypedAdjacency> out_by_type;
    std::vector<TypedAdjacency> in_by_type;
    std::vector<std::vector<NodeId>> by_label;  // label id -> node ids
    // (label_id << 32 | prop_id) -> value -> node ids
    std::unordered_map<uint64_t, ValueIndex> node_indexes;
    // Frozen property columns: one group per label / edge-type bucket.
    std::vector<storage::ColumnGroup> node_cols;  // label id -> columns
    std::vector<storage::ColumnGroup> edge_cols;  // type id -> columns
    std::vector<uint32_t> edges_per_type;  // type id -> count (type_pos)
  };

  static uint64_t IndexKey(uint32_t label_id, uint32_t prop_id) {
    return (static_cast<uint64_t>(label_id) << 32) | prop_id;
  }

  const ValueIndex* FindIndex(std::string_view label, std::string_view prop,
                              size_t shard) const;

  void FreezeProps(storage::ColumnGroup& group, size_t pos,
                   const PropertyMap& props);

  StringInterner labels_;
  StringInterner edge_types_;
  StringInterner index_props_;
  StringInterner prop_names_;
  // One string dictionary per property name (indexed by prop id); a deque
  // keeps dictionaries address-stable as new property names appear.
  std::deque<StringInterner> prop_dicts_;
  std::vector<Shard> shards_;
  storage::ShardLayout layout_;
  size_t node_count_ = 0;
  size_t edge_count_ = 0;
};

}  // namespace raptor::graphdb
