#include "storage/graphdb/cypher_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/deadline.h"
#include "common/small_vector.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "storage/columnar.h"
#include "storage/graphdb/cypher_parser.h"
#include "storage/shard_parallel.h"
#include "storage/subresult_cache.h"

namespace raptor::graphdb {

namespace {

constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Interned variable slots, built once per query: every node/edge variable
/// across all pattern parts maps to a dense id, so the frame binding can
/// hold bound entities in flat vectors instead of string-keyed maps.
struct VarTable {
  StringInterner nodes;
  StringInterner edges;
};

/// Legacy binding representation: one hash container per variable class
/// plus the relationship-uniqueness set. Kept as a benchmarking baseline
/// behind MatchOptions::binding_frames = false.
struct MapBinding {
  std::unordered_map<std::string, NodeId> nodes;
  std::unordered_map<std::string, EdgeId> edges;
  std::unordered_set<EdgeId> used_edges;  // relationship uniqueness
};

/// Flat binding frame keyed on interned slots. The streaming pipeline
/// threads exactly one frame through the whole search (bind on descent,
/// unbind on backtrack), and the inline small-vector storage makes frame
/// setup allocation-free for typical variable counts.
struct FrameBinding {
  SmallVector<NodeId, 8> nodes;       // node slot -> id, kInvalidNode unbound
  SmallVector<EdgeId, 8> edges;       // edge slot -> id, kInvalidEdge unbound
  SmallVector<EdgeId, 16> used_edges;  // LIFO stack of in-use edges
};

void InitBinding(MapBinding&, const VarTable&) {}

void InitBinding(FrameBinding& b, const VarTable& vars) {
  b.nodes.assign(vars.nodes.size(), kInvalidNode);
  b.edges.assign(vars.edges.size(), kInvalidEdge);
  b.used_edges.clear();
}

/// One inline property constraint compiled against the frozen columnar
/// storage. The literal is resolved once (int value or dictionary id) and
/// each shard's (label/type × prop) column is classified into a scan mode,
/// so the per-candidate check is an integer compare against a column cell
/// instead of a PropertyMap probe + Value::Compare.
struct ColPred {
  enum class Mode : uint8_t {
    kRow,    // column can't represent the compare exactly; use the row path
    kNever,  // no cell of this shard's bucket can ever match the literal
    kInt,    // int column: cell present && cell == int_lit
    kDict,   // string column: cell dictionary id == dict_lit
  };
  struct PerShard {
    Mode mode = Mode::kRow;
    const storage::Column* col = nullptr;  // kInt / kDict only
  };

  const PropConstraint* pc = nullptr;  // row-path fallback source
  int64_t int_lit = 0;
  uint32_t dict_lit = storage::kNullDictId;
  SmallVector<PerShard, 4> shards;

  /// `pos` is the candidate's dense bucket offset (label_pos / type_pos).
  bool Matches(size_t shard, size_t pos, const Node* row_node,
               const Edge* row_edge) const {
    const PerShard& ps = shards[shard];
    switch (ps.mode) {
      case Mode::kNever:
        return false;
      case Mode::kInt: {
        int64_t v;
        return ps.col->IntAt(pos, &v) && v == int_lit;
      }
      case Mode::kDict:
        return ps.col->DictAt(pos) == dict_lit;
      case Mode::kRow: {
        const Value* v = row_node != nullptr ? row_node->FindProp(pc->key)
                                             : row_edge->FindProp(pc->key);
        return v != nullptr && v->Compare(pc->value) == 0;
      }
    }
    return false;
  }
};

/// Classify one constraint against one shard's column. The literal kinds
/// the columns represent exactly are int and text; doubles and NULLs keep
/// the row path (a double literal can numerically equal an int cell under
/// Value::Compare). A missing column means no row of the bucket carries
/// the property, and a kind mismatch (text literal vs int column and vice
/// versa) can never compare equal — both are kNever. A text literal absent
/// from the property's global dictionary (dict_lit == kNullDictId, which
/// doubles as the absent-cell sentinel) also matches nothing and must
/// never be id-compared against cells.
ColPred::PerShard ClassifyColumn(const storage::Column* col,
                                 const Value& lit, uint32_t dict_lit) {
  ColPred::PerShard ps;
  if (col == nullptr) {
    ps.mode = ColPred::Mode::kNever;
    return ps;
  }
  if (!col->usable() || (!lit.is_int() && !lit.is_text())) {
    ps.mode = ColPred::Mode::kRow;
    return ps;
  }
  if (col->kind() == storage::Column::Kind::kInt64) {
    ps.mode = lit.is_int() ? ColPred::Mode::kInt : ColPred::Mode::kNever;
  } else {  // kString
    ps.mode = lit.is_text() && dict_lit != storage::kNullDictId
                  ? ColPred::Mode::kDict
                  : ColPred::Mode::kNever;
  }
  ps.col = col;
  return ps;
}

/// A node pattern with its label resolved to the graph's interned id and
/// its variable to the query's slot, so candidate checks compare integers
/// instead of strings. When columnar_scan is on and the label is known,
/// inline property constraints additionally compile to ColPreds over the
/// frozen per-(shard × label) columns.
struct ResolvedNode {
  const NodePattern* pat = nullptr;
  bool has_label = false;
  bool columnar = false;          // col_preds cover every constraint
  uint32_t label_id = kNoSymbol;  // kNoSymbol: label absent, matches nothing
  uint32_t var_slot = kNoSymbol;  // kNoSymbol: anonymous node
  std::vector<ColPred> col_preds;

  bool Matches(const Node& node, const PropertyGraph& graph) const {
    if (has_label && node.label_id != label_id) return false;
    if (columnar) {
      size_t shard = graph.ShardOf(node.id);
      for (const ColPred& cp : col_preds) {
        if (!cp.Matches(shard, node.label_pos, &node, nullptr)) return false;
      }
      return true;
    }
    for (const PropConstraint& pc : pat->props) {
      const Value* v = node.FindProp(pc.key);
      if (v == nullptr || v->Compare(pc.value) != 0) return false;
    }
    return true;
  }
};

/// A relationship pattern with its type resolved to the interned id; typed
/// expansion uses the id to select the per-type adjacency group directly.
/// Inline property constraints compile to ColPreds over the per-(shard ×
/// edge type) columns when the type is known.
struct ResolvedRel {
  const RelPattern* pat = nullptr;
  bool has_type = false;
  bool columnar = false;
  uint32_t type_id = kNoSymbol;
  uint32_t var_slot = kNoSymbol;
  std::vector<ColPred> col_preds;

  bool Matches(const Edge& edge, const PropertyGraph& graph) const {
    if (has_type && edge.type_id != type_id) return false;
    if (columnar) {
      size_t shard = graph.ShardOf(edge.id);
      for (const ColPred& cp : col_preds) {
        if (!cp.Matches(shard, edge.type_pos, nullptr, &edge)) return false;
      }
      return true;
    }
    for (const PropConstraint& pc : pat->props) {
      const Value* v = edge.FindProp(pc.key);
      if (v == nullptr || v->Compare(pc.value) != 0) return false;
    }
    return true;
  }
};

ColPred CompileColPred(const PropertyGraph& graph, const PropConstraint& pc,
                       bool node_side, uint32_t bucket_id) {
  ColPred cp;
  cp.pc = &pc;
  uint32_t prop_id = graph.LookupPropName(pc.key);
  if (pc.value.is_int()) cp.int_lit = pc.value.AsInt();
  if (pc.value.is_text()) {
    cp.dict_lit = graph.LookupPropDict(prop_id, pc.value.AsText());
  }
  for (size_t s = 0; s < graph.shard_count(); ++s) {
    const storage::Column* col = node_side
                                     ? graph.NodeColumn(s, bucket_id, prop_id)
                                     : graph.EdgeColumn(s, bucket_id, prop_id);
    cp.shards.push_back(ClassifyColumn(col, pc.value, cp.dict_lit));
  }
  return cp;
}

ResolvedNode ResolveNode(const PropertyGraph& graph, const VarTable& vars,
                         const NodePattern& pat, bool columnar_scan) {
  ResolvedNode r;
  r.pat = &pat;
  if (!pat.label.empty()) {
    r.has_label = true;
    r.label_id = graph.LookupLabel(pat.label);
  }
  if (!pat.var.empty()) r.var_slot = vars.nodes.Lookup(pat.var);
  // Columnar constraints need a known label (the column buckets are per
  // label); an unknown label matches nothing regardless.
  if (columnar_scan && r.has_label && r.label_id != kNoSymbol) {
    r.columnar = true;
    r.col_preds.reserve(pat.props.size());
    for (const PropConstraint& pc : pat.props) {
      r.col_preds.push_back(
          CompileColPred(graph, pc, /*node_side=*/true, r.label_id));
    }
  }
  return r;
}

ResolvedRel ResolveRel(const PropertyGraph& graph, const VarTable& vars,
                       const RelPattern& pat, bool columnar_scan) {
  ResolvedRel r;
  r.pat = &pat;
  if (!pat.type.empty()) {
    r.has_type = true;
    r.type_id = graph.LookupEdgeType(pat.type);
  }
  if (!pat.var.empty()) r.var_slot = vars.edges.Lookup(pat.var);
  if (columnar_scan && r.has_type && r.type_id != kNoSymbol) {
    r.columnar = true;
    r.col_preds.reserve(pat.props.size());
    for (const PropConstraint& pc : pat.props) {
      r.col_preds.push_back(
          CompileColPred(graph, pc, /*node_side=*/false, r.type_id));
    }
  }
  return r;
}

// ---- Binding operations, overloaded per representation -------------------

bool NodeBound(const MapBinding& b, const ResolvedNode& rn) {
  return !rn.pat->var.empty() && b.nodes.count(rn.pat->var) > 0;
}
bool NodeBound(const FrameBinding& b, const ResolvedNode& rn) {
  return rn.var_slot != kNoSymbol && b.nodes[rn.var_slot] != kInvalidNode;
}

/// Precondition: NodeBound(b, rn).
NodeId BoundNode(const MapBinding& b, const ResolvedNode& rn) {
  return b.nodes.at(rn.pat->var);
}
NodeId BoundNode(const FrameBinding& b, const ResolvedNode& rn) {
  return b.nodes[rn.var_slot];
}

void SetNode(MapBinding& b, const ResolvedNode& rn, NodeId id) {
  b.nodes[rn.pat->var] = id;
}
void SetNode(FrameBinding& b, const ResolvedNode& rn, NodeId id) {
  b.nodes[rn.var_slot] = id;
}

void ClearNode(MapBinding& b, const ResolvedNode& rn) {
  b.nodes.erase(rn.pat->var);
}
void ClearNode(FrameBinding& b, const ResolvedNode& rn) {
  b.nodes[rn.var_slot] = kInvalidNode;
}

bool EdgeBound(const MapBinding& b, const ResolvedRel& rr) {
  return !rr.pat->var.empty() && b.edges.count(rr.pat->var) > 0;
}
bool EdgeBound(const FrameBinding& b, const ResolvedRel& rr) {
  return rr.var_slot != kNoSymbol && b.edges[rr.var_slot] != kInvalidEdge;
}

/// Precondition: EdgeBound(b, rr).
EdgeId BoundEdge(const MapBinding& b, const ResolvedRel& rr) {
  return b.edges.at(rr.pat->var);
}
EdgeId BoundEdge(const FrameBinding& b, const ResolvedRel& rr) {
  return b.edges[rr.var_slot];
}

void SetEdge(MapBinding& b, const ResolvedRel& rr, EdgeId id) {
  b.edges[rr.pat->var] = id;
}
void SetEdge(FrameBinding& b, const ResolvedRel& rr, EdgeId id) {
  b.edges[rr.var_slot] = id;
}

void ClearEdge(MapBinding& b, const ResolvedRel& rr) {
  b.edges.erase(rr.pat->var);
}
void ClearEdge(FrameBinding& b, const ResolvedRel& rr) {
  b.edges[rr.var_slot] = kInvalidEdge;
}

bool EdgeUsed(const MapBinding& b, EdgeId id) {
  return b.used_edges.count(id) > 0;
}
bool EdgeUsed(const FrameBinding& b, EdgeId id) {
  return Contains(b.used_edges, id);
}

void PushUsedEdge(MapBinding& b, EdgeId id) { b.used_edges.insert(id); }
void PushUsedEdge(FrameBinding& b, EdgeId id) { b.used_edges.push_back(id); }

/// Precondition: `id` was the most recent PushUsedEdge (the matcher's
/// insert/recurse/erase discipline is strictly LIFO).
void PopUsedEdge(MapBinding& b, EdgeId id) { b.used_edges.erase(id); }
void PopUsedEdge(FrameBinding& b, EdgeId id) {
  (void)id;
  b.used_edges.pop_back();
}

/// How selective a node pattern is, for choosing the search seed.
template <class BindingT>
int ConstraintScore(const ResolvedNode& rn, const BindingT& binding) {
  if (NodeBound(binding, rn)) return 100;
  int score = 0;
  if (!rn.pat->label.empty()) ++score;
  score += 2 * static_cast<int>(rn.pat->props.size());
  return score;
}

/// Evaluate a WHERE / RETURN expression against a (possibly partially)
/// bound row, in either binding representation.
class CypherEvaluator {
 public:
  CypherEvaluator(const PropertyGraph& graph, const VarTable& vars,
                  bool hashed_in_lists, bool columnar_scan)
      : graph_(graph),
        vars_(vars),
        hashed_in_lists_(hashed_in_lists),
        columnar_scan_(columnar_scan) {}

  template <class BindingT>
  Result<Value> Eval(const CypherExpr& e, const BindingT& b) const {
    switch (e.kind) {
      case CypherExprKind::kLiteral:
        return e.literal;
      case CypherExprKind::kVarRef: {
        NodeId nid;
        if (LookupNodeVar(b, e, &nid)) {
          return Value(static_cast<int64_t>(nid));
        }
        EdgeId eid;
        if (LookupEdgeVar(b, e, &eid)) {
          return Value(static_cast<int64_t>(eid));
        }
        return Status::NotFound("unbound variable: " + e.var);
      }
      case CypherExprKind::kPropRef: {
        NodeId nid;
        if (LookupNodeVar(b, e, &nid)) {
          const Node& node = graph_.node(nid);
          if (columnar_scan_) {
            return ColumnarProp(
                e, graph_.NodeColumn(graph_.ShardOf(nid), node.label_id,
                                     SlotsFor(e).prop_id),
                node.label_pos, [&] { return node.FindProp(e.prop); });
          }
          const Value* v = node.FindProp(e.prop);
          return v != nullptr ? *v : Value::Null();
        }
        EdgeId eid;
        if (LookupEdgeVar(b, e, &eid)) {
          const Edge& edge = graph_.edge(eid);
          if (columnar_scan_) {
            return ColumnarProp(
                e, graph_.EdgeColumn(graph_.ShardOf(eid), edge.type_id,
                                     SlotsFor(e).prop_id),
                edge.type_pos, [&] { return edge.FindProp(e.prop); });
          }
          const Value* v = edge.FindProp(e.prop);
          return v != nullptr ? *v : Value::Null();
        }
        return Status::NotFound("unbound variable: " + e.var);
      }
      case CypherExprKind::kNot: {
        auto inner = Eval(*e.lhs, b);
        if (!inner.ok()) return inner.status();
        return Value(static_cast<int64_t>(!Truthy(inner.value())));
      }
      case CypherExprKind::kInList: {
        auto lhs = Eval(*e.lhs, b);
        if (!lhs.ok()) return lhs.status();
        bool found;
        if (hashed_in_lists_) {
          found = in_sets_.Get(e).count(lhs.value()) > 0;
        } else {
          // Legacy O(n) scan, kept as a benchmarking baseline.
          found = false;
          for (const Value& v : e.in_list) {
            if (lhs.value().Compare(v) == 0) {
              found = true;
              break;
            }
          }
        }
        return Value(static_cast<int64_t>(e.negated ? !found : found));
      }
      case CypherExprKind::kBinary: {
        if (e.op == CypherBinaryOp::kAnd || e.op == CypherBinaryOp::kOr) {
          auto l = Eval(*e.lhs, b);
          if (!l.ok()) return l.status();
          bool lt = Truthy(l.value());
          if (e.op == CypherBinaryOp::kAnd && !lt) {
            return Value(static_cast<int64_t>(0));
          }
          if (e.op == CypherBinaryOp::kOr && lt) {
            return Value(static_cast<int64_t>(1));
          }
          auto r = Eval(*e.rhs, b);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        auto l = Eval(*e.lhs, b);
        if (!l.ok()) return l.status();
        auto r = Eval(*e.rhs, b);
        if (!r.ok()) return r.status();
        if (e.op == CypherBinaryOp::kAdd || e.op == CypherBinaryOp::kSub) {
          if (l.value().is_double() || r.value().is_double()) {
            double x = l.value().AsDouble(), y = r.value().AsDouble();
            return Value(e.op == CypherBinaryOp::kAdd ? x + y : x - y);
          }
          int64_t x = l.value().AsInt(), y = r.value().AsInt();
          return Value(e.op == CypherBinaryOp::kAdd ? x + y : x - y);
        }
        return Value(static_cast<int64_t>(Compare(e.op, l.value(), r.value())));
      }
    }
    return Status::Internal("unreachable cypher expr kind");
  }

  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    if (v.is_int()) return v.AsInt() != 0;
    if (v.is_double()) return v.AsDouble() != 0.0;
    return !v.AsText().empty();
  }

  static bool Compare(CypherBinaryOp op, const Value& l, const Value& r) {
    switch (op) {
      case CypherBinaryOp::kEq: return l.Compare(r) == 0;
      case CypherBinaryOp::kNe: return l.Compare(r) != 0;
      case CypherBinaryOp::kLt: return l.Compare(r) < 0;
      case CypherBinaryOp::kLe: return l.Compare(r) <= 0;
      case CypherBinaryOp::kGt: return l.Compare(r) > 0;
      case CypherBinaryOp::kGe: return l.Compare(r) >= 0;
      case CypherBinaryOp::kContains:
        return l.ToString().find(r.ToString()) != std::string::npos;
      case CypherBinaryOp::kStartsWith:
        return StartsWith(l.ToString(), r.ToString());
      case CypherBinaryOp::kEndsWith:
        return EndsWith(l.ToString(), r.ToString());
      default:
        return false;
    }
  }

 private:
  /// Interned slots of an expression's variable (and, for kPropRef, the
  /// graph's interned property-name id), resolved once per expr node and
  /// cached by pointer: repeated evaluations (one per result row) pay a
  /// pointer-hash probe instead of re-hashing the names.
  struct VarSlots {
    uint32_t node_slot = kNoSymbol;
    uint32_t edge_slot = kNoSymbol;
    uint32_t prop_id = kNoSymbol;
  };
  const VarSlots& SlotsFor(const CypherExpr& e) const {
    auto it = slots_.find(&e);
    if (it == slots_.end()) {
      it = slots_
               .emplace(&e, VarSlots{vars_.nodes.Lookup(e.var),
                                     vars_.edges.Lookup(e.var),
                                     graph_.LookupPropName(e.prop)})
               .first;
    }
    return it->second;
  }

  /// Property read through a frozen column: a missing column means no
  /// entity of the bucket carries the property (NULL), and absent cells
  /// are NULL; a demoted (kMixed) column defers to `row_prop` so doubles
  /// and null-valued properties keep exact row semantics.
  template <class RowProp>
  Result<Value> ColumnarProp(const CypherExpr& e, const storage::Column* col,
                             size_t pos, RowProp&& row_prop) const {
    if (col == nullptr) return Value::Null();
    if (col->kind() == storage::Column::Kind::kInt64) {
      int64_t v;
      return col->IntAt(pos, &v) ? Value(v) : Value::Null();
    }
    if (col->kind() == storage::Column::Kind::kString) {
      uint32_t d = col->DictAt(pos);
      if (d == storage::kNullDictId) return Value::Null();
      return Value(std::string(graph_.PropDictName(SlotsFor(e).prop_id, d)));
    }
    const Value* v = row_prop();
    return v != nullptr ? *v : Value::Null();
  }

  bool LookupNodeVar(const MapBinding& b, const CypherExpr& e,
                     NodeId* out) const {
    auto it = b.nodes.find(e.var);
    if (it == b.nodes.end()) return false;
    *out = it->second;
    return true;
  }
  bool LookupNodeVar(const FrameBinding& b, const CypherExpr& e,
                     NodeId* out) const {
    uint32_t slot = SlotsFor(e).node_slot;
    if (slot == kNoSymbol || b.nodes[slot] == kInvalidNode) return false;
    *out = b.nodes[slot];
    return true;
  }
  bool LookupEdgeVar(const MapBinding& b, const CypherExpr& e,
                     EdgeId* out) const {
    auto it = b.edges.find(e.var);
    if (it == b.edges.end()) return false;
    *out = it->second;
    return true;
  }
  bool LookupEdgeVar(const FrameBinding& b, const CypherExpr& e,
                     EdgeId* out) const {
    uint32_t slot = SlotsFor(e).edge_slot;
    if (slot == kNoSymbol || b.edges[slot] == kInvalidEdge) return false;
    *out = b.edges[slot];
    return true;
  }

  const PropertyGraph& graph_;
  const VarTable& vars_;
  bool hashed_in_lists_;
  bool columnar_scan_;
  sql::InListCache<CypherExpr> in_sets_;
  mutable std::unordered_map<const CypherExpr*, VarSlots> slots_;
};

/// Split an AND-tree into conjuncts.
void SplitConjuncts(const CypherExpr* e, std::vector<const CypherExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == CypherExprKind::kBinary && e->op == CypherBinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
  } else {
    out->push_back(e);
  }
}

void CollectVars(const CypherExpr& e, std::unordered_set<std::string>* vars) {
  switch (e.kind) {
    case CypherExprKind::kPropRef:
    case CypherExprKind::kVarRef:
      vars->insert(e.var);
      break;
    case CypherExprKind::kBinary:
      CollectVars(*e.lhs, vars);
      CollectVars(*e.rhs, vars);
      break;
    case CypherExprKind::kNot:
      CollectVars(*e.lhs, vars);
      break;
    case CypherExprKind::kInList:
      CollectVars(*e.lhs, vars);
      break;
    case CypherExprKind::kLiteral:
      break;
  }
}

/// Single-variable WHERE conjuncts, applied as soon as their variable binds
/// (the predicate pushdown real graph databases perform; without it a
/// multi-pattern MATCH would enumerate the full cross product first).
using PushdownFilters =
    std::unordered_map<std::string, std::vector<const CypherExpr*>>;

/// Start-node candidates for one chain: either per-shard non-owning spans
/// (index buckets or label buckets, one per storage shard, iterated lazily
/// so LIMIT pushdown can stop early without materializing the tail), an
/// owned list (bound variable, multi-value probe unions), or a full node
/// scan. The per-shard layout is what lets the parallel driver hand each
/// worker exactly its shard's seeds.
struct SeedSet {
  SmallVector<const std::vector<NodeId>*, 8> spans;  // indexed by shard
  std::vector<NodeId> owned;                         // owning storage
  /// Plan-time split of `owned` into per-shard sub-lists (order preserved
  /// within each shard). Built once by the parallel driver so workers walk
  /// exactly their shard's seeds instead of skip-scanning the whole list.
  std::vector<std::vector<NodeId>> owned_by_shard;
  bool full_scan = false;

  size_t SeedCount(const PropertyGraph& graph) const {
    if (full_scan) return graph.node_count();
    if (!spans.empty()) {
      size_t n = 0;
      for (const std::vector<NodeId>* span : spans) n += span->size();
      return n;
    }
    return owned.size();
  }

  void SplitOwnedByShard(const PropertyGraph& graph) {
    if (owned.empty() || !owned_by_shard.empty()) return;
    owned_by_shard.resize(graph.shard_count());
    for (NodeId id : owned) owned_by_shard[graph.ShardOf(id)].push_back(id);
  }
};

/// The streaming matcher: drives all pattern parts depth-first, calling
/// `sink(binding)` once per complete query binding. Every traversal method
/// returns true to continue and false to stop the whole search (LIMIT
/// pushdown); after a stop the binding contents are unspecified.
template <class BindingT, class Sink>
class Matcher {
 public:
  Matcher(const PropertyGraph& graph, const MatchOptions& options,
          const PushdownFilters& pushdown, const CypherEvaluator& eval,
          MatchStats* stats, Sink& sink)
      : graph_(graph),
        options_(options),
        pushdown_(pushdown),
        eval_(eval),
        stats_(stats),
        sink_(sink),
        deadline_(options.deadline) {}

  /// The chain being matched, with every label / edge type resolved to its
  /// interned id once up front instead of per candidate.
  struct ResolvedPart {
    std::vector<ResolvedNode> nodes;
    std::vector<ResolvedRel> rels;
  };

  /// A pattern part prepared for repeated matching: the forward and
  /// reversed chains with labels/types resolved once, reused across every
  /// binding the part extends.
  struct PreparedPart {
    const PatternPart* fwd = nullptr;
    PatternPart rev;
    ResolvedPart resolved_fwd;
    ResolvedPart resolved_rev;
  };

  Status PrepareParts(const std::vector<PatternPart>& parts,
                      const VarTable& vars) {
    own_parts_.reserve(parts.size());
    for (const PatternPart& part : parts) {
      if (part.nodes.empty()) {
        return Status::InvalidArgument("empty pattern part");
      }
      PreparedPart pp;
      pp.fwd = &part;
      pp.rev = Reverse(part);
      pp.resolved_fwd = Resolve(part, vars);
      pp.resolved_rev = Resolve(pp.rev, vars);
      own_parts_.push_back(std::move(pp));
    }
    parts_ = &own_parts_;
    return Status::OK();
  }

  /// Reuse another matcher's prepared parts (immutable after PrepareParts)
  /// instead of re-resolving the query: the parallel driver prepares once
  /// and shares across all shard workers. `other` must outlive this
  /// matcher.
  void SharePreparedParts(const Matcher& other) { parts_ = other.parts_; }

  /// Match every part against `binding`; false if the sink stopped early.
  bool Run(BindingT& binding) { return MatchFrom(0, binding); }

  /// Restrict top-level (part 0) seed iteration to one storage shard; the
  /// parallel driver runs one matcher per shard with disjoint seed sets.
  void RestrictTopSeedsToShard(int shard) { seed_shard_ = shard; }

  /// Restrict top-level seed iteration to the half-open sub-range
  /// [lo, hi) of one shard's seed list (seed-list positions, not node
  /// ids): one work-stealing morsel. Implies RestrictTopSeedsToShard.
  void RestrictTopSeedsToMorsel(int shard, size_t lo, size_t hi) {
    seed_shard_ = shard;
    morsel_lo_ = lo;
    morsel_hi_ = hi;
  }

  /// Cooperative LIMIT cancellation: once `claimed` reaches `cap`, the
  /// top-level seed loop stops even if this worker never emitted a row.
  void SetSharedRowBudget(const std::atomic<size_t>* claimed, size_t cap) {
    shared_claimed_ = claimed;
    shared_cap_ = cap;
  }

  /// Materialize the top-level seed set once, mirroring MatchFrom's
  /// direction choice on the (empty) top-level binding. The parallel
  /// driver sizes its fan-out threshold on the result (SeedCount) and
  /// shares it across every shard worker (SetTopSeeds), so a multi-value
  /// probe union is built a single time instead of once per worker.
  /// Precondition: PrepareParts succeeded and parts are non-empty.
  SeedSet PlanTopSeeds(const BindingT& binding) {
    return SelectSeeds(TopSeedNode(binding), binding);
  }

  /// Use a precomputed seed set for part 0 instead of re-deriving it.
  /// `seeds` must come from PlanTopSeeds on an identically-prepared
  /// matcher (the direction choice is deterministic on the empty binding)
  /// and must outlive this matcher's Run.
  void SetTopSeeds(const SeedSet* seeds) { shared_top_seeds_ = seeds; }

 private:
  /// Choose a part's search direction: seed from the more-constrained
  /// endpoint. The single authority for both the matcher (MatchFrom) and
  /// the parallel driver's seed plan (TopSeedNode) — they must agree or
  /// workers would iterate seeds for the wrong chain endpoint.
  const ResolvedPart& ChooseDirection(const PreparedPart& pp,
                                      const BindingT& binding) const {
    int fwd = ConstraintScore(pp.resolved_fwd.nodes.front(), binding);
    int bwd = ConstraintScore(pp.resolved_fwd.nodes.back(), binding);
    return bwd > fwd ? pp.resolved_rev : pp.resolved_fwd;
  }

  /// The seed node of part 0 under MatchFrom's direction choice.
  const ResolvedNode& TopSeedNode(const BindingT& binding) const {
    return ChooseDirection((*parts_)[0], binding).nodes[0];
  }

  bool MatchFrom(size_t part_idx, BindingT& binding) {
    if (part_idx == parts_->size()) return sink_(binding);
    const PreparedPart& pp = (*parts_)[part_idx];
    const ResolvedPart& rp = ChooseDirection(pp, binding);
    return MatchChainFrom(rp, /*reversed=*/&rp == &pp.resolved_rev, part_idx,
                          binding);
  }

  static PatternPart Reverse(const PatternPart& part) {
    PatternPart rev;
    rev.nodes.assign(part.nodes.rbegin(), part.nodes.rend());
    rev.rels.assign(part.rels.rbegin(), part.rels.rend());
    return rev;
  }

  ResolvedPart Resolve(const PatternPart& part, const VarTable& vars) const {
    ResolvedPart rp;
    rp.nodes.reserve(part.nodes.size());
    rp.rels.reserve(part.rels.size());
    for (const NodePattern& n : part.nodes) {
      rp.nodes.push_back(ResolveNode(graph_, vars, n, options_.columnar_scan));
    }
    for (const RelPattern& r : part.rels) {
      rp.rels.push_back(ResolveRel(graph_, vars, r, options_.columnar_scan));
    }
    return rp;
  }

  /// Evaluate the pushed-down filters of `var` on the binding.
  bool PassesFilters(const std::string& var, const BindingT& binding) const {
    if (var.empty()) return true;
    auto it = pushdown_.find(var);
    if (it == pushdown_.end()) return true;
    for (const CypherExpr* f : it->second) {
      auto v = eval_.Eval(*f, binding);
      if (!v.ok() || !CypherEvaluator::Truthy(v.value())) return false;
    }
    return true;
  }

  /// Access-path selection for the chain's start node. Competing index
  /// probes (inline properties and indexed WHERE equality / IN filters) are
  /// ranked by exact per-value cardinality (summed over every storage
  /// shard, so the ranking stays exact on sharded graphs) when
  /// selective_seeds is on; the legacy choice takes the first indexed
  /// inline property, then the first usable WHERE filter. Candidates still
  /// pass through ResolvedNode::Matches at visit time, so the winning
  /// probe needs no re-filtering here, and single-value probes stay lazily
  /// iterated per-shard spans.
  SeedSet SelectSeeds(const ResolvedNode& rnode, const BindingT& binding) {
    const NodePattern& pat = *rnode.pat;
    SeedSet seeds;
    if (NodeBound(binding, rnode)) {
      seeds.owned.push_back(BoundNode(binding, rnode));
      return seeds;
    }
    if (pat.label.empty()) {
      seeds.full_scan = true;
      return seeds;
    }

    // One probe-able access path: an indexed property plus the value(s) an
    // equality / IN constraint allows for it. Ranking uses ProbeCountNodes
    // (a per-shard bucket-size sum) without materializing anything; only
    // the winner's buckets become seed spans.
    struct Option {
      std::string_view prop;
      const Value* eq = nullptr;
      const std::vector<Value>* multi = nullptr;
      size_t count = 0;
    };
    SmallVector<Option, 4> options;
    for (const PropConstraint& pc : pat.props) {
      if (!graph_.HasNodeIndex(pat.label, pc.key)) continue;
      Option o;
      o.prop = pc.key;
      o.eq = &pc.value;
      o.count = graph_.ProbeCountNodes(pat.label, pc.key, pc.value);
      options.push_back(o);
      if (!options_.selective_seeds) break;  // legacy: first indexed prop
    }
    // Index seek from WHERE predicates (Neo4j-style): an indexed equality /
    // IN filter on this variable beats a label scan. The legacy path only
    // reaches these when no inline property is indexed.
    if (!pat.var.empty() && (options.empty() || options_.selective_seeds)) {
      auto fit = pushdown_.find(pat.var);
      if (fit != pushdown_.end()) {
        for (const CypherExpr* f : fit->second) {
          Option o;
          if (f->kind == CypherExprKind::kBinary &&
              f->op == CypherBinaryOp::kEq &&
              f->lhs->kind == CypherExprKind::kPropRef &&
              f->rhs->kind == CypherExprKind::kLiteral) {
            o.prop = f->lhs->prop;
            o.eq = &f->rhs->literal;
          } else if (f->kind == CypherExprKind::kInList && !f->negated &&
                     f->lhs->kind == CypherExprKind::kPropRef) {
            o.prop = f->lhs->prop;
            o.multi = &f->in_list;
          }
          if (o.prop.empty() || !graph_.HasNodeIndex(pat.label, o.prop)) {
            continue;
          }
          if (o.eq != nullptr) {
            o.count = graph_.ProbeCountNodes(pat.label, o.prop, *o.eq);
          } else if (options_.selective_seeds) {
            // Ranking only; the legacy path takes the first option as-is.
            for (const Value& v : *o.multi) {
              o.count += graph_.ProbeCountNodes(pat.label, o.prop, v);
            }
          }
          options.push_back(o);
          if (!options_.selective_seeds) break;  // legacy: first usable
        }
      }
    }

    if (!options.empty()) {
      const Option* best = &options[0];
      if (options_.selective_seeds) {
        for (const Option& o : options) {
          if (o.count < best->count) best = &o;
        }
      }
      if (best->eq != nullptr) {
        for (size_t s = 0; s < graph_.shard_count(); ++s) {
          seeds.spans.push_back(
              &graph_.ProbeNodes(pat.label, best->prop, *best->eq, s));
        }
      } else {
        for (const Value& v : *best->multi) {
          for (size_t s = 0; s < graph_.shard_count(); ++s) {
            for (NodeId id : graph_.ProbeNodes(pat.label, best->prop, v, s)) {
              seeds.owned.push_back(id);
            }
          }
        }
        std::sort(seeds.owned.begin(), seeds.owned.end());
        seeds.owned.erase(std::unique(seeds.owned.begin(), seeds.owned.end()),
                          seeds.owned.end());
      }
      return seeds;
    }
    for (size_t s = 0; s < graph_.shard_count(); ++s) {
      seeds.spans.push_back(&graph_.NodesWithLabel(pat.label, s));
    }
    return seeds;
  }

  bool MatchChainFrom(const ResolvedPart& rp, bool reversed, size_t part_idx,
                      BindingT& binding) {
    const ResolvedNode& rseed = rp.nodes[0];
    SeedSet local_seeds;
    // Part 0 of a parallel worker reuses the driver's precomputed seed set
    // (same direction choice on the empty binding) instead of re-deriving
    // — in particular re-materializing a multi-value probe union.
    const SeedSet* shared =
        part_idx == 0 && shared_top_seeds_ != nullptr ? shared_top_seeds_
                                                      : nullptr;
    if (shared == nullptr) local_seeds = SelectSeeds(rseed, binding);
    const SeedSet& seeds = shared != nullptr ? *shared : local_seeds;
    // Bind/unbind the seed variable in place: Extend() restores the binding
    // on backtrack, so the whole search threads one binding with no copies.
    bool bindable = !rseed.pat->var.empty() && !NodeBound(binding, rseed);
    bool keep_going = true;
    // Incremental standing hunts restrict part-0 seeds to the caller's
    // dirty-node set; deeper parts always see the whole graph.
    const std::unordered_set<NodeId>* seed_filter =
        part_idx == 0 ? options_.top_seed_filter : nullptr;
    auto visit = [&](NodeId seed) {
      if (seed_filter != nullptr && seed_filter->count(seed) == 0) return true;
      if (stats_ != nullptr) ++stats_->seed_candidates;
      if (!rseed.Matches(graph_.node(seed), graph_)) return true;
      if (bindable) {
        SetNode(binding, rseed, seed);
        if (!PassesFilters(rseed.pat->var, binding)) return true;
      }
      return Extend(rp, reversed, part_idx, 0, seed, binding);
    };
    // A parallel worker only walks the top-level seeds of its own shard;
    // deeper parts (and the serial matcher) walk every shard in order. The
    // shared LIMIT budget is also polled here, so a worker whose shard
    // yields no matches stops scanning as soon as its siblings fill the
    // limit instead of draining its seed set for nothing. A cancellation
    // flag (HuntService tickets) is polled at the same points, at every
    // part level, so cancelled queries stop at seed granularity.
    bool top = part_idx == 0;
    int only_shard = top ? seed_shard_ : -1;
    auto budget_spent = [&] {
      if (options_.cancel != nullptr &&
          options_.cancel->load(std::memory_order_relaxed)) {
        return true;
      }
      if (deadline_.Expired()) return true;
      return top && shared_claimed_ != nullptr &&
             shared_claimed_->load(std::memory_order_relaxed) >= shared_cap_;
    };
    if (seeds.full_scan) {
      // The start/stride walk relies on storage::ShardLayout's documented
      // round-robin low-bits assignment (dense ids, power-of-two shard
      // count); a layout change must update it alongside ShardOf. A
      // restricted walk iterates the shard's k-th seed (id = shard +
      // k * stride), so a morsel's [lo, hi) positions map directly.
      if (only_shard >= 0) {
        NodeId stride = graph_.shard_count();
        for (size_t k = morsel_lo_; k < morsel_hi_ && keep_going; ++k) {
          NodeId id = static_cast<NodeId>(only_shard) + k * stride;
          if (id >= graph_.node_count()) break;
          keep_going = !budget_spent() && visit(id);
        }
      } else {
        for (NodeId id = 0; id < graph_.node_count() && keep_going; ++id) {
          keep_going = !budget_spent() && visit(id);
        }
      }
    } else if (!seeds.spans.empty()) {
      for (size_t s = 0; s < seeds.spans.size() && keep_going; ++s) {
        if (only_shard >= 0 && s != static_cast<size_t>(only_shard)) continue;
        const std::vector<NodeId>& span = *seeds.spans[s];
        size_t begin = 0, end = span.size();
        if (only_shard >= 0) {
          begin = std::min(morsel_lo_, end);
          end = std::min(morsel_hi_, end);
        }
        for (size_t i = begin; i < end; ++i) {
          keep_going = !budget_spent() && visit(span[i]);
          if (!keep_going) break;
        }
      }
    } else if (only_shard >= 0 && !seeds.owned_by_shard.empty()) {
      // Plan-time per-shard sub-list: this worker's seeds only, no
      // skip-scan over the shared materialized union.
      const std::vector<NodeId>& list = seeds.owned_by_shard[only_shard];
      size_t begin = std::min(morsel_lo_, list.size());
      size_t end = std::min(morsel_hi_, list.size());
      for (size_t i = begin; i < end; ++i) {
        keep_going = !budget_spent() && visit(list[i]);
        if (!keep_going) break;
      }
    } else {
      for (NodeId id : seeds.owned) {
        if (only_shard >= 0 &&
            graph_.ShardOf(id) != static_cast<size_t>(only_shard)) {
          continue;
        }
        keep_going = !budget_spent() && visit(id);
        if (!keep_going) break;
      }
    }
    if (bindable) ClearNode(binding, rseed);
    return keep_going;
  }

  /// Edges to expand from `node` for relationship `rrel`: the per-type
  /// adjacency group when the pattern is typed (touching only matching
  /// edges), the full list otherwise or when the legacy toggle is on.
  const std::vector<EdgeId>& ExpansionEdges(NodeId node, bool reversed,
                                            const ResolvedRel& rrel) const {
    if (options_.typed_adjacency && rrel.has_type) {
      return reversed ? graph_.InEdges(node, rrel.type_id)
                      : graph_.OutEdges(node, rrel.type_id);
    }
    return reversed ? graph_.InEdges(node) : graph_.OutEdges(node);
  }

  /// We are standing at `node`, having matched rp.nodes[idx]; match
  /// rp.rels[idx] and continue — into the next pattern part (and finally
  /// the sink) once this chain is exhausted.
  bool Extend(const ResolvedPart& rp, bool reversed, size_t part_idx,
              size_t idx, NodeId node, BindingT& binding) {
    if (idx == rp.rels.size()) return MatchFrom(part_idx + 1, binding);
    const ResolvedRel& rrel = rp.rels[idx];
    const RelPattern& rel = *rrel.pat;
    const ResolvedNode& next_rnode = rp.nodes[idx + 1];

    if (!rel.varlen) {
      for (EdgeId eid : ExpansionEdges(node, reversed, rrel)) {
        if (stats_ != nullptr) ++stats_->edges_traversed;
        const Edge& e = graph_.edge(eid);
        if (!rrel.Matches(e, graph_)) continue;
        if (EdgeUsed(binding, eid)) continue;
        if (!rel.var.empty() && EdgeBound(binding, rrel) &&
            BoundEdge(binding, rrel) != eid) {
          continue;
        }
        NodeId next = reversed ? e.src : e.dst;
        if (!AdmitNode(next, next_rnode, binding)) continue;

        // Bind, check pushed-down filters, recurse, unbind.
        bool node_was_new = BindNode(next_rnode, next, binding);
        bool edge_was_new = false;
        if (!rel.var.empty() && !EdgeBound(binding, rrel)) {
          SetEdge(binding, rrel, eid);
          edge_was_new = true;
        }
        PushUsedEdge(binding, eid);
        bool pass =
            (!node_was_new || PassesFilters(next_rnode.pat->var, binding)) &&
            (!edge_was_new || PassesFilters(rel.var, binding));
        bool keep_going = true;
        if (pass) {
          keep_going = Extend(rp, reversed, part_idx, idx + 1, next, binding);
        }
        PopUsedEdge(binding, eid);
        if (edge_was_new) ClearEdge(binding, rrel);
        if (node_was_new) ClearNode(binding, next_rnode);
        if (!keep_going) return false;
      }
      return true;
    }

    // Variable-length expansion: bounded DFS. Type/prop constraints apply to
    // every hop (Neo4j semantics); the endpoint must match next_rnode.
    int max_len =
        rel.max_len >= 0 ? rel.max_len : options_.unbounded_varlen_cap;
    int min_len = std::max(0, rel.min_len);
    return VarlenDfs(rp, reversed, part_idx, idx, min_len, max_len, node,
                     /*depth=*/0, binding);
  }

  /// One level of the bounded variable-length DFS (a plain recursive member
  /// instead of a per-call std::function: seed loops over large graphs call
  /// this tens of thousands of times).
  bool VarlenDfs(const ResolvedPart& rp, bool reversed, size_t part_idx,
                 size_t idx, int min_len, int max_len, NodeId cur, int depth,
                 BindingT& binding) {
    const ResolvedRel& rrel = rp.rels[idx];
    const ResolvedNode& next_rnode = rp.nodes[idx + 1];
    if (depth >= min_len && AdmitNode(cur, next_rnode, binding) &&
        // A zero-length path may only close when start==end is allowed.
        (depth > 0 || min_len == 0)) {
      bool node_was_new = BindNode(next_rnode, cur, binding);
      bool keep_going = true;
      if (!node_was_new || PassesFilters(next_rnode.pat->var, binding)) {
        keep_going = Extend(rp, reversed, part_idx, idx + 1, cur, binding);
      }
      if (node_was_new) ClearNode(binding, next_rnode);
      if (!keep_going) return false;
    }
    if (depth == max_len) return true;
    for (EdgeId eid : ExpansionEdges(cur, reversed, rrel)) {
      if (stats_ != nullptr) ++stats_->edges_traversed;
      const Edge& e = graph_.edge(eid);
      if (!rrel.Matches(e, graph_)) continue;
      if (EdgeUsed(binding, eid)) continue;
      PushUsedEdge(binding, eid);
      bool keep_going = VarlenDfs(rp, reversed, part_idx, idx, min_len,
                                  max_len, reversed ? e.src : e.dst,
                                  depth + 1, binding);
      PopUsedEdge(binding, eid);
      if (!keep_going) return false;
    }
    return true;
  }

  bool AdmitNode(NodeId id, const ResolvedNode& rnode,
                 const BindingT& binding) const {
    if (!rnode.Matches(graph_.node(id), graph_)) return false;
    if (NodeBound(binding, rnode) && BoundNode(binding, rnode) != id) {
      return false;
    }
    return true;
  }

  /// Returns true if this call introduced the binding (caller must unbind).
  bool BindNode(const ResolvedNode& rnode, NodeId id,
                BindingT& binding) const {
    if (rnode.pat->var.empty()) return false;
    if (NodeBound(binding, rnode)) return false;
    SetNode(binding, rnode, id);
    return true;
  }

  const PropertyGraph& graph_;
  const MatchOptions& options_;
  const PushdownFilters& pushdown_;
  const CypherEvaluator& eval_;
  MatchStats* stats_;
  Sink& sink_;
  std::vector<PreparedPart> own_parts_;
  // Either &own_parts_ (after PrepareParts) or a sharing matcher's parts
  // (SharePreparedParts); immutable once matching starts.
  const std::vector<PreparedPart>* parts_ = &own_parts_;
  int seed_shard_ = -1;  // -1: walk every shard (serial matcher)
  // Morsel sub-range of the restricted shard's seed list (positions, not
  // ids); the defaults cover the whole shard for the per-shard scheduler.
  size_t morsel_lo_ = 0;
  size_t morsel_hi_ = static_cast<size_t>(-1);
  const SeedSet* shared_top_seeds_ = nullptr;  // driver-owned part-0 seeds
  const std::atomic<size_t>* shared_claimed_ = nullptr;
  size_t shared_cap_ = 0;
  DeadlinePoller deadline_;  // polled with the cancel flag / LIMIT budget
};

/// Terminal stage of the streaming pipeline: evaluates residual WHERE
/// conjuncts, projects RETURN items, applies DISTINCT through an
/// incremental seen-set, and signals a stop once LIMIT rows exist. The
/// limit is enforced either locally (`local_cap`: the serial matcher, and
/// parallel DISTINCT workers whose merged seen-sets re-dedup at the
/// barrier) or through a shared atomic budget (`shared_claimed`/
/// `shared_cap`: parallel non-DISTINCT workers claim one slot per emitted
/// row, so the fleet never emits more than the limit in total).
template <class BindingT>
class RowSink {
 public:
  /// `partition_distinct` hash-partitions streaming-DISTINCT emissions
  /// into rs->parts so the parallel merge can adopt whole compacted
  /// blocks (storage/shard_parallel.h); off, rows stream into rs->rows.
  RowSink(const CypherQuery& query, const CypherEvaluator& eval,
          const std::vector<const CypherExpr*>& residual,
          bool streaming_distinct, bool partition_distinct, size_t local_cap,
          std::atomic<size_t>* shared_claimed, size_t shared_cap,
          MatchStats* stats, storage::WorkerRows* rs)
      : query_(query),
        eval_(eval),
        residual_(residual),
        streaming_distinct_(streaming_distinct),
        partition_distinct_(partition_distinct),
        local_cap_(local_cap),
        shared_claimed_(shared_claimed),
        shared_cap_(shared_cap),
        stats_(stats),
        rs_(rs) {
    if (partition_distinct_) rs_->EnableDistinctPartitions();
  }

  /// False stops the search: either LIMIT is satisfied or evaluation
  /// failed (check error() afterwards).
  bool operator()(const BindingT& binding) {
    if (stats_ != nullptr) ++stats_->bindings_emitted;
    for (const CypherExpr* c : residual_) {
      auto cond = eval_.Eval(*c, binding);
      if (!cond.ok()) {
        error_ = cond.status();
        return false;
      }
      if (!CypherEvaluator::Truthy(cond.value())) return true;
    }
    std::vector<Value> row;
    row.reserve(query_.items.size());
    for (const CypherReturnItem& item : query_.items) {
      auto v = eval_.Eval(*item.expr, binding);
      if (!v.ok()) {
        error_ = v.status();
        return false;
      }
      row.push_back(std::move(v).value());
    }
    if (streaming_distinct_ && !seen_.insert(row).second) return true;
    if (shared_claimed_ != nullptr &&
        shared_claimed_->fetch_add(1, std::memory_order_relaxed) >=
            shared_cap_) {
      return false;  // budget exhausted by other workers; drop the row
    }
    if (partition_distinct_) {
      rs_->parts[storage::DistinctPartitionOf(row)].push_back(std::move(row));
    } else {
      rs_->rows.push_back(std::move(row));
    }
    ++emitted_;
    if (stats_ != nullptr) ++stats_->rows_emitted;
    return emitted_ < local_cap_;
  }

  const Status& error() const { return error_; }

 private:
  const CypherQuery& query_;
  const CypherEvaluator& eval_;
  const std::vector<const CypherExpr*>& residual_;
  bool streaming_distinct_;
  bool partition_distinct_;
  size_t local_cap_;
  size_t emitted_ = 0;
  std::atomic<size_t>* shared_claimed_;
  size_t shared_cap_;
  MatchStats* stats_;
  storage::WorkerRows* rs_;
  Status error_ = Status::OK();
  std::unordered_set<std::vector<Value>, sql::ValueRowHash, sql::ValueRowEq>
      seen_;
};

/// Shard-parallel execution: one task per storage shard on the shared
/// thread pool, each running a full matcher restricted to its shard's
/// top-level seeds, streaming into a thread-local sink. Worker blocks
/// merge in shard order (deterministic for a fixed graph + shard count);
/// without DISTINCT each block is adopted wholesale — the zero-copy merge.
template <class BindingT>
Status RunShardParallel(const CypherQuery& query, const PropertyGraph& graph,
                        const MatchOptions& options, MatchStats* stats,
                        const VarTable& vars, const PushdownFilters& pushdown,
                        const std::vector<const CypherExpr*>& residual,
                        bool streaming_distinct, bool push_limit,
                        const Matcher<BindingT, RowSink<BindingT>>& prepared,
                        const SeedSet& top_seeds, GraphBlockResult* result) {
  size_t n_shards = graph.shard_count();
  struct ShardRun {
    storage::WorkerRows rs;
    MatchStats stats;
    Status error = Status::OK();
  };
  std::vector<ShardRun> runs(n_shards);
  // LIMIT policy (shared atomic claims vs per-worker caps merged with a
  // re-dedup): see storage/shard_parallel.h.
  storage::ShardRowBudget budget(push_limit, streaming_distinct, query.limit);

  size_t workers =
      std::min<size_t>(static_cast<size_t>(options.parallel_shards), n_shards);
  ThreadPool::Shared().ParallelFor(n_shards, workers, [&](size_t s) {
    auto scan_start = obs::TraceSpan::Clock::now();
    ShardRun& run = runs[s];
    // Evaluator caches (IN-list sets, variable-slot maps) are mutable, so
    // every worker owns one.
    CypherEvaluator shard_eval(graph, vars, options.hashed_in_lists,
                               options.columnar_scan);
    RowSink<BindingT> sink(query, shard_eval, residual, streaming_distinct,
                           /*partition_distinct=*/streaming_distinct,
                           budget.local_cap, budget.shared_claimed(),
                           budget.shared_cap, &run.stats, &run.rs);
    Matcher<BindingT, RowSink<BindingT>> matcher(
        graph, options, pushdown, shard_eval, &run.stats, sink);
    matcher.SharePreparedParts(prepared);
    matcher.SetTopSeeds(&top_seeds);
    matcher.RestrictTopSeedsToShard(static_cast<int>(s));
    if (budget.shared) {
      matcher.SetSharedRowBudget(&budget.claimed, budget.shared_cap);
    }
    BindingT binding;
    InitBinding(binding, vars);
    matcher.Run(binding);
    run.error = sink.error();
    if (options.trace != nullptr) {
      obs::TraceSpan* span =
          options.trace->AddChild("shard[" + std::to_string(s) + "]");
      span->SetWindow(scan_start, obs::TraceSpan::Clock::now());
      span->Set("seeds_visited",
                static_cast<int64_t>(run.stats.seed_candidates));
      span->Set("edges_traversed",
                static_cast<int64_t>(run.stats.edges_traversed));
      span->Set("rows_emitted", static_cast<int64_t>(run.stats.rows_emitted));
    }
  });

  return storage::MergeShardRuns(
      runs, streaming_distinct, &result->rows, [&](ShardRun& run) {
        if (stats == nullptr) return;
        stats->seed_candidates += run.stats.seed_candidates;
        stats->edges_traversed += run.stats.edges_traversed;
        stats->bindings_emitted += run.stats.bindings_emitted;
        stats->rows_emitted += run.stats.rows_emitted;
      });
}

/// Morsel-driven work-stealing execution: each shard's top-level seed list
/// is carved into fixed-size morsels (MatchOptions::morsel_size seed
/// positions) laid out shard-major on per-worker work-stealing deques
/// (common/thread_pool.h WorkStealingQueues). A worker pops its own deque
/// front-first and steals one morsel from the back of a victim when it
/// drains, so a skewed shard's seeds spread over the whole fleet. Each
/// morsel streams into its own sink/result; the merge walks morsels in
/// carve order, so the result is independent of which worker ran which
/// morsel.
template <class BindingT>
Status RunMorselParallel(const CypherQuery& query, const PropertyGraph& graph,
                         const MatchOptions& options, MatchStats* stats,
                         const VarTable& vars, const PushdownFilters& pushdown,
                         const std::vector<const CypherExpr*>& residual,
                         bool streaming_distinct, bool push_limit,
                         const Matcher<BindingT, RowSink<BindingT>>& prepared,
                         const SeedSet& top_seeds, GraphBlockResult* result) {
  size_t n_shards = graph.shard_count();
  // Per-shard seed-list lengths under the same iteration scheme
  // MatchChainFrom uses (full-scan positions, span offsets, or the
  // pre-split owned sub-lists).
  std::vector<size_t> counts(n_shards, 0);
  for (size_t s = 0; s < n_shards; ++s) {
    if (top_seeds.full_scan) {
      // Seeds of shard s are ids s, s + n, s + 2n, ... below node_count.
      counts[s] = graph.node_count() > s
                      ? (graph.node_count() - 1 - s) / n_shards + 1
                      : 0;
    } else if (!top_seeds.spans.empty()) {
      counts[s] = top_seeds.spans[s]->size();
    } else if (!top_seeds.owned_by_shard.empty()) {
      counts[s] = top_seeds.owned_by_shard[s].size();
    }
  }

  struct Morsel {
    int shard;
    size_t lo, hi;
  };
  std::vector<Morsel> morsels;
  size_t morsel_size = static_cast<size_t>(std::max(1, options.morsel_size));
  for (size_t s = 0; s < n_shards; ++s) {
    for (size_t lo = 0; lo < counts[s]; lo += morsel_size) {
      morsels.push_back({static_cast<int>(s), lo,
                         std::min(lo + morsel_size, counts[s])});
    }
  }
  if (morsels.empty()) return Status::OK();

  struct MorselRun {
    storage::WorkerRows rs;
    Status error = Status::OK();
  };
  std::vector<MorselRun> runs(morsels.size());
  storage::ShardRowBudget budget(push_limit, streaming_distinct, query.limit);

  size_t workers = std::min<size_t>(
      static_cast<size_t>(options.parallel_shards), morsels.size());
  WorkStealingQueues queues(morsels.size(), workers);
  std::vector<MatchStats> worker_stats(workers);

  ThreadPool::Shared().ParallelFor(workers, workers, [&](size_t w) {
    auto scan_start = obs::TraceSpan::Clock::now();
    MatchStats* ws = &worker_stats[w];
    // Per-worker evaluator (mutable IN-list / slot caches); per-morsel
    // sink + matcher so every morsel owns its rows and error status.
    CypherEvaluator eval(graph, vars, options.hashed_in_lists,
                         options.columnar_scan);
    bool stolen = false;
    for (size_t m = queues.Next(w, &stolen); m != WorkStealingQueues::kDone;
         m = queues.Next(w, &stolen)) {
      ++ws->morsels_executed;
      if (stolen) ++ws->morsels_stolen;
      MorselRun& run = runs[m];
      RowSink<BindingT> sink(query, eval, residual, streaming_distinct,
                             /*partition_distinct=*/streaming_distinct,
                             budget.local_cap, budget.shared_claimed(),
                             budget.shared_cap, ws, &run.rs);
      Matcher<BindingT, RowSink<BindingT>> matcher(graph, options, pushdown,
                                                   eval, ws, sink);
      matcher.SharePreparedParts(prepared);
      matcher.SetTopSeeds(&top_seeds);
      matcher.RestrictTopSeedsToMorsel(morsels[m].shard, morsels[m].lo,
                                       morsels[m].hi);
      if (budget.shared) {
        matcher.SetSharedRowBudget(&budget.claimed, budget.shared_cap);
      }
      BindingT binding;
      InitBinding(binding, vars);
      matcher.Run(binding);
      run.error = sink.error();
      if (!run.error.ok()) break;  // merge surfaces it; stop this worker
    }
    if (options.trace != nullptr) {
      obs::TraceSpan* span =
          options.trace->AddChild("morsel_worker[" + std::to_string(w) + "]");
      span->SetWindow(scan_start, obs::TraceSpan::Clock::now());
      span->Set("seeds_visited", static_cast<int64_t>(ws->seed_candidates));
      span->Set("edges_traversed",
                static_cast<int64_t>(ws->edges_traversed));
      span->Set("rows_emitted", static_cast<int64_t>(ws->rows_emitted));
      span->Set("morsels_executed",
                static_cast<int64_t>(ws->morsels_executed));
      span->Set("morsels_stolen", static_cast<int64_t>(ws->morsels_stolen));
    }
  });

  for (const MatchStats& ws : worker_stats) {
    if (stats == nullptr) break;
    stats->seed_candidates += ws.seed_candidates;
    stats->edges_traversed += ws.edges_traversed;
    stats->bindings_emitted += ws.bindings_emitted;
    stats->rows_emitted += ws.rows_emitted;
    stats->morsels_executed += ws.morsels_executed;
    stats->morsels_stolen += ws.morsels_stolen;
  }
  return storage::MergeShardRuns(runs, streaming_distinct, &result->rows,
                                 [](MorselRun&) {});
}

template <class BindingT>
Result<GraphBlockResult> RunPipeline(
    const CypherQuery& query, const PropertyGraph& graph,
    const MatchOptions& options, MatchStats* stats, const VarTable& vars,
    const PushdownFilters& pushdown,
    const std::vector<const CypherExpr*>& residual,
    const CypherEvaluator& eval) {
  GraphBlockResult result;
  for (const CypherReturnItem& item : query.items) {
    result.columns.push_back(item.alias.empty() ? item.expr->ToString()
                                                : item.alias);
  }

  bool streaming_distinct = query.distinct && options.streaming_distinct;
  // A LIMIT on a DISTINCT query counts post-dedup rows, so it only pushes
  // down when the dedup itself is streaming.
  bool push_limit = options.push_limit && query.limit >= 0 &&
                    (!query.distinct || streaming_distinct);
  size_t local_cap =
      push_limit ? static_cast<size_t>(query.limit) : static_cast<size_t>(-1);

  storage::WorkerRows serial_rs;
  RowSink<BindingT> sink(query, eval, residual, streaming_distinct,
                         /*partition_distinct=*/false, local_cap,
                         /*shared_claimed=*/nullptr, /*shared_cap=*/0, stats,
                         &serial_rs);
  Matcher<BindingT, RowSink<BindingT>> matcher(graph, options, pushdown, eval,
                                               stats, sink);
  // Structural validation always runs, so a pushed-down LIMIT 0 reports the
  // same malformed-pattern errors as every other configuration; only the
  // search itself is skipped (runtime evaluation errors are suppressed past
  // a satisfied limit in any configuration, and 0 is satisfied up front).
  RAPTOR_RETURN_NOT_OK(matcher.PrepareParts(query.patterns, vars));
  if (!(push_limit && query.limit == 0)) {
    BindingT binding;
    InitBinding(binding, vars);
    // Fan out over shards only when it can pay off: a sharded graph, more
    // than one worker allowed, no small pushed LIMIT (the serial
    // early-exit path finishes those in a handful of seed visits), and a
    // seed set big enough to amortize dispatch. The set is materialized
    // once here and shared by every shard worker; when the threshold
    // rejects it, the set was by definition small and the serial matcher
    // re-derives it cheaply.
    bool parallel =
        !query.patterns.empty() && options.parallel_shards > 1 &&
        graph.shard_count() > 1 &&
        !(push_limit &&
          query.limit < static_cast<long long>(options.parallel_min_limit));
    SeedSet top_seeds;
    if (parallel) {
      top_seeds = matcher.PlanTopSeeds(binding);
      parallel = top_seeds.SeedCount(graph) >=
                 static_cast<size_t>(std::max(0, options.parallel_min_seeds));
    }
    if (parallel) {
      // Pre-split any materialized seed union (multi-value probes, bound
      // vars) into per-shard sub-lists so workers skip the skip-scan.
      top_seeds.SplitOwnedByShard(graph);
      if (options.morsel_scheduling) {
        RAPTOR_RETURN_NOT_OK(RunMorselParallel<BindingT>(
            query, graph, options, stats, vars, pushdown, residual,
            streaming_distinct, push_limit, matcher, top_seeds, &result));
      } else {
        RAPTOR_RETURN_NOT_OK(RunShardParallel<BindingT>(
            query, graph, options, stats, vars, pushdown, residual,
            streaming_distinct, push_limit, matcher, top_seeds, &result));
      }
    } else {
      matcher.Run(binding);
      RAPTOR_RETURN_NOT_OK(sink.error());
      result.rows.Adopt(std::move(serial_rs.rows));
    }
  }
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("cypher query cancelled");
  }
  if (DeadlinePoller(options.deadline).ExpiredNow()) {
    return Status::Timeout("cypher query deadline exceeded");
  }

  if (query.distinct && !streaming_distinct) {
    // Legacy final dedup pass over the materialized result.
    std::unordered_set<std::vector<Value>, sql::ValueRowHash, sql::ValueRowEq>
        seen;
    std::vector<std::vector<Value>> rows = result.rows.Flatten();
    std::vector<std::vector<Value>> unique;
    unique.reserve(rows.size());
    for (auto& row : rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    result.rows.Adopt(std::move(unique));
  }
  if (query.limit >= 0 &&
      result.rows.row_count() > static_cast<size_t>(query.limit)) {
    result.rows.Truncate(static_cast<size_t>(query.limit));
  }
  return result;
}

}  // namespace

std::string GraphResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t n = std::min(max_rows, rows.size());
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& v : rows[i]) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > n) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

Result<GraphBlockResult> ExecuteCypherBlocks(const CypherQuery& query,
                                             const PropertyGraph& graph,
                                             const MatchOptions& options,
                                             MatchStats* stats) {
  // Intern every pattern variable into a dense slot up front; the frame
  // binding and the evaluator resolve variables through this table.
  VarTable vars;
  for (const PatternPart& part : query.patterns) {
    for (const NodePattern& n : part.nodes) {
      if (!n.var.empty()) vars.nodes.Intern(n.var);
    }
    for (const RelPattern& r : part.rels) {
      if (!r.var.empty()) vars.edges.Intern(r.var);
    }
  }

  CypherEvaluator eval(graph, vars, options.hashed_in_lists,
                       options.columnar_scan);

  // Split WHERE into single-variable conjuncts (pushed into matching) and
  // residual conjuncts (evaluated on complete bindings).
  std::vector<const CypherExpr*> conjuncts;
  SplitConjuncts(query.where.get(), &conjuncts);
  PushdownFilters pushdown;
  std::vector<const CypherExpr*> residual;
  for (const CypherExpr* c : conjuncts) {
    std::unordered_set<std::string> cvars;
    CollectVars(*c, &cvars);
    if (cvars.size() == 1) {
      pushdown[*cvars.begin()].push_back(c);
    } else {
      residual.push_back(c);
    }
  }

  if (options.binding_frames) {
    return RunPipeline<FrameBinding>(query, graph, options, stats, vars,
                                     pushdown, residual, eval);
  }
  return RunPipeline<MapBinding>(query, graph, options, stats, vars, pushdown,
                                 residual, eval);
}

Result<GraphResultSet> ExecuteCypher(const CypherQuery& query,
                                     const PropertyGraph& graph,
                                     const MatchOptions& options,
                                     MatchStats* stats) {
  auto blocks = ExecuteCypherBlocks(query, graph, options, stats);
  if (!blocks.ok()) return blocks.status();
  GraphResultSet result;
  result.columns = std::move(blocks.value().columns);
  result.rows = blocks.value().rows.Flatten();
  return result;
}

Result<GraphResultSet> GraphDatabase::Query(std::string_view cypher,
                                            MatchStats* stats) const {
  auto query = ParseCypher(cypher);
  if (!query.ok()) return query.status();
  return ExecuteCypher(query.value(), graph_, options_, stats);
}

Result<GraphResultSet> GraphDatabase::Execute(const CypherQuery& query,
                                              MatchStats* stats) const {
  return ExecuteCypher(query, graph_, options_, stats);
}

Result<GraphBlockResult> GraphDatabase::QueryBlocks(std::string_view cypher,
                                                    MatchStats* stats) const {
  return QueryBlocks(cypher, options_, stats);
}

namespace {

/// Cache key for a memoized execution: the query text plus every option
/// that can change the result rows or their order (parallel merge order
/// depends on morsel/shard geometry, varlen expansion on the cap). Cancel,
/// deadline, and the cache pointer itself are deliberately excluded — they
/// never change a successful result.
std::string SubresultCacheKey(std::string_view cypher,
                              const MatchOptions& o) {
  std::string key(cypher);
  key += '\x1f';
  key += std::to_string(o.unbounded_varlen_cap) + ',' +
         std::to_string(o.typed_adjacency) + ',' +
         std::to_string(o.hashed_in_lists) + ',' +
         std::to_string(o.push_limit) + ',' +
         std::to_string(o.streaming_distinct) + ',' +
         std::to_string(o.binding_frames) + ',' +
         std::to_string(o.selective_seeds) + ',' +
         std::to_string(o.columnar_scan) + ',' +
         std::to_string(o.morsel_scheduling) + ',' +
         std::to_string(o.morsel_size) + ',' +
         std::to_string(o.parallel_shards) + ',' +
         std::to_string(o.parallel_min_seeds) + ',' +
         std::to_string(o.parallel_min_limit);
  return key;
}

}  // namespace

Result<GraphBlockResult> GraphDatabase::QueryBlocks(
    std::string_view cypher, const MatchOptions& options,
    MatchStats* stats) const {
  auto query = ParseCypher(cypher);
  if (!query.ok()) return query.status();
  // Shared-subresult hook (multi-query optimization): memoize full-scan
  // executions only. Seed-filtered (incremental) runs would poison the
  // cache with partial results, and parallel LIMIT row-claiming races the
  // shared budget, so both bypass it.
  if (options.result_cache != nullptr && options.top_seed_filter == nullptr &&
      query.value().limit < 0) {
    std::string key = SubresultCacheKey(cypher, options);
    if (auto cached = options.result_cache->Lookup(key)) {
      obs::Add(options.trace, "subresult_cache_hits", 1);
      return *cached;
    }
    obs::Add(options.trace, "subresult_cache_misses", 1);
    auto result = ExecuteCypherBlocks(query.value(), graph_, options, stats);
    if (result.ok()) {
      options.result_cache->Insert(
          key, std::make_shared<const GraphBlockResult>(result.value()));
    }
    return result;
  }
  return ExecuteCypherBlocks(query.value(), graph_, options, stats);
}

namespace {

/// Seed-cardinality estimate for `pat` as a chain start: the cheapest
/// probe-able access path among indexed inline properties and single-var
/// WHERE equality / IN filters (the exact rank SelectSeeds computes), the
/// label bucket when nothing probes, the whole graph when unlabeled.
double EstimateSeedCount(
    const NodePattern& pat, const PropertyGraph& graph,
    const std::vector<const CypherExpr*>* var_filters) {
  if (pat.label.empty()) return static_cast<double>(graph.node_count());
  size_t best = static_cast<size_t>(-1);
  for (const PropConstraint& pc : pat.props) {
    if (!graph.HasNodeIndex(pat.label, pc.key)) continue;
    best = std::min(best, graph.ProbeCountNodes(pat.label, pc.key, pc.value));
  }
  if (var_filters != nullptr) {
    for (const CypherExpr* f : *var_filters) {
      std::string_view prop;
      size_t count = 0;
      if (f->kind == CypherExprKind::kBinary && f->op == CypherBinaryOp::kEq &&
          f->lhs->kind == CypherExprKind::kPropRef &&
          f->rhs->kind == CypherExprKind::kLiteral &&
          graph.HasNodeIndex(pat.label, f->lhs->prop)) {
        prop = f->lhs->prop;
        count = graph.ProbeCountNodes(pat.label, prop, f->rhs->literal);
      } else if (f->kind == CypherExprKind::kInList && !f->negated &&
                 f->lhs->kind == CypherExprKind::kPropRef &&
                 graph.HasNodeIndex(pat.label, f->lhs->prop)) {
        prop = f->lhs->prop;
        for (const Value& v : f->in_list) {
          count += graph.ProbeCountNodes(pat.label, prop, v);
        }
      } else {
        continue;
      }
      best = std::min(best, count);
    }
  }
  if (best != static_cast<size_t>(-1)) return static_cast<double>(best);
  size_t labeled = 0;
  for (size_t s = 0; s < graph.shard_count(); ++s) {
    labeled += graph.NodesWithLabel(pat.label, s).size();
  }
  return static_cast<double>(labeled);
}

}  // namespace

double EstimateCypherCost(const CypherQuery& query, const PropertyGraph& graph,
                          const MatchOptions& options) {
  // Single-variable WHERE conjuncts indexed by variable — the same pushdown
  // split ExecuteCypherBlocks performs before matching.
  std::vector<const CypherExpr*> conjuncts;
  SplitConjuncts(query.where.get(), &conjuncts);
  std::unordered_map<std::string, std::vector<const CypherExpr*>> pushdown;
  for (const CypherExpr* c : conjuncts) {
    std::unordered_set<std::string> cvars;
    CollectVars(*c, &cvars);
    if (cvars.size() == 1) pushdown[*cvars.begin()].push_back(c);
  }
  auto filters_for = [&](const NodePattern& pat)
      -> const std::vector<const CypherExpr*>* {
    if (pat.var.empty()) return nullptr;
    auto it = pushdown.find(pat.var);
    return it == pushdown.end() ? nullptr : &it->second;
  };

  double total = 0.0;
  for (const PatternPart& part : query.patterns) {
    if (part.nodes.empty()) continue;
    double radius = 0.0;
    for (const RelPattern& r : part.rels) {
      int hops = 1;
      if (r.varlen) {
        hops = r.max_len < 0 ? options.unbounded_varlen_cap : r.max_len;
      }
      radius += static_cast<double>(std::max(hops, 1));
    }
    // The matcher seeds from whichever chain end is cheaper (ChooseDirection
    // re-resolves per binding; on the empty binding it is this static rank).
    double fwd = EstimateSeedCount(part.nodes.front(), graph,
                                   filters_for(part.nodes.front()));
    double rev = EstimateSeedCount(part.nodes.back(), graph,
                                   filters_for(part.nodes.back()));
    total += std::min(fwd, rev) * (1.0 + radius);
  }
  return total;
}

double GraphDatabase::EstimateCost(std::string_view cypher) const {
  auto query = ParseCypher(cypher);
  if (!query.ok()) return 0.0;
  return EstimateCypherCost(query.value(), graph_, options_);
}

}  // namespace raptor::graphdb
