#include "storage/graphdb/cypher_executor.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"
#include "storage/graphdb/cypher_parser.h"

namespace raptor::graphdb {

namespace {

struct Binding {
  std::unordered_map<std::string, NodeId> nodes;
  std::unordered_map<std::string, EdgeId> edges;
  std::unordered_set<EdgeId> used_edges;  // relationship uniqueness
};

/// A node pattern with its label resolved to the graph's interned id, so
/// candidate checks compare integers instead of strings.
struct ResolvedNode {
  const NodePattern* pat = nullptr;
  bool has_label = false;
  uint32_t label_id = kNoSymbol;  // kNoSymbol: label absent, matches nothing

  bool Matches(const Node& node) const {
    if (has_label && node.label_id != label_id) return false;
    for (const PropConstraint& pc : pat->props) {
      const Value* v = node.FindProp(pc.key);
      if (v == nullptr || v->Compare(pc.value) != 0) return false;
    }
    return true;
  }
};

/// A relationship pattern with its type resolved to the interned id; typed
/// expansion uses the id to select the per-type adjacency group directly.
struct ResolvedRel {
  const RelPattern* pat = nullptr;
  bool has_type = false;
  uint32_t type_id = kNoSymbol;

  bool Matches(const Edge& edge) const {
    if (has_type && edge.type_id != type_id) return false;
    for (const PropConstraint& pc : pat->props) {
      const Value* v = edge.FindProp(pc.key);
      if (v == nullptr || v->Compare(pc.value) != 0) return false;
    }
    return true;
  }
};

ResolvedNode ResolveNode(const PropertyGraph& graph, const NodePattern& pat) {
  ResolvedNode r;
  r.pat = &pat;
  if (!pat.label.empty()) {
    r.has_label = true;
    r.label_id = graph.LookupLabel(pat.label);
  }
  return r;
}

ResolvedRel ResolveRel(const PropertyGraph& graph, const RelPattern& pat) {
  ResolvedRel r;
  r.pat = &pat;
  if (!pat.type.empty()) {
    r.has_type = true;
    r.type_id = graph.LookupEdgeType(pat.type);
  }
  return r;
}

/// How selective a node pattern is, for choosing the search seed.
int ConstraintScore(const NodePattern& pat, const Binding& binding) {
  if (!pat.var.empty() && binding.nodes.count(pat.var)) return 100;
  int score = 0;
  if (!pat.label.empty()) ++score;
  score += 2 * static_cast<int>(pat.props.size());
  return score;
}

/// Evaluate a WHERE / RETURN expression against a bound row.
class CypherEvaluator {
 public:
  CypherEvaluator(const PropertyGraph& graph, bool hashed_in_lists)
      : graph_(graph), hashed_in_lists_(hashed_in_lists) {}

  Result<Value> Eval(const CypherExpr& e, const Binding& b) const {
    switch (e.kind) {
      case CypherExprKind::kLiteral:
        return e.literal;
      case CypherExprKind::kVarRef: {
        auto it = b.nodes.find(e.var);
        if (it != b.nodes.end()) {
          return Value(static_cast<int64_t>(it->second));
        }
        auto jt = b.edges.find(e.var);
        if (jt != b.edges.end()) {
          return Value(static_cast<int64_t>(jt->second));
        }
        return Status::NotFound("unbound variable: " + e.var);
      }
      case CypherExprKind::kPropRef: {
        auto it = b.nodes.find(e.var);
        if (it != b.nodes.end()) {
          const Value* v = graph_.node(it->second).FindProp(e.prop);
          return v != nullptr ? *v : Value::Null();
        }
        auto jt = b.edges.find(e.var);
        if (jt != b.edges.end()) {
          const Value* v = graph_.edge(jt->second).FindProp(e.prop);
          return v != nullptr ? *v : Value::Null();
        }
        return Status::NotFound("unbound variable: " + e.var);
      }
      case CypherExprKind::kNot: {
        auto inner = Eval(*e.lhs, b);
        if (!inner.ok()) return inner.status();
        return Value(static_cast<int64_t>(!Truthy(inner.value())));
      }
      case CypherExprKind::kInList: {
        auto lhs = Eval(*e.lhs, b);
        if (!lhs.ok()) return lhs.status();
        bool found;
        if (hashed_in_lists_) {
          found = in_sets_.Get(e).count(lhs.value()) > 0;
        } else {
          // Legacy O(n) scan, kept as a benchmarking baseline.
          found = false;
          for (const Value& v : e.in_list) {
            if (lhs.value().Compare(v) == 0) {
              found = true;
              break;
            }
          }
        }
        return Value(static_cast<int64_t>(e.negated ? !found : found));
      }
      case CypherExprKind::kBinary: {
        if (e.op == CypherBinaryOp::kAnd || e.op == CypherBinaryOp::kOr) {
          auto l = Eval(*e.lhs, b);
          if (!l.ok()) return l.status();
          bool lt = Truthy(l.value());
          if (e.op == CypherBinaryOp::kAnd && !lt) {
            return Value(static_cast<int64_t>(0));
          }
          if (e.op == CypherBinaryOp::kOr && lt) {
            return Value(static_cast<int64_t>(1));
          }
          auto r = Eval(*e.rhs, b);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        auto l = Eval(*e.lhs, b);
        if (!l.ok()) return l.status();
        auto r = Eval(*e.rhs, b);
        if (!r.ok()) return r.status();
        if (e.op == CypherBinaryOp::kAdd || e.op == CypherBinaryOp::kSub) {
          if (l.value().is_double() || r.value().is_double()) {
            double x = l.value().AsDouble(), y = r.value().AsDouble();
            return Value(e.op == CypherBinaryOp::kAdd ? x + y : x - y);
          }
          int64_t x = l.value().AsInt(), y = r.value().AsInt();
          return Value(e.op == CypherBinaryOp::kAdd ? x + y : x - y);
        }
        return Value(static_cast<int64_t>(Compare(e.op, l.value(), r.value())));
      }
    }
    return Status::Internal("unreachable cypher expr kind");
  }

  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    if (v.is_int()) return v.AsInt() != 0;
    if (v.is_double()) return v.AsDouble() != 0.0;
    return !v.AsText().empty();
  }

  static bool Compare(CypherBinaryOp op, const Value& l, const Value& r) {
    switch (op) {
      case CypherBinaryOp::kEq: return l.Compare(r) == 0;
      case CypherBinaryOp::kNe: return l.Compare(r) != 0;
      case CypherBinaryOp::kLt: return l.Compare(r) < 0;
      case CypherBinaryOp::kLe: return l.Compare(r) <= 0;
      case CypherBinaryOp::kGt: return l.Compare(r) > 0;
      case CypherBinaryOp::kGe: return l.Compare(r) >= 0;
      case CypherBinaryOp::kContains:
        return l.ToString().find(r.ToString()) != std::string::npos;
      case CypherBinaryOp::kStartsWith:
        return StartsWith(l.ToString(), r.ToString());
      case CypherBinaryOp::kEndsWith:
        return EndsWith(l.ToString(), r.ToString());
      default:
        return false;
    }
  }

 private:
  const PropertyGraph& graph_;
  bool hashed_in_lists_;
  sql::InListCache<CypherExpr> in_sets_;
};

/// Split an AND-tree into conjuncts.
void SplitConjuncts(const CypherExpr* e, std::vector<const CypherExpr*>* out) {
  if (e == nullptr) return;
  if (e->kind == CypherExprKind::kBinary && e->op == CypherBinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
  } else {
    out->push_back(e);
  }
}

void CollectVars(const CypherExpr& e, std::unordered_set<std::string>* vars) {
  switch (e.kind) {
    case CypherExprKind::kPropRef:
    case CypherExprKind::kVarRef:
      vars->insert(e.var);
      break;
    case CypherExprKind::kBinary:
      CollectVars(*e.lhs, vars);
      CollectVars(*e.rhs, vars);
      break;
    case CypherExprKind::kNot:
      CollectVars(*e.lhs, vars);
      break;
    case CypherExprKind::kInList:
      CollectVars(*e.lhs, vars);
      break;
    case CypherExprKind::kLiteral:
      break;
  }
}

/// Single-variable WHERE conjuncts, applied as soon as their variable binds
/// (the predicate pushdown real graph databases perform; without it a
/// multi-pattern MATCH would enumerate the full cross product first).
using PushdownFilters =
    std::unordered_map<std::string, std::vector<const CypherExpr*>>;

class Matcher {
 public:
  Matcher(const PropertyGraph& graph, const MatchOptions& options,
          const PushdownFilters& pushdown, const CypherEvaluator& eval,
          MatchStats* stats)
      : graph_(graph),
        options_(options),
        pushdown_(pushdown),
        eval_(eval),
        stats_(stats) {}

  /// The chain being matched, with every label / edge type resolved to its
  /// interned id once up front instead of per candidate.
  struct ResolvedPart {
    std::vector<ResolvedNode> nodes;
    std::vector<ResolvedRel> rels;
  };

  /// A pattern part prepared for repeated matching: the forward and
  /// reversed chains with labels/types resolved once, reused across every
  /// binding the part extends.
  struct PreparedPart {
    const PatternPart* fwd = nullptr;
    PatternPart rev;
    ResolvedPart resolved_fwd;
    ResolvedPart resolved_rev;
  };

  PreparedPart Prepare(const PatternPart& part) const {
    PreparedPart pp;
    pp.fwd = &part;
    pp.rev = Reverse(part);
    pp.resolved_fwd = Resolve(part);
    pp.resolved_rev = Resolve(pp.rev);
    return pp;
  }

  /// Extend `binding` with all matches of the prepared part; append to
  /// `out`.
  void MatchPart(const PreparedPart& pp, const Binding& binding,
                 std::vector<Binding>* out) {
    // Choose search direction: seed from the more-constrained endpoint.
    int fwd = ConstraintScore(pp.fwd->nodes.front(), binding);
    int bwd = ConstraintScore(pp.fwd->nodes.back(), binding);
    if (bwd > fwd) {
      MatchChainFrom(pp.rev, pp.resolved_rev, /*reversed=*/true, binding,
                     out);
    } else {
      MatchChainFrom(*pp.fwd, pp.resolved_fwd, /*reversed=*/false, binding,
                     out);
    }
  }

 private:
  static PatternPart Reverse(const PatternPart& part) {
    PatternPart rev;
    rev.nodes.assign(part.nodes.rbegin(), part.nodes.rend());
    rev.rels.assign(part.rels.rbegin(), part.rels.rend());
    return rev;
  }

  ResolvedPart Resolve(const PatternPart& part) const {
    ResolvedPart rp;
    rp.nodes.reserve(part.nodes.size());
    rp.rels.reserve(part.rels.size());
    for (const NodePattern& n : part.nodes) {
      rp.nodes.push_back(ResolveNode(graph_, n));
    }
    for (const RelPattern& r : part.rels) {
      rp.rels.push_back(ResolveRel(graph_, r));
    }
    return rp;
  }

  /// Evaluate the pushed-down filters of `var` on the binding.
  bool PassesFilters(const std::string& var, const Binding& binding) const {
    if (var.empty()) return true;
    auto it = pushdown_.find(var);
    if (it == pushdown_.end()) return true;
    for (const CypherExpr* f : it->second) {
      auto v = eval_.Eval(*f, binding);
      if (!v.ok() || !CypherEvaluator::Truthy(v.value())) return false;
    }
    return true;
  }

  std::vector<NodeId> SeedCandidates(const ResolvedNode& rnode,
                                     const Binding& binding) {
    const NodePattern& pat = *rnode.pat;
    std::vector<NodeId> seeds;
    if (!pat.var.empty()) {
      auto it = binding.nodes.find(pat.var);
      if (it != binding.nodes.end()) {
        if (rnode.Matches(graph_.node(it->second))) {
          seeds.push_back(it->second);
        }
        return seeds;
      }
    }
    // Try an index probe on any inline property.
    if (!pat.label.empty()) {
      for (const PropConstraint& pc : pat.props) {
        if (graph_.HasNodeIndex(pat.label, pc.key)) {
          for (NodeId id : graph_.ProbeNodes(pat.label, pc.key, pc.value)) {
            if (rnode.Matches(graph_.node(id))) seeds.push_back(id);
          }
          return seeds;
        }
      }
      // Index seek from WHERE predicates (Neo4j-style): an indexed
      // equality / IN filter on this variable beats a label scan.
      if (!pat.var.empty()) {
        auto fit = pushdown_.find(pat.var);
        if (fit != pushdown_.end()) {
          for (const CypherExpr* f : fit->second) {
            std::vector<Value> probe_values;
            std::string prop;
            if (f->kind == CypherExprKind::kBinary &&
                f->op == CypherBinaryOp::kEq &&
                f->lhs->kind == CypherExprKind::kPropRef &&
                f->rhs->kind == CypherExprKind::kLiteral) {
              prop = f->lhs->prop;
              probe_values.push_back(f->rhs->literal);
            } else if (f->kind == CypherExprKind::kInList && !f->negated &&
                       f->lhs->kind == CypherExprKind::kPropRef) {
              prop = f->lhs->prop;
              probe_values = f->in_list;
            }
            if (prop.empty() || !graph_.HasNodeIndex(pat.label, prop)) {
              continue;
            }
            for (const Value& v : probe_values) {
              for (NodeId id : graph_.ProbeNodes(pat.label, prop, v)) {
                if (rnode.Matches(graph_.node(id))) seeds.push_back(id);
              }
            }
            std::sort(seeds.begin(), seeds.end());
            seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
            return seeds;
          }
        }
      }
      for (NodeId id : graph_.NodesWithLabel(pat.label)) {
        if (rnode.Matches(graph_.node(id))) seeds.push_back(id);
      }
      return seeds;
    }
    for (NodeId id = 0; id < graph_.node_count(); ++id) {
      if (rnode.Matches(graph_.node(id))) seeds.push_back(id);
    }
    return seeds;
  }

  void MatchChainFrom(const PatternPart& part, const ResolvedPart& rp,
                      bool reversed, const Binding& binding,
                      std::vector<Binding>* out) {
    std::vector<NodeId> seeds = SeedCandidates(rp.nodes[0], binding);
    if (stats_ != nullptr) stats_->seed_candidates += seeds.size();
    // One scratch copy for all seeds: Extend() restores the binding on
    // backtrack, so bind/unbind the seed variable in place instead of
    // deep-copying three hash containers per candidate.
    const std::string& var = part.nodes[0].var;
    Binding b = binding;
    bool bindable = !var.empty() && !binding.nodes.count(var);
    for (NodeId seed : seeds) {
      if (bindable) {
        // Overwrite in place; the entry is erased once after the loop, so
        // later iterations pay a hash lookup instead of a malloc/free pair.
        b.nodes[var] = seed;
        if (!PassesFilters(var, b)) continue;
      }
      Extend(rp, reversed, 0, seed, b, out);
    }
    if (bindable) b.nodes.erase(var);
  }

  /// Edges to expand from `node` for relationship `rrel`: the per-type
  /// adjacency group when the pattern is typed (touching only matching
  /// edges), the full list otherwise or when the legacy toggle is on.
  const std::vector<EdgeId>& ExpansionEdges(NodeId node, bool reversed,
                                            const ResolvedRel& rrel) const {
    if (options_.typed_adjacency && rrel.has_type) {
      return reversed ? graph_.InEdges(node, rrel.type_id)
                      : graph_.OutEdges(node, rrel.type_id);
    }
    return reversed ? graph_.InEdges(node) : graph_.OutEdges(node);
  }

  /// We are standing at `node`, having matched part.nodes[idx]; match
  /// part.rels[idx] and continue.
  void Extend(const ResolvedPart& part, bool reversed, size_t idx, NodeId node,
              Binding& binding, std::vector<Binding>* out) {
    if (idx == part.rels.size()) {
      out->push_back(binding);
      if (stats_ != nullptr) ++stats_->bindings_emitted;
      return;
    }
    const ResolvedRel& rrel = part.rels[idx];
    const RelPattern& rel = *rrel.pat;
    const ResolvedNode& next_rnode = part.nodes[idx + 1];
    const NodePattern& next_pat = *next_rnode.pat;

    if (!rel.varlen) {
      for (EdgeId eid : ExpansionEdges(node, reversed, rrel)) {
        if (stats_ != nullptr) ++stats_->edges_traversed;
        const Edge& e = graph_.edge(eid);
        if (!rrel.Matches(e)) continue;
        if (binding.used_edges.count(eid)) continue;
        if (!rel.var.empty()) {
          auto it = binding.edges.find(rel.var);
          if (it != binding.edges.end() && it->second != eid) continue;
        }
        NodeId next = reversed ? e.src : e.dst;
        if (!AdmitNode(next, next_rnode, binding)) continue;

        // Bind, check pushed-down filters, recurse, unbind.
        bool node_was_new = BindNode(next_pat, next, binding);
        bool edge_was_new = false;
        if (!rel.var.empty() && !binding.edges.count(rel.var)) {
          binding.edges[rel.var] = eid;
          edge_was_new = true;
        }
        binding.used_edges.insert(eid);
        bool pass = (!node_was_new || PassesFilters(next_pat.var, binding)) &&
                    (!edge_was_new || PassesFilters(rel.var, binding));
        if (pass) Extend(part, reversed, idx + 1, next, binding, out);
        binding.used_edges.erase(eid);
        if (edge_was_new) binding.edges.erase(rel.var);
        if (node_was_new) binding.nodes.erase(next_pat.var);
      }
      return;
    }

    // Variable-length expansion: bounded DFS. Type/prop constraints apply to
    // every hop (Neo4j semantics); the endpoint must match next_pat.
    int max_len = rel.max_len >= 0 ? rel.max_len : options_.unbounded_varlen_cap;
    int min_len = std::max(0, rel.min_len);
    VarlenDfs(part, reversed, idx, min_len, max_len, node, /*depth=*/0,
              binding, out);
  }

  /// One level of the bounded variable-length DFS (a plain recursive member
  /// instead of a per-call std::function: seed loops over large graphs call
  /// this tens of thousands of times).
  void VarlenDfs(const ResolvedPart& part, bool reversed, size_t idx,
                 int min_len, int max_len, NodeId cur, int depth,
                 Binding& binding, std::vector<Binding>* out) {
    const ResolvedRel& rrel = part.rels[idx];
    const ResolvedNode& next_rnode = part.nodes[idx + 1];
    const NodePattern& next_pat = *next_rnode.pat;
    if (depth >= min_len && AdmitNode(cur, next_rnode, binding) &&
        // A zero-length path may only close when start==end is allowed.
        (depth > 0 || min_len == 0)) {
      bool node_was_new = BindNode(next_pat, cur, binding);
      if (!node_was_new || PassesFilters(next_pat.var, binding)) {
        Extend(part, reversed, idx + 1, cur, binding, out);
      }
      if (node_was_new) binding.nodes.erase(next_pat.var);
    }
    if (depth == max_len) return;
    for (EdgeId eid : ExpansionEdges(cur, reversed, rrel)) {
      if (stats_ != nullptr) ++stats_->edges_traversed;
      const Edge& e = graph_.edge(eid);
      if (!rrel.Matches(e)) continue;
      if (binding.used_edges.count(eid)) continue;
      binding.used_edges.insert(eid);
      VarlenDfs(part, reversed, idx, min_len, max_len,
                reversed ? e.src : e.dst, depth + 1, binding, out);
      binding.used_edges.erase(eid);
    }
  }

  bool AdmitNode(NodeId id, const ResolvedNode& rnode,
                 const Binding& binding) const {
    if (!rnode.Matches(graph_.node(id))) return false;
    if (!rnode.pat->var.empty()) {
      auto it = binding.nodes.find(rnode.pat->var);
      if (it != binding.nodes.end() && it->second != id) return false;
    }
    return true;
  }

  /// Returns true if this call introduced the binding (caller must unbind).
  bool BindNode(const NodePattern& pat, NodeId id, Binding& binding) const {
    if (pat.var.empty()) return false;
    if (binding.nodes.count(pat.var)) return false;
    binding.nodes[pat.var] = id;
    return true;
  }

  const PropertyGraph& graph_;
  const MatchOptions& options_;
  const PushdownFilters& pushdown_;
  const CypherEvaluator& eval_;
  MatchStats* stats_;
};

}  // namespace

std::string GraphResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t n = std::min(max_rows, rows.size());
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& v : rows[i]) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > n) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

Result<GraphResultSet> ExecuteCypher(const CypherQuery& query,
                                     const PropertyGraph& graph,
                                     const MatchOptions& options,
                                     MatchStats* stats) {
  CypherEvaluator eval(graph, options.hashed_in_lists);

  // Split WHERE into single-variable conjuncts (pushed into matching) and
  // residual conjuncts (evaluated on complete bindings).
  std::vector<const CypherExpr*> conjuncts;
  SplitConjuncts(query.where.get(), &conjuncts);
  PushdownFilters pushdown;
  std::vector<const CypherExpr*> residual;
  for (const CypherExpr* c : conjuncts) {
    std::unordered_set<std::string> vars;
    CollectVars(*c, &vars);
    if (vars.size() == 1) {
      pushdown[*vars.begin()].push_back(c);
    } else {
      residual.push_back(c);
    }
  }

  Matcher matcher(graph, options, pushdown, eval, stats);
  std::vector<Binding> bindings;
  bindings.emplace_back();
  for (const PatternPart& part : query.patterns) {
    if (part.nodes.empty()) {
      return Status::InvalidArgument("empty pattern part");
    }
    // Resolve labels/types and build the reversed chain once per part, not
    // once per intermediate binding.
    auto prepared = matcher.Prepare(part);
    std::vector<Binding> next;
    for (const Binding& b : bindings) {
      matcher.MatchPart(prepared, b, &next);
    }
    bindings = std::move(next);
    if (bindings.empty()) break;
  }

  GraphResultSet result;
  for (const CypherReturnItem& item : query.items) {
    result.columns.push_back(item.alias.empty() ? item.expr->ToString()
                                                : item.alias);
  }
  for (const Binding& b : bindings) {
    bool pass = true;
    for (const CypherExpr* c : residual) {
      auto cond = eval.Eval(*c, b);
      if (!cond.ok()) return cond.status();
      if (!CypherEvaluator::Truthy(cond.value())) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    std::vector<Value> row;
    row.reserve(query.items.size());
    for (const CypherReturnItem& item : query.items) {
      auto v = eval.Eval(*item.expr, b);
      if (!v.ok()) return v.status();
      row.push_back(std::move(v).value());
    }
    result.rows.push_back(std::move(row));
  }

  if (query.distinct) {
    // Dedup on the value rows directly (the old path concatenated
    // ToString() renderings of every cell into a string key per row).
    std::unordered_set<std::vector<Value>, sql::ValueRowHash, sql::ValueRowEq>
        seen;
    std::vector<std::vector<Value>> unique;
    unique.reserve(result.rows.size());
    for (auto& row : result.rows) {
      if (seen.insert(row).second) unique.push_back(std::move(row));
    }
    result.rows = std::move(unique);
  }
  if (query.limit >= 0 &&
      result.rows.size() > static_cast<size_t>(query.limit)) {
    result.rows.resize(static_cast<size_t>(query.limit));
  }
  return result;
}

Result<GraphResultSet> GraphDatabase::Query(std::string_view cypher,
                                            MatchStats* stats) const {
  auto query = ParseCypher(cypher);
  if (!query.ok()) return query.status();
  return ExecuteCypher(query.value(), graph_, options_, stats);
}

Result<GraphResultSet> GraphDatabase::Execute(const CypherQuery& query,
                                              MatchStats* stats) const {
  return ExecuteCypher(query, graph_, options_, stats);
}

}  // namespace raptor::graphdb
