// Hand-written lexer + recursive-descent parser for the Cypher subset.
#pragma once

#include <string_view>

#include "common/status.h"
#include "storage/graphdb/cypher_ast.h"

namespace raptor::graphdb {

/// Parse a single MATCH ... RETURN query.
Result<CypherQuery> ParseCypher(std::string_view text);

}  // namespace raptor::graphdb
