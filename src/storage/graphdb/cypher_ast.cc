#include "storage/graphdb/cypher_ast.h"

#include "common/strings.h"

namespace raptor::graphdb {

const char* CypherBinaryOpName(CypherBinaryOp op) {
  switch (op) {
    case CypherBinaryOp::kEq: return "=";
    case CypherBinaryOp::kNe: return "<>";
    case CypherBinaryOp::kLt: return "<";
    case CypherBinaryOp::kLe: return "<=";
    case CypherBinaryOp::kGt: return ">";
    case CypherBinaryOp::kGe: return ">=";
    case CypherBinaryOp::kContains: return "CONTAINS";
    case CypherBinaryOp::kStartsWith: return "STARTS WITH";
    case CypherBinaryOp::kEndsWith: return "ENDS WITH";
    case CypherBinaryOp::kAnd: return "AND";
    case CypherBinaryOp::kOr: return "OR";
    case CypherBinaryOp::kAdd: return "+";
    case CypherBinaryOp::kSub: return "-";
  }
  return "?";
}

namespace {

std::string QuoteLiteral(const Value& v) {
  if (v.is_text()) return "'" + ReplaceAll(v.AsText(), "'", "\\'") + "'";
  return v.ToString();
}

std::string PropsToString(const std::vector<PropConstraint>& props) {
  if (props.empty()) return "";
  std::vector<std::string> parts;
  parts.reserve(props.size());
  for (const PropConstraint& p : props) {
    parts.push_back(p.key + ": " + QuoteLiteral(p.value));
  }
  return " {" + Join(parts, ", ") + "}";
}

}  // namespace

std::string CypherExpr::ToString() const {
  switch (kind) {
    case CypherExprKind::kLiteral:
      return QuoteLiteral(literal);
    case CypherExprKind::kPropRef:
      return var + "." + prop;
    case CypherExprKind::kVarRef:
      return var;
    case CypherExprKind::kNot:
      return "NOT (" + lhs->ToString() + ")";
    case CypherExprKind::kInList: {
      std::vector<std::string> parts;
      parts.reserve(in_list.size());
      for (const Value& v : in_list) parts.push_back(QuoteLiteral(v));
      return lhs->ToString() + (negated ? " NOT IN [" : " IN [") +
             Join(parts, ", ") + "]";
    }
    case CypherExprKind::kBinary: {
      std::string l = lhs->ToString();
      std::string r = rhs->ToString();
      if (op == CypherBinaryOp::kAnd || op == CypherBinaryOp::kOr) {
        return "(" + l + " " + CypherBinaryOpName(op) + " " + r + ")";
      }
      return l + " " + CypherBinaryOpName(op) + " " + r;
    }
  }
  return "?";
}

std::string CypherQuery::ToString() const {
  std::string out = "MATCH ";
  std::vector<std::string> parts;
  for (const PatternPart& part : patterns) {
    std::string s;
    for (size_t i = 0; i < part.nodes.size(); ++i) {
      const NodePattern& n = part.nodes[i];
      s += "(" + n.var;
      if (!n.label.empty()) s += ":" + n.label;
      s += PropsToString(n.props) + ")";
      if (i < part.rels.size()) {
        const RelPattern& r = part.rels[i];
        s += "-[" + r.var;
        if (!r.type.empty()) s += ":" + r.type;
        if (r.varlen) {
          s += "*" + std::to_string(r.min_len) + "..";
          if (r.max_len >= 0) s += std::to_string(r.max_len);
        }
        s += PropsToString(r.props) + "]->";
      }
    }
    parts.push_back(std::move(s));
  }
  out += Join(parts, ", ");
  if (where) out += " WHERE " + where->ToString();
  out += " RETURN ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> item_strs;
  for (const CypherReturnItem& item : items) {
    std::string s = item.expr->ToString();
    if (!item.alias.empty()) s += " AS " + item.alias;
    item_strs.push_back(std::move(s));
  }
  out += Join(item_strs, ", ");
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace raptor::graphdb
