#include "storage/graphdb/graph.h"

namespace raptor::graphdb {

namespace {

const std::vector<NodeId> kNoNodes;
const std::vector<EdgeId> kNoEdges;

}  // namespace

std::vector<EdgeId>& PropertyGraph::TypedAdjacency::For(uint32_t type_id) {
  for (auto& [tid, edges] : groups) {
    if (tid == type_id) return edges;
  }
  groups.emplace_back(type_id, std::vector<EdgeId>());
  return groups.back().second;
}

const std::vector<EdgeId>* PropertyGraph::TypedAdjacency::Find(
    uint32_t type_id) const {
  for (const auto& [tid, edges] : groups) {
    if (tid == type_id) return &edges;
  }
  return nullptr;
}

NodeId PropertyGraph::AddNode(std::string label, PropertyMap props) {
  NodeId id = nodes_.size();
  Node n;
  n.id = id;
  n.label_id = labels_.Intern(label);
  n.label = std::move(label);
  n.props = std::move(props);
  if (n.label_id >= by_label_.size()) by_label_.resize(n.label_id + 1);
  by_label_[n.label_id].push_back(id);
  // Maintain any matching indexes.
  for (auto& [key, index] : node_indexes_) {
    if (static_cast<uint32_t>(key >> 32) != n.label_id) continue;
    uint32_t prop_id = static_cast<uint32_t>(key);
    const Value* v = n.FindProp(index_props_.Name(prop_id));
    if (v != nullptr) index[*v].push_back(id);
  }
  nodes_.push_back(std::move(n));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  out_by_type_.emplace_back();
  in_by_type_.emplace_back();
  return id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId dst, std::string type,
                              PropertyMap props) {
  EdgeId id = edges_.size();
  Edge e;
  e.id = id;
  e.src = src;
  e.dst = dst;
  e.type_id = edge_types_.Intern(type);
  e.type = std::move(type);
  e.props = std::move(props);
  out_edges_[src].push_back(id);
  in_edges_[dst].push_back(id);
  out_by_type_[src].For(e.type_id).push_back(id);
  in_by_type_[dst].For(e.type_id).push_back(id);
  edges_.push_back(std::move(e));
  return id;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id) const {
  return id < out_edges_.size() ? out_edges_[id] : kNoEdges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id) const {
  return id < in_edges_.size() ? in_edges_[id] : kNoEdges;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id,
                                                   uint32_t type_id) const {
  if (id >= out_by_type_.size() || type_id == kNoSymbol) return kNoEdges;
  const std::vector<EdgeId>* edges = out_by_type_[id].Find(type_id);
  return edges != nullptr ? *edges : kNoEdges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id,
                                                  uint32_t type_id) const {
  if (id >= in_by_type_.size() || type_id == kNoSymbol) return kNoEdges;
  const std::vector<EdgeId>* edges = in_by_type_[id].Find(type_id);
  return edges != nullptr ? *edges : kNoEdges;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  uint32_t label_id = labels_.Lookup(label);
  return label_id == kNoSymbol ? kNoNodes : by_label_[label_id];
}

void PropertyGraph::CreateNodeIndex(std::string_view label,
                                    std::string_view prop) {
  uint32_t label_id = labels_.Intern(label);
  if (label_id >= by_label_.size()) by_label_.resize(label_id + 1);
  uint32_t prop_id = index_props_.Intern(prop);
  uint64_t key = IndexKey(label_id, prop_id);
  if (node_indexes_.count(key)) return;
  ValueIndex& index = node_indexes_[key];
  for (NodeId id : by_label_[label_id]) {
    const Value* v = nodes_[id].FindProp(prop);
    if (v != nullptr) index[*v].push_back(id);
  }
}

bool PropertyGraph::HasNodeIndex(std::string_view label,
                                 std::string_view prop) const {
  uint32_t label_id = labels_.Lookup(label);
  uint32_t prop_id = index_props_.Lookup(prop);
  if (label_id == kNoSymbol || prop_id == kNoSymbol) return false;
  return node_indexes_.count(IndexKey(label_id, prop_id)) > 0;
}

const std::vector<NodeId>& PropertyGraph::ProbeNodes(std::string_view label,
                                                     std::string_view prop,
                                                     const Value& value) const {
  uint32_t label_id = labels_.Lookup(label);
  uint32_t prop_id = index_props_.Lookup(prop);
  if (label_id == kNoSymbol || prop_id == kNoSymbol) return kNoNodes;
  auto it = node_indexes_.find(IndexKey(label_id, prop_id));
  if (it == node_indexes_.end()) return kNoNodes;
  auto jt = it->second.find(value);
  return jt == it->second.end() ? kNoNodes : jt->second;
}

size_t PropertyGraph::ProbeCountNodes(std::string_view label,
                                      std::string_view prop,
                                      const Value& value) const {
  return ProbeNodes(label, prop, value).size();
}

PropertyGraph::NodeIndexStats PropertyGraph::GetNodeIndexStats(
    std::string_view label, std::string_view prop) const {
  NodeIndexStats stats;
  uint32_t label_id = labels_.Lookup(label);
  uint32_t prop_id = index_props_.Lookup(prop);
  if (label_id == kNoSymbol || prop_id == kNoSymbol) return stats;
  auto it = node_indexes_.find(IndexKey(label_id, prop_id));
  if (it == node_indexes_.end()) return stats;
  stats.distinct_keys = it->second.size();
  for (const auto& [value, ids] : it->second) stats.entries += ids.size();
  return stats;
}

}  // namespace raptor::graphdb
