#include "storage/graphdb/graph.h"

namespace raptor::graphdb {

namespace {

std::string IndexKey(std::string_view label, std::string_view prop) {
  std::string key(label);
  key.push_back('\x1f');
  key.append(prop);
  return key;
}

const std::vector<NodeId> kNoNodes;
const std::vector<EdgeId> kNoEdges;

}  // namespace

NodeId PropertyGraph::AddNode(std::string label, PropertyMap props) {
  NodeId id = nodes_.size();
  Node n;
  n.id = id;
  n.label = std::move(label);
  n.props = std::move(props);
  by_label_[n.label].push_back(id);
  // Maintain any matching indexes.
  for (auto& [key, index] : node_indexes_) {
    size_t sep = key.find('\x1f');
    if (key.compare(0, sep, n.label) != 0) continue;
    std::string prop = key.substr(sep + 1);
    const Value* v = n.FindProp(prop);
    if (v != nullptr) index[v->ToString()].push_back(id);
  }
  nodes_.push_back(std::move(n));
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId dst, std::string type,
                              PropertyMap props) {
  EdgeId id = edges_.size();
  Edge e;
  e.id = id;
  e.src = src;
  e.dst = dst;
  e.type = std::move(type);
  e.props = std::move(props);
  edges_.push_back(std::move(e));
  out_edges_[src].push_back(id);
  in_edges_[dst].push_back(id);
  return id;
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id) const {
  return id < out_edges_.size() ? out_edges_[id] : kNoEdges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id) const {
  return id < in_edges_.size() ? in_edges_[id] : kNoEdges;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  auto it = by_label_.find(std::string(label));
  return it == by_label_.end() ? kNoNodes : it->second;
}

void PropertyGraph::CreateNodeIndex(std::string_view label,
                                    std::string_view prop) {
  std::string key = IndexKey(label, prop);
  if (node_indexes_.count(key)) return;
  auto& index = node_indexes_[key];
  for (NodeId id : NodesWithLabel(label)) {
    const Value* v = nodes_[id].FindProp(prop);
    if (v != nullptr) index[v->ToString()].push_back(id);
  }
}

bool PropertyGraph::HasNodeIndex(std::string_view label,
                                 std::string_view prop) const {
  return node_indexes_.count(IndexKey(label, prop)) > 0;
}

const std::vector<NodeId>& PropertyGraph::ProbeNodes(std::string_view label,
                                                     std::string_view prop,
                                                     const Value& value) const {
  auto it = node_indexes_.find(IndexKey(label, prop));
  if (it == node_indexes_.end()) return kNoNodes;
  auto jt = it->second.find(value.ToString());
  return jt == it->second.end() ? kNoNodes : jt->second;
}

}  // namespace raptor::graphdb
