#include "storage/graphdb/graph.h"

namespace raptor::graphdb {

namespace {

const std::vector<NodeId> kNoNodes;
const std::vector<EdgeId> kNoEdges;

}  // namespace

std::vector<EdgeId>& PropertyGraph::TypedAdjacency::For(uint32_t type_id) {
  for (auto& [tid, edges] : groups) {
    if (tid == type_id) return edges;
  }
  groups.emplace_back(type_id, std::vector<EdgeId>());
  return groups.back().second;
}

const std::vector<EdgeId>* PropertyGraph::TypedAdjacency::Find(
    uint32_t type_id) const {
  for (const auto& [tid, edges] : groups) {
    if (tid == type_id) return &edges;
  }
  return nullptr;
}

PropertyGraph::PropertyGraph(size_t shard_count) : layout_(shard_count) {
  shards_.resize(layout_.count());
}

NodeId PropertyGraph::AddNode(std::string label, PropertyMap props) {
  NodeId id = node_count_++;
  Shard& shard = shards_[layout_.ShardOf(id)];
  Node n;
  n.id = id;
  n.label_id = labels_.Intern(label);
  n.label = std::move(label);
  n.props = std::move(props);
  if (n.label_id >= shard.by_label.size()) {
    shard.by_label.resize(n.label_id + 1);
  }
  n.label_pos = static_cast<uint32_t>(shard.by_label[n.label_id].size());
  shard.by_label[n.label_id].push_back(id);
  // Freeze the property map into this (shard × label) bucket's columns.
  if (n.label_id >= shard.node_cols.size()) {
    shard.node_cols.resize(n.label_id + 1);
  }
  FreezeProps(shard.node_cols[n.label_id], n.label_pos, n.props);
  // Maintain this shard's slice of any matching index.
  for (auto& [key, index] : shard.node_indexes) {
    if (static_cast<uint32_t>(key >> 32) != n.label_id) continue;
    uint32_t prop_id = static_cast<uint32_t>(key);
    const Value* v = n.FindProp(index_props_.Name(prop_id));
    if (v != nullptr) index[*v].push_back(id);
  }
  shard.nodes.push_back(std::move(n));
  shard.out_edges.emplace_back();
  shard.in_edges.emplace_back();
  shard.out_by_type.emplace_back();
  shard.in_by_type.emplace_back();
  return id;
}

EdgeId PropertyGraph::AddEdge(NodeId src, NodeId dst, std::string type,
                              PropertyMap props) {
  EdgeId id = edge_count_++;
  Edge e;
  e.id = id;
  e.src = src;
  e.dst = dst;
  e.type_id = edge_types_.Intern(type);
  e.type = std::move(type);
  e.props = std::move(props);
  Shard& src_shard = shards_[layout_.ShardOf(src)];
  Shard& dst_shard = shards_[layout_.ShardOf(dst)];
  src_shard.out_edges[layout_.LocalOf(src)].push_back(id);
  dst_shard.in_edges[layout_.LocalOf(dst)].push_back(id);
  src_shard.out_by_type[layout_.LocalOf(src)].For(e.type_id).push_back(id);
  dst_shard.in_by_type[layout_.LocalOf(dst)].For(e.type_id).push_back(id);
  Shard& edge_shard = shards_[layout_.ShardOf(id)];
  if (e.type_id >= edge_shard.edges_per_type.size()) {
    edge_shard.edges_per_type.resize(e.type_id + 1, 0);
    edge_shard.edge_cols.resize(e.type_id + 1);
  }
  e.type_pos = edge_shard.edges_per_type[e.type_id]++;
  FreezeProps(edge_shard.edge_cols[e.type_id], e.type_pos, e.props);
  edge_shard.edges.push_back(std::move(e));
  return id;
}

void PropertyGraph::FreezeProps(storage::ColumnGroup& group, size_t pos,
                                const PropertyMap& props) {
  for (const auto& [name, value] : props) {
    uint32_t prop_id = prop_names_.Intern(name);
    if (prop_id >= prop_dicts_.size()) prop_dicts_.emplace_back();
    group.ColumnFor(prop_id)->Append(pos, value, &prop_dicts_[prop_id]);
  }
}

uint32_t PropertyGraph::LookupPropDict(uint32_t prop_id,
                                       std::string_view text) const {
  if (prop_id == kNoSymbol || prop_id >= prop_dicts_.size()) {
    return storage::kNullDictId;
  }
  uint32_t id = prop_dicts_[prop_id].Lookup(text);
  return id == kNoSymbol ? storage::kNullDictId : id;
}

std::string_view PropertyGraph::PropDictName(uint32_t prop_id,
                                             uint32_t dict_id) const {
  return prop_dicts_[prop_id].Name(dict_id);
}

const storage::Column* PropertyGraph::NodeColumn(size_t shard,
                                                 uint32_t label_id,
                                                 uint32_t prop_id) const {
  if (prop_id == kNoSymbol) return nullptr;
  const Shard& s = shards_[shard];
  if (label_id >= s.node_cols.size()) return nullptr;
  return s.node_cols[label_id].Find(prop_id);
}

const storage::Column* PropertyGraph::EdgeColumn(size_t shard,
                                                 uint32_t type_id,
                                                 uint32_t prop_id) const {
  if (prop_id == kNoSymbol) return nullptr;
  const Shard& s = shards_[shard];
  if (type_id >= s.edge_cols.size()) return nullptr;
  return s.edge_cols[type_id].Find(prop_id);
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id) const {
  if (id >= node_count_) return kNoEdges;
  return shards_[layout_.ShardOf(id)].out_edges[layout_.LocalOf(id)];
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id) const {
  if (id >= node_count_) return kNoEdges;
  return shards_[layout_.ShardOf(id)].in_edges[layout_.LocalOf(id)];
}

const std::vector<EdgeId>& PropertyGraph::OutEdges(NodeId id,
                                                   uint32_t type_id) const {
  if (id >= node_count_ || type_id == kNoSymbol) return kNoEdges;
  const std::vector<EdgeId>* edges =
      shards_[layout_.ShardOf(id)].out_by_type[layout_.LocalOf(id)].Find(
          type_id);
  return edges != nullptr ? *edges : kNoEdges;
}

const std::vector<EdgeId>& PropertyGraph::InEdges(NodeId id,
                                                  uint32_t type_id) const {
  if (id >= node_count_ || type_id == kNoSymbol) return kNoEdges;
  const std::vector<EdgeId>* edges =
      shards_[layout_.ShardOf(id)].in_by_type[layout_.LocalOf(id)].Find(
          type_id);
  return edges != nullptr ? *edges : kNoEdges;
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label) const {
  return NodesWithLabel(label, 0);
}

const std::vector<NodeId>& PropertyGraph::NodesWithLabel(
    std::string_view label, size_t shard) const {
  uint32_t label_id = labels_.Lookup(label);
  if (label_id == kNoSymbol) return kNoNodes;
  const Shard& s = shards_[shard];
  return label_id < s.by_label.size() ? s.by_label[label_id] : kNoNodes;
}

void PropertyGraph::CreateNodeIndex(std::string_view label,
                                    std::string_view prop) {
  uint32_t label_id = labels_.Intern(label);
  uint32_t prop_id = index_props_.Intern(prop);
  uint64_t key = IndexKey(label_id, prop_id);
  if (shards_[0].node_indexes.count(key)) return;
  for (Shard& shard : shards_) {
    if (label_id >= shard.by_label.size()) {
      shard.by_label.resize(label_id + 1);
    }
    ValueIndex& index = shard.node_indexes[key];
    for (NodeId id : shard.by_label[label_id]) {
      const Value* v = node(id).FindProp(prop);
      if (v != nullptr) index[*v].push_back(id);
    }
  }
}

bool PropertyGraph::HasNodeIndex(std::string_view label,
                                 std::string_view prop) const {
  uint32_t label_id = labels_.Lookup(label);
  uint32_t prop_id = index_props_.Lookup(prop);
  if (label_id == kNoSymbol || prop_id == kNoSymbol) return false;
  // Indexes are created in every shard at once; shard 0 is authoritative.
  return shards_[0].node_indexes.count(IndexKey(label_id, prop_id)) > 0;
}

const PropertyGraph::ValueIndex* PropertyGraph::FindIndex(
    std::string_view label, std::string_view prop, size_t shard) const {
  uint32_t label_id = labels_.Lookup(label);
  uint32_t prop_id = index_props_.Lookup(prop);
  if (label_id == kNoSymbol || prop_id == kNoSymbol) return nullptr;
  auto it = shards_[shard].node_indexes.find(IndexKey(label_id, prop_id));
  return it == shards_[shard].node_indexes.end() ? nullptr : &it->second;
}

const std::vector<NodeId>& PropertyGraph::ProbeNodes(std::string_view label,
                                                     std::string_view prop,
                                                     const Value& value) const {
  return ProbeNodes(label, prop, value, 0);
}

const std::vector<NodeId>& PropertyGraph::ProbeNodes(std::string_view label,
                                                     std::string_view prop,
                                                     const Value& value,
                                                     size_t shard) const {
  const ValueIndex* index = FindIndex(label, prop, shard);
  if (index == nullptr) return kNoNodes;
  auto it = index->find(value);
  return it == index->end() ? kNoNodes : it->second;
}

size_t PropertyGraph::ProbeCountNodes(std::string_view label,
                                      std::string_view prop,
                                      const Value& value) const {
  size_t count = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    count += ProbeNodes(label, prop, value, s).size();
  }
  return count;
}

PropertyGraph::NodeIndexStats PropertyGraph::GetNodeIndexStats(
    std::string_view label, std::string_view prop) const {
  NodeIndexStats stats;
  std::vector<const ValueIndex*> indexes(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    indexes[s] = FindIndex(label, prop, s);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (indexes[s] == nullptr) continue;
    for (const auto& [value, ids] : *indexes[s]) {
      stats.entries += ids.size();
      // A value counts toward distinct_keys only in the first shard that
      // holds it, so keys split across shards are not double-counted.
      bool seen_earlier = false;
      for (size_t t = 0; t < s && !seen_earlier; ++t) {
        seen_earlier = indexes[t] != nullptr && indexes[t]->count(value) > 0;
      }
      if (!seen_earlier) ++stats.distinct_keys;
    }
  }
  return stats;
}

}  // namespace raptor::graphdb
