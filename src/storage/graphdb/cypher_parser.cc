#include "storage/graphdb/cypher_parser.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace raptor::graphdb {

namespace {

enum class Tok {
  kIdent,
  kKeyword,
  kInt,
  kFloat,
  kString,
  kSymbol,
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  size_t pos = 0;
};

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "MATCH", "WHERE", "RETURN",   "DISTINCT", "AND",  "OR",
      "NOT",   "IN",    "CONTAINS", "STARTS",   "ENDS", "WITH",
      "AS",    "LIMIT", "NULL",
  };
  return kKeywords;
}

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        ++i;
      }
      std::string word(text.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.kind = Tok::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = Tok::kIdent;
        tok.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < text.size() &&
             (std::isdigit(static_cast<unsigned char>(text[i])) ||
              (text[i] == '.' && i + 1 < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i + 1])) &&
               !(i + 1 < text.size() && text[i + 1] == '.')))) {
        if (text[i] == '.') {
          // Guard against the range token '..'.
          if (i + 1 < text.size() && text[i + 1] == '.') break;
          is_float = true;
        }
        ++i;
      }
      tok.kind = is_float ? Tok::kFloat : Tok::kInt;
      tok.text = std::string(text.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < text.size()) {
        if (text[i] == '\\' && i + 1 < text.size() && text[i + 1] == '\'') {
          s.push_back('\'');
          i += 2;
        } else if (text[i] == '\'') {
          ++i;
          closed = true;
          break;
        } else {
          s.push_back(text[i++]);
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string at offset %zu", tok.pos));
      }
      tok.kind = Tok::kString;
      tok.text = std::move(s);
    } else {
      tok.kind = Tok::kSymbol;
      static const char* kMulti[] = {"->", "<=", ">=", "<>", ".."};
      bool matched = false;
      for (const char* op : kMulti) {
        if (text.substr(i, 2) == op) {
          tok.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingle = "()[]{}:,.*-=<>+";
        if (kSingle.find(c) == std::string::npos) {
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
        }
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = Tok::kEnd;
  end.pos = text.size();
  tokens.push_back(end);
  return tokens;
}

#define CYPHER_RETURN_NOT_OK(expr)            \
  do {                                        \
    ::raptor::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<CypherQuery> Parse() {
    CypherQuery query;
    CYPHER_RETURN_NOT_OK(ExpectKeyword("MATCH"));
    while (true) {
      auto part = ParsePatternPart();
      if (!part.ok()) return part.status();
      query.patterns.push_back(std::move(part).value());
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      query.where = std::move(where).value();
    }
    CYPHER_RETURN_NOT_OK(ExpectKeyword("RETURN"));
    if (AcceptKeyword("DISTINCT")) query.distinct = true;
    while (true) {
      CypherReturnItem item;
      auto expr = ParsePrimary();
      if (!expr.ok()) return expr.status();
      item.expr = std::move(expr).value();
      if (AcceptKeyword("AS")) {
        if (Peek().kind != Tok::kIdent) return Err("expected alias after AS");
        item.alias = Next().text;
      }
      query.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != Tok::kInt) return Err("expected LIMIT count");
      query.limit = std::stoll(Next().text);
    }
    if (Peek().kind != Tok::kEnd) {
      return Err("trailing tokens: '" + Peek().text + "'");
    }
    return query;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().kind == Tok::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().kind == Tok::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(
          StrFormat("expected %s at offset %zu, got '%s'",
                    std::string(kw).c_str(), Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(
          StrFormat("expected '%s' at offset %zu, got '%s'",
                    std::string(sym).c_str(), Peek().pos, Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", msg.c_str(), Peek().pos));
  }

  Result<Value> ParseLiteralValue() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case Tok::kInt:
        Next();
        return Value(static_cast<int64_t>(std::stoll(tok.text)));
      case Tok::kFloat:
        Next();
        return Value(std::stod(tok.text));
      case Tok::kString:
        Next();
        return Value(tok.text);
      case Tok::kKeyword:
        if (tok.text == "NULL") {
          Next();
          return Value::Null();
        }
        return Err("expected literal");
      default:
        return Err("expected literal");
    }
  }

  Result<std::vector<PropConstraint>> ParseProps() {
    std::vector<PropConstraint> props;
    if (!AcceptSymbol("{")) return props;
    while (true) {
      if (Peek().kind != Tok::kIdent) return Err("expected property name");
      PropConstraint pc;
      pc.key = Next().text;
      CYPHER_RETURN_NOT_OK(ExpectSymbol(":"));
      auto v = ParseLiteralValue();
      if (!v.ok()) return v.status();
      pc.value = std::move(v).value();
      props.push_back(std::move(pc));
      if (!AcceptSymbol(",")) break;
    }
    CYPHER_RETURN_NOT_OK(ExpectSymbol("}"));
    return props;
  }

  Result<NodePattern> ParseNode() {
    CYPHER_RETURN_NOT_OK(ExpectSymbol("("));
    NodePattern node;
    if (Peek().kind == Tok::kIdent) node.var = Next().text;
    if (AcceptSymbol(":")) {
      if (Peek().kind != Tok::kIdent) return Err("expected label");
      node.label = Next().text;
    }
    auto props = ParseProps();
    if (!props.ok()) return props.status();
    node.props = std::move(props).value();
    CYPHER_RETURN_NOT_OK(ExpectSymbol(")"));
    return node;
  }

  Result<RelPattern> ParseRel() {
    CYPHER_RETURN_NOT_OK(ExpectSymbol("-"));
    CYPHER_RETURN_NOT_OK(ExpectSymbol("["));
    RelPattern rel;
    if (Peek().kind == Tok::kIdent) rel.var = Next().text;
    if (AcceptSymbol(":")) {
      if (Peek().kind != Tok::kIdent) return Err("expected relationship type");
      rel.type = Next().text;
    }
    if (AcceptSymbol("*")) {
      rel.varlen = true;
      rel.min_len = 1;
      rel.max_len = -1;
      if (Peek().kind == Tok::kInt) {
        rel.min_len = static_cast<int>(std::stoll(Next().text));
        rel.max_len = rel.min_len;  // "*n" = exactly n unless ".." follows
      }
      if (AcceptSymbol("..")) {
        rel.max_len = -1;
        if (Peek().kind == Tok::kInt) {
          rel.max_len = static_cast<int>(std::stoll(Next().text));
        }
      }
    }
    auto props = ParseProps();
    if (!props.ok()) return props.status();
    rel.props = std::move(props).value();
    CYPHER_RETURN_NOT_OK(ExpectSymbol("]"));
    CYPHER_RETURN_NOT_OK(ExpectSymbol("->"));
    return rel;
  }

  Result<PatternPart> ParsePatternPart() {
    PatternPart part;
    auto first = ParseNode();
    if (!first.ok()) return first.status();
    part.nodes.push_back(std::move(first).value());
    while (Peek().kind == Tok::kSymbol && Peek().text == "-") {
      auto rel = ParseRel();
      if (!rel.ok()) return rel.status();
      part.rels.push_back(std::move(rel).value());
      auto node = ParseNode();
      if (!node.ok()) return node.status();
      part.nodes.push_back(std::move(node).value());
    }
    return part;
  }

  Result<std::unique_ptr<CypherExpr>> ParseExpr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kBinary;
      e->op = CypherBinaryOp::kOr;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<CypherExpr>> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptKeyword("AND")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kBinary;
      e->op = CypherBinaryOp::kAnd;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<CypherExpr>> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner.status();
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kNot;
      e->lhs = std::move(inner).value();
      return std::unique_ptr<CypherExpr>(std::move(e));
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<CypherExpr>> ParseAdditive() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (true) {
      CypherBinaryOp op;
      if (AcceptSymbol("+")) {
        op = CypherBinaryOp::kAdd;
      } else if (AcceptSymbol("-")) {
        op = CypherBinaryOp::kSub;
      } else {
        break;
      }
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kBinary;
      e->op = op;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      node = std::move(e);
    }
    return node;
  }

  Result<std::unique_ptr<CypherExpr>> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();

    auto make_binary = [&](CypherBinaryOp op) -> Result<std::unique_ptr<CypherExpr>> {
      auto rhs = ParseAdditive();
      if (!rhs.ok()) return rhs.status();
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kBinary;
      e->op = op;
      e->lhs = std::move(node);
      e->rhs = std::move(rhs).value();
      return std::unique_ptr<CypherExpr>(std::move(e));
    };

    if (AcceptKeyword("CONTAINS")) return make_binary(CypherBinaryOp::kContains);
    if (AcceptKeyword("STARTS")) {
      CYPHER_RETURN_NOT_OK(ExpectKeyword("WITH"));
      return make_binary(CypherBinaryOp::kStartsWith);
    }
    if (AcceptKeyword("ENDS")) {
      CYPHER_RETURN_NOT_OK(ExpectKeyword("WITH"));
      return make_binary(CypherBinaryOp::kEndsWith);
    }
    bool negated = false;
    size_t save = pos_;
    if (AcceptKeyword("NOT")) negated = true;
    if (AcceptKeyword("IN")) {
      CYPHER_RETURN_NOT_OK(ExpectSymbol("["));
      auto e = std::make_unique<CypherExpr>();
      e->kind = CypherExprKind::kInList;
      e->negated = negated;
      e->lhs = std::move(node);
      while (true) {
        auto v = ParseLiteralValue();
        if (!v.ok()) return v.status();
        e->in_list.push_back(std::move(v).value());
        if (!AcceptSymbol(",")) break;
      }
      CYPHER_RETURN_NOT_OK(ExpectSymbol("]"));
      return std::unique_ptr<CypherExpr>(std::move(e));
    }
    if (negated) pos_ = save;

    struct OpMap {
      const char* sym;
      CypherBinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", CypherBinaryOp::kEq},  {"<>", CypherBinaryOp::kNe},
        {"<=", CypherBinaryOp::kLe}, {">=", CypherBinaryOp::kGe},
        {"<", CypherBinaryOp::kLt},  {">", CypherBinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (AcceptSymbol(m.sym)) return make_binary(m.op);
    }
    return node;
  }

  Result<std::unique_ptr<CypherExpr>> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == Tok::kIdent) {
      Next();
      auto e = std::make_unique<CypherExpr>();
      if (AcceptSymbol(".")) {
        if (Peek().kind != Tok::kIdent) return Err("expected property name");
        e->kind = CypherExprKind::kPropRef;
        e->var = tok.text;
        e->prop = Next().text;
      } else {
        e->kind = CypherExprKind::kVarRef;
        e->var = tok.text;
      }
      return std::unique_ptr<CypherExpr>(std::move(e));
    }
    if (tok.kind == Tok::kSymbol && tok.text == "(") {
      Next();
      auto inner = ParseExpr();
      if (!inner.ok()) return inner.status();
      CYPHER_RETURN_NOT_OK(ExpectSymbol(")"));
      return std::move(inner).value();
    }
    auto v = ParseLiteralValue();
    if (!v.ok()) return v.status();
    auto e = std::make_unique<CypherExpr>();
    e->kind = CypherExprKind::kLiteral;
    e->literal = std::move(v).value();
    return std::unique_ptr<CypherExpr>(std::move(e));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

#undef CYPHER_RETURN_NOT_OK

}  // namespace

Result<CypherQuery> ParseCypher(std::string_view text) {
  auto tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.Parse();
}

}  // namespace raptor::graphdb
