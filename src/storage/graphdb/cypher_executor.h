// Pattern matcher + executor for the Cypher subset.
//
// Matching is backtracking subgraph search, Neo4j-like in miniature:
//  * each comma-separated pattern part is matched against the graph in
//    sequence, threading variable bindings through (shared variables join
//    parts);
//  * the more-constrained endpoint of a chain seeds the search (bound
//    variable > inline props via index probe > label scan > full scan);
//  * variable-length relationships expand by bounded DFS with relationship
//    uniqueness (Cypher's relationship-isomorphism semantics);
//  * WHERE is evaluated on fully bound rows, RETURN projects node/edge
//    properties, DISTINCT/LIMIT post-process.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/graphdb/cypher_ast.h"
#include "storage/graphdb/graph.h"

namespace raptor::graphdb {

struct GraphResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  std::string ToString(size_t max_rows = 20) const;
};

/// Execution counters, exposed for the scheduler-ablation benchmark.
struct MatchStats {
  size_t seed_candidates = 0;   // start-node candidates considered
  size_t edges_traversed = 0;   // edge expansions
  size_t bindings_emitted = 0;  // complete pattern bindings before WHERE
};

struct MatchOptions {
  /// Expansion bound applied when a variable-length pattern has no upper
  /// bound (Neo4j discourages unbounded expansion for the same reason).
  int unbounded_varlen_cap = 8;
  /// Expand typed relationship patterns through the per-type adjacency
  /// groups, touching only edges of the requested type. Off = legacy full
  /// out/in-edge scan, kept as a benchmarking baseline.
  bool typed_adjacency = true;
  /// Probe IN-list predicates via a hashed set built once per query.
  /// Off = legacy O(list) scan per candidate row.
  bool hashed_in_lists = true;
};

/// Execute `query` against `graph`.
Result<GraphResultSet> ExecuteCypher(const CypherQuery& query,
                                     const PropertyGraph& graph,
                                     const MatchOptions& options = {},
                                     MatchStats* stats = nullptr);

/// Graph database facade: owns a graph, parses and executes Cypher text.
class GraphDatabase {
 public:
  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }

  MatchOptions& options() { return options_; }

  Result<GraphResultSet> Query(std::string_view cypher,
                               MatchStats* stats = nullptr) const;
  Result<GraphResultSet> Execute(const CypherQuery& query,
                                 MatchStats* stats = nullptr) const;

 private:
  PropertyGraph graph_;
  MatchOptions options_;
};

}  // namespace raptor::graphdb
