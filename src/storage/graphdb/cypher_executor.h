// Pattern matcher + executor for the Cypher subset.
//
// Matching is a streaming backtracking subgraph search, Neo4j-like in
// miniature:
//  * each comma-separated pattern part is matched against the graph
//    depth-first, threading variable bindings through (shared variables
//    join parts); a completed binding streams straight into the row sink
//    instead of materializing a binding list per part;
//  * the more-constrained endpoint of a chain seeds the search (bound
//    variable > most selective index probe > label scan > full scan),
//    ranking competing index probes by per-value cardinality;
//  * variable-length relationships expand by bounded DFS with relationship
//    uniqueness (Cypher's relationship-isomorphism semantics);
//  * WHERE is evaluated on fully bound rows; the row sink applies DISTINCT
//    through an incremental seen-set and stops the whole search — including
//    seed iteration — once LIMIT rows have been emitted, so `LIMIT 1` over
//    a label scan no longer visits every seed.
//
// Binding state is either a flat small-vector frame keyed on interned
// variable slots (default) or the legacy trio of hash containers, selected
// by MatchOptions::binding_frames; all streaming behaviors keep the legacy
// materialize-then-truncate path reachable through MatchOptions toggles so
// benchmarks and differential tests can compare both.
//
// Shard-parallel matching: when the graph is sharded and the top-level
// seed set is large enough, seed iteration fans out onto the shared
// thread pool (common/thread_pool.h). The default scheduler carves each
// shard's seed list into fixed-size morsels (MatchOptions::morsel_size)
// distributed over per-worker work-stealing deques: a worker drains its
// own deque front-first and steals single morsels from the back of a
// random victim when it runs dry, so a skewed shard's seeds spread across
// the whole fleet instead of serializing on one worker. The legacy
// scheduler (morsel_scheduling = false) runs one worker per storage
// shard. Either way each task streams into its own row sink and results
// merge in morsel/shard order — deterministic for a fixed graph, shard
// count, and morsel size, independent of the steal schedule. A
// pushed-down LIMIT cancels cooperatively through an atomic row budget
// shared by all workers (so total emitted rows never exceed the limit),
// and DISTINCT emissions hash-partition per worker so the merge adopts
// whole compacted blocks (storage/shard_parallel.h). Queries that stay
// serial (parallel_shards = 1, tiny seed sets, small pushed limits) take
// exactly the pre-sharding code path.
//
// Columnar predicate scans: inline property constraints and WHERE
// property references read the graph's frozen per-(shard × label) column
// vectors (storage/columnar.h) instead of probing each node's
// PropertyMap — string literals resolve to a dictionary id once per query
// and compare as uint32s. columnar_scan = false keeps the legacy row-path
// probes for the differential harness.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "storage/graphdb/cypher_ast.h"
#include "storage/graphdb/graph.h"
#include "storage/row_block.h"

namespace raptor::storage {
template <typename ResultT>
class QueryResultCache;
}  // namespace raptor::storage

namespace raptor::obs {
class TraceSpan;
}  // namespace raptor::obs

namespace raptor::graphdb {

struct GraphResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<Value>> rows;

  std::string ToString(size_t max_rows = 20) const;
};

/// Chunked result: rows live in per-worker blocks (one block per storage
/// shard after a parallel run, one for a serial run) instead of a flat
/// vector. A non-DISTINCT parallel merge adopts every worker block without
/// touching individual rows (rows.pushed_rows() == 0); consumers stream
/// through storage::RowCursor. GraphResultSet remains the materialized
/// compatibility view (ExecuteCypher flattens one of these).
struct GraphBlockResult {
  std::vector<std::string> columns;
  storage::RowBlocks<std::vector<Value>> rows;

  storage::RowCursor<std::vector<Value>> cursor() const {
    return storage::RowCursor<std::vector<Value>>(&rows);
  }
};

/// Execution counters, exposed for the scheduler-ablation benchmark.
struct MatchStats {
  size_t seed_candidates = 0;   // start-node candidates visited
  size_t edges_traversed = 0;   // edge expansions
  size_t bindings_emitted = 0;  // complete query bindings before WHERE
  size_t rows_emitted = 0;      // result rows produced (after WHERE/DISTINCT)
  size_t morsels_executed = 0;  // seed morsels run by the parallel driver
  size_t morsels_stolen = 0;    // of those, taken from another worker's deque
};

struct MatchOptions {
  /// Expansion bound applied when a variable-length pattern has no upper
  /// bound (Neo4j discourages unbounded expansion for the same reason).
  int unbounded_varlen_cap = 8;
  /// Expand typed relationship patterns through the per-type adjacency
  /// groups, touching only edges of the requested type. Off = legacy full
  /// out/in-edge scan, kept as a benchmarking baseline.
  bool typed_adjacency = true;
  /// Probe IN-list predicates via a hashed set built once per query.
  /// Off = legacy O(list) scan per candidate row.
  bool hashed_in_lists = true;
  /// Push LIMIT into the matcher: stop seed iteration and expansion once
  /// LIMIT rows have been emitted. Off = legacy materialize-then-truncate.
  /// (DISTINCT queries only push when streaming_distinct is also on, since
  /// the limit counts post-dedup rows.)
  bool push_limit = true;
  /// Apply DISTINCT through an incremental seen-set as rows are emitted.
  /// Off = legacy final dedup pass over the materialized result.
  bool streaming_distinct = true;
  /// Hold bindings in a flat small-vector frame keyed on interned variable
  /// slots. Off = legacy per-binding hash containers, kept as a baseline.
  bool binding_frames = true;
  /// Seed from the most selective applicable index probe, ranked by exact
  /// per-value cardinality. Off = legacy first-indexed-property choice.
  bool selective_seeds = true;
  /// Evaluate inline property constraints and WHERE property references
  /// against the frozen columnar property storage (dictionary-encoded
  /// string compares, present-bitmap int reads). Off = legacy per-node
  /// PropertyMap probes, kept for the differential harness. Results are
  /// identical either way; columns that cannot represent a value exactly
  /// (doubles, NULLs, mixed types) fall back to the row path per
  /// predicate.
  bool columnar_scan = true;
  /// Parallel scheduler: carve each shard's seed list into morsel_size
  /// chunks on per-worker work-stealing deques. Off = legacy one worker
  /// per storage shard (no stealing, skew-sensitive).
  bool morsel_scheduling = true;
  /// Seeds per morsel. Small enough that a skewed shard yields many
  /// stealable units, large enough to amortize per-morsel sink setup.
  int morsel_size = 2048;
  /// Maximum shard-parallel workers for whole-graph matching; the
  /// effective worker count is min(parallel_shards, graph.shard_count()).
  /// 1 = always serial (the baseline the differential tests compare
  /// against).
  int parallel_shards = 4;
  /// Stay serial when the top-level seed set is smaller than this: tiny
  /// queries lose more to worker dispatch than they gain from parallelism.
  int parallel_min_seeds = 64;
  /// Stay serial when a pushed-down LIMIT is below this: the serial
  /// early-exit path finishes such queries in a handful of seed visits.
  int parallel_min_limit = 8;
  /// Cooperative cancellation: when non-null and set, seed iteration stops
  /// (every worker polls it alongside the shared LIMIT budget) and the
  /// query returns Status::Cancelled. The flag must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline polled inside the scan loops next to the cancel
  /// flag (amortized clock reads — common/deadline.h), so a single giant
  /// scan stops within one poll stride of expiry and the query returns
  /// Status::Timeout.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Incremental standing hunts: restrict part-0 seed iteration to this
  /// node set (seeds outside it are skipped before matching). The caller
  /// owns completeness — the set must contain every part-0 node of any row
  /// the query is expected to produce. Must outlive the call.
  const std::unordered_set<NodeId>* top_seed_filter = nullptr;
  /// Multi-query optimization: when non-null, GraphDatabase::QueryBlocks
  /// memoizes full-scan results (no seed filter, no LIMIT) keyed by query
  /// text so structurally-identical hunts share one execution per epoch.
  /// The owner (service::HuntService) clears it on every store mutation.
  /// Must outlive the call.
  storage::QueryResultCache<GraphBlockResult>* result_cache = nullptr;
  /// EXPLAIN ANALYZE hook: when non-null, the parallel drivers hang one
  /// timed child span per shard run / morsel worker under it (seed,
  /// row, and steal counters included) and QueryBlocks records subresult
  /// cache hits. Null (the default) costs one pointer test per query.
  /// Must outlive the call.
  obs::TraceSpan* trace = nullptr;
};

/// Execute `query` against `graph`.
Result<GraphResultSet> ExecuteCypher(const CypherQuery& query,
                                     const PropertyGraph& graph,
                                     const MatchOptions& options = {},
                                     MatchStats* stats = nullptr);

/// Execute `query`, returning the chunked block result (the zero-copy
/// parallel-merge path; ExecuteCypher is a flattening wrapper over this).
Result<GraphBlockResult> ExecuteCypherBlocks(const CypherQuery& query,
                                             const PropertyGraph& graph,
                                             const MatchOptions& options = {},
                                             MatchStats* stats = nullptr);

/// Plan-time cost estimate in "nodes visited" units: per pattern part, the
/// cheaper of the forward/reverse chain-start seed cardinalities (the same
/// ProbeCountNodes / label-bucket rank SelectSeeds applies at run time,
/// including indexed WHERE equality / IN pushdown) scaled by the pattern
/// radius (1 + summed relationship lengths, varlen capped by
/// options.unbounded_varlen_cap). Touches only index statistics — no node
/// or edge visits — so admission layers can price a hunt before running it.
double EstimateCypherCost(const CypherQuery& query, const PropertyGraph& graph,
                          const MatchOptions& options = {});

/// Default storage shard count used by the database facades (the raw
/// PropertyGraph still defaults to one shard).
constexpr size_t kDefaultShardCount = 4;

/// Graph database facade: owns a graph, parses and executes Cypher text.
class GraphDatabase {
 public:
  explicit GraphDatabase(size_t shard_count = kDefaultShardCount)
      : graph_(shard_count) {}

  PropertyGraph& graph() { return graph_; }
  const PropertyGraph& graph() const { return graph_; }

  MatchOptions& options() { return options_; }
  const MatchOptions& options() const { return options_; }

  Result<GraphResultSet> Query(std::string_view cypher,
                               MatchStats* stats = nullptr) const;
  Result<GraphResultSet> Execute(const CypherQuery& query,
                                 MatchStats* stats = nullptr) const;

  /// Streaming variants returning chunked block results. The options
  /// overload lets per-request settings (HuntService cancellation flags)
  /// override the facade defaults without mutating shared state.
  Result<GraphBlockResult> QueryBlocks(std::string_view cypher,
                                       MatchStats* stats = nullptr) const;
  Result<GraphBlockResult> QueryBlocks(std::string_view cypher,
                                       const MatchOptions& options,
                                       MatchStats* stats = nullptr) const;

  /// Plan-time node-visit estimate for a Cypher text (EstimateCypherCost on
  /// the parsed query); 0.0 when the text does not parse.
  double EstimateCost(std::string_view cypher) const;

 private:
  PropertyGraph graph_;
  MatchOptions options_;
};

}  // namespace raptor::graphdb
