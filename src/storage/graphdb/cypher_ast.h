// AST for the Cypher subset the graph engine executes:
//
//   MATCH (a:label {k: v})-[r:type*min..max {k: v}]->(b:label), ...
//   WHERE <boolean expr over var.prop, with CONTAINS / STARTS WITH /
//          ENDS WITH / comparisons / IN / AND / OR / NOT>
//   RETURN [DISTINCT] a.prop [AS alias], ...
//   [LIMIT n]
//
// This covers what the TBQL compiler emits for variable-length event path
// patterns plus the hand-written "giant Cypher" baselines of Tables VIII/X.
// As in Neo4j, a relationship type / property constraint on a *bounded*
// variable-length relationship applies to every hop; the TBQL compiler
// therefore decomposes "last hop is `read`" paths into `-[*m..n]->()-[:read]->`.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/relational/value.h"

namespace raptor::graphdb {

using Value = sql::Value;

enum class CypherExprKind {
  kLiteral,
  kPropRef,     // var.prop
  kVarRef,      // bare variable (used in RETURN only)
  kBinary,
  kNot,
  kInList,
};

enum class CypherBinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
  kStartsWith,
  kEndsWith,
  kAnd,
  kOr,
  kAdd,
  kSub,
};

const char* CypherBinaryOpName(CypherBinaryOp op);

struct CypherExpr {
  CypherExprKind kind = CypherExprKind::kLiteral;
  Value literal;
  std::string var;
  std::string prop;
  CypherBinaryOp op = CypherBinaryOp::kEq;
  std::unique_ptr<CypherExpr> lhs;
  std::unique_ptr<CypherExpr> rhs;
  std::vector<Value> in_list;
  bool negated = false;

  std::string ToString() const;
};

struct PropConstraint {
  std::string key;
  Value value;
};

struct NodePattern {
  std::string var;    // may be empty (anonymous)
  std::string label;  // may be empty (any label)
  std::vector<PropConstraint> props;
};

struct RelPattern {
  std::string var;    // may be empty
  std::string type;   // may be empty (any type)
  std::vector<PropConstraint> props;
  bool varlen = false;
  int min_len = 1;
  int max_len = 1;    // -1 = unbounded
};

/// One comma-separated chain: n0 -r0-> n1 -r1-> ... -r(k-1)-> nk.
struct PatternPart {
  std::vector<NodePattern> nodes;
  std::vector<RelPattern> rels;
};

struct CypherReturnItem {
  std::unique_ptr<CypherExpr> expr;
  std::string alias;
};

struct CypherQuery {
  std::vector<PatternPart> patterns;
  std::unique_ptr<CypherExpr> where;  // may be null
  bool distinct = false;
  std::vector<CypherReturnItem> items;
  long long limit = -1;

  std::string ToString() const;
};

}  // namespace raptor::graphdb
