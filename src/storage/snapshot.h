// Snapshot persistence for parsed audit data. Parsing + reduction of a
// large raw log is the expensive part of ingestion; a snapshot stores the
// parsed entities and events in a compact tab-separated text format so a
// store can be rebuilt without re-parsing (the role PostgreSQL/Neo4j
// persistence plays in the paper's deployment).
//
// Format (version-tagged, line-oriented, '\t'-separated, strings with
// backslash escapes for tab/newline/backslash):
//   raptor-snapshot v1
//   E <count>            followed by one line per entity
//   V <count>            followed by one line per event
#pragma once

#include <string>
#include <string_view>

#include "audit/types.h"
#include "common/status.h"

namespace raptor::storage {

/// Serialize a parsed log (entities + events).
std::string SnapshotToString(const audit::ParsedLog& log);

/// Parse a snapshot back. Fails with ParseError on malformed input or an
/// unsupported version tag.
Result<audit::ParsedLog> SnapshotFromString(std::string_view data);

/// Convenience file wrappers.
Status SaveSnapshot(const audit::ParsedLog& log, const std::string& path);
Result<audit::ParsedLog> LoadSnapshot(const std::string& path);

}  // namespace raptor::storage
