#include "storage/store.h"

#include <algorithm>
#include <iterator>
#include <utility>

namespace raptor::storage {

using audit::EntityType;
using audit::SystemEntity;
using audit::SystemEvent;
using sql::ColumnType;
using sql::Row;
using sql::Schema;
using sql::Value;

Status AuditStore::Load(const audit::ParsedLog& log) {
  if (loaded_) {
    return Status::InvalidArgument("AuditStore::Load called twice");
  }
  loaded_ = true;
  return Append(log);
}

Status AuditStore::Append(const audit::ParsedLog& log, AppendStats* stats) {
  const std::vector<SystemEntity>& all_entities = log.entities.entities();
  if (all_entities.size() < raw_entities_consumed_) {
    return Status::InvalidArgument(
        "AuditStore::Append requires an entity table extending the batches "
        "already ingested");
  }
  if (!schema_ready_) {
    RAPTOR_RETURN_NOT_OK(InitSchemas());
    schema_ready_ = true;
  }

  for (size_t i = raw_entities_consumed_; i < all_entities.size(); ++i) {
    RAPTOR_RETURN_NOT_OK(AppendEntity(all_entities[i], stats));
  }
  raw_entities_consumed_ = all_entities.size();
  reduction_stats_.input_events += log.events.size();

  bool carry = options_.enable_reduction && options_.carry_over_window;
  // The batch to reduce: with the carry-over window the previous batch's
  // withheld tail is folded in first (re-sorted by start_time, since the
  // new batch may interleave with it), so duplicates spanning the boundary
  // merge exactly as in a single load.
  std::vector<SystemEvent> batch;
  if (carry && !carry_.empty()) {
    batch = std::move(carry_);
    carry_.clear();
    batch.insert(batch.end(), log.events.begin(), log.events.end());
    std::stable_sort(batch.begin(), batch.end(),
                     [](const SystemEvent& a, const SystemEvent& b) {
                       return a.start_time < b.start_time;
                     });
  } else {
    batch = log.events;
  }

  std::vector<SystemEvent> reduced;
  if (options_.enable_reduction) {
    reduced = ReduceEvents(batch, options_.reduction);
  } else {
    reduced = std::move(batch);
  }

  if (carry && !reduced.empty()) {
    // Withhold the tail still inside the merge window: an event whose
    // end_time is within merge_threshold_us of the stream head could still
    // absorb a duplicate from the next (later-timed) batch.
    audit::Timestamp head = 0;
    for (const SystemEvent& ev : reduced) {
      head = std::max(head, ev.end_time);
    }
    const audit::Timestamp cutoff = head - options_.reduction.merge_threshold_us;
    std::vector<SystemEvent> store_now;
    store_now.reserve(reduced.size());
    for (SystemEvent& ev : reduced) {
      (ev.end_time >= cutoff ? carry_ : store_now).push_back(std::move(ev));
    }
    // Bound the window: overflow stores the oldest withheld events now
    // (they only lose their chance at a cross-batch merge).
    if (carry_.size() > options_.max_carry_events) {
      size_t excess = carry_.size() - options_.max_carry_events;
      store_now.insert(store_now.end(),
                       std::make_move_iterator(carry_.begin()),
                       std::make_move_iterator(carry_.begin() + excess));
      carry_.erase(carry_.begin(), carry_.begin() + excess);
      std::stable_sort(store_now.begin(), store_now.end(),
                       [](const SystemEvent& a, const SystemEvent& b) {
                         return a.start_time < b.start_time;
                       });
    }
    reduced = std::move(store_now);
  }
  if (stats != nullptr) stats->carried_events = carry_.size();

  return StoreEvents(std::move(reduced), stats);
}

Status AuditStore::Flush(AppendStats* stats) {
  if (carry_.empty()) return Status::OK();
  std::vector<SystemEvent> tail = std::move(carry_);
  carry_.clear();
  if (stats != nullptr) stats->carried_events = 0;
  return StoreEvents(std::move(tail), stats);
}

/// Renumber (ids are assigned in storage order, densely, and are never
/// reused — retention evicts an id-prefix, so EventById stays O(1)) and
/// append to both backends, keeping the reduction ratio's output side in
/// sync.
Status AuditStore::StoreEvents(std::vector<SystemEvent> events,
                               AppendStats* stats) {
  for (SystemEvent& ev : events) {
    ev.id = static_cast<audit::EventId>(next_event_id_++);
    RAPTOR_RETURN_NOT_OK(AppendEvent(ev, stats));
  }
  // Withheld events count as reduction output: they are already reduced,
  // just not yet visible (Flush moves them without re-reducing). Evicted
  // events stay counted (next_event_id_ is monotonic), so retention does
  // not skew the ratio over the surviving window.
  reduction_stats_.output_events =
      static_cast<size_t>(next_event_id_ - 1) + carry_.size();
  return Status::OK();
}

Status AuditStore::InitSchemas() {
  Schema entity_schema({{"id", ColumnType::kInt64},
                        {"type", ColumnType::kText},
                        {"name", ColumnType::kText},
                        {"path", ColumnType::kText},
                        {"pid", ColumnType::kInt64},
                        {"exename", ColumnType::kText},
                        {"cmd", ColumnType::kText},
                        {"srcip", ColumnType::kText},
                        {"srcport", ColumnType::kInt64},
                        {"dstip", ColumnType::kText},
                        {"dstport", ColumnType::kInt64},
                        {"protocol", ColumnType::kText},
                        {"user", ColumnType::kText},
                        {"grp", ColumnType::kText}});
  RAPTOR_RETURN_NOT_OK(relational_.CreateTable("entities", entity_schema));
  Schema event_schema({{"id", ColumnType::kInt64},
                       {"subject", ColumnType::kInt64},
                       {"object", ColumnType::kInt64},
                       {"op", ColumnType::kText},
                       {"object_type", ColumnType::kText},
                       {"start_time", ColumnType::kInt64},
                       {"end_time", ColumnType::kInt64},
                       {"amount", ColumnType::kInt64},
                       {"failure_code", ColumnType::kInt64}});
  RAPTOR_RETURN_NOT_OK(relational_.CreateTable("events", event_schema));

  // Indexes on the key attributes (Sec III-B). Created before the first
  // row lands: inserts maintain every existing index, so batch appends
  // stay indexed without a rebuild.
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "id"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "name"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "exename"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "dstip"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "type"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "subject"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "object"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "op"));

  graphdb::PropertyGraph& g = graph_.graph();
  g.CreateNodeIndex("file", "name");
  g.CreateNodeIndex("proc", "exename");
  g.CreateNodeIndex("ip", "dstip");
  // Entity-id indexes let propagated `id IN [...]` constraints seed pattern
  // matches with index seeks instead of label scans.
  g.CreateNodeIndex("file", "id");
  g.CreateNodeIndex("proc", "id");
  g.CreateNodeIndex("ip", "id");
  return Status::OK();
}

Status AuditStore::AppendEntity(const SystemEntity& e, AppendStats* stats) {
  if (stats != nullptr) {
    ++stats->appended_entities;
    stats->touched_entities.push_back(e.id);
  }
  RAPTOR_RETURN_NOT_OK(InsertEntityRows(e));
  entities_.push_back(e);
  return Status::OK();
}

Status AuditStore::InsertEntityRows(const SystemEntity& e) {
  Row row;
  row.reserve(14);
  row.emplace_back(static_cast<int64_t>(e.id));
  row.emplace_back(audit::EntityTypeName(e.type));
  row.emplace_back(e.name);
  row.emplace_back(e.path);
  row.emplace_back(static_cast<int64_t>(e.pid));
  row.emplace_back(e.exename);
  row.emplace_back(e.cmd);
  row.emplace_back(e.srcip);
  row.emplace_back(static_cast<int64_t>(e.srcport));
  row.emplace_back(e.dstip);
  row.emplace_back(static_cast<int64_t>(e.dstport));
  row.emplace_back(e.protocol);
  row.emplace_back(e.user);
  row.emplace_back(e.group);
  RAPTOR_RETURN_NOT_OK(relational_.Insert("entities", std::move(row)));

  graphdb::PropertyMap props;
  props.emplace("id", Value(static_cast<int64_t>(e.id)));
  switch (e.type) {
    case EntityType::kFile:
      props.emplace("name", Value(e.name));
      props.emplace("path", Value(e.path));
      break;
    case EntityType::kProcess:
      props.emplace("exename", Value(e.exename));
      props.emplace("pid", Value(static_cast<int64_t>(e.pid)));
      if (!e.cmd.empty()) props.emplace("cmd", Value(e.cmd));
      break;
    case EntityType::kNetwork:
      props.emplace("srcip", Value(e.srcip));
      props.emplace("srcport", Value(static_cast<int64_t>(e.srcport)));
      props.emplace("dstip", Value(e.dstip));
      props.emplace("dstport", Value(static_cast<int64_t>(e.dstport)));
      props.emplace("protocol", Value(e.protocol));
      break;
  }
  if (!e.user.empty()) props.emplace("user", Value(e.user));
  graphdb::NodeId node =
      graph_.graph().AddNode(audit::EntityTypeName(e.type), std::move(props));
  entity_to_node_.emplace(e.id, node);
  return Status::OK();
}

Status AuditStore::AppendEvent(const SystemEvent& ev, AppendStats* stats) {
  if (entity_to_node_.find(ev.subject) == entity_to_node_.end() ||
      entity_to_node_.find(ev.object) == entity_to_node_.end()) {
    return Status::InvalidArgument(
        "event references an entity absent from the store");
  }
  if (stats != nullptr) {
    ++stats->appended_events;
    stats->touched_entities.push_back(ev.subject);
    stats->touched_entities.push_back(ev.object);
  }
  RAPTOR_RETURN_NOT_OK(InsertEventRows(ev));
  events_.push_back(ev);
  return Status::OK();
}

Status AuditStore::InsertEventRows(const SystemEvent& ev) {
  auto sit = entity_to_node_.find(ev.subject);
  auto oit = entity_to_node_.find(ev.object);
  if (sit == entity_to_node_.end() || oit == entity_to_node_.end()) {
    return Status::InvalidArgument(
        "event references an entity absent from the store");
  }
  Row row;
  row.reserve(9);
  row.emplace_back(static_cast<int64_t>(ev.id));
  row.emplace_back(static_cast<int64_t>(ev.subject));
  row.emplace_back(static_cast<int64_t>(ev.object));
  row.emplace_back(audit::EventOpName(ev.op));
  row.emplace_back(audit::EntityTypeName(ev.object_type));
  row.emplace_back(static_cast<int64_t>(ev.start_time));
  row.emplace_back(static_cast<int64_t>(ev.end_time));
  row.emplace_back(static_cast<int64_t>(ev.amount));
  row.emplace_back(static_cast<int64_t>(ev.failure_code));
  RAPTOR_RETURN_NOT_OK(relational_.Insert("events", std::move(row)));

  graphdb::PropertyMap props;
  props.emplace("id", Value(static_cast<int64_t>(ev.id)));
  // The operation doubles as the relationship type and as a property so
  // Cypher WHERE clauses can express complex op expressions.
  props.emplace("op", Value(audit::EventOpName(ev.op)));
  props.emplace("start_time", Value(static_cast<int64_t>(ev.start_time)));
  props.emplace("end_time", Value(static_cast<int64_t>(ev.end_time)));
  props.emplace("amount", Value(static_cast<int64_t>(ev.amount)));
  graph_.graph().AddEdge(sit->second, oit->second, audit::EventOpName(ev.op),
                         std::move(props));
  return Status::OK();
}

graphdb::NodeId AuditStore::NodeForEntity(audit::EntityId id) const {
  auto it = entity_to_node_.find(id);
  return it == entity_to_node_.end() ? graphdb::kInvalidNode : it->second;
}

StoreSnapshotState AuditStore::ExportSnapshotState() const {
  StoreSnapshotState state;
  state.entities = entities_;
  state.events = events_;
  state.carry = carry_;
  state.next_event_id = next_event_id_;
  state.evicted_through = evicted_through_;
  state.raw_entities_consumed = raw_entities_consumed_;
  state.reduction_input_events = reduction_stats_.input_events;
  return state;
}

Status AuditStore::RestoreFrom(StoreSnapshotState state) {
  if (loaded_ || schema_ready_ || !entities_.empty()) {
    return Status::InvalidArgument(
        "AuditStore::RestoreFrom requires a fresh store");
  }
  if (state.events.size() + state.evicted_through !=
      state.next_event_id - 1) {
    return Status::InvalidArgument(
        "snapshot state event ids are not a dense range");
  }
  entities_ = std::move(state.entities);
  events_ = std::move(state.events);
  carry_ = std::move(state.carry);
  next_event_id_ = state.next_event_id;
  evicted_through_ = state.evicted_through;
  raw_entities_consumed_ = state.raw_entities_consumed;
  reduction_stats_.input_events =
      static_cast<size_t>(state.reduction_input_events);
  reduction_stats_.output_events =
      static_cast<size_t>(next_event_id_ - 1) + carry_.size();
  loaded_ = true;
  return RebuildBackends();
}

Result<size_t> AuditStore::EvictEventsThrough(audit::EventId watermark) {
  if (watermark <= evicted_through_) return size_t{0};
  if (watermark > next_event_id_ - 1) {
    return Status::InvalidArgument(
        "retention watermark beyond the newest stored event");
  }
  const size_t drop = static_cast<size_t>(watermark - evicted_through_);
  events_.erase(events_.begin(), events_.begin() + drop);
  evicted_through_ = watermark;
  RAPTOR_RETURN_NOT_OK(RebuildBackends());
  return drop;
}

Status AuditStore::RebuildBackends() {
  // Keep the configured query options across the teardown; everything
  // else (tables, indexes, graph, node ids) is reproduced by re-running
  // the inserts in id order.
  sql::SelectOptions relational_opts = relational_.options();
  graphdb::MatchOptions graph_opts = graph_.options();
  relational_ = sql::Database();
  graph_ = graphdb::GraphDatabase();
  relational_.options() = relational_opts;
  graph_.options() = graph_opts;
  entity_to_node_.clear();
  schema_ready_ = false;
  RAPTOR_RETURN_NOT_OK(InitSchemas());
  schema_ready_ = true;
  for (const SystemEntity& e : entities_) {
    RAPTOR_RETURN_NOT_OK(InsertEntityRows(e));
  }
  for (const SystemEvent& ev : events_) {
    RAPTOR_RETURN_NOT_OK(InsertEventRows(ev));
  }
  return Status::OK();
}

}  // namespace raptor::storage
