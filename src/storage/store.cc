#include "storage/store.h"

namespace raptor::storage {

using audit::EntityType;
using audit::SystemEntity;
using audit::SystemEvent;
using sql::ColumnType;
using sql::Row;
using sql::Schema;
using sql::Value;

Status AuditStore::Load(const audit::ParsedLog& log) {
  if (loaded_) {
    return Status::InvalidArgument("AuditStore::Load called twice");
  }
  loaded_ = true;
  return Append(log);
}

Status AuditStore::Append(const audit::ParsedLog& log) {
  const std::vector<SystemEntity>& all_entities = log.entities.entities();
  if (all_entities.size() < raw_entities_consumed_) {
    return Status::InvalidArgument(
        "AuditStore::Append requires an entity table extending the batches "
        "already ingested");
  }
  if (!schema_ready_) {
    RAPTOR_RETURN_NOT_OK(InitSchemas());
    schema_ready_ = true;
  }

  for (size_t i = raw_entities_consumed_; i < all_entities.size(); ++i) {
    RAPTOR_RETURN_NOT_OK(AppendEntity(all_entities[i]));
  }
  raw_entities_consumed_ = all_entities.size();

  // Reduce the batch's events independently (duplicates spanning batches
  // are not merged — reduction windows close at the batch boundary) and
  // renumber so ids stay dense positions into events().
  std::vector<SystemEvent> batch = log.events;
  std::vector<SystemEvent> reduced;
  if (options_.enable_reduction) {
    ReductionStats batch_stats;
    reduced = ReduceEvents(batch, options_.reduction, &batch_stats);
    reduction_stats_.input_events += batch_stats.input_events;
    reduction_stats_.output_events += batch_stats.output_events;
  } else {
    reduced = std::move(batch);
    reduction_stats_.input_events += reduced.size();
    reduction_stats_.output_events += reduced.size();
  }
  for (SystemEvent& ev : reduced) {
    ev.id = static_cast<audit::EventId>(events_.size()) + 1;
    RAPTOR_RETURN_NOT_OK(AppendEvent(ev));
  }
  return Status::OK();
}

Status AuditStore::InitSchemas() {
  Schema entity_schema({{"id", ColumnType::kInt64},
                        {"type", ColumnType::kText},
                        {"name", ColumnType::kText},
                        {"path", ColumnType::kText},
                        {"pid", ColumnType::kInt64},
                        {"exename", ColumnType::kText},
                        {"cmd", ColumnType::kText},
                        {"srcip", ColumnType::kText},
                        {"srcport", ColumnType::kInt64},
                        {"dstip", ColumnType::kText},
                        {"dstport", ColumnType::kInt64},
                        {"protocol", ColumnType::kText},
                        {"user", ColumnType::kText},
                        {"grp", ColumnType::kText}});
  RAPTOR_RETURN_NOT_OK(relational_.CreateTable("entities", entity_schema));
  Schema event_schema({{"id", ColumnType::kInt64},
                       {"subject", ColumnType::kInt64},
                       {"object", ColumnType::kInt64},
                       {"op", ColumnType::kText},
                       {"object_type", ColumnType::kText},
                       {"start_time", ColumnType::kInt64},
                       {"end_time", ColumnType::kInt64},
                       {"amount", ColumnType::kInt64},
                       {"failure_code", ColumnType::kInt64}});
  RAPTOR_RETURN_NOT_OK(relational_.CreateTable("events", event_schema));

  // Indexes on the key attributes (Sec III-B). Created before the first
  // row lands: inserts maintain every existing index, so batch appends
  // stay indexed without a rebuild.
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "id"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "name"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "exename"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "dstip"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("entities", "type"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "subject"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "object"));
  RAPTOR_RETURN_NOT_OK(relational_.CreateIndex("events", "op"));

  graphdb::PropertyGraph& g = graph_.graph();
  g.CreateNodeIndex("file", "name");
  g.CreateNodeIndex("proc", "exename");
  g.CreateNodeIndex("ip", "dstip");
  // Entity-id indexes let propagated `id IN [...]` constraints seed pattern
  // matches with index seeks instead of label scans.
  g.CreateNodeIndex("file", "id");
  g.CreateNodeIndex("proc", "id");
  g.CreateNodeIndex("ip", "id");
  return Status::OK();
}

Status AuditStore::AppendEntity(const SystemEntity& e) {
  Row row;
  row.reserve(14);
  row.emplace_back(static_cast<int64_t>(e.id));
  row.emplace_back(audit::EntityTypeName(e.type));
  row.emplace_back(e.name);
  row.emplace_back(e.path);
  row.emplace_back(static_cast<int64_t>(e.pid));
  row.emplace_back(e.exename);
  row.emplace_back(e.cmd);
  row.emplace_back(e.srcip);
  row.emplace_back(static_cast<int64_t>(e.srcport));
  row.emplace_back(e.dstip);
  row.emplace_back(static_cast<int64_t>(e.dstport));
  row.emplace_back(e.protocol);
  row.emplace_back(e.user);
  row.emplace_back(e.group);
  RAPTOR_RETURN_NOT_OK(relational_.Insert("entities", std::move(row)));

  graphdb::PropertyMap props;
  props.emplace("id", Value(static_cast<int64_t>(e.id)));
  switch (e.type) {
    case EntityType::kFile:
      props.emplace("name", Value(e.name));
      props.emplace("path", Value(e.path));
      break;
    case EntityType::kProcess:
      props.emplace("exename", Value(e.exename));
      props.emplace("pid", Value(static_cast<int64_t>(e.pid)));
      if (!e.cmd.empty()) props.emplace("cmd", Value(e.cmd));
      break;
    case EntityType::kNetwork:
      props.emplace("srcip", Value(e.srcip));
      props.emplace("srcport", Value(static_cast<int64_t>(e.srcport)));
      props.emplace("dstip", Value(e.dstip));
      props.emplace("dstport", Value(static_cast<int64_t>(e.dstport)));
      props.emplace("protocol", Value(e.protocol));
      break;
  }
  if (!e.user.empty()) props.emplace("user", Value(e.user));
  graphdb::NodeId node =
      graph_.graph().AddNode(audit::EntityTypeName(e.type), std::move(props));
  entity_to_node_.emplace(e.id, node);
  entities_.push_back(e);
  return Status::OK();
}

Status AuditStore::AppendEvent(const SystemEvent& ev) {
  auto sit = entity_to_node_.find(ev.subject);
  auto oit = entity_to_node_.find(ev.object);
  if (sit == entity_to_node_.end() || oit == entity_to_node_.end()) {
    return Status::InvalidArgument(
        "event references an entity absent from the store");
  }
  Row row;
  row.reserve(9);
  row.emplace_back(static_cast<int64_t>(ev.id));
  row.emplace_back(static_cast<int64_t>(ev.subject));
  row.emplace_back(static_cast<int64_t>(ev.object));
  row.emplace_back(audit::EventOpName(ev.op));
  row.emplace_back(audit::EntityTypeName(ev.object_type));
  row.emplace_back(static_cast<int64_t>(ev.start_time));
  row.emplace_back(static_cast<int64_t>(ev.end_time));
  row.emplace_back(static_cast<int64_t>(ev.amount));
  row.emplace_back(static_cast<int64_t>(ev.failure_code));
  RAPTOR_RETURN_NOT_OK(relational_.Insert("events", std::move(row)));

  graphdb::PropertyMap props;
  props.emplace("id", Value(static_cast<int64_t>(ev.id)));
  // The operation doubles as the relationship type and as a property so
  // Cypher WHERE clauses can express complex op expressions.
  props.emplace("op", Value(audit::EventOpName(ev.op)));
  props.emplace("start_time", Value(static_cast<int64_t>(ev.start_time)));
  props.emplace("end_time", Value(static_cast<int64_t>(ev.end_time)));
  props.emplace("amount", Value(static_cast<int64_t>(ev.amount)));
  graph_.graph().AddEdge(sit->second, oit->second, audit::EventOpName(ev.op),
                         std::move(props));
  events_.push_back(ev);
  return Status::OK();
}

graphdb::NodeId AuditStore::NodeForEntity(audit::EntityId id) const {
  auto it = entity_to_node_.find(id);
  return it == entity_to_node_.end() ? graphdb::kInvalidNode : it->second;
}

}  // namespace raptor::storage
