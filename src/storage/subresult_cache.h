// Per-epoch shared-subresult cache for multi-query optimization.
//
// When hundreds of standing hunts refresh against the same store epoch,
// many of them compile to structurally-identical data queries (shared seed
// probes, shared first-hop scans, duplicated technique templates across
// tenants). Executing each one from scratch repeats the same scans.
// QueryResultCache memoizes whole block results keyed by the exact query
// text + execution-shape key: the store is immutable between epochs (reads
// happen under the service's writer-preference gate), so a cached result is
// valid until the owner clears the cache at the next epoch bump (or any
// exclusive store mutation, e.g. retention rebuilds).
//
// Deliberately NOT single-flight: two hunts missing concurrently both
// execute and the first Insert wins. Coupling a waiting hunt to another
// hunt's cancellation/deadline would leak one tenant's policy into
// another's results; redundant execution under a concurrent miss is the
// cheaper failure mode, and hit counters still demonstrate sharing.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

namespace raptor::storage {

template <typename ResultT>
class QueryResultCache {
 public:
  explicit QueryResultCache(size_t max_entries = 1024)
      : max_entries_(max_entries) {}

  /// Returns the cached result for `key`, or nullptr on miss. Hit/miss
  /// counters are updated either way.
  std::shared_ptr<const ResultT> Lookup(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }

  /// Stores `result` under `key`. First insert wins; a concurrent
  /// duplicate is dropped. Inserts past the entry cap are dropped too —
  /// the cache only lives one epoch, so hygiene beats eviction policy.
  void Insert(const std::string& key, std::shared_ptr<const ResultT> result) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.size() >= max_entries_) return;
    entries_.emplace(key, std::move(result));
  }

  /// Drops all entries. Counters survive so callers can report totals
  /// across epochs.
  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const ResultT>> entries_;
  size_t max_entries_;
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
};

}  // namespace raptor::storage
