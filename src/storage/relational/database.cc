#include "storage/relational/database.h"

namespace raptor::sql {

Status Database::CreateTable(std::string_view name, Schema schema) {
  std::string key(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table exists: " + key);
  }
  tables_.emplace(key,
                  std::make_unique<Table>(key, std::move(schema),
                                          shard_count_));
  return Status::OK();
}

Status Database::Insert(std::string_view table, Row row) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) {
    return Status::NotFound("unknown table: " + std::string(table));
  }
  return t->Insert(std::move(row));
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) {
    return Status::NotFound("unknown table: " + std::string(table));
  }
  return t->CreateIndex(column);
}

Result<ResultSet> Database::Query(std::string_view sql,
                                  ExecStats* stats) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(stmt.value(), stats);
}

Result<ResultSet> Database::Execute(const SelectStmt& stmt,
                                    ExecStats* stats) const {
  return ExecuteSelect(stmt, *this, options_, stats);
}

Result<BlockResultSet> Database::QueryBlocks(std::string_view sql,
                                             ExecStats* stats) const {
  return QueryBlocks(sql, options_, stats);
}

Result<BlockResultSet> Database::QueryBlocks(std::string_view sql,
                                             const SelectOptions& options,
                                             ExecStats* stats) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return ExecuteSelectBlocks(stmt.value(), *this, options, stats);
}

double Database::EstimateCost(std::string_view sql) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return 0.0;
  return EstimateSelectCost(stmt.value(), *this);
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace raptor::sql
