#include "storage/relational/database.h"

#include "obs/trace.h"
#include "storage/subresult_cache.h"

namespace raptor::sql {

namespace {

/// Cache key for a memoized execution: the query text plus every option
/// that can change the result rows or their order (parallel merge order
/// depends on morsel/shard geometry). Cancel, deadline, and the cache
/// pointer itself are excluded — they never change a successful result.
std::string SubresultCacheKey(std::string_view sql, const SelectOptions& o) {
  std::string key(sql);
  key += '\x1f';
  key += std::to_string(o.push_limit) + ',' +
         std::to_string(o.streaming_distinct) + ',' +
         std::to_string(o.columnar_scan) + ',' +
         std::to_string(o.morsel_scheduling) + ',' +
         std::to_string(o.morsel_size) + ',' +
         std::to_string(o.parallel_shards) + ',' +
         std::to_string(o.parallel_min_rows) + ',' +
         std::to_string(o.parallel_min_limit);
  return key;
}

}  // namespace

Status Database::CreateTable(std::string_view name, Schema schema) {
  std::string key(name);
  if (tables_.count(key)) {
    return Status::AlreadyExists("table exists: " + key);
  }
  tables_.emplace(key,
                  std::make_unique<Table>(key, std::move(schema),
                                          shard_count_));
  return Status::OK();
}

Status Database::Insert(std::string_view table, Row row) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) {
    return Status::NotFound("unknown table: " + std::string(table));
  }
  return t->Insert(std::move(row));
}

Status Database::CreateIndex(std::string_view table, std::string_view column) {
  Table* t = GetMutableTable(table);
  if (t == nullptr) {
    return Status::NotFound("unknown table: " + std::string(table));
  }
  return t->CreateIndex(column);
}

Result<ResultSet> Database::Query(std::string_view sql,
                                  ExecStats* stats) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  return Execute(stmt.value(), stats);
}

Result<ResultSet> Database::Execute(const SelectStmt& stmt,
                                    ExecStats* stats) const {
  return ExecuteSelect(stmt, *this, options_, stats);
}

Result<BlockResultSet> Database::QueryBlocks(std::string_view sql,
                                             ExecStats* stats) const {
  return QueryBlocks(sql, options_, stats);
}

Result<BlockResultSet> Database::QueryBlocks(std::string_view sql,
                                             const SelectOptions& options,
                                             ExecStats* stats) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return stmt.status();
  // Shared-subresult hook (multi-query optimization): memoize full-scan
  // executions only — parallel LIMIT row-claiming races the shared budget,
  // so LIMIT queries bypass the cache.
  if (options.result_cache != nullptr && stmt.value().limit < 0) {
    std::string key = SubresultCacheKey(sql, options);
    if (auto cached = options.result_cache->Lookup(key)) {
      obs::Add(options.trace, "subresult_cache_hits", 1);
      return *cached;
    }
    obs::Add(options.trace, "subresult_cache_misses", 1);
    auto result = ExecuteSelectBlocks(stmt.value(), *this, options, stats);
    if (result.ok()) {
      options.result_cache->Insert(
          key, std::make_shared<const BlockResultSet>(result.value()));
    }
    return result;
  }
  return ExecuteSelectBlocks(stmt.value(), *this, options, stats);
}

double Database::EstimateCost(std::string_view sql) const {
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) return 0.0;
  return EstimateSelectCost(stmt.value(), *this);
}

const Table* Database::FindTable(std::string_view name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* Database::GetMutableTable(std::string_view name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace raptor::sql
