// In-memory row-store table with hash equality indexes, the storage unit of
// the embedded relational engine that substitutes PostgreSQL.
//
// Sharding: rows and index storage partition into a power-of-two number of
// entity-id-hashed shards (shard = row id & mask; row ids stay dense and
// global, assigned in insert order). Each shard owns its rows and its slice
// of every hash index, which lets the SQL executor partition base-table
// scans and hash-join probe sides one worker per shard. The pre-sharding
// accessors that return whole-table references (rows(), Probe() without a
// shard argument) remain valid as the single-shard (shard_count() == 1)
// case; row(id) and the per-shard probes work for any shard count.
//
// Thread-safety contract: construction and mutation (Insert / CreateIndex)
// are single-threaded; all const member functions are race-free when
// called concurrently from any number of threads.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "storage/columnar.h"
#include "storage/relational/value.h"
#include "storage/shard_layout.h"

namespace raptor::sql {

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
};

/// Table schema: ordered named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Index of `name`, or -1.
  int FindColumn(std::string_view name) const;

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

 private:
  std::vector<Column> columns_;
  // Transparent hash: FindColumn(string_view) probes without allocating.
  std::unordered_map<std::string, int, StringViewHash, std::equal_to<>>
      by_name_;
};

using Row = std::vector<Value>;
using RowId = size_t;

/// Row-store table. Supports appends, full scans, and hash-index-backed
/// equality probes on indexed columns.
class Table {
 public:
  /// `shard_count` is rounded up to a power of two; 1 (the default)
  /// reproduces the unsharded layout exactly.
  Table(std::string name, Schema schema, size_t shard_count = 1);

  /// Append one row. Arity must match the schema; values are checked
  /// loosely (NULL is accepted for any column).
  Status Insert(Row row);

  /// Create (or no-op if present) a hash index on `column` in every shard.
  /// Existing rows are indexed immediately; inserts maintain it.
  Status CreateIndex(std::string_view column);

  bool HasIndex(int column_idx) const;

  /// Row ids whose `column_idx` cell equals `v` (index probe).
  /// Precondition: HasIndex(column_idx) && shard_count() == 1 (the sharded
  /// layout exposes the per-shard probe below).
  const std::vector<RowId>& Probe(int column_idx, const Value& v) const;

  /// The index bucket of `shard` only (global row ids, ascending); a
  /// value's full candidate set is the disjoint union of its buckets
  /// across all shards. Precondition: HasIndex(column_idx) &&
  /// shard < shard_count().
  const std::vector<RowId>& Probe(int column_idx, const Value& v,
                                  size_t shard) const;

  /// Candidate count for column == v summed over all shards, without
  /// materializing the union (exact for any shard count).
  size_t ProbeCount(int column_idx, const Value& v) const;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  const Row& row(RowId id) const {
    return shards_[layout_.ShardOf(id)].rows[layout_.LocalOf(id)];
  }

  /// Whole-table row storage. Precondition: shard_count() == 1.
  const std::vector<Row>& rows() const { return shards_[0].rows; }

  size_t row_count() const { return row_count_; }
  size_t shard_count() const { return shards_.size(); }

  /// Shard owning row `id`.
  size_t ShardOf(RowId id) const { return layout_.ShardOf(id); }

  /// Row `id`'s offset within its shard — the cell position inside the
  /// shard's frozen columns.
  size_t LocalOf(RowId id) const { return layout_.LocalOf(id); }

  // --- Frozen columnar storage (storage/columnar.h) ------------------------
  // Insert freezes every cell into per-(shard × column) SoA vectors
  // alongside the row store; string cells dictionary-encode against one
  // dictionary per schema column, shared across shards.

  /// Frozen column of (shard, column). Cell positions are the row's local
  /// offset within the shard (ShardLayout::LocalOf).
  const storage::Column& ColumnSlice(size_t shard, int column_idx) const {
    return shards_[shard].cols[column_idx];
  }

  /// Dictionary id of `text` in column `column_idx`'s dictionary, or
  /// storage::kNullDictId when that string never occurs in the column.
  uint32_t LookupColumnDict(int column_idx, std::string_view text) const {
    uint32_t id = col_dicts_[column_idx].Lookup(text);
    return id == kNoSymbol ? storage::kNullDictId : id;
  }

  /// The string behind a dictionary id of column `column_idx`.
  std::string_view ColumnDictName(int column_idx, uint32_t dict_id) const {
    return col_dicts_[column_idx].Name(dict_id);
  }

 private:
  // Keyed directly on Value with a Compare()-consistent hash, so inserts
  // and probes never render the cell to a string.
  using ValueIndex =
      std::unordered_map<Value, std::vector<RowId>, ValueHash, ValueEq>;

  /// One entity-id-hashed partition: the rows whose id hashes here and
  /// this shard's slice of every column index (global row ids).
  struct Shard {
    std::vector<Row> rows;
    std::unordered_map<int, ValueIndex> indexes;  // column index -> index
    std::vector<storage::Column> cols;            // frozen SoA cells
  };

  std::string name_;
  Schema schema_;
  std::vector<Shard> shards_;
  std::vector<StringInterner> col_dicts_;  // one dictionary per column
  storage::ShardLayout layout_;
  size_t row_count_ = 0;
};

}  // namespace raptor::sql
