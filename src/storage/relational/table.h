// In-memory row-store table with hash equality indexes, the storage unit of
// the embedded relational engine that substitutes PostgreSQL.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/interner.h"
#include "common/status.h"
#include "storage/relational/value.h"

namespace raptor::sql {

struct Column {
  std::string name;
  ColumnType type = ColumnType::kText;
};

/// Table schema: ordered named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Index of `name`, or -1.
  int FindColumn(std::string_view name) const;

  const std::vector<Column>& columns() const { return columns_; }
  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }

 private:
  std::vector<Column> columns_;
  // Transparent hash: FindColumn(string_view) probes without allocating.
  std::unordered_map<std::string, int, StringViewHash, std::equal_to<>>
      by_name_;
};

using Row = std::vector<Value>;
using RowId = size_t;

/// Row-store table. Supports appends, full scans, and hash-index-backed
/// equality probes on indexed columns.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  /// Append one row. Arity must match the schema; values are checked
  /// loosely (NULL is accepted for any column).
  Status Insert(Row row);

  /// Create (or no-op if present) a hash index on `column`. Existing rows
  /// are indexed immediately; inserts maintain it.
  Status CreateIndex(std::string_view column);

  bool HasIndex(int column_idx) const;

  /// Row ids whose `column_idx` cell equals `v` (index probe).
  /// Precondition: HasIndex(column_idx).
  const std::vector<RowId>& Probe(int column_idx, const Value& v) const;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

 private:
  // Keyed directly on Value with a Compare()-consistent hash, so inserts
  // and probes never render the cell to a string.
  using ValueIndex =
      std::unordered_map<Value, std::vector<RowId>, ValueHash, ValueEq>;

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  std::unordered_map<int, ValueIndex> indexes_;  // column index -> index
};

}  // namespace raptor::sql
