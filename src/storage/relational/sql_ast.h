// AST for the SQL subset the engine executes: SELECT with multi-table FROM,
// explicit JOIN ... ON, WHERE (AND/OR/NOT, comparisons, LIKE, IN), ORDER BY,
// LIMIT and DISTINCT. This covers everything the TBQL compiler emits plus
// the hand-written "giant SQL" baselines of Tables VIII/X.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/relational/value.h"

namespace raptor::sql {

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnaryNot,
  kInList,
};

enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kLike,
  kNotLike,
  kAnd,
  kOr,
  kAdd,
  kSub,
};

const char* BinaryOpName(BinaryOp op);

struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table;   // alias; may be empty (unqualified)
  std::string column;

  // kBinary / kUnaryNot
  BinaryOp op = BinaryOp::kEq;
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;   // null for kUnaryNot

  // kInList: lhs IN (list...); `negated` for NOT IN
  std::vector<Value> in_list;
  bool negated = false;

  static std::unique_ptr<Expr> MakeLiteral(Value v);
  static std::unique_ptr<Expr> MakeColumn(std::string table,
                                          std::string column);
  static std::unique_ptr<Expr> MakeBinary(BinaryOp op,
                                          std::unique_ptr<Expr> lhs,
                                          std::unique_ptr<Expr> rhs);
  static std::unique_ptr<Expr> MakeNot(std::unique_ptr<Expr> inner);

  /// Deep copy.
  std::unique_ptr<Expr> Clone() const;

  /// Render back to SQL text (used by tests and the scheduler's constraint
  /// injection).
  std::string ToString() const;
};

struct SelectItem {
  std::unique_ptr<Expr> expr;  // column ref (general exprs render via eval)
  std::string alias;           // optional
  bool star = false;           // SELECT *
};

struct TableRef {
  std::string table;
  std::string alias;  // defaults to table name

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  std::unique_ptr<Expr> on;
};

struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

struct SelectStmt {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;       // comma-separated FROM list
  std::vector<JoinClause> joins;    // explicit JOIN ... ON
  std::unique_ptr<Expr> where;      // may be null
  std::vector<OrderItem> order_by;
  long long limit = -1;             // -1 = no limit

  std::string ToString() const;
};

}  // namespace raptor::sql
