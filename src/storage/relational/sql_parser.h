// Hand-written lexer + recursive-descent parser for the SQL subset.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/relational/sql_ast.h"

namespace raptor::sql {

enum class TokenKind {
  kIdent,
  kKeyword,   // normalized upper-case
  kInt,
  kFloat,
  kString,
  kSymbol,    // punctuation / operators, e.g. "=", "<=", ",", "(", ")"
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // keyword text is upper-cased
  size_t pos = 0;     // byte offset in the input, for error messages
};

/// Tokenize SQL text. Keywords are case-insensitive; string literals use
/// single quotes with '' escaping.
Result<std::vector<Token>> LexSql(std::string_view sql);

/// Parse a single SELECT statement.
Result<SelectStmt> ParseSelect(std::string_view sql);

}  // namespace raptor::sql
