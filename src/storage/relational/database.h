// Database facade for the embedded relational engine: table DDL, inserts,
// indexes and SQL execution. Substitutes PostgreSQL in the paper's storage
// layer.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/relational/sql_executor.h"
#include "storage/relational/sql_parser.h"
#include "storage/relational/table.h"

namespace raptor::sql {

/// Default storage shard count used by the database facade (a raw Table
/// still defaults to one shard).
constexpr size_t kDefaultShardCount = 4;

class Database : public Catalog {
 public:
  /// Every table created through this facade partitions its rows and
  /// indexes into `shard_count` entity-id-hashed shards (rounded up to a
  /// power of two), enabling shard-parallel SELECT execution.
  explicit Database(size_t shard_count = kDefaultShardCount)
      : shard_count_(shard_count) {}

  /// Create a new empty table. Fails with AlreadyExists on name collision.
  Status CreateTable(std::string_view name, Schema schema);

  /// Streaming toggles applied to every query executed through this facade.
  SelectOptions& options() { return options_; }
  const SelectOptions& options() const { return options_; }

  /// Insert one row into `table`.
  Status Insert(std::string_view table, Row row);

  /// Create a hash index on table.column.
  Status CreateIndex(std::string_view table, std::string_view column);

  /// Parse and execute a SELECT statement.
  Result<ResultSet> Query(std::string_view sql, ExecStats* stats = nullptr) const;

  /// Execute an already-parsed statement.
  Result<ResultSet> Execute(const SelectStmt& stmt,
                            ExecStats* stats = nullptr) const;

  /// Streaming variants returning chunked block results. The options
  /// overload lets per-request settings (HuntService cancellation flags)
  /// override the facade defaults without mutating shared state.
  Result<BlockResultSet> QueryBlocks(std::string_view sql,
                                     ExecStats* stats = nullptr) const;
  Result<BlockResultSet> QueryBlocks(std::string_view sql,
                                     const SelectOptions& options,
                                     ExecStats* stats = nullptr) const;

  /// Plan-time row-visit estimate for a SELECT text (EstimateSelectCost on
  /// the parsed statement); 0.0 when the text does not parse — the price of
  /// an unrunnable query is nothing, its Submit will fail fast anyway.
  double EstimateCost(std::string_view sql) const;

  // Catalog:
  const Table* FindTable(std::string_view name) const override;

  Table* GetMutableTable(std::string_view name);

  size_t table_count() const { return tables_.size(); }

 private:
  std::map<std::string, std::unique_ptr<Table>, std::less<>> tables_;
  SelectOptions options_;
  size_t shard_count_ = kDefaultShardCount;
};

}  // namespace raptor::sql
