#include "storage/relational/table.h"

#include "common/strings.h"

namespace raptor::sql {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, static_cast<int>(i));
  }
}

int Schema::FindColumn(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  schema_.size(), row.size()));
  }
  RowId id = rows_.size();
  for (auto& [col, index] : indexes_) {
    index[row[col]].push_back(id);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column) {
  int col = schema_.FindColumn(column);
  if (col < 0) {
    return Status::NotFound(StrFormat("no column %s in table %s",
                                      std::string(column).c_str(),
                                      name_.c_str()));
  }
  if (indexes_.count(col)) return Status::OK();
  auto& index = indexes_[col];
  for (RowId id = 0; id < rows_.size(); ++id) {
    index[rows_[id][col]].push_back(id);
  }
  return Status::OK();
}

bool Table::HasIndex(int column_idx) const {
  return indexes_.count(column_idx) > 0;
}

const std::vector<RowId>& Table::Probe(int column_idx, const Value& v) const {
  static const std::vector<RowId> kEmpty;
  auto it = indexes_.find(column_idx);
  if (it == indexes_.end()) return kEmpty;
  auto jt = it->second.find(v);
  return jt == it->second.end() ? kEmpty : jt->second;
}

}  // namespace raptor::sql
