#include "storage/relational/table.h"

#include "common/strings.h"

namespace raptor::sql {

namespace {

const std::vector<RowId> kNoRows;

}  // namespace

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    by_name_.emplace(columns_[i].name, static_cast<int>(i));
  }
}

int Schema::FindColumn(std::string_view name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? -1 : it->second;
}

Table::Table(std::string name, Schema schema, size_t shard_count)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      layout_(shard_count) {
  shards_.resize(layout_.count());
  for (Shard& s : shards_) s.cols.resize(schema_.size());
  col_dicts_.resize(schema_.size());
}

Status Table::Insert(Row row) {
  if (row.size() != schema_.size()) {
    return Status::InvalidArgument(
        StrFormat("table %s expects %zu columns, got %zu", name_.c_str(),
                  schema_.size(), row.size()));
  }
  RowId id = row_count_++;
  Shard& shard = shards_[layout_.ShardOf(id)];
  for (auto& [col, index] : shard.indexes) {
    index[row[col]].push_back(id);
  }
  size_t pos = shard.rows.size();  // == layout_.LocalOf(id)
  for (size_t c = 0; c < row.size(); ++c) {
    shard.cols[c].Append(pos, row[c], &col_dicts_[c]);
  }
  shard.rows.push_back(std::move(row));
  return Status::OK();
}

Status Table::CreateIndex(std::string_view column) {
  int col = schema_.FindColumn(column);
  if (col < 0) {
    return Status::NotFound(StrFormat("no column %s in table %s",
                                      std::string(column).c_str(),
                                      name_.c_str()));
  }
  if (shards_[0].indexes.count(col)) return Status::OK();
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = shards_[s];
    ValueIndex& index = shard.indexes[col];
    for (size_t local = 0; local < shard.rows.size(); ++local) {
      RowId id = layout_.GlobalOf(s, local);
      index[shard.rows[local][col]].push_back(id);
    }
  }
  return Status::OK();
}

bool Table::HasIndex(int column_idx) const {
  // Indexes are created in every shard at once; shard 0 is authoritative.
  return shards_[0].indexes.count(column_idx) > 0;
}

const std::vector<RowId>& Table::Probe(int column_idx, const Value& v) const {
  return Probe(column_idx, v, 0);
}

const std::vector<RowId>& Table::Probe(int column_idx, const Value& v,
                                       size_t shard) const {
  auto it = shards_[shard].indexes.find(column_idx);
  if (it == shards_[shard].indexes.end()) return kNoRows;
  auto jt = it->second.find(v);
  return jt == it->second.end() ? kNoRows : jt->second;
}

size_t Table::ProbeCount(int column_idx, const Value& v) const {
  size_t count = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    count += Probe(column_idx, v, s).size();
  }
  return count;
}

}  // namespace raptor::sql
