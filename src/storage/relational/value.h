// Typed cell values for the embedded relational engine.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <variant>
#include <vector>

#include "common/hash.h"

namespace raptor::sql {

enum class ColumnType {
  kInt64 = 0,
  kDouble,
  kText,
};

const char* ColumnTypeName(ColumnType type);

/// A dynamically typed cell: NULL, INT64, DOUBLE or TEXT.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const;      // numeric coercion; 0 for non-numeric
  double AsDouble() const;    // numeric coercion; 0.0 for non-numeric
  const std::string& AsText() const;  // empty string if not text

  /// Render for display and for index keys.
  std::string ToString() const;

  /// Three-way comparison with SQL-ish semantics: NULL sorts first; numeric
  /// types compare numerically (with int/double coercion); text compares
  /// lexicographically; numeric < text across types.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

/// Hash consistent with Compare() equality: values comparing equal hash
/// equal, including across int/double coercion (Value(1) == Value(1.0)).
/// Enables Value-keyed hash indexes and IN-list sets with no ToString()
/// allocation per probe.
struct ValueHash {
  size_t operator()(const Value& v) const;
};

struct ValueEq {
  bool operator()(const Value& a, const Value& b) const {
    return a.Compare(b) == 0;
  }
};

/// Hash/equality over whole value rows (join keys, DISTINCT): replaces the
/// old per-row ToString() key concatenation with direct hashing.
struct ValueRowHash {
  size_t operator()(const std::vector<Value>& row) const {
    size_t h = 0x9e3779b97f4a7c15ULL;
    ValueHash vh;
    for (const Value& v : row) h = HashCombine(h, vh(v));
    return h;
  }
};

struct ValueRowEq {
  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
    }
    return true;
  }
};

/// Per-statement cache of hashed IN-list membership sets, shared by the SQL
/// and Cypher evaluators: built once per expression on first probe, so each
/// candidate row pays an O(1) set lookup instead of an O(list) scan.
/// ExprT only needs an `in_list` member of std::vector<Value>.
template <typename ExprT>
class InListCache {
 public:
  using Set = std::unordered_set<Value, ValueHash, ValueEq>;

  const Set& Get(const ExprT& e) const {
    auto it = sets_.find(&e);
    if (it == sets_.end()) {
      it = sets_.emplace(&e, Set(e.in_list.begin(), e.in_list.end())).first;
    }
    return it->second;
  }

 private:
  mutable std::unordered_map<const ExprT*, Set> sets_;
};

}  // namespace raptor::sql
