// Typed cell values for the embedded relational engine.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace raptor::sql {

enum class ColumnType {
  kInt64 = 0,
  kDouble,
  kText,
};

const char* ColumnTypeName(ColumnType type);

/// A dynamically typed cell: NULL, INT64, DOUBLE or TEXT.
class Value {
 public:
  Value() : v_(std::monostate{}) {}
  explicit Value(int64_t i) : v_(i) {}
  explicit Value(double d) : v_(d) {}
  explicit Value(std::string s) : v_(std::move(s)) {}
  explicit Value(const char* s) : v_(std::string(s)) {}

  static Value Null() { return Value(); }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const { return std::holds_alternative<int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_text() const { return std::holds_alternative<std::string>(v_); }

  int64_t AsInt() const;      // numeric coercion; 0 for non-numeric
  double AsDouble() const;    // numeric coercion; 0.0 for non-numeric
  const std::string& AsText() const;  // empty string if not text

  /// Render for display and for index keys.
  std::string ToString() const;

  /// Three-way comparison with SQL-ish semantics: NULL sorts first; numeric
  /// types compare numerically (with int/double coercion); text compares
  /// lexicographically; numeric < text across types.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }

 private:
  std::variant<std::monostate, int64_t, double, std::string> v_;
};

}  // namespace raptor::sql
