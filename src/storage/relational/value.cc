#include "storage/relational/value.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string_view>

namespace raptor::sql {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

int64_t Value::AsInt() const {
  if (is_int()) return std::get<int64_t>(v_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  return 0.0;
}

const std::string& Value::AsText() const {
  static const std::string kEmpty;
  if (is_text()) return std::get<std::string>(v_);
  return kEmpty;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
    return buf;
  }
  return std::get<std::string>(v_);
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  bool lhs_num = is_int() || is_double();
  bool rhs_num = other.is_int() || other.is_double();
  if (lhs_num && rhs_num) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    // NaN sorts below every number and equals itself; without this,
    // "equality" via `a < b ? ... : 0` is not transitive and no hash can
    // be consistent with it.
    bool a_nan = std::isnan(a), b_nan = std::isnan(b);
    if (a_nan || b_nan) {
      if (a_nan && b_nan) return 0;
      return a_nan ? -1 : 1;
    }
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (lhs_num != rhs_num) return lhs_num ? -1 : 1;
  const std::string& a = AsText();
  const std::string& b = other.AsText();
  return a < b ? -1 : (a > b ? 1 : 0);
}

size_t ValueHash::operator()(const Value& v) const {
  if (v.is_null()) return 0x9e3779b97f4a7c15ULL;
  if (v.is_int() || v.is_double()) {
    // Compare() coerces int/double to double, so hash the double image to
    // keep Value(1) and Value(1.0) in the same bucket.
    double d = v.AsDouble();
    if (std::isnan(d)) return 0x7ff8dead;  // all NaN payloads compare equal
    if (d == 0.0) d = 0.0;  // collapse -0.0 and +0.0 (they compare equal)
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return std::hash<uint64_t>{}(bits);
  }
  return std::hash<std::string_view>{}(v.AsText());
}

}  // namespace raptor::sql
