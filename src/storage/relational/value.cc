#include "storage/relational/value.h"

#include <cstdio>

namespace raptor::sql {

const char* ColumnTypeName(ColumnType type) {
  switch (type) {
    case ColumnType::kInt64: return "INT";
    case ColumnType::kDouble: return "DOUBLE";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

int64_t Value::AsInt() const {
  if (is_int()) return std::get<int64_t>(v_);
  if (is_double()) return static_cast<int64_t>(std::get<double>(v_));
  return 0;
}

double Value::AsDouble() const {
  if (is_double()) return std::get<double>(v_);
  if (is_int()) return static_cast<double>(std::get<int64_t>(v_));
  return 0.0;
}

const std::string& Value::AsText() const {
  static const std::string kEmpty;
  if (is_text()) return std::get<std::string>(v_);
  return kEmpty;
}

std::string Value::ToString() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(std::get<int64_t>(v_));
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v_));
    return buf;
  }
  return std::get<std::string>(v_);
}

int Value::Compare(const Value& other) const {
  // NULLs first.
  if (is_null() || other.is_null()) {
    if (is_null() && other.is_null()) return 0;
    return is_null() ? -1 : 1;
  }
  bool lhs_num = is_int() || is_double();
  bool rhs_num = other.is_int() || other.is_double();
  if (lhs_num && rhs_num) {
    if (is_int() && other.is_int()) {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    double a = AsDouble(), b = other.AsDouble();
    return a < b ? -1 : (a > b ? 1 : 0);
  }
  if (lhs_num != rhs_num) return lhs_num ? -1 : 1;
  const std::string& a = AsText();
  const std::string& b = other.AsText();
  return a < b ? -1 : (a > b ? 1 : 0);
}

}  // namespace raptor::sql
