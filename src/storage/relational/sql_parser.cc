#include "storage/relational/sql_parser.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace raptor::sql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "SELECT", "DISTINCT", "FROM", "JOIN",  "ON",    "WHERE", "AND",
      "OR",     "NOT",      "LIKE", "IN",    "ORDER", "BY",    "ASC",
      "DESC",   "LIMIT",    "AS",   "NULL",
  };
  return kKeywords;
}

}  // namespace

Result<std::vector<Token>> LexSql(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '_')) {
        ++i;
      }
      std::string word(sql.substr(start, i - start));
      std::string upper = ToUpper(word);
      if (Keywords().count(upper)) {
        tok.kind = TokenKind::kKeyword;
        tok.text = upper;
      } else {
        tok.kind = TokenKind::kIdent;
        tok.text = word;
      }
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < sql.size() && (std::isdigit(static_cast<unsigned char>(sql[i])) ||
                                sql[i] == '.')) {
        if (sql[i] == '.') is_float = true;
        ++i;
      }
      tok.kind = is_float ? TokenKind::kFloat : TokenKind::kInt;
      tok.text = std::string(sql.substr(start, i - start));
    } else if (c == '\'') {
      ++i;
      std::string s;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            s.push_back('\'');
            i += 2;
          } else {
            ++i;
            closed = true;
            break;
          }
        } else {
          s.push_back(sql[i++]);
        }
      }
      if (!closed) {
        return Status::ParseError(
            StrFormat("unterminated string literal at offset %zu", tok.pos));
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(s);
    } else {
      // Multi-char operators first.
      static const char* kTwoChar[] = {"<=", ">=", "!=", "<>"};
      tok.kind = TokenKind::kSymbol;
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (sql.substr(i, 2) == op) {
          tok.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        static const std::string kSingle = "=<>(),.*+-";
        if (kSingle.find(c) == std::string::npos) {
          return Status::ParseError(
              StrFormat("unexpected character '%c' at offset %zu", c, i));
        }
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = sql.size();
  tokens.push_back(end);
  return tokens;
}

namespace {

// Local helper: propagate Status failures out of Result-returning methods.
#define RAPTOR_RETURN_NOT_OK_R(expr)          \
  do {                                        \
    ::raptor::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SelectStmt> ParseSelectStmt() {
    SelectStmt stmt;
    RAPTOR_RETURN_NOT_OK_R(ExpectKeyword("SELECT"));
    if (AcceptKeyword("DISTINCT")) stmt.distinct = true;
    // Select list.
    while (true) {
      SelectItem item;
      if (AcceptSymbol("*")) {
        item.star = true;
      } else {
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (AcceptKeyword("AS")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected alias after AS");
          }
          item.alias = Next().text;
        }
      }
      stmt.items.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    RAPTOR_RETURN_NOT_OK_R(ExpectKeyword("FROM"));
    while (true) {
      auto tref = ParseTableRef();
      if (!tref.ok()) return tref.status();
      stmt.from.push_back(std::move(tref).value());
      if (!AcceptSymbol(",")) break;
    }
    while (AcceptKeyword("JOIN")) {
      JoinClause join;
      auto tref = ParseTableRef();
      if (!tref.ok()) return tref.status();
      join.table = std::move(tref).value();
      RAPTOR_RETURN_NOT_OK_R(ExpectKeyword("ON"));
      auto on = ParseExpr();
      if (!on.ok()) return on.status();
      join.on = std::move(on).value();
      stmt.joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      auto where = ParseExpr();
      if (!where.ok()) return where.status();
      stmt.where = std::move(where).value();
    }
    if (AcceptKeyword("ORDER")) {
      RAPTOR_RETURN_NOT_OK_R(ExpectKeyword("BY"));
      while (true) {
        OrderItem item;
        auto expr = ParseExpr();
        if (!expr.ok()) return expr.status();
        item.expr = std::move(expr).value();
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        stmt.order_by.push_back(std::move(item));
        if (!AcceptSymbol(",")) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInt) return Err("expected LIMIT count");
      stmt.limit = std::stoll(Next().text);
    }
    if (Peek().kind != TokenKind::kEnd) {
      return Err("trailing tokens after statement: '" + Peek().text + "'");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool AcceptKeyword(std::string_view kw) {
    if (Peek().kind == TokenKind::kKeyword && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(std::string_view sym) {
    if (Peek().kind == TokenKind::kSymbol && Peek().text == sym) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(StrFormat("expected %s at offset %zu, got '%s'",
                                          std::string(kw).c_str(), Peek().pos,
                                          Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status ExpectSymbol(std::string_view sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(StrFormat("expected %s at offset %zu, got '%s'",
                                          std::string(sym).c_str(), Peek().pos,
                                          Peek().text.c_str()));
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(
        StrFormat("%s (at offset %zu)", msg.c_str(), Peek().pos));
  }

  Result<TableRef> ParseTableRef() {
    if (Peek().kind != TokenKind::kIdent) return Err("expected table name");
    TableRef ref;
    ref.table = Next().text;
    if (Peek().kind == TokenKind::kIdent) ref.alias = Next().text;
    return ref;
  }

  // expr := and_expr (OR and_expr)*
  Result<std::unique_ptr<Expr>> ParseExpr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptKeyword("OR")) {
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs.status();
      node = Expr::MakeBinary(BinaryOp::kOr, std::move(node),
                              std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (AcceptKeyword("AND")) {
      auto rhs = ParseNot();
      if (!rhs.ok()) return rhs.status();
      node = Expr::MakeBinary(BinaryOp::kAnd, std::move(node),
                              std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseNot() {
    if (AcceptKeyword("NOT")) {
      auto inner = ParseNot();
      if (!inner.ok()) return inner.status();
      return Expr::MakeNot(std::move(inner).value());
    }
    return ParseComparison();
  }

  Result<std::unique_ptr<Expr>> ParseAdditive() {
    auto lhs = ParsePrimary();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();
    while (true) {
      BinaryOp op;
      if (AcceptSymbol("+")) {
        op = BinaryOp::kAdd;
      } else if (AcceptSymbol("-")) {
        op = BinaryOp::kSub;
      } else {
        break;
      }
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      node = Expr::MakeBinary(op, std::move(node), std::move(rhs).value());
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParseComparison() {
    auto lhs = ParseAdditive();
    if (!lhs.ok()) return lhs.status();
    auto node = std::move(lhs).value();

    // LIKE / NOT LIKE / IN / NOT IN
    bool negated = false;
    size_t save = pos_;
    if (AcceptKeyword("NOT")) negated = true;
    if (AcceptKeyword("LIKE")) {
      auto rhs = ParsePrimary();
      if (!rhs.ok()) return rhs.status();
      return Expr::MakeBinary(negated ? BinaryOp::kNotLike : BinaryOp::kLike,
                              std::move(node), std::move(rhs).value());
    }
    if (AcceptKeyword("IN")) {
      RAPTOR_RETURN_NOT_OK_R(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->lhs = std::move(node);
      while (true) {
        auto lit = ParsePrimary();
        if (!lit.ok()) return lit.status();
        auto v = std::move(lit).value();
        if (v->kind != ExprKind::kLiteral) {
          return Err("IN list must contain literals");
        }
        e->in_list.push_back(std::move(v->literal));
        if (!AcceptSymbol(",")) break;
      }
      RAPTOR_RETURN_NOT_OK_R(ExpectSymbol(")"));
      return std::unique_ptr<Expr>(std::move(e));
    }
    if (negated) pos_ = save;  // bare NOT belongs to ParseNot

    struct OpMap {
      const char* sym;
      BinaryOp op;
    };
    static const OpMap kOps[] = {
        {"=", BinaryOp::kEq},  {"!=", BinaryOp::kNe}, {"<>", BinaryOp::kNe},
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
        {">", BinaryOp::kGt},
    };
    for (const OpMap& m : kOps) {
      if (AcceptSymbol(m.sym)) {
        auto rhs = ParseAdditive();
        if (!rhs.ok()) return rhs.status();
        return Expr::MakeBinary(m.op, std::move(node), std::move(rhs).value());
      }
    }
    return node;
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInt: {
        Next();
        return Expr::MakeLiteral(Value(static_cast<int64_t>(std::stoll(tok.text))));
      }
      case TokenKind::kFloat: {
        Next();
        return Expr::MakeLiteral(Value(std::stod(tok.text)));
      }
      case TokenKind::kString: {
        Next();
        return Expr::MakeLiteral(Value(tok.text));
      }
      case TokenKind::kKeyword:
        if (tok.text == "NULL") {
          Next();
          return Expr::MakeLiteral(Value::Null());
        }
        return Err("unexpected keyword '" + tok.text + "'");
      case TokenKind::kIdent: {
        Next();
        std::string first = tok.text;
        if (AcceptSymbol(".")) {
          if (Peek().kind != TokenKind::kIdent) {
            return Err("expected column name after '.'");
          }
          return Expr::MakeColumn(first, Next().text);
        }
        return Expr::MakeColumn("", first);
      }
      case TokenKind::kSymbol:
        if (tok.text == "(") {
          Next();
          auto inner = ParseExpr();
          if (!inner.ok()) return inner.status();
          RAPTOR_RETURN_NOT_OK_R(ExpectSymbol(")"));
          return std::move(inner).value();
        }
        return Err("unexpected symbol '" + tok.text + "'");
      case TokenKind::kEnd:
        return Err("unexpected end of input");
    }
    return Err("unexpected token");
  }

#undef RAPTOR_RETURN_NOT_OK_R

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> ParseSelect(std::string_view sql) {
  auto tokens = LexSql(sql);
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens).value());
  return parser.ParseSelectStmt();
}

}  // namespace raptor::sql
