#include "storage/relational/sql_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/deadline.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "storage/shard_parallel.h"

namespace raptor::sql {

namespace {

struct BoundColumn {
  int alias_idx = -1;
  int col_idx = -1;
};

/// Resolves alias.column references against the FROM/JOIN alias list.
class Binder {
 public:
  Binder(const std::vector<std::string>& aliases,
         const std::vector<const Table*>& tables)
      : aliases_(aliases), tables_(tables) {}

  Result<BoundColumn> Resolve(const Expr& col) const {
    BoundColumn out;
    if (!col.table.empty()) {
      for (size_t i = 0; i < aliases_.size(); ++i) {
        if (aliases_[i] == col.table) {
          out.alias_idx = static_cast<int>(i);
          break;
        }
      }
      if (out.alias_idx < 0) {
        return Status::NotFound("unknown table alias: " + col.table);
      }
      out.col_idx = tables_[out.alias_idx]->schema().FindColumn(col.column);
      if (out.col_idx < 0) {
        return Status::NotFound("no column " + col.column + " in " +
                                col.table);
      }
      return out;
    }
    // Unqualified: must be unambiguous across tables.
    for (size_t i = 0; i < tables_.size(); ++i) {
      int c = tables_[i]->schema().FindColumn(col.column);
      if (c >= 0) {
        if (out.alias_idx >= 0) {
          return Status::InvalidArgument("ambiguous column: " + col.column);
        }
        out.alias_idx = static_cast<int>(i);
        out.col_idx = c;
      }
    }
    if (out.alias_idx < 0) {
      return Status::NotFound("unknown column: " + col.column);
    }
    return out;
  }

  size_t alias_count() const { return aliases_.size(); }
  const Table* table(size_t i) const { return tables_[i]; }
  const std::string& alias(size_t i) const { return aliases_[i]; }

 private:
  const std::vector<std::string>& aliases_;
  const std::vector<const Table*>& tables_;
};

using Tuple = std::vector<RowId>;  // one RowId per alias; SIZE_MAX = unbound

constexpr RowId kUnbound = static_cast<RowId>(-1);

/// Expression evaluator over a (possibly partially bound) tuple.
class Evaluator {
 public:
  Evaluator(const Binder& binder) : binder_(binder) {}

  Result<Value> Eval(const Expr& e, const Tuple& tuple) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        auto bc = binder_.Resolve(e);
        if (!bc.ok()) return bc.status();
        RowId rid = tuple[bc.value().alias_idx];
        if (rid == kUnbound) {
          return Status::Internal("column evaluated before alias bound: " +
                                  e.ToString());
        }
        return binder_.table(bc.value().alias_idx)
            ->row(rid)[bc.value().col_idx];
      }
      case ExprKind::kUnaryNot: {
        auto inner = Eval(*e.lhs, tuple);
        if (!inner.ok()) return inner.status();
        return Value(static_cast<int64_t>(!Truthy(inner.value())));
      }
      case ExprKind::kInList: {
        auto lhs = Eval(*e.lhs, tuple);
        if (!lhs.ok()) return lhs.status();
        // Hashed-set probe instead of the old O(list) scan per row.
        bool found = in_sets_.Get(e).count(lhs.value()) > 0;
        return Value(static_cast<int64_t>(e.negated ? !found : found));
      }
      case ExprKind::kBinary: {
        if (e.op == BinaryOp::kAnd) {
          auto l = Eval(*e.lhs, tuple);
          if (!l.ok()) return l.status();
          if (!Truthy(l.value())) return Value(static_cast<int64_t>(0));
          auto r = Eval(*e.rhs, tuple);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        if (e.op == BinaryOp::kOr) {
          auto l = Eval(*e.lhs, tuple);
          if (!l.ok()) return l.status();
          if (Truthy(l.value())) return Value(static_cast<int64_t>(1));
          auto r = Eval(*e.rhs, tuple);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        auto l = Eval(*e.lhs, tuple);
        if (!l.ok()) return l.status();
        auto r = Eval(*e.rhs, tuple);
        if (!r.ok()) return r.status();
        if (e.op == BinaryOp::kAdd || e.op == BinaryOp::kSub) {
          if (l.value().is_double() || r.value().is_double()) {
            double a = l.value().AsDouble(), b = r.value().AsDouble();
            return Value(e.op == BinaryOp::kAdd ? a + b : a - b);
          }
          int64_t a = l.value().AsInt(), b = r.value().AsInt();
          return Value(e.op == BinaryOp::kAdd ? a + b : a - b);
        }
        return Value(static_cast<int64_t>(Compare(e.op, l.value(), r.value())));
      }
    }
    return Status::Internal("unreachable expr kind");
  }

  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    if (v.is_int()) return v.AsInt() != 0;
    if (v.is_double()) return v.AsDouble() != 0.0;
    return !v.AsText().empty();
  }

  static bool Compare(BinaryOp op, const Value& l, const Value& r) {
    switch (op) {
      case BinaryOp::kEq: return l.Compare(r) == 0;
      case BinaryOp::kNe: return l.Compare(r) != 0;
      case BinaryOp::kLt: return l.Compare(r) < 0;
      case BinaryOp::kLe: return l.Compare(r) <= 0;
      case BinaryOp::kGt: return l.Compare(r) > 0;
      case BinaryOp::kGe: return l.Compare(r) >= 0;
      case BinaryOp::kLike: return LikeMatch(l.ToString(), r.ToString());
      case BinaryOp::kNotLike: return !LikeMatch(l.ToString(), r.ToString());
      default: return false;
    }
  }

 private:
  const Binder& binder_;
  InListCache<Expr> in_sets_;
};

/// Which aliases an expression references.
void CollectAliases(const Expr& e, const Binder& binder,
                    std::set<int>* aliases) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      auto bc = binder.Resolve(e);
      if (bc.ok()) aliases->insert(bc.value().alias_idx);
      break;
    }
    case ExprKind::kBinary:
      CollectAliases(*e.lhs, binder, aliases);
      CollectAliases(*e.rhs, binder, aliases);
      break;
    case ExprKind::kUnaryNot:
      CollectAliases(*e.lhs, binder, aliases);
      break;
    case ExprKind::kInList:
      CollectAliases(*e.lhs, binder, aliases);
      break;
    case ExprKind::kLiteral:
      break;
  }
}

/// Split an expression into AND-ed conjuncts (ownership stays with caller).
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == BinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
  } else {
    out->push_back(e);
  }
}

struct Conjunct {
  const Expr* expr;
  std::set<int> aliases;
  bool applied = false;
};

/// Hash-join build storage: per-key row ids chained through fixed-size
/// chunks allocated from one arena, instead of one heap vector per key.
/// Appends preserve insertion order (head/tail chain), so probe iteration
/// visits row ids exactly as the per-key vectors used to.
class RowIdChunks {
 public:
  static constexpr uint32_t kNone = static_cast<uint32_t>(-1);

  struct Ref {
    uint32_t head = kNone;
    uint32_t tail = kNone;
  };

  void Append(Ref& ref, RowId rid) {
    if (ref.tail == kNone || chunks_[ref.tail].count == kChunkRows) {
      uint32_t c = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
      if (ref.tail == kNone) {
        ref.head = c;
      } else {
        chunks_[ref.tail].next = c;
      }
      ref.tail = c;
    }
    Chunk& chunk = chunks_[ref.tail];
    chunk.rows[chunk.count++] = rid;
  }

  /// Invoke fn(rid) over the chain in insertion order; stops and returns
  /// false as soon as fn returns false.
  template <class Fn>
  bool ForEach(const Ref& ref, Fn&& fn) const {
    for (uint32_t c = ref.head; c != kNone; c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      for (uint32_t i = 0; i < chunk.count; ++i) {
        if (!fn(chunk.rows[i])) return false;
      }
    }
    return true;
  }

 private:
  static constexpr uint32_t kChunkRows = 8;

  struct Chunk {
    RowId rows[kChunkRows];
    uint32_t count = 0;
    uint32_t next = kNone;
  };

  std::vector<Chunk> chunks_;
};

/// One level of the left-deep join pipeline, planned before execution:
/// equi-join keys against already-bound aliases (with the hash table built
/// on the level's filtered candidates as chunked candidate blocks), plus
/// the residual conjuncts that become fully bound once this level binds.
struct JoinLevel {
  std::vector<std::pair<BoundColumn, BoundColumn>> keys;  // (new, old)
  std::unordered_map<std::vector<Value>, RowIdChunks::Ref, ValueRowHash,
                     ValueRowEq>
      build;
  RowIdChunks build_rows;
  std::vector<const Expr*> ready;
};

/// The streaming executor: threads one tuple through the join levels
/// depth-first and emits projected rows as they complete, so LIMIT can stop
/// the whole pipeline — including the first table's base scan — early.
/// Every method returns true to continue and false to stop (limit reached
/// or evaluation error; check `error` afterwards).
class TuplePipeline {
 public:
  TuplePipeline(const SelectStmt& stmt, const Binder& binder,
                const Evaluator& eval, const std::vector<JoinLevel>& levels,
                const std::vector<std::vector<RowId>>& candidates,
                const std::vector<const Expr*>& projected, bool has_star,
                bool streaming_distinct, size_t local_cap, ExecStats* stats,
                std::vector<Row>* rows)
      : stmt_(stmt),
        binder_(binder),
        eval_(eval),
        levels_(levels),
        candidates_(candidates),
        projected_(projected),
        has_star_(has_star),
        streaming_distinct_(streaming_distinct),
        local_cap_(local_cap),
        stats_(stats),
        rows_(rows) {}

  /// Restrict the first table's iteration to rows of one storage shard;
  /// the parallel driver runs one pipeline per shard with disjoint scans.
  void RestrictFirstTableToShard(size_t shard, size_t shard_count) {
    shard_ = static_cast<int64_t>(shard);
    shard_count_ = shard_count;
  }

  /// Cooperative LIMIT cancellation shared by all parallel workers: every
  /// emitted row claims one slot; the scan stops once `cap` are claimed.
  void SetSharedRowBudget(std::atomic<size_t>* claimed, size_t cap) {
    shared_claimed_ = claimed;
    shared_cap_ = cap;
  }

  /// Cooperative query cancellation (HuntService tickets): polled with the
  /// shared LIMIT budget at every first-table row visit.
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Deadline polled at the same points (amortized clock reads).
  void SetDeadline(
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    deadline_ = DeadlinePoller(deadline);
  }

  /// The first table's iteration list was pre-split per shard at plan
  /// time: iterate it in full instead of skip-scanning by shard mask.
  void SetFirstTablePrepartitioned() { first_prepartitioned_ = true; }

  /// Replace candidates[0] with this worker's per-shard sub-list (used
  /// with SetFirstTablePrepartitioned on the non-lazy parallel path).
  void SetFirstCandidates(const std::vector<RowId>* cand0) {
    first_candidates_ = cand0;
  }

  /// Defer the first table's filtering into the pipeline: scan `seed`
  /// (or all `row_count` rows when scan_all) lazily, applying `filters`
  /// inline, so an early stop skips the tail of the base scan.
  void SetLazyFirstTable(const std::vector<RowId>* seed, bool scan_all,
                         RowId row_count,
                         const std::vector<const Expr*>* filters) {
    lazy0_seed_ = seed;
    lazy0_scan_all_ = scan_all;
    lazy0_row_count_ = row_count;
    lazy0_filters_ = filters;
  }

  void Run() {
    Tuple tuple(levels_.size(), kUnbound);
    EmitFrom(0, tuple);
  }

  const Status& error() const { return error_; }

 private:
  bool EmitFrom(size_t a, Tuple& t) {
    if (a == levels_.size()) return EmitRow(t);
    const JoinLevel& level = levels_[a];
    if (!level.keys.empty()) {
      // Hash join: probe the level's build table with the bound aliases.
      key_scratch_.clear();
      key_scratch_.reserve(level.keys.size());
      for (const auto& [nc, oc] : level.keys) {
        key_scratch_.push_back(
            binder_.table(oc.alias_idx)->row(t[oc.alias_idx])[oc.col_idx]);
      }
      auto it = level.build.find(key_scratch_);
      if (it == level.build.end()) return true;
      return level.build_rows.ForEach(
          it->second, [&](RowId rid) { return BindAndDescend(a, rid, t); });
    }
    if (a == 0 && (lazy0_seed_ != nullptr || lazy0_scan_all_)) {
      return ScanFirstTable(t);
    }
    // Cross product with the filtered candidates (this worker's shard only
    // when the scan is partitioned; a plan-time pre-split replaces the
    // per-row shard mask with this worker's own sub-list).
    if (a == 0 && first_candidates_ != nullptr) {
      for (RowId rid : *first_candidates_) {
        if (BudgetSpent()) return false;
        if (!BindAndDescend(a, rid, t)) return false;
      }
      return true;
    }
    for (RowId rid : candidates_[a]) {
      if (a == 0) {
        if (BudgetSpent()) return false;
        if (SkipsShard(rid)) continue;
      }
      if (!BindAndDescend(a, rid, t)) return false;
    }
    return true;
  }

  /// True when the first table's iteration is partitioned and `rid`
  /// belongs to a different worker's shard. The mask mirrors
  /// storage::ShardLayout's documented round-robin low-bits assignment
  /// (shard_count_ is the table's power-of-two shard count), as does the
  /// start/stride walk in ScanFirstTable — a layout change must update
  /// both alongside ShardLayout::ShardOf.
  bool SkipsShard(RowId rid) const {
    return shard_ >= 0 &&
           (rid & (shard_count_ - 1)) != static_cast<size_t>(shard_);
  }

  /// True once the shared LIMIT budget has been drained by any worker, the
  /// query has been cancelled, or its deadline has passed.
  bool BudgetSpent() {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_.Expired()) return true;
    return shared_claimed_ != nullptr &&
           shared_claimed_->load(std::memory_order_relaxed) >= shared_cap_;
  }

  bool ScanFirstTable(Tuple& t) {
    bool keep_going = true;
    auto visit = [&](RowId rid) {
      if (BudgetSpent()) return false;
      if (stats_ != nullptr) ++stats_->base_rows_scanned;
      t[0] = rid;
      bool pass = true;
      for (const Expr* f : *lazy0_filters_) {
        auto v = eval_.Eval(*f, t);
        if (!v.ok()) {
          error_ = v.status();
          t[0] = kUnbound;
          return false;
        }
        if (!Evaluator::Truthy(v.value())) {
          pass = false;
          break;
        }
      }
      bool cont = pass ? Descend(0, t) : true;
      t[0] = kUnbound;
      return cont;
    };
    if (lazy0_scan_all_) {
      RowId start = shard_ >= 0 ? static_cast<RowId>(shard_) : 0;
      RowId stride = shard_ >= 0 ? shard_count_ : 1;
      for (RowId rid = start; rid < lazy0_row_count_ && keep_going;
           rid += stride) {
        keep_going = visit(rid);
      }
    } else {
      for (RowId rid : *lazy0_seed_) {
        if (!first_prepartitioned_ && SkipsShard(rid)) continue;
        keep_going = visit(rid);
        if (!keep_going) break;
      }
    }
    return keep_going;
  }

  bool BindAndDescend(size_t a, RowId rid, Tuple& t) {
    t[a] = rid;
    bool cont = Descend(a, t);
    t[a] = kUnbound;
    return cont;
  }

  /// `t[a]` just bound: count it, apply the conjuncts that became fully
  /// bound at this level, and continue to the next one.
  bool Descend(size_t a, Tuple& t) {
    if (stats_ != nullptr) ++stats_->join_output_tuples;
    for (const Expr* e : levels_[a].ready) {
      auto v = eval_.Eval(*e, t);
      if (!v.ok()) {
        error_ = v.status();
        return false;
      }
      if (!Evaluator::Truthy(v.value())) return true;
    }
    return EmitFrom(a + 1, t);
  }

  bool EmitRow(const Tuple& t) {
    Row row;
    if (has_star_) {
      for (size_t a = 0; a < levels_.size(); ++a) {
        const Row& src = binder_.table(a)->row(t[a]);
        row.insert(row.end(), src.begin(), src.end());
      }
    }
    for (const Expr* e : projected_) {
      auto v = eval_.Eval(*e, t);
      if (!v.ok()) {
        error_ = v.status();
        return false;
      }
      row.push_back(std::move(v).value());
    }
    if (streaming_distinct_ && !seen_.insert(row).second) return true;
    if (shared_claimed_ != nullptr &&
        shared_claimed_->fetch_add(1, std::memory_order_relaxed) >=
            shared_cap_) {
      return false;  // budget exhausted by other workers; drop the row
    }
    rows_->push_back(std::move(row));
    if (stats_ != nullptr) ++stats_->rows_emitted;
    return rows_->size() < local_cap_;
  }

  const SelectStmt& stmt_;
  const Binder& binder_;
  const Evaluator& eval_;
  const std::vector<JoinLevel>& levels_;
  const std::vector<std::vector<RowId>>& candidates_;
  const std::vector<const Expr*>& projected_;
  bool has_star_;
  bool streaming_distinct_;
  size_t local_cap_;
  int64_t shard_ = -1;     // -1: iterate every shard (serial pipeline)
  size_t shard_count_ = 1;
  std::atomic<size_t>* shared_claimed_ = nullptr;
  size_t shared_cap_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
  DeadlinePoller deadline_;
  bool first_prepartitioned_ = false;
  const std::vector<RowId>* first_candidates_ = nullptr;
  ExecStats* stats_;
  std::vector<Row>* rows_;
  const std::vector<RowId>* lazy0_seed_ = nullptr;
  bool lazy0_scan_all_ = false;
  RowId lazy0_row_count_ = 0;
  const std::vector<const Expr*>* lazy0_filters_ = nullptr;
  Status error_ = Status::OK();
  std::unordered_set<Row, ValueRowHash, ValueRowEq> seen_;
  std::vector<Value> key_scratch_;
};

}  // namespace

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t n = std::min(max_rows, rows.size());
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& v : rows[i]) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > n) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

Result<BlockResultSet> ExecuteSelectBlocks(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const SelectOptions& options,
                                           ExecStats* stats) {
  ExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Bind all table refs (FROM list then JOINs, left-deep order).
  std::vector<std::string> aliases;
  std::vector<const Table*> tables;
  auto bind_table = [&](const TableRef& ref) -> Status {
    const Table* t = catalog.FindTable(ref.table);
    if (t == nullptr) return Status::NotFound("unknown table: " + ref.table);
    for (const std::string& a : aliases) {
      if (a == ref.effective_alias()) {
        return Status::InvalidArgument("duplicate alias: " + a);
      }
    }
    aliases.push_back(ref.effective_alias());
    tables.push_back(t);
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) RAPTOR_RETURN_NOT_OK(bind_table(ref));
  for (const JoinClause& j : stmt.joins) RAPTOR_RETURN_NOT_OK(bind_table(j.table));

  Binder binder(aliases, tables);
  Evaluator eval(binder);

  // Gather conjuncts from WHERE and all JOIN ... ON clauses.
  std::vector<const Expr*> raw_conjuncts;
  SplitConjuncts(stmt.where.get(), &raw_conjuncts);
  for (const JoinClause& j : stmt.joins) {
    SplitConjuncts(j.on.get(), &raw_conjuncts);
  }
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(raw_conjuncts.size());
  for (const Expr* e : raw_conjuncts) {
    Conjunct c;
    c.expr = e;
    CollectAliases(*e, binder, &c.aliases);
    conjuncts.push_back(std::move(c));
  }

  size_t n_aliases = aliases.size();

  // Effective streaming toggles for this statement: a LIMIT on a DISTINCT
  // query counts post-dedup rows, so it only pushes down when the dedup is
  // streaming; ORDER BY must see every row, so it disables the pushdown.
  bool streaming_distinct = stmt.distinct && options.streaming_distinct;
  bool push_limit = options.push_limit && stmt.limit >= 0 &&
                    stmt.order_by.empty() &&
                    (!stmt.distinct || streaming_distinct);

  // --- Base-table filtering -------------------------------------------------
  // For each alias, gather its single-table conjuncts; try index probes for
  // equality / IN conjuncts on indexed columns, then filter the candidates.
  // With LIMIT pushed down, the first table's filtering is deferred into
  // the pipeline so its scan stops early; later tables always materialize
  // (hash-join build sides and cross products iterate them repeatedly).
  std::vector<std::vector<const Expr*>> filters(n_aliases);
  for (size_t a = 0; a < n_aliases; ++a) {
    for (Conjunct& c : conjuncts) {
      if (c.aliases.size() == 1 && *c.aliases.begin() == static_cast<int>(a)) {
        filters[a].push_back(c.expr);
        c.applied = true;
      }
    }
  }
  std::vector<std::vector<RowId>> candidates(n_aliases);
  std::vector<RowId> lazy0_seed;
  bool lazy0 = false;
  bool lazy0_scan_all = false;
  for (size_t a = 0; a < n_aliases; ++a) {
    const Table* table = tables[a];
    // Index selection: rank every probe-able equality / IN conjunct on
    // this alias by its aggregate per-shard cardinality (Table::ProbeCount,
    // no materialization), then materialize only the winner — the same
    // cheapest-access-path choice the graph matcher makes through
    // ProbeCountNodes. (For IN probes the rank sums per-value counts, an
    // upper bound on the deduplicated union.)
    std::vector<RowId> seed;
    bool seeded = false;
    int best_col = -1;
    const Value* best_eq = nullptr;
    const std::vector<Value>* best_in = nullptr;
    size_t best_count = static_cast<size_t>(-1);
    for (const Expr* f : filters[a]) {
      int col_idx = -1;
      const Value* eq = nullptr;
      const std::vector<Value>* in = nullptr;
      if (f->kind == ExprKind::kBinary && f->op == BinaryOp::kEq) {
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        if (f->lhs->kind == ExprKind::kColumnRef &&
            f->rhs->kind == ExprKind::kLiteral) {
          col = f->lhs.get();
          lit = f->rhs.get();
        } else if (f->rhs->kind == ExprKind::kColumnRef &&
                   f->lhs->kind == ExprKind::kLiteral) {
          col = f->rhs.get();
          lit = f->lhs.get();
        }
        if (col != nullptr) {
          auto bc = binder.Resolve(*col);
          if (bc.ok() && bc.value().alias_idx == static_cast<int>(a) &&
              table->HasIndex(bc.value().col_idx)) {
            col_idx = bc.value().col_idx;
            eq = &lit->literal;
          }
        }
      } else if (f->kind == ExprKind::kInList && !f->negated &&
                 f->lhs->kind == ExprKind::kColumnRef) {
        auto bc = binder.Resolve(*f->lhs);
        if (bc.ok() && bc.value().alias_idx == static_cast<int>(a) &&
            table->HasIndex(bc.value().col_idx)) {
          col_idx = bc.value().col_idx;
          in = &f->in_list;
        }
      }
      if (col_idx < 0) continue;
      size_t count = 0;
      if (eq != nullptr) {
        count = table->ProbeCount(col_idx, *eq);
      } else {
        for (const Value& v : *in) count += table->ProbeCount(col_idx, v);
      }
      if (count < best_count) {
        best_count = count;
        best_col = col_idx;
        best_eq = eq;
        best_in = in;
      }
    }
    if (best_col >= 0) {
      // Materialize the winner: union of its per-shard buckets, re-sorted
      // into global row order (buckets are disjoint across shards; IN
      // probes additionally dedup across values).
      if (best_eq != nullptr) {
        for (size_t s = 0; s < table->shard_count(); ++s) {
          const std::vector<RowId>& bucket =
              table->Probe(best_col, *best_eq, s);
          seed.insert(seed.end(), bucket.begin(), bucket.end());
        }
      } else {
        std::unordered_set<RowId> merged;
        for (const Value& v : *best_in) {
          for (size_t s = 0; s < table->shard_count(); ++s) {
            for (RowId rid : table->Probe(best_col, v, s)) {
              merged.insert(rid);
            }
          }
        }
        seed.assign(merged.begin(), merged.end());
      }
      std::sort(seed.begin(), seed.end());
      seeded = true;
      stats->index_probe_rows += seed.size();
    }
    if (a == 0 && push_limit) {
      lazy0 = true;
      lazy0_scan_all = !seeded;
      lazy0_seed = std::move(seed);
      continue;
    }
    if (!seeded) {
      seed.resize(table->row_count());
      for (RowId i = 0; i < table->row_count(); ++i) seed[i] = i;
    }
    // Apply all single-table filters.
    Tuple probe(n_aliases, kUnbound);
    std::vector<RowId>& out = candidates[a];
    out.reserve(seed.size());
    for (RowId rid : seed) {
      ++stats->base_rows_scanned;
      probe[a] = rid;
      bool pass = true;
      for (const Expr* f : filters[a]) {
        auto v = eval.Eval(*f, probe);
        if (!v.ok()) return v.status();
        if (!Evaluator::Truthy(v.value())) {
          pass = false;
          break;
        }
      }
      if (pass) out.push_back(rid);
    }
  }

  // --- Join planning (left-deep, FROM order) --------------------------------
  // Classify the remaining conjuncts level by level: equi-join keys against
  // already-bound aliases (hash-join build tables constructed up front from
  // the filtered candidates), and residual conjuncts applied at the first
  // level where all their aliases are bound.
  std::vector<JoinLevel> levels(n_aliases);
  std::set<int> bound;
  for (size_t a = 0; a < n_aliases; ++a) {
    // Equi-join conjuncts linking alias `a` to already-bound aliases:
    // colref(a) = colref(bound).
    for (Conjunct& c : conjuncts) {
      if (c.applied || c.expr->kind != ExprKind::kBinary ||
          c.expr->op != BinaryOp::kEq) {
        continue;
      }
      const Expr& e = *c.expr;
      if (e.lhs->kind != ExprKind::kColumnRef ||
          e.rhs->kind != ExprKind::kColumnRef) {
        continue;
      }
      auto l = binder.Resolve(*e.lhs);
      auto r = binder.Resolve(*e.rhs);
      if (!l.ok() || !r.ok()) continue;
      BoundColumn lc = l.value(), rc = r.value();
      auto is_new = [&](const BoundColumn& b) {
        return b.alias_idx == static_cast<int>(a);
      };
      auto is_bound = [&](const BoundColumn& b) {
        return bound.count(b.alias_idx) > 0;
      };
      if (is_new(lc) && is_bound(rc)) {
        levels[a].keys.emplace_back(lc, rc);
        c.applied = true;
      } else if (is_new(rc) && is_bound(lc)) {
        levels[a].keys.emplace_back(rc, lc);
        c.applied = true;
      }
    }
    bound.insert(static_cast<int>(a));
    // Residual conjuncts that become fully bound at this level (e.g.
    // temporal constraints between two event aliases).
    for (Conjunct& c : conjuncts) {
      if (c.applied) continue;
      bool ready = true;
      for (int al : c.aliases) {
        if (!bound.count(al)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        levels[a].ready.push_back(c.expr);
        c.applied = true;
      }
    }
  }
  for (size_t a = 0; a < n_aliases; ++a) {
    if (levels[a].keys.empty()) continue;
    const Table* table = tables[a];
    std::vector<Value> key_vals;
    for (RowId rid : candidates[a]) {
      key_vals.clear();
      key_vals.reserve(levels[a].keys.size());
      for (const auto& [nc, oc] : levels[a].keys) {
        key_vals.push_back(table->row(rid)[nc.col_idx]);
      }
      levels[a].build_rows.Append(levels[a].build[key_vals], rid);
    }
  }

  // --- Projection setup -----------------------------------------------------
  BlockResultSet result;
  std::vector<const Expr*> projected;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t a = 0; a < n_aliases; ++a) {
        for (size_t c = 0; c < tables[a]->schema().size(); ++c) {
          result.columns.push_back(aliases[a] + "." +
                                   tables[a]->schema().column(c).name);
        }
      }
    } else {
      result.columns.push_back(item.alias.empty() ? item.expr->ToString()
                                                  : item.alias);
      projected.push_back(item.expr.get());
    }
  }
  bool has_star = std::any_of(stmt.items.begin(), stmt.items.end(),
                              [](const SelectItem& i) { return i.star; });

  // --- Streaming scan / join / emit pipeline --------------------------------
  size_t local_cap =
      push_limit ? static_cast<size_t>(stmt.limit) : static_cast<size_t>(-1);
  // Fan the base scan (and with it the whole probe pipeline) out over the
  // first table's shards only when it can pay off: a sharded table, more
  // than one worker allowed, a scan large enough to amortize dispatch, and
  // no small pushed LIMIT (the serial early-exit path finishes those in a
  // handful of row visits).
  size_t scan_size = n_aliases == 0 ? 0
                     : lazy0 ? (lazy0_scan_all ? tables[0]->row_count()
                                               : lazy0_seed.size())
                             : candidates[0].size();
  size_t n_shards = n_aliases == 0 ? 1 : tables[0]->shard_count();
  bool parallel =
      options.parallel_shards > 1 && n_shards > 1 &&
      scan_size >= static_cast<size_t>(std::max(0, options.parallel_min_rows)) &&
      !(push_limit &&
        stmt.limit < static_cast<long long>(options.parallel_min_limit));
  if (!(push_limit && stmt.limit == 0)) {
    if (!parallel) {
      std::vector<Row> serial_rows;
      TuplePipeline pipeline(stmt, binder, eval, levels, candidates, projected,
                             has_star, streaming_distinct, local_cap, stats,
                             &serial_rows);
      if (lazy0) {
        pipeline.SetLazyFirstTable(lazy0_scan_all ? nullptr : &lazy0_seed,
                                   lazy0_scan_all, tables[0]->row_count(),
                                   &filters[0]);
      }
      pipeline.SetCancelFlag(options.cancel);
      pipeline.SetDeadline(options.deadline);
      pipeline.Run();
      RAPTOR_RETURN_NOT_OK(pipeline.error());
      result.rows.Adopt(std::move(serial_rows));
    } else {
      struct ShardRun {
        struct {
          std::vector<Row> rows;
        } rs;
        ExecStats stats;
        Status error = Status::OK();
      };
      std::vector<ShardRun> runs(n_shards);
      // Pre-split the shared first-table iteration lists (index seed or
      // filtered candidates) into per-shard sub-lists at plan time, so
      // each worker walks its own list instead of skip-scanning the whole
      // one per shard. Order within a shard is preserved, so the
      // shard-order merge emits exactly the skip-scan rows.
      std::vector<std::vector<RowId>> first_by_shard;
      const std::vector<RowId>* first_list =
          lazy0 ? (lazy0_scan_all ? nullptr : &lazy0_seed)
                : (n_aliases > 0 ? &candidates[0] : nullptr);
      if (first_list != nullptr) {
        first_by_shard.resize(n_shards);
        for (RowId rid : *first_list) {
          first_by_shard[rid & (n_shards - 1)].push_back(rid);
        }
      }
      // LIMIT policy (shared atomic claims vs per-worker caps merged with
      // a re-dedup): see storage/shard_parallel.h.
      storage::ShardRowBudget budget(push_limit, streaming_distinct,
                                     stmt.limit);
      size_t workers = std::min<size_t>(
          static_cast<size_t>(options.parallel_shards), n_shards);
      ThreadPool::Shared().ParallelFor(n_shards, workers, [&](size_t s) {
        ShardRun& run = runs[s];
        // Evaluator IN-list caches are mutable, so every worker owns one.
        Evaluator shard_eval(binder);
        TuplePipeline pipeline(stmt, binder, shard_eval, levels, candidates,
                               projected, has_star, streaming_distinct,
                               budget.local_cap, &run.stats, &run.rs.rows);
        if (lazy0) {
          pipeline.SetLazyFirstTable(
              lazy0_scan_all ? nullptr : &first_by_shard[s], lazy0_scan_all,
              tables[0]->row_count(), &filters[0]);
        } else if (first_list != nullptr) {
          pipeline.SetFirstCandidates(&first_by_shard[s]);
        }
        pipeline.RestrictFirstTableToShard(s, n_shards);
        if (first_list != nullptr) pipeline.SetFirstTablePrepartitioned();
        pipeline.SetCancelFlag(options.cancel);
        pipeline.SetDeadline(options.deadline);
        if (budget.shared) {
          pipeline.SetSharedRowBudget(&budget.claimed, budget.shared_cap);
        }
        pipeline.Run();
        run.error = pipeline.error();
      });
      RAPTOR_RETURN_NOT_OK(storage::MergeShardRuns(
          runs, streaming_distinct, &result.rows, [&](ShardRun& run) {
            stats->base_rows_scanned += run.stats.base_rows_scanned;
            stats->index_probe_rows += run.stats.index_probe_rows;
            stats->join_output_tuples += run.stats.join_output_tuples;
            stats->rows_emitted += run.stats.rows_emitted;
          }));
    }
  }
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("sql query cancelled");
  }
  if (DeadlinePoller(options.deadline).ExpiredNow()) {
    return Status::Timeout("sql query deadline exceeded");
  }

  // --- ORDER BY / DISTINCT / LIMIT -------------------------------------------
  if (!stmt.order_by.empty()) {
    // Evaluate order keys against result rows is not possible (rows are
    // projected); instead sort tuples is gone. Re-evaluate on result rows by
    // matching the order expr to a projected column where possible.
    std::vector<int> key_cols;
    std::vector<bool> desc;
    for (const OrderItem& o : stmt.order_by) {
      std::string txt = o.expr->ToString();
      int col = -1;
      for (size_t c = 0; c < result.columns.size(); ++c) {
        if (result.columns[c] == txt) {
          col = static_cast<int>(c);
          break;
        }
      }
      if (col < 0) {
        return Status::Unsupported("ORDER BY must reference a selected column: " +
                                   txt);
      }
      key_cols.push_back(col);
      desc.push_back(o.descending);
    }
    // Sorting needs random access over every row: flatten the blocks, sort,
    // and re-adopt as one block.
    std::vector<Row> rows = result.rows.Flatten();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < key_cols.size(); ++k) {
                         int cmp = a[key_cols[k]].Compare(b[key_cols[k]]);
                         if (cmp != 0) return desc[k] ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
    result.rows.Adopt(std::move(rows));
  }
  if (stmt.distinct && !streaming_distinct) {
    // Legacy final dedup pass on the value rows (streaming dedup already
    // filtered duplicates during emission).
    std::unordered_set<Row, ValueRowHash, ValueRowEq> seen;
    std::vector<Row> rows = result.rows.Flatten();
    std::vector<Row> unique;
    unique.reserve(rows.size());
    for (Row& r : rows) {
      if (seen.insert(r).second) unique.push_back(std::move(r));
    }
    result.rows.Adopt(std::move(unique));
  }
  if (stmt.limit >= 0 &&
      result.rows.row_count() > static_cast<size_t>(stmt.limit)) {
    result.rows.Truncate(static_cast<size_t>(stmt.limit));
  }
  return result;
}

Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                                const SelectOptions& options,
                                ExecStats* stats) {
  auto blocks = ExecuteSelectBlocks(stmt, catalog, options, stats);
  if (!blocks.ok()) return blocks.status();
  ResultSet result;
  result.columns = std::move(blocks.value().columns);
  result.rows = blocks.value().rows.Flatten();
  return result;
}

double EstimateSelectCost(const SelectStmt& stmt, const Catalog& catalog) {
  // Mirror the executor's binding pass, but tolerate unknown tables: an
  // alias we cannot bind estimates as zero rows rather than erroring (the
  // real run will report the error; admission only needs a price).
  std::vector<std::string> aliases;
  std::vector<const Table*> tables;
  auto bind_table = [&](const TableRef& ref) {
    const Table* t = catalog.FindTable(ref.table);
    if (t == nullptr) return;
    aliases.push_back(ref.effective_alias());
    tables.push_back(t);
  };
  for (const TableRef& ref : stmt.from) bind_table(ref);
  for (const JoinClause& j : stmt.joins) bind_table(j.table);
  if (tables.empty()) return 0.0;

  Binder binder(aliases, tables);
  std::vector<const Expr*> raw_conjuncts;
  SplitConjuncts(stmt.where.get(), &raw_conjuncts);
  for (const JoinClause& j : stmt.joins) {
    SplitConjuncts(j.on.get(), &raw_conjuncts);
  }

  size_t n_aliases = aliases.size();
  // Per alias: the cheapest probe-able eq/IN conjunct's cardinality, or the
  // full row count when nothing probes — exactly the access-path rank the
  // executor's index selection computes before materializing the winner.
  std::vector<double> est(n_aliases, 0.0);
  for (size_t a = 0; a < n_aliases; ++a) est[a] = static_cast<double>(tables[a]->row_count());
  for (const Expr* f : raw_conjuncts) {
    int col_idx = -1;
    int alias_idx = -1;
    const Value* eq = nullptr;
    const std::vector<Value>* in = nullptr;
    if (f->kind == ExprKind::kBinary && f->op == BinaryOp::kEq) {
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (f->lhs->kind == ExprKind::kColumnRef &&
          f->rhs->kind == ExprKind::kLiteral) {
        col = f->lhs.get();
        lit = f->rhs.get();
      } else if (f->rhs->kind == ExprKind::kColumnRef &&
                 f->lhs->kind == ExprKind::kLiteral) {
        col = f->rhs.get();
        lit = f->lhs.get();
      }
      if (col != nullptr) {
        auto bc = binder.Resolve(*col);
        if (bc.ok() && tables[bc.value().alias_idx]->HasIndex(bc.value().col_idx)) {
          alias_idx = bc.value().alias_idx;
          col_idx = bc.value().col_idx;
          eq = &lit->literal;
        }
      }
    } else if (f->kind == ExprKind::kInList && !f->negated &&
               f->lhs->kind == ExprKind::kColumnRef) {
      auto bc = binder.Resolve(*f->lhs);
      if (bc.ok() && tables[bc.value().alias_idx]->HasIndex(bc.value().col_idx)) {
        alias_idx = bc.value().alias_idx;
        col_idx = bc.value().col_idx;
        in = &f->in_list;
      }
    }
    if (col_idx < 0) continue;
    const Table* table = tables[alias_idx];
    size_t count = 0;
    if (eq != nullptr) {
      count = table->ProbeCount(col_idx, *eq);
    } else {
      for (const Value& v : *in) count += table->ProbeCount(col_idx, v);
    }
    est[alias_idx] = std::min(est[alias_idx], static_cast<double>(count));
  }

  // The driving alias threads every candidate through the whole left-deep
  // pipeline, so scale it by the join depth; later aliases pay their own
  // filter scan once (hash builds) — a deliberately join-selectivity-blind
  // upper-flavored estimate, cheap and monotone in the inputs.
  double cost = est[0] * static_cast<double>(n_aliases);
  for (size_t a = 1; a < n_aliases; ++a) cost += est[a];
  return cost;
}

}  // namespace raptor::sql
