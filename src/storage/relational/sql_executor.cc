#include "storage/relational/sql_executor.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/deadline.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "obs/trace.h"
#include "storage/shard_parallel.h"

namespace raptor::sql {

namespace {

struct BoundColumn {
  int alias_idx = -1;
  int col_idx = -1;
};

/// Resolves alias.column references against the FROM/JOIN alias list.
class Binder {
 public:
  Binder(const std::vector<std::string>& aliases,
         const std::vector<const Table*>& tables)
      : aliases_(aliases), tables_(tables) {}

  Result<BoundColumn> Resolve(const Expr& col) const {
    BoundColumn out;
    if (!col.table.empty()) {
      for (size_t i = 0; i < aliases_.size(); ++i) {
        if (aliases_[i] == col.table) {
          out.alias_idx = static_cast<int>(i);
          break;
        }
      }
      if (out.alias_idx < 0) {
        return Status::NotFound("unknown table alias: " + col.table);
      }
      out.col_idx = tables_[out.alias_idx]->schema().FindColumn(col.column);
      if (out.col_idx < 0) {
        return Status::NotFound("no column " + col.column + " in " +
                                col.table);
      }
      return out;
    }
    // Unqualified: must be unambiguous across tables.
    for (size_t i = 0; i < tables_.size(); ++i) {
      int c = tables_[i]->schema().FindColumn(col.column);
      if (c >= 0) {
        if (out.alias_idx >= 0) {
          return Status::InvalidArgument("ambiguous column: " + col.column);
        }
        out.alias_idx = static_cast<int>(i);
        out.col_idx = c;
      }
    }
    if (out.alias_idx < 0) {
      return Status::NotFound("unknown column: " + col.column);
    }
    return out;
  }

  size_t alias_count() const { return aliases_.size(); }
  const Table* table(size_t i) const { return tables_[i]; }
  const std::string& alias(size_t i) const { return aliases_[i]; }

 private:
  const std::vector<std::string>& aliases_;
  const std::vector<const Table*>& tables_;
};

using Tuple = std::vector<RowId>;  // one RowId per alias; SIZE_MAX = unbound

constexpr RowId kUnbound = static_cast<RowId>(-1);

/// Expression evaluator over a (possibly partially bound) tuple.
class Evaluator {
 public:
  Evaluator(const Binder& binder) : binder_(binder) {}

  Result<Value> Eval(const Expr& e, const Tuple& tuple) const {
    switch (e.kind) {
      case ExprKind::kLiteral:
        return e.literal;
      case ExprKind::kColumnRef: {
        auto bc = binder_.Resolve(e);
        if (!bc.ok()) return bc.status();
        RowId rid = tuple[bc.value().alias_idx];
        if (rid == kUnbound) {
          return Status::Internal("column evaluated before alias bound: " +
                                  e.ToString());
        }
        return binder_.table(bc.value().alias_idx)
            ->row(rid)[bc.value().col_idx];
      }
      case ExprKind::kUnaryNot: {
        auto inner = Eval(*e.lhs, tuple);
        if (!inner.ok()) return inner.status();
        return Value(static_cast<int64_t>(!Truthy(inner.value())));
      }
      case ExprKind::kInList: {
        auto lhs = Eval(*e.lhs, tuple);
        if (!lhs.ok()) return lhs.status();
        // Hashed-set probe instead of the old O(list) scan per row.
        bool found = in_sets_.Get(e).count(lhs.value()) > 0;
        return Value(static_cast<int64_t>(e.negated ? !found : found));
      }
      case ExprKind::kBinary: {
        if (e.op == BinaryOp::kAnd) {
          auto l = Eval(*e.lhs, tuple);
          if (!l.ok()) return l.status();
          if (!Truthy(l.value())) return Value(static_cast<int64_t>(0));
          auto r = Eval(*e.rhs, tuple);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        if (e.op == BinaryOp::kOr) {
          auto l = Eval(*e.lhs, tuple);
          if (!l.ok()) return l.status();
          if (Truthy(l.value())) return Value(static_cast<int64_t>(1));
          auto r = Eval(*e.rhs, tuple);
          if (!r.ok()) return r.status();
          return Value(static_cast<int64_t>(Truthy(r.value())));
        }
        auto l = Eval(*e.lhs, tuple);
        if (!l.ok()) return l.status();
        auto r = Eval(*e.rhs, tuple);
        if (!r.ok()) return r.status();
        if (e.op == BinaryOp::kAdd || e.op == BinaryOp::kSub) {
          if (l.value().is_double() || r.value().is_double()) {
            double a = l.value().AsDouble(), b = r.value().AsDouble();
            return Value(e.op == BinaryOp::kAdd ? a + b : a - b);
          }
          int64_t a = l.value().AsInt(), b = r.value().AsInt();
          return Value(e.op == BinaryOp::kAdd ? a + b : a - b);
        }
        return Value(static_cast<int64_t>(Compare(e.op, l.value(), r.value())));
      }
    }
    return Status::Internal("unreachable expr kind");
  }

  static bool Truthy(const Value& v) {
    if (v.is_null()) return false;
    if (v.is_int()) return v.AsInt() != 0;
    if (v.is_double()) return v.AsDouble() != 0.0;
    return !v.AsText().empty();
  }

  static bool Compare(BinaryOp op, const Value& l, const Value& r) {
    switch (op) {
      case BinaryOp::kEq: return l.Compare(r) == 0;
      case BinaryOp::kNe: return l.Compare(r) != 0;
      case BinaryOp::kLt: return l.Compare(r) < 0;
      case BinaryOp::kLe: return l.Compare(r) <= 0;
      case BinaryOp::kGt: return l.Compare(r) > 0;
      case BinaryOp::kGe: return l.Compare(r) >= 0;
      case BinaryOp::kLike: return LikeMatch(l.ToString(), r.ToString());
      case BinaryOp::kNotLike: return !LikeMatch(l.ToString(), r.ToString());
      default: return false;
    }
  }

 private:
  const Binder& binder_;
  InListCache<Expr> in_sets_;
};

/// A single-table filter compiled against the table's frozen columnar
/// storage (table.h / storage/columnar.h). Compilation recognizes
/// `col op literal`, `literal op col` (op mirrored), and non-negated
/// `col IN (...)` with a type-homogeneous list; anything else — and every
/// (shard, predicate) pair the frozen column cannot represent exactly
/// (kMixed columns, double or NULL literals) — keeps Mode::kEval and runs
/// through the row-path Evaluator unchanged. Modes bind per shard because
/// column kinds can diverge across shards of a loosely-typed table.
///
/// Semantics mirror Value::Compare exactly: cross-kind comparisons fold
/// to per-shard constants (numeric sorts before text, so an int cell is
/// always < a text literal), a string literal absent from the column's
/// dictionary can never equal a cell, string range predicates compare
/// dictionary names (same sign as Value's text ordering), and an absent
/// cell behaves as NULL (smaller than every non-null literal, equal to
/// nothing).
class ColumnPredicate {
 public:
  /// Compile `f`, a single-table filter of `alias_idx`. Always returns a
  /// predicate; unrecognized shapes leave every shard on Mode::kEval.
  static ColumnPredicate Compile(const Expr& f, const Binder& binder,
                                 int alias_idx) {
    ColumnPredicate p;
    const Table& table = *binder.table(alias_idx);
    p.shards_.resize(table.shard_count());
    BinaryOp op = BinaryOp::kEq;
    const Expr* colref = nullptr;
    const Value* lit = nullptr;
    bool in_list = false;
    if (f.kind == ExprKind::kBinary) {
      switch (f.op) {
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          break;
        default:
          return p;
      }
      if (f.lhs->kind == ExprKind::kColumnRef &&
          f.rhs->kind == ExprKind::kLiteral) {
        colref = f.lhs.get();
        lit = &f.rhs->literal;
        op = f.op;
      } else if (f.rhs->kind == ExprKind::kColumnRef &&
                 f.lhs->kind == ExprKind::kLiteral) {
        colref = f.rhs.get();
        lit = &f.lhs->literal;
        op = Mirror(f.op);
      } else {
        return p;
      }
    } else if (f.kind == ExprKind::kInList && !f.negated &&
               f.lhs->kind == ExprKind::kColumnRef) {
      colref = f.lhs.get();
      in_list = true;
    } else {
      return p;
    }
    auto bc = binder.Resolve(*colref);
    if (!bc.ok() || bc.value().alias_idx != alias_idx) return p;
    int col_idx = bc.value().col_idx;
    bool lit_int = false;
    if (in_list) {
      bool all_int = !f.in_list.empty();
      bool all_text = !f.in_list.empty();
      for (const Value& v : f.in_list) {
        all_int = all_int && v.is_int();
        all_text = all_text && v.is_text();
      }
      if (!all_int && !all_text) return p;  // mixed/empty list: row path
      if (all_int) {
        for (const Value& v : f.in_list) p.int_set_.insert(v.AsInt());
      } else {
        for (const Value& v : f.in_list) {
          uint32_t id = table.LookupColumnDict(col_idx, v.AsText());
          if (id != kNullDictId) p.dict_set_.insert(id);
        }
      }
      lit_int = all_int;
    } else if (lit->is_int()) {
      p.int_lit_ = lit->AsInt();
      lit_int = true;
    } else if (lit->is_text()) {
      p.str_lit_ = lit->AsText();
      p.dict_lit_ = table.LookupColumnDict(col_idx, p.str_lit_);
    } else {
      return p;  // double / NULL literal: row path per shard
    }
    p.op_ = op;
    p.table_ = &table;
    p.col_idx_ = col_idx;
    for (size_t s = 0; s < table.shard_count(); ++s) {
      const storage::Column& col = table.ColumnSlice(s, col_idx);
      PerShard& ps = p.shards_[s];
      ps.col = &col;
      if (!col.usable()) continue;  // kMixed (or empty shard): row path
      bool col_int = col.kind() == storage::Column::Kind::kInt64;
      if (in_list) {
        // A value of the wrong kind never Compare-equals a cell, so a
        // kind-mismatched homogeneous list matches nothing.
        if (lit_int) {
          ps.mode = col_int ? Mode::kIntIn : Mode::kNever;
        } else {
          ps.mode = !col_int && !p.dict_set_.empty() ? Mode::kDictIn
                                                     : Mode::kNever;
        }
      } else if (lit_int) {
        // Text cells sort after every numeric literal.
        ps.mode = col_int ? Mode::kIntCmp : ConstMode(op, /*cell_cmp=*/1);
      } else if (col_int) {
        // Int cells sort before every text literal.
        ps.mode = ConstMode(op, /*cell_cmp=*/-1);
      } else if (op == BinaryOp::kEq) {
        ps.mode = p.dict_lit_ == kNullDictId ? Mode::kNever : Mode::kDictEq;
      } else if (op == BinaryOp::kNe) {
        ps.mode = p.dict_lit_ == kNullDictId ? Mode::kAlways : Mode::kDictNe;
      } else {
        ps.mode = Mode::kStrCmp;
      }
    }
    return p;
  }

  /// True when shard `shard` evaluates through the column fast path;
  /// false means the caller must Eval the original expression.
  bool compiled(size_t shard) const {
    return shards_[shard].mode != Mode::kEval;
  }

  /// Row-semantics verdict for the cell at `pos` of `shard`.
  /// Precondition: compiled(shard).
  bool Matches(size_t shard, size_t pos) const {
    const PerShard& ps = shards_[shard];
    switch (ps.mode) {
      case Mode::kNever:
        return false;
      case Mode::kAlways:
        return true;
      case Mode::kIntCmp: {
        int64_t v = 0;
        // Absent cell = NULL, smaller than any non-null literal.
        if (!ps.col->IntAt(pos, &v)) return CmpHolds(op_, -1);
        return CmpHolds(op_, v < int_lit_ ? -1 : (v > int_lit_ ? 1 : 0));
      }
      case Mode::kIntIn: {
        int64_t v = 0;
        if (!ps.col->IntAt(pos, &v)) return false;
        return int_set_.count(v) > 0;
      }
      case Mode::kDictEq:
        return ps.col->DictAt(pos) == dict_lit_;
      case Mode::kDictNe:
        return ps.col->DictAt(pos) != dict_lit_;
      case Mode::kDictIn: {
        uint32_t id = ps.col->DictAt(pos);
        return id != kNullDictId && dict_set_.count(id) > 0;
      }
      case Mode::kStrCmp: {
        uint32_t id = ps.col->DictAt(pos);
        if (id == kNullDictId) return CmpHolds(op_, -1);  // NULL cell
        int r = table_->ColumnDictName(col_idx_, id).compare(str_lit_);
        return CmpHolds(op_, r < 0 ? -1 : (r > 0 ? 1 : 0));
      }
      case Mode::kEval:
        break;
    }
    return false;
  }

 private:
  static constexpr uint32_t kNullDictId = storage::kNullDictId;

  enum class Mode : uint8_t {
    kEval,    // not compiled for this shard: row-path Evaluator
    kNever,   // constant false (kind mismatch / dictionary miss)
    kAlways,  // constant true (kind mismatch under Ne/ordering)
    kIntCmp,  // int column `op` int literal
    kIntIn,   // int column IN hashed int set
    kDictEq,  // string column == interned dictionary id
    kDictNe,  // string column != interned dictionary id
    kDictIn,  // string column IN hashed dictionary-id set
    kStrCmp,  // string column `op` text literal via dictionary names
  };

  struct PerShard {
    Mode mode = Mode::kEval;
    const storage::Column* col = nullptr;
  };

  /// `lit op col` rewritten as `col Mirror(op) lit`.
  static BinaryOp Mirror(BinaryOp op) {
    switch (op) {
      case BinaryOp::kLt: return BinaryOp::kGt;
      case BinaryOp::kLe: return BinaryOp::kGe;
      case BinaryOp::kGt: return BinaryOp::kLt;
      case BinaryOp::kGe: return BinaryOp::kLe;
      default: return op;  // kEq / kNe are symmetric
    }
  }

  /// Does `cell op lit` hold given the sign of Compare(cell, lit)?
  static bool CmpHolds(BinaryOp op, int c) {
    switch (op) {
      case BinaryOp::kEq: return c == 0;
      case BinaryOp::kNe: return c != 0;
      case BinaryOp::kLt: return c < 0;
      case BinaryOp::kLe: return c <= 0;
      case BinaryOp::kGt: return c > 0;
      case BinaryOp::kGe: return c >= 0;
      default: return false;
    }
  }

  /// Fold a comparison whose sign is the same for every cell of the shard
  /// (cross-kind compares) into a constant mode.
  static Mode ConstMode(BinaryOp op, int cell_cmp) {
    return CmpHolds(op, cell_cmp) ? Mode::kAlways : Mode::kNever;
  }

  const Table* table_ = nullptr;
  int col_idx_ = -1;
  BinaryOp op_ = BinaryOp::kEq;
  int64_t int_lit_ = 0;
  uint32_t dict_lit_ = kNullDictId;
  std::string_view str_lit_;  // borrowed from the statement's literal
  std::unordered_set<int64_t> int_set_;
  std::unordered_set<uint32_t> dict_set_;
  std::vector<PerShard> shards_;
};

/// Which aliases an expression references.
void CollectAliases(const Expr& e, const Binder& binder,
                    std::set<int>* aliases) {
  switch (e.kind) {
    case ExprKind::kColumnRef: {
      auto bc = binder.Resolve(e);
      if (bc.ok()) aliases->insert(bc.value().alias_idx);
      break;
    }
    case ExprKind::kBinary:
      CollectAliases(*e.lhs, binder, aliases);
      CollectAliases(*e.rhs, binder, aliases);
      break;
    case ExprKind::kUnaryNot:
      CollectAliases(*e.lhs, binder, aliases);
      break;
    case ExprKind::kInList:
      CollectAliases(*e.lhs, binder, aliases);
      break;
    case ExprKind::kLiteral:
      break;
  }
}

/// Split an expression into AND-ed conjuncts (ownership stays with caller).
void SplitConjuncts(const Expr* e, std::vector<const Expr*>* out) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kBinary && e->op == BinaryOp::kAnd) {
    SplitConjuncts(e->lhs.get(), out);
    SplitConjuncts(e->rhs.get(), out);
  } else {
    out->push_back(e);
  }
}

struct Conjunct {
  const Expr* expr;
  std::set<int> aliases;
  bool applied = false;
};

/// Hash-join build storage: per-key row ids chained through fixed-size
/// chunks allocated from one arena, instead of one heap vector per key.
/// Appends preserve insertion order (head/tail chain), so probe iteration
/// visits row ids exactly as the per-key vectors used to.
class RowIdChunks {
 public:
  static constexpr uint32_t kNone = static_cast<uint32_t>(-1);

  struct Ref {
    uint32_t head = kNone;
    uint32_t tail = kNone;
  };

  void Append(Ref& ref, RowId rid) {
    if (ref.tail == kNone || chunks_[ref.tail].count == kChunkRows) {
      uint32_t c = static_cast<uint32_t>(chunks_.size());
      chunks_.emplace_back();
      if (ref.tail == kNone) {
        ref.head = c;
      } else {
        chunks_[ref.tail].next = c;
      }
      ref.tail = c;
    }
    Chunk& chunk = chunks_[ref.tail];
    chunk.rows[chunk.count++] = rid;
  }

  /// Invoke fn(rid) over the chain in insertion order; stops and returns
  /// false as soon as fn returns false.
  template <class Fn>
  bool ForEach(const Ref& ref, Fn&& fn) const {
    for (uint32_t c = ref.head; c != kNone; c = chunks_[c].next) {
      const Chunk& chunk = chunks_[c];
      for (uint32_t i = 0; i < chunk.count; ++i) {
        if (!fn(chunk.rows[i])) return false;
      }
    }
    return true;
  }

 private:
  static constexpr uint32_t kChunkRows = 8;

  struct Chunk {
    RowId rows[kChunkRows];
    uint32_t count = 0;
    uint32_t next = kNone;
  };

  std::vector<Chunk> chunks_;
};

/// One level of the left-deep join pipeline, planned before execution:
/// equi-join keys against already-bound aliases (with the hash table built
/// on the level's filtered candidates as chunked candidate blocks), plus
/// the residual conjuncts that become fully bound once this level binds.
struct JoinLevel {
  std::vector<std::pair<BoundColumn, BoundColumn>> keys;  // (new, old)
  std::unordered_map<std::vector<Value>, RowIdChunks::Ref, ValueRowHash,
                     ValueRowEq>
      build;
  RowIdChunks build_rows;
  std::vector<const Expr*> ready;
};

/// The streaming executor: threads one tuple through the join levels
/// depth-first and emits projected rows as they complete, so LIMIT can stop
/// the whole pipeline — including the first table's base scan — early.
/// Every method returns true to continue and false to stop (limit reached
/// or evaluation error; check `error` afterwards).
class TuplePipeline {
 public:
  TuplePipeline(const SelectStmt& stmt, const Binder& binder,
                const Evaluator& eval, const std::vector<JoinLevel>& levels,
                const std::vector<std::vector<RowId>>& candidates,
                const std::vector<const Expr*>& projected, bool has_star,
                bool streaming_distinct, bool partition_distinct,
                size_t local_cap, ExecStats* stats, storage::WorkerRows* rs)
      : stmt_(stmt),
        binder_(binder),
        eval_(eval),
        levels_(levels),
        candidates_(candidates),
        projected_(projected),
        has_star_(has_star),
        streaming_distinct_(streaming_distinct),
        partition_distinct_(partition_distinct),
        local_cap_(local_cap),
        stats_(stats),
        rs_(rs) {
    // Parallel DISTINCT workers hash-partition their emissions so the
    // merge can re-dedup partition-by-partition and adopt whole blocks
    // (storage/shard_parallel.h).
    if (partition_distinct_) rs_->EnableDistinctPartitions();
  }

  /// Restrict the first table's iteration to rows of one storage shard;
  /// the parallel driver runs one pipeline per shard with disjoint scans.
  void RestrictFirstTableToShard(size_t shard, size_t shard_count) {
    shard_ = static_cast<int64_t>(shard);
    shard_count_ = shard_count;
  }

  /// Further restrict the (shard-restricted) first-table iteration to the
  /// half-open positional range [lo, hi): the k-th row of the shard's
  /// start/stride walk, or the k-th entry of its pre-split seed/candidate
  /// sub-list. The morsel driver runs one pipeline per morsel; the
  /// defaults cover the whole shard.
  void RestrictFirstTableToMorsel(size_t lo, size_t hi) {
    morsel_lo_ = lo;
    morsel_hi_ = hi;
  }

  /// Columnar fast paths for the lazy first-table filters, parallel to the
  /// SetLazyFirstTable filter list (entry i compiles filters[i]); filters
  /// whose entry is not compiled for a row's shard Eval as before, in the
  /// same position of the conjunct order.
  void SetCompiledFirstFilters(const std::vector<ColumnPredicate>* compiled) {
    compiled0_ = compiled;
  }

  /// Cooperative LIMIT cancellation shared by all parallel workers: every
  /// emitted row claims one slot; the scan stops once `cap` are claimed.
  void SetSharedRowBudget(std::atomic<size_t>* claimed, size_t cap) {
    shared_claimed_ = claimed;
    shared_cap_ = cap;
  }

  /// Cooperative query cancellation (HuntService tickets): polled with the
  /// shared LIMIT budget at every first-table row visit.
  void SetCancelFlag(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Deadline polled at the same points (amortized clock reads).
  void SetDeadline(
      std::optional<std::chrono::steady_clock::time_point> deadline) {
    deadline_ = DeadlinePoller(deadline);
  }

  /// The first table's iteration list was pre-split per shard at plan
  /// time: iterate it in full instead of skip-scanning by shard mask.
  void SetFirstTablePrepartitioned() { first_prepartitioned_ = true; }

  /// Replace candidates[0] with this worker's per-shard sub-list (used
  /// with SetFirstTablePrepartitioned on the non-lazy parallel path).
  void SetFirstCandidates(const std::vector<RowId>* cand0) {
    first_candidates_ = cand0;
  }

  /// Defer the first table's filtering into the pipeline: scan `seed`
  /// (or all `row_count` rows when scan_all) lazily, applying `filters`
  /// inline, so an early stop skips the tail of the base scan.
  void SetLazyFirstTable(const std::vector<RowId>* seed, bool scan_all,
                         RowId row_count,
                         const std::vector<const Expr*>* filters) {
    lazy0_seed_ = seed;
    lazy0_scan_all_ = scan_all;
    lazy0_row_count_ = row_count;
    lazy0_filters_ = filters;
  }

  void Run() {
    Tuple tuple(levels_.size(), kUnbound);
    EmitFrom(0, tuple);
  }

  const Status& error() const { return error_; }

 private:
  bool EmitFrom(size_t a, Tuple& t) {
    if (a == levels_.size()) return EmitRow(t);
    const JoinLevel& level = levels_[a];
    if (!level.keys.empty()) {
      // Hash join: probe the level's build table with the bound aliases.
      key_scratch_.clear();
      key_scratch_.reserve(level.keys.size());
      for (const auto& [nc, oc] : level.keys) {
        key_scratch_.push_back(
            binder_.table(oc.alias_idx)->row(t[oc.alias_idx])[oc.col_idx]);
      }
      auto it = level.build.find(key_scratch_);
      if (it == level.build.end()) return true;
      return level.build_rows.ForEach(
          it->second, [&](RowId rid) { return BindAndDescend(a, rid, t); });
    }
    if (a == 0 && (lazy0_seed_ != nullptr || lazy0_scan_all_)) {
      return ScanFirstTable(t);
    }
    // Cross product with the filtered candidates (this worker's shard only
    // when the scan is partitioned; a plan-time pre-split replaces the
    // per-row shard mask with this worker's own sub-list).
    if (a == 0 && first_candidates_ != nullptr) {
      size_t end = std::min(morsel_hi_, first_candidates_->size());
      for (size_t i = morsel_lo_; i < end; ++i) {
        if (BudgetSpent()) return false;
        if (!BindAndDescend(a, (*first_candidates_)[i], t)) return false;
      }
      return true;
    }
    for (RowId rid : candidates_[a]) {
      if (a == 0) {
        if (BudgetSpent()) return false;
        if (SkipsShard(rid)) continue;
      }
      if (!BindAndDescend(a, rid, t)) return false;
    }
    return true;
  }

  /// True when the first table's iteration is partitioned and `rid`
  /// belongs to a different worker's shard. The mask mirrors
  /// storage::ShardLayout's documented round-robin low-bits assignment
  /// (shard_count_ is the table's power-of-two shard count), as does the
  /// start/stride walk in ScanFirstTable — a layout change must update
  /// both alongside ShardLayout::ShardOf.
  bool SkipsShard(RowId rid) const {
    return shard_ >= 0 &&
           (rid & (shard_count_ - 1)) != static_cast<size_t>(shard_);
  }

  /// True once the shared LIMIT budget has been drained by any worker, the
  /// query has been cancelled, or its deadline has passed.
  bool BudgetSpent() {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (deadline_.Expired()) return true;
    return shared_claimed_ != nullptr &&
           shared_claimed_->load(std::memory_order_relaxed) >= shared_cap_;
  }

  bool ScanFirstTable(Tuple& t) {
    bool keep_going = true;
    const Table* table0 = binder_.table(0);
    auto visit = [&](RowId rid) {
      if (BudgetSpent()) return false;
      if (stats_ != nullptr) ++stats_->base_rows_scanned;
      t[0] = rid;
      bool pass = true;
      size_t sh = 0;
      size_t pos = 0;
      if (compiled0_ != nullptr) {
        sh = table0->ShardOf(rid);
        pos = table0->LocalOf(rid);
      }
      for (size_t i = 0; i < lazy0_filters_->size(); ++i) {
        // Compiled column check where available for this row's shard;
        // same conjunct position, identical verdict to the Eval below.
        if (compiled0_ != nullptr && (*compiled0_)[i].compiled(sh)) {
          if (stats_ != nullptr) ++stats_->columnar_filter_rows;
          if (!(*compiled0_)[i].Matches(sh, pos)) {
            pass = false;
            break;
          }
          continue;
        }
        auto v = eval_.Eval(*(*lazy0_filters_)[i], t);
        if (!v.ok()) {
          error_ = v.status();
          t[0] = kUnbound;
          return false;
        }
        if (!Evaluator::Truthy(v.value())) {
          pass = false;
          break;
        }
      }
      bool cont = pass ? Descend(0, t) : true;
      t[0] = kUnbound;
      return cont;
    };
    if (lazy0_scan_all_) {
      if (shard_ >= 0) {
        // k-indexed walk of this shard's rows (rid = shard + k * stride,
        // mirroring ShardLayout's round-robin low-bits assignment), so a
        // morsel range restricts by position within the shard.
        for (size_t k = morsel_lo_; k < morsel_hi_ && keep_going; ++k) {
          RowId rid = static_cast<RowId>(shard_) + k * shard_count_;
          if (rid >= lazy0_row_count_) break;
          keep_going = visit(rid);
        }
      } else {
        for (RowId rid = 0; rid < lazy0_row_count_ && keep_going; ++rid) {
          keep_going = visit(rid);
        }
      }
    } else if (first_prepartitioned_) {
      size_t end = std::min(morsel_hi_, lazy0_seed_->size());
      for (size_t i = morsel_lo_; i < end; ++i) {
        keep_going = visit((*lazy0_seed_)[i]);
        if (!keep_going) break;
      }
    } else {
      for (RowId rid : *lazy0_seed_) {
        if (SkipsShard(rid)) continue;
        keep_going = visit(rid);
        if (!keep_going) break;
      }
    }
    return keep_going;
  }

  bool BindAndDescend(size_t a, RowId rid, Tuple& t) {
    t[a] = rid;
    bool cont = Descend(a, t);
    t[a] = kUnbound;
    return cont;
  }

  /// `t[a]` just bound: count it, apply the conjuncts that became fully
  /// bound at this level, and continue to the next one.
  bool Descend(size_t a, Tuple& t) {
    if (stats_ != nullptr) ++stats_->join_output_tuples;
    for (const Expr* e : levels_[a].ready) {
      auto v = eval_.Eval(*e, t);
      if (!v.ok()) {
        error_ = v.status();
        return false;
      }
      if (!Evaluator::Truthy(v.value())) return true;
    }
    return EmitFrom(a + 1, t);
  }

  bool EmitRow(const Tuple& t) {
    Row row;
    if (has_star_) {
      for (size_t a = 0; a < levels_.size(); ++a) {
        const Row& src = binder_.table(a)->row(t[a]);
        row.insert(row.end(), src.begin(), src.end());
      }
    }
    for (const Expr* e : projected_) {
      auto v = eval_.Eval(*e, t);
      if (!v.ok()) {
        error_ = v.status();
        return false;
      }
      row.push_back(std::move(v).value());
    }
    if (streaming_distinct_ && !seen_.insert(row).second) return true;
    if (shared_claimed_ != nullptr &&
        shared_claimed_->fetch_add(1, std::memory_order_relaxed) >=
            shared_cap_) {
      return false;  // budget exhausted by other workers; drop the row
    }
    if (partition_distinct_) {
      size_t part = storage::DistinctPartitionOf(row);
      rs_->parts[part].push_back(std::move(row));
    } else {
      rs_->rows.push_back(std::move(row));
    }
    if (stats_ != nullptr) ++stats_->rows_emitted;
    ++emitted_;
    return emitted_ < local_cap_;
  }

  const SelectStmt& stmt_;
  const Binder& binder_;
  const Evaluator& eval_;
  const std::vector<JoinLevel>& levels_;
  const std::vector<std::vector<RowId>>& candidates_;
  const std::vector<const Expr*>& projected_;
  bool has_star_;
  bool streaming_distinct_;
  bool partition_distinct_;
  size_t local_cap_;
  size_t emitted_ = 0;     // rows this pipeline kept (vs. local_cap_)
  int64_t shard_ = -1;     // -1: iterate every shard (serial pipeline)
  size_t shard_count_ = 1;
  size_t morsel_lo_ = 0;   // positional first-table range [lo, hi)
  size_t morsel_hi_ = static_cast<size_t>(-1);
  std::atomic<size_t>* shared_claimed_ = nullptr;
  size_t shared_cap_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
  DeadlinePoller deadline_;
  bool first_prepartitioned_ = false;
  const std::vector<RowId>* first_candidates_ = nullptr;
  const std::vector<ColumnPredicate>* compiled0_ = nullptr;
  ExecStats* stats_;
  storage::WorkerRows* rs_;
  const std::vector<RowId>* lazy0_seed_ = nullptr;
  bool lazy0_scan_all_ = false;
  RowId lazy0_row_count_ = 0;
  const std::vector<const Expr*>* lazy0_filters_ = nullptr;
  Status error_ = Status::OK();
  std::unordered_set<Row, ValueRowHash, ValueRowEq> seen_;
  std::vector<Value> key_scratch_;
};

}  // namespace

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out = Join(columns, " | ") + "\n";
  size_t n = std::min(max_rows, rows.size());
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> cells;
    cells.reserve(rows[i].size());
    for (const Value& v : rows[i]) cells.push_back(v.ToString());
    out += Join(cells, " | ") + "\n";
  }
  if (rows.size() > n) {
    out += StrFormat("... (%zu more rows)\n", rows.size() - n);
  }
  return out;
}

Result<BlockResultSet> ExecuteSelectBlocks(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const SelectOptions& options,
                                           ExecStats* stats) {
  ExecStats local_stats;
  if (stats == nullptr) stats = &local_stats;

  // Bind all table refs (FROM list then JOINs, left-deep order).
  std::vector<std::string> aliases;
  std::vector<const Table*> tables;
  auto bind_table = [&](const TableRef& ref) -> Status {
    const Table* t = catalog.FindTable(ref.table);
    if (t == nullptr) return Status::NotFound("unknown table: " + ref.table);
    for (const std::string& a : aliases) {
      if (a == ref.effective_alias()) {
        return Status::InvalidArgument("duplicate alias: " + a);
      }
    }
    aliases.push_back(ref.effective_alias());
    tables.push_back(t);
    return Status::OK();
  };
  for (const TableRef& ref : stmt.from) RAPTOR_RETURN_NOT_OK(bind_table(ref));
  for (const JoinClause& j : stmt.joins) RAPTOR_RETURN_NOT_OK(bind_table(j.table));

  Binder binder(aliases, tables);
  Evaluator eval(binder);

  // Gather conjuncts from WHERE and all JOIN ... ON clauses.
  std::vector<const Expr*> raw_conjuncts;
  SplitConjuncts(stmt.where.get(), &raw_conjuncts);
  for (const JoinClause& j : stmt.joins) {
    SplitConjuncts(j.on.get(), &raw_conjuncts);
  }
  std::vector<Conjunct> conjuncts;
  conjuncts.reserve(raw_conjuncts.size());
  for (const Expr* e : raw_conjuncts) {
    Conjunct c;
    c.expr = e;
    CollectAliases(*e, binder, &c.aliases);
    conjuncts.push_back(std::move(c));
  }

  size_t n_aliases = aliases.size();

  // Effective streaming toggles for this statement: a LIMIT on a DISTINCT
  // query counts post-dedup rows, so it only pushes down when the dedup is
  // streaming; ORDER BY must see every row, so it disables the pushdown.
  bool streaming_distinct = stmt.distinct && options.streaming_distinct;
  bool push_limit = options.push_limit && stmt.limit >= 0 &&
                    stmt.order_by.empty() &&
                    (!stmt.distinct || streaming_distinct);

  // --- Base-table filtering -------------------------------------------------
  // For each alias, gather its single-table conjuncts; try index probes for
  // equality / IN conjuncts on indexed columns, then filter the candidates.
  // With LIMIT pushed down, the first table's filtering is deferred into
  // the pipeline so its scan stops early; later tables always materialize
  // (hash-join build sides and cross products iterate them repeatedly).
  std::vector<std::vector<const Expr*>> filters(n_aliases);
  for (size_t a = 0; a < n_aliases; ++a) {
    for (Conjunct& c : conjuncts) {
      if (c.aliases.size() == 1 && *c.aliases.begin() == static_cast<int>(a)) {
        filters[a].push_back(c.expr);
        c.applied = true;
      }
    }
  }
  // Compile each single-table filter against the frozen columnar storage
  // once per query; entries stay parallel to filters[a] so a predicate a
  // shard cannot serve falls back to Eval in the same conjunct position.
  std::vector<std::vector<ColumnPredicate>> compiled(n_aliases);
  if (options.columnar_scan) {
    for (size_t a = 0; a < n_aliases; ++a) {
      compiled[a].reserve(filters[a].size());
      for (const Expr* f : filters[a]) {
        compiled[a].push_back(
            ColumnPredicate::Compile(*f, binder, static_cast<int>(a)));
      }
    }
  }
  std::vector<std::vector<RowId>> candidates(n_aliases);
  std::vector<RowId> lazy0_seed;
  bool lazy0 = false;
  bool lazy0_scan_all = false;
  for (size_t a = 0; a < n_aliases; ++a) {
    const Table* table = tables[a];
    // Index selection: rank every probe-able equality / IN conjunct on
    // this alias by its aggregate per-shard cardinality (Table::ProbeCount,
    // no materialization), then materialize only the winner — the same
    // cheapest-access-path choice the graph matcher makes through
    // ProbeCountNodes. (For IN probes the rank sums per-value counts, an
    // upper bound on the deduplicated union.)
    std::vector<RowId> seed;
    bool seeded = false;
    int best_col = -1;
    const Value* best_eq = nullptr;
    const std::vector<Value>* best_in = nullptr;
    size_t best_count = static_cast<size_t>(-1);
    for (const Expr* f : filters[a]) {
      int col_idx = -1;
      const Value* eq = nullptr;
      const std::vector<Value>* in = nullptr;
      if (f->kind == ExprKind::kBinary && f->op == BinaryOp::kEq) {
        const Expr* col = nullptr;
        const Expr* lit = nullptr;
        if (f->lhs->kind == ExprKind::kColumnRef &&
            f->rhs->kind == ExprKind::kLiteral) {
          col = f->lhs.get();
          lit = f->rhs.get();
        } else if (f->rhs->kind == ExprKind::kColumnRef &&
                   f->lhs->kind == ExprKind::kLiteral) {
          col = f->rhs.get();
          lit = f->lhs.get();
        }
        if (col != nullptr) {
          auto bc = binder.Resolve(*col);
          if (bc.ok() && bc.value().alias_idx == static_cast<int>(a) &&
              table->HasIndex(bc.value().col_idx)) {
            col_idx = bc.value().col_idx;
            eq = &lit->literal;
          }
        }
      } else if (f->kind == ExprKind::kInList && !f->negated &&
                 f->lhs->kind == ExprKind::kColumnRef) {
        auto bc = binder.Resolve(*f->lhs);
        if (bc.ok() && bc.value().alias_idx == static_cast<int>(a) &&
            table->HasIndex(bc.value().col_idx)) {
          col_idx = bc.value().col_idx;
          in = &f->in_list;
        }
      }
      if (col_idx < 0) continue;
      size_t count = 0;
      if (eq != nullptr) {
        count = table->ProbeCount(col_idx, *eq);
      } else {
        for (const Value& v : *in) count += table->ProbeCount(col_idx, v);
      }
      if (count < best_count) {
        best_count = count;
        best_col = col_idx;
        best_eq = eq;
        best_in = in;
      }
    }
    if (best_col >= 0) {
      // Materialize the winner: union of its per-shard buckets, re-sorted
      // into global row order (buckets are disjoint across shards; IN
      // probes additionally dedup across values).
      if (best_eq != nullptr) {
        for (size_t s = 0; s < table->shard_count(); ++s) {
          const std::vector<RowId>& bucket =
              table->Probe(best_col, *best_eq, s);
          seed.insert(seed.end(), bucket.begin(), bucket.end());
        }
      } else {
        std::unordered_set<RowId> merged;
        for (const Value& v : *best_in) {
          for (size_t s = 0; s < table->shard_count(); ++s) {
            for (RowId rid : table->Probe(best_col, v, s)) {
              merged.insert(rid);
            }
          }
        }
        seed.assign(merged.begin(), merged.end());
      }
      std::sort(seed.begin(), seed.end());
      seeded = true;
      stats->index_probe_rows += seed.size();
    }
    if (a == 0 && push_limit) {
      lazy0 = true;
      lazy0_scan_all = !seeded;
      lazy0_seed = std::move(seed);
      continue;
    }
    if (!seeded) {
      seed.resize(table->row_count());
      for (RowId i = 0; i < table->row_count(); ++i) seed[i] = i;
    }
    // Apply all single-table filters, through the compiled column check
    // where one is available for the row's shard.
    Tuple probe(n_aliases, kUnbound);
    std::vector<RowId>& out = candidates[a];
    out.reserve(seed.size());
    for (RowId rid : seed) {
      ++stats->base_rows_scanned;
      probe[a] = rid;
      bool pass = true;
      size_t sh = 0;
      size_t pos = 0;
      if (!compiled[a].empty()) {
        sh = table->ShardOf(rid);
        pos = table->LocalOf(rid);
      }
      for (size_t i = 0; i < filters[a].size(); ++i) {
        if (!compiled[a].empty() && compiled[a][i].compiled(sh)) {
          ++stats->columnar_filter_rows;
          if (!compiled[a][i].Matches(sh, pos)) {
            pass = false;
            break;
          }
          continue;
        }
        auto v = eval.Eval(*filters[a][i], probe);
        if (!v.ok()) return v.status();
        if (!Evaluator::Truthy(v.value())) {
          pass = false;
          break;
        }
      }
      if (pass) out.push_back(rid);
    }
  }

  // --- Join planning (left-deep, FROM order) --------------------------------
  // Classify the remaining conjuncts level by level: equi-join keys against
  // already-bound aliases (hash-join build tables constructed up front from
  // the filtered candidates), and residual conjuncts applied at the first
  // level where all their aliases are bound.
  std::vector<JoinLevel> levels(n_aliases);
  std::set<int> bound;
  for (size_t a = 0; a < n_aliases; ++a) {
    // Equi-join conjuncts linking alias `a` to already-bound aliases:
    // colref(a) = colref(bound).
    for (Conjunct& c : conjuncts) {
      if (c.applied || c.expr->kind != ExprKind::kBinary ||
          c.expr->op != BinaryOp::kEq) {
        continue;
      }
      const Expr& e = *c.expr;
      if (e.lhs->kind != ExprKind::kColumnRef ||
          e.rhs->kind != ExprKind::kColumnRef) {
        continue;
      }
      auto l = binder.Resolve(*e.lhs);
      auto r = binder.Resolve(*e.rhs);
      if (!l.ok() || !r.ok()) continue;
      BoundColumn lc = l.value(), rc = r.value();
      auto is_new = [&](const BoundColumn& b) {
        return b.alias_idx == static_cast<int>(a);
      };
      auto is_bound = [&](const BoundColumn& b) {
        return bound.count(b.alias_idx) > 0;
      };
      if (is_new(lc) && is_bound(rc)) {
        levels[a].keys.emplace_back(lc, rc);
        c.applied = true;
      } else if (is_new(rc) && is_bound(lc)) {
        levels[a].keys.emplace_back(rc, lc);
        c.applied = true;
      }
    }
    bound.insert(static_cast<int>(a));
    // Residual conjuncts that become fully bound at this level (e.g.
    // temporal constraints between two event aliases).
    for (Conjunct& c : conjuncts) {
      if (c.applied) continue;
      bool ready = true;
      for (int al : c.aliases) {
        if (!bound.count(al)) {
          ready = false;
          break;
        }
      }
      if (ready) {
        levels[a].ready.push_back(c.expr);
        c.applied = true;
      }
    }
  }
  for (size_t a = 0; a < n_aliases; ++a) {
    if (levels[a].keys.empty()) continue;
    const Table* table = tables[a];
    std::vector<Value> key_vals;
    for (RowId rid : candidates[a]) {
      key_vals.clear();
      key_vals.reserve(levels[a].keys.size());
      for (const auto& [nc, oc] : levels[a].keys) {
        key_vals.push_back(table->row(rid)[nc.col_idx]);
      }
      levels[a].build_rows.Append(levels[a].build[key_vals], rid);
    }
  }

  // --- Projection setup -----------------------------------------------------
  BlockResultSet result;
  std::vector<const Expr*> projected;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t a = 0; a < n_aliases; ++a) {
        for (size_t c = 0; c < tables[a]->schema().size(); ++c) {
          result.columns.push_back(aliases[a] + "." +
                                   tables[a]->schema().column(c).name);
        }
      }
    } else {
      result.columns.push_back(item.alias.empty() ? item.expr->ToString()
                                                  : item.alias);
      projected.push_back(item.expr.get());
    }
  }
  bool has_star = std::any_of(stmt.items.begin(), stmt.items.end(),
                              [](const SelectItem& i) { return i.star; });

  // --- Streaming scan / join / emit pipeline --------------------------------
  size_t local_cap =
      push_limit ? static_cast<size_t>(stmt.limit) : static_cast<size_t>(-1);
  // Fan the base scan (and with it the whole probe pipeline) out over the
  // first table's shards only when it can pay off: a sharded table, more
  // than one worker allowed, a scan large enough to amortize dispatch, and
  // no small pushed LIMIT (the serial early-exit path finishes those in a
  // handful of row visits).
  size_t scan_size = n_aliases == 0 ? 0
                     : lazy0 ? (lazy0_scan_all ? tables[0]->row_count()
                                               : lazy0_seed.size())
                             : candidates[0].size();
  size_t n_shards = n_aliases == 0 ? 1 : tables[0]->shard_count();
  bool parallel =
      options.parallel_shards > 1 && n_shards > 1 &&
      scan_size >= static_cast<size_t>(std::max(0, options.parallel_min_rows)) &&
      !(push_limit &&
        stmt.limit < static_cast<long long>(options.parallel_min_limit));
  if (!(push_limit && stmt.limit == 0)) {
    if (!parallel) {
      storage::WorkerRows serial_rs;
      TuplePipeline pipeline(stmt, binder, eval, levels, candidates, projected,
                             has_star, streaming_distinct,
                             /*partition_distinct=*/false, local_cap, stats,
                             &serial_rs);
      if (lazy0) {
        pipeline.SetLazyFirstTable(lazy0_scan_all ? nullptr : &lazy0_seed,
                                   lazy0_scan_all, tables[0]->row_count(),
                                   &filters[0]);
        if (!compiled[0].empty()) {
          pipeline.SetCompiledFirstFilters(&compiled[0]);
        }
      }
      pipeline.SetCancelFlag(options.cancel);
      pipeline.SetDeadline(options.deadline);
      pipeline.Run();
      RAPTOR_RETURN_NOT_OK(pipeline.error());
      result.rows.Adopt(std::move(serial_rs.rows));
    } else {
      // Pre-split the shared first-table iteration lists (index seed or
      // filtered candidates) into per-shard sub-lists at plan time, so
      // each worker walks its own list instead of skip-scanning the whole
      // one per shard. Order within a shard is preserved, so the
      // shard-order merge emits exactly the skip-scan rows.
      std::vector<std::vector<RowId>> first_by_shard;
      const std::vector<RowId>* first_list =
          lazy0 ? (lazy0_scan_all ? nullptr : &lazy0_seed)
                : (n_aliases > 0 ? &candidates[0] : nullptr);
      if (first_list != nullptr) {
        first_by_shard.resize(n_shards);
        for (RowId rid : *first_list) {
          first_by_shard[rid & (n_shards - 1)].push_back(rid);
        }
      }
      // LIMIT policy (shared atomic claims vs per-worker caps merged with
      // a re-dedup): see storage/shard_parallel.h.
      storage::ShardRowBudget budget(push_limit, streaming_distinct,
                                     stmt.limit);
      const std::vector<ColumnPredicate>* compiled0 =
          lazy0 && !compiled[0].empty() ? &compiled[0] : nullptr;
      // Wire one pipeline over one positional slice of one shard's
      // first-table iteration space and run it to completion. Shared by
      // both parallel schedulers; a whole shard is the slice
      // [0, SIZE_MAX).
      auto run_slice = [&](size_t shard, size_t lo, size_t hi, Evaluator& ev,
                           ExecStats* slice_stats,
                           storage::WorkerRows* rs) -> Status {
        TuplePipeline pipeline(stmt, binder, ev, levels, candidates,
                               projected, has_star, streaming_distinct,
                               /*partition_distinct=*/streaming_distinct,
                               budget.local_cap, slice_stats, rs);
        if (lazy0) {
          pipeline.SetLazyFirstTable(
              lazy0_scan_all ? nullptr : &first_by_shard[shard],
              lazy0_scan_all, tables[0]->row_count(), &filters[0]);
          if (compiled0 != nullptr) {
            pipeline.SetCompiledFirstFilters(compiled0);
          }
        } else if (first_list != nullptr) {
          pipeline.SetFirstCandidates(&first_by_shard[shard]);
        }
        pipeline.RestrictFirstTableToShard(shard, n_shards);
        if (first_list != nullptr) pipeline.SetFirstTablePrepartitioned();
        pipeline.RestrictFirstTableToMorsel(lo, hi);
        pipeline.SetCancelFlag(options.cancel);
        pipeline.SetDeadline(options.deadline);
        if (budget.shared) {
          pipeline.SetSharedRowBudget(&budget.claimed, budget.shared_cap);
        }
        pipeline.Run();
        return pipeline.error();
      };
      auto fold_stats = [&](const ExecStats& ws) {
        stats->base_rows_scanned += ws.base_rows_scanned;
        stats->index_probe_rows += ws.index_probe_rows;
        stats->join_output_tuples += ws.join_output_tuples;
        stats->rows_emitted += ws.rows_emitted;
        stats->columnar_filter_rows += ws.columnar_filter_rows;
        stats->morsels_executed += ws.morsels_executed;
        stats->morsels_stolen += ws.morsels_stolen;
      };
      if (options.morsel_scheduling) {
        // Morsel scheduler: carve each shard's iteration space into
        // fixed-size positional chunks on per-worker work-stealing
        // deques, so a skewed shard's rows spread across the fleet.
        // Morsels are ordered shard-major, and the merge walks them in
        // that order — the result is byte-identical for a fixed plan
        // regardless of the steal schedule.
        size_t morsel_size =
            static_cast<size_t>(std::max(1, options.morsel_size));
        struct Morsel {
          size_t shard;
          size_t lo;
          size_t hi;
        };
        std::vector<Morsel> morsels;
        RowId row_count = tables[0]->row_count();
        for (size_t s = 0; s < n_shards; ++s) {
          size_t count =
              first_list != nullptr
                  ? first_by_shard[s].size()
                  : (row_count > s ? (row_count - 1 - s) / n_shards + 1 : 0);
          for (size_t lo = 0; lo < count; lo += morsel_size) {
            morsels.push_back({s, lo, std::min(lo + morsel_size, count)});
          }
        }
        struct MorselRun {
          storage::WorkerRows rs;
          Status error = Status::OK();
        };
        std::vector<MorselRun> runs(morsels.size());
        if (!morsels.empty()) {
          size_t workers = std::min<size_t>(
              static_cast<size_t>(options.parallel_shards), morsels.size());
          WorkStealingQueues queues(morsels.size(), workers);
          std::vector<ExecStats> worker_stats(workers);
          ThreadPool::Shared().ParallelFor(workers, workers, [&](size_t w) {
            auto scan_start = obs::TraceSpan::Clock::now();
            // Evaluator IN-list caches are mutable, so every worker owns
            // one (shared across its morsels).
            Evaluator worker_eval(binder);
            ExecStats* ws = &worker_stats[w];
            bool stolen = false;
            for (size_t m = queues.Next(w, &stolen);
                 m != WorkStealingQueues::kDone; m = queues.Next(w, &stolen)) {
              ++ws->morsels_executed;
              if (stolen) ++ws->morsels_stolen;
              const Morsel& mo = morsels[m];
              runs[m].error =
                  run_slice(mo.shard, mo.lo, mo.hi, worker_eval, ws,
                            &runs[m].rs);
              if (!runs[m].error.ok()) break;
            }
            if (options.trace != nullptr) {
              obs::TraceSpan* span = options.trace->AddChild(
                  "morsel_worker[" + std::to_string(w) + "]");
              span->SetWindow(scan_start, obs::TraceSpan::Clock::now());
              span->Set("base_rows_scanned",
                        static_cast<int64_t>(ws->base_rows_scanned));
              span->Set("index_probe_rows",
                        static_cast<int64_t>(ws->index_probe_rows));
              span->Set("rows_emitted", static_cast<int64_t>(ws->rows_emitted));
              span->Set("columnar_filter_rows",
                        static_cast<int64_t>(ws->columnar_filter_rows));
              span->Set("morsels_executed",
                        static_cast<int64_t>(ws->morsels_executed));
              span->Set("morsels_stolen",
                        static_cast<int64_t>(ws->morsels_stolen));
            }
          });
          for (const ExecStats& ws : worker_stats) fold_stats(ws);
        }
        RAPTOR_RETURN_NOT_OK(storage::MergeShardRuns(
            runs, streaming_distinct, &result.rows, [](MorselRun&) {}));
      } else {
        // Legacy scheduler: one worker per storage shard, no stealing.
        struct ShardRun {
          storage::WorkerRows rs;
          ExecStats stats;
          Status error = Status::OK();
        };
        std::vector<ShardRun> runs(n_shards);
        size_t workers = std::min<size_t>(
            static_cast<size_t>(options.parallel_shards), n_shards);
        ThreadPool::Shared().ParallelFor(n_shards, workers, [&](size_t s) {
          auto scan_start = obs::TraceSpan::Clock::now();
          ShardRun& run = runs[s];
          // Evaluator IN-list caches are mutable, so every worker owns one.
          Evaluator shard_eval(binder);
          run.error = run_slice(s, 0, static_cast<size_t>(-1), shard_eval,
                                &run.stats, &run.rs);
          if (options.trace != nullptr) {
            obs::TraceSpan* span = options.trace->AddChild(
                "shard[" + std::to_string(s) + "]");
            span->SetWindow(scan_start, obs::TraceSpan::Clock::now());
            span->Set("base_rows_scanned",
                      static_cast<int64_t>(run.stats.base_rows_scanned));
            span->Set("index_probe_rows",
                      static_cast<int64_t>(run.stats.index_probe_rows));
            span->Set("rows_emitted",
                      static_cast<int64_t>(run.stats.rows_emitted));
            span->Set("columnar_filter_rows",
                      static_cast<int64_t>(run.stats.columnar_filter_rows));
          }
        });
        RAPTOR_RETURN_NOT_OK(storage::MergeShardRuns(
            runs, streaming_distinct, &result.rows,
            [&](ShardRun& run) { fold_stats(run.stats); }));
      }
    }
  }
  if (options.cancel != nullptr &&
      options.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("sql query cancelled");
  }
  if (DeadlinePoller(options.deadline).ExpiredNow()) {
    return Status::Timeout("sql query deadline exceeded");
  }

  // --- ORDER BY / DISTINCT / LIMIT -------------------------------------------
  if (!stmt.order_by.empty()) {
    // Evaluate order keys against result rows is not possible (rows are
    // projected); instead sort tuples is gone. Re-evaluate on result rows by
    // matching the order expr to a projected column where possible.
    std::vector<int> key_cols;
    std::vector<bool> desc;
    for (const OrderItem& o : stmt.order_by) {
      std::string txt = o.expr->ToString();
      int col = -1;
      for (size_t c = 0; c < result.columns.size(); ++c) {
        if (result.columns[c] == txt) {
          col = static_cast<int>(c);
          break;
        }
      }
      if (col < 0) {
        return Status::Unsupported("ORDER BY must reference a selected column: " +
                                   txt);
      }
      key_cols.push_back(col);
      desc.push_back(o.descending);
    }
    // Sorting needs random access over every row: flatten the blocks, sort,
    // and re-adopt as one block.
    std::vector<Row> rows = result.rows.Flatten();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (size_t k = 0; k < key_cols.size(); ++k) {
                         int cmp = a[key_cols[k]].Compare(b[key_cols[k]]);
                         if (cmp != 0) return desc[k] ? cmp > 0 : cmp < 0;
                       }
                       return false;
                     });
    result.rows.Adopt(std::move(rows));
  }
  if (stmt.distinct && !streaming_distinct) {
    // Legacy final dedup pass on the value rows (streaming dedup already
    // filtered duplicates during emission).
    std::unordered_set<Row, ValueRowHash, ValueRowEq> seen;
    std::vector<Row> rows = result.rows.Flatten();
    std::vector<Row> unique;
    unique.reserve(rows.size());
    for (Row& r : rows) {
      if (seen.insert(r).second) unique.push_back(std::move(r));
    }
    result.rows.Adopt(std::move(unique));
  }
  if (stmt.limit >= 0 &&
      result.rows.row_count() > static_cast<size_t>(stmt.limit)) {
    result.rows.Truncate(static_cast<size_t>(stmt.limit));
  }
  return result;
}

Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                                const SelectOptions& options,
                                ExecStats* stats) {
  auto blocks = ExecuteSelectBlocks(stmt, catalog, options, stats);
  if (!blocks.ok()) return blocks.status();
  ResultSet result;
  result.columns = std::move(blocks.value().columns);
  result.rows = blocks.value().rows.Flatten();
  return result;
}

double EstimateSelectCost(const SelectStmt& stmt, const Catalog& catalog) {
  // Mirror the executor's binding pass, but tolerate unknown tables: an
  // alias we cannot bind estimates as zero rows rather than erroring (the
  // real run will report the error; admission only needs a price).
  std::vector<std::string> aliases;
  std::vector<const Table*> tables;
  auto bind_table = [&](const TableRef& ref) {
    const Table* t = catalog.FindTable(ref.table);
    if (t == nullptr) return;
    aliases.push_back(ref.effective_alias());
    tables.push_back(t);
  };
  for (const TableRef& ref : stmt.from) bind_table(ref);
  for (const JoinClause& j : stmt.joins) bind_table(j.table);
  if (tables.empty()) return 0.0;

  Binder binder(aliases, tables);
  std::vector<const Expr*> raw_conjuncts;
  SplitConjuncts(stmt.where.get(), &raw_conjuncts);
  for (const JoinClause& j : stmt.joins) {
    SplitConjuncts(j.on.get(), &raw_conjuncts);
  }

  size_t n_aliases = aliases.size();
  // Per alias: the cheapest probe-able eq/IN conjunct's cardinality, or the
  // full row count when nothing probes — exactly the access-path rank the
  // executor's index selection computes before materializing the winner.
  std::vector<double> est(n_aliases, 0.0);
  for (size_t a = 0; a < n_aliases; ++a) est[a] = static_cast<double>(tables[a]->row_count());
  for (const Expr* f : raw_conjuncts) {
    int col_idx = -1;
    int alias_idx = -1;
    const Value* eq = nullptr;
    const std::vector<Value>* in = nullptr;
    if (f->kind == ExprKind::kBinary && f->op == BinaryOp::kEq) {
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      if (f->lhs->kind == ExprKind::kColumnRef &&
          f->rhs->kind == ExprKind::kLiteral) {
        col = f->lhs.get();
        lit = f->rhs.get();
      } else if (f->rhs->kind == ExprKind::kColumnRef &&
                 f->lhs->kind == ExprKind::kLiteral) {
        col = f->rhs.get();
        lit = f->lhs.get();
      }
      if (col != nullptr) {
        auto bc = binder.Resolve(*col);
        if (bc.ok() && tables[bc.value().alias_idx]->HasIndex(bc.value().col_idx)) {
          alias_idx = bc.value().alias_idx;
          col_idx = bc.value().col_idx;
          eq = &lit->literal;
        }
      }
    } else if (f->kind == ExprKind::kInList && !f->negated &&
               f->lhs->kind == ExprKind::kColumnRef) {
      auto bc = binder.Resolve(*f->lhs);
      if (bc.ok() && tables[bc.value().alias_idx]->HasIndex(bc.value().col_idx)) {
        alias_idx = bc.value().alias_idx;
        col_idx = bc.value().col_idx;
        in = &f->in_list;
      }
    }
    if (col_idx < 0) continue;
    const Table* table = tables[alias_idx];
    size_t count = 0;
    if (eq != nullptr) {
      count = table->ProbeCount(col_idx, *eq);
    } else {
      for (const Value& v : *in) count += table->ProbeCount(col_idx, v);
    }
    est[alias_idx] = std::min(est[alias_idx], static_cast<double>(count));
  }

  // The driving alias threads every candidate through the whole left-deep
  // pipeline, so scale it by the join depth; later aliases pay their own
  // filter scan once (hash builds) — a deliberately join-selectivity-blind
  // upper-flavored estimate, cheap and monotone in the inputs.
  double cost = est[0] * static_cast<double>(n_aliases);
  for (size_t a = 1; a < n_aliases; ++a) cost += est[a];
  return cost;
}

}  // namespace raptor::sql
