// Planner + executor for the SQL subset.
//
// The plan is intentionally PostgreSQL-like in miniature:
//  * WHERE/ON conjuncts are classified into single-table pushdown filters,
//    equi-join predicates, and residual (cross-pattern) predicates;
//  * base tables are filtered first, using hash indexes for equality and
//    IN probes where available;
//  * joins are left-deep in FROM order, hash joins on available equi-join
//    keys, nested-loop otherwise;
//  * residual predicates (e.g. temporal constraints between event aliases,
//    which are non-equi) are applied as soon as their aliases are bound.
//
// This gives the honest behaviour Table VIII depends on: a giant SQL query
// with many joins and non-equi temporal constraints pays for large
// intermediate results, while TBQL's scheduler (engine/scheduler.*) avoids
// them with per-pattern queries + constraint propagation.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relational/sql_ast.h"
#include "storage/relational/table.h"

namespace raptor::sql {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  std::string ToString(size_t max_rows = 20) const;
};

/// Execution counters, exposed for the scheduler-ablation benchmark.
struct ExecStats {
  size_t base_rows_scanned = 0;     // rows touched by base-table filters
  size_t index_probe_rows = 0;      // rows fetched through index probes
  size_t join_output_tuples = 0;    // tuples produced across all joins
};

class Catalog {
 public:
  virtual ~Catalog() = default;
  virtual const Table* FindTable(std::string_view name) const = 0;
};

/// Execute `stmt` against `catalog`. Thread-compatible (no shared state).
Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                                ExecStats* stats = nullptr);

}  // namespace raptor::sql
