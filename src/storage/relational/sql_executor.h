// Planner + executor for the SQL subset.
//
// The plan is intentionally PostgreSQL-like in miniature:
//  * WHERE/ON conjuncts are classified into single-table pushdown filters,
//    equi-join predicates, and residual (cross-pattern) predicates;
//  * base tables are filtered first, using hash indexes for equality and
//    IN probes where available;
//  * joins are left-deep in FROM order, hash joins on available equi-join
//    keys, nested-loop otherwise — executed as a streaming pipeline that
//    threads one tuple through the levels instead of materializing a tuple
//    vector per join level;
//  * residual predicates (e.g. temporal constraints between event aliases,
//    which are non-equi) are applied as soon as their aliases are bound;
//  * with LIMIT pushed down (SelectOptions::push_limit) the pipeline —
//    including the first table's base scan — stops as soon as LIMIT rows
//    have been emitted, and DISTINCT short-circuits through an incremental
//    seen-set (SelectOptions::streaming_distinct) instead of a final dedup
//    pass. ORDER BY forces full materialization, so it disables the LIMIT
//    pushdown but not the streaming dedup;
//  * hash-join build sides store per-key row ids as chunked candidate
//    blocks in one arena per level instead of one heap vector per key,
//    cutting allocation churn on large builds;
//  * when the base table is sharded and its scan is large enough, the
//    scan — and with it the whole downstream join/probe pipeline — fans
//    out onto the shared thread pool (common/thread_pool.h). The default
//    scheduler carves each shard's scan (or index seed list) into
//    fixed-size morsels (SelectOptions::morsel_size) distributed over
//    per-worker work-stealing deques, so a skewed shard's rows spread
//    across the whole fleet; morsel_scheduling = false keeps the legacy
//    one-worker-per-shard fan-out. Workers emit into thread-local result
//    sets merged in morsel/shard order; a pushed-down LIMIT cancels
//    cooperatively via an atomic row budget, and streaming DISTINCT
//    emissions hash-partition per worker so the merge adopts whole
//    compacted blocks (storage/shard_parallel.h). ORDER BY sorts after
//    the merge, so rows comparing equal on every key may order
//    differently than a serial run; key-unique sorts are unaffected;
//  * single-table filters of the shape `col op literal` / `col IN (...)`
//    compile against the table's frozen columnar storage (table.h /
//    storage/columnar.h): int comparisons read the SoA int vector
//    directly and string equality compares dictionary ids as uint32s,
//    skipping per-row Value variant dispatch. Filters that cannot be
//    represented exactly (doubles, NULLs, mixed-type columns, complex
//    expressions) stay on the row-path evaluator per predicate, and
//    columnar_scan = false disables the fast path entirely for the
//    differential harness.
//
// This gives the honest behaviour Table VIII depends on: a giant SQL query
// with many joins and non-equi temporal constraints pays for large
// intermediate results, while TBQL's scheduler (engine/scheduler.*) avoids
// them with per-pattern queries + constraint propagation.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/relational/sql_ast.h"
#include "storage/relational/table.h"
#include "storage/row_block.h"

namespace raptor::storage {
template <typename ResultT>
class QueryResultCache;
}  // namespace raptor::storage

namespace raptor::obs {
class TraceSpan;
}  // namespace raptor::obs

namespace raptor::sql {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  std::string ToString(size_t max_rows = 20) const;
};

/// Chunked result: rows live in per-worker blocks (one per storage shard
/// after a parallel scan, one for a serial run). A non-DISTINCT parallel
/// merge adopts each worker block wholesale (rows.pushed_rows() == 0 — the
/// zero-copy merge); consumers stream through storage::RowCursor.
/// ResultSet remains the materialized compatibility view (ExecuteSelect
/// flattens one of these).
struct BlockResultSet {
  std::vector<std::string> columns;
  storage::RowBlocks<Row> rows;

  storage::RowCursor<Row> cursor() const {
    return storage::RowCursor<Row>(&rows);
  }
};

/// Execution counters, exposed for the scheduler-ablation benchmark.
struct ExecStats {
  size_t base_rows_scanned = 0;     // rows touched by base-table filters
  size_t index_probe_rows = 0;      // rows fetched through index probes
  size_t join_output_tuples = 0;    // tuples produced across all joins
  size_t rows_emitted = 0;          // result rows produced
  size_t columnar_filter_rows = 0;  // predicate checks served by frozen columns
  size_t morsels_executed = 0;      // scan morsels run by the parallel driver
  size_t morsels_stolen = 0;        // of those, taken from another worker
};

/// Streaming toggles; the all-false combination is the legacy
/// materialize-then-truncate behavior, kept for benchmark baselines and
/// differential tests.
struct SelectOptions {
  /// Stop the scan/join pipeline once LIMIT rows have been emitted
  /// (DISTINCT queries only push when streaming_distinct is also on, since
  /// the limit counts post-dedup rows; ORDER BY disables the pushdown).
  bool push_limit = true;
  /// Apply DISTINCT through an incremental seen-set during emission.
  /// Off = legacy final dedup pass over the materialized result.
  bool streaming_distinct = true;
  /// Evaluate eligible single-table filters against the frozen columnar
  /// storage (dictionary-encoded string equality, direct int reads). Off =
  /// row-path Value evaluation for every filter, kept for the differential
  /// harness. Results are identical either way; predicates a column cannot
  /// represent exactly fall back to the row path individually.
  bool columnar_scan = true;
  /// Parallel scheduler: carve the base scan into morsel_size chunks on
  /// per-worker work-stealing deques. Off = legacy one worker per storage
  /// shard (no stealing, skew-sensitive).
  bool morsel_scheduling = true;
  /// Rows per morsel. Small enough that a skewed shard yields many
  /// stealable units, large enough to amortize per-morsel pipeline setup.
  int morsel_size = 2048;
  /// Maximum shard-parallel workers for the base scan / probe pipeline;
  /// the effective worker count is min(parallel_shards, base table
  /// shard_count()). 1 = always serial (the differential baseline).
  int parallel_shards = 4;
  /// Stay serial when the base-table scan (or its index seed list) is
  /// smaller than this: tiny scans lose more to dispatch than they gain.
  int parallel_min_rows = 256;
  /// Stay serial when a pushed-down LIMIT is below this: the serial
  /// early-exit path finishes such queries in a handful of row visits.
  int parallel_min_limit = 8;
  /// Cooperative cancellation: when non-null and set, the base scan stops
  /// (every worker polls it alongside the shared LIMIT budget) and the
  /// query returns Status::Cancelled. The flag must outlive the call.
  const std::atomic<bool>* cancel = nullptr;
  /// Absolute deadline polled inside the scan loops next to the cancel
  /// flag (amortized clock reads — common/deadline.h), so a single giant
  /// scan stops within one poll stride of expiry and the query returns
  /// Status::Timeout.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Multi-query optimization: when non-null, Database::QueryBlocks
  /// memoizes full-scan results (no LIMIT) keyed by query text so
  /// structurally-identical compiled sub-queries share one execution per
  /// epoch. The owner (service::HuntService) clears it on every store
  /// mutation. Must outlive the call.
  storage::QueryResultCache<BlockResultSet>* result_cache = nullptr;
  /// EXPLAIN ANALYZE hook: when non-null, the parallel drivers hang one
  /// timed child span per shard run / morsel worker under it (scan, probe,
  /// and steal counters included) and QueryBlocks records subresult cache
  /// hits. Null (the default) costs one pointer test per query. Must
  /// outlive the call.
  obs::TraceSpan* trace = nullptr;
};

class Catalog {
 public:
  virtual ~Catalog() = default;
  virtual const Table* FindTable(std::string_view name) const = 0;
};

/// Execute `stmt` against `catalog`. Thread-compatible (no shared state).
Result<ResultSet> ExecuteSelect(const SelectStmt& stmt, const Catalog& catalog,
                                const SelectOptions& options = {},
                                ExecStats* stats = nullptr);

/// Execute `stmt`, returning the chunked block result (the zero-copy
/// parallel-merge path; ExecuteSelect is a flattening wrapper over this).
Result<BlockResultSet> ExecuteSelectBlocks(const SelectStmt& stmt,
                                           const Catalog& catalog,
                                           const SelectOptions& options = {},
                                           ExecStats* stats = nullptr);

/// Plan-time cost estimate in "rows visited" units, from the same exact
/// per-shard index cardinalities (Table::ProbeCount) the planner ranks
/// access paths with: each alias contributes its cheapest probe-able
/// candidate count (or its full row count without one), with the driving
/// alias additionally scaled by the join depth it pipelines through. No
/// rows are touched — the estimate costs a handful of hash probes, so
/// admission layers (service::HuntService) can price a query before
/// running it. Unknown tables / unresolvable columns degrade gracefully
/// (they contribute zero), never error.
double EstimateSelectCost(const SelectStmt& stmt, const Catalog& catalog);

}  // namespace raptor::sql
