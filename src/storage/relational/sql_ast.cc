#include "storage/relational/sql_ast.h"

#include "common/strings.h"

namespace raptor::sql {

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "!=";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kLike: return "LIKE";
    case BinaryOp::kNotLike: return "NOT LIKE";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

std::unique_ptr<Expr> Expr::MakeColumn(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

std::unique_ptr<Expr> Expr::MakeBinary(BinaryOp op, std::unique_ptr<Expr> lhs,
                                       std::unique_ptr<Expr> rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

std::unique_ptr<Expr> Expr::MakeNot(std::unique_ptr<Expr> inner) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnaryNot;
  e->lhs = std::move(inner);
  return e;
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto e = std::make_unique<Expr>();
  e->kind = kind;
  e->literal = literal;
  e->table = table;
  e->column = column;
  e->op = op;
  e->in_list = in_list;
  e->negated = negated;
  if (lhs) e->lhs = lhs->Clone();
  if (rhs) e->rhs = rhs->Clone();
  return e;
}

namespace {

std::string QuoteLiteral(const Value& v) {
  if (v.is_text()) {
    return "'" + ReplaceAll(v.AsText(), "'", "''") + "'";
  }
  return v.ToString();
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return QuoteLiteral(literal);
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kUnaryNot:
      return "NOT (" + lhs->ToString() + ")";
    case ExprKind::kInList: {
      std::vector<std::string> parts;
      parts.reserve(in_list.size());
      for (const Value& v : in_list) parts.push_back(QuoteLiteral(v));
      return lhs->ToString() + (negated ? " NOT IN (" : " IN (") +
             Join(parts, ", ") + ")";
    }
    case ExprKind::kBinary: {
      std::string l = lhs->ToString();
      std::string r = rhs->ToString();
      if (op == BinaryOp::kAnd || op == BinaryOp::kOr) {
        return "(" + l + " " + BinaryOpName(op) + " " + r + ")";
      }
      return l + " " + BinaryOpName(op) + " " + r;
    }
  }
  return "?";
}

std::string SelectStmt::ToString() const {
  std::string out = "SELECT ";
  if (distinct) out += "DISTINCT ";
  std::vector<std::string> item_strs;
  for (const SelectItem& item : items) {
    if (item.star) {
      item_strs.push_back("*");
    } else {
      std::string s = item.expr->ToString();
      if (!item.alias.empty()) s += " AS " + item.alias;
      item_strs.push_back(std::move(s));
    }
  }
  out += Join(item_strs, ", ");
  out += " FROM ";
  std::vector<std::string> from_strs;
  for (const TableRef& t : from) {
    from_strs.push_back(t.alias.empty() ? t.table : t.table + " " + t.alias);
  }
  out += Join(from_strs, ", ");
  for (const JoinClause& j : joins) {
    out += " JOIN " + j.table.table;
    if (!j.table.alias.empty()) out += " " + j.table.alias;
    out += " ON " + j.on->ToString();
  }
  if (where) out += " WHERE " + where->ToString();
  if (!order_by.empty()) {
    out += " ORDER BY ";
    std::vector<std::string> ord;
    for (const OrderItem& o : order_by) {
      ord.push_back(o.expr->ToString() + (o.descending ? " DESC" : ""));
    }
    out += Join(ord, ", ");
  }
  if (limit >= 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace raptor::sql
