// Chunked result-row storage and the streaming cursor over it.
//
// The shard-parallel query drivers produce one row vector per worker; the
// old merge moved every row into a single flat result vector. RowBlocks
// instead *adopts* each worker's vector wholesale as one block (a single
// std::vector move — no per-row moves, no reallocation of a combined
// vector), which is the ROADMAP "zero-copy merge" item. Rows that cannot
// be adopted block-wise (streaming-DISTINCT merges must dedup row by row;
// ORDER BY must re-sort) are Push()ed individually; the adopted/pushed
// counters make the distinction observable, so tests and benches can
// assert that a non-DISTINCT parallel merge performed no per-row work.
//
// RowCursor is the client-facing streaming view: it walks the blocks as
// contiguous spans without flattening, so a consumer can stream a large
// result (HuntService tickets hand one out per finished hunt) while the
// owning RowBlocks stays put. The cursor never outlives its RowBlocks.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace raptor::storage {

template <typename RowT>
class RowBlocks {
 public:
  using Block = std::vector<RowT>;

  /// Take ownership of an entire block of rows. O(1): no per-row work.
  void Adopt(Block&& rows) {
    if (rows.empty()) return;
    adopted_rows_ += rows.size();
    row_count_ += rows.size();
    blocks_.push_back(std::move(rows));
    open_ = false;
  }

  /// Append one row to the open tail block (starting one if the last
  /// block was adopted). Used by merges that must inspect rows (DISTINCT
  /// re-dedup) and by serial compatibility paths.
  void Push(RowT&& row) {
    if (!open_) {
      blocks_.emplace_back();
      open_ = true;
    }
    blocks_.back().push_back(std::move(row));
    ++pushed_rows_;
    ++row_count_;
  }

  size_t row_count() const { return row_count_; }
  size_t block_count() const { return blocks_.size(); }
  bool empty() const { return row_count_ == 0; }

  /// Rows that arrived block-wise (no per-row move) vs one at a time.
  /// adopted_rows() + pushed_rows() == row_count() at all times.
  size_t adopted_rows() const { return adopted_rows_; }
  size_t pushed_rows() const { return pushed_rows_; }

  const std::vector<Block>& blocks() const { return blocks_; }

  /// Keep only the first `n` rows: drops whole tail blocks and resizes the
  /// boundary block (the trailing-LIMIT trim, which never needs to move
  /// surviving rows).
  void Truncate(size_t n) {
    if (n >= row_count_) return;
    size_t kept = 0;
    size_t b = 0;
    for (; b < blocks_.size() && kept + blocks_[b].size() <= n; ++b) {
      kept += blocks_[b].size();
    }
    if (b < blocks_.size()) {
      blocks_[b].resize(n - kept);
      if (blocks_[b].empty()) {
        blocks_.resize(b);
      } else {
        blocks_.resize(b + 1);
      }
    }
    row_count_ = n;
    // The trim invalidates the arrival-mode split; fold the loss into the
    // pushed side so the counters still sum to row_count().
    if (adopted_rows_ > n) adopted_rows_ = n;
    pushed_rows_ = n - adopted_rows_;
    open_ = false;
  }

  /// Move every row into one flat vector (the materialized compatibility
  /// path behind the legacy ResultSet APIs). Leaves this container empty.
  Block Flatten() {
    Block out;
    if (blocks_.size() == 1) {
      out = std::move(blocks_[0]);
    } else {
      out.reserve(row_count_);
      for (Block& b : blocks_) {
        for (RowT& row : b) out.push_back(std::move(row));
      }
    }
    blocks_.clear();
    row_count_ = adopted_rows_ = pushed_rows_ = 0;
    open_ = false;
    return out;
  }

 private:
  std::vector<Block> blocks_;
  size_t row_count_ = 0;
  size_t adopted_rows_ = 0;
  size_t pushed_rows_ = 0;
  bool open_ = false;  // tail block accepts Push()
};

/// Forward-only streaming view over a RowBlocks: yields one contiguous
/// span per block, or single rows through Next(). The underlying blocks
/// must outlive the cursor and stay unmodified while it is in use.
template <typename RowT>
class RowCursor {
 public:
  struct Span {
    const RowT* data = nullptr;
    size_t size = 0;
  };

  RowCursor() = default;
  explicit RowCursor(const RowBlocks<RowT>* blocks) : blocks_(blocks) {}

  /// Next non-empty chunk of rows; false at end of stream.
  bool NextSpan(Span* out) {
    if (blocks_ == nullptr) return false;
    while (block_ < blocks_->blocks().size()) {
      const auto& b = blocks_->blocks()[block_++];
      if (b.empty()) continue;
      out->data = b.data();
      out->size = b.size();
      return true;
    }
    return false;
  }

  /// Next single row; nullptr at end of stream.
  const RowT* Next() {
    if (span_pos_ >= span_.size && !NextSpanInto()) return nullptr;
    return &span_.data[span_pos_++];
  }

 private:
  bool NextSpanInto() {
    span_pos_ = 0;
    return NextSpan(&span_);
  }

  const RowBlocks<RowT>* blocks_ = nullptr;
  size_t block_ = 0;
  Span span_;
  size_t span_pos_ = 0;
};

}  // namespace raptor::storage
