#include "nlp/tokenizer.h"

#include <cctype>

namespace raptor::nlp {

namespace {

bool IsOpenPunct(char c) {
  return c == '(' || c == '[' || c == '{' || c == '"' || c == '\'' ||
         c == '`';
}

bool IsClosePunct(char c) {
  return c == ')' || c == ']' || c == '}' || c == '"' || c == '\'' ||
         c == '.' || c == ',' || c == ';' || c == ':' || c == '!' ||
         c == '?';
}

void Emit(std::vector<Token>* out, std::string_view text, size_t begin,
          size_t end) {
  if (end <= begin) return;
  Token tok;
  tok.text = std::string(text.substr(begin, end - begin));
  tok.begin = begin;
  tok.end = end;
  out->push_back(std::move(tok));
}

}  // namespace

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i >= text.size()) break;
    size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t begin = start, end = i;
    // Peel leading punctuation.
    while (begin < end && IsOpenPunct(text[begin])) {
      Emit(&out, text, begin, begin + 1);
      ++begin;
    }
    // Find trailing punctuation run (emitted after the word).
    size_t word_end = end;
    while (word_end > begin && IsClosePunct(text[word_end - 1])) {
      // Keep a '.' that is an internal part of a dotted token only when it
      // is not the last character ("192.168.29.128." peels the final dot).
      --word_end;
    }
    // Do not peel dots that leave an empty token (pure punctuation word).
    if (word_end == begin && end > begin) {
      // Whole token is punctuation: emit each char.
      for (size_t k = begin; k < end; ++k) Emit(&out, text, k, k + 1);
      continue;
    }
    // Split the word body on path separators (PTB-style '/' splitting).
    size_t seg_start = begin;
    for (size_t k = begin; k < word_end; ++k) {
      char c = text[k];
      if (c == '/' || c == '\\') {
        Emit(&out, text, seg_start, k);
        Emit(&out, text, k, k + 1);
        seg_start = k + 1;
      }
    }
    Emit(&out, text, seg_start, word_end);
    // Emit the trailing punctuation characters.
    for (size_t k = word_end; k < end; ++k) Emit(&out, text, k, k + 1);
  }
  return out;
}

}  // namespace raptor::nlp
