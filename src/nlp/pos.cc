#include "nlp/pos.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

const std::unordered_set<std::string>& VerbBases() {
  static const std::unordered_set<std::string> kBases = {
      "use",      "leverage",  "utilize",  "employ",    "read",
      "write",    "download",  "upload",   "open",      "execute",
      "launch",   "run",       "connect",  "send",      "receive",
      "transfer", "steal",     "exfiltrate", "compress", "encrypt",
      "decrypt",  "scan",      "copy",     "create",    "spawn",
      "drop",     "install",   "access",   "gather",    "collect",
      "leak",     "fetch",     "retrieve", "modify",    "delete",
      "rename",   "extract",   "store",    "save",      "visit",
      "click",    "deliver",   "inject",   "communicate", "crack",
      "scrape",   "encode",    "decode",   "establish", "maintain",
      "exploit",  "penetrate", "infect",   "attempt",   "correspond",
      "involve",  "include",   "contain",  "get",       "obtain",
      "move",     "place",     "attack",    "start",
      "load",     "log",       "beacon",   "request",   "resolve",
      "target",   "persist",   "escalate", "enumerate", "harvest",
  };
  return kBases;
}

const std::unordered_map<std::string, std::string>& IrregularVerbs() {
  static const std::unordered_map<std::string, std::string> kIrregular = {
      {"wrote", "write"},   {"written", "write"}, {"read", "read"},
      {"ran", "run"},       {"run", "run"},       {"sent", "send"},
      {"stole", "steal"},   {"stolen", "steal"},  {"got", "get"},
      {"took", "take"},     {"taken", "take"},    {"made", "make"},
      {"did", "do"},        {"done", "do"},       {"was", "be"},
      {"were", "be"},       {"is", "be"},         {"are", "be"},
      {"been", "be"},       {"being", "be"},      {"has", "have"},
      {"had", "have"},      {"have", "have"},     {"went", "go"},
      {"came", "come"},     {"saw", "see"},       {"seen", "see"},
      {"found", "find"},    {"left", "leave"},    {"brought", "bring"},
      {"began", "begin"},   {"begun", "begin"},   {"chose", "choose"},
      {"gave", "give"},     {"given", "give"},    {"put", "put"},
      {"kept", "keep"},     {"held", "hold"},     {"set", "set"},
      {"built", "build"},   {"sought", "seek"},
  };
  return kIrregular;
}

enum class LexClass {
  kAux, kDet, kAdp, kPron, kAdv, kCconj, kSconj, kNoun, kAdj,
};

const std::unordered_map<std::string, LexClass>& Lexicon() {
  static const std::unordered_map<std::string, LexClass> kLex = [] {
    std::unordered_map<std::string, LexClass> m;
    auto add = [&m](std::initializer_list<const char*> words, LexClass cls) {
      for (const char* w : words) m.emplace(w, cls);
    };
    add({"is", "are", "was", "were", "be", "been", "being", "has", "have",
         "had", "do", "does", "did", "will", "would", "can", "could", "may",
         "might", "must", "should", "shall"},
        LexClass::kAux);
    add({"the", "a", "an", "this", "that", "these", "those", "its", "his",
         "her", "their", "our", "such", "each", "any", "some", "no", "all",
         "both", "another"},
        LexClass::kDet);
    add({"of", "in", "on", "at", "from", "to", "into", "onto", "with", "by",
         "for", "over", "under", "through", "against", "via", "within",
         "during", "about", "across", "toward", "towards", "between",
         "after", "before"},
        LexClass::kAdp);
    add({"it", "he", "she", "they", "them", "him", "we", "you", "i",
         "itself", "himself", "themselves", "who", "whom"},
        LexClass::kPron);
    add({"then", "finally", "first", "next", "later", "subsequently",
         "afterwards", "also", "again", "immediately", "remotely",
         "locally", "successfully", "further", "back", "directly", "mainly",
         "already", "once", "now", "there", "here", "not"},
        LexClass::kAdv);
    add({"and", "or", "but"}, LexClass::kCconj);
    add({"which", "when", "where", "because", "if", "while", "as", "since",
         "whereas", "although", "so"},
        LexClass::kSconj);
    add({"attacker", "file", "files", "process", "processes", "data",
         "information", "credentials", "host", "hosts", "server", "servers",
         "victim", "malware", "payload", "tool", "tools", "utility",
         "script", "command", "commands", "stage", "image", "images",
         "metadata", "address", "addresses", "connection", "connections",
         "system", "systems", "user", "users", "password", "passwords",
         "vulnerability", "vulnerabilities", "service", "services", "email",
         "emails", "attachment", "attachments", "link", "links", "browser",
         "extension", "backdoor", "repository", "device", "devices",
         "network", "networks", "step", "steps", "behavior", "behaviors",
         "activity", "activities", "asset", "assets", "shell", "kernel",
         "macro", "document", "documents", "text", "content", "contents",
         "something", "details", "scanning", "cracker", "compression",
         "reconnaissance", "penetration", "movement", "exfiltration",
         "phishing"},
        LexClass::kNoun);
    add({"malicious", "sensitive", "valuable", "important", "remote",
         "local", "clear", "public", "private", "direct", "known",
         "notorious", "final", "initial", "multiple", "several", "new",
         "same", "lateral", "first"},
        LexClass::kAdj);
    return m;
  }();
  return kLex;
}

bool IsVerbLike(const std::string& lower) {
  if (VerbBases().count(lower)) return true;
  if (IrregularVerbs().count(lower)) return true;
  // Inflected form of a known base?
  std::string lemma = Lemma(lower, Pos::kVerb);
  return VerbBases().count(lemma) > 0;
}

Pos TagOne(const std::string& raw, bool sentence_initial) {
  if (raw.empty()) return Pos::kX;
  char c0 = raw[0];
  if (std::ispunct(static_cast<unsigned char>(c0)) && raw.size() == 1) {
    return Pos::kPunct;
  }
  if (IsAllDigits(raw)) return Pos::kNum;
  std::string lower = ToLower(raw);
  auto it = Lexicon().find(lower);
  if (it != Lexicon().end()) {
    switch (it->second) {
      case LexClass::kAux: return Pos::kAux;
      case LexClass::kDet: return Pos::kDet;
      case LexClass::kAdp: return Pos::kAdp;
      case LexClass::kPron: return Pos::kPron;
      case LexClass::kAdv: return Pos::kAdv;
      case LexClass::kCconj: return Pos::kCconj;
      case LexClass::kSconj: return Pos::kSconj;
      case LexClass::kNoun: return Pos::kNoun;
      case LexClass::kAdj: return Pos::kAdj;
    }
  }
  if (IsVerbLike(lower)) return Pos::kVerb;
  if (EndsWith(lower, "ly")) return Pos::kAdv;
  if (EndsWith(lower, "tion") || EndsWith(lower, "ment") ||
      EndsWith(lower, "ness") || EndsWith(lower, "ity") ||
      EndsWith(lower, "ware")) {
    return Pos::kNoun;
  }
  if (EndsWith(lower, "ed") || EndsWith(lower, "ing")) return Pos::kVerb;
  if (!sentence_initial && std::isupper(static_cast<unsigned char>(c0))) {
    return Pos::kPropn;
  }
  return Pos::kNoun;
}

}  // namespace

const char* PosName(Pos pos) {
  switch (pos) {
    case Pos::kNoun: return "NOUN";
    case Pos::kPropn: return "PROPN";
    case Pos::kVerb: return "VERB";
    case Pos::kAux: return "AUX";
    case Pos::kDet: return "DET";
    case Pos::kAdp: return "ADP";
    case Pos::kPron: return "PRON";
    case Pos::kAdv: return "ADV";
    case Pos::kAdj: return "ADJ";
    case Pos::kNum: return "NUM";
    case Pos::kCconj: return "CCONJ";
    case Pos::kSconj: return "SCONJ";
    case Pos::kPart: return "PART";
    case Pos::kPunct: return "PUNCT";
    case Pos::kX: return "X";
  }
  return "?";
}

std::vector<Pos> TagTokens(const std::vector<Token>& tokens) {
  std::vector<Pos> tags(tokens.size());
  for (size_t i = 0; i < tokens.size(); ++i) {
    tags[i] = TagOne(tokens[i].text, /*sentence_initial=*/i == 0);
  }
  // Contextual repairs.
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::string lower = ToLower(tokens[i].text);
    // Infinitival "to": ADP -> PART when followed by a verb.
    if (lower == "to" && i + 1 < tokens.size() &&
        (tags[i + 1] == Pos::kVerb || tags[i + 1] == Pos::kAux)) {
      tags[i] = Pos::kPart;
    }
    // Participle between DET/ADJ and a (possibly adjective-modified) noun is
    // adjectival: "the gathered data", "the launched process", "the
    // gathered sensitive information".
    if (tags[i] == Pos::kVerb && i > 0 &&
        (tags[i - 1] == Pos::kDet || tags[i - 1] == Pos::kAdj) &&
        (EndsWith(lower, "ed") || EndsWith(lower, "ing") ||
         EndsWith(lower, "en"))) {
      size_t j = i + 1;
      while (j < tokens.size() && tags[j] == Pos::kAdj) ++j;
      if (j < tokens.size() &&
          (tags[j] == Pos::kNoun || tags[j] == Pos::kPropn)) {
        tags[i] = Pos::kAdj;
      }
    }
    // A verb-tagged token directly after a determiner with nothing nominal
    // following is a noun ("the read" is rare; favour noun).
    if (tags[i] == Pos::kVerb && i > 0 && tags[i - 1] == Pos::kDet &&
        (i + 1 >= tokens.size() || tags[i + 1] == Pos::kPunct ||
         tags[i + 1] == Pos::kAdp)) {
      tags[i] = Pos::kNoun;
    }
    // Verb/noun homographs in noun-noun compounds ("the exploit page",
    // "the download link"): a non-participle verb between a determiner and
    // a nominal is the compound modifier, not a verb.
    if (tags[i] == Pos::kVerb && i > 0 && tags[i - 1] == Pos::kDet &&
        i + 1 < tokens.size() &&
        (tags[i + 1] == Pos::kNoun || tags[i + 1] == Pos::kPropn) &&
        !EndsWith(lower, "ed") && !EndsWith(lower, "ing")) {
      tags[i] = Pos::kNoun;
    }
  }
  return tags;
}

std::string Lemma(std::string_view word, Pos pos) {
  std::string lower = ToLower(word);
  if (pos == Pos::kVerb || pos == Pos::kAux) {
    auto it = IrregularVerbs().find(lower);
    if (it != IrregularVerbs().end()) return it->second;
    auto known = [](const std::string& s) { return VerbBases().count(s) > 0; };
    if (known(lower)) return lower;
    if (EndsWith(lower, "ies") && lower.size() > 3) {
      return lower.substr(0, lower.size() - 3) + "y";
    }
    if (EndsWith(lower, "es") && lower.size() > 2) {
      std::string stem = lower.substr(0, lower.size() - 2);
      if (known(stem)) return stem;
      if (known(stem + "e")) return stem + "e";
    }
    if (EndsWith(lower, "s") && !EndsWith(lower, "ss") && lower.size() > 1) {
      std::string stem = lower.substr(0, lower.size() - 1);
      if (known(stem)) return stem;
    }
    if (EndsWith(lower, "ied") && lower.size() > 3) {
      std::string stem = lower.substr(0, lower.size() - 3) + "y";
      if (known(stem)) return stem;          // copied -> copy
    }
    if (EndsWith(lower, "ed") && lower.size() > 2) {
      std::string stem = lower.substr(0, lower.size() - 2);
      if (known(stem)) return stem;
      if (known(stem + "e")) return stem + "e";   // leveraged -> leverage
      if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
        std::string undoubled = stem.substr(0, stem.size() - 1);
        if (known(undoubled)) return undoubled;   // dropped -> drop
      }
      return stem;
    }
    if (EndsWith(lower, "ing") && lower.size() > 3) {
      std::string stem = lower.substr(0, lower.size() - 3);
      if (known(stem)) return stem;
      if (known(stem + "e")) return stem + "e";   // using -> use
      if (stem.size() >= 2 && stem[stem.size() - 1] == stem[stem.size() - 2]) {
        std::string undoubled = stem.substr(0, stem.size() - 1);
        if (known(undoubled)) return undoubled;   // scanning -> scan
      }
      return stem;
    }
    if (EndsWith(lower, "s") && lower.size() > 1) {
      return lower.substr(0, lower.size() - 1);
    }
    return lower;
  }
  if (pos == Pos::kNoun) {
    if (EndsWith(lower, "ies") && lower.size() > 3) {
      return lower.substr(0, lower.size() - 3) + "y";
    }
    if (EndsWith(lower, "ses") || EndsWith(lower, "xes") ||
        EndsWith(lower, "ches") || EndsWith(lower, "shes")) {
      return lower.substr(0, lower.size() - 2);
    }
    if (EndsWith(lower, "s") && !EndsWith(lower, "ss") && lower.size() > 1) {
      return lower.substr(0, lower.size() - 1);
    }
  }
  return lower;
}

bool IsKnownVerbBase(std::string_view base) {
  return VerbBases().count(std::string(base)) > 0;
}

}  // namespace raptor::nlp
