#include "nlp/segment.h"

#include <cctype>

#include "common/strings.h"

namespace raptor::nlp {

namespace {

bool IsAbbreviationBefore(std::string_view text, size_t dot_pos) {
  // Walk back to the token start.
  size_t start = dot_pos;
  while (start > 0 && !std::isspace(static_cast<unsigned char>(text[start - 1]))) {
    --start;
  }
  std::string token = ToLower(text.substr(start, dot_pos - start));
  static const char* kAbbrevs[] = {"e.g", "i.e", "etc", "mr", "ms",
                                   "dr",  "vs",  "cf",  "al", "fig"};
  for (const char* a : kAbbrevs) {
    if (token == a) return true;
  }
  return false;
}

}  // namespace

std::vector<Span> SegmentBlocks(std::string_view document) {
  std::vector<Span> blocks;
  size_t i = 0;
  while (i < document.size()) {
    // Skip blank lines.
    while (i < document.size() &&
           (document[i] == '\n' || document[i] == '\r')) {
      ++i;
    }
    if (i >= document.size()) break;
    size_t start = i;
    // A block ends at a blank line (two consecutive newlines, possibly with
    // intervening spaces) or end of document.
    size_t end = start;
    while (end < document.size()) {
      if (document[end] == '\n') {
        size_t k = end + 1;
        while (k < document.size() &&
               (document[k] == ' ' || document[k] == '\t' ||
                document[k] == '\r')) {
          ++k;
        }
        if (k >= document.size() || document[k] == '\n') break;
      }
      ++end;
    }
    std::string_view raw = document.substr(start, end - start);
    std::string_view body = TrimView(raw);
    if (!body.empty()) {
      Span span;
      span.begin = start + static_cast<size_t>(body.data() - raw.data());
      span.end = span.begin + body.size();
      span.text = std::string(body);
      blocks.push_back(std::move(span));
    }
    i = end;
  }
  return blocks;
}

std::vector<Span> SegmentSentences(std::string_view block) {
  std::vector<Span> sentences;
  size_t start = 0;
  for (size_t i = 0; i < block.size(); ++i) {
    char c = block[i];
    bool is_end = false;
    if (c == '.' || c == '!' || c == '?') {
      // Followed by whitespace + capital/digit (or end of block)?
      size_t k = i + 1;
      while (k < block.size() &&
             std::isspace(static_cast<unsigned char>(block[k]))) {
        ++k;
      }
      if (k == i + 1 && k < block.size()) {
        // No whitespace after: part of a dotted token, not a boundary.
        continue;
      }
      if (k >= block.size()) {
        is_end = true;
      } else if (std::isalpha(static_cast<unsigned char>(block[k])) ||
                 std::isdigit(static_cast<unsigned char>(block[k])) ||
                 block[k] == '/' || block[k] == '"') {
        is_end = c != '.' || !IsAbbreviationBefore(block, i);
      }
    }
    if (is_end) {
      std::string_view raw = block.substr(start, i + 1 - start);
      std::string_view body = TrimView(raw);
      if (!body.empty()) {
        Span span;
        // Offsets must point at the trimmed body so that token offsets
        // computed on span.text translate back into block offsets exactly.
        span.begin = start + static_cast<size_t>(body.data() - raw.data());
        span.end = span.begin + body.size();
        span.text = std::string(body);
        sentences.push_back(std::move(span));
      }
      start = i + 1;
    }
  }
  std::string_view raw_tail = block.substr(start);
  std::string_view tail = TrimView(raw_tail);
  if (!tail.empty()) {
    Span span;
    span.begin = start + static_cast<size_t>(tail.data() - raw_tail.data());
    span.end = span.begin + tail.size();
    span.text = std::string(tail);
    sentences.push_back(std::move(span));
  }
  return sentences;
}

}  // namespace raptor::nlp
