#include "nlp/refang.h"

#include <cctype>

namespace raptor::nlp {

namespace {

/// Case-insensitive prefix check.
bool MatchesAt(std::string_view text, size_t i, std::string_view token) {
  if (i + token.size() > text.size()) return false;
  for (size_t k = 0; k < token.size(); ++k) {
    if (std::tolower(static_cast<unsigned char>(text[i + k])) !=
        std::tolower(static_cast<unsigned char>(token[k]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string RefangText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    // Bracketed separators: [.] (.) {.} [:] [at] (at) [://].
    if (text[i] == '[' || text[i] == '(' || text[i] == '{') {
      char close = text[i] == '[' ? ']' : (text[i] == '(' ? ')' : '}');
      if (i + 2 < text.size() && text[i + 2] == close &&
          (text[i + 1] == '.' || text[i + 1] == ':')) {
        out.push_back(text[i + 1]);
        i += 3;
        continue;
      }
      if (i + 3 < text.size() && MatchesAt(text, i + 1, "at") &&
          text[i + 3] == close) {
        out.push_back('@');
        i += 4;
        continue;
      }
      if (i + 4 < text.size() && MatchesAt(text, i + 1, "://") &&
          text[i + 4] == close) {
        out.append("://");
        i += 5;
        continue;
      }
    }
    // Scheme rewrites: hxxp(s) -> http(s), fxp -> ftp. Only when followed
    // by "://"-ish context so ordinary words are untouched.
    if (MatchesAt(text, i, "hxxps") &&
        (MatchesAt(text, i + 5, "://") || MatchesAt(text, i + 5, "[://]"))) {
      out.append("https");
      i += 5;
      continue;
    }
    if (MatchesAt(text, i, "hxxp") &&
        (MatchesAt(text, i + 4, "://") || MatchesAt(text, i + 4, "[://]"))) {
      out.append("http");
      i += 4;
      continue;
    }
    if (MatchesAt(text, i, "fxp") &&
        (MatchesAt(text, i + 3, "://") || MatchesAt(text, i + 3, "[://]"))) {
      out.append("ftp");
      i += 3;
      continue;
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

}  // namespace raptor::nlp
