// General-purpose English tokenizer (PTB-style), the component that the
// paper's IOC Protection step exists to protect against: on raw OSCTI text
// it splits path separators and peels punctuation, shredding IOCs like
// /tmp/upload.tar into pieces; on protected text (IOCs replaced by a dummy
// word) it behaves exactly like a tokenizer for ordinary prose.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace raptor::nlp {

struct Token {
  std::string text;
  size_t begin = 0;  // byte offsets into the tokenized string
  size_t end = 0;
};

/// Tokenize one sentence (or any text span). Splits on whitespace, peels
/// surrounding punctuation, splits '/' and '\\' path separators (the
/// Penn-Treebank convention that breaks unprotected IOCs) and separates
/// sentence-final periods.
std::vector<Token> Tokenize(std::string_view text);

}  // namespace raptor::nlp
