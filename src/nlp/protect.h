// IOC Protection (Step 2 of Algorithm 1): replace recognized IOCs with a
// dummy word ("something") so that the general-English NLP components
// (sentence segmentation, tokenization, POS tagging, dependency parsing)
// operate on clean prose, and keep a replacement record so the original
// IOCs can be restored onto the parsed trees afterwards. Table V's ablation
// shows extraction collapses without this step.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/ioc.h"

namespace raptor::nlp {

inline constexpr std::string_view kDummyWord = "something";

struct Replacement {
  IocMatch ioc;       // the original match (offsets in the ORIGINAL text)
  size_t begin = 0;   // offsets of the dummy word in the PROTECTED text
  size_t end = 0;
};

struct ProtectedText {
  std::string text;
  std::vector<Replacement> replacements;

  /// The replacement whose dummy word starts at `offset` in the protected
  /// text, or nullptr.
  const Replacement* FindAt(size_t offset) const;
};

/// Recognize IOCs in `block` and substitute each with the dummy word.
ProtectedText ProtectIocs(std::string_view block);

}  // namespace raptor::nlp
