// IOC (Indicator of Compromise) recognition via regex rules (Sec III-C,
// Step 2). Extends the coverage of the open-source ioc-parser the paper
// started from: distinguishes Linux vs. Windows file paths, recognizes
// bare file names, IPs (with optional CIDR suffix), domains, URLs, emails,
// MD5/SHA1/SHA256 hashes, Windows registry keys and CVE identifiers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace raptor::nlp {

enum class IocType {
  kFilepath = 0,   // Linux absolute path
  kWinFilepath,    // Windows drive-letter path
  kFilename,       // bare file name with a known extension
  kIp,             // IPv4, optional /CIDR
  kDomain,
  kUrl,
  kEmail,
  kHash,           // MD5 / SHA-1 / SHA-256 hex digest
  kRegistry,       // Windows registry key
  kCve,
};

const char* IocTypeName(IocType type);

/// Inverse of IocTypeName (exact match); nullopt for unknown names. Lets
/// catalog/feed tooling name IOC slots symbolically.
std::optional<IocType> IocTypeFromName(std::string_view name);

struct IocMatch {
  IocType type = IocType::kFilepath;
  std::string text;
  size_t begin = 0;  // byte offsets into the scanned text
  size_t end = 0;
};

/// Scan `text` and return all non-overlapping IOC matches, leftmost-longest,
/// ordered by position. Overlaps resolve by priority (URL > email > registry
/// > Windows path > Linux path > IP > hash > CVE > domain > file name) and
/// then by length.
std::vector<IocMatch> RecognizeIocs(std::string_view text);

/// True if the token could be an IOC on its own (used when scanning
/// dependency trees in the no-protection ablation).
bool LooksLikeIoc(std::string_view token);

}  // namespace raptor::nlp
