// Lexicon + suffix-rule part-of-speech tagger and lemmatizer.
//
// Substitutes spaCy's statistical tagger: OSCTI prose after IOC Protection
// is ordinary English with a narrow vocabulary (attack verbs, system nouns),
// which a lexicon-first tagger with suffix fallbacks and a few contextual
// repair rules handles well. The lemmatizer backs the relation-verb
// normalization of extraction Step 9 (e.g. "wrote" -> "write").
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "nlp/tokenizer.h"

namespace raptor::nlp {

enum class Pos {
  kNoun = 0,
  kPropn,
  kVerb,
  kAux,
  kDet,
  kAdp,    // preposition
  kPron,
  kAdv,
  kAdj,
  kNum,
  kCconj,
  kSconj,
  kPart,   // infinitival "to"
  kPunct,
  kX,
};

const char* PosName(Pos pos);

/// Tag a tokenized sentence. Applies lexicon lookups, suffix heuristics and
/// contextual repair rules (infinitival "to", participles after
/// determiners, sentence-initial capitalization).
std::vector<Pos> TagTokens(const std::vector<Token>& tokens);

/// Lemmatize `word` given its POS (verbs get inflection stripping with an
/// irregular-form table; other classes mostly lower-case + plural strip).
std::string Lemma(std::string_view word, Pos pos);

/// True if `base` (a lemma) is in the verb-base lexicon.
bool IsKnownVerbBase(std::string_view base);

}  // namespace raptor::nlp
